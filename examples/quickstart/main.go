// Quickstart: build the paper's two-way dumbbell, run ten simulated
// minutes, and print the headline observables — utilization, the
// synchronization mode, ACK-compression, and the drop pattern.
package main

import (
	"fmt"
	"os"
	"time"

	"tahoedyn"
)

func main() {
	// The Figure-1 network: 50 Kbps bottleneck, τ = 10 ms, buffer 20,
	// one TCP Tahoe connection in each direction with infinite data.
	cfg := tahoedyn.Dumbbell(10*time.Millisecond, 20)
	cfg.Conns = []tahoedyn.ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 100 * time.Second
	cfg.Duration = 700 * time.Second

	res := tahoedyn.Run(cfg)

	fmt.Printf("two-way Tahoe over a %v-delay bottleneck (pipe %.3f packets)\n\n",
		cfg.TrunkDelay, cfg.PipeSize())
	fmt.Printf("bottleneck utilization:  %.1f%% / %.1f%% (the paper reports ≈70%%)\n",
		res.UtilForward()*100, res.UtilReverse()*100)

	wMode, wr := tahoedyn.Phase(res.Cwnd[0], res.Cwnd[1], cfg.Warmup, cfg.Duration, time.Second)
	fmt.Printf("window synchronization:  %v (corr %.2f)\n", wMode, wr)

	comp := tahoedyn.AckCompression(res.AckArrivals[0], cfg.DataTxTime(), cfg.Warmup)
	fmt.Printf("ACK-compression:         %.0f%% of ACK gaps below half a data tx time (min gap %v)\n",
		comp.CompressedFraction()*100, comp.MinGap)

	epochs := tahoedyn.Epochs(res.Drops, 2*time.Second)
	fmt.Printf("congestion epochs:       %d, %d packets dropped in total\n\n",
		len(epochs), len(res.Drops))

	fmt.Println("bottleneck queues over the final 30 seconds:")
	err := tahoedyn.PlotASCII(os.Stdout, tahoedyn.PlotOptions{
		Width: 100, Height: 14,
		From: cfg.Duration - 30*time.Second, To: cfg.Duration,
	}, res.Q1(), res.Q2())
	if err != nil {
		fmt.Fprintln(os.Stderr, "plot:", err)
		os.Exit(1)
	}
}
