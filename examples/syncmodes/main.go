// syncmodes demonstrates the paper's two synchronization modes (§4.3):
// the same two-way configuration locks out-of-phase with a small pipe
// (τ = 10 ms) and in-phase with a large one (τ = 1 s), with the drop
// pattern switching between "one connection takes both losses,
// alternating" and "each connection loses exactly one packet per epoch".
package main

import (
	"fmt"
	"os"
	"time"

	"tahoedyn"
)

func main() {
	show("small pipe, τ=10ms → out-of-phase", 10*time.Millisecond, 2*time.Second)
	fmt.Println()
	show("large pipe, τ=1s  → in-phase", time.Second, 10*time.Second)
}

func show(title string, tau, epochGap time.Duration) {
	cfg := tahoedyn.Dumbbell(tau, 20)
	cfg.Conns = []tahoedyn.ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 200 * time.Second
	cfg.Duration = 800 * time.Second
	res := tahoedyn.Run(cfg)

	fmt.Println(title)
	fmt.Printf("  pipe P = %.3f packets, utilization %.1f%%\n",
		cfg.PipeSize(), res.UtilForward()*100)
	wMode, wr := tahoedyn.Phase(res.Cwnd[0], res.Cwnd[1], cfg.Warmup, cfg.Duration, time.Second)
	qMode, qr := tahoedyn.Phase(res.Q1(), res.Q2(), cfg.Warmup, cfg.Duration, time.Second)
	fmt.Printf("  window sync %v (%.2f), queue sync %v (%.2f)\n", wMode, wr, qMode, qr)

	var measured []tahoedyn.DropEvent
	for _, d := range res.Drops {
		if d.T >= cfg.Warmup {
			measured = append(measured, d)
		}
	}
	epochs := tahoedyn.Epochs(measured, epochGap)
	fmt.Printf("  first congestion epochs (drops per connection):\n")
	for i, e := range epochs {
		if i >= 6 {
			break
		}
		fmt.Printf("    t=%-8v %v\n", e.Start.Round(time.Second), e.LossByConn())
	}

	fmt.Println("  congestion windows over the final 2 minutes:")
	err := tahoedyn.PlotASCII(os.Stdout, tahoedyn.PlotOptions{
		Width: 100, Height: 12,
		From: cfg.Duration - 120*time.Second, To: cfg.Duration,
	}, res.Cwnd[0], res.Cwnd[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "plot:", err)
		os.Exit(1)
	}
}
