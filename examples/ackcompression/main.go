// ackcompression walks through the paper's §4.2 mechanism in the
// cleanest setting: two fixed-window connections (30 and 25 packets)
// over the small-pipe dumbbell with infinite buffers. It contrasts the
// ACK inter-arrival spacing of a one-way run (a perfect 80 ms clock)
// with the two-way run (gaps collapsing to the 8 ms ACK transmission
// time), and plots the resulting square-wave queues of Figure 8.
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"tahoedyn"
)

func main() {
	const tau = 10 * time.Millisecond

	oneWay := runFixed(tau, []tahoedyn.ConnSpec{
		{SrcHost: 0, DstHost: 1, FixedWnd: 30, Start: -1},
	})
	twoWay := runFixed(tau, []tahoedyn.ConnSpec{
		{SrcHost: 0, DstHost: 1, FixedWnd: 30, Start: -1},
		{SrcHost: 1, DstHost: 0, FixedWnd: 25, Start: -1},
	})

	fmt.Println("ACK inter-arrival gaps at the connection-1 sender")
	fmt.Println("(data tx = 80ms on the 50 Kbps bottleneck, ACK tx = 8ms)")
	fmt.Println()
	printGapHistogram("one-way (ACK clock intact)", oneWay)
	fmt.Println()
	printGapHistogram("two-way (ACK-compression)", twoWay)

	res := twoWay.res
	fmt.Println()
	fmt.Printf("two-way utilizations: line 1 %.1f%%, line 2 %.1f%% (paper: 100%% and 86%%)\n",
		res.UtilForward()*100, res.UtilReverse()*100)
	fmt.Printf("queue maxima: Q1 %.0f, Q2 %.0f (paper: 55 and 23)\n",
		res.Q1().Max(res.MeasureFrom, res.MeasureTo),
		res.Q2().Max(res.MeasureFrom, res.MeasureTo))
	fmt.Println()
	fmt.Println("the square waves of Figure 8:")
	err := tahoedyn.PlotASCII(os.Stdout, tahoedyn.PlotOptions{
		Width: 100, Height: 16,
		From: res.MeasureTo - 20*time.Second, To: res.MeasureTo,
	}, res.Q1(), res.Q2())
	if err != nil {
		fmt.Fprintln(os.Stderr, "plot:", err)
		os.Exit(1)
	}
}

type run struct {
	res  *tahoedyn.Result
	gaps []time.Duration
}

func runFixed(tau time.Duration, conns []tahoedyn.ConnSpec) run {
	cfg := tahoedyn.Dumbbell(tau, 0) // infinite buffers
	cfg.Conns = conns
	cfg.Warmup = 100 * time.Second
	cfg.Duration = 400 * time.Second
	res := tahoedyn.Run(cfg)
	var gaps []time.Duration
	arr := res.AckArrivals[0]
	for i := 1; i < len(arr); i++ {
		if arr[i] >= cfg.Warmup {
			gaps = append(gaps, arr[i]-arr[i-1])
		}
	}
	return run{res: res, gaps: gaps}
}

func printGapHistogram(label string, r run) {
	fmt.Printf("%s — %d gaps\n", label, len(r.gaps))
	buckets := []struct {
		name string
		hi   time.Duration
	}{
		{"   < 10ms (≈ ACK tx)  ", 10 * time.Millisecond},
		{"  10-40ms             ", 40 * time.Millisecond},
		{"  40-79ms             ", 79 * time.Millisecond},
		{"  79-81ms (≈ data tx) ", 81 * time.Millisecond},
		{"   > 81ms             ", 1 << 62},
	}
	counts := make([]int, len(buckets))
	for _, g := range r.gaps {
		for i, b := range buckets {
			if g < b.hi {
				counts[i]++
				break
			}
		}
	}
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, b := range buckets {
		bar := ""
		for j := 0; j < counts[i]*50/maxCount; j++ {
			bar += "#"
		}
		fmt.Printf("%s %6d %s\n", b.name, counts[i], bar)
	}
	sorted := append([]time.Duration(nil), r.gaps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(sorted) > 0 {
		fmt.Printf("  min %v   median %v\n", sorted[0], sorted[len(sorted)/2])
	}
}
