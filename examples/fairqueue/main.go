// fairqueue contrasts the paper's FIFO drop-tail switches with Fair
// Queueing gateways (the §1-cited remedy) on the pathological two-way
// configuration: FQ isolates each connection's ACK train, the ACK clock
// survives, and both the square-wave fluctuations and the out-of-phase
// idle time disappear.
package main

import (
	"fmt"
	"os"
	"time"

	"tahoedyn"
)

func main() {
	fifo := run(tahoedyn.Dumbbell(10*time.Millisecond, 20), false)
	fq := run(tahoedyn.Dumbbell(10*time.Millisecond, 20), true)

	fmt.Println("two-way TCP Tahoe, τ=10ms, buffer 20 — FIFO vs Fair Queueing")
	fmt.Println()
	fmt.Printf("%-28s %-12s %s\n", "", "FIFO", "Fair Queueing")
	fmt.Printf("%-28s %-12s %s\n", "bottleneck utilization",
		pct(fifo.res.UtilForward()), pct(fq.res.UtilForward()))
	fmt.Printf("%-28s %-12s %s\n", "compressed ACK gaps",
		pct(fifo.comp), pct(fq.comp))
	fmt.Printf("%-28s %-12d %d\n", "packets dropped",
		len(fifo.res.Drops), len(fq.res.Drops))
	fmt.Println()
	fmt.Println("FIFO bottleneck queue (square waves), then FQ (smooth):")
	for _, r := range []runResult{fifo, fq} {
		err := tahoedyn.PlotASCII(os.Stdout, tahoedyn.PlotOptions{
			Width: 100, Height: 10,
			From: r.cfg.Duration - 20*time.Second, To: r.cfg.Duration,
		}, r.res.Q1())
		if err != nil {
			fmt.Fprintln(os.Stderr, "plot:", err)
			os.Exit(1)
		}
	}
}

type runResult struct {
	cfg  tahoedyn.Config
	res  *tahoedyn.Result
	comp float64
}

func run(cfg tahoedyn.Config, fairQueue bool) runResult {
	if fairQueue {
		cfg.Discipline = tahoedyn.FairQueueDiscipline
	}
	cfg.Conns = []tahoedyn.ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 100 * time.Second
	cfg.Duration = 500 * time.Second
	res := tahoedyn.Run(cfg)
	comp := tahoedyn.AckCompression(res.AckArrivals[0], cfg.DataTxTime(), cfg.Warmup)
	return runResult{cfg: cfg, res: res, comp: comp.CompressedFraction()}
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
