// buffersweep reproduces the paper's most counterintuitive finding: with
// one-way traffic, adding switch buffer reliably buys throughput (idle
// time falls roughly as B⁻²), but in the two-way out-of-phase mode the
// utilization is pinned near 70% no matter how much buffer is added —
// "increasing buffers is a reliable way to increase throughput" fails.
package main

import (
	"fmt"
	"time"

	"tahoedyn"
)

func main() {
	buffers := []int{20, 40, 60, 120}

	fmt.Println("bottleneck utilization vs switch buffer size")
	fmt.Printf("%-8s %-22s %s\n", "buffer", "one-way (3 conns, τ=1s)", "two-way (1+1, τ=10ms)")
	for _, b := range buffers {
		oneWay := run(buildOneWay(b))
		twoWay := run(buildTwoWay(b))
		fmt.Printf("%-8d %-22s %s\n", b,
			fmt.Sprintf("%.1f%%", oneWay*100),
			fmt.Sprintf("%.1f%%", twoWay*100))
	}
	fmt.Println()
	fmt.Println("one-way climbs toward 100% — two-way is stuck: the out-of-phase mode's")
	fmt.Println("idle time scales with the *effective* pipe, which grows with the buffer.")
}

func buildOneWay(buffer int) tahoedyn.Config {
	cfg := tahoedyn.Dumbbell(time.Second, buffer)
	for i := 0; i < 3; i++ {
		cfg.Conns = append(cfg.Conns, tahoedyn.ConnSpec{SrcHost: 0, DstHost: 1, Start: -1})
	}
	return cfg
}

func buildTwoWay(buffer int) tahoedyn.Config {
	cfg := tahoedyn.Dumbbell(10*time.Millisecond, buffer)
	cfg.Conns = []tahoedyn.ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	return cfg
}

func run(cfg tahoedyn.Config) float64 {
	cfg.Warmup = 300 * time.Second
	// Long runs: the one-way oscillation period grows like the square of
	// the path capacity.
	cfg.Duration = 3300 * time.Second
	return tahoedyn.Run(cfg).UtilForward()
}
