package node

import (
	"testing"
	"time"

	"tahoedyn/internal/link"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

type recordingHandler struct {
	eng  *sim.Engine
	pkts []*packet.Packet
	at   []time.Duration
}

func (r *recordingHandler) Handle(p *packet.Packet) {
	r.pkts = append(r.pkts, p)
	r.at = append(r.at, r.eng.Now())
}

func TestHostProcessingDelay(t *testing.T) {
	eng := sim.New()
	h := NewHost(eng, 0, 100*time.Microsecond)
	rec := &recordingHandler{eng: eng}
	h.Attach(7, rec)
	h.Deliver(&packet.Packet{Conn: 7, Kind: packet.Data, Seq: 0, Size: 500})
	eng.Run()
	if len(rec.pkts) != 1 {
		t.Fatalf("handled %d packets, want 1", len(rec.pkts))
	}
	if rec.at[0] != 100*time.Microsecond {
		t.Fatalf("handled at %v, want 100µs", rec.at[0])
	}
	if h.Received() != 1 {
		t.Fatalf("Received = %d, want 1", h.Received())
	}
}

func TestHostZeroProcessingIsSynchronous(t *testing.T) {
	eng := sim.New()
	h := NewHost(eng, 0, 0)
	rec := &recordingHandler{eng: eng}
	h.Attach(1, rec)
	h.Deliver(&packet.Packet{Conn: 1})
	if len(rec.pkts) != 1 {
		t.Fatal("zero-processing delivery was deferred")
	}
}

func TestHostUnknownConnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown connection")
		}
	}()
	eng := sim.New()
	h := NewHost(eng, 0, 0)
	h.Deliver(&packet.Packet{Conn: 3})
}

func TestHostDuplicateAttachPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for duplicate attach")
		}
	}()
	eng := sim.New()
	h := NewHost(eng, 0, 0)
	h.Attach(1, &recordingHandler{eng: eng})
	h.Attach(1, &recordingHandler{eng: eng})
}

func TestSwitchRoutes(t *testing.T) {
	eng := sim.New()
	sw := NewSwitch(1)
	hA := NewHost(eng, 10, 0)
	hB := NewHost(eng, 20, 0)
	recA := &recordingHandler{eng: eng}
	recB := &recordingHandler{eng: eng}
	hA.Attach(1, recA)
	hB.Attach(1, recB)
	portA := link.NewPort(eng, link.Config{Name: "sw->A", Bandwidth: 1e6, Delay: time.Millisecond}, hA)
	portB := link.NewPort(eng, link.Config{Name: "sw->B", Bandwidth: 1e6, Delay: time.Millisecond}, hB)
	sw.AddRoute(10, portA)
	sw.AddRoute(20, portB)

	sw.Deliver(&packet.Packet{Conn: 1, Dst: 10, Size: 100})
	sw.Deliver(&packet.Packet{Conn: 1, Dst: 20, Size: 100})
	sw.Deliver(&packet.Packet{Conn: 1, Dst: 10, Size: 100})
	eng.Run()
	if len(recA.pkts) != 2 || len(recB.pkts) != 1 {
		t.Fatalf("A got %d, B got %d; want 2, 1", len(recA.pkts), len(recB.pkts))
	}
}

func TestSwitchNoRoutePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for missing route")
		}
	}()
	NewSwitch(1).Deliver(&packet.Packet{Dst: 99})
}

func TestHostSendWithoutPortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for missing output port")
		}
	}()
	eng := sim.New()
	NewHost(eng, 0, 0).Send(&packet.Packet{})
}

// End-to-end: host -> switch -> host over two ports, checking the total
// path latency equals processing + both serializations + propagations.
func TestHostSwitchHostPath(t *testing.T) {
	eng := sim.New()
	h1 := NewHost(eng, 1, 100*time.Microsecond)
	h2 := NewHost(eng, 2, 100*time.Microsecond)
	sw := NewSwitch(0)
	rec := &recordingHandler{eng: eng}
	h2.Attach(5, rec)
	// 10 Mbps access link, 0.1 ms propagation, exactly the paper's access
	// parameters: 500 B serializes in 0.4 ms.
	h1.SetOutput(link.NewPort(eng, link.Config{Name: "h1->sw", Bandwidth: 10_000_000, Delay: 100 * time.Microsecond}, sw))
	sw.AddRoute(2, link.NewPort(eng, link.Config{Name: "sw->h2", Bandwidth: 10_000_000, Delay: 100 * time.Microsecond}, h2))

	h1.Send(&packet.Packet{Conn: 5, Src: 1, Dst: 2, Size: 500})
	eng.Run()
	if len(rec.pkts) != 1 {
		t.Fatalf("delivered %d, want 1", len(rec.pkts))
	}
	// 0.4ms tx + 0.1ms prop + 0.4ms tx + 0.1ms prop + 0.1ms processing
	want := 400*time.Microsecond + 100*time.Microsecond +
		400*time.Microsecond + 100*time.Microsecond +
		100*time.Microsecond
	if rec.at[0] != want {
		t.Fatalf("arrived at %v, want %v", rec.at[0], want)
	}
}
