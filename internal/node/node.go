// Package node implements the network elements of the paper's topology:
// switches that forward packets between ports, and hosts that terminate
// TCP connections.
//
// Per §2.2 of the paper, each switch has one FIFO drop-tail buffer per
// outgoing line with no sharing, and each host charges a fixed processing
// time (0.1 ms) to every data or ACK packet it receives before handing it
// to the transport endpoint.
package node

import (
	"fmt"
	"time"

	"tahoedyn/internal/link"
	"tahoedyn/internal/obs"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

// Handler consumes packets addressed to a TCP endpoint. Both ends of a
// connection implement it: the sender handles ACKs, the receiver handles
// data.
type Handler interface {
	Handle(p *packet.Packet)
}

// denseRouteLimit is the highest destination host ID kept in a switch's
// dense forwarding slice. Small networks — the paper's dumbbell, every
// shipped scenario — stay on the direct-index table, so the per-packet
// lookup there is still just a bounds check. Beyond it the switch
// migrates to sorted interval runs (binary-search lookup), which is
// what keeps 10⁵-host networks from paying hosts×switches pointers of
// table memory. A variable so tests can force either representation.
var denseRouteLimit = 64

// Switch forwards packets toward their destination host. Forwarding is
// instantaneous; all queueing happens in the output ports. The
// forwarding table starts as a dense slice indexed by destination host
// ID and converts to sorted host-ID interval runs the first time a
// route at or beyond denseRouteLimit is installed; AddRouteRange paints
// whole intervals at once, which is how internal/core installs the
// compiled topology's interval-compressed next-hop state.
type Switch struct {
	id    int
	table []*link.Port // dense mode; nil once runs is active
	runs  []portRun    // run mode: sorted, disjoint, non-adjacent-equal
}

// portRun forwards destination host IDs in [start, end) out one port.
type portRun struct {
	start, end int32
	port       *link.Port
}

// NewSwitch returns a switch with an empty forwarding table.
func NewSwitch(id int) *Switch {
	return &Switch{id: id}
}

// ID returns the switch identifier.
func (s *Switch) ID() int { return s.id }

// AddRoute directs packets destined for host dst out the given port,
// replacing any previous route for dst.
func (s *Switch) AddRoute(dst int, out *link.Port) {
	if dst < 0 {
		panic(fmt.Sprintf("switch %d: negative route destination %d", s.id, dst))
	}
	s.AddRouteRange(dst, dst+1, out)
}

// AddRouteRange directs packets destined for any host in [lo, hi) out
// the given port, replacing previous routes in the interval. It is the
// bulk route-installation interface: one call per forwarding interval
// of the compiled topology, instead of one per host.
func (s *Switch) AddRouteRange(lo, hi int, out *link.Port) {
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("switch %d: bad route range [%d,%d)", s.id, lo, hi))
	}
	if lo == hi {
		return
	}
	if s.runs == nil && hi <= denseRouteLimit {
		for hi > len(s.table) {
			s.table = append(s.table, nil)
		}
		for d := lo; d < hi; d++ {
			s.table[d] = out
		}
		return
	}
	if s.runs == nil {
		s.migrateToRuns()
	}
	s.paint(int32(lo), int32(hi), out)
}

// ResetRoutes clears the forwarding table so it can be rebuilt, e.g.
// when a mid-run link event changes the compiled topology's routes. The
// representation mode resets too: the next AddRouteRange decides dense
// vs runs exactly as it would on a fresh switch, so a rebuilt table is
// byte-identical to one installed at build time from the same routes.
func (s *Switch) ResetRoutes() {
	s.table = nil
	s.runs = nil
}

// migrateToRuns converts the dense table to interval runs.
func (s *Switch) migrateToRuns() {
	s.runs = make([]portRun, 0, 4)
	for d := 0; d < len(s.table); d++ {
		pt := s.table[d]
		if pt == nil {
			continue
		}
		if n := len(s.runs); n > 0 && s.runs[n-1].end == int32(d) && s.runs[n-1].port == pt {
			s.runs[n-1].end++
		} else {
			s.runs = append(s.runs, portRun{int32(d), int32(d) + 1, pt})
		}
	}
	s.table = nil
}

// paint replaces the routes for [lo, hi) with out, keeping the run list
// sorted, disjoint, and merged with equal-port neighbors. Route
// installation is build-time work; the per-packet path is lookup.
func (s *Switch) paint(lo, hi int32, out *link.Port) {
	// Find the insertion window [i, j): runs strictly before lo stay,
	// runs strictly after hi stay, everything overlapping is replaced
	// (with clipped remainders of the boundary runs re-added).
	i := 0
	for i < len(s.runs) && s.runs[i].end <= lo {
		i++
	}
	j := i
	var pre, post portRun
	hasPre, hasPost := false, false
	for j < len(s.runs) && s.runs[j].start < hi {
		r := s.runs[j]
		if r.start < lo {
			pre, hasPre = portRun{r.start, lo, r.port}, true
		}
		if r.end > hi {
			post, hasPost = portRun{hi, r.end, r.port}, true
		}
		j++
	}
	repl := make([]portRun, 0, 3)
	if hasPre {
		if pre.port == out {
			lo = pre.start
		} else {
			repl = append(repl, pre)
		}
	}
	if hasPost && post.port == out {
		hi = post.end
		hasPost = false
	}
	// Merge with untouched equal-port neighbors.
	if i > 0 && len(repl) == 0 && s.runs[i-1].port == out && s.runs[i-1].end == lo {
		i--
		lo = s.runs[i].start
	}
	repl = append(repl, portRun{lo, hi, out})
	if hasPost {
		repl = append(repl, post)
	} else if j < len(s.runs) && s.runs[j].port == out && s.runs[j].start == hi {
		repl[len(repl)-1].end = s.runs[j].end
		j++
	}
	s.runs = append(s.runs[:i], append(repl, s.runs[j:]...)...)
}

// lookup returns the output port for dst, or nil.
func (s *Switch) lookup(dst int) *link.Port {
	if s.runs == nil {
		if dst < 0 || dst >= len(s.table) {
			return nil
		}
		return s.table[dst]
	}
	d := int32(dst)
	lo, hi := 0, len(s.runs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.runs[mid].end <= d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.runs) && s.runs[lo].start <= d {
		return s.runs[lo].port
	}
	return nil
}

// Route returns the output port for host dst, or nil if none is set.
// It exists for forwarding-table inspection (tests, tahoe-sim
// -validate); the hot path is Deliver.
func (s *Switch) Route(dst int) *link.Port {
	if dst < 0 {
		return nil
	}
	return s.lookup(dst)
}

// Deliver implements link.Receiver: look up the output port for the
// packet's destination and enqueue it there.
func (s *Switch) Deliver(p *packet.Packet) {
	if s.runs == nil {
		// Dense fast path: identical to the historical per-packet cost.
		if p.Dst < 0 || p.Dst >= len(s.table) || s.table[p.Dst] == nil {
			panic(fmt.Sprintf("switch %d: no route to host %d for %v", s.id, p.Dst, p))
		}
		s.table[p.Dst].Send(p)
		return
	}
	out := s.lookup(p.Dst)
	if out == nil {
		panic(fmt.Sprintf("switch %d: no route to host %d for %v", s.id, p.Dst, p))
	}
	out.Send(p)
}

// Host terminates TCP connections. Incoming packets are charged the
// host processing time before reaching their endpoint; outgoing packets
// go straight to the host's output port.
type Host struct {
	eng        *sim.Engine
	id         int
	out        *link.Port
	processing time.Duration
	// endpoints is indexed by connection id. Connection ids are small
	// dense integers, so a slice keeps the per-packet dispatch a bounds
	// check instead of a map probe.
	endpoints []Handler

	// received counts packets accepted by this host, for conservation
	// checks.
	received uint64

	// obs, when non-nil, receives a Deliver trace event for every packet
	// this host accepts; obsLoc is its interned location ("host0", ...).
	obs    *obs.Tracer
	obsLoc obs.Loc
}

// NewHost returns a host with the given per-packet processing delay.
// Attach endpoints and set the output port before delivering traffic.
func NewHost(eng *sim.Engine, id int, processing time.Duration) *Host {
	return &Host{
		eng:        eng,
		id:         id,
		processing: processing,
	}
}

// ID returns the host identifier used in packet Src/Dst fields.
func (h *Host) ID() int { return h.id }

// SetOutput attaches the host's output port (toward its switch).
func (h *Host) SetOutput(out *link.Port) { h.out = out }

// SetObs attaches a tracer to the host; arriving packets then emit
// Deliver events at the named location. Call before the run starts.
func (h *Host) SetObs(t *obs.Tracer, name string) {
	h.obs = t
	h.obsLoc = t.Loc(name)
}

// Attach registers the endpoint that handles packets of connection conn
// arriving at this host.
func (h *Host) Attach(conn int, ep Handler) {
	if conn < 0 {
		panic(fmt.Sprintf("host %d: negative conn id %d", h.id, conn))
	}
	if h.endpoint(conn) != nil {
		panic(fmt.Sprintf("host %d: endpoint for conn %d already attached", h.id, conn))
	}
	if conn >= len(h.endpoints) {
		// Conn IDs are global, so a host that terminates connection k
		// indexes straight to k even when it handles few connections:
		// grow to the target in one step rather than element-wise.
		h.endpoints = append(h.endpoints, make([]Handler, conn+1-len(h.endpoints))...)
	}
	h.endpoints[conn] = ep
}

// endpoint returns the handler for conn, or nil if none is attached.
func (h *Host) endpoint(conn int) Handler {
	if conn < 0 || conn >= len(h.endpoints) {
		return nil
	}
	return h.endpoints[conn]
}

// Received returns the number of packets this host has accepted.
func (h *Host) Received() uint64 { return h.received }

// Deliver implements link.Receiver: after the processing delay, the
// packet is handed to its connection's endpoint. The delayed hand-off is
// a typed event bound to the host's dispatch step, so the per-packet
// path schedules no closure.
func (h *Host) Deliver(p *packet.Packet) {
	if h.endpoint(p.Conn) == nil {
		panic(fmt.Sprintf("host %d: no endpoint for conn %d (%v)", h.id, p.Conn, p))
	}
	h.received++
	if h.obs != nil {
		h.obs.Packet(obs.Deliver, h.eng.Now(), h.obsLoc, p, 0)
	}
	if h.processing == 0 {
		h.endpoints[p.Conn].Handle(p)
		return
	}
	h.eng.SchedulePacket(h.processing, (*hostDispatch)(h), p)
}

// hostDispatch is the Host's second sim.PacketSink identity: the
// endpoint hand-off that runs once the processing delay has elapsed.
// (Host.Deliver itself is the first — the arrival from the wire.) The
// pointer conversion is free, so scheduling the dispatch allocates
// nothing.
type hostDispatch Host

// Deliver hands the processed packet to its connection's endpoint.
func (hd *hostDispatch) Deliver(p *packet.Packet) {
	h := (*Host)(hd)
	h.endpoints[p.Conn].Handle(p)
}

// Send transmits p out the host's port. It reports whether the packet
// was accepted by the port's buffer.
func (h *Host) Send(p *packet.Packet) bool {
	if h.out == nil {
		panic(fmt.Sprintf("host %d: no output port", h.id))
	}
	return h.out.Send(p)
}
