// Package node implements the network elements of the paper's topology:
// switches that forward packets between ports, and hosts that terminate
// TCP connections.
//
// Per §2.2 of the paper, each switch has one FIFO drop-tail buffer per
// outgoing line with no sharing, and each host charges a fixed processing
// time (0.1 ms) to every data or ACK packet it receives before handing it
// to the transport endpoint.
package node

import (
	"fmt"
	"time"

	"tahoedyn/internal/link"
	"tahoedyn/internal/obs"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

// Handler consumes packets addressed to a TCP endpoint. Both ends of a
// connection implement it: the sender handles ACKs, the receiver handles
// data.
type Handler interface {
	Handle(p *packet.Packet)
}

// Switch forwards packets toward their destination host. Forwarding is
// instantaneous; all queueing happens in the output ports. The
// forwarding table is a dense slice indexed by destination host ID —
// host IDs are small consecutive integers, so the per-packet lookup is
// a bounds check, not a map probe — and is populated from the compiled
// topology's next-hop computation (or directly via AddRoute).
type Switch struct {
	id    int
	table []*link.Port
}

// NewSwitch returns a switch with an empty forwarding table.
func NewSwitch(id int) *Switch {
	return &Switch{id: id}
}

// ID returns the switch identifier.
func (s *Switch) ID() int { return s.id }

// AddRoute directs packets destined for host dst out the given port,
// replacing any previous route for dst.
func (s *Switch) AddRoute(dst int, out *link.Port) {
	if dst < 0 {
		panic(fmt.Sprintf("switch %d: negative route destination %d", s.id, dst))
	}
	for dst >= len(s.table) {
		s.table = append(s.table, nil)
	}
	s.table[dst] = out
}

// Route returns the output port for host dst, or nil if none is set.
// It exists for forwarding-table inspection (tests, tahoe-sim
// -validate); the hot path is Deliver.
func (s *Switch) Route(dst int) *link.Port {
	if dst < 0 || dst >= len(s.table) {
		return nil
	}
	return s.table[dst]
}

// Deliver implements link.Receiver: look up the output port for the
// packet's destination and enqueue it there.
func (s *Switch) Deliver(p *packet.Packet) {
	if p.Dst < 0 || p.Dst >= len(s.table) || s.table[p.Dst] == nil {
		panic(fmt.Sprintf("switch %d: no route to host %d for %v", s.id, p.Dst, p))
	}
	s.table[p.Dst].Send(p)
}

// Host terminates TCP connections. Incoming packets are charged the
// host processing time before reaching their endpoint; outgoing packets
// go straight to the host's output port.
type Host struct {
	eng        *sim.Engine
	id         int
	out        *link.Port
	processing time.Duration
	// endpoints is indexed by connection id. Connection ids are small
	// dense integers, so a slice keeps the per-packet dispatch a bounds
	// check instead of a map probe.
	endpoints []Handler

	// received counts packets accepted by this host, for conservation
	// checks.
	received uint64

	// obs, when non-nil, receives a Deliver trace event for every packet
	// this host accepts; obsLoc is its interned location ("host0", ...).
	obs    *obs.Tracer
	obsLoc obs.Loc
}

// NewHost returns a host with the given per-packet processing delay.
// Attach endpoints and set the output port before delivering traffic.
func NewHost(eng *sim.Engine, id int, processing time.Duration) *Host {
	return &Host{
		eng:        eng,
		id:         id,
		processing: processing,
	}
}

// ID returns the host identifier used in packet Src/Dst fields.
func (h *Host) ID() int { return h.id }

// SetOutput attaches the host's output port (toward its switch).
func (h *Host) SetOutput(out *link.Port) { h.out = out }

// SetObs attaches a tracer to the host; arriving packets then emit
// Deliver events at the named location. Call before the run starts.
func (h *Host) SetObs(t *obs.Tracer, name string) {
	h.obs = t
	h.obsLoc = t.Loc(name)
}

// Attach registers the endpoint that handles packets of connection conn
// arriving at this host.
func (h *Host) Attach(conn int, ep Handler) {
	if conn < 0 {
		panic(fmt.Sprintf("host %d: negative conn id %d", h.id, conn))
	}
	if h.endpoint(conn) != nil {
		panic(fmt.Sprintf("host %d: endpoint for conn %d already attached", h.id, conn))
	}
	if conn >= len(h.endpoints) {
		// Conn IDs are global, so a host that terminates connection k
		// indexes straight to k even when it handles few connections:
		// grow to the target in one step rather than element-wise.
		h.endpoints = append(h.endpoints, make([]Handler, conn+1-len(h.endpoints))...)
	}
	h.endpoints[conn] = ep
}

// endpoint returns the handler for conn, or nil if none is attached.
func (h *Host) endpoint(conn int) Handler {
	if conn < 0 || conn >= len(h.endpoints) {
		return nil
	}
	return h.endpoints[conn]
}

// Received returns the number of packets this host has accepted.
func (h *Host) Received() uint64 { return h.received }

// Deliver implements link.Receiver: after the processing delay, the
// packet is handed to its connection's endpoint. The delayed hand-off is
// a typed event bound to the host's dispatch step, so the per-packet
// path schedules no closure.
func (h *Host) Deliver(p *packet.Packet) {
	if h.endpoint(p.Conn) == nil {
		panic(fmt.Sprintf("host %d: no endpoint for conn %d (%v)", h.id, p.Conn, p))
	}
	h.received++
	if h.obs != nil {
		h.obs.Packet(obs.Deliver, h.eng.Now(), h.obsLoc, p, 0)
	}
	if h.processing == 0 {
		h.endpoints[p.Conn].Handle(p)
		return
	}
	h.eng.SchedulePacket(h.processing, (*hostDispatch)(h), p)
}

// hostDispatch is the Host's second sim.PacketSink identity: the
// endpoint hand-off that runs once the processing delay has elapsed.
// (Host.Deliver itself is the first — the arrival from the wire.) The
// pointer conversion is free, so scheduling the dispatch allocates
// nothing.
type hostDispatch Host

// Deliver hands the processed packet to its connection's endpoint.
func (hd *hostDispatch) Deliver(p *packet.Packet) {
	h := (*Host)(hd)
	h.endpoints[p.Conn].Handle(p)
}

// Send transmits p out the host's port. It reports whether the packet
// was accepted by the port's buffer.
func (h *Host) Send(p *packet.Packet) bool {
	if h.out == nil {
		panic(fmt.Sprintf("host %d: no output port", h.id))
	}
	return h.out.Send(p)
}
