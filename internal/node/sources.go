package node

import (
	"fmt"
	"math/rand"
	"time"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

// Net is the outbound interface a traffic source writes to: a host (or
// a delay element in front of one). It mirrors tcp.Network without
// importing the tcp package.
type Net interface {
	Send(p *packet.Packet) bool
}

// SourceConfig describes a non-TCP traffic generator: the addressing it
// stamps on packets, the packet size, the line rate it offers while
// active, and its packet-ID stream. Unlike a TCP sender it never reacts
// to the network — no ACK clock, no window — which is exactly what
// makes it useful as unresponsive cross-traffic.
type SourceConfig struct {
	// Conn/Src/Dst are stamped into every packet for routing and traces.
	Conn, Src, Dst int
	// Size is the packet length in bytes (> 0).
	Size int
	// Rate is the offered bit rate while the source is active (> 0).
	Rate int64
	// IDFirst/IDStride parameterize the packet-ID stream, mirroring
	// tcp.NewIDGen so IDs stay unique and partition-independent.
	IDFirst, IDStride uint64
	// Pool supplies packets; nil allocates.
	Pool *packet.Pool
}

func (c *SourceConfig) validate() {
	if c.Size <= 0 {
		panic(fmt.Sprintf("node: source conn %d needs a positive packet size, got %d", c.Conn, c.Size))
	}
	if c.Rate <= 0 {
		panic(fmt.Sprintf("node: source conn %d needs a positive rate, got %d", c.Conn, c.Rate))
	}
}

// interval returns the inter-packet gap at the configured rate.
func (c *SourceConfig) interval() time.Duration {
	return time.Duration(int64(c.Size) * 8 * int64(time.Second) / c.Rate)
}

// emit builds and sends one packet.
func (c *SourceConfig) emit(net Net, nextID *uint64, seq *int) {
	p := c.Pool.Get()
	p.ID = *nextID
	*nextID += c.IDStride
	p.Kind = packet.Data
	p.Conn = c.Conn
	p.Src, p.Dst = c.Src, c.Dst
	p.Seq = *seq
	*seq++
	p.Size = c.Size
	net.Send(p)
}

// CBRSource sends fixed-size packets at a constant bit rate from Start
// until the end of the run — the unresponsive UDP-like cross-traffic of
// the two-way-traffic experiments. It needs no randomness and therefore
// no seed.
type CBRSource struct {
	eng    *sim.Engine
	net    Net
	cfg    SourceConfig
	tick   func()
	nextID uint64
	seq    int
	sent   uint64
}

// NewCBRSource returns an unstarted constant-rate source.
func NewCBRSource(eng *sim.Engine, net Net, cfg SourceConfig) *CBRSource {
	cfg.validate()
	s := &CBRSource{eng: eng, net: net, cfg: cfg, nextID: cfg.IDFirst}
	if s.nextID == 0 {
		s.nextID = 1
	}
	if s.cfg.IDStride == 0 {
		s.cfg.IDStride = 1
	}
	s.tick = s.send // bind once; the per-packet path schedules no closure
	return s
}

// Start begins transmission at the current simulated time.
func (s *CBRSource) Start() { s.send() }

// Sent returns the number of packets emitted so far.
func (s *CBRSource) Sent() uint64 { return s.sent }

func (s *CBRSource) send() {
	s.cfg.emit(s.net, &s.nextID, &s.seq)
	s.sent++
	s.eng.Schedule(s.cfg.interval(), s.tick)
}

// OnOffSource alternates between exponentially distributed ON periods,
// during which it sends at the configured rate, and exponentially
// distributed OFF silences — the telnet-like intermittent source of the
// paper's traffic mix discussions. All randomness comes from the
// provided RNG, so a fixed seed reproduces the exact schedule.
type OnOffSource struct {
	eng     *sim.Engine
	net     Net
	cfg     SourceConfig
	onMean  time.Duration
	offMean time.Duration
	rng     *rand.Rand

	tick   func()
	resume func()
	onEnd  time.Duration
	nextID uint64
	seq    int
	sent   uint64
}

// NewOnOffSource returns an unstarted exponential on/off source. The
// RNG is required: an on/off source without a seeded stream would be
// unreproducible.
func NewOnOffSource(eng *sim.Engine, net Net, cfg SourceConfig, onMean, offMean time.Duration, rng *rand.Rand) *OnOffSource {
	cfg.validate()
	if onMean <= 0 || offMean <= 0 {
		panic(fmt.Sprintf("node: on/off source conn %d needs positive period means (on %v, off %v)", cfg.Conn, onMean, offMean))
	}
	if rng == nil {
		panic(fmt.Sprintf("node: on/off source conn %d needs a seeded RNG", cfg.Conn))
	}
	s := &OnOffSource{eng: eng, net: net, cfg: cfg, onMean: onMean, offMean: offMean, rng: rng, nextID: cfg.IDFirst}
	if s.nextID == 0 {
		s.nextID = 1
	}
	if s.cfg.IDStride == 0 {
		s.cfg.IDStride = 1
	}
	s.tick = s.send
	s.resume = s.beginOn
	return s
}

// Start begins the first ON period at the current simulated time.
func (s *OnOffSource) Start() { s.beginOn() }

// Sent returns the number of packets emitted so far.
func (s *OnOffSource) Sent() uint64 { return s.sent }

func (s *OnOffSource) expDur(mean time.Duration) time.Duration {
	return time.Duration(s.rng.ExpFloat64() * float64(mean))
}

func (s *OnOffSource) beginOn() {
	s.onEnd = s.eng.Now() + s.expDur(s.onMean)
	s.send()
}

func (s *OnOffSource) send() {
	if s.eng.Now() >= s.onEnd {
		s.eng.Schedule(s.expDur(s.offMean), s.resume)
		return
	}
	s.cfg.emit(s.net, &s.nextID, &s.seq)
	s.sent++
	s.eng.Schedule(s.cfg.interval(), s.tick)
}

// Sink is the terminal endpoint of a source connection: it counts and
// releases everything that arrives. It implements Handler, so it
// attaches to a Host like a TCP receiver.
type Sink struct {
	pool     *packet.Pool
	received int
	bytes    uint64
}

// NewSink returns a counting sink releasing into pool (nil leaves
// packets to the garbage collector).
func NewSink(pool *packet.Pool) *Sink { return &Sink{pool: pool} }

// Handle implements Handler: count the arrival and release the packet
// (the sink is its terminal owner).
func (s *Sink) Handle(p *packet.Packet) {
	s.received++
	s.bytes += uint64(p.Size)
	s.pool.Put(p)
}

// Received returns the number of packets delivered to the sink.
func (s *Sink) Received() int { return s.received }

// Bytes returns the total payload bytes delivered to the sink.
func (s *Sink) Bytes() uint64 { return s.bytes }
