package model

import (
	"testing"
	"time"
)

func TestCBRPackets(t *testing.T) {
	// 10 kbit/s of 500 B packets = 2.5 packets/s.
	if got := CBRPackets(10_000, 500, 100*time.Second); got != 250 {
		t.Fatalf("CBRPackets = %v, want 250", got)
	}
	if got := CBRPackets(10_000, 0, time.Second); got != 0 {
		t.Fatalf("CBRPackets with zero size = %v, want 0", got)
	}
}

func TestOnOffDutyCycle(t *testing.T) {
	cases := []struct {
		on, off time.Duration
		want    float64
	}{
		{500 * time.Millisecond, 500 * time.Millisecond, 0.5},
		{time.Second, 3 * time.Second, 0.25},
		{time.Second, 0, 1},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := OnOffDutyCycle(c.on, c.off); got != c.want {
			t.Fatalf("OnOffDutyCycle(%v, %v) = %v, want %v", c.on, c.off, got, c.want)
		}
	}
}

func TestCrossLoad(t *testing.T) {
	if got := CrossLoad(10_000, 50_000); got != 0.2 {
		t.Fatalf("CrossLoad = %v, want 0.2", got)
	}
	if got := CrossLoad(10_000, 0); got != 0 {
		t.Fatalf("CrossLoad with zero bandwidth = %v, want 0", got)
	}
}
