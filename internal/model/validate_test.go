package model

// Model-vs-simulation validation: every law in this package is checked
// against the discrete-event simulator.

import (
	"testing"
	"time"

	"tahoedyn/internal/core"
)

func TestQueueLawAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	cases := [][]int{{15, 15, 15}, {20, 10}, {30}, {8, 9, 10}, {5}}
	for _, windows := range cases {
		cfg := core.DumbbellConfig(time.Second, 0) // infinite buffers
		for _, w := range windows {
			cfg.Conns = append(cfg.Conns, core.ConnSpec{
				SrcHost: 0, DstHost: 1, FixedWnd: w, Start: -1,
			})
		}
		cfg.Warmup = 100 * time.Second
		cfg.Duration = 400 * time.Second
		res := core.Run(cfg)
		want := OneWayQueueLength(windows, cfg.PipeSize())
		got := res.Q1().TimeAverage(cfg.Warmup, cfg.Duration)
		// The law predicts alternation between q and q+1 plus the
		// in-service packet counted by the trace; allow ±1.5.
		if got < want-0.5 || got > want+1.5 {
			t.Errorf("windows %v: mean queue %.2f, law predicts %.1f", windows, got, want)
		}
	}
}

func TestZeroACKUtilizationLawAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	cases := []struct {
		tau    time.Duration
		w1, w2 int
	}{
		{time.Second, 60, 20},
		{time.Second, 55, 20},
		{10 * time.Millisecond, 40, 20},
		{10 * time.Millisecond, 30, 25},
	}
	for _, c := range cases {
		cfg := core.DumbbellConfig(c.tau, 0)
		cfg.AckSize = 0
		cfg.Conns = []core.ConnSpec{
			{SrcHost: 0, DstHost: 1, FixedWnd: c.w1, Start: -1},
			{SrcHost: 1, DstHost: 0, FixedWnd: c.w2, Start: -1},
		}
		cfg.Warmup = 100 * time.Second
		cfg.Duration = 500 * time.Second
		if ZeroACKMode(c.w1, c.w2, cfg.PipeSize()) != OutOfPhase {
			t.Fatalf("case %+v is not out-of-phase; fix the test grid", c)
		}
		res := core.Run(cfg)
		want := OutOfPhaseSlowLineUtilization(c.w1, c.w2)
		got := res.UtilReverse() // the smaller window's line
		if got < want-0.03 || got > want+0.03 {
			t.Errorf("τ=%v %d/%d: slow line util %.3f, law predicts %.3f",
				c.tau, c.w1, c.w2, got, want)
		}
		if res.UtilForward() < 0.995 {
			t.Errorf("τ=%v %d/%d: fast line not saturated (%.3f)", c.tau, c.w1, c.w2, res.UtilForward())
		}
	}
}

// The §4.2 ACK-clock law: with one-way traffic, ACKs arrive at the
// source spaced by at least one data transmission time — for any window.
func TestOneWayAckSpacingLawAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	for _, w := range []int{5, 10, 20, 30} {
		cfg := core.DumbbellConfig(10*time.Millisecond, 0)
		cfg.Conns = []core.ConnSpec{{SrcHost: 0, DstHost: 1, FixedWnd: w, Start: -1}}
		cfg.Warmup = 50 * time.Second
		cfg.Duration = 300 * time.Second
		res := core.Run(cfg)
		dataTx := cfg.DataTxTime()
		arr := res.AckArrivals[0]
		for i := 1; i < len(arr); i++ {
			if arr[i] < cfg.Warmup {
				continue
			}
			if gap := arr[i] - arr[i-1]; gap < dataTx-time.Millisecond {
				t.Fatalf("wnd=%d: ACK gap %v below data tx time %v", w, gap, dataTx)
			}
		}
	}
}

func TestCapacityLawAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	// At each congestion epoch of the Fig. 2 configuration, the total
	// window has just exceeded the capacity C = ⌊B + 2P⌋ = 45.
	cfg := core.DumbbellConfig(time.Second, 20)
	for i := 0; i < 3; i++ {
		cfg.Conns = append(cfg.Conns, core.ConnSpec{SrcHost: 0, DstHost: 1, Start: -1})
	}
	cfg.Warmup = 200 * time.Second
	cfg.Duration = 800 * time.Second
	res := core.Run(cfg)
	p := paperParams(time.Second, 20)
	capacity := p.Capacity()

	checked := 0
	for _, d := range res.Drops {
		if d.T < cfg.Warmup {
			continue
		}
		total := 0.0
		for _, cw := range res.Cwnd {
			v := cw.At(d.T)
			total += float64(int(v))
		}
		// The windows at the drop instant should straddle the capacity:
		// within a few packets of C (the drop happens as the total
		// crosses it; collapse bookkeeping may already have reset one
		// window for later drops in the same epoch, so allow slack low).
		if total > float64(capacity)+3 {
			t.Errorf("total window %v at drop %v exceeds capacity %d by too much", total, d.T, capacity)
		}
		if total > float64(capacity)-3 {
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d drops occurred near capacity; capacity law looks wrong", checked)
	}
}

// §4.2's negative law: with two-way traffic there is *no* well-defined
// capacity — compressed ACKs in flight let the total window run far past
// the one-way C before anything drops, and the drop threshold wanders.
// Contrast two otherwise-identical 2-connection ensembles.
func TestTwoWayHasNoCapacityLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	run := func(twoWay bool) (lo, hi float64) {
		cfg := core.DumbbellConfig(time.Second, 20)
		if twoWay {
			cfg.Conns = []core.ConnSpec{
				{SrcHost: 0, DstHost: 1, Start: -1},
				{SrcHost: 1, DstHost: 0, Start: -1},
			}
		} else {
			cfg.Conns = []core.ConnSpec{
				{SrcHost: 0, DstHost: 1, Start: -1},
				{SrcHost: 0, DstHost: 1, Start: -1},
			}
		}
		cfg.Warmup = 200 * time.Second
		cfg.Duration = 900 * time.Second
		res := core.Run(cfg)
		lo, hi = 1e9, 0
		for _, d := range res.Drops {
			if d.T < cfg.Warmup {
				continue
			}
			total := 0.0
			for _, cw := range res.Cwnd {
				total += float64(int(cw.At(d.T)))
			}
			if total < lo {
				lo = total
			}
			if total > hi {
				hi = total
			}
		}
		return lo, hi
	}
	capacity := float64(paperParams(time.Second, 20).Capacity()) // 45

	lo1, hi1 := run(false)
	// One-way: drops exactly as the total window first exceeds C.
	if lo1 < capacity || hi1 > capacity+3 {
		t.Errorf("one-way drops at total window [%v, %v], want tight around C+1=%v",
			lo1, hi1, capacity+1)
	}

	lo2, hi2 := run(true)
	// Two-way: drops happen well past C (queued ACKs enlarge the pipe)
	// and over a wide range — no single capacity describes them.
	if lo2 < capacity+5 {
		t.Errorf("two-way drops start at total window %v, want well above C=%v", lo2, capacity)
	}
	if hi2-lo2 < 3 {
		t.Errorf("two-way drop window range [%v, %v] too tight — capacity looks well-defined", lo2, hi2)
	}
}

func TestDropsPerEpochLawAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	// Fig. 2: three connections in congestion avoidance lose exactly
	// DropsPerEpoch(3) = 3 packets per epoch. Count total drops /
	// epochs via 10 s grouping.
	cfg := core.DumbbellConfig(time.Second, 20)
	for i := 0; i < 3; i++ {
		cfg.Conns = append(cfg.Conns, core.ConnSpec{SrcHost: 0, DstHost: 1, Start: -1})
	}
	cfg.Warmup = 200 * time.Second
	cfg.Duration = 800 * time.Second
	res := core.Run(cfg)
	drops := 0
	var first, last time.Duration
	for _, d := range res.Drops {
		if d.T < cfg.Warmup {
			continue
		}
		if first == 0 {
			first = d.T
		}
		last = d.T
		drops++
	}
	if drops == 0 {
		t.Fatal("no drops")
	}
	// Epoch period ≈ 33 s; count epochs as span/period rounded.
	epochs := int(float64(last-first)/float64(33*time.Second) + 1.5)
	perEpoch := float64(drops) / float64(epochs)
	want := float64(DropsPerEpoch(3))
	if perEpoch < want-0.5 || perEpoch > want+0.5 {
		t.Fatalf("drops per epoch = %.2f, law predicts %v", perEpoch, want)
	}
}
