package model

import (
	"testing"
	"testing/quick"
	"time"
)

func paperParams(tau time.Duration, buffer int) Params {
	return Params{Bandwidth: 50_000, Delay: tau, DataSize: 500, Buffer: buffer}
}

func TestPipeSizeAndCapacity(t *testing.T) {
	p := paperParams(time.Second, 20)
	if got := p.PipeSize(); got != 12.5 {
		t.Fatalf("P = %v, want 12.5", got)
	}
	if got := p.Capacity(); got != 45 {
		t.Fatalf("C = %d, want 45", got)
	}
	p = paperParams(10*time.Millisecond, 20)
	if got := p.PipeSize(); got != 0.125 {
		t.Fatalf("P = %v, want 0.125", got)
	}
	if got := p.Capacity(); got != 20 {
		t.Fatalf("C = %d, want 20", got)
	}
	if got := p.DataTxTime(); got != 80*time.Millisecond {
		t.Fatalf("tx = %v, want 80ms", got)
	}
}

func TestOneWayQueueLength(t *testing.T) {
	// Three windows of 15 over a 12.5-packet pipe: q = 45 - 25 = 20.
	if got := OneWayQueueLength([]int{15, 15, 15}, 12.5); got != 20 {
		t.Fatalf("q = %v, want 20", got)
	}
	// Windows below the pipe: empty queue, not negative.
	if got := OneWayQueueLength([]int{5}, 12.5); got != 0 {
		t.Fatalf("q = %v, want 0", got)
	}
}

func TestSlowStartThresholdAfterLoss(t *testing.T) {
	if got := SlowStartThresholdAfterLoss(17, 1000); got != 8.5 {
		t.Fatalf("ssthresh = %v, want 8.5", got)
	}
	if got := SlowStartThresholdAfterLoss(1, 1000); got != 2 {
		t.Fatalf("ssthresh floor = %v, want 2", got)
	}
	if got := SlowStartThresholdAfterLoss(100, 10); got != 10 {
		t.Fatalf("ssthresh cap = %v, want 10", got)
	}
}

func TestZeroACKMode(t *testing.T) {
	// τ=1s: 2P = 25.
	if got := ZeroACKMode(60, 20, 12.5); got != OutOfPhase {
		t.Fatalf("60/20 = %v", got)
	}
	if got := ZeroACKMode(30, 25, 12.5); got != InPhase {
		t.Fatalf("30/25 = %v", got)
	}
	if got := ZeroACKMode(45, 20, 12.5); got != Boundary {
		t.Fatalf("45/20 = %v", got)
	}
	// Argument order must not matter.
	if ZeroACKMode(20, 60, 12.5) != ZeroACKMode(60, 20, 12.5) {
		t.Fatal("mode not symmetric in window order")
	}
	if InPhase.String() != "in-phase" || OutOfPhase.String() != "out-of-phase" ||
		Boundary.String() != "boundary" {
		t.Fatal("mode strings wrong")
	}
}

func TestOutOfPhaseSlowLineUtilization(t *testing.T) {
	cases := []struct {
		w1, w2 int
		want   float64
	}{
		{60, 20, 20.0 / 60}, {55, 20, 20.0 / 55}, {40, 20, 0.5}, {30, 25, 25.0 / 30},
	}
	for _, c := range cases {
		if got := OutOfPhaseSlowLineUtilization(c.w1, c.w2); got != c.want {
			t.Fatalf("util(%d,%d) = %v, want %v", c.w1, c.w2, got, c.want)
		}
	}
	if OutOfPhaseSlowLineUtilization(20, 60) != OutOfPhaseSlowLineUtilization(60, 20) {
		t.Fatal("utilization not symmetric in window order")
	}
	if OutOfPhaseSlowLineUtilization(0, 0) != 0 {
		t.Fatal("degenerate windows should give 0")
	}
}

func TestDropsPerEpochAndCycle(t *testing.T) {
	if DropsPerEpoch(3) != 3 {
		t.Fatal("acceleration analysis broken")
	}
	if got := OneWayCycleEpochs(45, 3); got != 7.5 {
		t.Fatalf("cycle epochs = %v, want 7.5", got)
	}
	if OneWayCycleEpochs(45, 0) != 0 {
		t.Fatal("zero connections should give 0")
	}
}

// Property: the queue law is monotone in every window and zero-clamped.
func TestQueueLawMonotoneProperty(t *testing.T) {
	f := func(ws []uint8, pipeRaw uint8) bool {
		pipe := float64(pipeRaw) / 4
		windows := make([]int, len(ws))
		for i, w := range ws {
			windows[i] = int(w % 50)
		}
		q := OneWayQueueLength(windows, pipe)
		if q < 0 {
			return false
		}
		if len(windows) == 0 {
			return q == 0
		}
		windows[0]++
		q2 := OneWayQueueLength(windows, pipe)
		return q2 >= q && q2 <= q+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
