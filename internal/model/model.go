// Package model encodes the paper's closed-form analysis: the
// fixed-window queue law, the path capacity, the acceleration/drop
// arithmetic, the §4.3.3 synchronization-mode criterion for
// zero-length-ACK systems, and the asymptotic idle-time scaling. The
// model package is what turns the reproduction's simulator into a
// *validated* theory: the test suite checks every law against
// simulation.
package model

import (
	"math"
	"time"
)

// Params are the path parameters entering the paper's formulas.
type Params struct {
	// Bandwidth is the bottleneck rate in bits per second.
	Bandwidth int64
	// Delay is the bottleneck one-way propagation delay τ.
	Delay time.Duration
	// DataSize is the data packet size in bytes.
	DataSize int
	// Buffer is the switch buffer in packets.
	Buffer int
}

// PipeSize returns P = μτ/M: the data packets in flight on one
// direction of the bottleneck (§2.2).
func (p Params) PipeSize() float64 {
	if p.DataSize <= 0 {
		return 0
	}
	return float64(p.Bandwidth) * p.Delay.Seconds() / float64(8*p.DataSize)
}

// Capacity returns C = ⌊B + 2P⌋: the maximal total one-way window that
// does not drop packets (§3.1). Valid for one-way traffic only; §4.2
// shows two-way traffic has no well-defined capacity.
func (p Params) Capacity() int {
	return int(math.Floor(float64(p.Buffer) + 2*p.PipeSize()))
}

// DataTxTime returns the bottleneck serialization time of a data packet.
func (p Params) DataTxTime() time.Duration {
	return time.Duration(int64(p.DataSize) * 8 * int64(time.Second) / p.Bandwidth)
}

// OneWayQueueLength returns the §3.1 steady-state queue law for one-way
// fixed-window traffic:
//
//	q = max(0, Σwnd − 2P)
//
// (the queue alternates between q and q+1 as packets arrive and depart).
func OneWayQueueLength(windows []int, pipe float64) float64 {
	sum := 0
	for _, w := range windows {
		sum += w
	}
	return math.Max(0, float64(sum)-2*pipe)
}

// DropsPerEpoch returns the acceleration analysis of §3.1: during a
// congestion epoch each connection loses exactly as many packets as its
// window-increase acceleration, so with every connection in congestion
// avoidance (acceleration 1) the total equals the connection count.
func DropsPerEpoch(connections int) int { return connections }

// SlowStartThresholdAfterLoss returns the §2.1 drop response value
// ssthresh = max(min(cwnd/2, maxwnd), 2).
func SlowStartThresholdAfterLoss(cwnd float64, maxwnd int) float64 {
	ss := math.Min(cwnd/2, float64(maxwnd))
	if ss < 2 {
		return 2
	}
	return ss
}

// Mode is a §4.3.3 synchronization regime.
type Mode int

const (
	// InPhase is the W1 < W2 + 2P regime: equal queue maxima, neither
	// line fully utilized (strict inequality).
	InPhase Mode = iota
	// OutOfPhase is the W1 > W2 + 2P regime: one line full, the other
	// underutilized, unequal queue maxima.
	OutOfPhase
	// Boundary is the measure-zero W1 = W2 + 2P case the conjecture
	// leaves open.
	Boundary
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case InPhase:
		return "in-phase"
	case OutOfPhase:
		return "out-of-phase"
	default:
		return "boundary"
	}
}

// ZeroACKMode applies the §4.3.3 conjecture for the zero-length-ACK
// fixed-window system. w1 must be the larger window (callers may swap).
func ZeroACKMode(w1, w2 int, pipe float64) Mode {
	if w1 < w2 {
		w1, w2 = w2, w1
	}
	lhs := float64(w1)
	rhs := float64(w2) + 2*pipe
	switch {
	case lhs > rhs:
		return OutOfPhase
	case lhs < rhs:
		return InPhase
	default:
		return Boundary
	}
}

// OutOfPhaseSlowLineUtilization predicts the underutilized line's
// utilization in the out-of-phase zero-ACK regime. Each cycle the
// saturated line carries the larger window's worth of data while the
// other line carries only the smaller window's worth in the same time,
// so
//
//	util = W2 / W1.
//
// This law is validated against simulation in the model tests (measured
// 20/60 → 33.3 %, 20/55 → 36.4 %, 25/30 → 83.4 %, 20/40 → 50.0 %).
func OutOfPhaseSlowLineUtilization(w1, w2 int) float64 {
	if w1 < w2 {
		w1, w2 = w2, w1
	}
	if w1 == 0 {
		return 0
	}
	return float64(w2) / float64(w1)
}

// OneWayCycleEpochs returns the number of congestion-avoidance epochs in
// one oscillation cycle of a single one-way ensemble of n synchronized
// connections: the total window climbs from roughly C/2 + n·(recovery
// overshoot) back to C at n windows-plus-one per epoch... to first
// order, (C − C/2)/n = C/(2n) epochs (§3.1's cycle-length ∝ buffer
// argument). It is a first-order estimate, used for sizing runs rather
// than as an asserted law.
func OneWayCycleEpochs(capacity, connections int) float64 {
	if connections <= 0 {
		return 0
	}
	return float64(capacity) / float64(2*connections)
}

// IdleScalingExponent is the asymptotic §3.1 claim: one-way idle time
// falls as C⁻² (quoted as B⁻² in the paper, the same thing once B ≫ 2P).
const IdleScalingExponent = -2.0

// Non-TCP cross-traffic arithmetic: the offered load of the
// unresponsive sources sharing the paper's bottleneck (§5's open-system
// concern). An unresponsive stream keeps its offered rate, so the TCP
// ensemble sees a bottleneck of (1 − load)·μ.

// CBRPackets returns the packet count a constant-bit-rate source of the
// given rate (bits/s) and packet size (bytes) offers over a window.
func CBRPackets(rate int64, size int, window time.Duration) float64 {
	if size <= 0 {
		return 0
	}
	return float64(rate) * window.Seconds() / float64(8*size)
}

// OnOffDutyCycle returns the long-run fraction of time an exponential
// on/off source spends sending: on/(on+off). The source's mean offered
// rate is its peak rate times this factor.
func OnOffDutyCycle(onMean, offMean time.Duration) float64 {
	total := onMean + offMean
	if total <= 0 {
		return 0
	}
	return float64(onMean) / float64(total)
}

// CrossLoad returns the fraction of the bottleneck an unresponsive
// source of the given mean rate consumes; the responsive ensemble
// competes for the remaining (1 − CrossLoad) share.
func CrossLoad(rate, bandwidth int64) float64 {
	if bandwidth <= 0 {
		return 0
	}
	return float64(rate) / float64(bandwidth)
}
