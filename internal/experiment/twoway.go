package experiment

import (
	"fmt"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/trace"
)

// Fig3TenConns reproduces Figure 3 and the §3.2 discussion: ten
// connections, five in each direction, τ = 0.01 s, buffer 30. The paper
// reports rapid queue fluctuations, out-of-phase queue oscillations,
// ~91 % utilization, 99.8 % of drops being data packets, roughly ten
// drops per congestion epoch, and — against the usual rule of thumb —
// *lower* (~87 %) utilization when the buffer doubles to 60.
func Fig3TenConns(opts Options) *Outcome {
	build := func(buffer int) core.Config {
		cfg := core.DumbbellConfig(10*time.Millisecond, buffer)
		cfg.Seed = opts.seed()
		for i := 0; i < 5; i++ {
			cfg.Conns = append(cfg.Conns,
				core.ConnSpec{SrcHost: 0, DstHost: 1, Start: -1},
				core.ConnSpec{SrcHost: 1, DstHost: 0, Start: -1})
		}
		cfg.Warmup = opts.scale(200 * time.Second)
		cfg.Duration = opts.scale(800 * time.Second)
		return cfg
	}
	res := runCore(opts, build(30))
	res60 := runCore(opts, build(60))

	util := res.UtilForward()
	util60 := res60.UtilForward()
	qmode, qr := queuePhase(res)
	epochs := measuredEpochs(res, 2*time.Second)
	drops := dropsAfter(res.Drops, res.MeasureFrom)
	dataFrac := 0.0
	if len(drops) > 0 {
		dataFrac = 1 - float64(ackDropCount(res))/float64(len(drops))
	}
	window := res.MeasureTo - res.MeasureFrom
	rises := analysis.RapidRises(res.Q1(), res.MeasureFrom, res.MeasureTo,
		res.Cfg.DataTxTime(), 4)
	risesPerMinute := float64(rises) / window.Minutes()

	o := &Outcome{
		ID:     "fig3-tenconns",
		Title:  "Ten connections, 5 each way, τ=0.01s, B=30 (Fig. 3)",
		Result: res,
		Series: []*trace.Series{res.Q1(), res.Q2()},
	}
	o.PlotFrom, o.PlotTo = plotWindow(res, 30*time.Second)
	o.Metrics = []Metric{
		metric("bottleneck utilization (B=30)", "≈ 91 %", inBand(util, 0.82, 0.98), "%.1f %%", util*100),
		metric("utilization with B=60", "≈ 87 % (lower than B=30)",
			util60 < util+0.01, "%.1f %%", util60*100),
		metric("queue synchronization", "out-of-phase", qmode == analysis.PhaseOut,
			"%v (r=%.2f)", qmode, qr),
		metric("rapid queue fluctuations", "≥4-packet jumps within one data tx time",
			risesPerMinute > 10, "%.0f rapid rises/min", risesPerMinute),
		metric("fraction of drops that are data", "99.8 %",
			dataFrac >= 0.99, "%.2f %%", dataFrac*100),
		metric("mean drops per congestion epoch", "≈ 10 (the total acceleration)",
			inBand(meanDropsPerEpoch(epochs), 4, 20), "%.1f", meanDropsPerEpoch(epochs)),
	}
	o.Notes = append(o.Notes, epochLossSummary(epochs))
	return o
}

// Fig45TwoWaySmallPipe reproduces Figures 4 and 5: one connection in
// each direction, τ = 0.01 s, buffer 20. The paper reports out-of-phase
// window synchronization, congestion epochs in which one connection
// loses two packets and the other none (alternating), ~70 % utilization,
// and — the headline counterintuitive result — that utilization stays
// ~70 % when the buffer grows to 60 and 120.
func Fig45TwoWaySmallPipe(opts Options) *Outcome {
	run := func(buffer int) *core.Result {
		cfg := twoWayConfig(10*time.Millisecond, buffer, opts.seed())
		cfg.Warmup = opts.scale(200 * time.Second)
		cfg.Duration = opts.scale(800 * time.Second)
		return runCore(opts, cfg)
	}
	res := run(20)
	res60 := run(60)
	res120 := run(120)

	util := res.UtilForward()
	epochs := measuredEpochs(res, 2*time.Second)
	pat := analysis.ClassifyTwoConnDrops(epochs, 1, 2)
	oneSidedFrac := 0.0
	if pat.Epochs > 0 {
		oneSidedFrac = float64(pat.OneSided) / float64(pat.Epochs)
	}
	qmode, qr := queuePhase(res)
	wmode, wr := cwndPhase(res, 0, 1)
	comp := compression(res, 0)
	// §4.3.1's explanation for the buffer-insensitive idle time: queued
	// (compressed) ACKs inflate the *effective* pipe, and the inflation
	// grows with the buffer. Mean measured RTT is the probe.
	meanRTT := func(r *core.Result) time.Duration {
		return time.Duration(r.RTT[0].TimeAverage(r.MeasureFrom, r.MeasureTo) * float64(time.Second))
	}
	rtt20, rtt120 := meanRTT(res), meanRTT(res120)

	o := &Outcome{
		ID:     "fig4-5",
		Title:  "Two-way traffic, τ=0.01s, B=20: out-of-phase mode (Figs. 4, 5)",
		Result: res,
		Series: []*trace.Series{res.Q1(), res.Q2(), res.Cwnd[0], res.Cwnd[1]},
	}
	o.PlotFrom, o.PlotTo = plotWindow(res, 30*time.Second)
	o.Metrics = []Metric{
		metric("bottleneck utilization", "≈ 70 %", inBand(util, 0.60, 0.80), "%.1f %%", util*100),
		metric("utilization with B=60", "stays ≈ 70 %",
			inBand(res60.UtilForward(), util-0.1, util+0.1), "%.1f %%", res60.UtilForward()*100),
		metric("utilization with B=120", "stays ≈ 70 %",
			inBand(res120.UtilForward(), util-0.1, util+0.1), "%.1f %%", res120.UtilForward()*100),
		metric("window synchronization", "out-of-phase", wmode == analysis.PhaseOut,
			"%v (r=%.2f)", wmode, wr),
		metric("queue synchronization", "out-of-phase", qmode == analysis.PhaseOut,
			"%v (r=%.2f)", qmode, qr),
		metric("one-sided loss epochs", "one connection takes both drops",
			oneSidedFrac >= 0.5, "%.0f %% of %d epochs", oneSidedFrac*100, pat.Epochs),
		metric("loser alternates between epochs", "always",
			pat.AlternationRate() >= 0.8, "%.0f %% of %d pairs",
			pat.AlternationRate()*100, pat.OneSidedPairs),
		metric("ACK compression present", "square-wave queue jumps",
			comp.CompressedFraction() > 0.2, "%.0f %% gaps compressed, min gap %v",
			comp.CompressedFraction()*100, comp.MinGap),
		metric("effective pipe grows with buffer (§4.3.1)",
			"queueing delay inflates the pipe",
			rtt120 > 2*rtt20, "mean RTT %v (B=20) → %v (B=120)",
			rtt20.Round(10*time.Millisecond), rtt120.Round(10*time.Millisecond)),
		metric("ACK drops", "none", ackDropCount(res) == 0, "%d", ackDropCount(res)),
	}
	o.Notes = append(o.Notes, epochLossSummary(epochs))
	o.Notes = append(o.Notes, fmt.Sprintf(
		"utilization vs buffer: B=20 %.1f%%, B=60 %.1f%%, B=120 %.1f%% — extra buffer does not buy throughput",
		util*100, res60.UtilForward()*100, res120.UtilForward()*100))
	return o
}

// Fig67TwoWayLargePipe reproduces Figures 6 and 7: one connection in
// each direction, τ = 1 s, buffer 20. The paper reports in-phase
// synchronization, each connection losing exactly one packet per
// congestion epoch, and ~60 % utilization.
func Fig67TwoWayLargePipe(opts Options) *Outcome {
	cfg := twoWayConfig(time.Second, core.DefaultBuffer, opts.seed())
	cfg.Warmup = opts.scale(200 * time.Second)
	cfg.Duration = opts.scale(800 * time.Second)
	res := runCore(opts, cfg)

	util := res.UtilForward()
	epochs := measuredEpochs(res, 10*time.Second)
	pat := analysis.ClassifyTwoConnDrops(epochs, 1, 2)
	singleFrac := 0.0
	if pat.Epochs > 0 {
		singleFrac = float64(pat.SingleEach) / float64(pat.Epochs)
	}
	qmode, qr := queuePhase(res)
	wmode, wr := cwndPhase(res, 0, 1)

	o := &Outcome{
		ID:     "fig6-7",
		Title:  "Two-way traffic, τ=1s, B=20: in-phase mode (Figs. 6, 7)",
		Result: res,
		Series: []*trace.Series{res.Q1(), res.Q2(), res.Cwnd[0], res.Cwnd[1]},
	}
	o.PlotFrom, o.PlotTo = plotWindow(res, 140*time.Second)
	o.Metrics = []Metric{
		metric("bottleneck utilization", "≈ 60 %", inBand(util, 0.52, 0.72), "%.1f %%", util*100),
		metric("window synchronization", "in-phase", wmode == analysis.PhaseIn,
			"%v (r=%.2f)", wmode, wr),
		metric("queue synchronization", "in-phase", qmode == analysis.PhaseIn,
			"%v (r=%.2f)", qmode, qr),
		metric("epochs with 1 drop per connection", "every epoch",
			singleFrac >= 0.85, "%.0f %% of %d epochs", singleFrac*100, pat.Epochs),
		metric("ACK drops", "none", ackDropCount(res) == 0, "%d", ackDropCount(res)),
	}
	o.Notes = append(o.Notes, epochLossSummary(epochs))
	return o
}
