package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryNamesUniqueAndFindable(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range All() {
		if seen[d.Name] {
			t.Fatalf("duplicate experiment name %q", d.Name)
		}
		seen[d.Name] = true
		if d.Run == nil || d.Title == "" {
			t.Fatalf("incomplete definition %q", d.Name)
		}
		got, ok := Find(d.Name)
		if !ok || got.Name != d.Name {
			t.Fatalf("Find(%q) failed", d.Name)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find of unknown name succeeded")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.seed() != 1 {
		t.Fatalf("default seed = %d, want 1", o.seed())
	}
	if o.scale(10*time.Second) != 10*time.Second {
		t.Fatal("zero Scale should not rescale")
	}
	o.Scale = 0.5
	if o.scale(10*time.Second) != 5*time.Second {
		t.Fatal("Scale=0.5 should halve durations")
	}
}

func TestOutcomeWriteText(t *testing.T) {
	o := &Outcome{
		ID:    "x",
		Title: "t",
		Metrics: []Metric{
			metric("m1", "p1", true, "v1"),
			metric("m2", "p2", false, "v2"),
		},
		Notes: []string{"hello"},
	}
	if o.Passed() {
		t.Fatal("outcome with failing metric reported Passed")
	}
	var sb strings.Builder
	if err := o.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FAIL", "ok ", "BAD", "m1", "p2", "v2", "hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
