package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryNamesUniqueAndFindable(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range All() {
		if seen[d.Name] {
			t.Fatalf("duplicate experiment name %q", d.Name)
		}
		seen[d.Name] = true
		if d.Run == nil || d.Title == "" {
			t.Fatalf("incomplete definition %q", d.Name)
		}
		got, ok := Find(d.Name)
		if !ok || got.Name != d.Name {
			t.Fatalf("Find(%q) failed", d.Name)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find of unknown name succeeded")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.seed() != 1 {
		t.Fatalf("default seed = %d, want 1", o.seed())
	}
	if o.scale(10*time.Second) != 10*time.Second {
		t.Fatal("zero Scale should not rescale")
	}
	o.Scale = 0.5
	if o.scale(10*time.Second) != 5*time.Second {
		t.Fatal("Scale=0.5 should halve durations")
	}
}

func TestOptionsWorkers(t *testing.T) {
	cases := []struct{ parallel, wantMin int }{
		{0, 1}, {1, 1}, {4, 4},
	}
	for _, c := range cases {
		if got := (Options{Parallel: c.parallel}).workers(); got != c.wantMin {
			t.Fatalf("workers(Parallel=%d) = %d, want %d", c.parallel, got, c.wantMin)
		}
	}
	if got := (Options{Parallel: -1}).workers(); got < 1 {
		t.Fatalf("workers(Parallel=-1) = %d, want >= 1", got)
	}
}

// RunAll must return the registry in order, and an experiment with an
// internal sweep must produce identical metrics serial vs parallel.
func TestRunAllOrderAndParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	outs := RunAll(Options{Scale: 0.02, Parallel: 8})
	defs := All()
	if len(outs) != len(defs) {
		t.Fatalf("RunAll returned %d outcomes, want %d", len(outs), len(defs))
	}
	for i, o := range outs {
		if o.ID != defs[i].Name {
			t.Fatalf("outcome %d is %q, want %q", i, o.ID, defs[i].Name)
		}
	}
}

func TestModeBoundaryParallelMatchesSerial(t *testing.T) {
	serial := ModeBoundaryStudy(Options{Scale: 0.05})
	parallel := ModeBoundaryStudy(Options{Scale: 0.05, Parallel: 8})
	if len(serial.Metrics) != len(parallel.Metrics) {
		t.Fatalf("metric counts differ: %d vs %d", len(serial.Metrics), len(parallel.Metrics))
	}
	for i := range serial.Metrics {
		if serial.Metrics[i] != parallel.Metrics[i] {
			t.Fatalf("metric %d differs:\nserial:   %+v\nparallel: %+v",
				i, serial.Metrics[i], parallel.Metrics[i])
		}
	}
}

func TestOutcomeWriteText(t *testing.T) {
	o := &Outcome{
		ID:    "x",
		Title: "t",
		Metrics: []Metric{
			metric("m1", "p1", true, "v1"),
			metric("m2", "p2", false, "v2"),
		},
		Notes: []string{"hello"},
	}
	if o.Passed() {
		t.Fatal("outcome with failing metric reported Passed")
	}
	var sb strings.Builder
	if err := o.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FAIL", "ok ", "BAD", "m1", "p2", "v2", "hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
