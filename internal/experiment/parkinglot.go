package experiment

import (
	"fmt"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/topology"
)

// ParkingLotFairness runs the classic multi-bottleneck fairness probe
// on the new topology layer: a 3-hop parking lot where one long
// connection crosses every trunk against one single-hop cross connection
// per trunk. The paper stops at the dumbbell and the four-switch line of
// [19]; this experiment extends its §5 discussion to the canonical
// topology where per-bottleneck loss compounds. Tahoe's loss-driven
// window control charges the long connection a drop probability at every
// hop and a triple round-trip time, so it settles not merely below an
// equal share but one to two orders of magnitude below the cross
// connections — yet it keeps making steady progress, because each loss
// shrinks rather than closes its window.
func ParkingLotFairness(opts Options) *Outcome {
	const hops = 3
	g := topology.ParkingLot(hops)
	cfg := core.Config{
		Topology:   &g,
		TrunkDelay: 10 * time.Millisecond,
		Buffer:     30,
		Seed:       opts.seed(),
		Warmup:     opts.scale(100 * time.Second),
		Duration:   opts.scale(400 * time.Second),
	}
	// Connection 0 is the long flow; connections 1..hops each cross one
	// trunk.
	cfg.Conns = []core.ConnSpec{{SrcHost: 0, DstHost: hops, Start: -1}}
	for h := 0; h < hops; h++ {
		cfg.Conns = append(cfg.Conns, core.ConnSpec{SrcHost: h, DstHost: h + 1, Start: -1})
	}
	res := runCore(opts, cfg)

	long := res.Goodput[0]
	crossMean := 0.0
	crossMin := res.Goodput[1]
	for _, gp := range res.Goodput[1:] {
		crossMean += float64(gp)
		if gp < crossMin {
			crossMin = gp
		}
	}
	crossMean /= hops
	share := 0.0
	if crossMean > 0 {
		share = float64(long) / crossMean
	}
	jain := analysis.JainIndex(res.Goodput)
	minUtil := 1.0
	for i := range res.TrunkUtil {
		if u := res.TrunkUtil[i][0]; u < minUtil {
			minUtil = u
		}
	}
	// Queueing must happen at every hop, not only the first: each trunk is
	// a real bottleneck.
	minPeak := res.TrunkQueue[0][0].Max(res.MeasureFrom, res.MeasureTo)
	for i := 1; i < len(res.TrunkQueue); i++ {
		if p := res.TrunkQueue[i][0].Max(res.MeasureFrom, res.MeasureTo); p < minPeak {
			minPeak = p
		}
	}

	o := &Outcome{
		ID:     "parking-lot",
		Title:  "Parking-lot fairness: 3 bottlenecks, 1 long vs 3 cross connections",
		Result: res,
	}
	for i := range res.TrunkQueue {
		o.Series = append(o.Series, res.TrunkQueue[i][0])
	}
	o.Series = append(o.Series, res.Cwnd[0])
	o.PlotFrom, o.PlotTo = plotWindow(res, 60*time.Second)
	o.Metrics = []Metric{
		metric("every hop saturated", "all three trunks near full utilization",
			minUtil > 0.9, "min forward utilization %.1f %%", minUtil*100),
		metric("every hop queues", "standing queues at each bottleneck",
			minPeak >= 5, "min per-hop queue peak %.0f packets", minPeak),
		metric("long connection severely disadvantaged", "multi-hop loss compounds, well below equal share",
			long > 0 && float64(long) < 0.2*crossMean,
			"long/cross goodput ratio %.3f", share),
		metric("long connection not starved", "keeps delivering despite compound loss",
			share > 0.01, "long goodput %d packets (ratio %.3f)", long, share),
		metric("fairness index", "unfair but bounded (Jain in [0.5, 0.9])",
			inBand(jain, 0.5, 0.9), "Jain %.3f across 4 connections", jain),
	}
	o.Notes = append(o.Notes, fmt.Sprintf(
		"goodput long=%d cross=%v (min %d); drops in window: %d",
		long, res.Goodput[1:], crossMin, len(dropsAfter(res.Drops, res.MeasureFrom))))
	return o
}
