package experiment

// The reproduction's integration suite: every experiment must pass its
// paper-vs-measured acceptance bands at full scale. These are the
// strongest tests in the repository — they assert the *dynamics*, not
// just the plumbing.

import (
	"strings"
	"testing"
)

func runAndCheck(t *testing.T, name string) *Outcome {
	t.Helper()
	def, ok := Find(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	o := def.Run(Options{})
	var sb strings.Builder
	if err := o.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + sb.String())
	if !o.Passed() {
		t.Errorf("experiment %q failed its acceptance bands", name)
	}
	return o
}

func TestFig2OneWay(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "fig2-oneway")
}

func TestOneWaySmallPipe(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "oneway-smallpipe")
}

func TestOneWayBufferSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "oneway-buffers")
}

func TestFig3TenConns(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "fig3-tenconns")
}

func TestFig45OutOfPhase(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "fig4-5")
}

func TestFig67InPhase(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "fig6-7")
}

func TestFig8FixedWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "fig8-fixed")
}

func TestFig9FixedWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "fig9-fixed")
}

func TestZeroACKConjecture(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "zeroack-conjecture")
}

func TestACKCompressionProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "ack-compression")
}

func TestDelayedACKStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "delayed-ack")
}

func TestFourSwitchTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "four-switch")
}

func TestPacingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "pacing-ablation")
}

func TestRenoTwoWay(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "reno")
}

func TestRandomDropStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "random-drop")
}

func TestUnequalRTTStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "unequal-rtt")
}

func TestRedSyncStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "red-sync")
}

func TestCrossTrafficStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "cross-traffic")
}

func TestFairQueueStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "fair-queueing")
}

func TestParkingLotFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "parking-lot")
}

func TestCongestionWaveProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	o := runAndCheck(t, "congestion-wave")
	// The acceptance criterion: the wave must be seen propagating across
	// at least 3 bottleneck hops (here all 4).
	if len(o.Series) < 3 {
		t.Fatalf("wave experiment exposes %d hop series, want >= 3", len(o.Series))
	}
}

func TestWaveSpeedStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	o := runAndCheck(t, "wave-speed")
	if len(o.Series) < 8 {
		t.Fatalf("wave-speed exposes %d hop series, want 8", len(o.Series))
	}
}

func TestMeshWaveStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	o := runAndCheck(t, "mesh-wave")
	// The diameter-path metric guarantees >= 6 hops; each hop must have
	// exposed its queue series for the plot.
	if len(o.Series) < 6 {
		t.Fatalf("mesh-wave exposes %d hop series, want >= 6", len(o.Series))
	}
}

// Every experiment must at least run and produce metrics at tiny scale —
// the smoke path exercised even with -short skipped full runs.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("still several seconds of simulation")
	}
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			o := d.Run(Options{Scale: 0.1, Seed: 3})
			if o.ID == "" || len(o.Metrics) == 0 {
				t.Fatalf("experiment %q produced an empty outcome", d.Name)
			}
			for _, m := range o.Metrics {
				if m.Name == "" || m.Measured == "" {
					t.Fatalf("experiment %q has an unlabeled metric: %+v", d.Name, m)
				}
			}
		})
	}
}

func TestIncreaseRuleStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "increase-rule")
}

func TestModeBoundaryStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	runAndCheck(t, "mode-boundary")
}
