package experiment

import (
	"fmt"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/trace"
)

// FairQueueStudy contrasts the paper's FIFO switches with the Fair
// Queueing discipline of the §1-cited studies ([2] Davin & Heybey, [3]
// Demers, Keshav & Shenker). Per-connection bit-fair service means a
// clustered ACK train no longer waits behind the other connection's
// entire data cluster, so the ACK clock survives: ACK-compression, the
// square-wave fluctuations, and the out-of-phase idle time all vanish —
// and unequal-RTT unfairness is repaired.
func FairQueueStudy(opts Options) *Outcome {
	twoWay := func(d core.Discipline) *core.Result {
		cfg := twoWayConfig(10*time.Millisecond, core.DefaultBuffer, opts.seed())
		cfg.Discipline = d
		cfg.Warmup = opts.scale(200 * time.Second)
		cfg.Duration = opts.scale(800 * time.Second)
		return runCore(opts, cfg)
	}
	fifo := twoWay(core.FIFO)
	fq := twoWay(core.FairQueue)

	unequal := func(d core.Discipline) *core.Result {
		cfg := oneWayConfig(time.Second, core.DefaultBuffer, 3, opts.seed())
		cfg.Discipline = d
		cfg.Conns[1].ExtraDelay = 400 * time.Millisecond
		cfg.Conns[2].ExtraDelay = 800 * time.Millisecond
		cfg.Warmup = opts.scale(200 * time.Second)
		cfg.Duration = opts.scale(800 * time.Second)
		return runCore(opts, cfg)
	}
	uFIFO := unequal(core.FIFO)
	uFQ := unequal(core.FairQueue)

	compFIFO := compression(fifo, 0)
	compFQ := compression(fq, 0)
	risesFQ := analysis.RapidRises(fq.Q1(), fq.MeasureFrom, fq.MeasureTo, fq.Cfg.DataTxTime(), 4)
	jFIFO := analysis.JainIndex(uFIFO.Goodput)
	jFQ := analysis.JainIndex(uFQ.Goodput)

	o := &Outcome{
		ID:     "fair-queueing",
		Title:  "Fair Queueing gateways cure ACK-compression (extension, §1 citations)",
		Result: fq,
		Series: []*trace.Series{fifo.Q1(), fq.Q1()},
	}
	o.Series[0].Name = "fifo-Q1"
	o.Series[1].Name = "fq-Q1"
	o.PlotFrom, o.PlotTo = plotWindow(fq, 30*time.Second)
	o.Metrics = []Metric{
		metric("two-way utilization", "restored to ≈ full (FIFO ≈ 70 %)",
			fq.UtilForward() > 0.95, "%.1f %% vs %.1f %% FIFO",
			fq.UtilForward()*100, fifo.UtilForward()*100),
		metric("ACK compression", "eliminated: ACKs get bit-fair service",
			compFQ.CompressedFraction() < 0.1 && compFIFO.CompressedFraction() > 0.2,
			"%.0f %% vs %.0f %% FIFO",
			compFQ.CompressedFraction()*100, compFIFO.CompressedFraction()*100),
		metric("rapid queue fluctuations", "gone", risesFQ == 0, "%d rapid rises", risesFQ),
		metric("unequal-RTT fairness (Jain)", "repaired",
			jFQ > 0.9 && jFQ > jFIFO+0.2, "%.4f vs %.4f FIFO", jFQ, jFIFO),
	}
	o.Notes = append(o.Notes, fmt.Sprintf(
		"unequal-RTT goodputs: FIFO %v → FQ %v", uFIFO.Goodput, uFQ.Goodput))
	o.Notes = append(o.Notes,
		"this is the §1-cited Fair Queueing remedy: the ACK clock needs isolation, not buffer")
	return o
}
