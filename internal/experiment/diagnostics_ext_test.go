package experiment

// Probes for the extension experiments (Reno, Random Drop, unequal RTT).

import (
	"testing"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/packet"
)

func TestProbeRenoTwoWay(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	for _, tau := range []time.Duration{10 * time.Millisecond, time.Second} {
		cfg := twoWayConfig(tau, core.DefaultBuffer, 1)
		for i := range cfg.Conns {
			cfg.Conns[i].Reno = true
		}
		cfg.Warmup = 200 * time.Second
		cfg.Duration = 800 * time.Second
		res := core.Run(cfg)
		qmode, qr := queuePhase(res)
		comp := compression(res, 0)
		var fr, to uint64
		for _, st := range res.SenderStats {
			fr += st.FastRetransmits
			to += st.Timeouts
		}
		t.Logf("reno tau=%v: util=%.3f/%.3f qphase=%v(%.2f) comp=%.2f fastrtx=%d timeouts=%d",
			tau, res.UtilForward(), res.UtilReverse(), qmode, qr,
			comp.CompressedFraction(), fr, to)
	}
}

func TestProbeRandomDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	for _, disc := range []core.Discard{core.DropTail, core.RandomDrop} {
		// One-way, 3 connections: compare loss synchronization and
		// fairness.
		cfg := oneWayConfig(time.Second, core.DefaultBuffer, 3, 1)
		cfg.Discard = disc
		cfg.Warmup = 200 * time.Second
		cfg.Duration = 800 * time.Second
		res := core.Run(cfg)
		epochs := measuredEpochs(res, 10*time.Second)
		allThree := 0
		for _, e := range epochs {
			if len(e.LossByConn()) == 3 {
				allThree++
			}
		}
		t.Logf("oneway disc=%v: util=%.3f jain=%.4f epochs=%d allThreeLose=%d",
			disc, res.UtilForward(), analysis.JainIndex(res.Goodput), len(epochs), allThree)

		// Two-way small pipe.
		cfg2 := twoWayConfig(10*time.Millisecond, core.DefaultBuffer, 1)
		cfg2.Discard = disc
		cfg2.Warmup = 200 * time.Second
		cfg2.Duration = 800 * time.Second
		res2 := core.Run(cfg2)
		acks := 0
		for _, d := range dropsAfter(res2.Drops, cfg2.Warmup) {
			if d.Kind == packet.Ack {
				acks++
			}
		}
		t.Logf("twoway disc=%v: util=%.3f jain=%.4f ackdrops=%d",
			disc, res2.UtilForward(), analysis.JainIndex(res2.Goodput), acks)
	}
}

func TestProbeUnequalRTT(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	for _, extra := range []time.Duration{0, 100 * time.Millisecond, 400 * time.Millisecond} {
		cfg := oneWayConfig(time.Second, core.DefaultBuffer, 3, 1)
		cfg.Conns[1].ExtraDelay = extra
		cfg.Conns[2].ExtraDelay = 2 * extra
		cfg.Warmup = 200 * time.Second
		cfg.Duration = 800 * time.Second
		res := core.Run(cfg)
		clus := dataClustering(res, 0, 0)
		t.Logf("extra=%v: clustering=%.3f util=%.3f jain=%.4f goodput=%v",
			extra, clus, res.UtilForward(), analysis.JainIndex(res.Goodput), res.Goodput)
	}
}
