package experiment

import (
	"fmt"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/runner"
	"tahoedyn/internal/trace"
)

// ModeBoundaryStudy maps the §4.3.3 synchronization-mode boundary: "for
// a fixed buffer size, the synchronization is in-phase for large P and
// out-of-phase for small P. Similarly, for a fixed pipe size, the
// synchronization is usually in-phase for small buffers and out-of-phase
// for large buffers." The two-way system is multistable (a symmetric
// in-phase orbit coexists with the out-of-phase attractor), so each grid
// cell is run over several start-time seeds and judged by prevalence —
// matching the paper's own hedge, "usually".
func ModeBoundaryStudy(opts Options) *Outcome {
	// Fixed absolute seeds so the grid's statistics do not shift with
	// the caller's seed choice — the claim is about prevalence. All four
	// grid cells' seed runs are independent, so the whole 4×nSeeds grid
	// fans across the worker pool; counting happens over the
	// index-ordered results, which keeps the outcome identical for any
	// opts.Parallel.
	const nSeeds = 10
	cell := func(tau time.Duration, buffer int) []core.Config {
		cfgs := make([]core.Config, nSeeds)
		for seed := int64(1); seed <= nSeeds; seed++ {
			cfg := twoWayConfig(tau, buffer, seed)
			cfg.Warmup = opts.scale(200 * time.Second)
			cfg.Duration = opts.scale(800 * time.Second)
			cfgs[seed-1] = cfg
		}
		return cfgs
	}
	var grid []core.Config
	// Fixed pipe (τ = 300 ms, P = 3.75): sweep the buffer; fixed buffer
	// (B = 20): sweep the pipe.
	grid = append(grid, cell(300*time.Millisecond, 10)...)
	grid = append(grid, cell(300*time.Millisecond, 120)...)
	grid = append(grid, cell(10*time.Millisecond, 20)...)
	grid = append(grid, cell(time.Second, 20)...)
	results := runner.RunConfigs(opts.workers(), grid)
	outCount := func(cellIdx int) (int, *core.Result) {
		n := 0
		var last *core.Result
		for _, res := range results[cellIdx*nSeeds : (cellIdx+1)*nSeeds] {
			if m, _ := cwndPhase(res, 0, 1); m == analysis.PhaseOut {
				n++
			}
			last = res
		}
		return n, last
	}
	outSmallB, _ := outCount(0)
	outLargeB, res := outCount(1)
	outSmallP, _ := outCount(2)
	outLargeP, _ := outCount(3)

	o := &Outcome{
		ID:     "mode-boundary",
		Title:  "Synchronization-mode boundary vs buffer and pipe (§4.3.3)",
		Result: res,
		Series: []*trace.Series{res.Cwnd[0], res.Cwnd[1]},
	}
	o.PlotFrom, o.PlotTo = plotWindow(res, 140*time.Second)
	o.Metrics = []Metric{
		metric("fixed pipe, small buffer (B=10)", "usually in-phase",
			outSmallB <= 1, "out-of-phase in %d/%d seeds", outSmallB, nSeeds),
		metric("fixed pipe, large buffer (B=120)", "shifts toward out-of-phase",
			outLargeB >= 2 && outLargeB > outSmallB,
			"out-of-phase in %d/%d seeds (vs %d/%d at B=10)",
			outLargeB, nSeeds, outSmallB, nSeeds),
		metric("fixed buffer, small pipe (τ=10ms)", "usually out-of-phase",
			outSmallP >= nSeeds/2+1, "out-of-phase in %d/%d seeds", outSmallP, nSeeds),
		metric("fixed buffer, large pipe (τ=1s)", "in-phase",
			outLargeP == 0, "out-of-phase in %d/%d seeds", outLargeP, nSeeds),
	}
	o.Notes = append(o.Notes, fmt.Sprintf(
		"grid judged by prevalence over %d start-time seeds: the system is multistable and "+
			"often locks a perfectly symmetric in-phase orbit, especially at large buffers — "+
			"the paper's own hedge is \"usually\"", nSeeds))
	return o
}
