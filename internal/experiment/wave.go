package experiment

import (
	"fmt"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/topology"
)

// waveThreshold is the queue excess over the pre-pulse baseline that
// counts as "the wave has arrived" at a hop: three packets is well above
// the fixed-window cross traffic's jitter but far below the pulse's
// contribution.
const waveThreshold = 3.0

// CongestionWaveProbe watches a load transient propagate hop by hop
// down a chain of bottlenecks — the congestion-wave picture behind the
// paper's §4 queue dynamics, isolated with fixed windows so nothing
// adapts and the wavefront is clean. Four single-hop cross connections
// hold a steady standing queue on each trunk of a 5-switch chain; at a
// known instant a large fixed-window pulse connection from one end to
// the other dumps a window's worth of packets into the first hop. The
// pulse can reach hop i+1 no faster than hop i drains it, so each hop's
// queue rise lags the previous one's: a wave. The experiment measures
// the per-hop arrival time of the wavefront (first queue sample at
// baseline + 3) and the per-hop queue peak time, and requires both to
// be strictly ordered across all bottleneck hops.
func CongestionWaveProbe(opts Options) *Outcome {
	const hops = 4
	g := topology.Chain(hops + 1)
	cfg := core.Config{
		Topology:   &g,
		TrunkDelay: 10 * time.Millisecond,
		Buffer:     30,
		Seed:       opts.seed(),
		Warmup:     opts.scale(20 * time.Second),
		Duration:   opts.scale(120 * time.Second),
	}
	// One fixed-window cross connection per hop, started staggered so
	// their standing queues are established long before the pulse.
	for h := 0; h < hops; h++ {
		cfg.Conns = append(cfg.Conns, core.ConnSpec{
			SrcHost:  h,
			DstHost:  h + 1,
			FixedWnd: 4,
			Start:    opts.scale(time.Duration(h) * 250 * time.Millisecond),
		})
	}
	pulseAt := opts.scale(40 * time.Second)
	cfg.Conns = append(cfg.Conns, core.ConnSpec{
		SrcHost:  0,
		DstHost:  hops,
		FixedWnd: 25,
		Start:    pulseAt,
	})
	res := runCore(opts, cfg)

	// Per hop: baseline over the pre-pulse measurement window, then the
	// wavefront arrival and the queue peak after the pulse.
	waves := make([]hopWave, hops)
	for h := 0; h < hops; h++ {
		q := res.TrunkQueue[h][0]
		w := &waves[h]
		w.baseline = q.TimeAverage(res.MeasureFrom, pulseAt)
		w.arrival, w.arrived = analysis.FirstAbove(q, pulseAt, res.MeasureTo, w.baseline+waveThreshold)
		w.peakAt, w.peak = analysis.ArgMax(q, pulseAt, res.MeasureTo)
	}

	reached := 0
	for _, w := range waves {
		if w.arrived {
			reached++
		}
	}
	arrivalsOrdered := reached == hops
	peaksOrdered := true
	for h := 1; h < hops; h++ {
		if !waves[h].arrived || !waves[h-1].arrived || waves[h].arrival <= waves[h-1].arrival {
			arrivalsOrdered = false
		}
		if waves[h].peakAt <= waves[h-1].peakAt {
			peaksOrdered = false
		}
	}
	var span time.Duration
	if waves[0].arrived && waves[hops-1].arrived {
		span = waves[hops-1].arrival - waves[0].arrival
	}

	o := &Outcome{
		ID:     "congestion-wave",
		Title:  "Congestion wave: pulse propagation down a 4-bottleneck chain",
		Result: res,
	}
	for h := 0; h < hops; h++ {
		o.Series = append(o.Series, res.TrunkQueue[h][0])
	}
	o.PlotFrom = pulseAt - opts.scale(5*time.Second)
	if o.PlotFrom < res.MeasureFrom {
		o.PlotFrom = res.MeasureFrom
	}
	o.PlotTo = pulseAt + opts.scale(30*time.Second)
	if o.PlotTo > res.MeasureTo {
		o.PlotTo = res.MeasureTo
	}
	o.Metrics = []Metric{
		metric("wave reaches every bottleneck", "queue rise visible at all 4 hops",
			reached == hops, "%d of %d hops crossed baseline+%.0f", reached, hops, waveThreshold),
		metric("wavefront propagates in order", "arrival times strictly increasing with hop",
			arrivalsOrdered, "arrivals %s", waveTimes(waves, func(w hopWave) time.Duration { return w.arrival })),
		metric("queue peaks propagate in order", "peak times strictly increasing with hop",
			peaksOrdered, "peaks %s", waveTimes(waves, func(w hopWave) time.Duration { return w.peakAt })),
		metric("propagation is queue-limited", "end-to-end lag far above propagation delay",
			span > 4*cfg.TrunkDelay, "hop0→hop3 wavefront lag %v", span.Round(time.Millisecond)),
	}
	for h, w := range waves {
		o.Notes = append(o.Notes, fmt.Sprintf(
			"hop %d: baseline %.1f, wave at %v, peak %.0f at %v",
			h, w.baseline, w.arrival.Round(time.Millisecond), w.peak, w.peakAt.Round(time.Millisecond)))
	}
	return o
}

// hopWave is one bottleneck hop's view of the pulse: its pre-pulse
// queue baseline and the post-pulse wavefront arrival and queue peak.
type hopWave struct {
	baseline float64
	arrival  time.Duration
	arrived  bool
	peakAt   time.Duration
	peak     float64
}

// waveTimes formats one per-hop time per wave entry.
func waveTimes(waves []hopWave, f func(hopWave) time.Duration) string {
	s := ""
	for i, w := range waves {
		if i > 0 {
			s += " → "
		}
		s += f(w).Round(time.Millisecond).String()
	}
	return s
}
