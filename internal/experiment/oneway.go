package experiment

import (
	"fmt"
	"math"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/runner"
	"tahoedyn/internal/trace"
)

// Fig2OneWay reproduces Figure 2: three one-way connections, τ = 1 s,
// buffer 20. The paper reports ~90 % utilization, a ~34 s oscillation
// period, complete packet clustering, and in-phase window- and
// loss-synchronization with each connection losing exactly one packet
// per congestion epoch.
func Fig2OneWay(opts Options) *Outcome {
	cfg := oneWayConfig(time.Second, core.DefaultBuffer, 3, opts.seed())
	cfg.Warmup = opts.scale(200 * time.Second)
	cfg.Duration = opts.scale(800 * time.Second)
	res := runCore(opts, cfg)

	epochs := measuredEpochs(res, 10*time.Second)
	period := meanEpochPeriod(epochs)
	// Fraction of epochs in which every connection lost exactly one
	// packet.
	oneEach := 0
	for _, e := range epochs {
		by := e.LossByConn()
		if len(by) == 3 && by[1] == 1 && by[2] == 1 && by[3] == 1 {
			oneEach++
		}
	}
	oneEachFrac := 0.0
	if len(epochs) > 0 {
		oneEachFrac = float64(oneEach) / float64(len(epochs))
	}
	clus := dataClustering(res, 0, 0)
	// Window-synchronization: all pairs of cwnd series positively
	// correlated.
	minCorr := math.Inf(1)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			_, r := cwndPhase(res, i, j)
			if r < minCorr {
				minCorr = r
			}
		}
	}
	util := res.UtilForward()

	o := &Outcome{
		ID:     "fig2-oneway",
		Title:  "One-way traffic, 3 connections, τ=1s, B=20 (Fig. 2)",
		Result: res,
		Series: []*trace.Series{res.Q1(), res.Cwnd[0], res.Cwnd[1], res.Cwnd[2]},
	}
	o.PlotFrom, o.PlotTo = plotWindow(res, 140*time.Second)
	o.Metrics = []Metric{
		metric("bottleneck utilization", "≈ 90 %", inBand(util, 0.85, 0.95), "%.1f %%", util*100),
		metric("oscillation period", "≈ 34 s", period > 25*time.Second && period < 45*time.Second,
			"%v", period.Round(time.Second)),
		metric("epochs with 1 drop per connection", "all epochs", oneEachFrac >= 0.9,
			"%.0f %% of %d epochs", oneEachFrac*100, len(epochs)),
		metric("packet clustering", "complete", clus >= 0.8, "%.3f", clus),
		metric("window synchronization", "in-phase (all pairs)", minCorr > 0.2,
			"min pairwise corr %.2f", minCorr),
		metric("ACK drops", "none", ackDropCount(res) == 0, "%d", ackDropCount(res)),
	}
	return o
}

// OneWaySmallPipe reproduces the §3.1 remark that with τ = 0.01 s the
// one-way utilization is nearly 100 %, and demonstrates that one-way
// ACKs keep their clock: no compressed ACK gaps.
func OneWaySmallPipe(opts Options) *Outcome {
	cfg := oneWayConfig(10*time.Millisecond, core.DefaultBuffer, 3, opts.seed())
	cfg.Warmup = opts.scale(100 * time.Second)
	cfg.Duration = opts.scale(500 * time.Second)
	res := runCore(opts, cfg)

	util := res.UtilForward()
	comp := compression(res, 0)

	o := &Outcome{
		ID:     "oneway-smallpipe",
		Title:  "One-way traffic, 3 connections, τ=0.01s, B=20 (§3.1)",
		Result: res,
		Series: []*trace.Series{res.Q1()},
	}
	o.PlotFrom, o.PlotTo = plotWindow(res, 120*time.Second)
	o.Metrics = []Metric{
		metric("bottleneck utilization", "≈ 100 %", util >= 0.97, "%.1f %%", util*100),
		metric("compressed ACK gaps", "none (ACKs are a reliable clock)",
			comp.CompressedFraction() <= 0.05, "%.1f %% of %d gaps",
			comp.CompressedFraction()*100, comp.Gaps),
	}
	return o
}

// OneWayBufferSweep reproduces the §3.1 scaling claim: with one-way
// traffic, the bottleneck idle time vanishes as buffers grow —
// asymptotically like B⁻². (Contrast with the two-way out-of-phase mode,
// where idle time survives infinite buffers.) The power law is fit
// against the path capacity C = B + 2P, the quantity the cycle length is
// actually proportional to; the pure-B slope converges to the same -2
// only once B ≫ 2P.
func OneWayBufferSweep(opts Options) *Outcome {
	buffers := []int{20, 40, 60, 90, 120}
	idle := make([]float64, len(buffers))
	util := make([]float64, len(buffers))
	caps := make([]int, len(buffers))
	idleSeries := trace.NewSeries("idle-fraction-vs-buffer")
	cfgs := make([]core.Config, len(buffers))
	for i, b := range buffers {
		cfg := oneWayConfig(time.Second, b, 3, opts.seed())
		// Long runs: the oscillation period grows like C², so big
		// buffers need thousands of simulated seconds per cycle.
		cfg.Warmup = opts.scale(300 * time.Second)
		cfg.Duration = opts.scale(3300 * time.Second)
		cfgs[i] = cfg
	}
	results := runner.RunConfigs(opts.workers(), cfgs)
	var twoP float64
	for i, b := range buffers {
		res := results[i]
		twoP = 2 * cfgs[i].PipeSize()
		caps[i] = b + int(twoP)
		util[i] = res.UtilForward()
		idle[i] = 1 - util[i]
		// A time series used as an x/y table: x = buffer in "seconds"
		// for the TSV export.
		idleSeries.Append(time.Duration(b)*time.Second, idle[i])
	}

	// Utilization should be nondecreasing in B (small tolerance for the
	// discreteness of drop patterns).
	monotone := true
	for i := 1; i < len(util); i++ {
		if util[i] < util[i-1]-0.02 {
			monotone = false
		}
	}
	slope := fitLogLogSlope(caps, idle)

	o := &Outcome{
		ID:     "oneway-buffers",
		Title:  "One-way idle time vs buffer size (§3.1)",
		Series: []*trace.Series{idleSeries},
	}
	o.PlotFrom, o.PlotTo = 0, time.Duration(buffers[len(buffers)-1])*time.Second
	o.Metrics = []Metric{
		metric("utilization grows with buffer", "increasing", monotone,
			"utils %s", fmtPercents(util)),
		metric("idle-time power law vs capacity", "idle ≈ C⁻² asymptotically",
			inBand(slope, -2.8, -1.2), "log-log slope %.2f over C=%v", slope, caps),
	}
	o.Notes = append(o.Notes, fmt.Sprintf("buffers %v → idle %s", buffers, fmtPercents(idle)))
	return o
}

// fitLogLogSlope least-squares fits log(y) = a + s·log(x) and returns s.
// Zero y values are clamped to a tiny floor.
func fitLogLogSlope(xs []int, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		y := ys[i]
		if y < 1e-6 {
			y = 1e-6
		}
		lx, ly := math.Log(float64(xs[i])), math.Log(y)
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

func fmtPercents(vals []float64) string {
	s := ""
	for i, v := range vals {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.1f%%", v*100)
	}
	return s
}

// epochLossSummary is reused by the two-way experiments.
func epochLossSummary(epochs []analysis.Epoch) string {
	if len(epochs) == 0 {
		return "no epochs"
	}
	return fmt.Sprintf("%d epochs, %.1f drops/epoch", len(epochs), meanDropsPerEpoch(epochs))
}
