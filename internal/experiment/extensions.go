package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/trace"
)

// DelayedACKStudy reproduces the §5 delayed-ACK discussion: the option
// introduces an element of pacing by holding ACKs, which cuts the
// clusters at the bottleneck into smaller partial clusters and reduces —
// but, with appreciable window sizes, does not eliminate — the effect of
// ACK-compression. Cluster size is measured as the mean same-connection
// run length in the bottleneck departure stream (data of one connection
// interleaving with ACKs of the other), and compression as the fraction
// of compressed ACK gaps at the sender.
func DelayedACKStudy(opts Options) *Outcome {
	run := func(maxWnd int, delayed bool) *core.Result {
		cfg := twoWayConfig(10*time.Millisecond, core.DefaultBuffer, opts.seed())
		for i := range cfg.Conns {
			cfg.Conns[i].DelayedAck = delayed
			cfg.Conns[i].MaxWnd = maxWnd
		}
		cfg.Warmup = opts.scale(200 * time.Second)
		cfg.Duration = opts.scale(800 * time.Second)
		return runCore(opts, cfg)
	}
	smallOff := run(8, false)
	smallDel := run(8, true)
	largeDel := run(core.DefaultMaxWnd, true)
	largeOff := run(core.DefaultMaxWnd, false)

	runAt := func(res *core.Result) float64 {
		return analysis.MeanRunLength(depsAfter(res.TrunkDeps[0][0], res.MeasureFrom))
	}
	runSmallOff, runSmallDel := runAt(smallOff), runAt(smallDel)
	runLargeOff, runLargeDel := runAt(largeOff), runAt(largeDel)
	compSmallOff, compSmallDel := compression(smallOff, 0), compression(smallDel, 0)
	compLargeOff, compLargeDel := compression(largeOff, 0), compression(largeDel, 0)
	combined := largeDel.ReceiverStats[0].AcksCombined + largeDel.ReceiverStats[1].AcksCombined

	o := &Outcome{
		ID:     "delayed-ack",
		Title:  "Delayed-ACK option vs clustering and compression (§5)",
		Result: largeDel,
		Series: []*trace.Series{largeDel.Q1(), largeDel.Q2()},
	}
	o.PlotFrom, o.PlotTo = plotWindow(largeDel, 30*time.Second)
	o.Metrics = []Metric{
		metric("delayed-ACK combines ACKs", "fewer ACKs on the wire",
			combined > 0, "%d ACK pairs combined", combined),
		metric("maxwnd=8: clusters cut up", "a few small partial clusters",
			runSmallDel < 0.7*runSmallOff && runSmallDel <= 5,
			"mean run %.1f (vs %.1f with option off)", runSmallDel, runSmallOff),
		metric("maxwnd=8: compression reduced", "effect minimized",
			compSmallDel.CompressedFraction() < compSmallOff.CompressedFraction(),
			"%.0f %% vs %.0f %% with option off",
			compSmallDel.CompressedFraction()*100, compSmallOff.CompressedFraction()*100),
		metric("large windows: clusters shrink but remain", "partial clusters of appreciable size",
			runLargeDel < 0.7*runLargeOff && runLargeDel > 2,
			"mean run %.1f (vs %.1f with option off)", runLargeDel, runLargeOff),
		metric("large windows: compression persists", "reduced to some degree, not eliminated",
			compLargeDel.CompressedFraction() < compLargeOff.CompressedFraction() &&
				compLargeDel.CompressedFraction() > 0.15,
			"%.0f %% vs %.0f %% with option off",
			compLargeDel.CompressedFraction()*100, compLargeOff.CompressedFraction()*100),
	}
	return o
}

// FourSwitchTopology reproduces the §5 remark that the phenomena survive
// the more complicated topology of [19]: four switches in a line with 50
// connections whose path lengths split roughly equally between 1, 2 and
// 3 hops. The analysis of such a mesh is infeasible, but the signature
// observables — ACK-compression, queue oscillations with idle time, and
// only-partial clustering — are all present.
func FourSwitchTopology(opts Options) *Outcome {
	cfg := core.Config{
		Switches:   4,
		TrunkDelay: 10 * time.Millisecond,
		Buffer:     30,
		Seed:       opts.seed(),
	}
	// 50 connections with hop lengths 1, 2, 3 in rotation, random
	// direction and placement from the scenario seed.
	rng := rand.New(rand.NewSource(opts.seed() + 1000))
	for i := 0; i < 50; i++ {
		hops := 1 + i%3
		src := rng.Intn(4 - hops)
		dst := src + hops
		if rng.Intn(2) == 0 {
			src, dst = dst, src
		}
		cfg.Conns = append(cfg.Conns, core.ConnSpec{SrcHost: src, DstHost: dst, Start: -1})
	}
	cfg.Warmup = opts.scale(200 * time.Second)
	cfg.Duration = opts.scale(600 * time.Second)
	res := runCore(opts, cfg)

	// Aggregate over the middle trunk (index 1), the busiest.
	midQ := res.TrunkQueue[1][0]
	rises := analysis.RapidRises(midQ, res.MeasureFrom, res.MeasureTo, res.Cfg.DataTxTime(), 4)
	clus := dataClustering(res, 1, 0)
	minUtil, maxUtil := 1.0, 0.0
	for i := range res.TrunkUtil {
		for dir := range res.TrunkUtil[i] {
			u := res.TrunkUtil[i][dir]
			if u < minUtil {
				minUtil = u
			}
			if u > maxUtil {
				maxUtil = u
			}
		}
	}
	// Compression measured across all senders: max fraction seen.
	best := 0.0
	for k := range res.AckArrivals {
		if f := compression(res, k).CompressedFraction(); f > best {
			best = f
		}
	}

	o := &Outcome{
		ID:     "four-switch",
		Title:  "Four-switch topology with 50 mixed-path connections (§5, [19])",
		Result: res,
		Series: []*trace.Series{res.TrunkQueue[1][0], res.TrunkQueue[1][1]},
	}
	o.PlotFrom, o.PlotTo = plotWindow(res, 30*time.Second)
	o.Metrics = []Metric{
		metric("ACK compression present", "persists in complex topology",
			best > 0.2, "max compressed fraction %.0f %%", best*100),
		metric("rapid queue fluctuations", "present", rises > 50, "%d rapid rises", rises),
		metric("partial clustering", "no longer complete, not interleaved",
			clus > 0.05 && clus < 0.95, "%.3f on middle trunk", clus),
		metric("lines significantly underutilized", "idle time persists",
			minUtil < 0.95, "trunk utils %.1f%%..%.1f%%", minUtil*100, maxUtil*100),
	}
	o.Notes = append(o.Notes, fmt.Sprintf("ACK drops: %d (data drops %d)",
		ackDropCount(res), len(dropsAfter(res.Drops, res.MeasureFrom))-ackDropCount(res)))
	return o
}

// PacingAblation tests the paper's conjecture (§1, §3.1) that the
// two-way phenomena are properties of *nonpaced* window algorithms:
// clustering requires that sources transmit immediately on ACK receipt.
// Pacing each source at the bottleneck data transmission time (80 ms)
// should dissolve the clusters and with them ACK-compression's rapid
// queue fluctuations.
func PacingAblation(opts Options) *Outcome {
	run := func(pace time.Duration) *core.Result {
		cfg := twoWayConfig(10*time.Millisecond, core.DefaultBuffer, opts.seed())
		for i := range cfg.Conns {
			cfg.Conns[i].Pace = pace
		}
		cfg.Warmup = opts.scale(200 * time.Second)
		cfg.Duration = opts.scale(800 * time.Second)
		return runCore(opts, cfg)
	}
	unpaced := run(0)
	paced := run(80 * time.Millisecond)

	compU := compression(unpaced, 0)
	compP := compression(paced, 0)
	risesU := analysis.RapidRises(unpaced.Q1(), unpaced.MeasureFrom, unpaced.MeasureTo,
		unpaced.Cfg.DataTxTime(), 4)
	risesP := analysis.RapidRises(paced.Q1(), paced.MeasureFrom, paced.MeasureTo,
		paced.Cfg.DataTxTime(), 4)

	o := &Outcome{
		ID:     "pacing-ablation",
		Title:  "Paced sender ablation: pacing defeats ACK-compression",
		Result: paced,
		Series: []*trace.Series{unpaced.Q1(), paced.Q1()},
	}
	o.Series[0].Name = "unpaced-Q1"
	o.Series[1].Name = "paced-Q1"
	o.PlotFrom, o.PlotTo = plotWindow(paced, 30*time.Second)
	o.Metrics = []Metric{
		metric("unpaced compression", "present (the baseline pathology)",
			compU.CompressedFraction() > 0.2, "%.0f %% gaps compressed",
			compU.CompressedFraction()*100),
		metric("paced compression", "largely eliminated",
			compP.CompressedFraction() < compU.CompressedFraction()/2,
			"%.0f %% vs %.0f %% unpaced",
			compP.CompressedFraction()*100, compU.CompressedFraction()*100),
		metric("rapid queue fluctuations", "reduced by pacing",
			risesP < risesU/2, "%d vs %d unpaced", risesP, risesU),
	}
	o.Notes = append(o.Notes, fmt.Sprintf("utilization: unpaced %.1f%%, paced %.1f%%",
		unpaced.UtilForward()*100, paced.UtilForward()*100))
	return o
}
