package experiment

import (
	"testing"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
)

func TestProbeFairQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	// Two-way 1+1 small pipe: FIFO vs FQ.
	for _, disc := range []core.Discipline{core.FIFO, core.FairQueue} {
		cfg := twoWayConfig(10*time.Millisecond, core.DefaultBuffer, 1)
		cfg.Discipline = disc
		cfg.Warmup = 200 * time.Second
		cfg.Duration = 800 * time.Second
		res := core.Run(cfg)
		comp := compression(res, 0)
		rises := analysis.RapidRises(res.Q1(), res.MeasureFrom, res.MeasureTo, res.Cfg.DataTxTime(), 4)
		t.Logf("twoway disc=%v: util=%.3f/%.3f comp=%.2f rises=%d jain=%.4f drops=%d",
			disc, res.UtilForward(), res.UtilReverse(), comp.CompressedFraction(), rises,
			analysis.JainIndex(res.Goodput), len(dropsAfter(res.Drops, cfg.Warmup)))
	}
	// One-way unequal RTT: FIFO vs FQ fairness.
	for _, disc := range []core.Discipline{core.FIFO, core.FairQueue} {
		cfg := oneWayConfig(time.Second, core.DefaultBuffer, 3, 1)
		cfg.Discipline = disc
		cfg.Conns[1].ExtraDelay = 400 * time.Millisecond
		cfg.Conns[2].ExtraDelay = 800 * time.Millisecond
		cfg.Warmup = 200 * time.Second
		cfg.Duration = 800 * time.Second
		res := core.Run(cfg)
		t.Logf("oneway-unequal disc=%v: util=%.3f jain=%.4f goodput=%v",
			disc, res.UtilForward(), analysis.JainIndex(res.Goodput), res.Goodput)
	}
}
