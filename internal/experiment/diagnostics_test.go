package experiment

// Exploratory probes for band tuning. Always pass; run with -v.

import (
	"testing"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/trace"
)

func TestProbeDelayedAckMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	for _, tau := range []time.Duration{10 * time.Millisecond, time.Second} {
		for _, maxWnd := range []int{8, 1000} {
			for _, delayed := range []bool{false, true} {
				cfg := twoWayConfig(tau, core.DefaultBuffer, 1)
				for i := range cfg.Conns {
					cfg.Conns[i].DelayedAck = delayed
					cfg.Conns[i].MaxWnd = maxWnd
				}
				cfg.Warmup = 200 * time.Second
				cfg.Duration = 800 * time.Second
				res := core.Run(cfg)
				run := analysis.MeanRunLength(depsAfter(res.TrunkDeps[0][0], res.MeasureFrom))
				comp := compression(res, 0)
				t.Logf("tau=%v maxwnd=%d delayed=%v: allRun=%.1f comp=%.2f drops=%d util=%.2f",
					tau, maxWnd, delayed, run, comp.CompressedFraction(),
					len(dropsAfter(res.Drops, res.MeasureFrom)), res.UtilForward())
			}
		}
	}
}

func TestProbeZeroAckCases(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	cases := []struct {
		tau    time.Duration
		w1, w2 int
	}{
		{time.Second, 60, 20},
		{time.Second, 55, 20},
		{time.Second, 30, 25},
		{time.Second, 40, 30},
		{10 * time.Millisecond, 30, 25},
		{10 * time.Millisecond, 40, 20},
		{10 * time.Millisecond, 25, 25},
	}
	for _, c := range cases {
		cfg := fixedWindowConfig(c.tau, c.w1, c.w2, 1)
		cfg.AckSize = 0
		cfg.Warmup = 200 * time.Second
		cfg.Duration = 600 * time.Second
		res := core.Run(cfg)
		for _, grid := range []time.Duration{80 * time.Millisecond, time.Second} {
			r := trace.Correlate(res.Q1(), res.Q2(), res.MeasureFrom, res.MeasureTo, grid)
			t.Logf("tau=%v W=%d/%d grid=%v: corr=%.2f", c.tau, c.w1, c.w2, grid, r)
		}
		emptyFrac := func(s *trace.Series) float64 {
			vals := s.Sample(res.MeasureFrom, res.MeasureTo, 40*time.Millisecond)
			n := 0
			for _, v := range vals {
				if v == 0 {
					n++
				}
			}
			return float64(n) / float64(len(vals))
		}
		t.Logf("   utils %.3f/%.3f Qmax %.0f/%.0f empty-frac %.2f/%.2f",
			res.UtilForward(), res.UtilReverse(),
			res.Q1().Max(res.MeasureFrom, res.MeasureTo), res.Q2().Max(res.MeasureFrom, res.MeasureTo),
			emptyFrac(res.Q1()), emptyFrac(res.Q2()))
	}
}

func TestProbeBufferSweepIdle(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	for _, b := range []int{20, 40, 60, 90, 120} {
		cfg := oneWayConfig(time.Second, b, 3, 1)
		cfg.Warmup = 300 * time.Second
		cfg.Duration = 3300 * time.Second
		res := core.Run(cfg)
		t.Logf("B=%d C=%.0f: util=%.4f idle=%.4f", b, float64(b)+2*cfg.PipeSize(),
			res.UtilForward(), 1-res.UtilForward())
	}
}
