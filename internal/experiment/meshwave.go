package experiment

import (
	"fmt"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/topology"
)

// MeshWaveStudy carries the wave-speed velocity fit off the hand-built
// chain and onto a generated mesh, closing the ROADMAP note that the
// fit worked on chains only. The "chain" is the diameter path of a
// scale-free tree — BarabasiAlbert with m = 1, so every link is a
// bridge and routes down the path are unique — found by double BFS.
// The workload is the same isolation trick as WaveSpeedStudy, rebuilt
// on the discovered path: one fixed-window cross connection per path
// hop holds a standing queue on that trunk, then a large fixed-window
// pulse enters at one end of the path. The fit is identical:
// wavefront arrival time against hop index, a straight line meaning
// the congestion wave crosses a preferential-attachment tree at the
// same well-defined queue-drain velocity it shows on a chain.
func MeshWaveStudy(opts Options) *Outcome {
	g := topology.BarabasiAlbert(64, 1, 7)
	path := diameterPath(&g)
	hops := len(path) - 1
	hopLinks := pathHops(&g, path)

	cfg := core.Config{
		Topology:   &g,
		TrunkDelay: 10 * time.Millisecond,
		Buffer:     40,
		Seed:       opts.seed(),
		Warmup:     opts.scale(20 * time.Second),
		Duration:   opts.scale(120 * time.Second),
	}
	for h := 0; h < hops; h++ {
		cfg.Conns = append(cfg.Conns, core.ConnSpec{
			SrcHost:  path[h],
			DstHost:  path[h+1],
			FixedWnd: 4,
			Start:    opts.scale(time.Duration(h) * 250 * time.Millisecond),
		})
	}
	pulseAt := opts.scale(40 * time.Second)
	cfg.Conns = append(cfg.Conns, core.ConnSpec{
		SrcHost:  path[0],
		DstHost:  path[hops],
		FixedWnd: 30,
		Start:    pulseAt,
	})
	res := runCore(opts, cfg)

	waves := make([]hopWave, hops)
	reached := 0
	var xs, ys []float64
	for h := 0; h < hops; h++ {
		q := res.TrunkQueue[hopLinks[h].Link][hopLinks[h].Dir]
		w := &waves[h]
		w.baseline = q.TimeAverage(res.MeasureFrom, pulseAt)
		w.arrival, w.arrived = analysis.FirstAbove(q, pulseAt, res.MeasureTo, w.baseline+waveThreshold)
		if w.arrived {
			reached++
			xs = append(xs, float64(h))
			ys = append(ys, (w.arrival - pulseAt).Seconds())
		}
	}
	slope, intercept, r2 := analysis.LinearFit(xs, ys)
	velocity := 0.0
	if slope > 0 {
		velocity = 1 / slope
	}
	perHop := time.Duration(slope * float64(time.Second))

	o := &Outcome{
		ID:     "mesh-wave",
		Title:  fmt.Sprintf("Mesh wave: velocity fit over the %d-hop diameter of a scale-free tree", hops),
		Result: res,
	}
	for h := 0; h < hops; h++ {
		o.Series = append(o.Series, res.TrunkQueue[hopLinks[h].Link][hopLinks[h].Dir])
	}
	o.PlotFrom = pulseAt - opts.scale(5*time.Second)
	if o.PlotFrom < res.MeasureFrom {
		o.PlotFrom = res.MeasureFrom
	}
	o.PlotTo = pulseAt + opts.scale(40*time.Second)
	if o.PlotTo > res.MeasureTo {
		o.PlotTo = res.MeasureTo
	}
	o.Metrics = []Metric{
		metric("diameter path is chain-like", "double BFS finds >= 6 hops to fit across",
			hops >= 6, "%d-hop diameter path on 64 switches", hops),
		metric("wave reaches every path hop", "queue rise visible at all hops",
			reached == hops, "%d of %d hops crossed baseline+%.0f", reached, hops, waveThreshold),
		metric("arrival time is linear in hop depth", "r² of arrival-vs-hop fit near 1",
			r2 >= 0.9, "r² = %.3f over %d hops", r2, reached),
		metric("wave velocity is positive and finite", "fitted slope > 0",
			slope > 0, "v = %.2f hops/s (%.0f ms/hop)", velocity, slope*1000),
		metric("propagation is queue-limited", "fitted per-hop delay far above trunk latency",
			perHop > 4*cfg.TrunkDelay, "%v per hop vs %v propagation", perHop.Round(time.Millisecond), cfg.TrunkDelay),
	}
	o.Notes = append(o.Notes, fmt.Sprintf("diameter path: %v", path))
	o.Notes = append(o.Notes, fmt.Sprintf(
		"fit: arrival = %.0f ms·hop + %.0f ms, r² = %.3f", slope*1000, intercept*1000, r2))
	for h, w := range waves {
		o.Notes = append(o.Notes, fmt.Sprintf(
			"hop %d (link %d dir %d): baseline %.1f, wave at %v",
			h, hopLinks[h].Link, hopLinks[h].Dir, w.baseline, w.arrival.Round(time.Millisecond)))
	}
	return o
}

// diameterPath returns the switch sequence of a longest shortest path
// in g under unit link weights, by double BFS: the farthest switch
// from an arbitrary root, then the farthest switch from that one with
// parents recorded. Exact on trees (the m = 1 scale-free graphs this
// study runs on); on general graphs it is the usual 2-approximation,
// still a valid shortest path to fit along. Deterministic: neighbors
// are scanned in link order, so ties break the same way every run.
func diameterPath(g *topology.Graph) []int {
	adj := make([][]int, g.Switches)
	for _, l := range g.Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	bfs := func(root int) (far int, parent []int) {
		parent = make([]int, g.Switches)
		for i := range parent {
			parent[i] = -1
		}
		parent[root] = root
		queue := []int{root}
		far = root
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			far = u
			for _, v := range adj[u] {
				if parent[v] < 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		return far, parent
	}
	u, _ := bfs(0)
	v, parent := bfs(u)
	var rev []int
	for s := v; s != u; s = parent[s] {
		rev = append(rev, s)
	}
	rev = append(rev, u)
	path := make([]int, len(rev))
	for i, s := range rev {
		path[len(rev)-1-i] = s
	}
	return path
}

// pathHops resolves each consecutive switch pair of path to the link
// that joins it and the transmit direction along the path (Dir 0 is
// A→B). Panics on a pair with no joining link — the path came from the
// graph's own adjacency, so that would be a bug, not an input error.
func pathHops(g *topology.Graph, path []int) []topology.Hop {
	hops := make([]topology.Hop, len(path)-1)
	for h := 0; h+1 < len(path); h++ {
		a, b := path[h], path[h+1]
		found := false
		for li, l := range g.Links {
			if l.A == a && l.B == b {
				hops[h] = topology.Hop{Link: li, Dir: 0}
				found = true
				break
			}
			if l.A == b && l.B == a {
				hops[h] = topology.Hop{Link: li, Dir: 1}
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("experiment: no link joins path switches %d and %d", a, b))
		}
	}
	return hops
}
