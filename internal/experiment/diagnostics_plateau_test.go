package experiment

import (
	"testing"
	"time"

	"tahoedyn/internal/analysis"
)

func TestProbeFig9AllPlateaus(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	cfg := fixedWindowConfig(time.Second, 30, 25, 1)
	cfg.Warmup = 200 * time.Second
	cfg.Duration = 800 * time.Second
	res := coreRunForProbe(cfg)
	for _, q := range []int{0, 1} {
		s := res.TrunkQueue[0][q]
		ps := analysis.Plateaus(s, res.MeasureFrom, res.MeasureFrom+60*time.Second, 500*time.Millisecond, 1.0)
		var lv []float64
		var du []time.Duration
		for _, p := range ps {
			lv = append(lv, p.Level)
			du = append(du, p.Duration().Round(100*time.Millisecond))
		}
		t.Logf("Q%d levels=%v", q+1, lv)
		t.Logf("Q%d durs  =%v", q+1, du)
	}
}
