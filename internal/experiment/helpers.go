package experiment

import (
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/obs"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/trace"
	"tahoedyn/internal/tstore"
)

// twoWayConfig is the canonical 1+1 two-way dumbbell of §4.
func twoWayConfig(tau time.Duration, buffer int, seed int64) core.Config {
	cfg := core.DumbbellConfig(tau, buffer)
	cfg.Seed = seed
	cfg.Conns = []core.ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	return cfg
}

// oneWayConfig is the §3.1 configuration: n connections, all sources on
// host 1.
func oneWayConfig(tau time.Duration, buffer, n int, seed int64) core.Config {
	cfg := core.DumbbellConfig(tau, buffer)
	cfg.Seed = seed
	for i := 0; i < n; i++ {
		cfg.Conns = append(cfg.Conns, core.ConnSpec{SrcHost: 0, DstHost: 1, Start: -1})
	}
	return cfg
}

// dropsAfter filters drop events to the measurement window.
func dropsAfter(drops []trace.DropEvent, from time.Duration) []trace.DropEvent {
	var out []trace.DropEvent
	for _, d := range drops {
		if d.T >= from {
			out = append(out, d)
		}
	}
	return out
}

// depsAfter filters departures to the measurement window.
func depsAfter(deps []trace.Departure, from time.Duration) []trace.Departure {
	var out []trace.Departure
	for _, d := range deps {
		if d.T >= from {
			out = append(out, d)
		}
	}
	return out
}

// measuredEpochs groups the run's post-warmup drops into congestion
// epochs with the given gap.
func measuredEpochs(res *core.Result, gap time.Duration) []analysis.Epoch {
	return analysis.Epochs(dropsAfter(res.Drops, res.MeasureFrom), gap)
}

// dataClustering computes the clustering of data departures on the given
// trunk direction over the measurement window.
func dataClustering(res *core.Result, trunk, dir int) float64 {
	return analysis.Clustering(analysis.FilterDepartures(
		depsAfter(res.TrunkDeps[trunk][dir], res.MeasureFrom), packet.Data))
}

// compression computes ACK-compression statistics at connection k's
// sender.
func compression(res *core.Result, k int) analysis.CompressionStats {
	return analysis.AckCompression(res.AckArrivals[k], res.Cfg.DataTxTime(), res.MeasureFrom)
}

// ackDropCount counts dropped ACK packets in the measurement window.
func ackDropCount(res *core.Result) int {
	n := 0
	for _, d := range dropsAfter(res.Drops, res.MeasureFrom) {
		if d.Kind == packet.Ack {
			n++
		}
	}
	return n
}

// meanDropsPerEpoch is the average number of drops per congestion epoch.
func meanDropsPerEpoch(epochs []analysis.Epoch) float64 {
	if len(epochs) == 0 {
		return 0
	}
	total := 0
	for _, e := range epochs {
		total += len(e.Drops)
	}
	return float64(total) / float64(len(epochs))
}

// meanEpochPeriod is the mean spacing of congestion epoch starts.
func meanEpochPeriod(epochs []analysis.Epoch) time.Duration {
	if len(epochs) < 2 {
		return 0
	}
	return (epochs[len(epochs)-1].Start - epochs[0].Start) / time.Duration(len(epochs)-1)
}

// queuePhase classifies the two bottleneck queues' synchronization.
func queuePhase(res *core.Result) (analysis.PhaseMode, float64) {
	return analysis.Phase(res.Q1(), res.Q2(), res.MeasureFrom, res.MeasureTo, time.Second)
}

// cwndPhase classifies two connections' window synchronization.
func cwndPhase(res *core.Result, a, b int) (analysis.PhaseMode, float64) {
	return analysis.Phase(res.Cwnd[a], res.Cwnd[b], res.MeasureFrom, res.MeasureTo, time.Second)
}

// plotWindow returns a window of the given length ending at the run's
// end, for figure-like plots.
func plotWindow(res *core.Result, span time.Duration) (time.Duration, time.Duration) {
	from := res.MeasureTo - span
	if from < res.MeasureFrom {
		from = res.MeasureFrom
	}
	return from, res.MeasureTo
}

// coreRunForProbe runs a config; indirection keeps probe files terse.
func coreRunForProbe(cfg core.Config) *core.Result { return core.Run(cfg) }

// runCore executes one simulation on behalf of an experiment, threading
// the experiment-level observability knobs (Options.Observer,
// Options.Invariants) into the run. Every experiment's simulation goes
// through here, so enabling -progress or -invariants on the CLI covers
// all of them. Observation is passive: the Result is byte-identical
// with or without an Observer or checker.
func runCore(o Options, cfg core.Config) *core.Result {
	if o.Observer != nil {
		cfg.Obs = &obs.Options{Progress: o.Observer}
	}
	if o.Invariants {
		cfg.Invariants = &tstore.CheckOptions{}
	}
	res := core.Run(cfg)
	if res.Invariant != nil {
		panic(res.Invariant.Error())
	}
	return res
}
