package experiment

import (
	"fmt"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/link"
	"tahoedyn/internal/model"
	"tahoedyn/internal/trace"
)

// RedSyncStudy contrasts drop-tail with RED gateways (Floyd &
// Jacobson) on the paper's two-way small-pipe configuration. Drop-tail
// drops arrive in correlated bursts at buffer overflow, which is the
// engine behind the paper's phase locking: both windows cut together,
// so the system settles into a rigid synchronization mode. RED drops
// probabilistically on the average queue, spreading the cuts in time —
// the prediction is that the phase lock loses its grip while the
// average queue falls well below the drop-tail operating point.
func RedSyncStudy(opts Options) *Outcome {
	run := func(qs *link.QueueSpec) *core.Result {
		// Buffer 40: deep enough that drop-tail sustains a standing
		// queue near the ceiling, so RED's early dropping has room to
		// show.
		cfg := twoWayConfig(10*time.Millisecond, 40, opts.seed())
		cfg.Queue = qs
		cfg.Warmup = opts.scale(200 * time.Second)
		cfg.Duration = opts.scale(800 * time.Second)
		return runCore(opts, cfg)
	}
	dt := run(nil) // drop-tail, the paper's switches
	// A faster-tracking RED than the '93 defaults: the two-way bursts
	// here are abrupt (ACK-compression releases a window at line rate),
	// so the average must move quickly enough to drop early.
	red := run(&link.QueueSpec{Policy: link.PolicyRED, MinTh: 5, MaxTh: 15, MaxP: 0.1, Wq: 0.01})

	dtMode, dtR := analysis.Phase(dt.Cwnd[0], dt.Cwnd[1], dt.MeasureFrom, dt.MeasureTo, time.Second)
	redMode, redR := analysis.Phase(red.Cwnd[0], red.Cwnd[1], red.MeasureFrom, red.MeasureTo, time.Second)
	dtPeak := dt.Q1().Max(dt.MeasureFrom, dt.MeasureTo)
	redPeak := red.Q1().Max(red.MeasureFrom, red.MeasureTo)
	dtQ := dt.Q1().TimeAverage(dt.MeasureFrom, dt.MeasureTo)
	redQ := red.Q1().TimeAverage(red.MeasureFrom, red.MeasureTo)

	o := &Outcome{
		ID:     "red-sync",
		Title:  "RED gateways vs drop-tail: phase-lock breakdown (extension)",
		Result: red,
		Series: []*trace.Series{dt.Q1(), red.Q1()},
	}
	o.Series[0].Name = "droptail-Q1"
	o.Series[1].Name = "red-Q1"
	o.PlotFrom, o.PlotTo = plotWindow(red, 30*time.Second)
	o.Metrics = []Metric{
		metric("drop-tail window sync", "phase-locked (out-of-phase at τ=0.01s)",
			dtMode != analysis.PhaseMixed, "%v (r=%.2f)", dtMode, dtR),
		metric("RED window sync", "lock weakened: desynchronized cuts",
			abs(redR) < abs(dtR), "%v (r=%.2f) vs drop-tail r=%.2f", redMode, redR, dtR),
		metric("RED peak bottleneck queue", "early drops keep the buffer off its ceiling",
			redPeak < dtPeak*0.75, "%.0f pkts vs %.0f drop-tail (buffer %d)",
			redPeak, dtPeak, red.Cfg.Buffer),
		metric("RED mean bottleneck queue", "held near the thresholds, under drop-tail",
			redQ < dtQ*0.75, "%.1f pkts vs %.1f drop-tail", redQ, dtQ),
		metric("RED utilization", "comparable to drop-tail: no capacity price",
			red.UtilForward() > dt.UtilForward()-0.1, "%.1f %% vs %.1f %% drop-tail",
			red.UtilForward()*100, dt.UtilForward()*100),
	}
	o.Notes = append(o.Notes,
		"RED parameters: min_th=5 max_th=15 max_p=0.1 wq=0.01 (faster than the '93 defaults)")
	return o
}

// CrossTrafficStudy loads the two-way configuration with an
// unresponsive constant-bit-rate stream sharing the forward bottleneck
// — the §5 concern that real networks are not closed two-TCP systems.
// The CBR source ignores congestion entirely, so it keeps its offered
// rate while the TCP pair backs off to the residual capacity; the
// two-way phenomena (ACK compression through the shared queue) survive
// under the reduced share.
func CrossTrafficStudy(opts Options) *Outcome {
	const cbrRate = 10_000 // bits/s: 20 % of the 50 Kbps bottleneck
	run := func(cross bool) *core.Result {
		cfg := twoWayConfig(10*time.Millisecond, core.DefaultBuffer, opts.seed())
		cfg.Warmup = opts.scale(200 * time.Second)
		cfg.Duration = opts.scale(800 * time.Second)
		if cross {
			cfg.Conns = append(cfg.Conns, core.ConnSpec{
				SrcHost: 0, DstHost: 1, Start: -1,
				Source: &core.SourceSpec{Kind: core.SourceCBR, Rate: cbrRate},
			})
		}
		return runCore(opts, cfg)
	}
	base := run(false)
	res := run(true)

	window := res.MeasureTo - res.MeasureFrom
	offered := model.CBRPackets(cbrRate, res.Cfg.DataSize, window)
	cbrShare := float64(res.Goodput[2]) / offered
	comp := compression(res, 0)

	o := &Outcome{
		ID:     "cross-traffic",
		Title:  "Two-way dynamics under unresponsive CBR cross-traffic (extension)",
		Result: res,
		Series: []*trace.Series{base.Q1(), res.Q1()},
	}
	o.Series[0].Name = "twoway-Q1"
	o.Series[1].Name = "cross-Q1"
	o.PlotFrom, o.PlotTo = plotWindow(res, 30*time.Second)
	o.Metrics = []Metric{
		metric("CBR delivery", "unresponsive stream keeps its offered rate",
			cbrShare > 0.9, "%.0f %% of %d bit/s offered", cbrShare*100, cbrRate),
		metric("forward utilization", "no worse than the two-way baseline (≈70 %)",
			res.UtilForward() > base.UtilForward()-0.05, "%.1f %% (%.1f %% without cross-traffic)",
			res.UtilForward()*100, base.UtilForward()*100),
		metric("forward TCP goodput", "squeezed by the CBR share",
			res.Goodput[0] < base.Goodput[0], "%d pkts vs %d without cross-traffic",
			res.Goodput[0], base.Goodput[0]),
		metric("ACK compression", "persists through the shared queue",
			comp.CompressedFraction() > 0.1, "%.0f %% of ACKs compressed",
			comp.CompressedFraction()*100),
	}
	o.Notes = append(o.Notes, fmt.Sprintf(
		"goodputs with cross-traffic: %v; without: %v", res.Goodput, base.Goodput))
	return o
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
