// Package experiment reproduces, one by one, every figure and
// quantitative claim in the paper's evaluation. Each experiment builds
// the corresponding configuration, runs it, computes the paper's
// observables, and reports them as paper-value vs measured-value metrics
// with a pass/fail judgment against a qualitative band.
//
// The bands are deliberately bands, not exact values: the original study
// ran the authors' private simulator with unknown timer phases and start
// times, so the reproduction targets the paper's *shape* — who wins, what
// oscillates, which mode locks in — not bit-identical traces.
package experiment

import (
	"fmt"
	"io"
	"time"

	"tahoedyn/internal/core"
	"tahoedyn/internal/obs"
	"tahoedyn/internal/runner"
	"tahoedyn/internal/trace"
)

// Options tunes an experiment run. The zero value is a fully usable
// default — every field has a documented zero-value meaning, so call
// sites never need to spell out knobs they don't care about.
type Options struct {
	// Seed selects the scenario randomness; 0 means 1.
	Seed int64
	// Scale multiplies the default run durations. 0 means 1.0; benches
	// use fractions to keep iterations fast.
	Scale float64
	// Parallel bounds the worker count for experiments that run several
	// independent simulations (sweeps, multi-seed grids) and for RunAll.
	// 0 means serial (the historical behavior), negative means
	// GOMAXPROCS. Results are deterministic for any value: runs are
	// independent and collected in job order.
	Parallel int
	// Observer, when non-nil, receives progress samples from every
	// simulation an experiment runs (tahoe-sim -progress wires this to
	// stderr). Observation is passive: results are byte-identical with
	// or without it. The callback must be safe for concurrent use when
	// Parallel enables more than one worker.
	Observer *obs.Progress
	// Invariants runs the streaming invariant engine (internal/tstore)
	// online over every simulation the experiment performs: packet
	// conservation at each port, event-time monotonicity, cwnd bounds,
	// timeout monotonicity. Checking is passive — results stay
	// byte-identical — but a violation panics: an experiment whose
	// trace breaks conservation is reporting garbage, and the panic
	// names the offending event.
	Invariants bool
}

// workers translates Options.Parallel into a runner worker count.
func (o Options) workers() int {
	switch {
	case o.Parallel < 0:
		return runner.DefaultWorkers()
	case o.Parallel == 0:
		return 1
	default:
		return o.Parallel
	}
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) scale(d time.Duration) time.Duration {
	if o.Scale <= 0 {
		return d
	}
	return time.Duration(float64(d) * o.Scale)
}

// Metric is one paper-vs-measured comparison.
type Metric struct {
	// Name describes the observable.
	Name string
	// Paper is the value (or qualitative claim) the paper reports.
	Paper string
	// Measured is what this run produced.
	Measured string
	// Pass reports whether Measured falls in the acceptance band.
	Pass bool
}

// Outcome is the result of one experiment.
type Outcome struct {
	// ID is the registry name (e.g. "fig4-5"); Title the headline.
	ID, Title string
	// Metrics lists the paper-vs-measured comparisons.
	Metrics []Metric
	// Series holds the headline traces for plotting, and PlotFrom/PlotTo
	// a window that shows a few cycles, like the paper's figures.
	Series           []*trace.Series
	PlotFrom, PlotTo time.Duration
	// Result is the underlying run (the first one, for multi-run
	// experiments). May be nil for pure sweep experiments.
	Result *core.Result
	// Notes carries free-form commentary about the run.
	Notes []string
}

// Passed reports whether every metric is in its acceptance band.
func (o *Outcome) Passed() bool {
	for _, m := range o.Metrics {
		if !m.Pass {
			return false
		}
	}
	return true
}

// WriteText renders the outcome as an aligned text report.
func (o *Outcome) WriteText(w io.Writer) error {
	status := "PASS"
	if !o.Passed() {
		status = "FAIL"
	}
	if _, err := fmt.Fprintf(w, "%s — %s [%s]\n", o.ID, o.Title, status); err != nil {
		return err
	}
	for _, m := range o.Metrics {
		mark := "ok "
		if !m.Pass {
			mark = "BAD"
		}
		if _, err := fmt.Fprintf(w, "  %s %-38s paper: %-28s measured: %s\n",
			mark, m.Name, m.Paper, m.Measured); err != nil {
			return err
		}
	}
	for _, n := range o.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// metric builds a Metric with a formatted measurement.
func metric(name, paper string, pass bool, format string, args ...any) Metric {
	return Metric{Name: name, Paper: paper, Measured: fmt.Sprintf(format, args...), Pass: pass}
}

// inBand reports lo <= v <= hi.
func inBand(v, lo, hi float64) bool { return v >= lo && v <= hi }

// Definition is a registry entry.
type Definition struct {
	// Name is the CLI-facing identifier; Title a one-line description.
	Name, Title string
	// Run executes the experiment.
	Run func(Options) *Outcome
}

// All returns every experiment in presentation order (the paper's own
// order: one-way review, the [19] configuration, two-way dynamics,
// fixed-window systems, then the §5 discussion points and ablations).
func All() []Definition {
	return []Definition{
		{"fig2-oneway", "One-way traffic, 3 connections, τ=1s (Fig. 2)", Fig2OneWay},
		{"increase-rule", "Modified vs original avoidance increase (§2.1)", IncreaseRuleStudy},
		{"oneway-smallpipe", "One-way traffic, small pipe: full utilization (§3.1)", OneWaySmallPipe},
		{"oneway-buffers", "One-way idle time vs buffer size: idle ~ B⁻² (§3.1)", OneWayBufferSweep},
		{"fig3-tenconns", "Ten connections, 5 each way, τ=0.01s, B=30 (Fig. 3)", Fig3TenConns},
		{"fig4-5", "Two-way, τ=0.01s: out-of-phase mode (Figs. 4, 5)", Fig45TwoWaySmallPipe},
		{"fig6-7", "Two-way, τ=1s: in-phase mode (Figs. 6, 7)", Fig67TwoWayLargePipe},
		{"fig8-fixed", "Fixed windows 30/25, τ=0.01s, infinite buffers (Fig. 8)", Fig8FixedWindowSmallPipe},
		{"fig9-fixed", "Fixed windows 30/25, τ=1s, infinite buffers (Fig. 9)", Fig9FixedWindowLargePipe},
		{"zeroack-conjecture", "Zero-length-ACK synchronization conjecture (§4.3.3)", ZeroACKConjecture},
		{"mode-boundary", "Synchronization-mode boundary vs buffer and pipe (§4.3.3)", ModeBoundaryStudy},
		{"ack-compression", "ACK-compression mechanism probe (§4.2)", ACKCompressionProbe},
		{"delayed-ack", "Delayed-ACK option vs clustering (§5)", DelayedACKStudy},
		{"four-switch", "Four-switch topology from [19] (§5)", FourSwitchTopology},
		{"unequal-rtt", "Unequal RTTs break complete clustering (§5)", UnequalRTTStudy},
		{"pacing-ablation", "Paced sender ablation (§3.1 conjecture)", PacingAblation},
		{"parking-lot", "Parking-lot fairness across 3 bottlenecks (extension)", ParkingLotFairness},
		{"congestion-wave", "Congestion-wave propagation down a 4-bottleneck chain (extension)", CongestionWaveProbe},
		{"wave-speed", "Wave-speed fit: wavefront velocity vs hop depth (extension)", WaveSpeedStudy},
		{"mesh-wave", "Mesh wave: velocity fit on a scale-free tree's diameter path (extension)", MeshWaveStudy},
		{"reno", "Reno fast recovery: phenomena outlive Tahoe (extension)", RenoTwoWay},
		{"random-drop", "Random Drop gateways vs drop-tail (extension)", RandomDropStudy},
		{"fair-queueing", "Fair Queueing cures ACK-compression (extension)", FairQueueStudy},
		{"red-sync", "RED gateways vs drop-tail: phase-lock breakdown (extension)", RedSyncStudy},
		{"cross-traffic", "Two-way dynamics under CBR cross-traffic (extension)", CrossTrafficStudy},
	}
}

// RunAll executes every registered experiment with the given options and
// returns the outcomes in registry order. Experiments are fanned across
// opts.Parallel workers; the returned slice is identical for any worker
// count because each experiment is deterministic in Options and results
// are collected by registry index.
func RunAll(opts Options) []*Outcome {
	defs := All()
	return runner.Map(opts.workers(), len(defs), func(i int) *Outcome {
		return defs[i].Run(opts)
	})
}

// Find returns the experiment with the given name.
func Find(name string) (Definition, bool) {
	for _, d := range All() {
		if d.Name == name {
			return d, true
		}
	}
	return Definition{}, false
}
