package experiment

import (
	"fmt"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/trace"
)

// fixedWindowConfig builds the §4.1 disentangling configuration: two
// connections with constant windows w1 (host 0 → 1) and w2 (host 1 → 0)
// and infinite switch buffers.
func fixedWindowConfig(tau time.Duration, w1, w2 int, seed int64) core.Config {
	cfg := core.DumbbellConfig(tau, 0 /* infinite buffers */)
	cfg.Seed = seed
	cfg.Conns = []core.ConnSpec{
		{SrcHost: 0, DstHost: 1, FixedWnd: w1, Start: -1},
		{SrcHost: 1, DstHost: 0, FixedWnd: w2, Start: -1},
	}
	return cfg
}

// Fig8FixedWindowSmallPipe reproduces Figure 8: fixed windows 30 and 25,
// τ = 0.01 s, infinite buffers. The paper reports square-wave queue
// oscillations of constant amplitude with queue 1 peaking at 55 and
// queue 2 at 23, full utilization of line 1 and ~86 % on line 2.
func Fig8FixedWindowSmallPipe(opts Options) *Outcome {
	cfg := fixedWindowConfig(10*time.Millisecond, 30, 25, opts.seed())
	cfg.Warmup = opts.scale(200 * time.Second)
	cfg.Duration = opts.scale(800 * time.Second)
	res := runCore(opts, cfg)

	q1max := res.Q1().Max(res.MeasureFrom, res.MeasureTo)
	q2max := res.Q2().Max(res.MeasureFrom, res.MeasureTo)
	comp := compression(res, 0)
	rises := analysis.RapidRises(res.Q1(), res.MeasureFrom, res.MeasureTo,
		res.Cfg.DataTxTime(), 4)
	// The §4.2 chronology: a compressed ACK cluster leaving one queue IS
	// the data burst hitting the other, so rapid rises in Q1 coincide
	// with rapid falls in Q2.
	coupled := analysis.CoupledSwings(res.Q1(), res.Q2(),
		res.MeasureFrom, res.MeasureTo, res.Cfg.DataTxTime(), 500*time.Millisecond, 4)

	o := &Outcome{
		ID:     "fig8-fixed",
		Title:  "Fixed windows 30/25, τ=0.01s, infinite buffers (Fig. 8)",
		Result: res,
		Series: []*trace.Series{res.Q1(), res.Q2()},
	}
	o.PlotFrom, o.PlotTo = plotWindow(res, 20*time.Second)
	o.Metrics = []Metric{
		metric("queue 1 maximum", "55 packets", inBand(q1max, 50, 58), "%.0f", q1max),
		metric("queue 2 maximum", "23 packets", inBand(q2max, 20, 26), "%.0f", q2max),
		metric("line 1 utilization", "100 %", res.UtilForward() >= 0.99,
			"%.1f %%", res.UtilForward()*100),
		metric("line 2 utilization", "≈ 86 %", inBand(res.UtilReverse(), 0.80, 0.92),
			"%.1f %%", res.UtilReverse()*100),
		metric("square-wave oscillations", "rapid constant-amplitude jumps",
			rises > 50, "%d rapid rises", rises),
		metric("queue swings coupled (§4.2 chronology)",
			"Q1 jumps as Q2 drains: the ACK cluster is the data burst",
			coupled >= 0.9, "%.0f %% of Q1 rises match a Q2 fall", coupled*100),
		metric("ACK compression", "ACK gaps collapse to ACK tx time",
			comp.CompressedFraction() > 0.5 && comp.MinGap <= 10*time.Millisecond,
			"%.0f %% compressed, min gap %v", comp.CompressedFraction()*100, comp.MinGap),
		metric("packet drops", "none (infinite buffers)", len(res.Drops) == 0,
			"%d", len(res.Drops)),
	}
	return o
}

// Fig9FixedWindowLargePipe reproduces Figure 9: fixed windows 30 and 25,
// τ = 1 s, infinite buffers. The paper reports both queues peaking at
// the same height (23), alternating plateau heights, and utilizations of
// ~81 % and ~70 % — neither line full.
func Fig9FixedWindowLargePipe(opts Options) *Outcome {
	cfg := fixedWindowConfig(time.Second, 30, 25, opts.seed())
	cfg.Warmup = opts.scale(200 * time.Second)
	cfg.Duration = opts.scale(800 * time.Second)
	res := runCore(opts, cfg)

	q1max := res.Q1().Max(res.MeasureFrom, res.MeasureTo)
	q2max := res.Q2().Max(res.MeasureFrom, res.MeasureTo)

	// The Fig. 9 caption notes "an alternation pattern in the plateau
	// heights": the square wave cycles through distinct levels rather
	// than holding one crest (we measure a strict 23 → 7 → 1 cycle).
	plateaus := analysis.Plateaus(res.Q1(), res.MeasureFrom, res.MeasureTo,
		500*time.Millisecond, 1.0)
	altFrac := analysis.AlternationFraction(plateaus, 1.0)
	levels := map[int]bool{}
	for _, p := range plateaus {
		levels[int(p.Level)] = true
	}

	o := &Outcome{
		ID:     "fig9-fixed",
		Title:  "Fixed windows 30/25, τ=1s, infinite buffers (Fig. 9)",
		Result: res,
		Series: []*trace.Series{res.Q1(), res.Q2()},
	}
	o.PlotFrom, o.PlotTo = plotWindow(res, 20*time.Second)
	o.Metrics = []Metric{
		metric("queue maxima equal", "both reach 23",
			inBand(q1max, 20, 26) && inBand(q2max, 20, 26) && q1max == q2max,
			"Q1=%.0f Q2=%.0f", q1max, q2max),
		metric("line 1 utilization", "≈ 81 % (neither line full)",
			inBand(res.UtilForward(), 0.74, 0.88), "%.1f %%", res.UtilForward()*100),
		metric("line 2 utilization", "≈ 70 %", inBand(res.UtilReverse(), 0.62, 0.78),
			"%.1f %%", res.UtilReverse()*100),
		metric("plateau heights alternate", "multi-level plateau cycle",
			altFrac >= 0.95 && len(levels) >= 3,
			"%d distinct levels, %.0f %% of consecutive plateaus differ",
			len(levels), altFrac*100),
		metric("packet drops", "none (infinite buffers)", len(res.Drops) == 0,
			"%d", len(res.Drops)),
	}
	return o
}

// ZeroACKConjecture tests the §4.3.3 conjecture for the zero-length-ACK
// fixed-window system with windows W1 ≥ W2:
//
//  1. W1 > W2 + 2P: the out-of-phase mode — exactly one line is fully
//     utilized, and the queue occupancies anticorrelate (the larger
//     window's queue never drains while the other sits mostly empty,
//     with unequal maxima, as in Fig. 8);
//  2. W1 < W2 + 2P: the in-phase mode — neither line is full (strict
//     inequality) and both queues reach the *same* maximum height, the
//     paper's own signature for this mode (Fig. 9 and the §4.3.3
//     discussion).
func ZeroACKConjecture(opts Options) *Outcome {
	cases := []struct {
		tau    time.Duration
		w1, w2 int
	}{
		// τ=1s: 2P = 25.
		{time.Second, 60, 20}, // 60 > 45: out-of-phase
		{time.Second, 55, 20}, // 55 > 45: out-of-phase
		{time.Second, 30, 25}, // 30 < 50: in-phase
		{time.Second, 40, 30}, // 40 < 55: in-phase
		// τ=0.01s: 2P = 0.25 — almost any unequal windows are out-of-phase.
		{10 * time.Millisecond, 30, 25}, // 30 > 25.25: out-of-phase
		{10 * time.Millisecond, 40, 20}, // out-of-phase
		{10 * time.Millisecond, 25, 25}, // equal: 25 < 25.25: in-phase
	}
	o := &Outcome{
		ID:    "zeroack-conjecture",
		Title: "Zero-length-ACK synchronization conjecture (§4.3.3)",
	}
	// A line is "full" when its idle fraction is under 0.1 %; the strict
	// inequality W1 < W2+2P guarantees only strictly positive idle time.
	const full = 0.999
	for _, c := range cases {
		cfg := fixedWindowConfig(c.tau, c.w1, c.w2, opts.seed())
		cfg.AckSize = 0
		cfg.Warmup = opts.scale(200 * time.Second)
		cfg.Duration = opts.scale(600 * time.Second)
		res := runCore(opts, cfg)
		if o.Result == nil {
			o.Result = res
			o.Series = []*trace.Series{res.Q1(), res.Q2()}
			o.PlotFrom, o.PlotTo = plotWindow(res, 60*time.Second)
		}
		twoP := 2 * cfg.PipeSize()
		wantOut := float64(c.w1) > float64(c.w2)+twoP
		mode, corr := queuePhase(res)
		uF, uR := res.UtilForward(), res.UtilReverse()
		q1max := res.Q1().Max(res.MeasureFrom, res.MeasureTo)
		q2max := res.Q2().Max(res.MeasureFrom, res.MeasureTo)
		var want string
		var pass bool
		if wantOut {
			want = "out-of-phase, one line full"
			oneFull := (uF >= full) != (uR >= full)
			pass = mode == analysis.PhaseOut && oneFull && mathAbs(q1max-q2max) > 5
		} else {
			want = "in-phase (equal queue maxima), neither full"
			pass = uF < full && uR < full && mathAbs(q1max-q2max) <= 2
		}
		o.Metrics = append(o.Metrics, metric(
			fmt.Sprintf("τ=%v W1=%d W2=%d (2P=%.2f)", c.tau, c.w1, c.w2, twoP),
			want, pass,
			"%v (r=%.2f), utils %.1f%%/%.1f%%, Qmax %.0f/%.0f",
			mode, corr, uF*100, uR*100, q1max, q2max))
	}
	o.Notes = append(o.Notes,
		"the in-phase mode's square waves are sequenced within each cycle, so raw queue "+
			"correlation is weak there; the paper's own discriminator — equal maximum queue "+
			"heights and neither line full — is what is checked")
	return o
}

func mathAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ACKCompressionProbe isolates the §4.2 mechanism: in the two-way
// fixed-window system, clustered ACKs leave a congested queue spaced at
// the ACK transmission time rather than the data transmission time,
// destroying the ACK clock; with one-way traffic the clock is intact.
// The probe also verifies the §4.2 remark that no ACK is ever dropped.
func ACKCompressionProbe(opts Options) *Outcome {
	// Two-way fixed windows: compression expected.
	cfg := fixedWindowConfig(10*time.Millisecond, 30, 25, opts.seed())
	cfg.Warmup = opts.scale(100 * time.Second)
	cfg.Duration = opts.scale(500 * time.Second)
	twoWay := runCore(opts, cfg)

	// One-way baseline with the same adaptive machinery disabled: a
	// single fixed-window connection. ACK spacing can never shrink.
	oneCfg := core.DumbbellConfig(10*time.Millisecond, 0)
	oneCfg.Seed = opts.seed()
	oneCfg.Conns = []core.ConnSpec{{SrcHost: 0, DstHost: 1, FixedWnd: 30, Start: -1}}
	oneCfg.Warmup = opts.scale(100 * time.Second)
	oneCfg.Duration = opts.scale(500 * time.Second)
	oneWay := runCore(opts, oneCfg)

	compTwo := compression(twoWay, 0)
	compOne := compression(oneWay, 0)
	ackTx := 8 * time.Millisecond // 50 B at 50 Kbps

	o := &Outcome{
		ID:     "ack-compression",
		Title:  "ACK-compression mechanism probe (§4.2)",
		Result: twoWay,
		Series: []*trace.Series{twoWay.Q1(), twoWay.Q2()},
	}
	o.PlotFrom, o.PlotTo = plotWindow(twoWay, 20*time.Second)
	o.Metrics = []Metric{
		metric("two-way: compressed ACK gaps", "large fraction at ACK tx time",
			compTwo.CompressedFraction() > 0.5, "%.0f %% of %d gaps",
			compTwo.CompressedFraction()*100, compTwo.Gaps),
		metric("two-way: minimum ACK gap", "ACK transmission time (8 ms)",
			compTwo.MinGap >= ackTx-time.Millisecond && compTwo.MinGap <= ackTx+4*time.Millisecond,
			"%v", compTwo.MinGap),
		metric("one-way: compressed ACK gaps", "none (clock preserved)",
			compOne.CompressedFraction() <= 0.02, "%.1f %% of %d gaps",
			compOne.CompressedFraction()*100, compOne.Gaps),
		metric("one-way: minimum ACK gap", "≥ data transmission time (80 ms)",
			compOne.MinGap >= 72*time.Millisecond, "%v", compOne.MinGap),
		metric("ACK drops (both runs)", "ACKs are never dropped",
			ackDropCount(twoWay)+ackDropCount(oneWay) == 0, "%d",
			ackDropCount(twoWay)+ackDropCount(oneWay)),
	}
	return o
}
