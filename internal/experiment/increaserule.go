package experiment

import (
	"math"
	"time"

	"tahoedyn/internal/core"
	"tahoedyn/internal/trace"
)

// IncreaseRuleStudy validates the paper's §2.1 assertion that replacing
// the original BSD congestion-avoidance increase (cwnd += 1/cwnd, which
// can leave ⌊cwnd⌋ unchanged over a full epoch) with the modified
// cwnd += 1/⌊cwnd⌋ affects none of the qualitative conclusions: the
// Fig. 2 configuration must produce the same utilization, oscillation
// period, and drops-per-epoch under both rules.
func IncreaseRuleStudy(opts Options) *Outcome {
	run := func(original bool) *core.Result {
		cfg := oneWayConfig(time.Second, core.DefaultBuffer, 3, opts.seed())
		for i := range cfg.Conns {
			cfg.Conns[i].OriginalIncrease = original
		}
		cfg.Warmup = opts.scale(200 * time.Second)
		cfg.Duration = opts.scale(900 * time.Second)
		return runCore(opts, cfg)
	}
	modified := run(false)
	original := run(true)

	epochsMod := measuredEpochs(modified, 10*time.Second)
	epochsOrig := measuredEpochs(original, 10*time.Second)
	periodMod := meanEpochPeriod(epochsMod)
	periodOrig := meanEpochPeriod(epochsOrig)
	utilDiff := math.Abs(modified.UtilForward() - original.UtilForward())
	periodRatio := 0.0
	if periodMod > 0 {
		periodRatio = float64(periodOrig) / float64(periodMod)
	}

	o := &Outcome{
		ID:     "increase-rule",
		Title:  "Modified vs original congestion-avoidance increase (§2.1)",
		Result: modified,
		Series: []*trace.Series{modified.Cwnd[0], original.Cwnd[0]},
	}
	o.Series[0].Name = "cwnd-modified"
	o.Series[1].Name = "cwnd-original"
	o.PlotFrom, o.PlotTo = plotWindow(modified, 140*time.Second)
	o.Metrics = []Metric{
		metric("utilization unchanged", "no qualitative effect",
			utilDiff < 0.02, "%.1f %% vs %.1f %% original",
			modified.UtilForward()*100, original.UtilForward()*100),
		metric("oscillation period unchanged", "≈ same cycle",
			inBand(periodRatio, 0.85, 1.2), "%v vs %v original",
			periodMod.Round(time.Second), periodOrig.Round(time.Second)),
		metric("drops per epoch unchanged", "acceleration analysis holds for both",
			math.Abs(meanDropsPerEpoch(epochsMod)-meanDropsPerEpoch(epochsOrig)) < 0.5,
			"%.1f vs %.1f original", meanDropsPerEpoch(epochsMod), meanDropsPerEpoch(epochsOrig)),
	}
	o.Notes = append(o.Notes,
		"the paper modified the rule only to make ⌊cwnd⌋ advance exactly once per epoch, "+
			"simplifying the acceleration bookkeeping — not to change behavior")
	return o
}
