package experiment

// Robustness of the headline findings across random start times. The
// two-way system is multistable — the paper's §4.3.3 notes less-common
// modes beside the dominant ones — so these tests assert prevalence, not
// universality.

import (
	"testing"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
)

var robustnessSeeds = []int64{1, 2, 3, 4, 5, 6, 7, 8}

func TestOutOfPhaseModeDominatesAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	outOfPhase := 0
	for _, seed := range robustnessSeeds {
		cfg := twoWayConfig(10*time.Millisecond, core.DefaultBuffer, seed)
		cfg.Warmup = 200 * time.Second
		cfg.Duration = 800 * time.Second
		res := core.Run(cfg)
		mode, r := cwndPhase(res, 0, 1)
		util := res.UtilForward()
		t.Logf("seed %d: %v (r=%.2f), util %.1f%%", seed, mode, r, util*100)
		if mode == analysis.PhaseOut {
			outOfPhase++
			// The out-of-phase mode pins utilization near 70 %.
			if !inBand(util, 0.6, 0.8) {
				t.Errorf("seed %d: out-of-phase utilization %.1f%% out of band", seed, util*100)
			}
		}
	}
	// The paper's Figure 4 mode must be the dominant attractor.
	if outOfPhase < len(robustnessSeeds)/2+1 {
		t.Fatalf("out-of-phase mode in only %d/%d seeds", outOfPhase, len(robustnessSeeds))
	}
}

func TestInPhaseModeUniversalAtLargePipe(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range robustnessSeeds[:5] {
		cfg := twoWayConfig(time.Second, core.DefaultBuffer, seed)
		cfg.Warmup = 200 * time.Second
		cfg.Duration = 800 * time.Second
		res := core.Run(cfg)
		mode, r := cwndPhase(res, 0, 1)
		t.Logf("seed %d: %v (r=%.2f), util %.1f%%", seed, mode, r, res.UtilForward()*100)
		if mode != analysis.PhaseIn {
			t.Errorf("seed %d: large-pipe mode %v, want in-phase", seed, mode)
		}
	}
}

func TestFig8NumbersHoldAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	// The fixed-window system has a single attractor: the Fig. 8 queue
	// maxima are start-time independent.
	for _, seed := range robustnessSeeds[:5] {
		cfg := fixedWindowConfig(10*time.Millisecond, 30, 25, seed)
		cfg.Warmup = 100 * time.Second
		cfg.Duration = 400 * time.Second
		res := core.Run(cfg)
		q1 := res.Q1().Max(res.MeasureFrom, res.MeasureTo)
		q2 := res.Q2().Max(res.MeasureFrom, res.MeasureTo)
		if q1 != 55 || q2 != 23 {
			t.Errorf("seed %d: queue maxima %v/%v, want 55/23", seed, q1, q2)
		}
	}
}

func TestOneWayUtilizationStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range robustnessSeeds[:5] {
		cfg := oneWayConfig(time.Second, core.DefaultBuffer, 3, seed)
		cfg.Warmup = 200 * time.Second
		cfg.Duration = 800 * time.Second
		res := core.Run(cfg)
		if !inBand(res.UtilForward(), 0.85, 0.95) {
			t.Errorf("seed %d: one-way utilization %.1f%% out of band", seed, res.UtilForward()*100)
		}
	}
}

func TestFairQueueCureHoldsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range robustnessSeeds[:5] {
		cfg := twoWayConfig(10*time.Millisecond, core.DefaultBuffer, seed)
		cfg.Discipline = core.FairQueue
		cfg.Warmup = 200 * time.Second
		cfg.Duration = 800 * time.Second
		res := core.Run(cfg)
		if res.UtilForward() < 0.95 {
			t.Errorf("seed %d: FQ utilization %.1f%%, want ≈full", seed, res.UtilForward()*100)
		}
		comp := compression(res, 0)
		if comp.CompressedFraction() > 0.1 {
			t.Errorf("seed %d: FQ compression %.0f%%, want ≈0", seed, comp.CompressedFraction()*100)
		}
	}
}
