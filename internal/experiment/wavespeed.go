package experiment

import (
	"fmt"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/topology"
)

// WaveSpeedStudy quantifies the congestion wave that CongestionWaveProbe
// only orders: down a deeper chain of bottlenecks, how fast does the
// wavefront travel, and is its pace constant in hop depth? The setup is
// the same isolation trick — fixed-window cross traffic holds a standing
// queue on every trunk of an 8-bottleneck chain, then a large
// fixed-window pulse enters at one end — but the measurement is a
// least-squares fit of wavefront arrival time against hop index
// (analysis.LinearFit). A straight line (r² near 1) means the wave
// moves at a well-defined velocity; its slope is the per-hop delay, set
// by queue drain time rather than propagation delay, which the study
// checks by comparing the fitted slope against the trunk latency.
func WaveSpeedStudy(opts Options) *Outcome {
	const hops = 8
	g := topology.Chain(hops + 1)
	cfg := core.Config{
		Topology:   &g,
		TrunkDelay: 10 * time.Millisecond,
		Buffer:     40,
		Seed:       opts.seed(),
		Warmup:     opts.scale(20 * time.Second),
		Duration:   opts.scale(120 * time.Second),
	}
	for h := 0; h < hops; h++ {
		cfg.Conns = append(cfg.Conns, core.ConnSpec{
			SrcHost:  h,
			DstHost:  h + 1,
			FixedWnd: 4,
			Start:    opts.scale(time.Duration(h) * 250 * time.Millisecond),
		})
	}
	pulseAt := opts.scale(40 * time.Second)
	cfg.Conns = append(cfg.Conns, core.ConnSpec{
		SrcHost:  0,
		DstHost:  hops,
		FixedWnd: 30,
		Start:    pulseAt,
	})
	res := runCore(opts, cfg)

	waves := make([]hopWave, hops)
	reached := 0
	var xs, ys []float64
	for h := 0; h < hops; h++ {
		q := res.TrunkQueue[h][0]
		w := &waves[h]
		w.baseline = q.TimeAverage(res.MeasureFrom, pulseAt)
		w.arrival, w.arrived = analysis.FirstAbove(q, pulseAt, res.MeasureTo, w.baseline+waveThreshold)
		if w.arrived {
			reached++
			xs = append(xs, float64(h))
			ys = append(ys, (w.arrival - pulseAt).Seconds())
		}
	}
	slope, intercept, r2 := analysis.LinearFit(xs, ys)
	velocity := 0.0
	if slope > 0 {
		velocity = 1 / slope
	}
	perHop := time.Duration(slope * float64(time.Second))

	o := &Outcome{
		ID:     "wave-speed",
		Title:  "Wave speed: wavefront velocity fit over an 8-bottleneck chain",
		Result: res,
	}
	for h := 0; h < hops; h++ {
		o.Series = append(o.Series, res.TrunkQueue[h][0])
	}
	o.PlotFrom = pulseAt - opts.scale(5*time.Second)
	if o.PlotFrom < res.MeasureFrom {
		o.PlotFrom = res.MeasureFrom
	}
	o.PlotTo = pulseAt + opts.scale(40*time.Second)
	if o.PlotTo > res.MeasureTo {
		o.PlotTo = res.MeasureTo
	}
	o.Metrics = []Metric{
		metric("wave reaches every bottleneck", "queue rise visible at all 8 hops",
			reached == hops, "%d of %d hops crossed baseline+%.0f", reached, hops, waveThreshold),
		metric("arrival time is linear in hop depth", "r² of arrival-vs-hop fit near 1",
			r2 >= 0.9, "r² = %.3f over %d hops", r2, reached),
		metric("wave velocity is positive and finite", "fitted slope > 0",
			slope > 0, "v = %.2f hops/s (%.0f ms/hop)", velocity, slope*1000),
		metric("propagation is queue-limited", "fitted per-hop delay far above trunk latency",
			perHop > 4*cfg.TrunkDelay, "%v per hop vs %v propagation", perHop.Round(time.Millisecond), cfg.TrunkDelay),
	}
	o.Notes = append(o.Notes, fmt.Sprintf(
		"fit: arrival = %.0f ms·hop + %.0f ms, r² = %.3f", slope*1000, intercept*1000, r2))
	for h, w := range waves {
		o.Notes = append(o.Notes, fmt.Sprintf(
			"hop %d: baseline %.1f, wave at %v", h, w.baseline, w.arrival.Round(time.Millisecond)))
	}
	return o
}
