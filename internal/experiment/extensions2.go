package experiment

import (
	"fmt"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/core"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/trace"
)

// RenoTwoWay tests the paper's conjecture (§1) that the two-way
// phenomena apply to a wider class of nonpaced window algorithms: the
// same dumbbell scenarios run under 4.3-Reno fast recovery (the
// successor algorithm of reference [7]). Both synchronization modes and
// ACK-compression must survive the algorithm change.
func RenoTwoWay(opts Options) *Outcome {
	run := func(tau time.Duration) *core.Result {
		cfg := twoWayConfig(tau, core.DefaultBuffer, opts.seed())
		for i := range cfg.Conns {
			cfg.Conns[i].Reno = true
		}
		cfg.Warmup = opts.scale(200 * time.Second)
		cfg.Duration = opts.scale(800 * time.Second)
		return runCore(opts, cfg)
	}
	small := run(10 * time.Millisecond)
	large := run(time.Second)

	qSmall, rSmall := queuePhase(small)
	qLarge, rLarge := queuePhase(large)
	comp := compression(small, 0)
	var fastRtx, timeouts uint64
	for _, st := range small.SenderStats {
		fastRtx += st.FastRetransmits
		timeouts += st.Timeouts
	}

	o := &Outcome{
		ID:     "reno",
		Title:  "Reno fast recovery: the phenomena outlive Tahoe (extension)",
		Result: small,
		Series: []*trace.Series{small.Q1(), small.Q2()},
	}
	o.PlotFrom, o.PlotTo = plotWindow(small, 30*time.Second)
	o.Metrics = []Metric{
		metric("small pipe: queue synchronization", "out-of-phase persists",
			qSmall == analysis.PhaseOut, "%v (r=%.2f)", qSmall, rSmall),
		metric("large pipe: queue synchronization", "in-phase persists",
			qLarge == analysis.PhaseIn, "%v (r=%.2f)", qLarge, rLarge),
		metric("ACK compression", "persists under Reno",
			comp.CompressedFraction() > 0.2, "%.0f %% gaps compressed",
			comp.CompressedFraction()*100),
		metric("recovery path", "fast retransmit dominates timeouts",
			fastRtx > 10*timeouts, "%d fast retransmits vs %d timeouts", fastRtx, timeouts),
		metric("small pipe utilization", "still well below full",
			inBand(small.UtilForward(), 0.55, 0.9), "%.1f %%", small.UtilForward()*100),
	}
	o.Notes = append(o.Notes, fmt.Sprintf(
		"Reno vs Tahoe utilization at τ=10ms: %.1f%% (Tahoe ≈70%%); at τ=1s: %.1f%% (Tahoe ≈64%%)",
		small.UtilForward()*100, large.UtilForward()*100))
	return o
}

// RandomDropStudy contrasts the paper's drop-tail switches with the
// Random Drop gateway discipline of the studies cited in §1 ([4], [5],
// [10], [18]). Random eviction breaks the one-way loss-synchronization
// (a uniformly chosen victim rarely hits every connection in the same
// epoch) and removes drop-tail's structural ACK immunity.
func RandomDropStudy(opts Options) *Outcome {
	runOneWay := func(d core.Discard) *core.Result {
		cfg := oneWayConfig(time.Second, core.DefaultBuffer, 3, opts.seed())
		cfg.Discard = d
		cfg.Warmup = opts.scale(200 * time.Second)
		cfg.Duration = opts.scale(800 * time.Second)
		return runCore(opts, cfg)
	}
	tail := runOneWay(core.DropTail)
	random := runOneWay(core.RandomDrop)

	allLose := func(res *core.Result) (int, int) {
		epochs := measuredEpochs(res, 10*time.Second)
		n := 0
		for _, e := range epochs {
			if len(e.LossByConn()) == 3 {
				n++
			}
		}
		return n, len(epochs)
	}
	tailAll, tailEpochs := allLose(tail)
	randAll, randEpochs := allLose(random)

	// Two-way: do ACKs get dropped now?
	cfg2 := twoWayConfig(10*time.Millisecond, core.DefaultBuffer, opts.seed())
	cfg2.Discard = core.RandomDrop
	cfg2.Warmup = opts.scale(200 * time.Second)
	cfg2.Duration = opts.scale(800 * time.Second)
	twoWay := runCore(opts, cfg2)
	ackDrops := 0
	for _, d := range dropsAfter(twoWay.Drops, twoWay.MeasureFrom) {
		if d.Kind == packet.Ack {
			ackDrops++
		}
	}

	o := &Outcome{
		ID:     "random-drop",
		Title:  "Random Drop gateways vs drop-tail (extension, §1 citations)",
		Result: random,
		Series: []*trace.Series{random.Q1()},
	}
	o.PlotFrom, o.PlotTo = plotWindow(random, 140*time.Second)
	tailFrac := safeFrac(tailAll, tailEpochs)
	randFrac := safeFrac(randAll, randEpochs)
	o.Metrics = []Metric{
		metric("drop-tail loss-synchronization", "all 3 connections lose every epoch",
			tailFrac >= 0.9, "%.0f %% of %d epochs", tailFrac*100, tailEpochs),
		metric("random-drop loss-synchronization", "broken by uniform eviction",
			randFrac <= 0.5, "%.0f %% of %d epochs", randFrac*100, randEpochs),
		metric("one-way utilization", "comparable or better",
			random.UtilForward() >= tail.UtilForward()-0.03,
			"%.1f %% vs %.1f %% drop-tail", random.UtilForward()*100, tail.UtilForward()*100),
		metric("one-way fairness (Jain)", "remains high",
			analysis.JainIndex(random.Goodput) > 0.9, "%.4f",
			analysis.JainIndex(random.Goodput)),
		metric("two-way ACK drops", "ACK immunity is a drop-tail artifact",
			ackDrops > 0, "%d ACKs evicted", ackDrops),
	}
	return o
}

func safeFrac(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// UnequalRTTStudy tests the §5 remark that identical round-trip times
// were crucial to complete clustering: once connections' RTTs differ by
// more than a bottleneck packet transmission time, clustering is only
// partial — and, as a side effect, the longer-RTT connections lose
// goodput share.
func UnequalRTTStudy(opts Options) *Outcome {
	run := func(extra time.Duration) *core.Result {
		cfg := oneWayConfig(time.Second, core.DefaultBuffer, 3, opts.seed())
		cfg.Conns[1].ExtraDelay = extra
		cfg.Conns[2].ExtraDelay = 2 * extra
		cfg.Warmup = opts.scale(200 * time.Second)
		cfg.Duration = opts.scale(800 * time.Second)
		return runCore(opts, cfg)
	}
	equal := run(0)
	unequal := run(100 * time.Millisecond) // ≫ the 80 ms data tx time

	clusEqual := dataClustering(equal, 0, 0)
	clusUnequal := dataClustering(unequal, 0, 0)

	o := &Outcome{
		ID:     "unequal-rtt",
		Title:  "Unequal round-trip times break complete clustering (§5)",
		Result: unequal,
		Series: []*trace.Series{unequal.Q1()},
	}
	o.PlotFrom, o.PlotTo = plotWindow(unequal, 140*time.Second)
	o.Metrics = []Metric{
		metric("equal RTTs: clustering", "complete",
			clusEqual >= 0.8, "%.3f", clusEqual),
		metric("unequal RTTs: clustering", "no longer perfect, partial remains",
			clusUnequal < clusEqual-0.1 && clusUnequal > 0.2,
			"%.3f (vs %.3f equal)", clusUnequal, clusEqual),
		metric("utilization", "roughly maintained",
			unequal.UtilForward() > equal.UtilForward()-0.08,
			"%.1f %% vs %.1f %% equal", unequal.UtilForward()*100, equal.UtilForward()*100),
		metric("fairness (Jain)", "declines with RTT spread",
			analysis.JainIndex(unequal.Goodput) < analysis.JainIndex(equal.Goodput),
			"%.4f vs %.4f equal",
			analysis.JainIndex(unequal.Goodput), analysis.JainIndex(equal.Goodput)),
	}
	o.Notes = append(o.Notes, fmt.Sprintf("goodput shares with unequal RTTs: %v", unequal.Goodput))
	return o
}
