package tstore

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"tahoedyn/internal/obs"
)

// synthTrace builds a deterministic, invariant-clean event stream
// modeling nPorts ports fed round-robin by nConns connections: every
// packet is enqueued, (maybe) sits, then transmits, with occasional
// arrival drops and cwnd/timeout value events sprinkled in.
func synthTrace(n, nPorts, nConns int, seed int64) ([]string, []obs.Event) {
	locs := make([]string, nPorts)
	for i := range locs {
		locs[i] = "port" + string(rune('A'+i))
	}
	rng := rand.New(rand.NewSource(seed))
	type pq struct {
		ids  []uint64
		qlen int
	}
	ports := make([]pq, nPorts)
	events := make([]obs.Event, 0, n)
	t := time.Duration(0)
	var nextID uint64 = 1
	for len(events) < n {
		t += time.Duration(rng.Intn(1000)) * time.Microsecond
		loc := rng.Intn(nPorts)
		conn := int32(1 + rng.Intn(nConns))
		p := &ports[loc]
		switch k := rng.Intn(10); {
		case k < 4: // arrival
			if p.qlen >= 8 { // full: arrival drop, queue unchanged
				events = append(events, obs.Event{T: t, Type: obs.Drop, Loc: obs.Loc(loc),
					Conn: conn, ID: nextID, Seq: int32(nextID), Size: 1000, Val: float64(p.qlen)})
			} else {
				p.ids = append(p.ids, nextID)
				p.qlen++
				events = append(events, obs.Event{T: t, Type: obs.Enqueue, Loc: obs.Loc(loc),
					Conn: conn, ID: nextID, Seq: int32(nextID), Size: 1000, Val: float64(p.qlen)})
			}
			nextID++
		case k < 8: // departure
			if p.qlen == 0 {
				continue
			}
			id := p.ids[0]
			events = append(events, obs.Event{T: t, Type: obs.Dequeue, Loc: obs.Loc(loc),
				Conn: conn, ID: id, Seq: int32(id), Size: 1000, Val: float64(p.qlen)})
			p.ids = p.ids[1:]
			p.qlen--
			events = append(events, obs.Event{T: t, Type: obs.Transmit, Loc: obs.Loc(loc),
				Conn: conn, ID: id, Seq: int32(id), Size: 1000, Val: float64(p.qlen)})
		case k < 9:
			events = append(events, obs.Event{T: t, Type: obs.CwndChange, Conn: conn,
				Val: float64(1 + rng.Intn(32))})
		default:
			events = append(events, obs.Event{T: t, Type: obs.Deliver, Loc: obs.Loc(loc),
				Conn: conn, ID: uint64(rng.Intn(100)), Size: 1000, Val: 0.5 * float64(rng.Intn(7))})
		}
	}
	return locs, events[:n]
}

// buildStore writes events through a Writer into memory and opens the
// result as a Store.
func buildStore(t *testing.T, locs []string, events []obs.Event, chunkN int) (*Store, []byte) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{ChunkEvents: chunkN})
	if err := w.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	// Split into batches to exercise the batch path.
	for off := 0; off < len(events); off += 1000 {
		end := off + 1000
		if end > len(events) {
			end = len(events)
		}
		if err := w.Events(locs, events[off:end]); err != nil {
			t.Fatalf("Events: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	b := buf.Bytes()
	s, err := NewStore(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s, b
}

func TestRoundTrip(t *testing.T) {
	locs, events := synthTrace(10000, 4, 8, 1)
	s, raw := buildStore(t, locs, events, 512)
	if got := s.TotalEvents(); got != uint64(len(events)) {
		t.Fatalf("TotalEvents = %d, want %d", got, len(events))
	}
	if len(s.Chunks()) < len(events)/512 {
		t.Fatalf("too few chunks: %d", len(s.Chunks()))
	}
	var got []obs.Event
	if err := s.Scan(Query{}, func(ev *obs.Event) error {
		got = append(got, *ev)
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("scanned %d events, want %d", len(got), len(events))
	}
	storeLocs := s.Locs()
	for i := range got {
		want := events[i]
		g := got[i]
		// The store re-interns locations; compare by name.
		if storeLocs[g.Loc] != locs[want.Loc] {
			t.Fatalf("event %d: loc %q, want %q", i, storeLocs[g.Loc], locs[want.Loc])
		}
		g.Loc, want.Loc = 0, 0
		if g != want {
			t.Fatalf("event %d: got %+v, want %+v", i, g, want)
		}
	}
	// Compression sanity: the store should be well below 40 B/event raw.
	if raw := float64(len(raw)) / float64(len(events)); raw > 25 {
		t.Errorf("store spends %.1f bytes/event; expected columnar encoding below 25", raw)
	}
}

func TestEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{})
	if err := w.Close(); err != nil { // Close without Begin
		t.Fatalf("Close: %v", err)
	}
	s, err := NewStore(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	if s.TotalEvents() != 0 || len(s.Chunks()) != 0 {
		t.Fatalf("empty store has %d events, %d chunks", s.TotalEvents(), len(s.Chunks()))
	}
	n := 0
	if err := s.Scan(Query{}, func(*obs.Event) error { n++; return nil }); err != nil || n != 0 {
		t.Fatalf("scan of empty store: n=%d err=%v", n, err)
	}
}

// bruteMatch filters events the slow way for cross-checking.
func bruteMatch(locs []string, events []obs.Event, q Query) []obs.Event {
	locID := -1
	if q.Loc != "" {
		locID = -2
		for i, n := range locs {
			if n == q.Loc {
				locID = i
			}
		}
	}
	var out []obs.Event
	for _, ev := range events {
		if locID == -2 {
			break
		}
		if ev.T < q.From || (q.To > 0 && ev.T >= q.To) {
			continue
		}
		if locID >= 0 && int(ev.Loc) != locID {
			continue
		}
		if !q.Filter.Match(ev.Type, int(ev.Conn)) {
			continue
		}
		out = append(out, ev)
	}
	return out
}

func TestQueriesMatchBruteForce(t *testing.T) {
	locs, events := synthTrace(20000, 4, 8, 2)
	s, _ := buildStore(t, locs, events, 256)
	maxT := events[len(events)-1].T
	queries := []Query{
		{},
		{From: maxT / 4, To: maxT / 2},
		{Filter: obs.Filter{Types: 1 << obs.Drop}},
		{Filter: obs.Filter{Conn: 3}},
		{Loc: "portB"},
		{Loc: "missing-port"},
		{From: maxT / 3, To: 2 * maxT / 3, Filter: obs.Filter{Types: 1 << obs.Transmit, Conn: 2}, Loc: "portA"},
		{To: maxT / 8, Filter: obs.Filter{Types: 1<<obs.Enqueue | 1<<obs.Drop}},
	}
	for qi, q := range queries {
		want := bruteMatch(locs, events, q)
		var got []obs.Event
		skipped, err := s.ScanStats(q, func(ev *obs.Event) error {
			got = append(got, *ev)
			return nil
		})
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d events, want %d", qi, len(got), len(want))
		}
		for i := range got {
			g, w := got[i], want[i]
			g.Loc, w.Loc = 0, 0 // loc ids re-interned; names checked in TestRoundTrip
			if g != w {
				t.Fatalf("query %d event %d: got %+v want %+v", qi, i, g, w)
			}
		}
		n, err := s.Count(q)
		if err != nil || n != uint64(len(want)) {
			t.Fatalf("query %d: Count = %d (err %v), want %d", qi, n, err, len(want))
		}
		// Time-bounded queries must actually skip chunks (conn/loc
		// ranges legitimately span every chunk of this mixed trace).
		if (q.From > 0 || q.To > 0) && skipped == 0 && len(s.Chunks()) > 4 {
			t.Errorf("query %d: time-bounded query skipped no chunks", qi)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	locs, events := synthTrace(5000, 2, 4, 3)
	s, _ := buildStore(t, locs, events, 128)
	n := 0
	if err := s.Scan(Query{}, func(*obs.Event) error {
		n++
		if n == 100 {
			return ErrStop
		}
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != 100 {
		t.Fatalf("ErrStop after %d events, want 100", n)
	}
}

func TestWindowed(t *testing.T) {
	locs, events := synthTrace(20000, 3, 4, 4)
	src := &SliceSource{LocTable: locs, Events: events}
	s, _ := buildStore(t, locs, events, 512)

	q := Query{Filter: obs.Filter{Types: 1 << obs.Transmit}}
	width := 10 * time.Millisecond
	fromSlice, err := Windowed(src, q, WindowOptions{Width: width, ByLoc: true})
	if err != nil {
		t.Fatalf("Windowed(slice): %v", err)
	}
	fromStore, err := Windowed(s, q, WindowOptions{Width: width, ByLoc: true})
	if err != nil {
		t.Fatalf("Windowed(store): %v", err)
	}
	if len(fromStore) != len(fromSlice) {
		t.Fatalf("store has %d groups, slice %d", len(fromStore), len(fromSlice))
	}
	var totBytes int64
	for name, ws := range fromStore {
		if len(ws) != len(fromSlice[name]) {
			t.Fatalf("group %q: %d windows vs %d", name, len(ws), len(fromSlice[name]))
		}
		for i := range ws {
			if ws[i] != fromSlice[name][i] {
				t.Fatalf("group %q window %d: %+v vs %+v", name, i, ws[i], fromSlice[name][i])
			}
			if want := time.Duration(i) * width; ws[i].Start != want {
				t.Fatalf("group %q window %d starts at %v, want %v", name, i, ws[i].Start, want)
			}
			totBytes += ws[i].Bytes
		}
	}
	want := bruteMatch(locs, events, q)
	if totBytes != int64(len(want))*1000 {
		t.Fatalf("windowed bytes %d, want %d", totBytes, len(want)*1000)
	}
}

func TestQuantilesExact(t *testing.T) {
	// 1000 Deliver events with Val = 0, 0.5, ..., known distribution.
	locs, events := synthTrace(30000, 2, 4, 5)
	src := &SliceSource{LocTable: locs, Events: events}
	q := Query{Filter: obs.Filter{Types: 1 << obs.Enqueue}}
	vals := []float64{}
	for _, ev := range bruteMatch(locs, events, q) {
		vals = append(vals, ev.Val)
	}
	got, n, err := Quantiles(src, q, []float64{0.5, 0.9})
	if err != nil {
		t.Fatalf("Quantiles: %v", err)
	}
	if n != uint64(len(vals)) {
		t.Fatalf("n = %d, want %d", n, len(vals))
	}
	// Exact path: cross-check against a sort.
	sorted := append([]float64(nil), vals...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	for i, p := range []float64{0.5, 0.9} {
		r := int(p*float64(len(sorted))+0.9999999) - 1
		if got[i] != sorted[r] {
			t.Fatalf("p=%g: got %g, want %g", p, got[i], sorted[r])
		}
	}
}

func TestQuantilesStreaming(t *testing.T) {
	// Uniform values 1..100, enough samples to trip the P² switch: the
	// estimates must land near the true quantiles.
	n := maxExactSamples * 3
	events := make([]obs.Event, n)
	rng := rand.New(rand.NewSource(7))
	for i := range events {
		events[i] = obs.Event{T: time.Duration(i), Type: obs.Deliver, Val: float64(1 + rng.Intn(100))}
	}
	src := &SliceSource{LocTable: []string{"x"}, Events: events}
	got, cnt, err := Quantiles(src, Query{}, []float64{0.5, 0.99})
	if err != nil {
		t.Fatalf("Quantiles: %v", err)
	}
	if cnt != uint64(n) {
		t.Fatalf("count = %d, want %d", cnt, n)
	}
	if got[0] < 45 || got[0] > 55 {
		t.Errorf("p50 = %g, want ≈50", got[0])
	}
	if got[1] < 95 || got[1] > 100 {
		t.Errorf("p99 = %g, want ≈99", got[1])
	}
}

func TestInvariantCleanTrace(t *testing.T) {
	locs, events := synthTrace(20000, 4, 8, 6)
	src := &SliceSource{LocTable: locs, Events: events}
	n, vio, err := Check(src, CheckOptions{})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if vio != nil {
		t.Fatalf("clean trace flagged: %v", vio)
	}
	if n != uint64(len(events)) {
		t.Fatalf("checked %d events, want %d", n, len(events))
	}
}

func TestInvariantViolations(t *testing.T) {
	locs, events := synthTrace(5000, 2, 4, 8)
	// Find an Enqueue event to corrupt.
	enq := -1
	for i, ev := range events {
		if ev.Type == obs.Enqueue && i > 100 {
			enq = i
			break
		}
	}
	if enq < 0 {
		t.Fatal("no enqueue event in synthetic trace")
	}
	cases := []struct {
		name   string
		rule   string
		mutate func([]obs.Event) int // returns index of offending event
		opts   CheckOptions
	}{
		{
			name: "conservation-bad-qlen",
			rule: "conservation",
			mutate: func(evs []obs.Event) int {
				evs[enq].Val += 3
				return enq
			},
		},
		{
			name: "causality-phantom-transmit",
			rule: "causality",
			mutate: func(evs []obs.Event) int {
				evs[enq].Type = obs.Transmit
				evs[enq].ID = 1 << 60 // never enqueued
				return enq
			},
		},
		{
			name: "monotonic-time",
			rule: "monotonic-time",
			mutate: func(evs []obs.Event) int {
				evs[enq].T = evs[enq-1].T - time.Second
				return enq
			},
			opts: CheckOptions{NoConservation: true},
		},
		{
			name: "cwnd-below-one",
			rule: "cwnd-bounds",
			mutate: func(evs []obs.Event) int {
				evs[enq] = obs.Event{T: evs[enq].T, Type: obs.CwndChange, Conn: 1, Val: 0}
				return enq
			},
			opts: CheckOptions{NoConservation: true},
		},
		{
			name: "cwnd-above-max",
			rule: "cwnd-bounds",
			mutate: func(evs []obs.Event) int {
				evs[enq] = obs.Event{T: evs[enq].T, Type: obs.CwndChange, Conn: 1, Val: 1e6}
				return enq
			},
			opts: CheckOptions{NoConservation: true, MaxCwnd: map[int]float64{1: 64}},
		},
		{
			name: "timeout-not-increasing",
			rule: "timeout-monotonic",
			mutate: func(evs []obs.Event) int {
				evs[enq-1] = obs.Event{T: evs[enq-1].T, Type: obs.Timeout, Conn: 2, Val: 5}
				evs[enq] = obs.Event{T: evs[enq].T, Type: obs.Timeout, Conn: 2, Val: 5}
				return enq
			},
			opts: CheckOptions{NoConservation: true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			evs := append([]obs.Event(nil), events...)
			wantIdx := tc.mutate(evs)
			src := &SliceSource{LocTable: locs, Events: evs}
			_, vio, err := Check(src, tc.opts)
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if vio == nil {
				t.Fatal("corruption not detected")
			}
			if vio.Rule != tc.rule {
				t.Fatalf("flagged rule %q, want %q (%v)", vio.Rule, tc.rule, vio)
			}
			if vio.Index != uint64(wantIdx) {
				t.Fatalf("flagged event %d, want %d (%v)", vio.Index, wantIdx, vio)
			}
			if vio.Error() == "" {
				t.Fatal("empty violation message")
			}
		})
	}
}

func TestOnlineCheckerForwardsAndFlags(t *testing.T) {
	locs, events := synthTrace(3000, 2, 4, 9)
	events[1500].Val += 7 // corrupt one queue length
	mem := obs.NewMemorySink()
	c := NewChecker(mem, CheckOptions{})
	if err := c.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	err := c.Events(locs, events)
	if err == nil {
		t.Fatal("checker did not report the violation")
	}
	vio, ok := err.(*Violation)
	if !ok {
		t.Fatalf("error is %T, want *Violation", err)
	}
	if c.Violation() != vio {
		t.Fatal("Violation() disagrees with returned error")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The batch was forwarded before checking: the inner sink has it all.
	if got := mem.Len(); got != len(events) {
		t.Fatalf("inner sink holds %d events, want %d", got, len(events))
	}
}

func TestStoreRejectsCorruption(t *testing.T) {
	locs, events := synthTrace(4000, 2, 4, 10)
	_, raw := buildStore(t, locs, events, 256)

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 1, headerSize - 1, headerSize, len(raw) / 2, len(raw) - 1} {
			if _, err := NewStore(bytes.NewReader(raw[:cut]), int64(cut)); err == nil {
				t.Errorf("store truncated to %d bytes accepted", cut)
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		b[0] = 'X'
		if _, err := NewStore(bytes.NewReader(b), int64(len(b))); err == nil {
			t.Error("bad header magic accepted")
		}
	})
	t.Run("footer-bitflip", func(t *testing.T) {
		// Flip a byte inside the footer: the CRC must catch it.
		b := append([]byte(nil), raw...)
		b[len(b)-trailerSize-3] ^= 0xff
		if _, err := NewStore(bytes.NewReader(b), int64(len(b))); err == nil {
			t.Error("footer corruption accepted")
		}
	})
	t.Run("chunk-bitflip", func(t *testing.T) {
		// Flip bytes inside chunk payloads: opening may succeed (the
		// footer is intact) but scanning must error, never panic.
		for off := headerSize + 4; off < len(raw)/2; off += 97 {
			b := append([]byte(nil), raw...)
			b[off] ^= 0xa5
			s, err := NewStore(bytes.NewReader(b), int64(len(b)))
			if err != nil {
				continue
			}
			scanErr := s.Scan(Query{}, func(*obs.Event) error { return nil })
			_ = scanErr // a bitflip inside value payload bytes can decode; no-crash is the contract
		}
	})
}

func TestWriterLocReinterning(t *testing.T) {
	// Two "runs" with different location tables must merge into one
	// consistent store table.
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{ChunkEvents: 4})
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := w.Events([]string{"a", "b"}, []obs.Event{
		{T: 1, Type: obs.Deliver, Loc: 0},
		{T: 2, Type: obs.Deliver, Loc: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Events([]string{"b", "c"}, []obs.Event{
		{T: 3, Type: obs.Deliver, Loc: 0},
		{T: 4, Type: obs.Deliver, Loc: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	if err := s.Scan(Query{}, func(ev *obs.Event) error {
		names = append(names, s.Locs()[ev.Loc])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "b", "c"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("event %d at %q, want %q (all: %v)", i, names[i], want[i], names)
		}
	}
	if n, err := Count(s, Query{Loc: "b"}); err != nil || n != 2 {
		t.Fatalf("Count(loc=b) = %d, %v; want 2", n, err)
	}
}
