package tstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"tahoedyn/internal/obs"
)

// Store is an opened chunked trace store: the footer index and location
// table live in memory, chunk payloads are read on demand. Scans
// materialize at most one chunk at a time, so working memory is
// independent of the trace size. A Store is safe for concurrent Scans
// (each scan carries its own buffers) over an io.ReaderAt.
type Store struct {
	r     io.ReaderAt
	c     io.Closer
	locs  []string
	index []ChunkInfo
	total uint64
	// chunkN is the writer's target events per chunk (header field).
	chunkN int
	// sorted reports whether chunk time ranges are non-overlapping and
	// ascending — true for any store a tracer wrote — enabling early
	// scan termination at q.To.
	sorted bool
}

// Open opens a store file. The returned Store keeps the file open;
// Close releases it.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := NewStore(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	s.c = f
	return s, nil
}

// NewStore opens a store over any random-access byte source of the
// given size (a file, an mmap, a test buffer).
func NewStore(r io.ReaderAt, size int64) (*Store, error) {
	if size < headerSize+trailerSize {
		return nil, fmt.Errorf("tstore: file too short (%d bytes) to be a store", size)
	}
	var hdr [headerSize]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("tstore: reading header: %w", err)
	}
	if string(hdr[:4]) != storeMagic {
		return nil, fmt.Errorf("tstore: bad magic %q (want %q)", hdr[:4], storeMagic)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v > storeVersion {
		return nil, fmt.Errorf("tstore: store version %d is newer than supported version %d", v, storeVersion)
	}
	chunkN := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if chunkN <= 0 || chunkN > maxChunkPayload {
		return nil, fmt.Errorf("tstore: implausible chunk size %d in header", chunkN)
	}

	var tr [trailerSize]byte
	if _, err := r.ReadAt(tr[:], size-trailerSize); err != nil {
		return nil, fmt.Errorf("tstore: reading trailer: %w", err)
	}
	if string(tr[8:12]) != footerMagic {
		return nil, fmt.Errorf("tstore: bad trailer magic %q — store truncated or not finalized (was Close called?)", tr[8:12])
	}
	footLen := int64(binary.LittleEndian.Uint32(tr[4:8]))
	footOff := size - trailerSize - footLen
	if footLen < 0 || footOff < headerSize {
		return nil, fmt.Errorf("tstore: implausible footer length %d", footLen)
	}
	foot := make([]byte, footLen)
	if _, err := r.ReadAt(foot, footOff); err != nil {
		return nil, fmt.Errorf("tstore: reading footer: %w", err)
	}
	if crc := crcFooter(foot); crc != binary.LittleEndian.Uint32(tr[0:4]) {
		return nil, fmt.Errorf("tstore: footer checksum mismatch (file corrupted)")
	}

	s := &Store{r: r, chunkN: chunkN, sorted: true}
	d := &decoder{b: foot}
	nLocs := d.count("location")
	for i := 0; i < nLocs && d.err == nil; i++ {
		n := d.count("location name byte")
		s.locs = append(s.locs, string(d.bytes(n)))
	}
	nChunks := d.count("chunk")
	if d.err == nil {
		s.index = make([]ChunkInfo, 0, nChunks)
	}
	prevEnd := time.Duration(math.MinInt64)
	for i := 0; i < nChunks && d.err == nil; i++ {
		c := ChunkInfo{
			Offset:   int64(d.uvarint()),
			Size:     int64(d.uvarint()),
			Count:    int(d.uvarint()),
			MinT:     time.Duration(d.varint()),
			MaxT:     time.Duration(d.varint()),
			TypeMask: uint32(d.uvarint()),
			ConnLo:   int32(d.varint()),
			ConnHi:   int32(d.varint()),
			LocLo:    uint16(d.uvarint()),
			LocHi:    uint16(d.uvarint()),
		}
		if d.err != nil {
			break
		}
		if c.Size <= 0 || c.Size > maxChunkPayload || c.Offset < headerSize || c.Offset+4+c.Size > footOff {
			d.fail("tstore: chunk %d extent [%d, +%d) outside the data section", i, c.Offset, c.Size)
			break
		}
		if c.Count <= 0 || c.Count > maxChunkPayload {
			d.fail("tstore: chunk %d implausible event count %d", i, c.Count)
			break
		}
		if c.MinT < prevEnd {
			s.sorted = false
		}
		prevEnd = c.MaxT
		s.index = append(s.index, c)
	}
	s.total = d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	var n uint64
	for i := range s.index {
		n += uint64(s.index[i].Count)
	}
	if n != s.total {
		return nil, fmt.Errorf("tstore: footer total %d disagrees with index sum %d", s.total, n)
	}
	return s, nil
}

// Close releases the underlying file, when the store owns one.
func (s *Store) Close() error {
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// Locs returns the store's location table; event Loc fields index it.
func (s *Store) Locs() []string { return s.locs }

// Chunks returns the footer index (read-only).
func (s *Store) Chunks() []ChunkInfo { return s.index }

// TotalEvents returns the number of events in the store.
func (s *Store) TotalEvents() uint64 { return s.total }

// LocID resolves a location name to its store id, or -1.
func (s *Store) LocID(name string) int {
	for i, n := range s.locs {
		if n == name {
			return i
		}
	}
	return -1
}

// Scan streams every event matching q through fn, in file order,
// skipping chunks the index rules out. fn receives a pointer into a
// scratch buffer that is reused — copy the event to retain it. A
// non-nil error from fn aborts the scan and is returned; ErrStop
// aborts and returns nil.
func (s *Store) Scan(q Query, fn func(*obs.Event) error) error {
	_, err := s.scan(q, fn)
	return err
}

// ScanStats is Scan, also reporting how many chunks the index skipped
// — the chunk-skip ratio is skipped/len(Chunks()).
func (s *Store) ScanStats(q Query, fn func(*obs.Event) error) (skipped int, err error) {
	return s.scan(q, fn)
}

func (s *Store) scan(q Query, fn func(*obs.Event) error) (skipped int, err error) {
	locID, ok := q.locID(s.locs)
	if !ok {
		return len(s.index), nil
	}
	var (
		payload []byte
		events  []obs.Event
	)
	for i := range s.index {
		c := &s.index[i]
		if !c.overlaps(q, locID) {
			skipped++
			if s.sorted && q.To > 0 && c.MinT >= q.To {
				skipped += len(s.index) - i - 1
				return skipped, nil
			}
			continue
		}
		payload, events, err = s.readChunk(c, payload, events)
		if err != nil {
			return skipped, err
		}
		for j := range events {
			ev := &events[j]
			if !q.match(ev, locID) {
				continue
			}
			if err := fn(ev); err != nil {
				if err == ErrStop {
					return skipped, nil
				}
				return skipped, err
			}
		}
	}
	return skipped, nil
}

// readChunk reads and decodes one chunk, reusing the caller's buffers.
func (s *Store) readChunk(c *ChunkInfo, payload []byte, events []obs.Event) ([]byte, []obs.Event, error) {
	if cap(payload) < int(c.Size)+4 {
		payload = make([]byte, c.Size+4)
	}
	payload = payload[:c.Size+4]
	if _, err := s.r.ReadAt(payload, c.Offset); err != nil {
		return payload, events, fmt.Errorf("tstore: reading chunk at %d: %w", c.Offset, err)
	}
	if got := int64(binary.LittleEndian.Uint32(payload[:4])); got != c.Size {
		return payload, events, fmt.Errorf("tstore: chunk at %d declares %d payload bytes, index says %d", c.Offset, got, c.Size)
	}
	evs, err := decodeChunk(payload[4:], events, len(s.locs))
	if err != nil {
		return payload, events, err
	}
	if len(evs) != c.Count {
		return payload, evs, fmt.Errorf("tstore: chunk at %d holds %d events, index says %d", c.Offset, len(evs), c.Count)
	}
	return payload, evs, nil
}
