package tstore

import (
	"bytes"
	"testing"

	"tahoedyn/internal/obs"
)

// FuzzNewStore throws arbitrary bytes at the chunked-store reader.
// Whatever the input — truncated files, flipped header fields, corrupt
// footers, hostile varints in the chunk index — NewStore must either
// return an error or yield a store whose full Scan completes without
// panicking. Allocation is bounded by the validated counts, so hostile
// lengths must not OOM either.
func FuzzNewStore(f *testing.F) {
	// Seed with a small real store so the fuzzer starts from a valid
	// file and mutates inward past the CRC and bounds checks.
	locs, events := synthTrace(2000, 3, 2, 1)
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{ChunkEvents: 256})
	if err := w.Begin(); err != nil {
		f.Fatal(err)
	}
	if err := w.Events(locs, events); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	b := buf.Bytes()
	f.Add(b)
	for _, cut := range []int{0, 4, 11, 12, 40, len(b) / 2, len(b) - 13, len(b) - 1} {
		f.Add(b[:cut])
	}
	// Empty store (header only, footer for zero chunks).
	var empty bytes.Buffer
	we := NewWriter(&empty, WriterOptions{})
	we.Begin()
	we.Close()
	f.Add(empty.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := NewStore(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// Opened: scanning every chunk must not panic; errors are fine
		// (chunk payloads are not covered by the footer CRC).
		n := uint64(0)
		s.Scan(Query{}, func(ev *obs.Event) error {
			n++
			return nil
		})
		if n > s.TotalEvents() {
			t.Fatalf("scan yielded %d events, store claims %d", n, s.TotalEvents())
		}
	})
}
