package tstore

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"tahoedyn/internal/obs"
)

// ErrStop, returned from a Scan callback, aborts the scan without
// error — "I have what I need".
var ErrStop = errors.New("tstore: stop scan")

// Query selects a slice of a trace: a half-open time window
// [From, To), the obs filter (connection, event-type bitmask), and
// optionally a single location by name. The zero Query matches
// everything.
type Query struct {
	// From and To bound event times: From ≤ T < To. To == 0 means
	// unbounded above.
	From, To time.Duration
	// Filter is the standard obs connection/type filter.
	Filter obs.Filter
	// Loc, when non-empty, matches only events at that location
	// (a port name like "sw0->sw1" — see Scanner.Locs).
	Loc string
}

// locID resolves q.Loc against a location table: (-1, true) for "any
// location", (id, true) for a known name, and ok=false when the name
// is absent — no event can match.
func (q Query) locID(locs []string) (int, bool) {
	if q.Loc == "" {
		return -1, true
	}
	for i, n := range locs {
		if n == q.Loc {
			return i, true
		}
	}
	return 0, false
}

// match reports whether one event passes the query, with q.Loc already
// resolved to locID.
func (q Query) match(ev *obs.Event, locID int) bool {
	if ev.T < q.From || (q.To > 0 && ev.T >= q.To) {
		return false
	}
	if locID >= 0 && int(ev.Loc) != locID {
		return false
	}
	return q.Filter.Match(ev.Type, int(ev.Conn))
}

// Scanner is a streaming event source a query runs over: the on-disk
// Store, or a SliceSource wrapping an in-memory trace. Scan streams
// matching events in time order through fn; the *obs.Event may point
// into a reused buffer, so implementations' callers copy to retain.
type Scanner interface {
	Scan(q Query, fn func(*obs.Event) error) error
	Locs() []string
}

// SliceSource adapts an in-memory trace (a MemorySink capture, a
// decoded flat-TOBS file) to the Scanner interface.
type SliceSource struct {
	LocTable []string
	Events   []obs.Event
}

func (s *SliceSource) Locs() []string { return s.LocTable }

func (s *SliceSource) Scan(q Query, fn func(*obs.Event) error) error {
	locID, ok := q.locID(s.LocTable)
	if !ok {
		return nil
	}
	for i := range s.Events {
		ev := &s.Events[i]
		if !q.match(ev, locID) {
			continue
		}
		if err := fn(ev); err != nil {
			if err == ErrStop {
				return nil
			}
			return err
		}
	}
	return nil
}

// Count returns the number of events matching q. For a Store it
// answers from the footer index wherever a chunk is entirely inside or
// outside the query, reading only boundary chunks.
func Count(sc Scanner, q Query) (uint64, error) {
	if s, ok := sc.(*Store); ok {
		return s.Count(q)
	}
	var n uint64
	err := sc.Scan(q, func(*obs.Event) error { n++; return nil })
	return n, err
}

// Count returns the number of events matching q, consulting the index
// first: chunks the query cannot touch are skipped, chunks the query
// fully covers contribute their counts without being read, and only
// boundary chunks are decoded.
func (s *Store) Count(q Query) (uint64, error) {
	locID, ok := q.locID(s.locs)
	if !ok {
		return 0, nil
	}
	var (
		n       uint64
		payload []byte
		events  []obs.Event
		err     error
	)
	for i := range s.index {
		c := &s.index[i]
		if !c.overlaps(q, locID) {
			if s.sorted && q.To > 0 && c.MinT >= q.To {
				break
			}
			continue
		}
		if c.covered(q, locID) {
			n += uint64(c.Count)
			continue
		}
		payload, events, err = s.readChunk(c, payload, events)
		if err != nil {
			return n, err
		}
		for j := range events {
			if q.match(&events[j], locID) {
				n++
			}
		}
	}
	return n, nil
}

// WindowStat aggregates the events of one time window (for one
// location, when grouped).
type WindowStat struct {
	// Start is the window's inclusive lower bound; the window is
	// [Start, Start+Width).
	Start time.Duration
	// Count is the number of matching events.
	Count int64
	// Bytes sums the events' packet sizes — Count and Bytes over
	// Transmit events divided by the width are a link's packet and byte
	// throughput.
	Bytes int64
	// Sum, Min and Max aggregate the events' Val field (queue length,
	// cwnd, ... depending on the type queried). Min/Max are zero when
	// Count is zero.
	Sum, Min, Max float64
}

// Mean returns Sum/Count, or 0 for an empty window.
func (w *WindowStat) Mean() float64 {
	if w.Count == 0 {
		return 0
	}
	return w.Sum / float64(w.Count)
}

// WindowOptions shapes a Windowed aggregation.
type WindowOptions struct {
	// Width is the window size; required.
	Width time.Duration
	// ByLoc groups results per location name; otherwise everything
	// aggregates into a single series keyed "".
	ByLoc bool
}

// Windowed streams the events matching q into fixed-width time windows
// anchored at q.From and returns one WindowStat series per group
// (location name when o.ByLoc, else the single key ""). Memory is
// O(groups × windows) — proportional to simulated time, not to the
// event count — and events are read one chunk at a time.
func Windowed(sc Scanner, q Query, o WindowOptions) (map[string][]WindowStat, error) {
	if o.Width <= 0 {
		return nil, fmt.Errorf("tstore: window width must be positive (got %v)", o.Width)
	}
	locs := sc.Locs()
	out := map[string][]WindowStat{}
	err := sc.Scan(q, func(ev *obs.Event) error {
		key := ""
		if o.ByLoc {
			if int(ev.Loc) < len(locs) {
				key = locs[ev.Loc]
			} else {
				key = fmt.Sprintf("loc%d", ev.Loc)
			}
		}
		idx := int((ev.T - q.From) / o.Width)
		series := out[key]
		for len(series) <= idx {
			series = append(series, WindowStat{Start: q.From + time.Duration(len(series))*o.Width})
		}
		w := &series[idx]
		if w.Count == 0 {
			w.Min, w.Max = ev.Val, ev.Val
		} else {
			if ev.Val < w.Min {
				w.Min = ev.Val
			}
			if ev.Val > w.Max {
				w.Max = ev.Val
			}
		}
		w.Count++
		w.Bytes += int64(ev.Size)
		w.Sum += ev.Val
		out[key] = series
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// maxExactSamples is the sample-buffer bound for Quantiles: up to this
// many values the answer is exact; past it the buffer seeds streaming
// P² estimators and is released, keeping memory constant however large
// the trace.
const maxExactSamples = 1 << 16

// Quantiles estimates quantiles of the Val field over the events
// matching q. probs are in (0, 1), e.g. {0.5, 0.9, 0.99}. The second
// result is the sample count; with n ≤ 65536 the quantiles are exact
// (nearest-rank on the sorted samples), beyond that each probability
// is tracked by a P² streaming estimator seeded from the first 65536
// samples, so memory stays bounded. Deterministic for a given stream.
func Quantiles(sc Scanner, q Query, probs []float64) ([]float64, uint64, error) {
	for _, p := range probs {
		if p <= 0 || p >= 1 {
			return nil, 0, fmt.Errorf("tstore: quantile probability %v outside (0, 1)", p)
		}
	}
	var (
		exact []float64
		est   []*p2sketch
		n     uint64
	)
	err := sc.Scan(q, func(ev *obs.Event) error {
		n++
		if est == nil {
			exact = append(exact, ev.Val)
			if len(exact) > maxExactSamples {
				est = make([]*p2sketch, len(probs))
				for i, p := range probs {
					est[i] = newP2(p)
					for _, v := range exact {
						est[i].add(v)
					}
				}
				exact = nil
			}
			return nil
		}
		for _, e := range est {
			e.add(ev.Val)
		}
		return nil
	})
	if err != nil {
		return nil, n, err
	}
	out := make([]float64, len(probs))
	if est != nil {
		for i, e := range est {
			out[i] = e.value()
		}
		return out, n, nil
	}
	if len(exact) == 0 {
		return out, 0, nil
	}
	sort.Float64s(exact)
	for i, p := range probs {
		// Nearest-rank: the smallest value with cumulative frequency ≥ p.
		r := int(math.Ceil(p*float64(len(exact)))) - 1
		if r < 0 {
			r = 0
		}
		out[i] = exact[r]
	}
	return out, n, nil
}

// p2sketch is the P² streaming quantile estimator (Jain & Chlamtac,
// CACM 1985): five markers whose heights track the running p-quantile
// in O(1) memory, adjusted by a piecewise-parabolic fit as samples
// arrive.
type p2sketch struct {
	p   float64
	q   [5]float64 // marker heights
	n   [5]float64 // marker positions (1-based)
	np  [5]float64 // desired positions
	dn  [5]float64 // desired-position increments
	cnt int
}

func newP2(p float64) *p2sketch {
	s := &p2sketch{p: p}
	s.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return s
}

func (s *p2sketch) add(x float64) {
	if s.cnt < 5 {
		s.q[s.cnt] = x
		s.cnt++
		if s.cnt == 5 {
			sort.Float64s(s.q[:])
			for i := range s.n {
				s.n[i] = float64(i + 1)
				s.np[i] = 1 + 4*s.dn[i]
			}
		}
		return
	}
	s.cnt++

	// Locate the cell k with q[k] ≤ x < q[k+1], widening the extremes.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x >= s.q[4]:
		s.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.n[i]++
	}
	for i := range s.np {
		s.np[i] += s.dn[i]
	}

	// Nudge interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.np[i] - s.n[i]
		if (d >= 1 && s.n[i+1]-s.n[i] > 1) || (d <= -1 && s.n[i-1]-s.n[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			qn := s.parabolic(i, sign)
			if !(s.q[i-1] < qn && qn < s.q[i+1]) {
				qn = s.linear(i, sign)
			}
			s.q[i] = qn
			s.n[i] += sign
		}
	}
}

func (s *p2sketch) parabolic(i int, d float64) float64 {
	return s.q[i] + d/(s.n[i+1]-s.n[i-1])*
		((s.n[i]-s.n[i-1]+d)*(s.q[i+1]-s.q[i])/(s.n[i+1]-s.n[i])+
			(s.n[i+1]-s.n[i]-d)*(s.q[i]-s.q[i-1])/(s.n[i]-s.n[i-1]))
}

func (s *p2sketch) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.q[i] + d*(s.q[j]-s.q[i])/(s.n[j]-s.n[i])
}

// value returns the current quantile estimate.
func (s *p2sketch) value() float64 {
	if s.cnt == 0 {
		return 0
	}
	if s.cnt <= 5 {
		// Too few samples for the marker machinery: exact nearest-rank.
		tmp := append([]float64(nil), s.q[:s.cnt]...)
		sort.Float64s(tmp)
		r := int(math.Ceil(s.p*float64(len(tmp)))) - 1
		if r < 0 {
			r = 0
		}
		return tmp[r]
	}
	return s.q[2]
}
