package tstore

import (
	"fmt"
	"math"
	"sync"
	"time"

	"tahoedyn/internal/obs"
)

// Violation describes the first invariant breach found in a trace,
// pinpointing the offending event. It implements error.
type Violation struct {
	// Rule names the invariant: "monotonic-time", "conservation",
	// "causality", "cwnd-bounds", "timeout-monotonic".
	Rule string
	// Index is the 0-based position of the event in the checked stream.
	Index uint64
	// Loc is the resolved location name of the event, when known.
	Loc string
	// Event is the offending event itself.
	Event obs.Event
	// Detail explains what was expected and what was seen.
	Detail string
}

func (v *Violation) Error() string {
	loc := v.Loc
	if loc == "" {
		loc = fmt.Sprintf("loc%d", v.Event.Loc)
	}
	return fmt.Sprintf("tstore: invariant %q violated by event %d (t=%v type=%v loc=%s conn=%d id=%d val=%g): %s",
		v.Rule, v.Index, v.Event.T, v.Event.Type, loc, v.Event.Conn, v.Event.ID, v.Event.Val, v.Detail)
}

// CheckOptions selects which invariants run and supplies their bounds.
// The zero value checks everything checkable without configuration
// (conservation, causality, monotonic time, timeout monotonicity, and
// the cwnd lower bound).
type CheckOptions struct {
	// MaxCwnd bounds each connection's congestion window (packets),
	// keyed by 1-based connection id. Connections without an entry are
	// only checked against the lower bound of one packet.
	MaxCwnd map[int]float64
	// NoConservation disables the per-port packet-conservation and
	// causality rules. Required for partial traces — a filtered or
	// windowed capture starts mid-run with queues already occupied, so
	// conservation cannot hold.
	NoConservation bool
	// NoMonotonicTime disables the global event-time ordering rule.
	NoMonotonicTime bool
	// NoCwndBounds disables the congestion-window bounds rule.
	NoCwndBounds bool
}

// portQueue models one port's buffer from its event stream: the set of
// enqueued packet ids plus the implied queue length. The id set is
// what disambiguates a Random-Drop/FQ eviction (victim is in the
// buffer) from an arrival drop (victim never entered), and catches
// causality breaks (transmitting a packet that was never enqueued).
type portQueue struct {
	ids  map[uint64]struct{}
	qlen int
}

// checkState is the streaming invariant engine shared by the online
// sink (Checker) and the offline pass (Check). Memory is O(packets
// currently queued + connections), independent of trace length.
//
// Ports are keyed by interned location NAME, not by the raw Loc id:
// every batch carries its emitting run's own location table, and in a
// sharded run each region's tracer numbers its locations independently
// — the same id means different ports in different regions' batches.
type checkState struct {
	o           CheckOptions
	ports       map[int]*portQueue
	lastT       time.Duration
	lastTimeout map[int32]float64
	idx         uint64

	// Location interning, mirroring the store writer's: remap caches the
	// current batch table → stable id mapping.
	locIndex map[string]int
	remap    []int
	remapFor []string
}

func newCheckState(o CheckOptions) *checkState {
	return &checkState{
		o:           o,
		ports:       map[int]*portQueue{},
		lastTimeout: map[int32]float64{},
		locIndex:    map[string]int{},
	}
}

// setLocs refreshes the batch-table remap. The fast path — same backing
// array and length as the previous batch — is two compares.
func (cs *checkState) setLocs(locs []string) {
	if len(locs) == len(cs.remapFor) {
		same := len(locs) == 0 || &locs[0] == &cs.remapFor[0]
		if !same {
			same = true
			for i := range locs {
				if locs[i] != cs.remapFor[i] {
					same = false
					break
				}
			}
		}
		if same {
			return
		}
	}
	if cap(cs.remap) < len(locs) {
		cs.remap = make([]int, len(locs))
	}
	cs.remap = cs.remap[:len(locs)]
	for i, name := range locs {
		id, ok := cs.locIndex[name]
		if !ok {
			id = len(cs.locIndex)
			cs.locIndex[name] = id
		}
		cs.remap[i] = id
	}
	cs.remapFor = locs
}

// portKey returns the stable port identity for an event of the current
// batch. Events with out-of-table ids (never produced by a tracer) fold
// into negative sentinel buckets, disjoint from the interned range.
func (cs *checkState) portKey(ev *obs.Event) int {
	if int(ev.Loc) < len(cs.remap) {
		return cs.remap[ev.Loc]
	}
	return -(1 + int(ev.Loc))
}

// violate builds a Violation for the current event.
func (cs *checkState) violate(ev *obs.Event, locs []string, rule, format string, args ...any) *Violation {
	loc := ""
	if int(ev.Loc) < len(locs) {
		loc = locs[ev.Loc]
	}
	return &Violation{
		Rule:   rule,
		Index:  cs.idx,
		Loc:    loc,
		Event:  *ev,
		Detail: fmt.Sprintf(format, args...),
	}
}

// check runs one event through every enabled rule; non-nil means the
// trace is invalid and checking stops. locs is the emitting table for
// name resolution in the report.
func (cs *checkState) check(ev *obs.Event, locs []string) *Violation {
	if !cs.o.NoMonotonicTime {
		if ev.T < cs.lastT {
			return cs.violate(ev, locs, "monotonic-time",
				"event time %v precedes previous event time %v", ev.T, cs.lastT)
		}
		cs.lastT = ev.T
	}

	switch ev.Type {
	case obs.Enqueue, obs.Dequeue, obs.Transmit, obs.Drop:
		if !cs.o.NoConservation {
			if v := cs.checkPort(ev, locs); v != nil {
				return v
			}
		}
	case obs.Timeout:
		prev, seen := cs.lastTimeout[ev.Conn]
		if seen && ev.Val <= prev {
			return cs.violate(ev, locs, "timeout-monotonic",
				"cumulative timeout count %g not above previous %g for conn %d", ev.Val, prev, ev.Conn)
		}
		cs.lastTimeout[ev.Conn] = ev.Val
	case obs.CwndChange:
		if !cs.o.NoCwndBounds {
			if ev.Val < 1 {
				return cs.violate(ev, locs, "cwnd-bounds",
					"congestion window %g below one packet", ev.Val)
			}
			if max, ok := cs.o.MaxCwnd[int(ev.Conn)]; ok && ev.Val > max {
				return cs.violate(ev, locs, "cwnd-bounds",
					"congestion window %g above conn %d's bound %g", ev.Val, ev.Conn, max)
			}
		}
	}
	cs.idx++
	return nil
}

// checkPort applies conservation and causality at one port. Event Val
// semantics (pinned by internal/link/port.go): Enqueue reports the
// queue length after the arrival, Dequeue leaves it unchanged (the
// in-service packet still counts), Transmit reports it after the
// departure, Drop after the victim's removal — which for an arrival
// drop removes nothing.
func (cs *checkState) checkPort(ev *obs.Event, locs []string) *Violation {
	key := cs.portKey(ev)
	p := cs.ports[key]
	if p == nil {
		p = &portQueue{ids: map[uint64]struct{}{}}
		cs.ports[key] = p
	}
	_, queued := p.ids[ev.ID]
	switch ev.Type {
	case obs.Enqueue:
		if queued {
			return cs.violate(ev, locs, "conservation",
				"packet %d enqueued twice without leaving the buffer", ev.ID)
		}
		p.ids[ev.ID] = struct{}{}
		p.qlen++
		if int(ev.Val) != p.qlen {
			return cs.violate(ev, locs, "conservation",
				"queue length %g after enqueue, conservation implies %d", ev.Val, p.qlen)
		}
	case obs.Dequeue:
		if !queued {
			return cs.violate(ev, locs, "causality",
				"packet %d dequeued but never enqueued here", ev.ID)
		}
		if int(ev.Val) != p.qlen {
			return cs.violate(ev, locs, "conservation",
				"queue length %g at dequeue, conservation implies %d", ev.Val, p.qlen)
		}
	case obs.Transmit:
		if !queued {
			return cs.violate(ev, locs, "causality",
				"packet %d transmitted but never enqueued here", ev.ID)
		}
		delete(p.ids, ev.ID)
		p.qlen--
		if int(ev.Val) != p.qlen {
			return cs.violate(ev, locs, "conservation",
				"queue length %g after transmit, conservation implies %d", ev.Val, p.qlen)
		}
	case obs.Drop:
		if queued {
			// Eviction (Random Drop, FQ longest-flow): victim leaves the
			// buffer.
			delete(p.ids, ev.ID)
			p.qlen--
		}
		// Arrival drop: the victim never entered, queue unchanged.
		if int(ev.Val) != p.qlen {
			return cs.violate(ev, locs, "conservation",
				"queue length %g after drop, conservation implies %d", ev.Val, p.qlen)
		}
	}
	return nil
}

// Checker is an obs.Sink that verifies invariants online, during the
// run, forwarding every batch to an optional inner sink (so checking
// composes with tracing to disk). On the first violation the checker
// reports it as the sink error — the tracer goes quiet and the run
// completes, with the Violation surfacing through Result.TraceErr and
// Result.Invariant. The physics of the run are untouched: a checker
// only observes.
type Checker struct {
	mu    sync.Mutex
	inner obs.Sink
	cs    *checkState
	vio   *Violation
}

// NewChecker returns an online invariant checker forwarding to inner
// (which may be nil to only check).
func NewChecker(inner obs.Sink, o CheckOptions) *Checker {
	return &Checker{inner: inner, cs: newCheckState(o)}
}

// Begin forwards to the inner sink.
func (c *Checker) Begin() error {
	if c.inner != nil {
		return c.inner.Begin()
	}
	return nil
}

// Events forwards the batch, then checks it. The batch is forwarded
// first so that when a violation aborts tracing, the offending event
// is still present in the stored trace for inspection.
func (c *Checker) Events(locs []string, events []obs.Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var innerErr error
	if c.inner != nil {
		innerErr = c.inner.Events(locs, events)
	}
	if c.vio == nil {
		c.cs.setLocs(locs)
		for i := range events {
			if v := c.cs.check(&events[i], locs); v != nil {
				c.vio = v
				return v
			}
		}
	}
	return innerErr
}

// Close forwards to the inner sink.
func (c *Checker) Close() error {
	if c.inner != nil {
		return c.inner.Close()
	}
	return nil
}

// Violation returns the first breach found, or nil for a clean trace
// so far.
func (c *Checker) Violation() *Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vio
}

// EventsChecked returns how many events passed the checker cleanly.
func (c *Checker) EventsChecked() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cs.idx
}

// Check runs the invariant engine offline over a stored or in-memory
// trace, streaming one chunk at a time. It returns the number of
// events that passed and the first Violation, or a scan error.
func Check(sc Scanner, o CheckOptions) (uint64, *Violation, error) {
	cs := newCheckState(o)
	locs := sc.Locs()
	cs.setLocs(locs)
	var vio *Violation
	// From is unbounded below: a corrupted negative timestamp must reach
	// the checker, not be filtered out by the default [0, ∞) window.
	q := Query{From: time.Duration(math.MinInt64)}
	err := sc.Scan(q, func(ev *obs.Event) error {
		if v := cs.check(ev, locs); v != nil {
			vio = v
			return ErrStop
		}
		return nil
	})
	if err != nil {
		return cs.idx, nil, err
	}
	return cs.idx, vio, nil
}
