package tstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"tahoedyn/internal/obs"
)

// WriterOptions tunes a store writer.
type WriterOptions struct {
	// ChunkEvents is the number of events per chunk; 0 means
	// DefaultChunkEvents. Smaller chunks skip at finer granularity but
	// carry more per-chunk overhead (dictionaries, index entries).
	ChunkEvents int
}

// Writer streams events into the chunked columnar store format. It
// implements obs.Sink, so a simulation traces straight to disk:
//
//	f, _ := os.Create("run.tobc")
//	cfg.Obs = &obs.Options{Trace: &obs.TraceOptions{Sink: tstore.NewWriter(f, tstore.WriterOptions{})}}
//
// Memory stays bounded by one chunk (the staging buffer plus the encode
// scratch) no matter how many events pass through; the footer index is
// the only state that grows with the trace, at one small entry per
// chunk. Like obs.BinarySink, one Writer serves one run at a time — the
// mutex makes misuse safe, not meaningful — and Close finalizes the
// store (footer and trailer) but leaves the underlying writer open.
type Writer struct {
	mu     sync.Mutex
	w      io.Writer
	off    int64
	chunkN int

	// Store-level location interning: batches arrive with per-run
	// tables, events are staged with store ids.
	locNames []string
	locIndex map[string]obs.Loc
	// remap caches the incoming-table → store-id mapping; remapFor is
	// the table it was computed against.
	remap    []obs.Loc
	remapFor []string

	pending []obs.Event
	buf     []byte
	index   []ChunkInfo
	total   uint64

	began  bool
	closed bool
	err    error
}

// NewWriter returns a store writer targeting w. The caller owns w:
// Close finalizes the store but does not close the file.
func NewWriter(w io.Writer, o WriterOptions) *Writer {
	n := o.ChunkEvents
	if n <= 0 {
		n = DefaultChunkEvents
	}
	return &Writer{
		w:        w,
		chunkN:   n,
		locIndex: map[string]obs.Loc{},
		pending:  make([]obs.Event, 0, n),
	}
}

// Begin writes the store header. Part of the obs.Sink lifecycle.
func (sw *Writer) Begin() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.began {
		return sw.err
	}
	sw.began = true
	var hdr [headerSize]byte
	copy(hdr[:4], storeMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], storeVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(sw.chunkN))
	return sw.write(hdr[:])
}

// Events stages a batch, flushing every full chunk. Locations are
// re-interned against the store's own table, so the store is
// self-contained whatever table convention the emitting run used.
func (sw *Writer) Events(locs []string, events []obs.Event) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return fmt.Errorf("tstore: Events after Close")
	}
	sw.remapLocs(locs)
	for i := range events {
		ev := events[i]
		if int(ev.Loc) < len(sw.remap) {
			ev.Loc = sw.remap[ev.Loc]
		} else {
			ev.Loc = sw.intern("?")
		}
		sw.pending = append(sw.pending, ev)
		if len(sw.pending) == sw.chunkN {
			if err := sw.flushChunk(); err != nil {
				return err
			}
		}
	}
	return nil
}

// remapLocs refreshes the cached incoming-table mapping. The fast path
// — same backing array, same length as last batch — is two compares;
// tables only ever grow within a run, and a different run's table
// differs in content, so equality of the slices is the full check.
func (sw *Writer) remapLocs(locs []string) {
	if len(locs) == len(sw.remapFor) {
		same := len(locs) == 0 || &locs[0] == &sw.remapFor[0]
		if !same {
			same = true
			for i := range locs {
				if locs[i] != sw.remapFor[i] {
					same = false
					break
				}
			}
		}
		if same {
			return
		}
	}
	if cap(sw.remap) < len(locs) {
		sw.remap = make([]obs.Loc, len(locs))
	}
	sw.remap = sw.remap[:len(locs)]
	for i, name := range locs {
		sw.remap[i] = sw.intern(name)
	}
	sw.remapFor = locs
}

func (sw *Writer) intern(name string) obs.Loc {
	if id, ok := sw.locIndex[name]; ok {
		return id
	}
	if len(sw.locNames) > math.MaxUint16 {
		// The Loc id space is 16-bit; fold overflow into the last slot
		// rather than corrupting the table. Real runs intern a few
		// locations per network element and never get close.
		return obs.Loc(math.MaxUint16)
	}
	id := obs.Loc(len(sw.locNames))
	sw.locNames = append(sw.locNames, name)
	sw.locIndex[name] = id
	return id
}

// flushChunk encodes and writes the staged events as one chunk.
func (sw *Writer) flushChunk() error {
	if len(sw.pending) == 0 {
		return nil
	}
	var info ChunkInfo
	sw.buf, info = encodeChunk(sw.buf[:0], sw.pending)
	info.Offset = sw.off
	info.Size = int64(len(sw.buf))
	var lenw [4]byte
	binary.LittleEndian.PutUint32(lenw[:], uint32(len(sw.buf)))
	if err := sw.write(lenw[:]); err != nil {
		return err
	}
	if err := sw.write(sw.buf); err != nil {
		return err
	}
	sw.index = append(sw.index, info)
	sw.total += uint64(len(sw.pending))
	sw.pending = sw.pending[:0]
	return nil
}

// Close flushes the final partial chunk and writes the footer index
// and trailer. The store is complete and readable once Close returns;
// the underlying writer stays open (the caller owns it).
func (sw *Writer) Close() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.closed {
		return sw.err
	}
	sw.closed = true
	if sw.err != nil {
		return sw.err
	}
	if !sw.began {
		// Mirror the tracer contract (Close always begins the sink):
		// an eventless run still leaves a valid, empty store behind.
		sw.began = true
		var hdr [headerSize]byte
		copy(hdr[:4], storeMagic)
		binary.LittleEndian.PutUint16(hdr[4:6], storeVersion)
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(sw.chunkN))
		if err := sw.write(hdr[:]); err != nil {
			return err
		}
	}
	if err := sw.flushChunk(); err != nil {
		return err
	}
	return sw.writeFooter()
}

// TotalEvents returns the number of events written so far (staged
// events count once their chunk flushes; after Close, everything).
func (sw *Writer) TotalEvents() uint64 {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.total + uint64(len(sw.pending))
}

// Err returns the first write error.
func (sw *Writer) Err() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.err
}

// writeFooter emits the location table, the chunk index, the total
// count, and the fixed trailer that lets a reader find it all from the
// end of the file.
func (sw *Writer) writeFooter() error {
	b := sw.buf[:0]
	b = binary.AppendUvarint(b, uint64(len(sw.locNames)))
	for _, name := range sw.locNames {
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
	}
	b = binary.AppendUvarint(b, uint64(len(sw.index)))
	for i := range sw.index {
		c := &sw.index[i]
		b = binary.AppendUvarint(b, uint64(c.Offset))
		b = binary.AppendUvarint(b, uint64(c.Size))
		b = binary.AppendUvarint(b, uint64(c.Count))
		b = binary.AppendUvarint(b, zigzag(int64(c.MinT)))
		b = binary.AppendUvarint(b, zigzag(int64(c.MaxT)))
		b = binary.AppendUvarint(b, uint64(c.TypeMask))
		b = binary.AppendUvarint(b, zigzag(int64(c.ConnLo)))
		b = binary.AppendUvarint(b, zigzag(int64(c.ConnHi)))
		b = binary.AppendUvarint(b, uint64(c.LocLo))
		b = binary.AppendUvarint(b, uint64(c.LocHi))
	}
	b = binary.AppendUvarint(b, sw.total)
	sw.buf = b

	var tr [trailerSize]byte
	binary.LittleEndian.PutUint32(tr[0:4], crcFooter(b))
	binary.LittleEndian.PutUint32(tr[4:8], uint32(len(b)))
	copy(tr[8:12], footerMagic)
	if err := sw.write(b); err != nil {
		return err
	}
	return sw.write(tr[:])
}

func (sw *Writer) write(b []byte) error {
	n, err := sw.w.Write(b)
	sw.off += int64(n)
	if err != nil && sw.err == nil {
		sw.err = err
	}
	return err
}
