package tstore

// The PR's scale acceptance: a 10⁸-event synthetic trace streamed to
// disk through the sink interface and queried back — windowed per-link
// throughput and drop percentiles — in bounded memory. ~15 s of work
// and ~1.5 GB of disk, so gated behind an environment variable:
//
//	TAHOEDYN_HUGE_TRACE=1 go test ./internal/tstore -run TestHugeTrace -v

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"tahoedyn/internal/obs"
	"tahoedyn/internal/packet"
)

const hugeEvents = 100_000_000

// hugeBatch fills events with deterministic port-shaped traffic
// continuing at time start, returning the next start. One in 32 events
// is a Drop whose Val (queue length at the drop) cycles 0..23.
func hugeBatch(events []obs.Event, i0 uint64, start time.Duration) time.Duration {
	t := start
	for i := range events {
		gi := i0 + uint64(i)
		t += time.Duration(3+gi%11) * time.Microsecond
		typ := obs.Transmit
		switch gi % 32 {
		case 7:
			typ = obs.Drop
		case 15:
			typ = obs.Enqueue
		case 23:
			typ = obs.Dequeue
		}
		events[i] = obs.Event{
			T:    t,
			Type: typ,
			Loc:  obs.Loc(gi % 4),
			Conn: int32(1 + gi%3),
			Kind: packet.Data,
			ID:   gi,
			Seq:  int32(gi / 3),
			Size: 576,
			Val:  float64(gi % 24),
		}
	}
	return t
}

func heapMB() float64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapAlloc) / (1 << 20)
}

func TestHugeTraceStreamsAndQueries(t *testing.T) {
	if os.Getenv("TAHOEDYN_HUGE_TRACE") == "" {
		t.Skip("set TAHOEDYN_HUGE_TRACE=1 to run the 10⁸-event scale test")
	}
	locs := []string{"sw0->sw1:data", "sw1->sw0:ack", "sw1->sw2:data", "sw2->sw1:ack"}
	path := filepath.Join(t.TempDir(), "huge.tobc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}

	// Ingest: 10⁸ events in sink-sized batches, one batch buffer reused.
	w := NewWriter(f, WriterOptions{})
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	const batch = 1 << 16
	buf := make([]obs.Event, batch)
	var at time.Duration
	startW := time.Now()
	for off := uint64(0); off < hugeEvents; off += batch {
		n := uint64(batch)
		if hugeEvents-off < n {
			n = hugeEvents - off
		}
		at = hugeBatch(buf[:n], off, at)
		if err := w.Events(locs, buf[:n]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ingestS := time.Since(startW).Seconds()
	st, _ := os.Stat(path)
	writeHeap := heapMB()
	t.Logf("ingest: %d events in %.1fs (%.1fM events/s), %d MB on disk (%.1f B/event), heap %.0f MB",
		hugeEvents, ingestS, hugeEvents/ingestS/1e6, st.Size()>>20,
		float64(st.Size())/hugeEvents, writeHeap)

	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.TotalEvents(); got != hugeEvents {
		t.Fatalf("store holds %d events, want %d", got, hugeEvents)
	}

	// Windowed per-link throughput over a mid-trace slice of the span.
	span := s.Chunks()[len(s.Chunks())-1].MaxT
	q := Query{
		From:   span * 40 / 100,
		To:     span * 60 / 100,
		Filter: obs.Filter{Types: 1 << obs.Transmit},
	}
	startQ := time.Now()
	groups, err := Windowed(s, q, WindowOptions{Width: span / 100, ByLoc: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != len(locs) {
		t.Fatalf("windowed throughput found %d links, want %d", len(groups), len(locs))
	}
	var winEvents uint64
	for name, ws := range groups {
		var n int64
		for _, wst := range ws {
			n += wst.Count
			if wst.Count > 0 && wst.Bytes != wst.Count*576 {
				t.Fatalf("link %s window at %v: %d bytes for %d events", name, wst.Start, wst.Bytes, wst.Count)
			}
		}
		winEvents += uint64(n)
	}
	t.Logf("windowed throughput: %d transmit events across %d links in %.1fs",
		winEvents, len(groups), time.Since(startQ).Seconds())

	// Drop percentiles over the whole trace (streams through the P²
	// estimator after the exact buffer fills).
	startP := time.Now()
	probs := []float64{0.5, 0.9, 0.99}
	vals, nDrops, err := Quantiles(s, Query{Filter: obs.Filter{Types: 1 << obs.Drop}}, probs)
	if err != nil {
		t.Fatal(err)
	}
	// Drops land on gi%32==7 and Val is gi%24; gcd(32,24)=8, so drop
	// Vals cycle uniformly over {7, 15, 23}: p50 = 15, p99 = 23.
	if vals[0] < 14 || vals[0] > 16 || vals[2] < 22 || vals[2] > 23 {
		t.Fatalf("drop quantiles off: p50=%g p99=%g", vals[0], vals[2])
	}
	if want := uint64(hugeEvents / 32); nDrops != want {
		t.Fatalf("drop count %d, want %d", nDrops, want)
	}
	queryHeap := heapMB()
	t.Logf("drop percentiles over %d drops in %.1fs: p50=%g p90=%g p99=%g, heap %.0f MB",
		nDrops, time.Since(startP).Seconds(), vals[0], vals[1], vals[2], queryHeap)

	// Bounded memory: both phases must stay far below the 6.4 GB the
	// raw events would occupy in RAM.
	if writeHeap > 256 || queryHeap > 256 {
		t.Fatalf("heap not bounded: write %.0f MB, query %.0f MB", writeHeap, queryHeap)
	}
}
