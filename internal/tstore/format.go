// Package tstore is the out-of-core trace store: a columnar, chunked
// on-disk container for obs event streams, an index that lets queries
// skip chunks wholesale, a small streaming query layer (filter,
// project, windowed aggregate, percentile), and a streaming invariant
// engine (per-hop packet conservation, event-time monotonicity, cwnd
// bounds) that runs online during a simulation or offline over a
// stored trace.
//
// It exists because a billion-event run cannot hold its trace in RAM:
// the Writer plugs in as an obs.Sink, so events spill to disk while
// the simulation executes with memory bounded by one chunk, and the
// reader side never materializes more than one chunk either. The
// format ("TOBC") is the chunked, columnar sibling of the flat "TOBS"
// record stream in internal/obs: same event model, same versioning
// discipline, but laid out for selective scans instead of sequential
// replay.
//
// See DESIGN.md §14 for the chunk layout, the footer index, and the
// invariant semantics.
package tstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"tahoedyn/internal/obs"
	"tahoedyn/internal/packet"
)

// The container format. A store file is
//
//	header | chunk* | footer | trailer
//
// header (12 bytes): "TOBC" magic, uint16 version, uint16 reserved
// (zero), uint32 target events per chunk.
//
// chunk: uint32 payload length, then the columnar payload (see
// encodeChunk).
//
// footer: the location table, the chunk index, and the total event
// count, all varint-encoded (see writeFooter).
//
// trailer (12 bytes): uint32 CRC-32 (IEEE) of the footer bytes, uint32
// footer length, "TOBF" magic. The reader finds the footer by seeking
// to the end, so a store streams to any io.Writer — no mid-file
// seeking — and a truncated or corrupted file is rejected up front.
const (
	storeMagic   = "TOBC"
	footerMagic  = "TOBF"
	storeVersion = 1

	headerSize  = 12
	trailerSize = 12

	// DefaultChunkEvents is the chunk granularity when
	// WriterOptions.ChunkEvents is zero: the unit of both the writer's
	// memory bound and the reader's skip resolution.
	DefaultChunkEvents = 1 << 16

	// maxChunkPayload bounds a declared chunk payload so a corrupted
	// length field cannot demand an absurd allocation.
	maxChunkPayload = 1 << 28
)

// ChunkInfo is one footer-index entry: where a chunk lives and the
// ranges a query consults to skip it without reading it.
type ChunkInfo struct {
	// Offset is the file position of the chunk's length word; Size is
	// the payload length in bytes.
	Offset int64
	Size   int64
	// Count is the number of events in the chunk.
	Count int
	// MinT and MaxT bound the chunk's event times (inclusive).
	MinT, MaxT time.Duration
	// TypeMask has bit 1<<t set for every event Type t present.
	TypeMask uint32
	// ConnLo and ConnHi bound the connection ids present.
	ConnLo, ConnHi int32
	// LocLo and LocHi bound the store-level location ids present.
	LocLo, LocHi uint16
}

// overlaps reports whether a chunk can contain events matched by q
// (with the query's Loc already resolved to a store id, or -1 for
// "any"). False means the whole chunk is skipped unread.
func (c *ChunkInfo) overlaps(q Query, locID int) bool {
	if q.To > 0 && c.MinT >= q.To {
		return false
	}
	if c.MaxT < q.From {
		return false
	}
	if q.Filter.Types != 0 && q.Filter.Types&c.TypeMask == 0 {
		return false
	}
	if q.Filter.Conn != 0 {
		if conn := int32(q.Filter.Conn); conn < c.ConnLo || conn > c.ConnHi {
			return false
		}
	}
	if locID >= 0 {
		if l := uint16(locID); l < c.LocLo || l > c.LocHi {
			return false
		}
	}
	return true
}

// covered reports whether every event in the chunk is matched by q:
// the Count fast path for index-only answers.
func (c *ChunkInfo) covered(q Query, locID int) bool {
	if q.From > c.MinT || (q.To > 0 && c.MaxT >= q.To) {
		return false
	}
	if q.Filter.Types != 0 && c.TypeMask&^q.Filter.Types != 0 {
		return false
	}
	if q.Filter.Conn != 0 && (c.ConnLo != c.ConnHi || c.ConnLo != int32(q.Filter.Conn)) {
		return false
	}
	if locID >= 0 && (c.LocLo != c.LocHi || c.LocLo != uint16(locID)) {
		return false
	}
	return true
}

// zigzag folds a signed value into an unsigned one with small absolute
// values staying small — the standard varint-friendly encoding.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// decoder walks a byte slice with error-latching reads: every helper
// reports malformed input (truncation, overlong varints) through err
// instead of panicking, so the fuzz targets can hammer arbitrary bytes.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("tstore: truncated or overlong varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 { return unzigzag(d.uvarint()) }

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("tstore: truncated field at offset %d (want %d bytes, have %d)", d.off, n, len(d.b)-d.off)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// count reads an element count and sanity-bounds it against the bytes
// that remain, so corrupted counts cannot demand absurd allocations:
// every counted element costs at least one encoded byte.
func (d *decoder) count(what string) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)-d.off) {
		d.fail("tstore: %s count %d exceeds remaining payload (%d bytes)", what, v, len(d.b)-d.off)
		return 0
	}
	return int(v)
}

// valTag* select the value-column encoding: a chunk whose every Val is
// an exact small integer (queue lengths, window sizes, timeout counts —
// the common case) stores zigzag varints; anything else stores raw
// float64 bits.
const (
	valTagInt byte = 0
	valTagRaw byte = 1
)

// encodeChunk appends the columnar payload for events to buf and
// returns it along with the chunk's index entry. Events carry
// store-level location ids (the writer re-interns before staging).
func encodeChunk(buf []byte, events []obs.Event) ([]byte, ChunkInfo) {
	info := ChunkInfo{
		Count:  len(events),
		MinT:   events[0].T,
		MaxT:   events[0].T,
		ConnLo: events[0].Conn,
		ConnHi: events[0].Conn,
		LocLo:  uint16(events[0].Loc),
		LocHi:  uint16(events[0].Loc),
	}
	buf = binary.AppendUvarint(buf, uint64(len(events)))

	// Time column: zigzag deltas from the previous event (the first from
	// zero). Tracer streams are time-ordered, so deltas are small and
	// non-negative; zigzag keeps out-of-order offline ingests legal.
	prev := time.Duration(0)
	for i := range events {
		ev := &events[i]
		buf = binary.AppendUvarint(buf, zigzag(int64(ev.T-prev)))
		prev = ev.T
		if ev.T < info.MinT {
			info.MinT = ev.T
		}
		if ev.T > info.MaxT {
			info.MaxT = ev.T
		}
		info.TypeMask |= 1 << ev.Type
		if ev.Conn < info.ConnLo {
			info.ConnLo = ev.Conn
		}
		if ev.Conn > info.ConnHi {
			info.ConnHi = ev.Conn
		}
		if l := uint16(ev.Loc); l < info.LocLo {
			info.LocLo = l
		} else if l > info.LocHi {
			info.LocHi = l
		}
	}
	// Type and kind columns: one byte each (seven types, two kinds).
	for i := range events {
		buf = append(buf, byte(events[i].Type))
	}
	for i := range events {
		buf = append(buf, byte(events[i].Kind))
	}
	// Location and connection columns: per-chunk dictionary (the sorted
	// distinct values) followed by one dictionary code per event. A run
	// touches few distinct locations and connections per chunk, so codes
	// are almost always one byte.
	buf = appendDictU64(buf, events, func(ev *obs.Event) uint64 { return uint64(ev.Loc) })
	buf = appendDictU64(buf, events, func(ev *obs.Event) uint64 { return zigzag(int64(ev.Conn)) })
	// Seq, size, id columns.
	for i := range events {
		buf = binary.AppendUvarint(buf, zigzag(int64(events[i].Seq)))
	}
	for i := range events {
		buf = binary.AppendUvarint(buf, zigzag(int64(events[i].Size)))
	}
	for i := range events {
		buf = binary.AppendUvarint(buf, events[i].ID)
	}
	// Value column: varint when every value is an exact integer.
	allInt := true
	for i := range events {
		v := events[i].Val
		if v != math.Trunc(v) || math.Abs(v) > 1<<52 || math.Signbit(v) && v == 0 {
			allInt = false
			break
		}
	}
	if allInt {
		buf = append(buf, valTagInt)
		for i := range events {
			buf = binary.AppendUvarint(buf, zigzag(int64(events[i].Val)))
		}
	} else {
		buf = append(buf, valTagRaw)
		for i := range events {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(events[i].Val))
		}
	}
	return buf, info
}

// appendDictU64 writes one dictionary-encoded column: the sorted
// distinct mapped values, then one code per event.
func appendDictU64(buf []byte, events []obs.Event, key func(*obs.Event) uint64) []byte {
	// Distinct values, insertion-sorted: dictionaries are tiny (types of
	// locations and connections active within one chunk), so a linear
	// scan beats a map allocation.
	var dict []uint64
	for i := range events {
		v := key(&events[i])
		pos := len(dict)
		for pos > 0 && dict[pos-1] >= v {
			if dict[pos-1] == v {
				pos = -1
				break
			}
			pos--
		}
		if pos >= 0 {
			dict = append(dict, 0)
			copy(dict[pos+1:], dict[pos:])
			dict[pos] = v
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(dict)))
	for _, v := range dict {
		buf = binary.AppendUvarint(buf, v)
	}
	for i := range events {
		v := key(&events[i])
		lo, hi := 0, len(dict)
		for lo < hi {
			mid := (lo + hi) / 2
			if dict[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		buf = binary.AppendUvarint(buf, uint64(lo))
	}
	return buf
}

// decodeChunk parses one chunk payload into dst (reused across chunks;
// grown as needed) and returns the events. Every field is validated:
// malformed payloads error, never panic, and never allocate beyond the
// declared payload's plausible event count.
func decodeChunk(payload []byte, dst []obs.Event, nLocs int) ([]obs.Event, error) {
	d := &decoder{b: payload}
	n := d.count("event")
	if d.err != nil {
		return nil, d.err
	}
	if n == 0 {
		return nil, fmt.Errorf("tstore: empty chunk")
	}
	if cap(dst) < n {
		dst = make([]obs.Event, n)
	}
	dst = dst[:n]
	prev := int64(0)
	for i := range dst {
		prev += d.varint()
		dst[i].T = time.Duration(prev)
	}
	for i := range dst {
		b := d.bytes(1)
		if d.err != nil {
			return nil, d.err
		}
		if b[0] >= byte(obs.NumTypes) {
			return nil, fmt.Errorf("tstore: unknown event type %d in chunk", b[0])
		}
		dst[i].Type = obs.Type(b[0])
	}
	for i := range dst {
		b := d.bytes(1)
		if d.err != nil {
			return nil, d.err
		}
		dst[i].Kind = packet.Kind(b[0])
	}
	// Location dictionary + codes.
	locDict, err := readDict(d, "location")
	if err != nil {
		return nil, err
	}
	for i := range dst {
		c := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if c >= uint64(len(locDict)) {
			return nil, fmt.Errorf("tstore: location code %d out of range [0,%d)", c, len(locDict))
		}
		id := locDict[c]
		if id > math.MaxUint16 || (nLocs >= 0 && id >= uint64(nLocs)) {
			return nil, fmt.Errorf("tstore: location id %d out of range [0,%d)", id, nLocs)
		}
		dst[i].Loc = obs.Loc(id)
	}
	// Connection dictionary + codes.
	connDict, err := readDict(d, "connection")
	if err != nil {
		return nil, err
	}
	for i := range dst {
		c := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if c >= uint64(len(connDict)) {
			return nil, fmt.Errorf("tstore: connection code %d out of range [0,%d)", c, len(connDict))
		}
		dst[i].Conn = int32(unzigzag(connDict[c]))
	}
	for i := range dst {
		dst[i].Seq = int32(d.varint())
	}
	for i := range dst {
		dst[i].Size = int32(d.varint())
	}
	for i := range dst {
		dst[i].ID = d.uvarint()
	}
	tag := d.bytes(1)
	if d.err != nil {
		return nil, d.err
	}
	switch tag[0] {
	case valTagInt:
		for i := range dst {
			dst[i].Val = float64(d.varint())
		}
	case valTagRaw:
		for i := range dst {
			b := d.bytes(8)
			if d.err != nil {
				return nil, d.err
			}
			dst[i].Val = math.Float64frombits(binary.LittleEndian.Uint64(b))
		}
	default:
		return nil, fmt.Errorf("tstore: unknown value-column tag %d", tag[0])
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("tstore: %d trailing bytes after chunk payload", len(payload)-d.off)
	}
	return dst, nil
}

// readDict reads one dictionary prefix: a count, then the values.
func readDict(d *decoder, what string) ([]uint64, error) {
	n := d.count(what + " dictionary")
	if d.err != nil {
		return nil, d.err
	}
	if n == 0 {
		return nil, fmt.Errorf("tstore: empty %s dictionary", what)
	}
	dict := make([]uint64, n)
	for i := range dict {
		dict[i] = d.uvarint()
	}
	return dict, d.err
}

// crcFooter is the checksum the trailer carries over the footer bytes.
func crcFooter(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
