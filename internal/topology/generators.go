package topology

import (
	"math"
	"math/rand"
)

// BarabasiAlbert returns an n-switch scale-free graph grown by
// preferential attachment: switches join one at a time and link to m
// distinct earlier switches chosen with probability proportional to
// current degree (sampling uniformly from the endpoint multiset).
// Switches 0..m-1 seed the graph and switch m attaches to all of them,
// so the result is always connected. The construction is a pure
// function of (n, m, seed): the same arguments always yield the same
// Graph, link for link. n is clamped to at least 2 and m to [1, n-1].
// All link parameters inherit the scenario defaults; hosts follow the
// one-per-switch convention unless the caller places them explicitly
// (recommended beyond a few thousand switches — routes are computed
// toward every host).
func BarabasiAlbert(n, m int, seed int64) Graph {
	if n < 2 {
		n = 2
	}
	if m < 1 {
		m = 1
	}
	if m >= n {
		m = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := Graph{Switches: n, Links: make([]LinkSpec, 0, m*(n-m))}
	// ends is the endpoint multiset of all links so far; sampling it
	// uniformly is degree-proportional sampling.
	ends := make([]int32, 0, 2*m*(n-m))
	addLink := func(a, b int) {
		g.Links = append(g.Links, LinkSpec{A: a, B: b})
		ends = append(ends, int32(a), int32(b))
	}
	for b := 0; b < m; b++ {
		addLink(b, m)
	}
	picked := make(map[int]bool, m)
	targets := make([]int, 0, m)
	for v := m + 1; v < n; v++ {
		clear(picked)
		targets = targets[:0]
		// ends holds only switches < v (links are added after selection),
		// and more than m distinct ones, so the rejection loop terminates
		// and never picks v itself.
		for len(targets) < m {
			t := int(ends[rng.Intn(len(ends))])
			if picked[t] {
				continue
			}
			picked[t] = true
			targets = append(targets, t)
		}
		for _, t := range targets {
			addLink(t, v)
		}
	}
	return g
}

// Waxman model constants: link probability alpha·exp(−d/(beta·r)) for
// switch pairs within cutoff radius r, which is sized so a switch sees
// about waxmanDeg candidate neighbors. The resulting graphs average
// roughly degree 4 (2 from the connectivity backbone, ~2 probabilistic).
const (
	waxmanAlpha = 0.9
	waxmanBeta  = 0.5
	waxmanDeg   = 8.0
)

// Waxman returns an n-switch random geometric graph after Waxman:
// switches are placed uniformly in the unit square and pairs within a
// cutoff radius r are linked with probability alpha·exp(−d/(beta·r)),
// where d is their Euclidean distance. In addition, every switch links
// to its (approximate) nearest earlier switch, which guarantees the
// graph is connected without disturbing the RNG draw sequence. The
// cutoff keeps the expected candidate count per switch constant, so
// generation is O(n) with n switches and the average degree does not
// grow with n. Like BarabasiAlbert, the result is a pure function of
// (n, seed). n is clamped to at least 2.
func Waxman(n int, seed int64) Graph {
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	r := math.Sqrt(waxmanDeg / (math.Pi * float64(n)))

	// Grid buckets of side r: a switch's in-radius candidates all lie in
	// its 3×3 cell neighborhood.
	cells := int(1/r) + 1
	cellOf := func(i int) (int, int) {
		cx, cy := int(xs[i]/r), int(ys[i]/r)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	grid := make([][]int32, cells*cells)

	dist := func(i, j int) float64 {
		dx, dy := xs[i]-xs[j], ys[i]-ys[j]
		return math.Hypot(dx, dy)
	}

	g := Graph{Switches: n}
	var cand []int32
	for v := 0; v < n; v++ {
		cx, cy := cellOf(v)
		// In-radius earlier switches from the 3×3 neighborhood, in
		// ascending index order (cells are scanned in fixed order and each
		// bucket is insertion-ordered, so a sort is only needed to merge
		// buckets; indices within a bucket are already ascending).
		cand = cand[:0]
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
					continue
				}
				for _, u := range grid[ny*cells+nx] {
					if dist(v, int(u)) <= r {
						cand = append(cand, u)
					}
				}
			}
		}
		sortInt32(cand)

		// Connectivity backbone: link to the nearest earlier switch
		// (expanding the cell search until one is found; ties and the
		// approximation error of the ring cutoff resolve to the lowest
		// index). No RNG draws — the backbone is position-determined.
		backbone := -1
		if v > 0 {
			backbone = nearestEarlier(v, xs, ys, grid, cells, r)
			g.Links = append(g.Links, LinkSpec{A: backbone, B: v})
		}

		// Probabilistic Waxman links: exactly one draw per in-radius
		// candidate, in ascending index order, so the draw sequence is
		// independent of the backbone choice.
		for _, u := range cand {
			p := waxmanAlpha * math.Exp(-dist(v, int(u))/(waxmanBeta*r))
			if rng.Float64() < p && int(u) != backbone {
				g.Links = append(g.Links, LinkSpec{A: int(u), B: v})
			}
		}

		grid[cy*cells+cx] = append(grid[cy*cells+cx], int32(v))
	}
	return g
}

// nearestEarlier returns the switch u < v minimizing Euclidean distance
// to v among the cells within an expanding ring search (lowest index on
// ties). The first non-empty ring plus one more ring is scanned, which
// bounds the error of the grid approximation; any deterministic earlier
// switch keeps the graph connected.
func nearestEarlier(v int, xs, ys []float64, grid [][]int32, cells int, r float64) int {
	cx, cy := int(xs[v]/r), int(ys[v]/r)
	if cx >= cells {
		cx = cells - 1
	}
	if cy >= cells {
		cy = cells - 1
	}
	best, bestD := -1, math.Inf(1)
	scanRing := func(k int) {
		for dy := -k; dy <= k; dy++ {
			for dx := -k; dx <= k; dx++ {
				if dx > -k && dx < k && dy > -k && dy < k {
					continue // interior already scanned
				}
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
					continue
				}
				for _, u := range grid[ny*cells+nx] {
					dxu, dyu := xs[v]-xs[u], ys[v]-ys[u]
					if d := math.Hypot(dxu, dyu); d < bestD {
						best, bestD = int(u), d
					}
				}
			}
		}
	}
	for k := 0; k < 2*cells; k++ {
		scanRing(k)
		if best >= 0 {
			scanRing(k + 1)
			return best
		}
	}
	return best
}

// sortInt32 is an insertion sort: candidate lists are short (a 3×3 cell
// neighborhood) and mostly sorted (per-cell ascending).
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
