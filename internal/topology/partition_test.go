package topology

import (
	"reflect"
	"testing"
	"time"
)

// compileChain compiles Chain(n) with the paper-standard defaults.
func compileChain(t *testing.T, n int) *Compiled {
	t.Helper()
	c, err := Chain(n).Compile(def())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPartitionChainContiguous(t *testing.T) {
	c := compileChain(t, 8)
	for k := 1; k <= 8; k++ {
		p, err := c.Partition(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.K != k {
			t.Fatalf("k=%d: K = %d", k, p.K)
		}
		// Chains partition into contiguous blocks: region indices are
		// nondecreasing along the line and every region is hit.
		size := make([]int, k)
		for s, r := range p.Region {
			if r < 0 || r >= k {
				t.Fatalf("k=%d: switch %d in region %d", k, s, r)
			}
			if s > 0 && r < p.Region[s-1] {
				t.Fatalf("k=%d: regions not contiguous along the chain: %v", k, p.Region)
			}
			size[r]++
		}
		// Near-equal balance: sizes within one of each other.
		lo, hi := 8, 0
		for r, n := range size {
			if n == 0 {
				t.Fatalf("k=%d: region %d empty", k, r)
			}
			if n < lo {
				lo = n
			}
			if n > hi {
				hi = n
			}
		}
		if hi-lo > 1 {
			t.Fatalf("k=%d: unbalanced sizes %v", k, size)
		}
		// A K-way cut of a chain severs exactly K-1 links.
		if len(p.CutLinks) != k-1 {
			t.Fatalf("k=%d: cut links %v, want %d of them", k, p.CutLinks, k-1)
		}
		if k > 1 && p.MinCutDelay != 10*time.Millisecond {
			t.Fatalf("k=%d: MinCutDelay = %v", k, p.MinCutDelay)
		}
	}
}

func TestPartitionClampsK(t *testing.T) {
	c := compileChain(t, 3)
	p, err := c.Partition(100)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 3 {
		t.Fatalf("K = %d, want clamp to 3", p.K)
	}
	p, err = c.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 1 || len(p.CutLinks) != 0 || p.MinCutDelay != 0 {
		t.Fatalf("k=0 partition = %+v, want single region with no cuts", p)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	c := compileChain(t, 7)
	a, err := c.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("partition not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestPartitionMinCutDelay puts distinct delays on a chain's links and
// checks the lookahead bound is the smallest delay among the cut links
// only — not the global minimum.
func TestPartitionMinCutDelay(t *testing.T) {
	g := Chain(4)
	g.Links[0].Delay = 1 * time.Millisecond
	g.Links[1].Delay = 40 * time.Millisecond
	g.Links[2].Delay = 20 * time.Millisecond
	c, err := g.Compile(def())
	if err != nil {
		t.Fatal(err)
	}
	// Regions {0,1} and {2,3}: only link 1 is cut.
	p, err := c.PartitionWith([][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.CutLinks, []int{1}) || p.MinCutDelay != 40*time.Millisecond {
		t.Fatalf("cut=%v min=%v, want [1] 40ms", p.CutLinks, p.MinCutDelay)
	}
	// Three regions cut links 1 and 2: the bound drops to 20 ms.
	p, err = c.PartitionWith([][]int{{0, 1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.CutLinks, []int{1, 2}) || p.MinCutDelay != 20*time.Millisecond {
		t.Fatalf("cut=%v min=%v, want [1 2] 20ms", p.CutLinks, p.MinCutDelay)
	}
}

func TestPartitionWithValidation(t *testing.T) {
	c := compileChain(t, 4)
	for name, regions := range map[string][][]int{
		"empty-list":   {},
		"empty-region": {{0, 1, 2, 3}, {}},
		"duplicate":    {{0, 1}, {1, 2, 3}},
		"out-of-range": {{0, 1}, {2, 4}},
		"negative":     {{0, 1}, {2, -1}},
		"uncovered":    {{0, 1}, {2}},
	} {
		if _, err := c.PartitionWith(regions); err == nil {
			t.Errorf("%s: PartitionWith(%v) accepted", name, regions)
		}
	}
	// Region order is the caller's: a permuted but legal cover works and
	// keeps the stated region indices.
	p, err := c.PartitionWith([][]int{{2, 3}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 1, 0, 0}; !reflect.DeepEqual(p.Region, want) {
		t.Fatalf("Region = %v, want %v", p.Region, want)
	}
}

// TestPartitionZeroDelayCut pins the lookahead guard: cutting a
// zero-delay link must fail, while keeping it internal must not.
func TestPartitionZeroDelayCut(t *testing.T) {
	// A zero default delay compiles every link with no propagation delay.
	c, err := Chain(3).Compile(Defaults{Bandwidth: 50_000, Buffer: 20, DataSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PartitionWith([][]int{{0}, {1, 2}}); err == nil {
		t.Fatal("PartitionWith accepted a zero-delay cut")
	}
	if _, err := c.Partition(2); err == nil {
		t.Fatal("Partition accepted a zero-delay cut")
	}
	// With every switch in one region the zero-delay links are internal
	// and partitioning succeeds.
	if _, err := c.PartitionWith([][]int{{0, 1, 2}}); err != nil {
		t.Fatal(err)
	}
}
