// Package topology describes simulated networks as arbitrary graphs:
// switches joined by duplex links, hosts hanging off switches, and
// static shortest-path routes between every host pair. It generalizes
// the paper's dumbbell — which becomes the two-switch special case of
// the Chain generator — to multi-bottleneck configurations such as the
// parking lot, the workload of the congestion-wave and drop-tail
// synchronization studies that follow the paper.
//
// A Graph is purely declarative. Compile resolves per-link parameter
// defaults and computes per-switch forwarding tables with Dijkstra
// shortest paths; internal/core consumes the compiled form to wire
// hosts, switches, and ports. Everything is deterministic: link weights
// are integer durations and every tie is broken by the lowest switch or
// link index, so the same Graph always compiles to the same routes.
package topology

import (
	"fmt"
	"time"
)

// Unbounded marks a LinkSpec or HostSpec buffer as explicitly infinite.
// (Zero means "inherit the scenario default", which itself may be
// unbounded: the scenario convention is that a non-positive default
// buffer is infinite.)
const Unbounded = -1

// LinkSpec describes one duplex link between switches A and B. Each
// direction gets its own output port with its own buffer, like the
// paper's switch lines. Zero-valued parameters inherit the scenario
// trunk defaults at Compile time.
type LinkSpec struct {
	// A and B are the switch endpoints (A != B).
	A, B int
	// Bandwidth is the line rate in bits/s; 0 inherits the default.
	Bandwidth int64
	// Delay is the propagation delay; 0 inherits the default.
	Delay time.Duration
	// Buffer is the per-direction port buffer in packets; 0 inherits the
	// default, Unbounded (-1) is explicitly infinite.
	Buffer int
}

// HostSpec attaches one host to a switch. Hosts are the endpoints
// connection specs refer to by index.
type HostSpec struct {
	// Switch is the switch the host hangs off.
	Switch int
}

// RouteSpec overrides one computed route: at switch At, traffic for
// host Dst leaves toward neighbor switch Via instead of the
// shortest-path next hop. Overrides are applied after Dijkstra and can
// express policy routing (or, misused, loops — Compile only checks that
// Via is a neighbor of At).
type RouteSpec struct {
	// At is the switch whose forwarding table is overridden.
	At int
	// Dst is the destination host index.
	Dst int
	// Via is the neighbor switch the packet is forwarded toward.
	Via int
}

// Graph is a declarative network description. The zero value is not
// usable; fill the fields or use a generator (Dumbbell, Chain,
// ParkingLot).
type Graph struct {
	// Switches is the number of switches, indexed 0..Switches-1.
	Switches int
	// Links are the duplex switch-switch lines.
	Links []LinkSpec
	// Hosts lists the hosts; empty means one host per switch, host i at
	// switch i (the line topologies' convention).
	Hosts []HostSpec
	// Routes optionally override computed shortest-path routes.
	Routes []RouteSpec
}

// Chain returns n switches in a line — switch i linked to switch i+1 —
// with one host per switch. Chain(2) is the paper's dumbbell; longer
// chains are the multi-hop configurations of §5 and the congestion-wave
// experiments. All link parameters inherit the scenario defaults.
func Chain(n int) Graph {
	g := Graph{Switches: n}
	for i := 0; i+1 < n; i++ {
		g.Links = append(g.Links, LinkSpec{A: i, B: i + 1})
	}
	return g
}

// Dumbbell returns the paper's Figure-1 topology: two switches, one
// trunk, one host per side.
func Dumbbell() Graph { return Chain(2) }

// ParkingLot returns the classic parking-lot topology: hops bottleneck
// links in a row (hops+1 switches, one host per switch). The canonical
// workload runs one long connection across every hop (host 0 → host
// hops) against one single-hop cross connection per link (host i →
// host i+1), so every trunk is a bottleneck shared by exactly two
// connections.
func ParkingLot(hops int) Graph { return Chain(hops + 1) }

// Defaults carries the scenario-level parameters that zero-valued
// LinkSpec fields inherit, plus the data packet size used for the
// routing metric's transmission-delay term.
type Defaults struct {
	// Bandwidth is the default trunk rate in bits/s.
	Bandwidth int64
	// Delay is the default trunk propagation delay.
	Delay time.Duration
	// Buffer is the default per-port buffer; <= 0 means unbounded.
	Buffer int
	// DataSize is the data packet size in bytes for the routing metric.
	DataSize int
}

// Link is a compiled LinkSpec: every parameter resolved. Buffer <= 0
// means unbounded (the internal/link convention).
type Link struct {
	A, B      int
	Bandwidth int64
	Delay     time.Duration
	Buffer    int
}

// Hop identifies one output direction of one link: Dir 0 transmits
// A→B, Dir 1 transmits B→A.
type Hop struct {
	Link, Dir int
}

// local marks a forwarding-table entry whose destination host is
// attached to the switch itself.
var local = Hop{Link: -1}

// Compiled is a Graph with resolved link parameters and per-switch
// forwarding tables. Build it with Graph.Compile.
type Compiled struct {
	// Switches is the switch count.
	Switches int
	// Links are the resolved duplex links, in Graph order.
	Links []Link
	// Hosts are the attachment points, in Graph order (defaulted to one
	// per switch when the Graph listed none).
	Hosts []HostSpec

	// next[s*len(Hosts)+h] is the forwarding decision at switch s for
	// host h; the local sentinel means h is attached to s.
	next []Hop
	// dataSize is the Defaults.DataSize the graph was compiled with,
	// retained for the Weight metric.
	dataSize int
}

// NumHosts returns the number of hosts.
func (c *Compiled) NumHosts() int { return len(c.Hosts) }

// HostSwitch returns the switch host h is attached to.
func (c *Compiled) HostSwitch(h int) int { return c.Hosts[h].Switch }

// NextHop returns the forwarding decision at switch sw for traffic to
// host h. local reports whether the host is attached to sw itself (in
// which case the Hop is meaningless).
func (c *Compiled) NextHop(sw, h int) (hop Hop, isLocal bool) {
	hop = c.next[sw*len(c.Hosts)+h]
	return hop, hop.Link < 0
}

// PathHops returns the number of switch-switch links a packet from host
// src to host dst traverses, or -1 if the route loops (possible only
// with misused overrides).
func (c *Compiled) PathHops(src, dst int) int {
	sw := c.Hosts[src].Switch
	hops := 0
	for {
		hop, isLocal := c.NextHop(sw, dst)
		if isLocal {
			return hops
		}
		l := c.Links[hop.Link]
		if hop.Dir == 0 {
			sw = l.B
		} else {
			sw = l.A
		}
		hops++
		if hops > c.Switches {
			return -1
		}
	}
}

// Weight returns link li's routing metric: propagation delay plus the
// transmission delay of one data packet.
func (c *Compiled) Weight(li int) time.Duration {
	l := c.Links[li]
	bits := int64(c.dataSize) * 8
	return l.Delay + time.Duration(bits*int64(time.Second)/l.Bandwidth)
}

// Compile validates the graph, resolves per-link defaults, and computes
// shortest-path forwarding tables. The metric is propagation plus
// data-packet transmission delay per link; ties are broken
// deterministically by lowest switch index during the Dijkstra sweep
// and lowest link index when choosing among equal-cost next hops.
func (g Graph) Compile(def Defaults) (*Compiled, error) {
	if g.Switches < 1 {
		return nil, fmt.Errorf("topology: need at least 1 switch, have %d", g.Switches)
	}
	if def.DataSize <= 0 {
		def.DataSize = 500
	}
	c := &Compiled{Switches: g.Switches, dataSize: def.DataSize}

	// Resolve links.
	for i, ls := range g.Links {
		if ls.A < 0 || ls.A >= g.Switches || ls.B < 0 || ls.B >= g.Switches {
			return nil, fmt.Errorf("topology: link %d endpoints (%d,%d) out of range", i, ls.A, ls.B)
		}
		if ls.A == ls.B {
			return nil, fmt.Errorf("topology: link %d is a self-loop on switch %d", i, ls.A)
		}
		l := Link{A: ls.A, B: ls.B, Bandwidth: ls.Bandwidth, Delay: ls.Delay, Buffer: ls.Buffer}
		if l.Bandwidth == 0 {
			l.Bandwidth = def.Bandwidth
		}
		if l.Bandwidth <= 0 {
			return nil, fmt.Errorf("topology: link %d has no bandwidth (and no default)", i)
		}
		if l.Delay == 0 {
			l.Delay = def.Delay
		}
		switch {
		case l.Buffer == 0:
			l.Buffer = def.Buffer
		case l.Buffer < 0: // Unbounded
			l.Buffer = 0
		}
		c.Links = append(c.Links, l)
	}

	// Resolve hosts.
	c.Hosts = g.Hosts
	if len(c.Hosts) == 0 {
		c.Hosts = make([]HostSpec, g.Switches)
		for i := range c.Hosts {
			c.Hosts[i] = HostSpec{Switch: i}
		}
	}
	for h, hs := range c.Hosts {
		if hs.Switch < 0 || hs.Switch >= g.Switches {
			return nil, fmt.Errorf("topology: host %d switch %d out of range", h, hs.Switch)
		}
	}

	if err := c.computeRoutes(); err != nil {
		return nil, err
	}
	if err := c.applyOverrides(g.Routes); err != nil {
		return nil, err
	}
	return c, nil
}

// computeRoutes fills the forwarding tables with Dijkstra shortest
// paths toward every host's switch.
func (c *Compiled) computeRoutes() error {
	nh := len(c.Hosts)
	c.next = make([]Hop, c.Switches*nh)
	// Distance vectors toward each destination switch are shared by all
	// hosts on that switch.
	distTo := make(map[int][]time.Duration)
	for h, hs := range c.Hosts {
		dist, ok := distTo[hs.Switch]
		if !ok {
			dist = c.dijkstra(hs.Switch)
			distTo[hs.Switch] = dist
		}
		for s := 0; s < c.Switches; s++ {
			if s == hs.Switch {
				c.next[s*nh+h] = local
				continue
			}
			hop, found := c.bestHop(s, dist)
			if !found {
				return fmt.Errorf("topology: switch %d cannot reach host %d (switch %d): graph is disconnected", s, h, hs.Switch)
			}
			c.next[s*nh+h] = hop
		}
	}
	return nil
}

// dijkstra returns every switch's shortest distance to dst under the
// link Weight metric. Unreachable switches keep the maxDist sentinel.
// The O(n²) selection loop is deliberate: switch counts are small, and
// picking the lowest-index minimum each round makes the sweep order —
// and therefore the routes — deterministic.
func (c *Compiled) dijkstra(dst int) []time.Duration {
	const maxDist = time.Duration(1<<63 - 1)
	dist := make([]time.Duration, c.Switches)
	for i := range dist {
		dist[i] = maxDist
	}
	dist[dst] = 0
	done := make([]bool, c.Switches)
	for {
		u, best := -1, maxDist
		for s := 0; s < c.Switches; s++ {
			if !done[s] && dist[s] < best {
				u, best = s, dist[s]
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		for li, l := range c.Links {
			var v int
			switch u {
			case l.A:
				v = l.B
			case l.B:
				v = l.A
			default:
				continue
			}
			if d := best + c.Weight(li); d < dist[v] {
				dist[v] = d
			}
		}
	}
}

// bestHop picks the outgoing hop at switch s that minimizes link weight
// plus the neighbor's distance; among equal-cost hops the lowest link
// index wins.
func (c *Compiled) bestHop(s int, dist []time.Duration) (Hop, bool) {
	const maxDist = time.Duration(1<<63 - 1)
	best, bestCost := Hop{}, maxDist
	for li, l := range c.Links {
		var neighbor, dir int
		switch s {
		case l.A:
			neighbor, dir = l.B, 0
		case l.B:
			neighbor, dir = l.A, 1
		default:
			continue
		}
		if dist[neighbor] == maxDist {
			continue
		}
		if cost := c.Weight(li) + dist[neighbor]; cost < bestCost {
			best, bestCost = Hop{Link: li, Dir: dir}, cost
		}
	}
	return best, bestCost != maxDist
}

// applyOverrides rewrites forwarding entries per the RouteSpecs.
func (c *Compiled) applyOverrides(routes []RouteSpec) error {
	nh := len(c.Hosts)
	for _, r := range routes {
		if r.At < 0 || r.At >= c.Switches {
			return fmt.Errorf("topology: route override at unknown switch %d", r.At)
		}
		if r.Dst < 0 || r.Dst >= nh {
			return fmt.Errorf("topology: route override for unknown host %d", r.Dst)
		}
		if c.Hosts[r.Dst].Switch == r.At {
			return fmt.Errorf("topology: route override at switch %d for its own host %d", r.At, r.Dst)
		}
		hop, found := c.hopToward(r.At, r.Via)
		if !found {
			return fmt.Errorf("topology: route override via %d: not a neighbor of switch %d", r.Via, r.At)
		}
		c.next[r.At*nh+r.Dst] = hop
	}
	return nil
}

// hopToward returns the lowest-index link direction from switch s to
// neighbor via.
func (c *Compiled) hopToward(s, via int) (Hop, bool) {
	for li, l := range c.Links {
		if l.A == s && l.B == via {
			return Hop{Link: li, Dir: 0}, true
		}
		if l.B == s && l.A == via {
			return Hop{Link: li, Dir: 1}, true
		}
	}
	return Hop{}, false
}
