// Package topology describes simulated networks as arbitrary graphs:
// switches joined by duplex links, hosts hanging off switches, and
// static shortest-path routes between every host pair. It generalizes
// the paper's dumbbell — which becomes the two-switch special case of
// the Chain generator — to multi-bottleneck configurations such as the
// parking lot, the workload of the congestion-wave and drop-tail
// synchronization studies that follow the paper, and (via the seeded
// BarabasiAlbert and Waxman generators) to Internet-scale random
// graphs.
//
// A Graph is purely declarative. Compile resolves per-link parameter
// defaults and computes per-switch forwarding tables with Dijkstra
// shortest paths; internal/core consumes the compiled form to wire
// hosts, switches, and ports. Everything is deterministic: link weights
// are integer durations and every tie is broken by the lowest switch or
// link index, so the same Graph always compiles to the same routes —
// regardless of how many workers the route compiler fans out over.
//
// The compiled form is built for scale (DESIGN.md §13): adjacency is
// CSR (compressed sparse row), forwarding state is stored as sorted
// host-interval runs per switch (falling back to a dense array only
// below a small size threshold), and the per-destination Dijkstra
// columns are computed on a worker pool whose merge order is fixed by
// host index, never by scheduling.
package topology

import (
	"fmt"
	"time"
)

// Unbounded marks a LinkSpec or HostSpec buffer as explicitly infinite.
// (Zero means "inherit the scenario default", which itself may be
// unbounded: the scenario convention is that a non-positive default
// buffer is infinite.)
const Unbounded = -1

// LinkSpec describes one duplex link between switches A and B. Each
// direction gets its own output port with its own buffer, like the
// paper's switch lines. Zero-valued parameters inherit the scenario
// trunk defaults at Compile time.
type LinkSpec struct {
	// A and B are the switch endpoints (A != B).
	A, B int
	// Bandwidth is the line rate in bits/s; 0 inherits the default.
	Bandwidth int64
	// Delay is the propagation delay; 0 inherits the default.
	Delay time.Duration
	// Buffer is the per-direction port buffer in packets; 0 inherits the
	// default, Unbounded (-1) is explicitly infinite.
	Buffer int
}

// HostSpec attaches one host to a switch. Hosts are the endpoints
// connection specs refer to by index.
type HostSpec struct {
	// Switch is the switch the host hangs off.
	Switch int
}

// RouteSpec overrides one computed route: at switch At, traffic for
// host Dst leaves toward neighbor switch Via instead of the
// shortest-path next hop. Overrides are applied after Dijkstra and can
// express policy routing (or, misused, loops — Compile only checks that
// Via is a neighbor of At).
type RouteSpec struct {
	// At is the switch whose forwarding table is overridden.
	At int
	// Dst is the destination host index.
	Dst int
	// Via is the neighbor switch the packet is forwarded toward.
	Via int
}

// Graph is a declarative network description. The zero value is not
// usable; fill the fields or use a generator (Dumbbell, Chain,
// ParkingLot, BarabasiAlbert, Waxman).
type Graph struct {
	// Switches is the number of switches, indexed 0..Switches-1.
	Switches int
	// Links are the duplex switch-switch lines.
	Links []LinkSpec
	// Hosts lists the hosts; empty means one host per switch, host i at
	// switch i (the line topologies' convention). Large graphs should
	// place hosts sparsely — only at traffic endpoints — since routes
	// are computed toward every host's switch.
	Hosts []HostSpec
	// Routes optionally override computed shortest-path routes.
	Routes []RouteSpec
}

// Chain returns n switches in a line — switch i linked to switch i+1 —
// with one host per switch. Chain(2) is the paper's dumbbell; longer
// chains are the multi-hop configurations of §5 and the congestion-wave
// experiments. All link parameters inherit the scenario defaults.
func Chain(n int) Graph {
	g := Graph{Switches: n}
	for i := 0; i+1 < n; i++ {
		g.Links = append(g.Links, LinkSpec{A: i, B: i + 1})
	}
	return g
}

// Dumbbell returns the paper's Figure-1 topology: two switches, one
// trunk, one host per side.
func Dumbbell() Graph { return Chain(2) }

// ParkingLot returns the classic parking-lot topology: hops bottleneck
// links in a row (hops+1 switches, one host per switch). The canonical
// workload runs one long connection across every hop (host 0 → host
// hops) against one single-hop cross connection per link (host i →
// host i+1), so every trunk is a bottleneck shared by exactly two
// connections.
func ParkingLot(hops int) Graph { return Chain(hops + 1) }

// Defaults carries the scenario-level parameters that zero-valued
// LinkSpec fields inherit, plus the data packet size used for the
// routing metric's transmission-delay term.
type Defaults struct {
	// Bandwidth is the default trunk rate in bits/s.
	Bandwidth int64
	// Delay is the default trunk propagation delay.
	Delay time.Duration
	// Buffer is the default per-port buffer; <= 0 means unbounded.
	Buffer int
	// DataSize is the data packet size in bytes for the routing metric.
	DataSize int
	// Workers bounds the route-compilation worker pool: 0 uses
	// GOMAXPROCS, 1 compiles serially. The compiled routes are
	// identical for every value — the worker count only changes how
	// long Compile takes.
	Workers int
}

// Link is a compiled LinkSpec: every parameter resolved. Buffer <= 0
// means unbounded (the internal/link convention).
type Link struct {
	A, B      int
	Bandwidth int64
	Delay     time.Duration
	Buffer    int
}

// Hop identifies one output direction of one link: Dir 0 transmits
// A→B, Dir 1 transmits B→A.
type Hop struct {
	Link, Dir int
}

// local marks a forwarding-table entry whose destination host is
// attached to the switch itself.
var local = Hop{Link: -1}

// Packed hop encoding used by the CSR half-edges, the route compiler's
// columns, and the interval-run forwarding tables: link<<1 | dir, with
// negative sentinels for "destination is local" and "destination is
// unreachable".
const (
	hopLocal       = int32(-1)
	hopUnreachable = int32(-2)
)

func packHop(link, dir int) int32 { return int32(link)<<1 | int32(dir) }

func unpackHop(p int32) Hop { return Hop{Link: int(p >> 1), Dir: int(p & 1)} }

// Compiled is a Graph with resolved link parameters and per-switch
// forwarding tables. Build it with Graph.Compile.
//
// Internally the graph is CSR: the half-edges of switch s occupy
// adjSw/adjHop[adjOff[s]:adjOff[s+1]], sorted by ascending link index
// (the tie-break order every deterministic scan relies on). Forwarding
// state is either one dense Hop per (switch, host) cell — kept when
// Switches×Hosts is at most denseNextLimit, the exact historical
// representation — or per-switch sorted host-interval rows interned in
// a shared pool (DESIGN.md §16): rowOf[s] names switch s's row, whose
// intervals forward through adjacency slots relative to s. Switches
// with identical forwarding shape — every host-less switch between two
// clusters on a chain, every same-degree leaf of a BA graph — share one
// row, so resident route bytes track the number of *distinct* rows,
// not the switch count. The representations answer NextHop identically
// (pinned by the equivalence tests); only their memory differs.
type Compiled struct {
	// Switches is the switch count.
	Switches int
	// Links are the resolved duplex links, in Graph order. Links is the
	// as-compiled description: ApplyLinkChange updates the routing
	// metric (Weight) but never rewrites these specs.
	Links []Link
	// Hosts are the attachment points, in Graph order (defaulted to one
	// per switch when the Graph listed none).
	Hosts []HostSpec

	// CSR adjacency: half-edge i of switch s (adjOff[s] <= i <
	// adjOff[s+1]) leads to switch adjSw[i] via packed hop adjHop[i].
	adjOff []int32
	adjSw  []int32
	adjHop []int32

	// wt[li] is link li's routing metric (Weight): precomputed at
	// Compile, updated in place by ApplyLinkChange. A down link holds
	// the downWt sentinel and is skipped by every route scan.
	wt []time.Duration

	// next[s*len(Hosts)+h] is the forwarding decision at switch s for
	// host h (dense mode; nil in run mode).
	next []Hop
	// rowOf/pool are the interned row tables (run mode; nil in dense
	// mode): rowOf[s] is switch s's row id in the pool.
	rowOf []int32
	pool  *rowPool

	// hasOverrides records whether RouteSpec overrides were painted;
	// incremental maintenance refuses such graphs (the overrides are
	// not recoverable from the compiled state).
	hasOverrides bool

	// Lazy caches for ApplyLinkChange, shared by Clone (all immutable
	// once built): the distinct destination switches in host order with
	// one representative host each, and per-link bridge flags.
	destSws   []int32
	destFirst []int32
	bridge    []bool

	// dataSize is the Defaults.DataSize the graph was compiled with,
	// retained for the Weight metric.
	dataSize int
	// workers is the compile worker bound (Defaults.Workers).
	workers int
}

// NumHosts returns the number of hosts.
func (c *Compiled) NumHosts() int { return len(c.Hosts) }

// HostSwitch returns the switch host h is attached to.
func (c *Compiled) HostSwitch(h int) int { return c.Hosts[h].Switch }

// NextHop returns the forwarding decision at switch sw for traffic to
// host h. local reports whether the host is attached to sw itself (in
// which case the Hop is meaningless).
func (c *Compiled) NextHop(sw, h int) (hop Hop, isLocal bool) {
	if c.next != nil {
		hop = c.next[sw*len(c.Hosts)+h]
		return hop, hop.Link < 0
	}
	_ = c.Hosts[h] // bounds check: run lookup must not wander past the hosts
	ends := c.pool.ends[c.rowOf[sw]]
	// First interval whose end exceeds h; intervals cover every host, so
	// it exists.
	lo, hi := 0, len(ends)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ends[mid] > int32(h) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	sl := c.pool.slots[c.rowOf[sw]][lo]
	if sl < 0 {
		return local, true
	}
	return unpackHop(c.adjHop[c.adjOff[sw]+sl]), false
}

// ForEachHostRun calls fn for every maximal interval [h0,h1) of host
// indices that switch sw forwards the same way: via hop, or locally
// (isLocal true, hop meaningless). Intervals arrive in ascending host
// order and together cover every host exactly once. It is the bulk
// route-installation interface — internal/core paints one switch-table
// range per run instead of asking NextHop once per host.
func (c *Compiled) ForEachHostRun(sw int, fn func(h0, h1 int, hop Hop, isLocal bool)) {
	nh := len(c.Hosts)
	if c.next != nil {
		row := c.next[sw*nh : (sw+1)*nh]
		for h0 := 0; h0 < nh; {
			h1 := h0 + 1
			for h1 < nh && row[h1] == row[h0] {
				h1++
			}
			fn(h0, h1, row[h0], row[h0].Link < 0)
			h0 = h1
		}
		return
	}
	row := c.rowOf[sw]
	ends, slots := c.pool.ends[row], c.pool.slots[row]
	start := int32(0)
	for r := range ends {
		if sl := slots[r]; sl < 0 {
			fn(int(start), int(ends[r]), local, true)
		} else {
			fn(int(start), int(ends[r]), unpackHop(c.adjHop[c.adjOff[sw]+sl]), false)
		}
		start = ends[r]
	}
}

// RouteRuns returns the total number of forwarding intervals across all
// switches — the size of the compressed routing state (equal to
// Switches×Hosts in dense mode only in the worst case of no adjacent
// hosts sharing a next hop). It exists for capacity diagnostics
// (tahoe-sim -validate, benchmarks).
func (c *Compiled) RouteRuns() int {
	if c.next == nil {
		runs := 0
		for _, row := range c.rowOf {
			runs += len(c.pool.ends[row])
		}
		return runs
	}
	runs := 0
	for s := 0; s < c.Switches; s++ {
		c.ForEachHostRun(s, func(h0, h1 int, hop Hop, isLocal bool) { runs++ })
	}
	return runs
}

// DistinctRows returns the number of distinct forwarding rows after
// interning (run mode), or the switch count in dense mode. The ratio
// Switches/DistinctRows is the deduplication factor.
func (c *Compiled) DistinctRows() int {
	if c.next != nil {
		return c.Switches
	}
	return c.pool.rows()
}

// RouteBytes returns the resident bytes of the forwarding state: the
// dense cell array, or the per-switch row ids plus every live pool row
// (interval data and per-row bookkeeping). It is the quantity the
// benchmark trajectory tracks as "route bytes per switch".
func (c *Compiled) RouteBytes() int {
	if c.next != nil {
		return len(c.next) * 16
	}
	// Per live row: the two int32 payload slices plus slice headers,
	// refcount, and hash (~64 B of bookkeeping).
	const rowOverhead = 64
	b := len(c.rowOf) * 4
	for r := range c.pool.ends {
		if c.pool.refs[r] > 0 {
			b += len(c.pool.ends[r])*8 + rowOverhead
		}
	}
	return b
}

// Clone returns an independently mutable copy: ApplyLinkChange and
// RecomputeRoutes on the clone never disturb the original. Immutable
// state (adjacency, links, hosts, caches) is shared.
func (c *Compiled) Clone() *Compiled {
	d := *c
	d.wt = append([]time.Duration(nil), c.wt...)
	if c.next != nil {
		d.next = append([]Hop(nil), c.next...)
	}
	if c.rowOf != nil {
		d.rowOf = append([]int32(nil), c.rowOf...)
	}
	if c.pool != nil {
		d.pool = c.pool.clone()
	}
	return &d
}

// PathHops returns the number of switch-switch links a packet from host
// src to host dst traverses, or -1 if the route loops (possible only
// with misused overrides).
func (c *Compiled) PathHops(src, dst int) int {
	sw := c.Hosts[src].Switch
	hops := 0
	for {
		hop, isLocal := c.NextHop(sw, dst)
		if isLocal {
			return hops
		}
		l := c.Links[hop.Link]
		if hop.Dir == 0 {
			sw = l.B
		} else {
			sw = l.A
		}
		hops++
		if hops > c.Switches {
			return -1
		}
	}
}

// Weight returns link li's routing metric: propagation delay plus the
// transmission delay of one data packet.
func (c *Compiled) Weight(li int) time.Duration { return c.wt[li] }

// Compile validates the graph, resolves per-link defaults, and computes
// shortest-path forwarding tables. The metric is propagation plus
// data-packet transmission delay per link; ties are broken
// deterministically by the lowest link index when choosing among
// equal-cost next hops (Dijkstra's final distances are themselves
// visit-order independent, so no sweep-order tie-break is needed).
func (g Graph) Compile(def Defaults) (*Compiled, error) {
	if g.Switches < 1 {
		return nil, fmt.Errorf("topology: need at least 1 switch, have %d", g.Switches)
	}
	if def.DataSize <= 0 {
		def.DataSize = 500
	}
	c := &Compiled{Switches: g.Switches, dataSize: def.DataSize, workers: def.Workers}

	// Resolve links.
	c.Links = make([]Link, 0, len(g.Links))
	for i, ls := range g.Links {
		if ls.A < 0 || ls.A >= g.Switches || ls.B < 0 || ls.B >= g.Switches {
			return nil, fmt.Errorf("topology: link %d endpoints (%d,%d) out of range", i, ls.A, ls.B)
		}
		if ls.A == ls.B {
			return nil, fmt.Errorf("topology: link %d is a self-loop on switch %d", i, ls.A)
		}
		l := Link{A: ls.A, B: ls.B, Bandwidth: ls.Bandwidth, Delay: ls.Delay, Buffer: ls.Buffer}
		if l.Bandwidth == 0 {
			l.Bandwidth = def.Bandwidth
		}
		if l.Bandwidth <= 0 {
			return nil, fmt.Errorf("topology: link %d has no bandwidth (and no default)", i)
		}
		if l.Delay == 0 {
			l.Delay = def.Delay
		}
		switch {
		case l.Buffer == 0:
			l.Buffer = def.Buffer
		case l.Buffer < 0: // Unbounded
			l.Buffer = 0
		}
		c.Links = append(c.Links, l)
	}

	// Resolve hosts.
	c.Hosts = g.Hosts
	if len(c.Hosts) == 0 {
		c.Hosts = make([]HostSpec, g.Switches)
		for i := range c.Hosts {
			c.Hosts[i] = HostSpec{Switch: i}
		}
	}
	for h, hs := range c.Hosts {
		if hs.Switch < 0 || hs.Switch >= g.Switches {
			return nil, fmt.Errorf("topology: host %d switch %d out of range", h, hs.Switch)
		}
	}

	c.buildCSR()
	c.wt = make([]time.Duration, len(c.Links))
	for li, l := range c.Links {
		bits := int64(c.dataSize) * 8
		c.wt[li] = l.Delay + time.Duration(bits*int64(time.Second)/l.Bandwidth)
	}

	rb, err := c.computeRoutes()
	if err != nil {
		return nil, err
	}
	if err := c.applyOverrides(g.Routes, rb); err != nil {
		return nil, err
	}
	c.hasOverrides = len(g.Routes) > 0
	if rb != nil {
		rb.freeze(c)
	}
	return c, nil
}

// buildCSR fills the half-edge arrays. Links are visited in index
// order, so each switch's half-edges come out sorted by ascending link
// index — the order every deterministic tie-break scan depends on.
func (c *Compiled) buildCSR() {
	c.adjOff = make([]int32, c.Switches+1)
	for _, l := range c.Links {
		c.adjOff[l.A+1]++
		c.adjOff[l.B+1]++
	}
	for i := 0; i < c.Switches; i++ {
		c.adjOff[i+1] += c.adjOff[i]
	}
	c.adjSw = make([]int32, 2*len(c.Links))
	c.adjHop = make([]int32, 2*len(c.Links))
	cur := make([]int32, c.Switches)
	copy(cur, c.adjOff[:c.Switches])
	for li, l := range c.Links {
		i := cur[l.A]
		cur[l.A]++
		c.adjSw[i] = int32(l.B)
		c.adjHop[i] = packHop(li, 0)
		i = cur[l.B]
		cur[l.B]++
		c.adjSw[i] = int32(l.A)
		c.adjHop[i] = packHop(li, 1)
	}
}

// applyOverrides rewrites forwarding entries per the RouteSpecs: into
// the dense table directly, or — in run mode — into the route builder's
// accumulator before it freezes.
func (c *Compiled) applyOverrides(routes []RouteSpec, rb *routeBuilder) error {
	nh := len(c.Hosts)
	for _, r := range routes {
		if r.At < 0 || r.At >= c.Switches {
			return fmt.Errorf("topology: route override at unknown switch %d", r.At)
		}
		if r.Dst < 0 || r.Dst >= nh {
			return fmt.Errorf("topology: route override for unknown host %d", r.Dst)
		}
		if c.Hosts[r.Dst].Switch == r.At {
			return fmt.Errorf("topology: route override at switch %d for its own host %d", r.At, r.Dst)
		}
		hop, found := c.hopToward(r.At, r.Via)
		if !found {
			return fmt.Errorf("topology: route override via %d: not a neighbor of switch %d", r.Via, r.At)
		}
		if rb != nil {
			rb.paint(r.At, r.Dst, packHop(hop.Link, hop.Dir))
		} else {
			c.next[r.At*nh+r.Dst] = hop
		}
	}
	return nil
}

// hopToward returns the lowest-index link direction from switch s to
// neighbor via.
func (c *Compiled) hopToward(s, via int) (Hop, bool) {
	for i := c.adjOff[s]; i < c.adjOff[s+1]; i++ {
		if int(c.adjSw[i]) == via {
			return unpackHop(c.adjHop[i]), true
		}
	}
	return Hop{}, false
}

// slotOf maps a packed hop usable at switch s to its adjacency slot
// (hopLocal maps to slotLocal). The half-edges of a switch are sorted
// by ascending link index, and both directions of one link never meet
// at a switch, so adjHop is strictly ascending per switch — binary
// search applies.
func (c *Compiled) slotOf(s int, p int32) int32 {
	if p < 0 {
		return slotLocal
	}
	lo, hi := c.adjOff[s], c.adjOff[s+1]
	for lo < hi {
		mid := (lo + hi) >> 1
		switch {
		case c.adjHop[mid] < p:
			lo = mid + 1
		case c.adjHop[mid] > p:
			hi = mid
		default:
			return mid - c.adjOff[s]
		}
	}
	panic("topology: hop not adjacent to switch")
}

// packedAt returns the packed forwarding value at (sw, h): a packed
// hop, or hopLocal when host h is attached to sw.
func (c *Compiled) packedAt(sw, h int) int32 {
	if c.next != nil {
		hop := c.next[sw*len(c.Hosts)+h]
		if hop.Link < 0 {
			return hopLocal
		}
		return packHop(hop.Link, hop.Dir)
	}
	ends := c.pool.ends[c.rowOf[sw]]
	lo, hi := 0, len(ends)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ends[mid] > int32(h) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	sl := c.pool.slots[c.rowOf[sw]][lo]
	if sl < 0 {
		return hopLocal
	}
	return c.adjHop[c.adjOff[sw]+sl]
}
