package topology

import (
	"reflect"
	"testing"
	"time"
)

func genDefaults() Defaults {
	return Defaults{Bandwidth: 50_000, Delay: 50 * time.Millisecond, Buffer: 20, DataSize: 500}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(300, 2, 11)
	b := BarabasiAlbert(300, 2, 11)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (n,m,seed) produced different graphs")
	}
	c := BarabasiAlbert(300, 2, 12)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	n, m := 500, 3
	g := BarabasiAlbert(n, m, 5)
	if g.Switches != n {
		t.Fatalf("switches = %d", g.Switches)
	}
	// m seed links plus m per joining switch.
	if want := m + (n-m-1)*m; len(g.Links) != want {
		t.Fatalf("links = %d, want %d", len(g.Links), want)
	}
	deg := make([]int, n)
	for _, l := range g.Links {
		if l.A == l.B {
			t.Fatalf("self-loop on %d", l.A)
		}
		deg[l.A]++
		deg[l.B]++
	}
	// Scale-free signature: some hub has far more than the mean degree.
	mean := 2 * len(g.Links) / n
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	if max < 4*mean {
		t.Fatalf("max degree %d < 4×mean %d: not scale-free-ish", max, mean)
	}
	// Connected: compiling computes full routes or errors.
	if _, err := g.Compile(genDefaults()); err != nil {
		t.Fatalf("BA graph disconnected: %v", err)
	}
}

func TestBarabasiAlbertClamps(t *testing.T) {
	g := BarabasiAlbert(1, 5, 0) // n<2 and m>=n both clamp
	if g.Switches != 2 || len(g.Links) != 1 {
		t.Fatalf("clamped graph: %+v", g)
	}
	if _, err := g.Compile(genDefaults()); err != nil {
		t.Fatalf("compile: %v", err)
	}
}

func TestWaxmanDeterministic(t *testing.T) {
	a := Waxman(400, 21)
	b := Waxman(400, 21)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (n,seed) produced different graphs")
	}
	c := Waxman(400, 22)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestWaxmanShape(t *testing.T) {
	n := 600
	g := Waxman(n, 9)
	if g.Switches != n {
		t.Fatalf("switches = %d", g.Switches)
	}
	if len(g.Links) < n-1 {
		t.Fatalf("links = %d < n-1: backbone missing", len(g.Links))
	}
	// The geometric cutoff keeps the graph sparse: average degree must
	// stay small (the generator targets ~4) rather than growing with n.
	if avg := 2 * float64(len(g.Links)) / float64(n); avg > 10 {
		t.Fatalf("average degree %.1f: cutoff not limiting edges", avg)
	}
	seen := make(map[[2]int]bool)
	for _, l := range g.Links {
		if l.A == l.B {
			t.Fatalf("self-loop on %d", l.A)
		}
		k := [2]int{l.A, l.B}
		if l.A > l.B {
			k = [2]int{l.B, l.A}
		}
		if seen[k] {
			t.Fatalf("duplicate link %v", k)
		}
		seen[k] = true
	}
	if _, err := g.Compile(genDefaults()); err != nil {
		t.Fatalf("Waxman graph disconnected: %v", err)
	}
}

func TestWaxmanConnectedAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		if _, err := Waxman(150, seed).Compile(genDefaults()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestGeneratorPartition covers Partition on random graphs: regions
// cover every switch, sizes stay within one of each other, CutLinks are
// exactly the region-crossing links in ascending order, and MinCutDelay
// is their minimum delay.
func TestGeneratorPartition(t *testing.T) {
	graphs := map[string]Graph{
		"ba":     BarabasiAlbert(256, 2, 3),
		"waxman": Waxman(256, 3),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			c, err := g.Compile(genDefaults())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, k := range []int{2, 3, 8} {
				p, err := c.Partition(k)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if p.K != k {
					t.Fatalf("k=%d: got K=%d", k, p.K)
				}
				size := make([]int, k)
				for s, r := range p.Region {
					if r < 0 || r >= k {
						t.Fatalf("switch %d region %d out of range", s, r)
					}
					size[r]++
				}
				lo, hi := c.Switches, 0
				total := 0
				for _, n := range size {
					if n == 0 {
						t.Fatalf("k=%d: empty region", k)
					}
					if n < lo {
						lo = n
					}
					if n > hi {
						hi = n
					}
					total += n
				}
				if total != c.Switches {
					t.Fatalf("k=%d: regions cover %d of %d switches", k, total, c.Switches)
				}
				if hi-lo > 1 {
					t.Fatalf("k=%d: region sizes %v spread more than 1", k, size)
				}
				// CutLinks = exactly the crossing links, ascending; MinCutDelay
				// = their minimum.
				var wantCut []int
				minDelay := time.Duration(0)
				for li, l := range c.Links {
					if p.Region[l.A] == p.Region[l.B] {
						continue
					}
					wantCut = append(wantCut, li)
					if minDelay == 0 || l.Delay < minDelay {
						minDelay = l.Delay
					}
				}
				if !reflect.DeepEqual(p.CutLinks, wantCut) {
					t.Fatalf("k=%d: CutLinks = %v, want %v", k, p.CutLinks, wantCut)
				}
				if p.MinCutDelay != minDelay {
					t.Fatalf("k=%d: MinCutDelay = %v, want %v", k, p.MinCutDelay, minDelay)
				}
			}
		})
	}
}
