package topology

import (
	"fmt"
	"testing"
	"time"
)

// refRoutes is the pre-CSR route computation kept verbatim as a test
// reference: an O(S²) lowest-index-selection Dijkstra per distinct host
// switch and a full-link-scan bestHop, writing a dense next-hop array.
// The production compiler — heap Dijkstra, CSR scans, interval runs,
// any worker count — must answer NextHop byte-identically to this.
func refRoutes(c *Compiled) ([]Hop, error) {
	nh := len(c.Hosts)
	next := make([]Hop, c.Switches*nh)
	distTo := make(map[int][]time.Duration)
	for h, hs := range c.Hosts {
		dist, ok := distTo[hs.Switch]
		if !ok {
			dist = refDijkstra(c, hs.Switch)
			distTo[hs.Switch] = dist
		}
		for s := 0; s < c.Switches; s++ {
			if s == hs.Switch {
				next[s*nh+h] = local
				continue
			}
			hop, found := refBestHop(c, s, dist)
			if !found {
				return nil, fmt.Errorf("switch %d cannot reach host %d", s, h)
			}
			next[s*nh+h] = hop
		}
	}
	return next, nil
}

func refDijkstra(c *Compiled, dst int) []time.Duration {
	dist := make([]time.Duration, c.Switches)
	for i := range dist {
		dist[i] = maxDist
	}
	dist[dst] = 0
	done := make([]bool, c.Switches)
	for {
		u, best := -1, maxDist
		for s := 0; s < c.Switches; s++ {
			if !done[s] && dist[s] < best {
				u, best = s, dist[s]
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		for li, l := range c.Links {
			var v int
			switch u {
			case l.A:
				v = l.B
			case l.B:
				v = l.A
			default:
				continue
			}
			if d := best + c.Weight(li); d < dist[v] {
				dist[v] = d
			}
		}
	}
}

func refBestHop(c *Compiled, s int, dist []time.Duration) (Hop, bool) {
	best, bestCost := Hop{}, maxDist
	for li, l := range c.Links {
		var neighbor, dir int
		switch s {
		case l.A:
			neighbor, dir = l.B, 0
		case l.B:
			neighbor, dir = l.A, 1
		default:
			continue
		}
		if dist[neighbor] == maxDist {
			continue
		}
		if cost := c.Weight(li) + dist[neighbor]; cost < bestCost {
			best, bestCost = Hop{Link: li, Dir: dir}, cost
		}
	}
	return best, bestCost != maxDist
}

// equivalenceGraphs is the pinned corpus: every shipped generator,
// multi-host and override shapes, and seeded random graphs.
func equivalenceGraphs() map[string]Graph {
	uneven := Chain(6)
	uneven.Links[2].Delay = 300 * time.Millisecond // push routes off the obvious line metric
	uneven.Links[4].Bandwidth = 1_000_000
	multi := Chain(3)
	multi.Hosts = []HostSpec{{0}, {0}, {1}, {2}, {2}, {2}}
	override := Graph{
		Switches: 3,
		Links:    []LinkSpec{{A: 0, B: 1}, {A: 1, B: 2}, {A: 0, B: 2, Delay: 500 * time.Millisecond}},
		Routes:   []RouteSpec{{At: 0, Dst: 2, Via: 2}},
	}
	mesh := Graph{Switches: 5}
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			mesh.Links = append(mesh.Links, LinkSpec{A: a, B: b})
		}
	}
	return map[string]Graph{
		"dumbbell":    Dumbbell(),
		"chain-16":    Chain(16),
		"parking-lot": ParkingLot(4),
		"uneven":      uneven,
		"multi-host":  multi,
		"override":    override,
		"mesh-5":      mesh,
		"ba-64":       BarabasiAlbert(64, 2, 7),
		"ba-200":      BarabasiAlbert(200, 3, 42),
		"waxman-64":   Waxman(64, 7),
		"waxman-300":  Waxman(300, 99),
	}
}

func eqDefaults() Defaults {
	return Defaults{Bandwidth: 50_000, Delay: 50 * time.Millisecond, Buffer: 20, DataSize: 500}
}

// compileWithLimits compiles g with the dense threshold and batch
// budget pinned to specific values, restoring the package defaults.
func compileWithLimits(t *testing.T, g Graph, def Defaults, denseLimit, batchCells int) *Compiled {
	t.Helper()
	oldDense, oldBatch := denseNextLimit, colBatchCells
	denseNextLimit, colBatchCells = denseLimit, batchCells
	defer func() { denseNextLimit, colBatchCells = oldDense, oldBatch }()
	c, err := g.Compile(def)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

// TestNextHopEquivalence pins the production compiler against the dense
// reference, exhaustively over every (switch, host) pair, for each
// corpus graph in four configurations: dense representation, interval
// runs, interval runs compiled serially, and interval runs compiled in
// many tiny column batches.
func TestNextHopEquivalence(t *testing.T) {
	for name, g := range equivalenceGraphs() {
		t.Run(name, func(t *testing.T) {
			def := eqDefaults()
			variants := map[string]*Compiled{
				"dense":        compileWithLimits(t, g, def, 1<<30, colBatchCells),
				"runs":         compileWithLimits(t, g, def, 0, colBatchCells),
				"runs-serial":  compileWithLimits(t, g, Defaults{Bandwidth: def.Bandwidth, Delay: def.Delay, Buffer: def.Buffer, DataSize: def.DataSize, Workers: 1}, 0, colBatchCells),
				"runs-batched": compileWithLimits(t, g, def, 0, 1),
			}
			dense := variants["dense"]
			if dense.next == nil {
				t.Fatalf("dense variant not dense")
			}
			ref, err := refRoutes(dense)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			// The reference does not model overrides; apply them the
			// historical way.
			nh := dense.NumHosts()
			for _, r := range g.Routes {
				hop, ok := dense.hopToward(r.At, r.Via)
				if !ok {
					t.Fatalf("override via %d not a neighbor", r.Via)
				}
				ref[r.At*nh+r.Dst] = hop
			}
			for vn, c := range variants {
				if vn != "dense" && c.next != nil {
					t.Fatalf("%s: expected interval runs, got dense", vn)
				}
				for s := 0; s < c.Switches; s++ {
					for h := 0; h < nh; h++ {
						want := ref[s*nh+h]
						got, isLocal := c.NextHop(s, h)
						if wantLocal := want.Link < 0; isLocal != wantLocal {
							t.Fatalf("%s: NextHop(%d,%d) local=%v want %v", vn, s, h, isLocal, wantLocal)
						}
						if want.Link >= 0 && got != want {
							t.Fatalf("%s: NextHop(%d,%d) = %+v want %+v", vn, s, h, got, want)
						}
					}
				}
			}
		})
	}
}

// TestForEachHostRunCoversHosts checks the bulk-install iterator in
// both representations: intervals are ascending, disjoint, cover every
// host exactly once, and agree with NextHop.
func TestForEachHostRunCoversHosts(t *testing.T) {
	for name, g := range equivalenceGraphs() {
		for _, mode := range []struct {
			name  string
			limit int
		}{{"dense", 1 << 30}, {"runs", 0}} {
			t.Run(name+"/"+mode.name, func(t *testing.T) {
				c := compileWithLimits(t, g, eqDefaults(), mode.limit, colBatchCells)
				nh := c.NumHosts()
				for s := 0; s < c.Switches; s++ {
					next := 0
					c.ForEachHostRun(s, func(h0, h1 int, hop Hop, isLocal bool) {
						if h0 != next || h1 <= h0 {
							t.Fatalf("switch %d: run [%d,%d) after %d", s, h0, h1, next)
						}
						for h := h0; h < h1; h++ {
							got, gotLocal := c.NextHop(s, h)
							if gotLocal != isLocal || (!isLocal && got != hop) {
								t.Fatalf("switch %d host %d: run says (%+v,%v), NextHop says (%+v,%v)",
									s, h, hop, isLocal, got, gotLocal)
							}
						}
						next = h1
					})
					if next != nh {
						t.Fatalf("switch %d: runs cover [0,%d), want [0,%d)", s, next, nh)
					}
				}
			})
		}
	}
}

// TestParallelCompileDeterminism compiles each corpus graph with
// several worker counts and requires identical forwarding state.
func TestParallelCompileDeterminism(t *testing.T) {
	for name, g := range equivalenceGraphs() {
		t.Run(name, func(t *testing.T) {
			def := eqDefaults()
			def.Workers = 1
			base := compileWithLimits(t, g, def, 0, colBatchCells)
			for _, w := range []int{2, 3, 8} {
				def.Workers = w
				c := compileWithLimits(t, g, def, 0, colBatchCells)
				// Byte identity: row ids per switch and row contents must
				// match exactly — interning is serial in switch order, so
				// even the pool layout is worker-independent.
				for s := 0; s < c.Switches; s++ {
					if c.rowOf[s] != base.rowOf[s] {
						t.Fatalf("workers=%d: switch %d row id %d, serial %d", w, s, c.rowOf[s], base.rowOf[s])
					}
				}
				if len(c.pool.ends) != len(base.pool.ends) {
					t.Fatalf("workers=%d: %d pool rows, serial %d", w, len(c.pool.ends), len(base.pool.ends))
				}
				for r := range c.pool.ends {
					for i := range c.pool.ends[r] {
						if c.pool.ends[r][i] != base.pool.ends[r][i] || c.pool.slots[r][i] != base.pool.slots[r][i] {
							t.Fatalf("workers=%d: pool row %d entry %d differs", w, r, i)
						}
					}
				}
			}
		})
	}
}

// TestRunModeDisconnected pins the disconnected-graph error (message
// and indices) in run mode against the historical dense behavior.
func TestRunModeDisconnected(t *testing.T) {
	g := Graph{Switches: 4, Links: []LinkSpec{{A: 0, B: 1}, {A: 2, B: 3}}}
	oldDense := denseNextLimit
	denseNextLimit = 0
	defer func() { denseNextLimit = oldDense }()
	_, err := g.Compile(eqDefaults())
	if err == nil {
		t.Fatal("disconnected graph compiled")
	}
	want := "topology: switch 2 cannot reach host 0 (switch 0): graph is disconnected"
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
}

// TestRouteRuns sanity-checks the compressed-size diagnostic: a chain's
// forwarding state is three intervals per interior switch (left span,
// local host, right span) regardless of length.
func TestRouteRuns(t *testing.T) {
	c := compileWithLimits(t, Chain(64), eqDefaults(), 0, colBatchCells)
	if c.next != nil {
		t.Fatal("expected run mode")
	}
	// Ends have 2 runs, interior switches 3.
	if want := 2*2 + 62*3; c.RouteRuns() != want {
		t.Fatalf("RouteRuns = %d, want %d", c.RouteRuns(), want)
	}
	dense := compileWithLimits(t, Chain(64), eqDefaults(), 1<<30, colBatchCells)
	if dense.RouteRuns() != c.RouteRuns() {
		t.Fatalf("dense RouteRuns = %d, runs %d", dense.RouteRuns(), c.RouteRuns())
	}
}
