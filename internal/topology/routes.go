package topology

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// denseNextLimit is the forwarding-table cell count (Switches × Hosts)
// at or below which Compile keeps the historical dense next-hop array.
// Small graphs — the paper's dumbbell, every shipped scenario — stay on
// the direct-index representation; larger ones switch to interval runs.
// A variable so the equivalence tests can force either representation.
var denseNextLimit = 1 << 14

// colBatchCells bounds the transient memory of one route-compilation
// batch: the distinct-destination Dijkstra columns held live at once
// never exceed about this many int32 cells (32 MiB at the default). A
// variable so tests can force multi-batch compiles on small graphs.
var colBatchCells = 1 << 23

// routeBuilder accumulates per-switch forwarding runs across host
// batches. It exists only between computeRoutes and freeze; dense-mode
// compiles never create one.
type routeBuilder struct {
	// runs[s] is switch s's interval list so far: entry {end, hop}
	// covers hosts [previous end, end).
	runs [][]runEntry
}

type runEntry struct {
	end int32
	hop int32
}

// paint overrides host h's hop at switch s, splitting the covering run.
func (rb *routeBuilder) paint(s, h int, hop int32) {
	rs := rb.runs[s]
	start := int32(0)
	for i := range rs {
		if rs[i].end <= int32(h) {
			start = rs[i].end
			continue
		}
		// rs[i] covers h: split into [start,h) old, [h,h+1) new, [h+1,end) old.
		if rs[i].hop == hop {
			return
		}
		repl := make([]runEntry, 0, 3)
		if int32(h) > start {
			repl = append(repl, runEntry{int32(h), rs[i].hop})
		}
		repl = append(repl, runEntry{int32(h) + 1, hop})
		if rs[i].end > int32(h)+1 {
			repl = append(repl, runEntry{rs[i].end, rs[i].hop})
		}
		rb.runs[s] = append(rs[:i], append(repl, rs[i+1:]...)...)
		return
	}
}

// freeze interns the accumulated runs into the Compiled's row pool and
// releases the accumulator. Hops are converted from packed global link
// directions to per-switch adjacency slots on the way in — the switch-
// relative form under which identical forwarding shapes deduplicate.
// The loop is serial in switch order, so row ids are deterministic
// regardless of how many workers computed the columns.
func (rb *routeBuilder) freeze(c *Compiled) {
	c.pool = newRowPool()
	c.rowOf = make([]int32, c.Switches)
	var ends, slots []int32
	for s, rs := range rb.runs {
		ends, slots = ends[:0], slots[:0]
		for _, r := range rs {
			ends = append(ends, r.end)
			slots = append(slots, c.slotOf(s, r.hop))
		}
		c.rowOf[s] = c.pool.intern(ends, slots)
	}
	rb.runs = nil
}

// computeRoutes fills the forwarding state with Dijkstra shortest paths
// toward every host's switch. Work is batched over contiguous host
// ranges: each batch computes one packed next-hop column per distinct
// destination switch on a worker pool, then merges the columns — in
// host order, over disjoint switch ranges — into the dense table or the
// run accumulator. Neither step's output depends on worker scheduling,
// so the routes are identical for every worker count.
//
// The returned builder is non-nil exactly in run mode; the caller
// applies overrides and then freezes it.
func (c *Compiled) computeRoutes() (*routeBuilder, error) {
	nh := len(c.Hosts)
	nsw := c.Switches
	workers := c.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	dense := nsw*nh <= denseNextLimit
	var rb *routeBuilder
	if dense {
		c.next = make([]Hop, nsw*nh)
	} else {
		rb = &routeBuilder{runs: make([][]runEntry, nsw)}
	}

	// Batch size: how many distinct destination columns fit the
	// transient budget (always at least one). A batch can never hold
	// more columns than there are distinct destination switches — not
	// just fewer than the switch or host count — so cap the budget by
	// the actual column count too: a graph whose hosts cluster on a
	// handful of switches stages a handful of columns, regardless of
	// how large the transient budget quotient is. (Follow-up to the
	// map-hint fix: the hint below and the column arena both scale
	// with this cap.)
	distinct := 0
	{
		seen := make([]bool, nsw)
		for _, hs := range c.Hosts {
			if !seen[hs.Switch] {
				seen[hs.Switch] = true
				distinct++
			}
		}
	}
	maxCols := colBatchCells / nsw
	if maxCols < 1 {
		maxCols = 1
	}
	if maxCols > distinct {
		maxCols = distinct
	}

	var (
		cols    [][]int32 // column arena, reused across batches
		colBad  []int32   // lowest unreachable switch per column, -1 if none
		scratch = sync.Pool{New: func() any { return newSSSP(nsw) }}
		colOf   = make(map[int]int, maxCols) // dest switch -> column, reused per batch
	)

	for lo := 0; lo < nh; {
		// Grow the batch [lo,hi) while its distinct destination switches
		// fit the column budget. Consecutive hosts on one switch share a
		// column, so a batch always advances by at least one host.
		clear(colOf)
		var dests []int32
		hi := lo
		for hi < nh {
			d := c.Hosts[hi].Switch
			if _, ok := colOf[d]; !ok {
				if len(dests) == maxCols {
					break
				}
				colOf[d] = len(dests)
				dests = append(dests, int32(d))
			}
			hi++
		}

		for len(cols) < len(dests) {
			cols = append(cols, make([]int32, nsw))
			colBad = append(colBad, -1)
		}

		// Parallel Dijkstra: one packed hop column per destination.
		forEachParallel(workers, len(dests), func(i int) {
			sc := scratch.Get().(*sssp)
			colBad[i] = c.fillColumn(sc, int(dests[i]), cols[i])
			scratch.Put(sc)
		})
		for h := lo; h < hi; h++ {
			if bad := colBad[colOf[c.Hosts[h].Switch]]; bad >= 0 {
				return nil, fmt.Errorf("topology: switch %d cannot reach host %d (switch %d): graph is disconnected",
					bad, h, c.Hosts[h].Switch)
			}
		}

		// Merge the batch into the forwarding state, in host order.
		if dense {
			for h := lo; h < hi; h++ {
				col := cols[colOf[c.Hosts[h].Switch]]
				for s := 0; s < nsw; s++ {
					if p := col[s]; p < 0 {
						c.next[s*nh+h] = local
					} else {
						c.next[s*nh+h] = unpackHop(p)
					}
				}
			}
		} else {
			// Disjoint switch ranges extend their runs independently; the
			// result per switch depends only on the columns and the host
			// order, both fixed before the fan-out.
			chunk := (nsw + workers*4 - 1) / (workers * 4)
			if chunk < 1 {
				chunk = 1
			}
			nChunks := (nsw + chunk - 1) / chunk
			forEachParallel(workers, nChunks, func(ci int) {
				sLo, sHi := ci*chunk, (ci+1)*chunk
				if sHi > nsw {
					sHi = nsw
				}
				for s := sLo; s < sHi; s++ {
					rs := rb.runs[s]
					for h := lo; h < hi; h++ {
						p := cols[colOf[c.Hosts[h].Switch]][s]
						if n := len(rs); n > 0 && rs[n-1].hop == p && rs[n-1].end == int32(h) {
							rs[n-1].end = int32(h) + 1
						} else {
							rs = append(rs, runEntry{int32(h) + 1, p})
						}
					}
					rb.runs[s] = rs
				}
			})
		}
		lo = hi
	}
	return rb, nil
}

// fillColumn computes dest d's packed next-hop column: col[s] is the
// hop switch s uses toward d (hopLocal at d itself). It returns the
// lowest switch index that cannot reach d, or -1 when all can. Among
// equal-cost hops the lowest link index wins — the CSR half-edges are
// sorted by link index and only a strictly cheaper cost displaces the
// incumbent.
func (c *Compiled) fillColumn(sc *sssp, d int, col []int32) (bad int32) {
	dist := sc.run(c, d)
	bad = -1
	for s := 0; s < c.Switches; s++ {
		if s == d {
			col[s] = hopLocal
			continue
		}
		best, bestCost := hopUnreachable, maxDist
		for i := c.adjOff[s]; i < c.adjOff[s+1]; i++ {
			dn := dist[c.adjSw[i]]
			if dn == maxDist {
				continue
			}
			w := c.wt[c.adjHop[i]>>1]
			if w == downWt {
				continue
			}
			if cost := w + dn; cost < bestCost {
				best, bestCost = c.adjHop[i], cost
			}
		}
		col[s] = best
		if best == hopUnreachable && bad < 0 {
			bad = int32(s)
		}
	}
	return bad
}

const maxDist = time.Duration(1<<63 - 1)

// downWt is the in-place weight of a link taken down by
// ApplyLinkChange. Every route scan — relaxation, next-hop selection,
// the incremental updater's endpoint probes — skips such links
// outright, so a down link carries no routes while the CSR adjacency
// (and with it every interned row's slot numbering) stays untouched.
const downWt = maxDist

// sssp is one worker's single-source shortest-path scratch: a distance
// vector and a lazy-deletion binary heap. Distances out of Dijkstra
// with positive weights and strictly-improving relaxation are unique,
// so the heap's tie order — unlike the old O(n²) lowest-index sweep —
// cannot influence the result.
type sssp struct {
	dist  []time.Duration
	heap  []heapNode
	epoch []int32 // touched[s] == gen marks dist[s] as valid this run
	gen   int32
}

type heapNode struct {
	d  time.Duration
	sw int32
}

func newSSSP(n int) *sssp {
	return &sssp{
		dist:  make([]time.Duration, n),
		epoch: make([]int32, n),
	}
}

// run returns every switch's shortest distance to dst under the link
// weight metric; unreachable switches hold maxDist.
func (sc *sssp) run(c *Compiled, dst int) []time.Duration {
	sc.gen++
	if sc.gen == 0 { // wrapped: reset epochs
		for i := range sc.epoch {
			sc.epoch[i] = 0
		}
		sc.gen = 1
	}
	dist, epoch, gen := sc.dist, sc.epoch, sc.gen
	at := func(s int32) time.Duration {
		if epoch[s] != gen {
			return maxDist
		}
		return dist[s]
	}
	set := func(s int32, d time.Duration) {
		dist[s] = d
		epoch[s] = gen
	}
	h := sc.heap[:0]
	set(int32(dst), 0)
	h = append(h, heapNode{0, int32(dst)})
	for len(h) > 0 {
		top := h[0]
		n := len(h) - 1
		h[0] = h[n]
		h = h[:n]
		// sift down
		i := 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			if r := l + 1; r < n && h[r].d < h[l].d {
				l = r
			}
			if h[l].d >= h[i].d {
				break
			}
			h[i], h[l] = h[l], h[i]
			i = l
		}
		if top.d > at(top.sw) { // stale entry (lazy deletion)
			continue
		}
		for i := c.adjOff[top.sw]; i < c.adjOff[top.sw+1]; i++ {
			v := c.adjSw[i]
			w := c.wt[c.adjHop[i]>>1]
			if w == downWt { // down links carry no routes
				continue
			}
			if d := top.d + w; d < at(v) {
				set(v, d)
				h = append(h, heapNode{d, v})
				// sift up
				j := len(h) - 1
				for j > 0 {
					p := (j - 1) / 2
					if h[p].d <= h[j].d {
						break
					}
					h[p], h[j] = h[j], h[p]
					j = p
				}
			}
		}
	}
	sc.heap = h[:0]
	// Materialize maxDist for untouched switches so callers can read the
	// vector directly.
	for s := range dist {
		if epoch[s] != gen {
			dist[s] = maxDist
			epoch[s] = gen
		}
	}
	return dist
}

// forEachParallel runs fn(i) for every i in [0,n) across at most
// `workers` goroutines pulling from a shared counter. fn must be safe
// for concurrent calls with distinct i. workers <= 1 (or n <= 1) runs
// inline.
func forEachParallel(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
