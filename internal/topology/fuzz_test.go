package topology

import (
	"testing"
)

// FuzzNextHop drives the interval-run lookup against the dense
// representation on randomized BA and Waxman graphs: same generator
// arguments, both table modes, every (switch, host) cell compared. The
// seed corpus covers both generators at several densities; `go test`
// replays the corpus, `go test -fuzz=FuzzNextHop` explores.
func FuzzNextHop(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(2), false)
	f.Add(int64(7), uint8(64), uint8(1), false)
	f.Add(int64(42), uint8(130), uint8(3), false)
	f.Add(int64(7), uint8(64), uint8(0), true)
	f.Add(int64(99), uint8(200), uint8(0), true)
	f.Fuzz(func(t *testing.T, seed int64, n, m uint8, waxman bool) {
		nodes := 8 + int(n)%248
		var g Graph
		if waxman {
			g = Waxman(nodes, seed)
		} else {
			g = BarabasiAlbert(nodes, 1+int(m)%4, seed)
		}
		def := eqDefaults()
		dense := compileWithLimits(t, g, def, 1<<30, colBatchCells)
		runs := compileWithLimits(t, g, def, 0, colBatchCells)
		if dense.next == nil || runs.next != nil {
			t.Fatal("mode forcing failed")
		}
		nh := dense.NumHosts()
		for s := 0; s < dense.Switches; s++ {
			for h := 0; h < nh; h++ {
				dh, dl := dense.NextHop(s, h)
				rh, rl := runs.NextHop(s, h)
				if dl != rl || (!dl && dh != rh) {
					t.Fatalf("NextHop(%d,%d): dense (%+v,%v), runs (%+v,%v)", s, h, dh, dl, rh, rl)
				}
			}
		}
	})
}
