package topology

import (
	"fmt"
	"time"
)

// Partition divides a compiled graph's switches into K regions for
// sharded execution (internal/shard). Hosts are not listed: a host
// always belongs to its switch's region, so access links never cross a
// region boundary and only switch-switch links can be cut.
type Partition struct {
	// K is the number of regions, 1 <= K <= Switches.
	K int
	// Region[s] is the region index of switch s.
	Region []int
	// CutLinks lists the links whose endpoints lie in different regions,
	// in ascending link-index order.
	CutLinks []int
	// MinCutDelay is the smallest propagation delay among the cut links —
	// the conservative lookahead bound: no region's events can affect
	// another region sooner than this. It is 0 when there are no cut
	// links (K == 1, or regions that happen to be disconnected), in which
	// case regions never interact and the lookahead is unbounded.
	MinCutDelay time.Duration
}

// Partition computes a deterministic K-way partition of the switches:
// switches are laid out in BFS order (started from the lowest-index
// unvisited switch, neighbors explored in ascending link-index order),
// cut into K contiguous blocks of near-equal size, and then refined by
// greedy single-switch moves that strictly reduce the number of cut
// links while keeping block sizes within one of each other. Every tie —
// BFS frontier order, move scan order, destination choice — is broken
// by the lowest index, so the same graph and K always produce the same
// partition. K is clamped to [1, Switches].
//
// Partitioning fails only if a cut link has no propagation delay: a
// zero-delay cut would leave the conservative synchronization scheme no
// lookahead. Use fewer shards, explicit regions, or give the link a
// delay.
func (c *Compiled) Partition(k int) (*Partition, error) {
	if k < 1 {
		k = 1
	}
	if k > c.Switches {
		k = c.Switches
	}
	region := make([]int, c.Switches)
	if k == 1 {
		return c.finishPartition(region, 1)
	}

	// BFS layout. Components are visited lowest-index first; within a
	// component the frontier is a FIFO queue and neighbors are pushed in
	// ascending link-index order (the CSR half-edge order).
	order := make([]int, 0, c.Switches)
	seen := make([]bool, c.Switches)
	queue := make([]int, 0, c.Switches)
	for start := 0; start < c.Switches; start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			for i := c.adjOff[u]; i < c.adjOff[u+1]; i++ {
				if v := int(c.adjSw[i]); !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
	}

	// Contiguous blocks of near-equal size: the first Switches%K blocks
	// take one extra switch.
	size := make([]int, k)
	base, extra := c.Switches/k, c.Switches%k
	i := 0
	for r := 0; r < k; r++ {
		n := base
		if r < extra {
			n++
		}
		for j := 0; j < n; j++ {
			region[order[i]] = r
			i++
		}
		size[r] = n
	}

	// Refinement: move one boundary switch at a time when that strictly
	// reduces the cut, until a pass makes no move (bounded by a pass
	// limit for safety). A move must keep every region non-empty and the
	// sizes within the original base..base+1 band.
	lo, hi := base, base
	if extra > 0 {
		hi++
	}
	for pass := 0; pass < 8; pass++ {
		moved := false
		for s := 0; s < c.Switches; s++ {
			from := region[s]
			if size[from] <= lo || size[from] <= 1 {
				continue
			}
			// Count s's links into each region; the cut delta for moving
			// s from `from` to `to` is deg[from] - deg[to].
			bestTo, bestDelta := -1, 0
			for i := c.adjOff[s]; i < c.adjOff[s+1]; i++ {
				to := region[c.adjSw[i]]
				if to == from || size[to] >= hi {
					continue
				}
				delta := c.cutDelta(region, s, to)
				if delta < bestDelta || (delta == bestDelta && bestTo >= 0 && to < bestTo) {
					bestTo, bestDelta = to, delta
				}
			}
			if bestTo >= 0 && bestDelta < 0 {
				size[from]--
				size[bestTo]++
				region[s] = bestTo
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return c.finishPartition(region, k)
}

// cutDelta returns the change in the number of cut links if switch s
// moved to region `to`.
func (c *Compiled) cutDelta(region []int, s, to int) int {
	from := region[s]
	delta := 0
	for i := c.adjOff[s]; i < c.adjOff[s+1]; i++ {
		switch region[c.adjSw[i]] {
		case from:
			delta++ // was internal, becomes cut
		case to:
			delta-- // was cut, becomes internal
		}
	}
	return delta
}

// PartitionWith builds a Partition from an explicit region list (the
// scenario-file `regions` override): regions[r] lists the switches of
// region r, and together the lists must cover every switch exactly
// once. The same zero-delay-cut restriction as Partition applies.
func (c *Compiled) PartitionWith(regions [][]int) (*Partition, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("topology: empty region list")
	}
	region := make([]int, c.Switches)
	for i := range region {
		region[i] = -1
	}
	for r, list := range regions {
		if len(list) == 0 {
			return nil, fmt.Errorf("topology: region %d is empty", r)
		}
		for _, s := range list {
			if s < 0 || s >= c.Switches {
				return nil, fmt.Errorf("topology: region %d names switch %d, out of range [0,%d)", r, s, c.Switches)
			}
			if region[s] >= 0 {
				return nil, fmt.Errorf("topology: switch %d appears in regions %d and %d", s, region[s], r)
			}
			region[s] = r
		}
	}
	for s, r := range region {
		if r < 0 {
			return nil, fmt.Errorf("topology: switch %d is in no region", s)
		}
	}
	return c.finishPartition(region, len(regions))
}

// finishPartition derives the cut-edge metadata from a region
// assignment and validates the lookahead bound.
func (c *Compiled) finishPartition(region []int, k int) (*Partition, error) {
	p := &Partition{K: k, Region: region}
	for li, l := range c.Links {
		if region[l.A] == region[l.B] {
			continue
		}
		if l.Delay <= 0 {
			return nil, fmt.Errorf(
				"topology: cut link %d (switch %d–switch %d) has zero propagation delay: sharding needs positive lookahead on every cut link (use fewer shards, explicit regions, or a link delay)",
				li, l.A, l.B)
		}
		if p.MinCutDelay == 0 || l.Delay < p.MinCutDelay {
			p.MinCutDelay = l.Delay
		}
		p.CutLinks = append(p.CutLinks, li)
	}
	return p, nil
}
