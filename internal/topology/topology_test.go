package topology

import (
	"testing"
	"time"
)

// def is a paper-standard defaults block: 50 Kbps trunks, 10 ms delay,
// 20-packet buffers, 500 B data packets.
func def() Defaults {
	return Defaults{Bandwidth: 50_000, Delay: 10 * time.Millisecond, Buffer: 20, DataSize: 500}
}

func TestGenerators(t *testing.T) {
	d := Dumbbell()
	if d.Switches != 2 || len(d.Links) != 1 {
		t.Fatalf("dumbbell = %+v", d)
	}
	c := Chain(5)
	if c.Switches != 5 || len(c.Links) != 4 {
		t.Fatalf("chain = %+v", c)
	}
	for i, l := range c.Links {
		if l.A != i || l.B != i+1 {
			t.Fatalf("chain link %d = %+v", i, l)
		}
	}
	p := ParkingLot(3)
	if p.Switches != 4 || len(p.Links) != 3 {
		t.Fatalf("parking lot = %+v", p)
	}
}

func TestCompileChainRoutes(t *testing.T) {
	c, err := Chain(4).Compile(def())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumHosts() != 4 {
		t.Fatalf("hosts = %d", c.NumHosts())
	}
	// Switch 0 forwards to host 3 via link 0 rightward; switch 3 to host
	// 0 via link 2 leftward.
	if hop, local := c.NextHop(0, 3); local || hop != (Hop{Link: 0, Dir: 0}) {
		t.Fatalf("next(0,3) = %+v local=%v", hop, local)
	}
	if hop, local := c.NextHop(3, 0); local || hop != (Hop{Link: 2, Dir: 1}) {
		t.Fatalf("next(3,0) = %+v local=%v", hop, local)
	}
	// Local delivery at the attachment switch.
	if _, local := c.NextHop(2, 2); !local {
		t.Fatal("host 2 not local at switch 2")
	}
	if got := c.PathHops(0, 3); got != 3 {
		t.Fatalf("path 0→3 = %d hops", got)
	}
	if got := c.PathHops(1, 1); got != 0 {
		t.Fatalf("path 1→1 = %d hops", got)
	}
}

func TestCompileResolvesDefaults(t *testing.T) {
	g := Graph{
		Switches: 3,
		Links: []LinkSpec{
			{A: 0, B: 1},
			{A: 1, B: 2, Bandwidth: 1_000_000, Delay: time.Second, Buffer: Unbounded},
		},
	}
	c, err := g.Compile(def())
	if err != nil {
		t.Fatal(err)
	}
	if l := c.Links[0]; l.Bandwidth != 50_000 || l.Delay != 10*time.Millisecond || l.Buffer != 20 {
		t.Fatalf("link 0 = %+v", l)
	}
	if l := c.Links[1]; l.Bandwidth != 1_000_000 || l.Delay != time.Second || l.Buffer != 0 {
		t.Fatalf("link 1 = %+v (want unbounded buffer 0)", l)
	}
}

// TestShortestPathPrefersFastRoute builds a triangle where the direct
// 0–2 link is slow and the two-hop detour via 1 is fast; routing must
// take the detour by total delay, not hop count.
func TestShortestPathPrefersFastRoute(t *testing.T) {
	g := Graph{
		Switches: 3,
		Links: []LinkSpec{
			{A: 0, B: 2, Delay: 10 * time.Second}, // slow direct
			{A: 0, B: 1, Delay: time.Millisecond},
			{A: 1, B: 2, Delay: time.Millisecond},
		},
	}
	c, err := g.Compile(def())
	if err != nil {
		t.Fatal(err)
	}
	if hop, _ := c.NextHop(0, 2); hop != (Hop{Link: 1, Dir: 0}) {
		t.Fatalf("next(0, host2) = %+v, want detour via switch 1", hop)
	}
	if got := c.PathHops(0, 2); got != 2 {
		t.Fatalf("path hops = %d, want 2", got)
	}
}

// TestEqualCostTieBreak gives two identical parallel paths; the lowest
// link index must win, deterministically.
func TestEqualCostTieBreak(t *testing.T) {
	g := Graph{
		Switches: 4,
		// 0–1–3 and 0–2–3, identical weights.
		Links: []LinkSpec{
			{A: 0, B: 1}, {A: 1, B: 3},
			{A: 0, B: 2}, {A: 2, B: 3},
		},
	}
	for i := 0; i < 10; i++ {
		c, err := g.Compile(def())
		if err != nil {
			t.Fatal(err)
		}
		if hop, _ := c.NextHop(0, 3); hop != (Hop{Link: 0, Dir: 0}) {
			t.Fatalf("iteration %d: next(0, host3) = %+v, want link 0", i, hop)
		}
	}
}

func TestRouteOverride(t *testing.T) {
	g := Graph{
		Switches: 3,
		Links: []LinkSpec{
			{A: 0, B: 2},               // direct, default weight
			{A: 0, B: 1}, {A: 1, B: 2}, // detour
		},
		Routes: []RouteSpec{{At: 0, Dst: 2, Via: 1}},
	}
	c, err := g.Compile(def())
	if err != nil {
		t.Fatal(err)
	}
	if hop, _ := c.NextHop(0, 2); hop != (Hop{Link: 1, Dir: 0}) {
		t.Fatalf("override ignored: next(0, host2) = %+v", hop)
	}
	if got := c.PathHops(0, 2); got != 2 {
		t.Fatalf("overridden path hops = %d, want 2", got)
	}
	// Host 0's routes are untouched.
	if hop, _ := c.NextHop(2, 0); hop != (Hop{Link: 0, Dir: 1}) {
		t.Fatalf("next(2, host0) = %+v", hop)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]Graph{
		"no switches":       {},
		"link out of range": {Switches: 2, Links: []LinkSpec{{A: 0, B: 5}}},
		"self loop":         {Switches: 2, Links: []LinkSpec{{A: 1, B: 1}}},
		"host out of range": {Switches: 2, Links: []LinkSpec{{A: 0, B: 1}}, Hosts: []HostSpec{{Switch: 7}}},
		"disconnected":      {Switches: 3, Links: []LinkSpec{{A: 0, B: 1}}},
		"override bad via":  {Switches: 3, Links: []LinkSpec{{A: 0, B: 1}, {A: 1, B: 2}}, Routes: []RouteSpec{{At: 0, Dst: 2, Via: 2}}},
		"override own host": {Switches: 2, Links: []LinkSpec{{A: 0, B: 1}}, Routes: []RouteSpec{{At: 0, Dst: 0, Via: 1}}},
		"override bad host": {Switches: 2, Links: []LinkSpec{{A: 0, B: 1}}, Routes: []RouteSpec{{At: 0, Dst: 9, Via: 1}}},
		"override bad at":   {Switches: 2, Links: []LinkSpec{{A: 0, B: 1}}, Routes: []RouteSpec{{At: 5, Dst: 1, Via: 1}}},
		"no bandwidth":      {Switches: 2, Links: []LinkSpec{{A: 0, B: 1}}},
	}
	for name, g := range cases {
		d := def()
		if name == "no bandwidth" {
			d.Bandwidth = 0
		}
		if _, err := g.Compile(d); err == nil {
			t.Errorf("%s: compiled without error", name)
		}
	}
}

func TestMultipleHostsPerSwitch(t *testing.T) {
	g := Graph{
		Switches: 2,
		Links:    []LinkSpec{{A: 0, B: 1}},
		Hosts:    []HostSpec{{Switch: 0}, {Switch: 0}, {Switch: 1}},
	}
	c, err := g.Compile(def())
	if err != nil {
		t.Fatal(err)
	}
	if _, local := c.NextHop(0, 1); !local {
		t.Fatal("host 1 should be local at switch 0")
	}
	if hop, local := c.NextHop(0, 2); local || hop != (Hop{Link: 0, Dir: 0}) {
		t.Fatalf("next(0, host2) = %+v", hop)
	}
	if got := c.PathHops(0, 1); got != 0 {
		t.Fatalf("same-switch path = %d hops", got)
	}
}

func TestWeightMetric(t *testing.T) {
	c, err := Dumbbell().Compile(def())
	if err != nil {
		t.Fatal(err)
	}
	// 500 B at 50 Kbps = 80 ms transmission + 10 ms propagation.
	if w := c.Weight(0); w != 90*time.Millisecond {
		t.Fatalf("weight = %v, want 90ms", w)
	}
}
