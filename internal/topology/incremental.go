package topology

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// LinkDown is the newWeight sentinel for ApplyLinkChange: the link is
// removed from routing (its weight becomes effectively infinite) while
// the compiled adjacency stays intact, so a later ApplyLinkChange with
// a finite weight brings it back.
const LinkDown = time.Duration(-1)

// ApplyLinkChange updates link li's routing metric to newWeight (or
// takes the link down, see LinkDown) and incrementally repairs the
// forwarding state, recomputing only the Dijkstra columns the change
// can affect. The result is byte-identical to a from-scratch
// RecomputeRoutes under the new weights — same intervals, same
// tie-breaks — for every worker count (pinned by the randomized
// property test in incremental_test.go). It returns the switches whose
// forwarding rows changed, in ascending order; callers repaint exactly
// those switch tables.
//
// The updater is a Ramalingam–Reps-style delta propagation organized as
// a certificate hierarchy, cheapest first:
//
//  1. Bridge links. If removing li disconnects its endpoints, every
//     route crossing the cut uses li at any finite weight: distances
//     shift uniformly, no argmin or tie can move, no column is
//     affected. On chains and parking lots every trunk is a bridge, so
//     a weight change is O(1) after the one-time bridge sweep.
//  2. Per-column endpoint probes. For a weight increase, column d is
//     affected only if an endpoint's chosen hop toward d is li itself
//     (any other chosen tree avoids li, and alternatives only got
//     worse). For a decrease, column d is affected only if the new
//     weight beats or ties the current endpoint distances:
//     w' + dist_d(b) <= dist_d(a) or symmetrically — which needs just
//     two single-source Dijkstras from li's endpoints under the old
//     weights.
//  3. Full recompute of the surviving columns (worker pool, same
//     fillColumn as Compile) and an interval splice into each switch's
//     interned row, releasing and re-interning only rows whose content
//     moved.
//
// Errors leave the Compiled unchanged. Graphs with route overrides are
// rejected: overrides are painted destructively at Compile and cannot
// be replayed over recomputed columns.
func (c *Compiled) ApplyLinkChange(li int, newWeight time.Duration) (changed []int, err error) {
	if c.hasOverrides {
		return nil, fmt.Errorf("topology: ApplyLinkChange on a graph with route overrides")
	}
	if li < 0 || li >= len(c.Links) {
		return nil, fmt.Errorf("topology: ApplyLinkChange on unknown link %d", li)
	}
	var nw time.Duration
	switch {
	case newWeight == LinkDown:
		nw = downWt
	case newWeight <= 0:
		return nil, fmt.Errorf("topology: ApplyLinkChange weight %v on link %d not positive", newWeight, li)
	default:
		nw = newWeight
	}
	ow := c.wt[li]
	if nw == ow {
		return nil, nil
	}

	// Certificate 1: bridges. (A down bridge cannot exist in a valid
	// compiled state — it would strand a switch from some host — so the
	// fast path only ever sees finite-to-finite changes.)
	c.ensureBridges()
	if c.bridge[li] && ow != downWt {
		if nw == downWt {
			return nil, fmt.Errorf("topology: taking link %d down disconnects the graph (bridge)", li)
		}
		c.wt[li] = nw
		return nil, nil
	}

	// Certificate 2: per-column endpoint probes.
	c.ensureDests()
	a, b := c.Links[li].A, c.Links[li].B
	var affected []int32 // indices into destSws, ascending
	if nw > ow {
		// Weight increase (including down): a column moves only if a
		// chosen hop at an endpoint is the link itself.
		fa, fb := packHop(li, 0), packHop(li, 1)
		for di := range c.destSws {
			h := int(c.destFirst[di])
			if c.packedAt(a, h) == fa || c.packedAt(b, h) == fb {
				affected = append(affected, int32(di))
			}
		}
	} else {
		// Weight decrease (including bringing a down link up): a column
		// moves only if the new edge beats or ties a current endpoint
		// distance. Two SSSP runs under the old weights give
		// dist_d(a), dist_d(b) for every destination at once.
		sc := newSSSP(c.Switches)
		da := make([]time.Duration, c.Switches)
		copy(da, sc.run(c, a))
		db := sc.run(c, b)
		for di, d := range c.destSws {
			dda, ddb := da[d], db[d]
			if dda == maxDist || ddb == maxDist ||
				nw+ddb <= dda || nw+dda <= ddb {
				affected = append(affected, int32(di))
			}
		}
	}

	c.wt[li] = nw
	if len(affected) == 0 {
		return nil, nil
	}

	// Certificate 3: recompute the affected columns under the new
	// weights — each column independent, fanned over the compile worker
	// pool — then splice.
	workers := c.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cols := make([][]int32, len(affected))
	colBad := make([]int32, len(affected))
	scratch := sync.Pool{New: func() any { return newSSSP(c.Switches) }}
	forEachParallel(workers, len(affected), func(i int) {
		sc := scratch.Get().(*sssp)
		cols[i] = make([]int32, c.Switches)
		colBad[i] = c.fillColumn(sc, int(c.destSws[affected[i]]), cols[i])
		scratch.Put(sc)
	})
	for i, bad := range colBad {
		if bad >= 0 {
			c.wt[li] = ow // roll back: forwarding state is untouched
			return nil, fmt.Errorf("topology: link %d change disconnects switch %d from hosts on switch %d",
				li, bad, c.destSws[affected[i]])
		}
	}
	return c.splice(affected, cols), nil
}

// splice overlays the recomputed columns onto every switch's forwarding
// row (or dense cells) and returns the ascending list of switches whose
// row content changed. Serial in switch order, so pool row ids — and
// the returned list — are deterministic.
func (c *Compiled) splice(affected []int32, cols [][]int32) []int {
	nh := len(c.Hosts)
	// Overlay: maximal host intervals attached to an affected
	// destination, each carrying its column index.
	type ovl struct {
		h0, h1 int32
		ci     int32
	}
	amap := make(map[int32]int32, len(affected))
	for ci, di := range affected {
		amap[c.destSws[di]] = int32(ci)
	}
	var overlay []ovl
	for h := 0; h < nh; {
		d := int32(c.Hosts[h].Switch)
		ci, ok := amap[d]
		if !ok {
			h++
			continue
		}
		h1 := h + 1
		for h1 < nh && int32(c.Hosts[h1].Switch) == d {
			h1++
		}
		overlay = append(overlay, ovl{int32(h), int32(h1), ci})
		h = h1
	}

	var changed []int
	if c.next != nil {
		for s := 0; s < c.Switches; s++ {
			row := c.next[s*nh : (s+1)*nh]
			moved := false
			for _, o := range overlay {
				p := cols[o.ci][s]
				hop := local
				if p >= 0 {
					hop = unpackHop(p)
				}
				for h := o.h0; h < o.h1; h++ {
					if row[h] != hop {
						row[h] = hop
						moved = true
					}
				}
			}
			if moved {
				changed = append(changed, s)
			}
		}
		return changed
	}

	var ends, slots []int32 // scratch row
	for s := 0; s < c.Switches; s++ {
		// Quick probe: every host of one destination shares its cell
		// value, so one lookup per overlay interval decides whether the
		// row moves at all. Most rows don't.
		moved := false
		for _, o := range overlay {
			if c.packedAt(s, int(o.h0)) != cols[o.ci][s] {
				moved = true
				break
			}
		}
		if !moved {
			continue
		}
		// Rebuild the row: old intervals with overlay values painted
		// over, adjacent equal slots merged — the same canonical maximal
		// form the batch merge in computeRoutes emits, which is what
		// keeps the splice byte-identical to a full recompile.
		oldRow := c.rowOf[s]
		oldEnds, oldSlots := c.pool.ends[oldRow], c.pool.slots[oldRow]
		ends, slots = ends[:0], slots[:0]
		emit := func(end, slot int32) {
			if n := len(slots); n > 0 && slots[n-1] == slot {
				ends[n-1] = end
			} else {
				ends = append(ends, end)
				slots = append(slots, slot)
			}
		}
		oi, vi := 0, 0
		for pos := int32(0); pos < int32(nh); {
			for oldEnds[oi] <= pos {
				oi++
			}
			for vi < len(overlay) && overlay[vi].h1 <= pos {
				vi++
			}
			segEnd := oldEnds[oi]
			var slot int32
			if vi < len(overlay) && overlay[vi].h0 <= pos {
				if overlay[vi].h1 < segEnd {
					segEnd = overlay[vi].h1
				}
				slot = c.slotOf(s, cols[overlay[vi].ci][s])
			} else {
				if vi < len(overlay) && overlay[vi].h0 < segEnd {
					segEnd = overlay[vi].h0
				}
				slot = oldSlots[oi]
			}
			emit(segEnd, slot)
			pos = segEnd
		}
		id := c.pool.intern(ends, slots)
		c.pool.release(oldRow)
		c.rowOf[s] = id
		changed = append(changed, s)
	}
	return changed
}

// RecomputeRoutes rebuilds the forwarding state from scratch under the
// current weights (including down links) with the same compiler Compile
// uses. It is the reference ApplyLinkChange is pinned against and the
// baseline BenchmarkIncrementalRecompile compares with. On error
// (disconnection) the forwarding state is unusable.
func (c *Compiled) RecomputeRoutes() error {
	if c.hasOverrides {
		return fmt.Errorf("topology: RecomputeRoutes on a graph with route overrides")
	}
	c.next, c.rowOf, c.pool = nil, nil, nil
	rb, err := c.computeRoutes()
	if err != nil {
		return err
	}
	if rb != nil {
		rb.freeze(c)
	}
	return nil
}

// ensureDests builds the distinct-destination cache: every switch that
// bears hosts, in first-host order, with one representative host each.
// (All hosts on one switch share their forwarding column, so one host
// per destination is enough for every probe.)
func (c *Compiled) ensureDests() {
	if c.destSws != nil {
		return
	}
	seen := make([]bool, c.Switches)
	for h, hs := range c.Hosts {
		if !seen[hs.Switch] {
			seen[hs.Switch] = true
			c.destSws = append(c.destSws, int32(hs.Switch))
			c.destFirst = append(c.destFirst, int32(h))
		}
	}
}

// ensureBridges computes the per-link bridge flags with an iterative
// Tarjan DFS over the static CSR (down links included — a full-graph
// bridge is a bridge of every subgraph that still contains it, so the
// flag stays sound when other links are down; the converse
// misclassification only costs a fall-through to the endpoint probes).
// Parallel links are handled by skipping the entering link id exactly
// once per frame.
func (c *Compiled) ensureBridges() {
	if c.bridge != nil {
		return
	}
	c.bridge = make([]bool, len(c.Links))
	n := c.Switches
	disc := make([]int32, n) // 0 = unvisited, else discovery time
	low := make([]int32, n)
	type frame struct {
		sw         int32
		parentLink int32 // link id of the tree edge into sw, -1 at roots
		ei         int32 // next half-edge index to scan
		skipped    bool  // parent link already skipped once (parallel edges)
	}
	var stack []frame
	timer := int32(0)
	for root := 0; root < n; root++ {
		if disc[root] != 0 {
			continue
		}
		timer++
		disc[root], low[root] = timer, timer
		stack = append(stack[:0], frame{sw: int32(root), parentLink: -1, ei: c.adjOff[root]})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ei < c.adjOff[f.sw+1] {
				i := f.ei
				f.ei++
				eli := c.adjHop[i] >> 1
				if eli == f.parentLink && !f.skipped {
					f.skipped = true
					continue
				}
				v := c.adjSw[i]
				if disc[v] == 0 {
					timer++
					disc[v], low[v] = timer, timer
					stack = append(stack, frame{sw: v, parentLink: eli, ei: c.adjOff[v]})
				} else if disc[v] < low[f.sw] {
					low[f.sw] = disc[v]
				}
				continue
			}
			// Frame done: fold into the parent.
			child := *f
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				break
			}
			p := &stack[len(stack)-1]
			if low[child.sw] < low[p.sw] {
				low[p.sw] = low[child.sw]
			}
			if low[child.sw] > disc[p.sw] {
				c.bridge[child.parentLink] = true
			}
		}
	}
}
