package topology

import (
	"math/rand"
	"testing"
	"time"
)

// canonRow is one switch's forwarding row in the canonical
// representation both table modes share: maximal host intervals with
// their packed hop (hopLocal for the switch's own hosts).
type canonRow struct {
	ends []int32
	hops []int32
}

// snapshot resolves every switch's forwarding row to canonical form.
func snapshot(c *Compiled) []canonRow {
	rows := make([]canonRow, c.Switches)
	for s := 0; s < c.Switches; s++ {
		r := &rows[s]
		c.ForEachHostRun(s, func(h0, h1 int, hop Hop, isLocal bool) {
			p := hopLocal
			if !isLocal {
				p = packHop(hop.Link, hop.Dir)
			}
			r.ends = append(r.ends, int32(h1))
			r.hops = append(r.hops, p)
		})
	}
	return rows
}

func rowsEqual(a, b canonRow) bool {
	if len(a.ends) != len(b.ends) {
		return false
	}
	for i := range a.ends {
		if a.ends[i] != b.ends[i] || a.hops[i] != b.hops[i] {
			return false
		}
	}
	return true
}

// checkSame requires byte-identical forwarding state: same canonical
// rows everywhere, and in run mode the same interval structure (the
// canonical form IS the stored row, modulo slot translation).
func checkSame(t *testing.T, tag string, got, want *Compiled) {
	t.Helper()
	gs, ws := snapshot(got), snapshot(want)
	for s := range gs {
		if !rowsEqual(gs[s], ws[s]) {
			t.Fatalf("%s: switch %d forwarding row diverged:\n got %v|%v\nwant %v|%v",
				tag, s, gs[s].ends, gs[s].hops, ws[s].ends, ws[s].hops)
		}
	}
	for li := range got.Links {
		if got.wt[li] != want.wt[li] {
			t.Fatalf("%s: link %d weight %v, want %v", tag, li, got.wt[li], want.wt[li])
		}
	}
}

// checkPool verifies the interning invariants after a mutation: each
// live row's refcount equals the number of switches naming it, and no
// two live rows hold identical content.
func checkPool(t *testing.T, tag string, c *Compiled) {
	t.Helper()
	if c.pool == nil {
		return
	}
	refs := make(map[int32]int32)
	for _, id := range c.rowOf {
		refs[id]++
	}
	for id, n := range refs {
		if c.pool.refs[id] != n {
			t.Fatalf("%s: row %d refcount %d, %d switches reference it", tag, id, c.pool.refs[id], n)
		}
	}
	seen := make(map[uint64][]int32)
	for id := range c.pool.ends {
		id := int32(id)
		if c.pool.refs[id] <= 0 {
			continue
		}
		h := hashRow(c.pool.ends[id], c.pool.slots[id])
		for _, other := range seen[h] {
			if rowsEqual(canonRow{c.pool.ends[id], c.pool.slots[id]}, canonRow{c.pool.ends[other], c.pool.slots[other]}) {
				t.Fatalf("%s: live rows %d and %d share content — interning failed", tag, id, other)
			}
		}
		seen[h] = append(seen[h], id)
	}
}

// incrementalGraphs is the property-test corpus: the ISSUE-named
// shapes (chain, parking lot, BA, Waxman) plus host-placement
// variants that scatter and cluster hosts.
func incrementalGraphs() map[string]Graph {
	scattered := BarabasiAlbert(80, 2, 11)
	scattered.Hosts = nil
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 24; i++ {
		scattered.Hosts = append(scattered.Hosts, HostSpec{Switch: rng.Intn(80)})
	}
	sparse := Waxman(120, 3)
	sparse.Hosts = []HostSpec{{7}, {7}, {40}, {71}, {71}, {101}}
	return map[string]Graph{
		"chain-24":     Chain(24),
		"parking-lot":  ParkingLot(6),
		"ba-64":        BarabasiAlbert(64, 2, 7),
		"ba-200":       BarabasiAlbert(200, 3, 42),
		"waxman-64":    Waxman(64, 7),
		"waxman-300":   Waxman(300, 99),
		"ba-scattered": scattered,
		"waxman-thin":  sparse,
	}
}

// mutateOnce applies one random link change to live (incremental) and,
// on success, mirrors it onto ref by direct weight poke plus full
// recompile. It returns the changed-switch list and whether the step
// applied (false: the change was rejected, state must be untouched).
func mutateOnce(t *testing.T, tag string, rng *rand.Rand, live, ref *Compiled) ([]int, bool) {
	t.Helper()
	li := rng.Intn(len(live.Links))
	cur := live.wt[li]
	var w time.Duration
	switch op := rng.Intn(6); {
	case op == 0: // take down
		w = LinkDown
	case op == 1 || cur == downWt: // restore / perturb from the spec weight
		base := live.Links[li].Delay + time.Duration(int64(live.dataSize)*8*int64(time.Second)/live.Links[li].Bandwidth)
		w = base + time.Duration(rng.Intn(3))*time.Millisecond
	case op == 2:
		w = cur / 3
	case op == 3:
		w = cur * 3
	case op == 4:
		w = cur + time.Duration(rng.Intn(20_000_000)) // sub-RTT nudge: tie territory
	default:
		w = cur - time.Duration(rng.Intn(int(cur/2)+1))
	}
	if w != LinkDown && w <= 0 {
		w = time.Millisecond
	}

	before := snapshot(live)
	changed, err := live.ApplyLinkChange(li, w)
	if err != nil {
		// Rejected (disconnection): live must be untouched.
		after := snapshot(live)
		for s := range before {
			if !rowsEqual(before[s], after[s]) {
				t.Fatalf("%s: failed ApplyLinkChange(%d) mutated switch %d", tag, li, s)
			}
		}
		if live.wt[li] != cur {
			t.Fatalf("%s: failed ApplyLinkChange(%d) left weight %v", tag, li, live.wt[li])
		}
		return nil, false
	}

	// The changed list must be exactly the rows that moved.
	after := snapshot(live)
	ci := 0
	for s := range before {
		moved := !rowsEqual(before[s], after[s])
		listed := ci < len(changed) && changed[ci] == s
		if listed {
			ci++
		}
		if moved != listed {
			t.Fatalf("%s: ApplyLinkChange(%d,%v) switch %d moved=%v listed=%v", tag, li, w, s, moved, listed)
		}
	}
	if ci != len(changed) {
		t.Fatalf("%s: changed list has stray entries %v", tag, changed[ci:])
	}

	// Mirror onto the reference: poke the weight, recompile from scratch.
	if w == LinkDown {
		ref.wt[li] = downWt
	} else {
		ref.wt[li] = w
	}
	if err := ref.RecomputeRoutes(); err != nil {
		t.Fatalf("%s: reference recompile rejected a change the incremental path accepted: %v", tag, err)
	}
	return changed, true
}

// TestApplyLinkChangeMatchesRecompile is the pinned byte-identity
// property: a long random sequence of weight changes, downs, and
// restores maintained incrementally equals a from-scratch recompile
// after every single step — in run mode and dense mode, for several
// worker counts.
func TestApplyLinkChangeMatchesRecompile(t *testing.T) {
	for name, g := range incrementalGraphs() {
		for _, mode := range []struct {
			name  string
			limit int
		}{{"runs", 0}, {"dense", 1 << 30}} {
			t.Run(name+"/"+mode.name, func(t *testing.T) {
				def := eqDefaults()
				live := compileWithLimits(t, g, def, mode.limit, colBatchCells)
				ref := compileWithLimits(t, g, def, mode.limit, colBatchCells)
				defW := eqDefaults()
				defW.Workers = 3
				liveW := compileWithLimits(t, g, defW, mode.limit, colBatchCells)
				// Force the mode for every RecomputeRoutes below too.
				oldDense := denseNextLimit
				denseNextLimit = mode.limit
				defer func() { denseNextLimit = oldDense }()

				rng := rand.New(rand.NewSource(int64(len(name)) * 1337))
				rngW := rand.New(rand.NewSource(int64(len(name)) * 1337))
				applied := 0
				for step := 0; step < 40; step++ {
					changed, ok := mutateOnce(t, name, rng, live, ref)
					// Same op stream on the 3-worker compile: identical
					// results and identical changed lists.
					changedW, okW := mutateOnce(t, name+"/w3", rngW, liveW, liveW.Clone())
					if ok != okW || len(changed) != len(changedW) {
						t.Fatalf("step %d: workers=3 diverged (ok %v/%v, changed %d/%d)",
							step, ok, okW, len(changed), len(changedW))
					}
					for i := range changed {
						if changed[i] != changedW[i] {
							t.Fatalf("step %d: workers=3 changed list diverged at %d", step, i)
						}
					}
					if !ok {
						continue
					}
					applied++
					tag := name + "/" + mode.name
					checkSame(t, tag, live, ref)
					checkSame(t, tag+"/w3", liveW, live)
					checkPool(t, tag, live)
				}
				if applied == 0 {
					t.Fatalf("no link change applied in 40 steps — corpus too restrictive")
				}
			})
		}
	}
}

// TestApplyLinkChangeBridgeFastPath pins the O(1) chain case: every
// chain link is a bridge, so a finite weight change moves no routes and
// reports no changed switches, while taking a bridge down is rejected.
func TestApplyLinkChangeBridgeFastPath(t *testing.T) {
	c := compileWithLimits(t, Chain(64), eqDefaults(), 0, colBatchCells)
	want := snapshot(c)
	changed, err := c.ApplyLinkChange(31, 700*time.Millisecond)
	if err != nil || len(changed) != 0 {
		t.Fatalf("bridge weight change: changed=%v err=%v", changed, err)
	}
	if c.Weight(31) != 700*time.Millisecond {
		t.Fatalf("weight not updated: %v", c.Weight(31))
	}
	got := snapshot(c)
	for s := range want {
		if !rowsEqual(want[s], got[s]) {
			t.Fatalf("bridge weight change moved switch %d", s)
		}
	}
	if _, err := c.ApplyLinkChange(31, LinkDown); err == nil {
		t.Fatal("taking a bridge down must be rejected")
	}
	// And the state after the rejected down still matches a recompile.
	ref := c.Clone()
	if err := ref.RecomputeRoutes(); err != nil {
		t.Fatalf("recompile: %v", err)
	}
	checkSame(t, "post-reject", c, ref)
}

// TestApplyLinkChangeRejects pins the argument and override guards.
func TestApplyLinkChangeRejects(t *testing.T) {
	c := compileWithLimits(t, Chain(8), eqDefaults(), 0, colBatchCells)
	if _, err := c.ApplyLinkChange(-1, time.Second); err == nil {
		t.Fatal("negative link accepted")
	}
	if _, err := c.ApplyLinkChange(len(c.Links), time.Second); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	if _, err := c.ApplyLinkChange(0, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	g := Graph{
		Switches: 3,
		Links:    []LinkSpec{{A: 0, B: 1}, {A: 1, B: 2}, {A: 0, B: 2, Delay: 500 * time.Millisecond}},
		Routes:   []RouteSpec{{At: 0, Dst: 2, Via: 2}},
	}
	oc := compileWithLimits(t, g, eqDefaults(), 0, colBatchCells)
	if _, err := oc.ApplyLinkChange(0, time.Second); err == nil {
		t.Fatal("override graph accepted")
	}
	if err := oc.RecomputeRoutes(); err == nil {
		t.Fatal("override graph recompile accepted")
	}
}

// TestCloneIsolation: mutations on a clone never leak into the
// original, including through the row pool's free-list reuse.
func TestCloneIsolation(t *testing.T) {
	base := compileWithLimits(t, BarabasiAlbert(120, 2, 3), eqDefaults(), 0, colBatchCells)
	want := snapshot(base)
	cl := base.Clone()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 15; i++ {
		mutateOnce(t, "clone", rng, cl, cl.Clone())
	}
	got := snapshot(base)
	for s := range want {
		if !rowsEqual(want[s], got[s]) {
			t.Fatalf("clone mutation leaked into original at switch %d", s)
		}
	}
	checkPool(t, "original", base)
	checkPool(t, "clone", cl)
}
