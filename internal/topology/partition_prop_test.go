package topology

import (
	"testing"
	"time"
)

// TestPartitionProperties checks the partition contract on generated
// meshes: every switch lands in exactly one valid region, no region is
// empty, CutLinks is exactly the ascending list of region-crossing
// links, and MinCutDelay is their minimum propagation delay.
func TestPartitionProperties(t *testing.T) {
	graphs := map[string]Graph{
		"ba-60":      BarabasiAlbert(60, 2, 3),
		"ba-150":     BarabasiAlbert(150, 3, 17),
		"waxman-90":  Waxman(90, 5),
		"waxman-250": Waxman(250, 31),
		"chain-40":   Chain(40),
	}
	for name, g := range graphs {
		c, err := g.Compile(eqDefaults())
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		for _, k := range []int{1, 2, 3, 5, 8} {
			p, err := c.Partition(k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			if p.K != k || len(p.Region) != c.Switches {
				t.Fatalf("%s k=%d: K=%d, %d regions assigned", name, k, p.K, len(p.Region))
			}
			size := make([]int, k)
			for s, r := range p.Region {
				if r < 0 || r >= k {
					t.Fatalf("%s k=%d: switch %d in region %d", name, k, s, r)
				}
				size[r]++
			}
			for r, n := range size {
				if n == 0 {
					t.Fatalf("%s k=%d: region %d empty", name, k, r)
				}
			}
			// CutLinks: exact, ascending, with the right delay minimum.
			wantCut := []int{}
			minDelay := time.Duration(0)
			for li, l := range c.Links {
				if p.Region[l.A] != p.Region[l.B] {
					wantCut = append(wantCut, li)
					if d := l.Delay; minDelay == 0 || d < minDelay {
						minDelay = d
					}
				}
			}
			if len(wantCut) != len(p.CutLinks) {
				t.Fatalf("%s k=%d: %d cut links, want %d", name, k, len(p.CutLinks), len(wantCut))
			}
			for i := range wantCut {
				if p.CutLinks[i] != wantCut[i] {
					t.Fatalf("%s k=%d: CutLinks[%d]=%d, want %d", name, k, i, p.CutLinks[i], wantCut[i])
				}
			}
			if p.MinCutDelay != minDelay {
				t.Fatalf("%s k=%d: MinCutDelay=%v, want %v", name, k, p.MinCutDelay, minDelay)
			}
		}
	}
}
