package topology

import "slices"

// slotLocal marks a forwarding-row interval whose hosts are attached to
// the switch itself. Non-negative slot values index the switch's CSR
// half-edges relative to adjOff[s]: the actual link direction is
// adjHop[adjOff[s]+slot]. Storing slots instead of packed global hops
// is what makes rows shareable — on a chain every host-less switch
// between two clusters forwards "left hosts via slot 0, right hosts via
// slot 1" and all of them intern to a single pool row.
const slotLocal = int32(-1)

// rowPool hash-conses per-switch forwarding rows. A row is a pair of
// equal-length int32 slices: ascending host-interval ends (the last
// always equals the host count) and the adjacency slot each interval
// forwards through. Rows are content-hashed, refcounted (one reference
// per switch pointing at the row), and recycled through a free list
// when ApplyLinkChange repaints switches. Interning is always serial —
// compile freezes switch rows in switch order, ApplyLinkChange splices
// in switch order — so row ids are deterministic and independent of the
// route-compiler worker count.
type rowPool struct {
	ends  [][]int32
	slots [][]int32
	refs  []int32
	hash  []uint64
	index map[uint64][]int32 // content hash -> row ids with that hash
	free  []int32            // dead row ids available for reuse
}

func newRowPool() *rowPool {
	return &rowPool{index: make(map[uint64][]int32)}
}

// hashRow mixes a row's content FNV-1a style. ends and slots always
// have equal length, so interleaving the pairs needs no separator.
func hashRow(ends, slots []int32) uint64 {
	h := uint64(1469598103934665603)
	for i := range ends {
		h ^= uint64(uint32(ends[i]))
		h *= 1099511628211
		h ^= uint64(uint32(slots[i]))
		h *= 1099511628211
	}
	return h
}

// intern returns the id of the row with exactly this content, creating
// it if needed, and takes one reference.
func (p *rowPool) intern(ends, slots []int32) int32 {
	h := hashRow(ends, slots)
	for _, id := range p.index[h] {
		if slices.Equal(p.ends[id], ends) && slices.Equal(p.slots[id], slots) {
			p.refs[id]++
			return id
		}
	}
	var id int32
	if n := len(p.free); n > 0 {
		id = p.free[n-1]
		p.free = p.free[:n-1]
		p.ends[id] = append(p.ends[id][:0], ends...)
		p.slots[id] = append(p.slots[id][:0], slots...)
	} else {
		id = int32(len(p.ends))
		p.ends = append(p.ends, slices.Clone(ends))
		p.slots = append(p.slots, slices.Clone(slots))
		p.refs = append(p.refs, 0)
		p.hash = append(p.hash, 0)
	}
	p.refs[id] = 1
	p.hash[id] = h
	p.index[h] = append(p.index[h], id)
	return id
}

// release drops one reference. At zero the row leaves the index and its
// id (with its backing arrays) joins the free list.
func (p *rowPool) release(id int32) {
	p.refs[id]--
	if p.refs[id] > 0 {
		return
	}
	h := p.hash[id]
	chain := p.index[h]
	for i, cid := range chain {
		if cid == id {
			chain[i] = chain[len(chain)-1]
			chain = chain[:len(chain)-1]
			break
		}
	}
	if len(chain) == 0 {
		delete(p.index, h)
	} else {
		p.index[h] = chain
	}
	p.free = append(p.free, id)
}

// rows returns the number of live (referenced) rows.
func (p *rowPool) rows() int {
	n := 0
	for _, r := range p.refs {
		if r > 0 {
			n++
		}
	}
	return n
}

// clone deep-copies the pool. Inner slices are copied too: a freed row's
// backing array is overwritten on reuse, so clones may not share any.
func (p *rowPool) clone() *rowPool {
	q := &rowPool{
		ends:  make([][]int32, len(p.ends)),
		slots: make([][]int32, len(p.slots)),
		refs:  slices.Clone(p.refs),
		hash:  slices.Clone(p.hash),
		index: make(map[uint64][]int32, len(p.index)),
		free:  slices.Clone(p.free),
	}
	for i := range p.ends {
		q.ends[i] = slices.Clone(p.ends[i])
		q.slots[i] = slices.Clone(p.slots[i])
	}
	for h, chain := range p.index {
		q.index[h] = slices.Clone(chain)
	}
	return q
}
