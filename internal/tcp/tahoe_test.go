package tcp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

// pipe is a one-way ideal channel: every accepted packet reaches the
// peer's Handle after a fixed delay, unless the drop filter eats it.
type pipe struct {
	eng   *sim.Engine
	delay time.Duration
	dst   interface{ Handle(*packet.Packet) }
	drop  func(*packet.Packet) bool
	sent  []*packet.Packet
}

func (pi *pipe) Send(p *packet.Packet) bool {
	pi.sent = append(pi.sent, p)
	if pi.drop != nil && pi.drop(p) {
		return true // silently lost in the network
	}
	if pi.dst == nil {
		return true // blackhole pipe: used by sender-only tests
	}
	pi.eng.Schedule(pi.delay, func() { pi.dst.Handle(p) })
	return true
}

// newPair wires a sender and receiver through two pipes with the given
// one-way delay.
func newPair(eng *sim.Engine, delay time.Duration, scfg SenderConfig, rcfg ReceiverConfig) (*Sender, *Receiver, *pipe, *pipe) {
	ids := &IDGen{}
	fwd := &pipe{eng: eng, delay: delay}
	rev := &pipe{eng: eng, delay: delay}
	s := NewSender(eng, fwd, ids, scfg)
	r := NewReceiver(eng, rev, ids, rcfg)
	fwd.dst = r
	rev.dst = s
	return s, r, fwd, rev
}

func defaultSenderCfg() SenderConfig {
	return SenderConfig{Conn: 1, SrcHost: 1, DstHost: 2, MaxWnd: 1000, DataSize: 500}
}

func defaultReceiverCfg() ReceiverConfig {
	return ReceiverConfig{Conn: 1, SrcHost: 2, DstHost: 1, AckSize: 50}
}

func TestSlowStartDoublesPerRoundTrip(t *testing.T) {
	eng := sim.New()
	s, _, fwd, _ := newPair(eng, 10*time.Millisecond, defaultSenderCfg(), defaultReceiverCfg())
	s.Start()
	// RTT = 20 ms. After k round trips with no loss, cwnd = 2^k.
	eng.RunUntil(19 * time.Millisecond)
	if got := len(fwd.sent); got != 1 {
		t.Fatalf("sent %d packets in first RTT, want 1", got)
	}
	eng.RunUntil(39 * time.Millisecond)
	if got := len(fwd.sent); got != 3 { // +2 in second round trip
		t.Fatalf("sent %d packets after 2nd RTT, want 3", got)
	}
	eng.RunUntil(59 * time.Millisecond)
	if got := len(fwd.sent); got != 7 {
		t.Fatalf("sent %d packets after 3rd RTT, want 7", got)
	}
	if s.Cwnd() != 4 {
		t.Fatalf("cwnd = %v, want 4", s.Cwnd())
	}
}

func TestCongestionAvoidanceModifiedIncrease(t *testing.T) {
	eng := sim.New()
	cfg := defaultSenderCfg()
	s := NewSender(eng, &pipe{eng: eng}, &IDGen{}, cfg)
	s.cwnd = 4
	s.ssthresh = 2 // force congestion avoidance
	// One epoch: 4 ACKs at cwnd 4 should raise floor(cwnd) by exactly 1.
	for i := 0; i < 4; i++ {
		s.openWindow()
	}
	if math.Floor(s.cwnd) != 5 {
		t.Fatalf("after 4 CA ACKs cwnd = %v, want floor exactly 5", s.cwnd)
	}
	// And the next 5 ACKs raise it to 6: the paper's modified rule adds
	// one full packet per epoch with no anomaly.
	for i := 0; i < 5; i++ {
		s.openWindow()
	}
	if math.Floor(s.cwnd) != 6 {
		t.Fatalf("after 5 more CA ACKs cwnd = %v, want floor exactly 6", s.cwnd)
	}
}

func TestOriginalIncreaseHasAnomaly(t *testing.T) {
	eng := sim.New()
	cfg := defaultSenderCfg()
	cfg.OriginalIncrease = true
	s := NewSender(eng, &pipe{eng: eng}, &IDGen{}, cfg)
	s.cwnd = 4
	s.ssthresh = 2
	for i := 0; i < 4; i++ {
		s.openWindow()
	}
	// 4 + 1/4 + 1/4.25 + ... < 5: the anomaly the paper removed.
	if math.Floor(s.cwnd) != 4 {
		t.Fatalf("original rule after 4 ACKs: cwnd = %v, want floor 4 (anomaly)", s.cwnd)
	}
}

func TestCollapseFormula(t *testing.T) {
	eng := sim.New()
	s := NewSender(eng, &pipe{eng: eng}, &IDGen{}, defaultSenderCfg())
	s.cwnd = 17
	s.collapse("dupack")
	if s.cwnd != 1 {
		t.Fatalf("cwnd = %v after collapse, want 1", s.cwnd)
	}
	if s.ssthresh != 8.5 {
		t.Fatalf("ssthresh = %v, want 8.5", s.ssthresh)
	}
	// Second collapse while cwnd is 1: ssthresh floors at 2 — the
	// paper's footnote 9, which drives the out-of-phase mode's slow
	// square-root window regrowth.
	s.collapse("timeout")
	if s.ssthresh != 2 {
		t.Fatalf("ssthresh = %v after double loss, want 2", s.ssthresh)
	}
}

func TestFastRetransmitOnThirdDupAck(t *testing.T) {
	eng := sim.New()
	fwd := &pipe{eng: eng}
	s := NewSender(eng, fwd, &IDGen{}, defaultSenderCfg())
	s.Start() // sends seq 0
	// Grow the window so several packets are outstanding.
	for ack := 1; ack <= 5; ack++ {
		s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: ack, Size: 50})
	}
	sentBefore := len(fwd.sent)
	cwndBefore := s.Cwnd()
	// Two dup ACKs: nothing happens.
	for i := 0; i < 2; i++ {
		s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: 5, Size: 50})
	}
	if len(fwd.sent) != sentBefore || s.Cwnd() != cwndBefore {
		t.Fatal("sender reacted before the third dup ACK")
	}
	// Third dup ACK: fast retransmit of seq 5 and collapse.
	s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: 5, Size: 50})
	if len(fwd.sent) != sentBefore+1 {
		t.Fatalf("sent %d, want one retransmission", len(fwd.sent)-sentBefore)
	}
	rtx := fwd.sent[len(fwd.sent)-1]
	if rtx.Seq != 5 || !rtx.Retransmit {
		t.Fatalf("retransmission = %v, want retransmitted seq 5", rtx)
	}
	if s.Cwnd() != 1 {
		t.Fatalf("cwnd = %v after fast retransmit, want 1 (Tahoe)", s.Cwnd())
	}
	if s.Stats().FastRetransmits != 1 {
		t.Fatalf("FastRetransmits = %d, want 1", s.Stats().FastRetransmits)
	}
	// Fourth and fifth dup ACKs must NOT retrigger.
	for i := 0; i < 2; i++ {
		s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: 5, Size: 50})
	}
	if s.Stats().FastRetransmits != 1 || len(fwd.sent) != sentBefore+1 {
		t.Fatal("extra dup ACKs retriggered fast retransmit")
	}
}

func TestTimeoutGoBackNAndBackoff(t *testing.T) {
	eng := sim.New()
	fwd := &pipe{eng: eng, drop: func(*packet.Packet) bool { return true }}
	s := NewSender(eng, fwd, &IDGen{}, defaultSenderCfg())
	s.Start() // seq 0 sent, lost
	// No RTT samples yet: RTO = 6 ticks = 3 s on the 500 ms grid.
	eng.RunUntil(3100 * time.Millisecond)
	if s.Stats().Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", s.Stats().Timeouts)
	}
	if got := len(fwd.sent); got != 2 {
		t.Fatalf("sent = %d, want original + 1 retransmission", got)
	}
	if last := fwd.sent[len(fwd.sent)-1]; last.Seq != 0 || !last.Retransmit {
		t.Fatalf("retransmission = %v", last)
	}
	// Second timeout is backed off: 6 ticks doubled = 6 s later.
	eng.RunUntil(8 * time.Second)
	if s.Stats().Timeouts != 1 {
		t.Fatalf("premature second timeout (timeouts = %d)", s.Stats().Timeouts)
	}
	eng.RunUntil(10 * time.Second)
	if s.Stats().Timeouts != 2 {
		t.Fatalf("timeouts = %d, want 2 by 10s", s.Stats().Timeouts)
	}
}

func TestTimeoutResendsWholeWindowGoBackN(t *testing.T) {
	eng := sim.New()
	dropAll := true
	var fwd *pipe
	fwd = &pipe{eng: eng, delay: time.Millisecond, drop: func(p *packet.Packet) bool { return dropAll }}
	rev := &pipe{eng: eng, delay: time.Millisecond}
	ids := &IDGen{}
	scfg := defaultSenderCfg()
	scfg.MaxWnd = 20 // keep the event count bounded on these ideal pipes
	s := NewSender(eng, fwd, ids, scfg)
	r := NewReceiver(eng, rev, ids, defaultReceiverCfg())
	fwd.dst = r
	rev.dst = s
	s.Start()
	// Hand-feed ACKs to open the window, then lose everything.
	dropAll = false
	eng.RunUntil(100 * time.Millisecond) // a few RTTs of slow start
	dropAll = true
	eng.RunUntil(200 * time.Millisecond) // the in-flight window is lost
	unaAtLoss := s.Una()
	dropAll = false
	eng.RunUntil(30 * time.Second) // let the timeout fire and recovery run
	if s.Stats().Timeouts == 0 {
		t.Fatal("no timeout despite losing the window")
	}
	if s.Una() <= unaAtLoss {
		t.Fatalf("una did not advance after recovery: %d", s.Una())
	}
	if r.RcvNxt() != s.Una() {
		t.Fatalf("receiver rcvNxt %d != sender una %d", r.RcvNxt(), s.Una())
	}
}

func TestKarnNoSampleFromRetransmission(t *testing.T) {
	eng := sim.New()
	fwd := &pipe{eng: eng}
	s := NewSender(eng, fwd, &IDGen{}, defaultSenderCfg())
	s.Start()
	eng.RunUntil(3100 * time.Millisecond) // timeout, retransmit seq 0
	if s.Stats().Retransmits == 0 {
		t.Fatal("expected a retransmission")
	}
	// ACK the retransmitted segment "immediately": must not produce an
	// RTT sample.
	s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: 1, Size: 50})
	if s.rtt.sampled {
		t.Fatal("RTT sampled from a retransmitted segment (Karn violation)")
	}
}

func TestFixedWindowNeverAdjusts(t *testing.T) {
	eng := sim.New()
	cfg := defaultSenderCfg()
	cfg.FixedWnd = 7
	s, r, fwd, _ := newPair(eng, 5*time.Millisecond, cfg, defaultReceiverCfg())
	s.Start()
	eng.RunUntil(4 * time.Millisecond)
	if got := len(fwd.sent); got != 7 {
		t.Fatalf("fixed-window sender emitted %d packets up front, want 7", got)
	}
	eng.RunUntil(5 * time.Second)
	if s.Wnd() != 7 {
		t.Fatalf("Wnd = %d, want 7", s.Wnd())
	}
	if s.Stats().Collapses != 0 {
		t.Fatal("fixed-window sender collapsed")
	}
	if r.RcvNxt() == 0 {
		t.Fatal("no data delivered")
	}
	// Exactly 7 packets in flight at all times: sent - acked ∈ [0, 7].
	if out := s.nxt - s.Una(); out != 7 {
		t.Fatalf("outstanding = %d, want 7 (saturated fixed window)", out)
	}
}

func TestPacedSenderSpacing(t *testing.T) {
	eng := sim.New()
	cfg := defaultSenderCfg()
	cfg.FixedWnd = 10
	cfg.Pace = 80 * time.Millisecond
	var times []time.Duration
	fwd := &pipe{eng: eng}
	s := NewSender(eng, fwd, &IDGen{}, cfg)
	s.OnSend = func(*packet.Packet) { times = append(times, eng.Now()) }
	s.Start()
	eng.RunUntil(2 * time.Second)
	if len(times) != 10 {
		t.Fatalf("sent %d packets, want 10", len(times))
	}
	for i := 1; i < len(times); i++ {
		if d := times[i] - times[i-1]; d < cfg.Pace {
			t.Fatalf("packets %d,%d spaced %v < pace %v", i-1, i, d, cfg.Pace)
		}
	}
}

func TestReceiverCumulativeAckAfterHole(t *testing.T) {
	eng := sim.New()
	rev := &pipe{eng: eng}
	r := NewReceiver(eng, rev, &IDGen{}, defaultReceiverCfg())
	data := func(seq int) *packet.Packet {
		return &packet.Packet{Kind: packet.Data, Conn: 1, Seq: seq, Size: 500}
	}
	r.Handle(data(0)) // ack 1
	r.Handle(data(2)) // hole at 1: dup ack 1
	r.Handle(data(3)) // dup ack 1
	acks := func() []int {
		var out []int
		for _, p := range rev.sent {
			out = append(out, p.Seq)
		}
		return out
	}
	want := []int{1, 1, 1}
	got := acks()
	if len(got) != len(want) {
		t.Fatalf("acks = %v, want %v", got, want)
	}
	r.Handle(data(1)) // fills the hole: cumulative ack jumps to 4
	got = acks()
	if got[len(got)-1] != 4 {
		t.Fatalf("after hole filled acks = %v, want last = 4", got)
	}
	if r.Stats().DataReceived != 4 {
		t.Fatalf("DataReceived = %d, want 4", r.Stats().DataReceived)
	}
}

func TestReceiverDuplicateDataAckedImmediately(t *testing.T) {
	eng := sim.New()
	rev := &pipe{eng: eng}
	r := NewReceiver(eng, rev, &IDGen{}, defaultReceiverCfg())
	d := &packet.Packet{Kind: packet.Data, Conn: 1, Seq: 0, Size: 500}
	r.Handle(d)
	r.Handle(&packet.Packet{Kind: packet.Data, Conn: 1, Seq: 0, Size: 500})
	if r.Stats().DupData != 1 {
		t.Fatalf("DupData = %d, want 1", r.Stats().DupData)
	}
	if len(rev.sent) != 2 || rev.sent[1].Seq != 1 {
		t.Fatalf("dup data not acked immediately: %v", rev.sent)
	}
}

func TestDelayedAckCombinesPairs(t *testing.T) {
	eng := sim.New()
	rev := &pipe{eng: eng}
	cfg := defaultReceiverCfg()
	cfg.DelayedAck = true
	r := NewReceiver(eng, rev, &IDGen{}, cfg)
	r.Handle(&packet.Packet{Kind: packet.Data, Conn: 1, Seq: 0, Size: 500})
	if len(rev.sent) != 0 {
		t.Fatal("first packet acked immediately despite delayed-ACK")
	}
	r.Handle(&packet.Packet{Kind: packet.Data, Conn: 1, Seq: 1, Size: 500})
	if len(rev.sent) != 1 || rev.sent[0].Seq != 2 {
		t.Fatalf("second packet should flush one combined ACK: %v", rev.sent)
	}
	if r.Stats().AcksCombined != 1 {
		t.Fatalf("AcksCombined = %d, want 1", r.Stats().AcksCombined)
	}
}

func TestDelayedAckTimerFlushOnFastGrid(t *testing.T) {
	eng := sim.New()
	rev := &pipe{eng: eng}
	cfg := defaultReceiverCfg()
	cfg.DelayedAck = true
	r := NewReceiver(eng, rev, &IDGen{}, cfg)
	var flushedAt time.Duration
	eng.ScheduleAt(70*time.Millisecond, func() {
		r.Handle(&packet.Packet{Kind: packet.Data, Conn: 1, Seq: 0, Size: 500})
	})
	eng.RunUntil(time.Second)
	if len(rev.sent) != 1 {
		t.Fatalf("acks sent = %d, want 1 (timer flush)", len(rev.sent))
	}
	flushedAt = 200 * time.Millisecond // next fast tick after 70 ms
	_ = flushedAt
	if r.Stats().AcksFlushedByTimer != 1 {
		t.Fatalf("AcksFlushedByTimer = %d, want 1", r.Stats().AcksFlushedByTimer)
	}
}

func TestDelayedAckOutOfOrderAcksImmediately(t *testing.T) {
	eng := sim.New()
	rev := &pipe{eng: eng}
	cfg := defaultReceiverCfg()
	cfg.DelayedAck = true
	r := NewReceiver(eng, rev, &IDGen{}, cfg)
	r.Handle(&packet.Packet{Kind: packet.Data, Conn: 1, Seq: 2, Size: 500})
	if len(rev.sent) != 1 || rev.sent[0].Seq != 0 {
		t.Fatalf("out-of-order data must ACK immediately: %v", rev.sent)
	}
}

// Integration property: over a lossy channel, the connection remains
// reliable — every byte up to the final una was delivered in order — for
// arbitrary loss seeds.
func TestReliabilityUnderRandomLossProperty(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 42, 1991}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.New()
		fwd := &pipe{eng: eng, delay: 20 * time.Millisecond,
			drop: func(p *packet.Packet) bool { return rng.Float64() < 0.1 }}
		rev := &pipe{eng: eng, delay: 20 * time.Millisecond}
		ids := &IDGen{}
		scfg := defaultSenderCfg()
		scfg.MaxWnd = 50
		s := NewSender(eng, fwd, ids, scfg)
		r := NewReceiver(eng, rev, ids, defaultReceiverCfg())
		prevNxt := 0
		fwd.dst = handlerFunc(func(p *packet.Packet) {
			r.Handle(p)
			if r.RcvNxt() < prevNxt {
				t.Fatalf("seed %d: rcvNxt went backwards: %d -> %d", seed, prevNxt, r.RcvNxt())
			}
			prevNxt = r.RcvNxt()
		})
		rev.dst = s
		s.Start()
		eng.RunUntil(5 * time.Minute)
		if s.Una() < 50 {
			t.Fatalf("seed %d: only %d packets acked in 5 min", seed, s.Una())
		}
		if r.RcvNxt() < s.Una() {
			t.Fatalf("seed %d: acked data the receiver never got (una=%d rcvNxt=%d)",
				seed, s.Una(), r.RcvNxt())
		}
	}
}

type handlerFunc func(*packet.Packet)

func (f handlerFunc) Handle(p *packet.Packet) { f(p) }

func TestSenderRejectsWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sender accepted a data packet")
		}
	}()
	eng := sim.New()
	s := NewSender(eng, &pipe{eng: eng}, &IDGen{}, defaultSenderCfg())
	s.Handle(&packet.Packet{Kind: packet.Data})
}

func TestReceiverRejectsWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("receiver accepted an ACK")
		}
	}()
	eng := sim.New()
	r := NewReceiver(eng, &pipe{eng: eng}, &IDGen{}, defaultReceiverCfg())
	r.Handle(&packet.Packet{Kind: packet.Ack})
}
