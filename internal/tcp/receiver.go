package tcp

import (
	"fmt"
	"sort"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

// ReceiverConfig parameterizes one TCP data sink.
type ReceiverConfig struct {
	// Conn is the connection identifier shared with the sender.
	Conn int
	// SrcHost is the host this receiver lives on; DstHost is the data
	// sender's host (where ACKs are addressed).
	SrcHost, DstHost int
	// AckSize is the ACK packet size in bytes (50 in the paper; 0 for
	// the zero-length-ACK conjecture experiments).
	AckSize int
	// DelayedAck enables the BSD delayed-ACK option: hold the ACK for a
	// first unacknowledged data packet until a second arrives or the
	// 200 ms fast timer flushes it (§2.1, §5).
	DelayedAck bool
	// Pool, when non-nil, recycles packets: outgoing ACKs are drawn from
	// it and arriving data segments are released back to it once Handle
	// has consumed them (the receiver is the segment's terminal sink). A
	// nil pool allocates per packet, the pre-pool behavior.
	Pool *packet.Pool
}

// ReceiverStats counts receiver-side events.
type ReceiverStats struct {
	DataReceived       uint64 // in-window data segments accepted
	DupData            uint64 // duplicate segments (below or already buffered)
	AcksSent           uint64
	AcksCombined       uint64 // ACKs saved by the delayed-ACK option
	AcksFlushedByTimer uint64
}

// Receiver is the data sink half of a TCP connection: it reassembles the
// sequence space and generates cumulative acknowledgments.
type Receiver struct {
	eng *sim.Engine
	net Network
	ids *IDGen
	cfg ReceiverConfig

	rcvNxt int
	// oob holds the sequence numbers buffered out of order above rcvNxt,
	// sorted ascending. It stays nil until the first hole, so a
	// connection that never reorders allocates no reassembly state —
	// at 10⁵ concurrent connections that is the difference between a
	// map per flow and nothing. The set is bounded by the window, so a
	// sorted slice also beats a map on bytes per buffered segment.
	oob      []int
	pending  int // data packets not yet acknowledged (delayed-ACK state)
	delTimer *sim.Timer

	stats ReceiverStats

	// OnAckSent, if set, observes every ACK transmitted.
	OnAckSent func(p *packet.Packet)
}

// NewReceiver creates a receiver ready to accept data.
func NewReceiver(eng *sim.Engine, net Network, ids *IDGen, cfg ReceiverConfig) *Receiver {
	if cfg.AckSize < 0 {
		panic(fmt.Sprintf("tcp: receiver conn %d has negative AckSize", cfg.Conn))
	}
	r := &Receiver{eng: eng, net: net, ids: ids, cfg: cfg}
	r.delTimer = sim.NewTimer(eng, r.flushDelayedAck)
	return r
}

// Stats returns a copy of the receiver counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// RcvNxt returns the next expected sequence number (the cumulative
// acknowledgment value).
func (r *Receiver) RcvNxt() int { return r.rcvNxt }

// Handle implements node.Handler for arriving data segments. The
// receiver is the segment's terminal sink: once Handle returns, the
// packet goes back to the pool — only its sequence number survives, in
// the reassembly state.
func (r *Receiver) Handle(p *packet.Packet) {
	r.handleData(p)
	r.cfg.Pool.Put(p)
}

func (r *Receiver) handleData(p *packet.Packet) {
	if p.Kind != packet.Data {
		panic(fmt.Sprintf("tcp: receiver conn %d got %v", r.cfg.Conn, p))
	}
	switch {
	case p.Seq < r.rcvNxt || r.oobHas(p.Seq):
		// Duplicate: acknowledge immediately so the sender sees it.
		r.stats.DupData++
		r.sendAck()
	case p.Seq == r.rcvNxt:
		r.stats.DataReceived++
		r.rcvNxt++
		drained := false
		n := 0
		for n < len(r.oob) && r.oob[n] == r.rcvNxt {
			n++
			r.rcvNxt++
			drained = true
		}
		if n > 0 {
			// Copy-down keeps the backing array for the next burst.
			r.oob = append(r.oob[:0], r.oob[n:]...)
		}
		if !r.cfg.DelayedAck || drained {
			// Filling a hole acknowledges immediately (the kernel sets
			// ACKNOW while the reassembly queue drains).
			r.sendAck()
			return
		}
		r.pending++
		if r.pending >= 2 {
			r.stats.AcksCombined++
			r.sendAck()
			return
		}
		if !r.delTimer.Armed() {
			r.delTimer.ResetAt(gridDeadline(r.eng.Now(), 1, FastTick))
		}
	default: // p.Seq > r.rcvNxt: out of order
		r.stats.DataReceived++
		r.oobAdd(p.Seq)
		// Out-of-order arrival forces an immediate (duplicate) ACK —
		// this is what feeds the sender's fast retransmit.
		r.sendAck()
	}
}

// oobHas reports whether seq is buffered out of order.
func (r *Receiver) oobHas(seq int) bool {
	i := sort.SearchInts(r.oob, seq)
	return i < len(r.oob) && r.oob[i] == seq
}

// oobAdd inserts seq into the sorted out-of-order set; the caller has
// already ruled out duplicates.
func (r *Receiver) oobAdd(seq int) {
	i := sort.SearchInts(r.oob, seq)
	r.oob = append(r.oob, 0)
	copy(r.oob[i+1:], r.oob[i:])
	r.oob[i] = seq
}

// flushDelayedAck is the 200 ms fast-timer flush.
func (r *Receiver) flushDelayedAck() {
	if r.pending > 0 {
		r.stats.AcksFlushedByTimer++
		r.sendAck()
	}
}

// sendAck transmits a cumulative acknowledgment for everything up to
// rcvNxt and clears any delayed-ACK state.
func (r *Receiver) sendAck() {
	r.pending = 0
	r.delTimer.Stop()
	p := r.cfg.Pool.Get()
	p.ID = r.ids.Next()
	p.Kind = packet.Ack
	p.Conn = r.cfg.Conn
	p.Src = r.cfg.SrcHost
	p.Dst = r.cfg.DstHost
	p.Seq = r.rcvNxt
	p.Size = r.cfg.AckSize
	r.stats.AcksSent++
	if r.OnAckSent != nil {
		r.OnAckSent(p)
	}
	r.net.Send(p)
}
