package tcp

import (
	"testing"
	"time"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

func renoSenderWithWindow(t *testing.T) (*Sender, *pipe, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	cfg := defaultSenderCfg()
	cfg.Reno = true
	fwd := &pipe{eng: eng}
	s := NewSender(eng, fwd, &IDGen{}, cfg)
	s.Start()
	// Open the window to 10 with clean ACKs.
	for ack := 1; ack <= 9; ack++ {
		s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: ack, Size: 50})
	}
	return s, fwd, eng
}

func dupAck(s *Sender, seq int) {
	s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: seq, Size: 50})
}

func TestRenoFastRecoveryEntry(t *testing.T) {
	s, fwd, _ := renoSenderWithWindow(t)
	cwndBefore := s.Cwnd() // 10
	sentBefore := len(fwd.sent)
	for i := 0; i < 3; i++ {
		dupAck(s, 9)
	}
	// ssthresh = cwnd/2 = 5; cwnd = ssthresh + 3 = 8; head retransmitted.
	if s.Ssthresh() != cwndBefore/2 {
		t.Fatalf("ssthresh = %v, want %v", s.Ssthresh(), cwndBefore/2)
	}
	if s.Cwnd() != cwndBefore/2+3 {
		t.Fatalf("cwnd = %v, want %v (no collapse to 1)", s.Cwnd(), cwndBefore/2+3)
	}
	if len(fwd.sent) != sentBefore+1 {
		t.Fatalf("sent %d extra packets, want 1 retransmission", len(fwd.sent)-sentBefore)
	}
	rtx := fwd.sent[len(fwd.sent)-1]
	if rtx.Seq != 9 || !rtx.Retransmit {
		t.Fatalf("retransmission = %v", rtx)
	}
}

func TestRenoWindowInflationAndDeflation(t *testing.T) {
	s, _, _ := renoSenderWithWindow(t)
	for i := 0; i < 3; i++ {
		dupAck(s, 9)
	}
	inRecoveryCwnd := s.Cwnd() // 8
	// Two more duplicates inflate by one each.
	dupAck(s, 9)
	dupAck(s, 9)
	if s.Cwnd() != inRecoveryCwnd+2 {
		t.Fatalf("cwnd = %v after 2 extra dups, want %v", s.Cwnd(), inRecoveryCwnd+2)
	}
	// New data acknowledged: deflate to ssthresh exactly.
	s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: s.nxt, Size: 50})
	if s.Cwnd() != s.Ssthresh() {
		t.Fatalf("cwnd = %v after recovery, want ssthresh %v", s.Cwnd(), s.Ssthresh())
	}
	if s.inRecovery {
		t.Fatal("still in recovery after new ACK")
	}
	// Subsequent ACKs resume congestion avoidance (cwnd ≥ ssthresh).
	before := s.Cwnd()
	s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: s.nxt, Size: 50})
	_ = before
}

func TestRenoTimeoutStillCollapses(t *testing.T) {
	eng := sim.New()
	cfg := defaultSenderCfg()
	cfg.Reno = true
	fwd := &pipe{eng: eng, drop: func(*packet.Packet) bool { return true }}
	s := NewSender(eng, fwd, &IDGen{}, cfg)
	s.Start()
	eng.RunUntil(4 * time.Second)
	if s.Stats().Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", s.Stats().Timeouts)
	}
	if s.Cwnd() != 1 {
		t.Fatalf("cwnd = %v after timeout, want 1 even under Reno", s.Cwnd())
	}
}

func TestRenoExtraDupsWithoutRecoveryIgnored(t *testing.T) {
	// A Tahoe sender must not inflate on dups past the threshold.
	eng := sim.New()
	fwd := &pipe{eng: eng}
	s := NewSender(eng, fwd, &IDGen{}, defaultSenderCfg())
	s.Start()
	for ack := 1; ack <= 9; ack++ {
		s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: ack, Size: 50})
	}
	for i := 0; i < 6; i++ {
		dupAck(s, 9)
	}
	if s.Cwnd() != 1 {
		t.Fatalf("Tahoe cwnd = %v after extra dups, want 1", s.Cwnd())
	}
}

// End-to-end: a Reno connection over a lossy path stays reliable and
// recovers without timeouts for isolated losses.
func TestRenoEndToEndSingleLossNoTimeout(t *testing.T) {
	eng := sim.New()
	dropOnce := true
	fwd := &pipe{eng: eng, delay: 10 * time.Millisecond,
		drop: func(p *packet.Packet) bool {
			if dropOnce && p.Seq == 30 && !p.Retransmit {
				dropOnce = false
				return true
			}
			return false
		}}
	rev := &pipe{eng: eng, delay: 10 * time.Millisecond}
	ids := &IDGen{}
	cfg := defaultSenderCfg()
	cfg.Reno = true
	cfg.MaxWnd = 30
	s := NewSender(eng, fwd, ids, cfg)
	r := NewReceiver(eng, rev, ids, defaultReceiverCfg())
	fwd.dst = r
	rev.dst = s
	s.Start()
	eng.RunUntil(30 * time.Second)
	if s.Stats().FastRetransmits != 1 {
		t.Fatalf("fast retransmits = %d, want 1", s.Stats().FastRetransmits)
	}
	if s.Stats().Timeouts != 0 {
		t.Fatalf("timeouts = %d, want 0 (fast recovery should suffice)", s.Stats().Timeouts)
	}
	if r.RcvNxt() < 100 {
		t.Fatalf("receiver only got %d packets", r.RcvNxt())
	}
}
