package tcp

import (
	"fmt"
	"math"
	"time"

	"tahoedyn/internal/obs"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

// SenderConfig parameterizes one TCP data source.
type SenderConfig struct {
	// Conn is the connection identifier shared with the receiver.
	Conn int
	// SrcHost and DstHost are the host IDs of the data source and sink.
	SrcHost, DstHost int
	// MaxWnd is the receiver-advertised maximum window in packets
	// (maxwnd in the paper; 1000 in all its configurations).
	MaxWnd int
	// DataSize is the data packet size in bytes (500 in the paper).
	DataSize int
	// FixedWnd, when positive, disables congestion control entirely and
	// uses a constant window of that many packets (Figs. 8 and 9). A
	// fixed-window sender is *pure* sliding-window flow control, the
	// idealized system of the paper's §4.1: it neither retransmits nor
	// reacts to duplicate ACKs, which is sound because the fixed-window
	// experiments run with infinite buffers and error-free links where
	// nothing is ever lost.
	FixedWnd int
	// OriginalIncrease selects the unmodified BSD congestion avoidance
	// rule cwnd += 1/cwnd instead of the paper's 1/floor(cwnd).
	OriginalIncrease bool
	// DupThreshold overrides the duplicate-ACK fast retransmit threshold;
	// zero means DefaultDupThreshold.
	DupThreshold int
	// Pace, when positive, spaces successive data transmissions at least
	// this far apart, turning the source into a *paced* algorithm in the
	// paper's terminology (§3.1). The paper conjectures that pacing
	// defeats clustering and hence ACK-compression; this knob lets the
	// ablation test that.
	Pace time.Duration
	// Reno enables 4.3-Reno fast recovery (the successor algorithm the
	// paper's reference [7] describes): on the third duplicate ACK the
	// window halves to ssthresh+3 instead of collapsing to one, inflates
	// by one per further duplicate, and deflates to ssthresh when new
	// data is acknowledged. Timeouts still collapse the window. This is
	// an extension used to test whether the paper's two-way phenomena
	// outlive Tahoe.
	Reno bool
	// Pool, when non-nil, recycles packets: outgoing segments are drawn
	// from it and arriving ACKs are released back to it once Handle has
	// consumed them (the sender is the ACK's terminal sink). A nil pool
	// allocates per packet, the pre-pool behavior.
	Pool *packet.Pool
}

// SenderStats counts sender-side events.
type SenderStats struct {
	DataSent        uint64 // segments handed to the network, incl. retransmissions
	Retransmits     uint64
	FastRetransmits uint64 // loss detections via duplicate ACKs
	Timeouts        uint64 // loss detections via the retransmission timer
	AcksReceived    uint64
	Collapses       uint64 // window collapses (congestion epochs entered)
}

// Sender is the data source half of a Tahoe TCP connection with an
// infinite amount of data to send (the paper's FTP-like source).
type Sender struct {
	eng *sim.Engine
	net Network
	ids *IDGen
	cfg SenderConfig

	una     int // lowest unacknowledged sequence number
	nxt     int // next sequence number to send
	maxSent int // highest sequence number ever sent + 1

	cwnd     float64
	ssthresh float64
	dupacks  int

	rtt      rttEstimator
	rtx      *sim.Timer
	timedSeq int // sequence being RTT-timed, -1 if none
	timedAt  time.Duration

	paceEvent *sim.Event
	paceFn    func() // pacing resume, bound once so pacing never allocates
	lastTxAt  time.Duration

	// Flag bytes grouped so they pack into one word instead of padding
	// out three; with 10⁵ concurrent senders the layout is measurable.
	inRecovery bool // Reno fast recovery in progress
	everSent   bool
	started    bool

	stats SenderStats

	// OnCwnd, if set, is called with the new congestion window after
	// every change.
	OnCwnd func(cwnd float64)
	// OnCollapse, if set, is called when a loss is detected and the
	// window collapses; cause is "dupack" or "timeout".
	OnCollapse func(cause string)
	// OnAckArrival, if set, is called for every arriving ACK — the probe
	// used by the ACK-compression analysis.
	OnAckArrival func(p *packet.Packet)
	// OnSend, if set, is called for every data segment transmitted.
	OnSend func(p *packet.Packet)
	// OnRTTSample, if set, observes every accepted round-trip-time
	// measurement (Karn-filtered) — the probe behind the effective-pipe
	// analysis of §4.3.1.
	OnRTTSample func(rtt time.Duration)

	// Obs, when non-nil, receives CwndChange and Timeout trace events at
	// location ObsLoc. Set both before the run starts (core does this
	// when observability is enabled).
	Obs    *obs.Tracer
	ObsLoc obs.Loc
}

// NewSender creates a sender. Call Start (directly or via the engine) to
// begin transmitting.
func NewSender(eng *sim.Engine, net Network, ids *IDGen, cfg SenderConfig) *Sender {
	if cfg.MaxWnd <= 0 {
		panic(fmt.Sprintf("tcp: sender conn %d needs MaxWnd > 0", cfg.Conn))
	}
	if cfg.DataSize <= 0 {
		panic(fmt.Sprintf("tcp: sender conn %d needs DataSize > 0", cfg.Conn))
	}
	s := &Sender{
		eng:      eng,
		net:      net,
		ids:      ids,
		cfg:      cfg,
		cwnd:     1,
		ssthresh: float64(cfg.MaxWnd),
		timedSeq: -1,
		lastTxAt: -time.Hour, // "long ago": first paced send is immediate
	}
	s.rtx = sim.NewTimer(eng, s.onTimeout)
	s.paceFn = func() {
		s.paceEvent = nil
		s.maybeSend()
	}
	return s
}

// Start begins transmission. The connection is assumed to preexist (no
// SYN exchange), exactly as in the paper's simulator.
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.maybeSend()
}

// Stats returns a copy of the sender counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// Cwnd returns the current congestion window (in packets, fractional).
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Ssthresh returns the current slow-start threshold.
func (s *Sender) Ssthresh() float64 { return s.ssthresh }

// Una returns the lowest unacknowledged sequence number — the connection
// goodput frontier.
func (s *Sender) Una() int { return s.una }

// Wnd returns the usable window in packets: the fixed window when
// configured, otherwise floor(min(cwnd, maxwnd)), at least 1.
func (s *Sender) Wnd() int {
	if s.cfg.FixedWnd > 0 {
		return s.cfg.FixedWnd
	}
	w := int(math.Min(s.cwnd, float64(s.cfg.MaxWnd)))
	if w < 1 {
		w = 1
	}
	return w
}

// Handle implements node.Handler for arriving ACKs. The sender is the
// ACK's terminal sink: once Handle returns, the packet goes back to the
// pool, so callbacks fired from here must not retain it.
func (s *Sender) Handle(p *packet.Packet) {
	s.handleAck(p)
	s.cfg.Pool.Put(p)
}

func (s *Sender) handleAck(p *packet.Packet) {
	if p.Kind != packet.Ack {
		panic(fmt.Sprintf("tcp: sender conn %d got %v", s.cfg.Conn, p))
	}
	s.stats.AcksReceived++
	if s.OnAckArrival != nil {
		s.OnAckArrival(p)
	}
	ack := p.Seq
	switch {
	case ack > s.una:
		s.onNewAck(ack)
	case ack == s.una && s.nxt > s.una && !s.pure():
		s.dupacks++
		switch {
		case s.dupacks == s.dupThreshold():
			s.lossDetected("dupack")
		case s.dupacks > s.dupThreshold() && s.inRecovery:
			// Reno window inflation: each further duplicate signals a
			// departure, letting one more segment out.
			s.cwnd++
			if max := float64(s.cfg.MaxWnd); s.cwnd > max {
				s.cwnd = max
			}
			s.cwndChanged()
			s.maybeSend()
		}
	default:
		// Stale ACK below una, or a pure fixed-window sender: ignore.
	}
}

// cwndChanged reports a congestion-window change to both observation
// channels: the OnCwnd hook and the structured trace. Every window
// mutation funnels through here so the two cannot drift apart.
func (s *Sender) cwndChanged() {
	if s.OnCwnd != nil {
		s.OnCwnd(s.cwnd)
	}
	if s.Obs != nil {
		s.Obs.Value(obs.CwndChange, s.eng.Now(), s.ObsLoc, s.cfg.Conn, s.cwnd)
	}
}

// pure reports whether the sender is the idealized fixed-window source
// with no loss recovery.
func (s *Sender) pure() bool { return s.cfg.FixedWnd > 0 }

func (s *Sender) dupThreshold() int {
	if s.cfg.DupThreshold > 0 {
		return s.cfg.DupThreshold
	}
	return DefaultDupThreshold
}

// onNewAck processes an acknowledgment of new data.
func (s *Sender) onNewAck(ack int) {
	if s.timedSeq >= 0 && ack > s.timedSeq {
		m := s.eng.Now() - s.timedAt
		s.rtt.sampleDuration(m)
		s.timedSeq = -1
		if s.OnRTTSample != nil {
			s.OnRTTSample(m)
		}
	}
	s.rtt.resetBackoff()
	if s.inRecovery {
		// Reno deflation: new data is acknowledged, recovery ends and
		// the inflated window snaps back to ssthresh.
		s.inRecovery = false
		s.cwnd = s.ssthresh
		s.cwndChanged()
	} else {
		s.openWindow()
	}
	s.una = ack
	s.dupacks = 0
	if s.pure() {
		s.maybeSend()
		return
	}
	if s.una >= s.nxt {
		s.rtx.Stop()
	} else {
		s.armTimer()
	}
	s.maybeSend()
}

// openWindow applies the Tahoe window increase for one ACK of new data.
func (s *Sender) openWindow() {
	if s.cfg.FixedWnd > 0 {
		return
	}
	if s.cwnd < s.ssthresh {
		s.cwnd++ // slow start: doubles per round trip
	} else if s.cfg.OriginalIncrease {
		s.cwnd += 1 / s.cwnd
	} else {
		s.cwnd += 1 / math.Floor(s.cwnd)
	}
	if max := float64(s.cfg.MaxWnd); s.cwnd > max {
		s.cwnd = max
	}
	s.cwndChanged()
}

// lossDetected performs the Tahoe loss response: collapse the window and
// retransmit the missing segment. After a timeout the kernel rewinds
// snd_nxt to snd_una (go-back-N); after a fast retransmit it resends only
// the head segment and restores snd_nxt, which is what keeping nxt does.
func (s *Sender) lossDetected(cause string) {
	if cause == "dupack" {
		s.stats.FastRetransmits++
		if s.cfg.Reno {
			s.enterRecovery()
			return
		}
	}
	s.inRecovery = false
	s.collapse(cause)
	if cause == "timeout" {
		s.nxt = s.una + 1 // resend from una; the head goes out right now
	}
	s.retransmitHead()
}

// enterRecovery performs the Reno fast-retransmit response: halve to
// ssthresh, set the window to ssthresh+3 (the three duplicates that
// triggered it are departures), and retransmit the head segment.
func (s *Sender) enterRecovery() {
	s.stats.Collapses++
	ss := math.Min(s.cwnd/2, float64(s.cfg.MaxWnd))
	if ss < 2 {
		ss = 2
	}
	s.ssthresh = ss
	s.cwnd = ss + 3
	s.inRecovery = true
	s.cwndChanged()
	if s.OnCollapse != nil {
		s.OnCollapse("dupack")
	}
	s.retransmitHead()
}

// collapse applies the paper's §2.1 drop response.
func (s *Sender) collapse(cause string) {
	s.stats.Collapses++
	if s.cfg.FixedWnd <= 0 {
		ss := math.Min(s.cwnd/2, float64(s.cfg.MaxWnd))
		if ss < 2 {
			ss = 2
		}
		s.ssthresh = ss
		s.cwnd = 1
		s.cwndChanged()
	}
	if s.OnCollapse != nil {
		s.OnCollapse(cause)
	}
}

// retransmitHead resends the first unacknowledged segment and restarts
// the retransmission timer with the current backoff.
func (s *Sender) retransmitHead() {
	s.transmit(s.una)
	s.rtx.ResetAt(gridDeadline(s.eng.Now(), s.rtt.backedOffRTOTicks(), SlowTick))
}

// onTimeout handles retransmission timer expiry.
func (s *Sender) onTimeout() {
	if s.una >= s.nxt {
		return // nothing outstanding; stale timer
	}
	s.stats.Timeouts++
	if s.Obs != nil {
		s.Obs.Value(obs.Timeout, s.eng.Now(), s.ObsLoc, s.cfg.Conn, float64(s.stats.Timeouts))
	}
	s.rtt.backoff()
	s.dupacks = 0
	s.lossDetected("timeout")
}

// maybeSend transmits as many new segments as the window allows,
// honoring the pacing constraint if configured.
func (s *Sender) maybeSend() {
	if !s.started {
		return
	}
	for s.nxt < s.una+s.Wnd() {
		if s.cfg.Pace > 0 {
			if wait := s.lastTxAt + s.cfg.Pace - s.eng.Now(); s.everSent && wait > 0 {
				// A non-nil paceEvent is always pending: the callback
				// clears it before resuming, and nothing cancels it.
				if s.paceEvent == nil {
					s.paceEvent = s.eng.Schedule(wait, s.paceFn)
				}
				return
			}
		}
		seq := s.nxt
		s.nxt++
		s.transmit(seq)
		if !s.pure() && !s.rtx.Armed() {
			s.armTimer()
		}
	}
}

// armTimer starts the retransmission timer with the un-backed-off RTO.
func (s *Sender) armTimer() {
	s.rtx.ResetAt(gridDeadline(s.eng.Now(), s.rtt.rtoTicks(), SlowTick))
}

// transmit emits one data segment. Segments at or above the high-water
// mark are originals; below it they are retransmissions and are never
// RTT-timed (Karn's algorithm).
func (s *Sender) transmit(seq int) {
	rtx := seq < s.maxSent
	if seq+1 > s.maxSent {
		s.maxSent = seq + 1
	}
	p := s.cfg.Pool.Get()
	p.ID = s.ids.Next()
	p.Kind = packet.Data
	p.Conn = s.cfg.Conn
	p.Src = s.cfg.SrcHost
	p.Dst = s.cfg.DstHost
	p.Seq = seq
	p.Size = s.cfg.DataSize
	p.Retransmit = rtx
	if rtx {
		// Retransmitting invalidates any in-progress RTT timing.
		s.timedSeq = -1
		s.stats.Retransmits++
	} else if s.timedSeq < 0 {
		s.timedSeq = seq
		s.timedAt = s.eng.Now()
	}
	s.stats.DataSent++
	s.everSent = true
	s.lastTxAt = s.eng.Now()
	if s.OnSend != nil {
		s.OnSend(p)
	}
	s.net.Send(p)
}
