package tcp

import "time"

// Timer granularities of the BSD kernel. The slow timer drives
// retransmission timeouts; the fast timer flushes delayed ACKs. Both
// matter for the dynamics: the coarse 500 ms retransmission grid is what
// makes post-loss retransmissions happen "after some essentially random
// interval" (§3.1), and the 200 ms delayed-ACK flush bounds how long the
// receiver holds an acknowledgment (§5).
const (
	// SlowTick is the BSD slow-timeout granularity (PR_SLOWHZ = 2 Hz).
	SlowTick = 500 * time.Millisecond
	// FastTick is the BSD fast-timeout granularity (PR_FASTHZ = 5 Hz).
	FastTick = 200 * time.Millisecond
)

// Bounds on the retransmission timeout, in slow ticks, following the BSD
// 4.3-Tahoe constants: minimum 1 s, maximum 64 s, default 3 s before the
// first RTT sample.
const (
	rtoMinTicks     = 2   // 1 s
	rtoMaxTicks     = 128 // 64 s
	rtoDefaultTicks = 6   // 3 s
	maxBackoffShift = 6   // cap the exponential backoff at 64x
)

// rttEstimator implements Jacobson's smoothed RTT/variance estimator in
// the fixed-point form used by the BSD 4.3-Tahoe kernel: srtt is kept
// scaled by 8 and rttvar by 4, both in units of slow ticks.
type rttEstimator struct {
	srtt8   int // srtt << 3, slow ticks
	rttvar4 int // rttvar << 2, slow ticks
	sampled bool
	shift   uint // exponential backoff shift (t_rxtshift)
}

// sampleDuration feeds a measured round-trip time into the estimator.
// The kernel counts ticks while the timed segment is outstanding starting
// from 1, so the equivalent sample is floor(m/tick) + 1.
func (r *rttEstimator) sampleDuration(m time.Duration) {
	r.sampleTicks(int(m/SlowTick) + 1)
}

// sampleTicks performs the Jacobson update with a sample in slow ticks.
func (r *rttEstimator) sampleTicks(rtt int) {
	if !r.sampled {
		r.srtt8 = rtt << 3
		r.rttvar4 = rtt << 1 // var = rtt/2, scaled by 4
		r.sampled = true
		return
	}
	// delta = rtt - 1 - srtt (the kernel subtracts the 1 its tick
	// counter started from).
	delta := rtt - 1 - (r.srtt8 >> 3)
	r.srtt8 += delta
	if r.srtt8 <= 0 {
		r.srtt8 = 1
	}
	if delta < 0 {
		delta = -delta
	}
	delta -= r.rttvar4 >> 2
	r.rttvar4 += delta
	if r.rttvar4 <= 0 {
		r.rttvar4 = 1
	}
}

// srttTicks returns the current smoothed RTT estimate in slow ticks.
func (r *rttEstimator) srttTicks() int { return r.srtt8 >> 3 }

// rtoTicks returns the retransmission timeout in slow ticks: the BSD
// TCP_REXMTVAL value, srtt + 4*rttvar, clamped to [1 s, 64 s].
func (r *rttEstimator) rtoTicks() int {
	if !r.sampled {
		return rtoDefaultTicks
	}
	v := (r.srtt8 >> 3) + r.rttvar4
	return clampTicks(v)
}

// backedOffRTOTicks applies the exponential backoff to the current RTO.
func (r *rttEstimator) backedOffRTOTicks() int {
	return clampTicks(r.rtoTicks() << r.shift)
}

// backoff doubles the timeout for the next retransmission.
func (r *rttEstimator) backoff() {
	if r.shift < maxBackoffShift {
		r.shift++
	}
}

// resetBackoff clears the backoff after an ACK of new data arrives
// (Karn's algorithm, second half).
func (r *rttEstimator) resetBackoff() { r.shift = 0 }

func clampTicks(v int) int {
	if v < rtoMinTicks {
		return rtoMinTicks
	}
	if v > rtoMaxTicks {
		return rtoMaxTicks
	}
	return v
}

// gridDeadline converts a countdown of n ticks armed at time now into an
// absolute deadline on the periodic timer grid. The kernel decrements
// countdown timers on each grid tick, so the first decrement happens at
// the first tick strictly after now and the timer fires on the n-th.
func gridDeadline(now time.Duration, n int, grid time.Duration) time.Duration {
	first := (now/grid)*grid + grid
	return first + time.Duration(n-1)*grid
}
