package tcp

import (
	"testing"
	"time"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

func TestNewSenderValidation(t *testing.T) {
	eng := sim.New()
	for name, cfg := range map[string]SenderConfig{
		"zero MaxWnd": {Conn: 1, DataSize: 500},
		"zero size":   {Conn: 1, MaxWnd: 10},
		"negative":    {Conn: 1, MaxWnd: -1, DataSize: 500},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewSender(eng, &pipe{eng: eng}, &IDGen{}, cfg)
		}()
	}
}

func TestNewReceiverValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative AckSize")
		}
	}()
	eng := sim.New()
	NewReceiver(eng, &pipe{eng: eng}, &IDGen{}, ReceiverConfig{Conn: 1, AckSize: -1})
}

func TestStartIsIdempotent(t *testing.T) {
	eng := sim.New()
	fwd := &pipe{eng: eng}
	s := NewSender(eng, fwd, &IDGen{}, defaultSenderCfg())
	s.Start()
	s.Start()
	if len(fwd.sent) != 1 {
		t.Fatalf("double Start sent %d packets, want 1", len(fwd.sent))
	}
}

func TestDupThresholdOverride(t *testing.T) {
	eng := sim.New()
	cfg := defaultSenderCfg()
	cfg.DupThreshold = 5
	fwd := &pipe{eng: eng}
	s := NewSender(eng, fwd, &IDGen{}, cfg)
	s.Start()
	for ack := 1; ack <= 5; ack++ {
		s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: ack, Size: 50})
	}
	for i := 0; i < 4; i++ {
		s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: 5, Size: 50})
	}
	if s.Stats().FastRetransmits != 0 {
		t.Fatal("retransmitted before the overridden threshold")
	}
	s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: 5, Size: 50})
	if s.Stats().FastRetransmits != 1 {
		t.Fatal("did not retransmit at the overridden threshold")
	}
}

func TestWndFloorsAtOne(t *testing.T) {
	eng := sim.New()
	s := NewSender(eng, &pipe{eng: eng}, &IDGen{}, defaultSenderCfg())
	s.cwnd = 0.25 // below one (cannot happen in practice; Wnd still floors)
	if s.Wnd() != 1 {
		t.Fatalf("Wnd = %d, want 1", s.Wnd())
	}
	s.cwnd = 5000 // above maxwnd
	if s.Wnd() != s.cfg.MaxWnd {
		t.Fatalf("Wnd = %d, want MaxWnd %d", s.Wnd(), s.cfg.MaxWnd)
	}
}

func TestCwndCappedAtMaxWnd(t *testing.T) {
	eng := sim.New()
	cfg := defaultSenderCfg()
	cfg.MaxWnd = 4
	s, _, _, _ := newPair(eng, time.Millisecond, cfg, defaultReceiverCfg())
	s.Start()
	eng.RunUntil(10 * time.Second)
	if s.Cwnd() > 4 {
		t.Fatalf("cwnd = %v exceeded MaxWnd 4", s.Cwnd())
	}
	if s.Stats().Collapses != 0 {
		t.Fatal("lossless run collapsed")
	}
}

func TestStaleAckIgnored(t *testing.T) {
	eng := sim.New()
	fwd := &pipe{eng: eng}
	s := NewSender(eng, fwd, &IDGen{}, defaultSenderCfg())
	s.Start()
	for ack := 1; ack <= 5; ack++ {
		s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: ack, Size: 50})
	}
	before := len(fwd.sent)
	cwnd := s.Cwnd()
	s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: 2, Size: 50}) // below una
	if len(fwd.sent) != before || s.Cwnd() != cwnd || s.dupacks != 0 {
		t.Fatal("stale ACK had an effect")
	}
}

func TestStaleTimerAfterFullAckIsNoOp(t *testing.T) {
	eng := sim.New()
	fwd := &pipe{eng: eng}
	s := NewSender(eng, fwd, &IDGen{}, defaultSenderCfg())
	s.Start()
	// Everything acked; then force the timer callback directly.
	s.Handle(&packet.Packet{Kind: packet.Ack, Conn: 1, Seq: 1, Size: 50})
	// Drain any sends triggered by the ack.
	sent := len(fwd.sent)
	s.una = s.nxt // pretend all outstanding data acked
	s.onTimeout()
	if s.Stats().Timeouts != 0 || len(fwd.sent) != sent {
		t.Fatal("stale timeout acted on an idle connection")
	}
}

func TestRTOClampMinimumDirect(t *testing.T) {
	if got := clampTicks(0); got != rtoMinTicks {
		t.Fatalf("clampTicks(0) = %d", got)
	}
	if got := clampTicks(1000); got != rtoMaxTicks {
		t.Fatalf("clampTicks(1000) = %d", got)
	}
	if got := clampTicks(10); got != 10 {
		t.Fatalf("clampTicks(10) = %d", got)
	}
}

// Property-style check: cwnd stays within [1, MaxWnd] and una is
// nondecreasing throughout a long lossy run.
func TestSenderInvariantsUnderLoss(t *testing.T) {
	eng := sim.New()
	drop := 0
	fwd := &pipe{eng: eng, delay: 15 * time.Millisecond,
		drop: func(p *packet.Packet) bool {
			drop++
			return drop%17 == 0
		}}
	rev := &pipe{eng: eng, delay: 15 * time.Millisecond}
	ids := &IDGen{}
	cfg := defaultSenderCfg()
	cfg.MaxWnd = 30
	s := NewSender(eng, fwd, ids, cfg)
	r := NewReceiver(eng, rev, ids, defaultReceiverCfg())
	fwd.dst = r
	rev.dst = s
	prevUna := 0
	s.OnCwnd = func(v float64) {
		if v < 1 || v > 30 {
			t.Fatalf("cwnd = %v out of [1, 30]", v)
		}
		if s.Una() < prevUna {
			t.Fatalf("una went backwards: %d -> %d", prevUna, s.Una())
		}
		prevUna = s.Una()
	}
	s.Start()
	eng.RunUntil(3 * time.Minute)
	if s.Una() < 500 {
		t.Fatalf("una = %d after 3 minutes; connection stalled", s.Una())
	}
}
