// Package tcp implements the BSD 4.3-Tahoe TCP congestion control
// algorithm as described in §2.1 of Zhang, Shenker & Clark (SIGCOMM '91),
// together with the receiver-side acknowledgment machinery (including the
// delayed-ACK option) and a fixed-window mode used by the paper's
// flow-control-only experiments.
//
// Windows and sequence numbers are measured in units of maximum-size
// packets. The sender's usable window is
//
//	wnd = floor(min(cwnd, maxwnd))
//
// cwnd grows by 1 per new ACK below ssthresh (slow start) and by
// 1/floor(cwnd) per new ACK above it — the paper's modified congestion
// avoidance increase, which removes the anomaly of the original
// 1/cwnd rule (the original is available as an option). On any detected
// loss:
//
//	ssthresh = max(min(cwnd/2, maxwnd), 2)
//	cwnd     = 1
//
// Losses are detected by three duplicate ACKs (fast retransmit; Tahoe has
// no fast recovery, so the window still collapses to one) or by the
// coarse-grained retransmission timer.
package tcp

import "tahoedyn/internal/packet"

// Network is the sender/receiver's interface to its host: transmit a
// packet toward the network. It reports whether the packet was accepted
// by the host's output buffer.
type Network interface {
	Send(p *packet.Packet) bool
}

// IDGen hands out unique packet IDs within one simulation. The zero
// value counts 1, 2, 3, …; NewIDGen builds a strided generator so
// several endpoints can draw from disjoint ID sequences — sharded runs
// give every endpoint its own generator (stride = number of endpoints)
// so the IDs an endpoint mints do not depend on how the topology is
// partitioned.
type IDGen struct {
	next   uint64
	stride uint64
}

// NewIDGen returns a generator whose Next yields first, first+stride,
// first+2*stride, …. stride must be positive.
func NewIDGen(first, stride uint64) *IDGen {
	return &IDGen{next: first - stride, stride: stride}
}

// Next returns a fresh packet ID.
func (g *IDGen) Next() uint64 {
	s := g.stride
	if s == 0 {
		s = 1
	}
	g.next += s
	return g.next
}

// DefaultDupThreshold is the number of duplicate ACKs that triggers a
// fast retransmit, matching the BSD tcprexmtthresh of 3.
const DefaultDupThreshold = 3
