package tcp

import (
	"testing"
	"time"
)

func TestRTODefaultBeforeFirstSample(t *testing.T) {
	var r rttEstimator
	if got := r.rtoTicks(); got != rtoDefaultTicks {
		t.Fatalf("default RTO = %d ticks, want %d", got, rtoDefaultTicks)
	}
}

func TestFirstSampleInitializesEstimator(t *testing.T) {
	var r rttEstimator
	r.sampleTicks(4)
	if r.srttTicks() != 4 {
		t.Fatalf("srtt = %d ticks, want 4", r.srttTicks())
	}
	// rto = srtt + 4*var = 4 + 4*2 = 12 ticks.
	if got := r.rtoTicks(); got != 12 {
		t.Fatalf("rto = %d ticks, want 12", got)
	}
}

func TestRTOStaysSmallForSubTickRTTs(t *testing.T) {
	var r rttEstimator
	for i := 0; i < 50; i++ {
		r.sampleTicks(1) // sub-tick RTTs
	}
	// srtt decays to ~0 and rttvar to its floor; the RTO must never fall
	// below the 1 s minimum and should stay near it.
	if got := r.rtoTicks(); got < rtoMinTicks || got > 3 {
		t.Fatalf("rto = %d ticks, want in [%d, 3]", got, rtoMinTicks)
	}
}

func TestRTOClampsToMaximum(t *testing.T) {
	var r rttEstimator
	r.sampleTicks(500)
	if got := r.rtoTicks(); got != rtoMaxTicks {
		t.Fatalf("rto = %d ticks, want clamp to %d", got, rtoMaxTicks)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	var r rttEstimator
	r.sampleTicks(2) // rto = 2 + 4 = 6 ticks
	base := r.rtoTicks()
	r.backoff()
	if got := r.backedOffRTOTicks(); got != base*2 {
		t.Fatalf("after 1 backoff rto = %d, want %d", got, base*2)
	}
	for i := 0; i < 20; i++ {
		r.backoff()
	}
	if got := r.backedOffRTOTicks(); got != rtoMaxTicks {
		t.Fatalf("backed-off rto = %d, want cap %d", got, rtoMaxTicks)
	}
	r.resetBackoff()
	if got := r.backedOffRTOTicks(); got != base {
		t.Fatalf("after reset rto = %d, want %d", got, base)
	}
}

func TestSampleDurationTickConversion(t *testing.T) {
	var r rttEstimator
	// 0.7 s = 1 full tick elapsed + the initial 1 → sample of 2 ticks.
	r.sampleDuration(700 * time.Millisecond)
	if r.srttTicks() != 2 {
		t.Fatalf("srtt = %d ticks, want 2", r.srttTicks())
	}
}

func TestEstimatorConvergesOnSteadyRTT(t *testing.T) {
	var r rttEstimator
	for i := 0; i < 100; i++ {
		r.sampleTicks(5)
	}
	// The kernel's sample includes the +1 tick counter start, so steady
	// samples of 5 converge near srtt ≈ 4.
	if got := r.srttTicks(); got < 3 || got > 5 {
		t.Fatalf("srtt = %d ticks, want ≈4", got)
	}
	if got := r.rtoTicks(); got < rtoMinTicks || got > 12 {
		t.Fatalf("rto = %d ticks out of plausible range", got)
	}
}

func TestVarianceNeverNonPositive(t *testing.T) {
	var r rttEstimator
	r.sampleTicks(3)
	for i := 0; i < 200; i++ {
		r.sampleTicks(3)
		if r.rttvar4 <= 0 {
			t.Fatalf("rttvar4 = %d after %d samples", r.rttvar4, i)
		}
		if r.srtt8 <= 0 {
			t.Fatalf("srtt8 = %d after %d samples", r.srtt8, i)
		}
	}
}

func TestGridDeadline(t *testing.T) {
	grid := 500 * time.Millisecond
	cases := []struct {
		now   time.Duration
		ticks int
		want  time.Duration
	}{
		// Armed exactly on a tick: first decrement is the *next* tick.
		{0, 1, 500 * time.Millisecond},
		{0, 2, 1000 * time.Millisecond},
		// Armed mid-interval: first decrement comes sooner than a full
		// tick — the source of BSD's "random" retransmit phase.
		{200 * time.Millisecond, 1, 500 * time.Millisecond},
		{499 * time.Millisecond, 1, 500 * time.Millisecond},
		{500 * time.Millisecond, 1, 1000 * time.Millisecond},
		{1700 * time.Millisecond, 3, 3000 * time.Millisecond},
	}
	for _, c := range cases {
		if got := gridDeadline(c.now, c.ticks, grid); got != c.want {
			t.Errorf("gridDeadline(%v, %d) = %v, want %v", c.now, c.ticks, got, c.want)
		}
	}
}
