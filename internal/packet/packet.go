// Package packet defines the unit of traffic exchanged by the simulated
// network: fixed-size TCP data segments and their acknowledgments.
//
// Following the paper, windows and sequence numbers are measured in units
// of maximum-size packets rather than bytes; a data packet carries exactly
// one segment. Packet sizes (in bytes) still matter because transmission
// time on a link is proportional to size, and the 10:1 data:ACK size
// ratio is precisely what produces ACK-compression.
package packet

import (
	"fmt"
	"time"
)

// Kind distinguishes data segments from acknowledgments.
type Kind uint8

const (
	// Data is a TCP segment carrying one maximum-size packet of payload.
	Data Kind = iota
	// Ack is a pure acknowledgment.
	Ack
)

// String returns "DATA" or "ACK".
func (k Kind) String() string {
	switch k {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Packet is one simulated packet. Packets are created by TCP endpoints
// and passed by pointer through queues and links; they are never copied
// once in flight.
type Packet struct {
	// ID is unique across the simulation, for tracing.
	ID uint64
	// Kind is Data or Ack.
	Kind Kind
	// Conn identifies the TCP connection the packet belongs to.
	Conn int
	// Src and Dst are host identifiers used for routing.
	Src, Dst int
	// Seq is the data sequence number in packets. For Data packets it is
	// the segment being carried; for Ack packets it is the cumulative
	// acknowledgment: the next sequence number the receiver expects.
	Seq int
	// Size is the packet length in bytes, used for transmission timing.
	Size int
	// SentAt records when the segment currently being RTT-timed left the
	// sender; zero when the packet is not a timing sample.
	SentAt time.Duration
	// Retransmit marks retransmitted data segments. Per Karn's algorithm
	// these must not contribute RTT samples.
	Retransmit bool

	// released marks a packet sitting in a Pool free list. It is the
	// double-release/use-after-release checker's state; see Pool.
	released bool
}

// String renders a compact human-readable description for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("%s conn=%d seq=%d size=%dB", p.Kind, p.Conn, p.Seq, p.Size)
}
