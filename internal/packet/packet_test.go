package packet

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	if Data.String() != "DATA" {
		t.Errorf("Data.String() = %q", Data.String())
	}
	if Ack.String() != "ACK" {
		t.Errorf("Ack.String() = %q", Ack.String())
	}
	if got := Kind(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Kind: Data, Conn: 2, Seq: 41, Size: 500}
	s := p.String()
	for _, want := range []string{"DATA", "conn=2", "seq=41", "500B"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
