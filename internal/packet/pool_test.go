package packet

import (
	"strings"
	"testing"
)

func TestPoolRecyclesPackets(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	if p == nil {
		t.Fatal("Get returned nil")
	}
	if pl.Allocs() != 1 || pl.Recycled() != 0 {
		t.Fatalf("after first Get: allocs=%d recycled=%d", pl.Allocs(), pl.Recycled())
	}
	p.ID, p.Seq, p.Size = 7, 3, 500
	pl.Put(p)
	if pl.Free() != 1 {
		t.Fatalf("Free = %d, want 1", pl.Free())
	}
	q := pl.Get()
	if q != p {
		t.Fatal("Get did not recycle the released packet")
	}
	if pl.Allocs() != 1 || pl.Recycled() != 1 {
		t.Fatalf("after recycle: allocs=%d recycled=%d", pl.Allocs(), pl.Recycled())
	}
	if *q != (Packet{}) {
		t.Fatalf("recycled packet not zeroed: %+v", *q)
	}
	if q.Released() {
		t.Fatal("recycled packet still marked released")
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	pl.Put(p)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double release did not panic")
		}
		if !strings.Contains(r.(string), "double release") {
			t.Fatalf("panic = %v, want double-release message", r)
		}
	}()
	pl.Put(p)
}

func TestPoolPoisonsReleasedPackets(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	p.ID, p.Seq, p.Size = 42, 10, 500
	pl.Put(p)
	if !p.Released() {
		t.Fatal("released packet not marked")
	}
	if p.Size >= 0 || p.Seq >= 0 {
		t.Fatalf("released packet not poisoned: size=%d seq=%d", p.Size, p.Seq)
	}
	if p.ID != 0 {
		t.Fatalf("released packet keeps ID %d", p.ID)
	}
}

func TestNilPoolFallsBackToHeap(t *testing.T) {
	var pl *Pool
	p := pl.Get()
	if p == nil {
		t.Fatal("nil pool Get returned nil")
	}
	pl.Put(p) // must not panic
	pl.Put(p) // not even twice: a nil pool does no release checking
	if pl.Free() != 0 || pl.Allocs() != 0 || pl.Recycled() != 0 {
		t.Fatal("nil pool reported non-zero counters")
	}
}

func TestPoolPutNilIsNoOp(t *testing.T) {
	pl := NewPool()
	pl.Put(nil)
	if pl.Free() != 0 {
		t.Fatalf("Free = %d after Put(nil)", pl.Free())
	}
}

func BenchmarkPoolGetPut(b *testing.B) {
	pl := NewPool()
	pl.Put(pl.Get()) // warm: one packet circulating
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pl.Get()
		p.Size = 500
		pl.Put(p)
	}
}
