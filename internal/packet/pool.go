package packet

import "fmt"

// Pool is a per-run free list of Packets. At steady state every packet a
// simulation sends is recycled from a previous one, so the per-packet
// path performs zero heap allocations and generates no garbage — the
// property the steady-state allocation benchmarks assert.
//
// # Ownership protocol
//
// A *Packet obtained from Get has exactly one owner at a time:
//
//  1. The creator (a TCP endpoint) owns the packet until it hands it to
//     the network via Send.
//  2. Queues, links, and delay elements own the packet while it is
//     buffered or in flight, and pass ownership downstream on delivery.
//  3. The terminal sink — the endpoint whose Handle consumes the packet —
//     releases it back to the pool when Handle returns.
//  4. A drop releases the packet at the drop site (the port or error
//     model that discarded it), after the drop hooks have run.
//
// Observation hooks (OnSend, OnDepart, OnDrop, OnAckArrival, …) are
// called while the packet is still owned by the caller; they may read
// fields but must not retain the pointer past their return.
//
// A nil *Pool is valid and disables pooling: Get falls back to the heap
// and Put is a no-op, which is the behavior the pre-pool simulator had.
// Pools are not safe for concurrent use; a simulation run owns its pool
// the same way it owns its event engine.
//
// # Release checking
//
// The pool always verifies the protocol: Put panics on a double release,
// and released packets are poisoned (negative Size and Seq, zero ID) so
// that a use-after-release packet fails fast — a poisoned Size makes the
// first transmission attempt panic in the engine rather than silently
// corrupt a run. The checks are branch-cheap, so they stay on outside
// tests too.
type Pool struct {
	free []*Packet
	// allocs counts pool misses (fresh heap allocations); gets and puts
	// count traffic. Steady state is gets ≫ allocs.
	allocs, gets, puts uint64
}

// NewPool returns an empty pool. The first Get calls allocate; a warmed
// pool recycles.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed packet owned by the caller. On a nil pool it
// simply allocates.
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return new(Packet)
	}
	pl.gets++
	n := len(pl.free)
	if n == 0 {
		pl.allocs++
		return new(Packet)
	}
	p := pl.free[n-1]
	pl.free[n-1] = nil
	pl.free = pl.free[:n-1]
	*p = Packet{}
	return p
}

// Put releases p back to the pool. Releasing the same packet twice
// without an intervening Get panics; releasing nil or releasing into a
// nil pool is a no-op (the packet is left for the garbage collector).
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	if p.released {
		panic(fmt.Sprintf("packet: double release of packet ID=%d seq=%d", p.ID, p.Seq))
	}
	// Poison: a later use of this pointer sees an impossible packet. A
	// negative Size in particular makes Port.Send panic inside the engine
	// (negative transmission time) instead of corrupting the run.
	*p = Packet{ID: 0, Seq: poisonSeq, Size: poisonSize, released: true}
	pl.puts++
	pl.free = append(pl.free, p)
}

// Poison values written into released packets. They are impossible in a
// live packet: sizes are non-negative and sequence numbers start at 0.
const (
	poisonSeq  = -1 << 30
	poisonSize = -1 << 30
)

// Released reports whether p is currently in a pool (released and not
// yet handed out again). It exists for the protocol tests.
func (p *Packet) Released() bool { return p.released }

// Free returns the number of packets currently in the free list.
func (pl *Pool) Free() int {
	if pl == nil {
		return 0
	}
	return len(pl.free)
}

// Allocs returns the number of Get calls that had to allocate. A warmed
// steady-state pool stops growing this counter.
func (pl *Pool) Allocs() uint64 {
	if pl == nil {
		return 0
	}
	return pl.allocs
}

// Recycled returns the number of Get calls served from the free list.
func (pl *Pool) Recycled() uint64 {
	if pl == nil {
		return 0
	}
	return pl.gets - pl.allocs
}

// ResetCounters zeroes the per-run statistics while keeping the free
// list warm. Arena reuse (core.Arena) calls it between runs so Allocs
// reports each run's pool misses rather than the arena lifetime's —
// which also means a warm arena legitimately reports ~0 allocs where a
// cold run reports hundreds; the pool/* metrics are diagnostics, not
// physics, and are excluded from run-identity comparisons.
func (pl *Pool) ResetCounters() {
	if pl == nil {
		return
	}
	pl.allocs, pl.gets, pl.puts = 0, 0, 0
}
