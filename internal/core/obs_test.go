package core

import (
	"bytes"
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"tahoedyn/internal/obs"
)

// fullObs returns an Options enabling every observability feature:
// tracing into a fresh memory sink, the metrics registry, and a
// progress observer on both axes.
func fullObs() (*obs.Options, *obs.MemorySink, *int) {
	sink := obs.NewMemorySink()
	samples := new(int)
	return &obs.Options{
		Trace:   &obs.TraceOptions{Sink: sink, RingSize: 512},
		Metrics: true,
		Progress: &obs.Progress{
			Every:       10 * time.Second,
			EveryEvents: 5000,
			Fn:          func(obs.Snapshot) { *samples++ },
		},
	}, sink, samples
}

// TestObsRunsAreByteIdentical is the never-perturb contract: a run with
// the full observability stack on — tracing, metrics, progress — is
// byte-identical to the same run with it off, in both paper phase modes
// and on a multi-bottleneck topology.
func TestObsRunsAreByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"fig4-5-out-of-phase", func() Config { return twoWay(10 * time.Millisecond) }},
		{"fig6-7-in-phase", func() Config { return twoWay(time.Second) }},
		{"parking-lot-multibottleneck", parkingLotShort},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain := tc.cfg()
			observed := tc.cfg()
			opts, sink, samples := fullObs()
			observed.Obs = opts
			resObs := Run(observed)
			assertRunsIdentical(t, Run(plain), resObs)
			if resObs.TraceErr != nil {
				t.Fatalf("TraceErr = %v", resObs.TraceErr)
			}
			if sink.Len() == 0 {
				t.Fatal("trace sink saw no events")
			}
			if begun, closed := sink.Lifecycle(); begun != 1 || closed != 1 {
				t.Fatalf("sink lifecycle: begun=%d closed=%d, want 1, 1", begun, closed)
			}
			if *samples == 0 {
				t.Fatal("progress observer never fired")
			}
			if resObs.Metrics == nil {
				t.Fatal("Result.Metrics is nil with Obs.Metrics set")
			}
		})
	}
}

// TestObsTraceStreamConsistency cross-checks the trace stream against
// the run's own logs: every recorded drop appears as a Drop event, and
// filtering to one connection keeps only that connection.
func TestObsTraceStreamConsistency(t *testing.T) {
	cfg := twoWay(10 * time.Millisecond)
	sink := obs.NewMemorySink()
	cfg.Obs = &obs.Options{Trace: &obs.TraceOptions{Sink: sink}}
	res := Run(cfg)
	_, events := sink.Snapshot()
	var drops, cwnds, delivers int
	for _, ev := range events {
		switch ev.Type {
		case obs.Drop:
			drops++
		case obs.CwndChange:
			cwnds++
		case obs.Deliver:
			delivers++
		}
	}
	if drops != len(res.Drops) {
		t.Fatalf("trace saw %d drops, result logged %d", drops, len(res.Drops))
	}
	if cwnds == 0 || delivers == 0 {
		t.Fatalf("trace missing event types: cwnd=%d deliver=%d", cwnds, delivers)
	}

	filtered := twoWay(10 * time.Millisecond)
	fsink := obs.NewMemorySink()
	filtered.Obs = &obs.Options{Trace: &obs.TraceOptions{
		Sink:   fsink,
		Filter: obs.Filter{Conn: 2, Types: 1 << obs.CwndChange},
	}}
	fres := Run(filtered)
	assertRunsIdentical(t, res, fres)
	_, fevents := fsink.Snapshot()
	if len(fevents) == 0 {
		t.Fatal("filtered trace is empty")
	}
	for _, ev := range fevents {
		if ev.Conn != 2 || ev.Type != obs.CwndChange {
			t.Fatalf("filter leaked event %+v", ev)
		}
	}
}

// TestObsMetricsExported checks the registry contents against the
// Result's own counters and that both renderers produce output.
func TestObsMetricsExported(t *testing.T) {
	cfg := twoWay(10 * time.Millisecond)
	cfg.Obs = &obs.Options{Metrics: true}
	res := Run(cfg)
	m := res.Metrics
	if m == nil {
		t.Fatal("Result.Metrics is nil")
	}
	var text bytes.Buffer
	if err := m.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"core/events", "link/drops", "tcp/data-sent",
		"queue/sw0->sw1", "rtt-seconds/conn1", "ack-gap-seconds/conn2",
		"util/sw0->sw1", "cwnd-final/conn1", "epoch-seconds",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text render missing %q", want)
		}
	}
	var js bytes.Buffer
	if err := m.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"name":"core/events","value":`) {
		t.Fatalf("JSON render missing counters: %s", js.String())
	}
	// The exported counters must agree with the Result.
	wantPairs := []struct {
		name string
		want float64
	}{
		{"core/events", float64(res.Events)},
		{"link/drops", float64(len(res.Drops))},
	}
	for _, p := range wantPairs {
		if !strings.Contains(js.String(), `{"name":"`+p.name+`","value":`+trimFloat(p.want)+`}`) {
			t.Errorf("%s does not render as %v:\n%s", p.name, p.want, js.String())
		}
	}
}

// TestRunEReturnsErrors pins the error-returning facade: invalid
// configurations come back as errors, never panics, and a valid config
// produces the same Result RunE or Run.
func TestRunEReturnsErrors(t *testing.T) {
	bad := twoWay(10 * time.Millisecond)
	bad.Conns[1].DstHost = 99
	if _, err := RunE(bad); err == nil {
		t.Fatal("RunE accepted an out-of-range host")
	} else if !strings.Contains(err.Error(), "core:") {
		t.Fatalf("error lost its package prefix: %v", err)
	}

	negative := twoWay(10 * time.Millisecond)
	negative.TrunkBandwidth = -1
	if _, err := RunE(negative); err == nil {
		t.Fatal("RunE accepted a negative bandwidth")
	}

	noSink := twoWay(10 * time.Millisecond)
	noSink.Obs = &obs.Options{Trace: &obs.TraceOptions{}}
	if _, err := RunE(noSink); err == nil {
		t.Fatal("RunE accepted Obs.Trace without a Sink")
	}

	good := twoWay(10 * time.Millisecond)
	res, err := RunE(good)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsIdentical(t, Run(twoWay(10*time.Millisecond)), res)
}

// TestRunContextCancelAndResume pins the cancellation contract: a
// canceled run stops promptly without finalizing, the Sim stays
// resumable, and resuming completes to a Result byte-identical to an
// uninterrupted run — so cancellation cannot have corrupted pool or
// measurement state.
func TestRunContextCancelAndResume(t *testing.T) {
	cfg := twoWay(10 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Obs = &obs.Options{Progress: &obs.Progress{
		Every: time.Second,
		Fn: func(s obs.Snapshot) {
			if s.Now >= 30*time.Second {
				cancel()
			}
		},
	}}
	s, err := BuildE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.FinishContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FinishContext error = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled run returned a Result")
	}
	if now := s.Now(); now < 30*time.Second || now >= cfg.Duration {
		t.Fatalf("canceled at %v, want between 30s and %v", now, cfg.Duration)
	}
	// Resume to completion and compare against an uninterrupted run of
	// the same configuration (observability stripped on the reference;
	// the identity tests above cover obs-on-vs-off separately).
	resumed, err := s.FinishContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertRunsIdentical(t, Run(twoWay(10*time.Millisecond)), resumed)
}

// TestRunContextCanceledBeforeStart returns immediately without
// executing any events.
func TestRunContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, twoWay(10*time.Millisecond)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// trimFloat formats integer-valued counters the way the metrics
// renderers do (no decimal point).
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', 0, 64)
}
