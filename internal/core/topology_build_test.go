package core

import (
	"testing"
	"time"

	"tahoedyn/internal/topology"
)

// TestDumbbellAsTopologyBitIdentical is the acceptance gate for the
// topology layer: expressing the default line through an explicit
// topology.Graph must change nothing — same traces, drops, stats, and
// event counts, byte for byte. Covers both §4 phase modes and the
// four-switch line of [19].
func TestDumbbellAsTopologyBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"fig4-5-out-of-phase", func() Config { return twoWay(10 * time.Millisecond) }},
		{"fig6-7-in-phase", func() Config { return twoWay(time.Second) }},
		{"four-switch-line", func() Config {
			cfg := Config{
				Switches:   4,
				TrunkDelay: 10 * time.Millisecond,
				Buffer:     30,
				Seed:       1,
				Warmup:     20 * time.Second,
				Duration:   80 * time.Second,
			}
			cfg.Conns = []ConnSpec{
				{SrcHost: 0, DstHost: 3, Start: -1},
				{SrcHost: 3, DstHost: 0, Start: -1},
				{SrcHost: 1, DstHost: 2, Start: -1},
			}
			return cfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			implicit := tc.cfg()
			explicit := tc.cfg()
			g := topology.Chain(implicit.HostCount())
			explicit.Topology = &g
			explicit.Switches = 0 // must be derived from the graph
			assertRunsIdentical(t, Run(implicit), Run(explicit))
		})
	}
}

// TestTopologyRunsAreSeedDeterministic locks the new-workload guarantee:
// the same multi-bottleneck configuration and seed always produce
// byte-identical traces.
func TestTopologyRunsAreSeedDeterministic(t *testing.T) {
	a := Run(parkingLotShort())
	b := Run(parkingLotShort())
	assertRunsIdentical(t, a, b)
}

// TestParkingLotSharesBottlenecks sanity-checks the multi-bottleneck
// build: a parking-lot run must exercise every trunk (traffic and
// queueing on each hop) and route the long connection across all three.
func TestParkingLotSharesBottlenecks(t *testing.T) {
	cfg := parkingLotShort()
	res := Run(cfg)
	if len(res.TrunkQueue) != 3 {
		t.Fatalf("trunks = %d, want 3", len(res.TrunkQueue))
	}
	if got := res.Topo.PathHops(0, 3); got != 3 {
		t.Fatalf("long-path hops = %d, want 3", got)
	}
	for i := range res.TrunkUtil {
		if u := res.TrunkUtil[i][0]; u < 0.5 {
			t.Errorf("trunk %d forward utilization = %.2f, want busy", i, u)
		}
		if res.TrunkQueue[i][0].Max(res.MeasureFrom, res.MeasureTo) < 2 {
			t.Errorf("trunk %d queue never built", i)
		}
	}
	for k, g := range res.Goodput {
		if g <= 0 {
			t.Errorf("connection %d made no progress", k+1)
		}
	}
}

// TestMultipleHostsPerSwitchRuns exercises explicit host placement: two
// sources on switch 0 sharing the dumbbell against one sink host.
func TestMultipleHostsPerSwitchRuns(t *testing.T) {
	g := topology.Graph{
		Switches: 2,
		Links:    []topology.LinkSpec{{A: 0, B: 1}},
		Hosts:    []topology.HostSpec{{Switch: 0}, {Switch: 0}, {Switch: 1}},
	}
	cfg := Config{
		Topology:   &g,
		TrunkDelay: 10 * time.Millisecond,
		Buffer:     DefaultBuffer,
		Seed:       1,
		Warmup:     10 * time.Second,
		Duration:   40 * time.Second,
	}
	cfg.Conns = []ConnSpec{
		{SrcHost: 0, DstHost: 2, Start: -1},
		{SrcHost: 1, DstHost: 2, Start: -1},
	}
	res := Run(cfg)
	if res.UtilForward() < 0.9 {
		t.Fatalf("bottleneck utilization = %.2f, want saturated", res.UtilForward())
	}
	if res.Goodput[0] <= 0 || res.Goodput[1] <= 0 {
		t.Fatalf("goodput = %v", res.Goodput)
	}
}

// TestPerLinkOverridesRespected gives the middle link of a chain a
// tenth of the default bandwidth; it must become the lone bottleneck.
func TestPerLinkOverridesRespected(t *testing.T) {
	g := topology.Graph{
		Switches: 3,
		Links: []topology.LinkSpec{
			{A: 0, B: 1, Bandwidth: 500_000},
			{A: 1, B: 2}, // default 50 Kbps: the bottleneck
		},
	}
	cfg := Config{
		Topology:   &g,
		TrunkDelay: 10 * time.Millisecond,
		Buffer:     DefaultBuffer,
		Seed:       1,
		Warmup:     10 * time.Second,
		Duration:   40 * time.Second,
	}
	cfg.Conns = []ConnSpec{{SrcHost: 0, DstHost: 2, Start: -1}}
	res := Run(cfg)
	if bw := res.Topo.Links[0].Bandwidth; bw != 500_000 {
		t.Fatalf("link 0 bandwidth = %d", bw)
	}
	slow, fast := res.TrunkUtil[1][0], res.TrunkUtil[0][0]
	if slow < 0.9 {
		t.Errorf("bottleneck link utilization = %.2f, want saturated", slow)
	}
	if fast > 0.5 {
		t.Errorf("fast link utilization = %.2f, want mostly idle", fast)
	}
	if res.TrunkQueue[0][0].Max(res.MeasureFrom, res.MeasureTo) >
		res.TrunkQueue[1][0].Max(res.MeasureFrom, res.MeasureTo) {
		t.Error("queue built at the fast link instead of the bottleneck")
	}
}
