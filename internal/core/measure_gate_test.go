package core

import (
	"reflect"
	"testing"
	"time"
)

// TestMeasureGatingIdentity pins the MeasureTrunks/MeasureConns
// contract: gating is observation-only. A run that measures only a
// subset of trunks and connections must produce byte-identical physics
// (SenderStats, ReceiverStats, Delivered, Goodput, TrunkUtil, Events)
// and, for the measured indices, byte-identical series to an ungated
// run; unmeasured indices stay nil.
func TestMeasureGatingIdentity(t *testing.T) {
	cfg := parkingLotShort()
	full := Run(cfg)

	gated := parkingLotShort()
	gated.MeasureTrunks = []int{1}
	gated.MeasureConns = []int{0, 2}
	res := Run(gated)

	if !reflect.DeepEqual(res.SenderStats, full.SenderStats) {
		t.Fatalf("SenderStats diverged:\n gated %+v\n  full %+v", res.SenderStats, full.SenderStats)
	}
	if !reflect.DeepEqual(res.ReceiverStats, full.ReceiverStats) {
		t.Fatalf("ReceiverStats diverged")
	}
	if !reflect.DeepEqual(res.Delivered, full.Delivered) {
		t.Fatalf("Delivered diverged: gated %v full %v", res.Delivered, full.Delivered)
	}
	if !reflect.DeepEqual(res.Goodput, full.Goodput) {
		t.Fatalf("Goodput diverged: gated %v full %v", res.Goodput, full.Goodput)
	}
	if !reflect.DeepEqual(res.TrunkUtil, full.TrunkUtil) {
		t.Fatalf("TrunkUtil diverged: gated %v full %v", res.TrunkUtil, full.TrunkUtil)
	}
	if res.Events != full.Events {
		t.Fatalf("Events diverged: gated %d full %d", res.Events, full.Events)
	}

	// Measured entries equal the full run's; unmeasured entries are nil.
	for i := range res.TrunkQueue {
		for dir := range res.TrunkQueue[i] {
			if i != 1 {
				if res.TrunkQueue[i][dir] != nil || res.TrunkDeps[i][dir] != nil {
					t.Fatalf("trunk %d dir %d: unmeasured but instrumented", i, dir)
				}
				continue
			}
			if !reflect.DeepEqual(res.TrunkQueue[i][dir].Points, full.TrunkQueue[i][dir].Points) {
				t.Fatalf("trunk %d dir %d: queue series diverged", i, dir)
			}
			if !reflect.DeepEqual(res.TrunkDeps[i][dir], full.TrunkDeps[i][dir]) {
				t.Fatalf("trunk %d dir %d: departure log diverged", i, dir)
			}
		}
	}
	measured := map[int]bool{0: true, 2: true}
	for k := range res.Cwnd {
		if !measured[k] {
			if res.Cwnd[k] != nil || res.RTT[k] != nil || res.AckArrivals[k] != nil || res.Collapses[k] != nil {
				t.Fatalf("conn %d: unmeasured but instrumented", k)
			}
			continue
		}
		if !reflect.DeepEqual(res.Cwnd[k].Points, full.Cwnd[k].Points) {
			t.Fatalf("conn %d: cwnd series diverged", k)
		}
		if !reflect.DeepEqual(res.RTT[k].Points, full.RTT[k].Points) {
			t.Fatalf("conn %d: RTT series diverged", k)
		}
		if !reflect.DeepEqual(res.AckArrivals[k], full.AckArrivals[k]) {
			t.Fatalf("conn %d: ACK arrivals diverged", k)
		}
		if !reflect.DeepEqual(res.Collapses[k], full.Collapses[k]) {
			t.Fatalf("conn %d: collapses diverged", k)
		}
	}
}

// TestMeasureGatingValidation pins the out-of-range errors.
func TestMeasureGatingValidation(t *testing.T) {
	cfg := twoWay(10 * time.Millisecond)
	cfg.MeasureConns = []int{5}
	if _, err := RunE(cfg); err == nil {
		t.Fatal("out-of-range MeasureConns accepted")
	}
	cfg = twoWay(10 * time.Millisecond)
	cfg.MeasureTrunks = []int{3}
	if _, err := RunE(cfg); err == nil {
		t.Fatal("out-of-range MeasureTrunks accepted")
	}
}
