package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"tahoedyn/internal/plot"
	"tahoedyn/internal/trace"
)

// twoWay is the §4 two-way dumbbell at reduced duration, enough to cross
// several congestion epochs in both phase modes.
func twoWay(tau time.Duration) Config {
	cfg := DumbbellConfig(tau, DefaultBuffer)
	cfg.Conns = []ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 20 * time.Second
	cfg.Duration = 80 * time.Second
	return cfg
}

// tsvOf renders the run's headline series — both bottleneck queues and
// both congestion windows — exactly as the figure pipeline would.
func tsvOf(t *testing.T, res *Result) string {
	t.Helper()
	var sb strings.Builder
	err := plot.TSV(&sb, res.MeasureFrom, res.MeasureTo, 100*time.Millisecond,
		res.Q1(), res.Q2(), res.Cwnd[0], res.Cwnd[1])
	if err != nil {
		t.Fatalf("TSV: %v", err)
	}
	return sb.String()
}

// Pooling must be invisible to the physics: a pooled run and a
// NoPool run of the same configuration produce byte-identical plot
// output and identical traces, drop logs, stats, and event counts.
// This covers both paper modes: out-of-phase (Figs. 4–5, τ=10 ms)
// and in-phase (Figs. 6–7, τ=1 s).
func TestPooledRunsAreByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		tau  time.Duration
	}{
		{"fig4-5-out-of-phase", 10 * time.Millisecond},
		{"fig6-7-in-phase", time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pooled := twoWay(tc.tau)
			plain := twoWay(tc.tau)
			plain.NoPool = true
			a := Run(pooled)
			b := Run(plain)

			if got, want := tsvOf(t, a), tsvOf(t, b); got != want {
				t.Fatal("pooled and non-pooled TSV output differ")
			}
			if !reflect.DeepEqual(a.Drops, b.Drops) {
				t.Fatalf("drop logs differ: %d vs %d events", len(a.Drops), len(b.Drops))
			}
			if !reflect.DeepEqual(a.TrunkDeps, b.TrunkDeps) {
				t.Fatal("trunk departure logs differ")
			}
			if !reflect.DeepEqual(a.SenderStats, b.SenderStats) ||
				!reflect.DeepEqual(a.ReceiverStats, b.ReceiverStats) {
				t.Fatal("endpoint stats differ")
			}
			if !reflect.DeepEqual(a.Delivered, b.Delivered) {
				t.Fatalf("delivered = %v vs %v", a.Delivered, b.Delivered)
			}
			if !reflect.DeepEqual(a.TrunkUtil, b.TrunkUtil) {
				t.Fatalf("utilization = %v vs %v", a.TrunkUtil, b.TrunkUtil)
			}
			if a.Events != b.Events {
				t.Fatalf("events = %d vs %d", a.Events, b.Events)
			}
			if !seriesEqual(a.RTT[0], b.RTT[0]) || !seriesEqual(a.RTT[1], b.RTT[1]) {
				t.Fatal("RTT series differ")
			}
		})
	}
}

// seriesEqual compares two trace series point by point.
func seriesEqual(a, b *trace.Series) bool {
	return reflect.DeepEqual(a.Points, b.Points)
}
