package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"tahoedyn/internal/plot"
	"tahoedyn/internal/topology"
	"tahoedyn/internal/trace"
)

// twoWay is the §4 two-way dumbbell at reduced duration, enough to cross
// several congestion epochs in both phase modes.
func twoWay(tau time.Duration) Config {
	cfg := DumbbellConfig(tau, DefaultBuffer)
	cfg.Conns = []ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 20 * time.Second
	cfg.Duration = 80 * time.Second
	return cfg
}

// parkingLotShort is a multi-bottleneck configuration: the classic
// 3-hop parking lot — one long connection across every trunk against
// one single-hop cross connection per trunk — at reduced duration.
func parkingLotShort() Config {
	g := topology.ParkingLot(3)
	cfg := Config{
		Topology:   &g,
		TrunkDelay: 10 * time.Millisecond,
		Buffer:     DefaultBuffer,
		Seed:       1,
	}
	cfg.Conns = []ConnSpec{
		{SrcHost: 0, DstHost: 3, Start: -1},
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 2, Start: -1},
		{SrcHost: 2, DstHost: 3, Start: -1},
	}
	cfg.Warmup = 20 * time.Second
	cfg.Duration = 80 * time.Second
	return cfg
}

// tsvOf renders the run's headline series — every trunk queue in both
// directions and every congestion window — exactly as the figure
// pipeline would.
func tsvOf(t *testing.T, res *Result) string {
	t.Helper()
	var series []*trace.Series
	for i := range res.TrunkQueue {
		series = append(series, res.TrunkQueue[i][0], res.TrunkQueue[i][1])
	}
	series = append(series, res.Cwnd...)
	var sb strings.Builder
	err := plot.TSV(&sb, res.MeasureFrom, res.MeasureTo, 100*time.Millisecond, series...)
	if err != nil {
		t.Fatalf("TSV: %v", err)
	}
	return sb.String()
}

// assertRunsIdentical asserts two runs produced the same physics:
// byte-identical plot output and identical traces, drop logs, stats,
// and event counts.
func assertRunsIdentical(t *testing.T, a, b *Result) {
	t.Helper()
	if got, want := tsvOf(t, a), tsvOf(t, b); got != want {
		t.Fatal("TSV output differs")
	}
	if !reflect.DeepEqual(a.Drops, b.Drops) {
		t.Fatalf("drop logs differ: %d vs %d events", len(a.Drops), len(b.Drops))
	}
	if !reflect.DeepEqual(a.TrunkDeps, b.TrunkDeps) {
		t.Fatal("trunk departure logs differ")
	}
	if !reflect.DeepEqual(a.SenderStats, b.SenderStats) ||
		!reflect.DeepEqual(a.ReceiverStats, b.ReceiverStats) {
		t.Fatal("endpoint stats differ")
	}
	if !reflect.DeepEqual(a.Delivered, b.Delivered) {
		t.Fatalf("delivered = %v vs %v", a.Delivered, b.Delivered)
	}
	if !reflect.DeepEqual(a.TrunkUtil, b.TrunkUtil) {
		t.Fatalf("utilization = %v vs %v", a.TrunkUtil, b.TrunkUtil)
	}
	if a.Events != b.Events {
		t.Fatalf("events = %d vs %d", a.Events, b.Events)
	}
	for k := range a.RTT {
		if !seriesEqual(a.RTT[k], b.RTT[k]) {
			t.Fatalf("RTT series %d differ", k)
		}
	}
}

// Pooling must be invisible to the physics: a pooled run and a
// NoPool run of the same configuration produce byte-identical plot
// output and identical traces, drop logs, stats, and event counts.
// This covers both paper modes — out-of-phase (Figs. 4–5, τ=10 ms) and
// in-phase (Figs. 6–7, τ=1 s) — plus a multi-bottleneck parking-lot
// topology run.
func TestPooledRunsAreByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"fig4-5-out-of-phase", func() Config { return twoWay(10 * time.Millisecond) }},
		{"fig6-7-in-phase", func() Config { return twoWay(time.Second) }},
		{"parking-lot-multibottleneck", parkingLotShort},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pooled := tc.cfg()
			plain := tc.cfg()
			plain.NoPool = true
			assertRunsIdentical(t, Run(pooled), Run(plain))
		})
	}
}

// seriesEqual compares two trace series point by point.
func seriesEqual(a, b *trace.Series) bool {
	return reflect.DeepEqual(a.Points, b.Points)
}
