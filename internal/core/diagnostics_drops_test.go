package core

// Second-stage probe: drop-pattern structure of the small-pipe two-way
// configuration at fine epoch granularity, across seeds.

import (
	"testing"
	"time"

	"tahoedyn/internal/analysis"
)

func TestProbeSmallPipeDropStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	for seed := int64(1); seed <= 4; seed++ {
		cfg := DumbbellConfig(10*time.Millisecond, 20)
		cfg.Seed = seed
		cfg.Conns = []ConnSpec{
			{SrcHost: 0, DstHost: 1, Start: -1},
			{SrcHost: 1, DstHost: 0, Start: -1},
		}
		cfg.Warmup = 200 * time.Second
		cfg.Duration = 500 * time.Second
		res := Run(cfg)
		epochs := analysis.Epochs(dropsAfter(res.Drops, cfg.Warmup), 2*time.Second)
		pat := analysis.ClassifyTwoConnDrops(epochs, 1, 2)
		t.Logf("seed=%d: utilF=%.3f epochs=%d singleEach=%d oneSided=%d alt=%.2f",
			seed, res.UtilForward(), pat.Epochs, pat.SingleEach, pat.OneSided, pat.AlternationRate())
		for i, e := range epochs {
			if i >= 12 {
				break
			}
			t.Logf("   %v %v", e.Start.Round(100*time.Millisecond), e.LossByConn())
		}
	}
}
