package core

import (
	"context"
	"sync"

	"tahoedyn/internal/link"
	"tahoedyn/internal/node"
	"tahoedyn/internal/obs"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
	"tahoedyn/internal/tcp"
)

// Arena is a reusable allocation context for back-to-back simulation
// runs. A fresh Build allocates an engine (wheel buckets, event free
// list), a packet pool, and — when tracing is on — the trace ring; an
// Arena keeps all of that warm between runs, so an N-point sweep pays
// the allocation cost once per worker instead of once per point.
//
// Ownership rules (DESIGN.md §11): the arena owns only memory that does
// NOT escape into a Result. Engine bucket/run/free storage, the packet
// free list, and the trace ring are invisible to callers and safe to
// recycle; Result-owned containers (plot series, drop and departure
// logs, the metrics registry) are handed to the caller and are always
// freshly allocated. Reuse is therefore behavior-neutral: an arena run
// is byte-identical to a cold run (asserted by arena_test.go). The one
// observable difference is diagnostic: pool/* metrics count per-run
// pool misses, and a warm arena keeps them near zero.
//
// An Arena is single-goroutine property like the engine it recycles: it
// may own at most one live Sim at a time, and the next Build must not
// happen before the previous run finished (or was abandoned — Build
// resets the engine first, so a canceled run's leftovers are recycled,
// not leaked into the next run's schedule).
type Arena struct {
	eng    *sim.Engine
	pool   *packet.Pool
	tracer *obs.Tracer // previous run's tracer; its ring is reclaimed on the next Build

	// Extra per-region storage for sharded runs: region r > 0 draws from
	// slot r-1 (region 0 shares the serial slots above, so alternating
	// serial and sharded runs keeps them warm too). Slices grow to the
	// largest shard count the arena has seen.
	engs    []*sim.Engine
	pools   []*packet.Pool
	tracers []*obs.Tracer

	// Wiring slabs: the per-run element slices buildE needs (switches,
	// hosts, trunk port pairs, senders, receivers). They are held by the
	// live Sim but never escape into a Result, so under the one-live-Sim
	// contract the next Build may reclaim their backing arrays. At 10⁵
	// switches the switch slice alone is ~1 MB per run; a sweep reuses it.
	swSlab    []*node.Switch
	hostSlab  []*node.Host
	trunkSlab [][2]*link.Port
	sendSlab  []*tcp.Sender
	recvSlab  []*tcp.Receiver
}

// slab returns a zeroed length-n slice backed by *buf, growing the
// backing array only when n exceeds its capacity.
func slab[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	s := (*buf)[:n]
	clear(s)
	return s
}

// wiring hands buildE its element slices, reusing the arena's slabs.
// A nil arena allocates fresh ones.
func (a *Arena) wiring(nSw, nh, nl, nc int) ([]*node.Switch, []*node.Host, [][2]*link.Port, []*tcp.Sender, []*tcp.Receiver) {
	if a == nil {
		return make([]*node.Switch, nSw), make([]*node.Host, nh),
			make([][2]*link.Port, nl), make([]*tcp.Sender, nc), make([]*tcp.Receiver, nc)
	}
	return slab(&a.swSlab, nSw), slab(&a.hostSlab, nh),
		slab(&a.trunkSlab, nl), slab(&a.sendSlab, nc), slab(&a.recvSlab, nc)
}

// NewArena returns an empty arena: its first Build allocates, later
// Builds reuse.
func NewArena() *Arena { return &Arena{} }

// Build is Arena-backed core.Build: it assembles a runnable Sim drawing
// warm storage from the arena, panicking on an invalid configuration.
func (a *Arena) Build(cfg Config) *Sim {
	s, err := a.BuildE(cfg)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// BuildE is Build with error reporting.
func (a *Arena) BuildE(cfg Config) (*Sim, error) {
	return buildE(cfg, a)
}

// Run builds and finishes the scenario using the arena's warm storage.
func (a *Arena) Run(cfg Config) *Result {
	return a.Build(cfg).Finish()
}

// RunE is Run with error reporting.
func (a *Arena) RunE(cfg Config) (*Result, error) {
	s, err := a.BuildE(cfg)
	if err != nil {
		return nil, err
	}
	return s.finish(nil)
}

// RunContext is RunE with cancellation; see core.RunContext.
func (a *Arena) RunContext(ctx context.Context, cfg Config) (*Result, error) {
	s, err := a.BuildE(cfg)
	if err != nil {
		return nil, err
	}
	return s.FinishContext(ctx)
}

// engine returns an engine of the kind cfg selects: the kept one,
// reset, when its kind matches; otherwise a fresh one that the arena
// keeps for next time. A nil arena always allocates.
func (a *Arena) engine(kind sim.SchedKind) *sim.Engine {
	if a == nil {
		return sim.NewSched(kind)
	}
	if a.eng != nil && a.eng.Kind() == sim.ResolveSched(kind) {
		a.eng.Reset()
		return a.eng
	}
	a.eng = sim.NewSched(kind)
	return a.eng
}

// packetPool returns the kept packet pool with its per-run counters
// reset, or a fresh one. A nil arena always allocates.
func (a *Arena) packetPool() *packet.Pool {
	if a == nil {
		return packet.NewPool()
	}
	if a.pool == nil {
		a.pool = packet.NewPool()
	} else {
		a.pool.ResetCounters()
	}
	return a.pool
}

// traceRing reclaims the previous run's trace ring, if any. The
// previous run has finished by the Arena contract, so its tracer sees
// no further events.
func (a *Arena) traceRing() []obs.Event {
	if a == nil || a.tracer == nil {
		return nil
	}
	r := a.tracer.Ring()
	a.tracer = nil
	return r
}

// keepTracer remembers the new run's tracer so the ring can be
// reclaimed on the next Build. No-op on a nil arena.
func (a *Arena) keepTracer(t *obs.Tracer) {
	if a != nil {
		a.tracer = t
	}
}

// engines returns k engines of the kind cfg selects: engine(kind) for
// region 0 and the arena's extra slots (reset when the kind matches,
// replaced otherwise) for the rest. A nil arena allocates all of them.
func (a *Arena) engines(kind sim.SchedKind, k int) []*sim.Engine {
	out := make([]*sim.Engine, k)
	out[0] = a.engine(kind)
	if a == nil {
		for i := 1; i < k; i++ {
			out[i] = sim.NewSched(kind)
		}
		return out
	}
	for len(a.engs) < k-1 {
		a.engs = append(a.engs, nil)
	}
	for i := 1; i < k; i++ {
		e := a.engs[i-1]
		if e != nil && e.Kind() == sim.ResolveSched(kind) {
			e.Reset()
		} else {
			e = sim.NewSched(kind)
			a.engs[i-1] = e
		}
		out[i] = e
	}
	return out
}

// packetPools is packetPool for k regions, counter-reset like the
// serial slot. A nil arena allocates all of them.
func (a *Arena) packetPools(k int) []*packet.Pool {
	out := make([]*packet.Pool, k)
	out[0] = a.packetPool()
	if a == nil {
		for i := 1; i < k; i++ {
			out[i] = packet.NewPool()
		}
		return out
	}
	for len(a.pools) < k-1 {
		a.pools = append(a.pools, nil)
	}
	for i := 1; i < k; i++ {
		if a.pools[i-1] == nil {
			a.pools[i-1] = packet.NewPool()
		} else {
			a.pools[i-1].ResetCounters()
		}
		out[i] = a.pools[i-1]
	}
	return out
}

// shardRing reclaims region r's trace ring from the previous sharded
// run (region 0 reclaims the serial ring).
func (a *Arena) shardRing(r int) []obs.Event {
	if r == 0 {
		return a.traceRing()
	}
	if a == nil || r-1 >= len(a.tracers) || a.tracers[r-1] == nil {
		return nil
	}
	ring := a.tracers[r-1].Ring()
	a.tracers[r-1] = nil
	return ring
}

// keepTracers remembers a sharded run's region tracers so their rings
// can be reclaimed on the next Build. No-op on a nil arena.
func (a *Arena) keepTracers(ts []*obs.Tracer) {
	if a == nil {
		return
	}
	a.keepTracer(ts[0])
	for len(a.tracers) < len(ts)-1 {
		a.tracers = append(a.tracers, nil)
	}
	for i := 1; i < len(ts); i++ {
		a.tracers[i-1] = ts[i]
	}
}

// arenaPool shares warm arenas across every core.Run/RunE/RunContext in
// the process: sequential runs on one goroutine keep hitting the same
// warm arena, and parallel runs each draw their own.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}

func getArena() *Arena { return arenaPool.Get().(*Arena) }

func putArena(a *Arena) { arenaPool.Put(a) }
