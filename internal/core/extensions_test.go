package core

import (
	"testing"
	"time"

	"tahoedyn/internal/packet"
)

func TestGoodputSnapshotsAtWarmup(t *testing.T) {
	cfg := oneWayConfig(10*time.Millisecond, 2)
	cfg.Warmup = 50 * time.Second
	cfg.Duration = 150 * time.Second
	res := Run(cfg)
	for k := range res.Goodput {
		if res.Goodput[k] <= 0 {
			t.Fatalf("conn %d goodput = %d", k+1, res.Goodput[k])
		}
		if res.Goodput[k] >= res.Delivered[k] {
			t.Fatalf("conn %d goodput %d not smaller than total delivered %d",
				k+1, res.Goodput[k], res.Delivered[k])
		}
	}
	// The bottleneck carries ~12.5 data packets/s; the two connections'
	// goodput over 100 s must sum to roughly that.
	total := res.Goodput[0] + res.Goodput[1]
	if total < 1000 || total > 1350 {
		t.Fatalf("total goodput = %d, want ≈1250", total)
	}
}

func TestRandomDropScenarioRuns(t *testing.T) {
	cfg := oneWayConfig(10*time.Millisecond, 3)
	cfg.Discard = RandomDrop
	cfg.Warmup = 50 * time.Second
	cfg.Duration = 250 * time.Second
	res := Run(cfg)
	if len(res.Drops) == 0 {
		t.Fatal("no drops in congested random-drop scenario")
	}
	if res.UtilForward() < 0.9 {
		t.Fatalf("utilization = %v", res.UtilForward())
	}
	// Determinism holds with the extra per-port RNGs.
	res2 := Run(cfg)
	if res2.Events != res.Events || len(res2.Drops) != len(res.Drops) {
		t.Fatal("random-drop runs are not reproducible")
	}
	// Unlike drop-tail, random drop sometimes evicts mid-queue packets:
	// the dropped sequence numbers are not always the most recent
	// arrival. (Weak check: at least the scenario uses the policy.)
	if cfg.Discard != RandomDrop {
		t.Fatal("config lost the discard policy")
	}
}

func TestRenoConnectionInScenario(t *testing.T) {
	cfg := DumbbellConfig(10*time.Millisecond, 20)
	cfg.Conns = []ConnSpec{
		{SrcHost: 0, DstHost: 1, Reno: true, Start: -1},
		{SrcHost: 1, DstHost: 0, Reno: true, Start: -1},
	}
	cfg.Warmup = 100 * time.Second
	cfg.Duration = 400 * time.Second
	res := Run(cfg)
	var fastRtx, timeouts uint64
	for _, st := range res.SenderStats {
		fastRtx += st.FastRetransmits
		timeouts += st.Timeouts
	}
	if fastRtx == 0 {
		t.Fatal("Reno connections never fast-retransmitted")
	}
	if res.UtilForward() < 0.5 {
		t.Fatalf("Reno two-way utilization = %v", res.UtilForward())
	}
	// cwnd must never have been traced at 1 immediately after a dupack
	// collapse... weaker invariant: cwnd series max > 3 (recovery keeps
	// windows open).
	if res.Cwnd[0].Max(cfg.Warmup, cfg.Duration) <= 3 {
		t.Fatal("Reno window never opened")
	}
}

func TestExtraDelayLengthensRTT(t *testing.T) {
	base := DumbbellConfig(10*time.Millisecond, 20)
	base.Conns = []ConnSpec{{SrcHost: 0, DstHost: 1, Start: 0}}
	base.Warmup = 20 * time.Second
	base.Duration = 120 * time.Second
	fast := Run(base)

	slow := base
	slow.Conns = []ConnSpec{{SrcHost: 0, DstHost: 1, Start: 0, ExtraDelay: 500 * time.Millisecond}}
	slowRes := Run(slow)

	// The delayed connection's goodput must be strictly lower: same
	// bottleneck, much longer RTT during slow start and recovery.
	if slowRes.Goodput[0] >= fast.Goodput[0] {
		t.Fatalf("extra delay did not reduce goodput: %d vs %d",
			slowRes.Goodput[0], fast.Goodput[0])
	}
	if slowRes.Goodput[0] == 0 {
		t.Fatal("delayed connection starved completely")
	}
}

func TestMixedFixedAndAdaptiveConnections(t *testing.T) {
	cfg := DumbbellConfig(10*time.Millisecond, 0)
	cfg.Conns = []ConnSpec{
		{SrcHost: 0, DstHost: 1, FixedWnd: 10, Start: 0},
		{SrcHost: 1, DstHost: 0, MaxWnd: 12, Start: 0},
	}
	cfg.Warmup = 20 * time.Second
	cfg.Duration = 120 * time.Second
	res := Run(cfg)
	if res.Goodput[0] == 0 || res.Goodput[1] == 0 {
		t.Fatalf("goodputs %v", res.Goodput)
	}
	if len(res.Drops) != 0 {
		t.Fatal("drops despite infinite buffers")
	}
}

func TestFourSwitchChainRouting(t *testing.T) {
	cfg := Config{
		Switches:   4,
		TrunkDelay: 10 * time.Millisecond,
		Buffer:     30,
		Seed:       1,
		Warmup:     20 * time.Second,
		Duration:   120 * time.Second,
		Conns: []ConnSpec{
			{SrcHost: 0, DstHost: 3, Start: 0}, // 3 hops
			{SrcHost: 3, DstHost: 0, Start: 0}, // 3 hops reverse
			{SrcHost: 1, DstHost: 2, Start: 0}, // middle hop only
		},
	}
	res := Run(cfg)
	for k, g := range res.Goodput {
		if g == 0 {
			t.Fatalf("conn %d starved on the chain", k+1)
		}
	}
	// The 3-hop connections' data crosses every trunk; the middle trunk
	// carries all three connections and must be the busiest.
	mid := res.TrunkUtil[1][0]
	if mid < res.TrunkUtil[0][0] || mid < res.TrunkUtil[2][0] {
		t.Fatalf("middle trunk not busiest: %v", res.TrunkUtil)
	}
	// Unlike the single-bottleneck dumbbell, the chain *can* drop ACKs:
	// ACKs compressed at one hop arrive clumped at the next, where they
	// can overflow a queue. Both kinds must be accounted for, and the
	// connections must survive them (checked via goodput above).
	ackDrops, dataDrops := 0, 0
	for _, d := range res.Drops {
		if d.Kind == packet.Ack {
			ackDrops++
		} else {
			dataDrops++
		}
	}
	if ackDrops+dataDrops != len(res.Drops) {
		t.Fatal("drop kind accounting broken")
	}
	if dataDrops == 0 {
		t.Fatal("no data drops in a congested chain")
	}
}
