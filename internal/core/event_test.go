package core

import (
	"strings"
	"testing"
	"time"

	"tahoedyn/internal/topology"
)

// ring returns an n-switch cycle: link i joins switches i and (i+1)%n,
// so no link is a bridge and any single link may go down.
func ring(n int) topology.Graph {
	g := topology.Graph{Switches: n}
	for i := 0; i < n; i++ {
		g.Links = append(g.Links, topology.LinkSpec{A: i, B: (i + 1) % n})
	}
	return g
}

// ringEventConfig is the shared event-test scenario: an 8-switch ring
// with two-way traffic across link 0.
func ringEventConfig() Config {
	g := ring(8)
	return Config{
		Topology:   &g,
		TrunkDelay: 10 * time.Millisecond,
		Buffer:     DefaultBuffer,
		Seed:       3,
		Warmup:     time.Second,
		Duration:   60 * time.Second,
		Conns: []ConnSpec{
			{SrcHost: 0, DstHost: 1, Start: 0},
			{SrcHost: 1, DstHost: 0, Start: 100 * time.Millisecond},
		},
	}
}

// lastDeparture returns the time of the last departure logged on trunk
// li direction dir, or -1 if none.
func lastDeparture(res *Result, li, dir int) time.Duration {
	deps := res.TrunkDeps[li][dir]
	if len(deps) == 0 {
		return -1
	}
	return deps[len(deps)-1].T
}

// TestLinkEventDownReroutes pins the semantics of a down event: routing
// steers away at T (departures on the downed line stop once its queue
// drains), packets already accepted still deliver, and traffic keeps
// flowing over the alternate path.
func TestLinkEventDownReroutes(t *testing.T) {
	downAt := 20 * time.Second
	cfg := ringEventConfig()
	cfg.Events = []LinkEvent{{T: downAt, Link: 0, Down: true}}
	res := Run(cfg)

	// The direct link carried the traffic before the event…
	for dir := 0; dir < 2; dir++ {
		if len(res.TrunkDeps[0][dir]) == 0 || res.TrunkDeps[0][dir][0].T >= downAt {
			t.Fatalf("dir %d: no pre-event departures on the direct link", dir)
		}
		// …and stops within a queue-drain of the event (20 packets of
		// 500 B at 50 kbps is 1.6 s; 5 s is a generous bound).
		if last := lastDeparture(res, 0, dir); last >= downAt+5*time.Second {
			t.Fatalf("dir %d: departure at %v, long after the link went down at %v", dir, last, downAt)
		}
	}
	// Traffic continues on the long way around: the reroute sends
	// conn 1's data (host 1 → host 0) out sw1's other port, link 1
	// reverse direction, well after the event.
	if last := lastDeparture(res, 1, 1); last < cfg.Duration-10*time.Second {
		t.Fatalf("alternate path idle after the event (last departure %v)", last)
	}
	for k, d := range res.Delivered {
		if d == 0 {
			t.Fatalf("conn %d delivered nothing", k)
		}
	}
}

// TestLinkEventDownThenRestore brings the link back with a bandwidth
// event at its original rate: routing must return to the direct path.
func TestLinkEventDownThenRestore(t *testing.T) {
	cfg := ringEventConfig()
	cfg.Events = []LinkEvent{
		{T: 15 * time.Second, Link: 0, Down: true},
		{T: 35 * time.Second, Link: 0, Bandwidth: DefaultTrunkBandwidth},
	}
	res := Run(cfg)
	if last := lastDeparture(res, 0, 0); last < 40*time.Second {
		t.Fatalf("direct link idle after restore (last departure %v)", last)
	}
}

// TestLinkEventNoOpIdentity sets a link's bandwidth to the value it
// already has: routing and port rates are untouched, so the run must be
// byte-identical to one with no events at all.
func TestLinkEventNoOpIdentity(t *testing.T) {
	cfg := ringEventConfig()
	base := Run(cfg)
	cfg.Events = []LinkEvent{{T: 10 * time.Second, Link: 3, Bandwidth: DefaultTrunkBandwidth}}
	assertRunsIdentical(t, base, Run(cfg))
}

// TestLinkEventShardIdentity is the byte-identity contract for event
// runs: mid-run down, restore, and bandwidth-step events on ring and
// scale-free topologies must produce identical results at every shard
// count.
func TestLinkEventShardIdentity(t *testing.T) {
	ringCfg := ringEventConfig()
	ringCfg.Duration = 40 * time.Second
	ringCfg.Events = []LinkEvent{
		{T: 8 * time.Second, Link: 0, Down: true},
		{T: 18 * time.Second, Link: 0, Bandwidth: DefaultTrunkBandwidth},
		{T: 25 * time.Second, Link: 4, Bandwidth: 25_000},
	}

	ba := topology.BarabasiAlbert(24, 2, 9)
	baCfg := Config{
		Topology:   &ba,
		TrunkDelay: 10 * time.Millisecond,
		Buffer:     DefaultBuffer,
		Seed:       7,
		Warmup:     5 * time.Second,
		Duration:   30 * time.Second,
		Conns: []ConnSpec{
			{SrcHost: 0, DstHost: 23, Start: -1},
			{SrcHost: 23, DstHost: 0, Start: -1},
			{SrcHost: 5, DstHost: 17, Start: -1},
			{SrcHost: 12, DstHost: 3, Start: -1},
		},
		Events: []LinkEvent{
			{T: 10 * time.Second, Link: 2, Bandwidth: 25_000},
			{T: 12 * time.Second, Link: 7, Bandwidth: 100_000},
			{T: 20 * time.Second, Link: 2, Bandwidth: DefaultTrunkBandwidth},
		},
	}

	for name, cfg := range map[string]Config{"ring": ringCfg, "ba": baCfg} {
		t.Run(name, func(t *testing.T) {
			serial := runSharded(cfg, 1)
			for _, k := range []int{2, 4} {
				assertRunsIdentical(t, serial, runSharded(cfg, k))
			}
		})
	}
}

// TestLinkEventErrors pins the build-time rejections: disconnecting
// downs (every chain link is a bridge), bad link indices, bad times,
// and ambiguous down+bandwidth events all surface as errors.
func TestLinkEventErrors(t *testing.T) {
	base := func() Config {
		cfg := DumbbellConfig(10*time.Millisecond, DefaultBuffer)
		cfg.Warmup = time.Second
		cfg.Duration = 10 * time.Second
		cfg.Conns = []ConnSpec{{SrcHost: 0, DstHost: 1, Start: 0}}
		return cfg
	}
	cases := map[string]struct {
		ev   LinkEvent
		want string
	}{
		"bridge-down":    {LinkEvent{T: 2 * time.Second, Link: 0, Down: true}, "disconnect"},
		"bad-link":       {LinkEvent{T: 2 * time.Second, Link: 5, Bandwidth: 1000}, "out of range"},
		"negative-time":  {LinkEvent{T: -time.Second, Link: 0, Bandwidth: 1000}, "negative event time"},
		"down-and-bw":    {LinkEvent{T: 2 * time.Second, Link: 0, Bandwidth: 1000, Down: true}, "both"},
		"no-change-kind": {LinkEvent{T: 2 * time.Second, Link: 0}, "positive bandwidth or down"},
	}
	for name, tc := range cases {
		cfg := base()
		cfg.Events = []LinkEvent{tc.ev}
		_, err := RunE(cfg)
		if err == nil {
			t.Errorf("%s: RunE accepted %+v", name, tc.ev)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}
