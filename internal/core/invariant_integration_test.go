package core_test

// Integration coverage for the streaming invariant engine over real
// simulator runs: every shipped scenario, both §4 synchronization
// regimes, a sharded run, metric identity with checking off, and a
// deliberately corrupted stored trace that must be flagged with the
// offending event.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"tahoedyn/internal/core"
	"tahoedyn/internal/obs"
	"tahoedyn/internal/scenario"
	"tahoedyn/internal/tstore"
)

// loadScenario parses a shipped scenario file at quarter duration —
// invariants hold at any length, so the tests keep runs short.
func loadScenario(t *testing.T, path string) core.Config {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cfg, err := scenario.Parse(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	cfg.Warmup /= 4
	cfg.Duration /= 4
	return cfg
}

func requireClean(t *testing.T, res *core.Result) {
	t.Helper()
	if res.Invariant != nil {
		t.Fatal(res.Invariant)
	}
	if res.TraceErr != nil {
		t.Fatalf("trace error: %v", res.TraceErr)
	}
}

// Every shipped scenario must run invariant-clean: packet conservation
// and causality at each port, monotonic event time, cwnd bounds, and
// timeout monotonicity.
func TestInvariantsCleanOnShippedScenarios(t *testing.T) {
	files, err := filepath.Glob("../../scenarios/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no shipped scenarios found: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			cfg := loadScenario(t, path)
			cfg.Invariants = &tstore.CheckOptions{}
			requireClean(t, core.Run(cfg))
		})
	}
}

// A sharded run merges every region's independently-numbered event
// stream; the checker must intern locations by name or cross-region id
// collisions produce phantom conservation violations.
func TestInvariantsCleanShardedRun(t *testing.T) {
	cfg := loadScenario(t, "../../scenarios/chain-wave.json")
	cfg.Shards = 4
	cfg.Invariants = &tstore.CheckOptions{}
	requireClean(t, core.Run(cfg))
}

// Both §4 synchronization regimes of the fixed-window system (Figs. 8
// and 9): τ = 0.01 s puts windows 30/25 out of phase, τ = 1 s puts the
// same windows in phase. The invariants are regime-independent.
func TestInvariantsCleanBothPhaseModes(t *testing.T) {
	for _, tc := range []struct {
		name string
		tau  time.Duration
	}{
		{"out-of-phase-small-pipe", 10 * time.Millisecond},
		{"in-phase-large-pipe", time.Second},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := core.DumbbellConfig(tc.tau, 0 /* infinite buffers */)
			cfg.Conns = []core.ConnSpec{
				{SrcHost: 0, DstHost: 1, FixedWnd: 30, Start: -1},
				{SrcHost: 1, DstHost: 0, FixedWnd: 25, Start: -1},
			}
			cfg.Warmup = 50 * time.Second
			cfg.Duration = 200 * time.Second
			cfg.Invariants = &tstore.CheckOptions{}
			requireClean(t, core.Run(cfg))
		})
	}
}

// The checker only observes: every paper metric must be identical with
// invariants on and off.
func TestInvariantsLeaveMetricsIdentical(t *testing.T) {
	cfg := loadScenario(t, "../../scenarios/twoway-smallpipe.json")
	plain := core.Run(cfg)

	cfg = loadScenario(t, "../../scenarios/twoway-smallpipe.json")
	cfg.Invariants = &tstore.CheckOptions{}
	checked := core.Run(cfg)
	requireClean(t, checked)

	if !reflect.DeepEqual(plain.TrunkUtil, checked.TrunkUtil) {
		t.Errorf("TrunkUtil differs: %v vs %v", plain.TrunkUtil, checked.TrunkUtil)
	}
	if !reflect.DeepEqual(plain.Goodput, checked.Goodput) {
		t.Errorf("Goodput differs: %v vs %v", plain.Goodput, checked.Goodput)
	}
	if !reflect.DeepEqual(plain.Delivered, checked.Delivered) {
		t.Errorf("Delivered differs: %v vs %v", plain.Delivered, checked.Delivered)
	}
	if !reflect.DeepEqual(plain.Drops, checked.Drops) {
		t.Errorf("drop logs differ: %d vs %d drops", len(plain.Drops), len(checked.Drops))
	}
	if !reflect.DeepEqual(plain.SenderStats, checked.SenderStats) {
		t.Errorf("SenderStats differ: %+v vs %+v", plain.SenderStats, checked.SenderStats)
	}
}

// A deliberately corrupted stored trace — one event's queue length
// nudged — must be flagged by the offline pass with the offending
// event pinpointed.
func TestInvariantsFlagCorruptedStoredTrace(t *testing.T) {
	cfg := loadScenario(t, "../../scenarios/twoway-smallpipe.json")
	cfg.Warmup = 5 * time.Second
	cfg.Duration = 30 * time.Second

	var buf bytes.Buffer
	w := tstore.NewWriter(&buf, tstore.WriterOptions{})
	cfg.Obs = &obs.Options{Trace: &obs.TraceOptions{Sink: w}}
	res := core.Run(cfg)
	if res.TraceErr != nil {
		t.Fatal(res.TraceErr)
	}

	s, err := tstore.NewStore(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	var events []obs.Event
	if err := s.Scan(tstore.Query{}, func(ev *obs.Event) error {
		events = append(events, *ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	n, vio, err := tstore.Check(s, tstore.CheckOptions{})
	if err != nil || vio != nil {
		t.Fatalf("pristine store not clean: checked=%d vio=%v err=%v", n, vio, err)
	}

	// Corrupt one mid-trace Enqueue: its reported queue length can no
	// longer match what conservation implies.
	target := -1
	for i := len(events) / 2; i < len(events); i++ {
		if events[i].Type == obs.Enqueue {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no enqueue event in the second half of the trace")
	}
	events[target].Val += 3

	var corrupt bytes.Buffer
	cw := tstore.NewWriter(&corrupt, tstore.WriterOptions{})
	if err := cw.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := cw.Events(s.Locs(), events); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	cs, err := tstore.NewStore(bytes.NewReader(corrupt.Bytes()), int64(corrupt.Len()))
	if err != nil {
		t.Fatal(err)
	}
	_, vio, err = tstore.Check(cs, tstore.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vio == nil {
		t.Fatal("corrupted trace passed the invariant check")
	}
	if vio.Rule != "conservation" {
		t.Fatalf("rule = %q, want conservation", vio.Rule)
	}
	if vio.Index != uint64(target) {
		t.Fatalf("violation at event %d, corrupted event %d", vio.Index, target)
	}
	if vio.Event.ID != events[target].ID {
		t.Fatalf("violation names packet %d, corrupted packet %d", vio.Event.ID, events[target].ID)
	}
}
