package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"tahoedyn/internal/obs"
	"tahoedyn/internal/topology"
)

// runSharded runs cfg with an explicit shard count.
func runSharded(cfg Config, k int) *Result {
	cfg.Shards = k
	return Run(cfg)
}

// TestShardedRunnerEngaged guards against the sharded path silently
// degenerating to serial: a two-region dumbbell must build a runner and
// both region engines must execute events.
func TestShardedRunnerEngaged(t *testing.T) {
	cfg := twoWay(10 * time.Millisecond)
	cfg.Shards = 2
	s := Build(cfg)
	if s.runner == nil {
		t.Fatal("Shards=2 built no runner")
	}
	if len(s.engs) != 2 || len(s.pools) != 2 {
		t.Fatalf("engs=%d pools=%d, want 2 each", len(s.engs), len(s.pools))
	}
	res := s.Finish()
	for r, e := range s.engs {
		if e.Processed() == 0 {
			t.Fatalf("region %d executed no events", r)
		}
	}
	if sum := s.engs[0].Processed() + s.engs[1].Processed(); sum != res.Events {
		t.Fatalf("Events = %d, regions sum to %d", res.Events, sum)
	}
}

// TestShardedMatchesSerialRandomized is the lockstep property test:
// random chain topologies, random connection sets, random seeds — the
// sharded run must be byte-identical to the serial run at every shard
// count that fits the topology.
func TestShardedMatchesSerialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	taus := []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, time.Second}
	for trial := 0; trial < 8; trial++ {
		nSw := 2 + rng.Intn(4) // 2..5 switches, one host each
		cfg := DumbbellConfig(taus[rng.Intn(len(taus))], 5+rng.Intn(20))
		cfg.Switches = nSw
		cfg.Seed = rng.Int63()
		cfg.Warmup = 5 * time.Second
		cfg.Duration = 25 * time.Second
		cfg.Conns = nil
		nConns := 1 + rng.Intn(4)
		for c := 0; c < nConns; c++ {
			src := rng.Intn(nSw)
			dst := rng.Intn(nSw)
			if dst == src {
				dst = (src + 1) % nSw
			}
			cfg.Conns = append(cfg.Conns, ConnSpec{
				SrcHost:    src,
				DstHost:    dst,
				Start:      -1,
				DelayedAck: rng.Intn(3) == 0,
				ExtraDelay: time.Duration(rng.Intn(3)) * 20 * time.Millisecond,
			})
		}
		serial := runSharded(cfg, 1)
		for _, k := range []int{2, nSw} {
			sharded := runSharded(cfg, k)
			func() {
				defer func() {
					if t.Failed() {
						t.Logf("trial %d: %d switches, %d conns, seed %d, shards %d",
							trial, nSw, nConns, cfg.Seed, k)
					}
				}()
				assertRunsIdentical(t, serial, sharded)
			}()
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestShardedScaleFreeIdentity pins shard ≡ serial beyond lines: a
// seeded Barabási–Albert scale-free graph — hubs, leaves, uneven
// degree, partitioned by the BFS+refinement heuristic rather than
// contiguous chain blocks — must produce byte-identical results at
// every shard count.
func TestShardedScaleFreeIdentity(t *testing.T) {
	g := topology.BarabasiAlbert(24, 2, 9)
	cfg := Config{
		Topology:   &g,
		TrunkDelay: 10 * time.Millisecond,
		Buffer:     20,
		Seed:       7,
		Warmup:     5 * time.Second,
		Duration:   30 * time.Second,
		Conns: []ConnSpec{
			{SrcHost: 0, DstHost: 23, Start: -1},
			{SrcHost: 23, DstHost: 0, Start: -1},
			{SrcHost: 5, DstHost: 17, Start: -1},
			{SrcHost: 12, DstHost: 3, Start: -1},
		},
	}
	serial := runSharded(cfg, 1)
	for _, k := range []int{2, 4} {
		assertRunsIdentical(t, serial, runSharded(cfg, k))
	}
}

// TestShardedNoPoolIdentity crosses sharding with the NoPool debug
// mode: ownership transfer must behave with nil region pools too.
func TestShardedNoPoolIdentity(t *testing.T) {
	cfg := twoWay(10 * time.Millisecond)
	serial := runSharded(cfg, 1)
	cfg.NoPool = true
	assertRunsIdentical(t, serial, runSharded(cfg, 2))
}

// TestShardedExplicitRegions pins the Config.Regions override: a legal
// assignment reproduces the serial run; illegal ones surface as errors
// through RunE.
func TestShardedExplicitRegions(t *testing.T) {
	cfg := parkingLotShort() // 4 switches on a line
	serial := Run(cfg)
	cfg.Regions = [][]int{{0, 1}, {2, 3}}
	assertRunsIdentical(t, serial, Run(cfg))

	for name, regions := range map[string][][]int{
		"empty-region": {{0, 1, 2, 3}, {}},
		"duplicate":    {{0, 1}, {1, 2, 3}},
		"out-of-range": {{0, 1}, {2, 9}},
		"uncovered":    {{0, 1}, {2}},
	} {
		bad := parkingLotShort()
		bad.Regions = regions
		if _, err := RunE(bad); err == nil {
			t.Errorf("%s: RunE accepted bad regions %v", name, regions)
		}
	}

	conflict := parkingLotShort()
	conflict.Regions = [][]int{{0, 1}, {2, 3}}
	conflict.Shards = 3
	if _, err := RunE(conflict); err == nil {
		t.Error("RunE accepted Shards disagreeing with len(Regions)")
	}
}

// TestShardedCancelAndResume pins the cancellation contract under
// sharding: cancel lands mid-round without finalizing, and resuming
// completes to a Result byte-identical to an uninterrupted serial run.
func TestShardedCancelAndResume(t *testing.T) {
	cfg := twoWay(10 * time.Millisecond)
	cfg.Shards = 2
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Obs = &obs.Options{Progress: &obs.Progress{
		Every: time.Second,
		Fn: func(s obs.Snapshot) {
			if s.Now >= 30*time.Second {
				cancel()
			}
		},
	}}
	s, err := BuildE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.FinishContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FinishContext error = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled run returned a Result")
	}
	if now := s.Now(); now < 30*time.Second || now >= cfg.Duration {
		t.Fatalf("canceled at %v, want between 30s and %v", now, cfg.Duration)
	}
	resumed, err := s.FinishContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertRunsIdentical(t, Run(twoWay(10*time.Millisecond)), resumed)
}

// TestShardedArenaReuse runs sharded scenarios back to back on one
// arena — engines, pools, and trace rings for every region must recycle
// without leaking state into the next run. Alternating with a serial
// run exercises the shared region-0 slots.
func TestShardedArenaReuse(t *testing.T) {
	cfg := twoWay(10 * time.Millisecond)
	cfg.Shards = 2
	cold := Run(cfg)
	a := NewArena()
	first := a.Run(cfg)
	serialCfg := cfg
	serialCfg.Shards = 1
	a.Run(serialCfg) // interleave a serial run on the same arena
	second := a.Run(cfg)
	assertRunsIdentical(t, cold, first)
	assertRunsIdentical(t, cold, second)
}

// TestShardedTracing runs a sharded scenario with the full obs stack:
// physics must be untouched, the merged stream must reach the sink, and
// the sink must see every region's events in nondecreasing time order.
func TestShardedTracing(t *testing.T) {
	cfg := twoWay(10 * time.Millisecond)
	plain := Run(cfg)

	sink := obs.NewMemorySink()
	cfg.Shards = 2
	cfg.Obs = &obs.Options{Trace: &obs.TraceOptions{Sink: sink}, Metrics: true}
	res, err := RunE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceErr != nil {
		t.Fatalf("TraceErr = %v", res.TraceErr)
	}
	assertRunsIdentical(t, plain, res)
	_, evs := sink.Snapshot()
	if len(evs) == 0 {
		t.Fatal("merged sink saw no events")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatalf("merged stream goes backwards at %d: %v after %v", i, evs[i].T, evs[i-1].T)
		}
	}
	// The merged stream carries the same number of events a serial
	// tracer records for this run.
	serialSink := obs.NewMemorySink()
	scfg := twoWay(10 * time.Millisecond)
	scfg.Obs = &obs.Options{Trace: &obs.TraceOptions{Sink: serialSink}}
	if _, err := RunE(scfg); err != nil {
		t.Fatal(err)
	}
	if got, want := len(evs), serialSink.Len(); got != want {
		t.Fatalf("merged stream has %d events, serial tracer %d", got, want)
	}
}

// TestShardsClampAndChainPartition checks shard-count clamping (more
// shards than switches) end to end on a longer chain.
func TestShardsClampAndChainPartition(t *testing.T) {
	g := topology.Chain(3)
	cfg := Config{
		Topology:   &g,
		TrunkDelay: 10 * time.Millisecond,
		Buffer:     DefaultBuffer,
		Seed:       7,
		Warmup:     5 * time.Second,
		Duration:   25 * time.Second,
		Conns: []ConnSpec{
			{SrcHost: 0, DstHost: 2, Start: -1},
			{SrcHost: 2, DstHost: 0, Start: -1},
			{SrcHost: 1, DstHost: 2, Start: -1},
		},
	}
	serial := runSharded(cfg, 1)
	assertRunsIdentical(t, serial, runSharded(cfg, 8)) // clamps to 3
}
