package core

import (
	"fmt"
	"math/rand"
	"time"

	"tahoedyn/internal/link"
	"tahoedyn/internal/node"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
	"tahoedyn/internal/tcp"
	"tahoedyn/internal/topology"
	"tahoedyn/internal/trace"
)

// CollapseEvent records one congestion-window collapse of a sender.
type CollapseEvent struct {
	T     time.Duration
	Cause string // "dupack" or "timeout"
}

// Result carries everything a scenario run produced. Trunk index i is
// topology link i — for line topologies, the line between switch i and
// switch i+1 — and direction 0 transmits A→B (rightward on a line),
// direction 1 B→A (leftward).
type Result struct {
	Cfg Config
	// Topo is the compiled topology the run was built from: resolved
	// link parameters, host placement, and forwarding tables.
	Topo *topology.Compiled

	// TrunkQueue[i][dir] is the queue-length series of the port feeding
	// trunk i in the given direction. For the dumbbell, TrunkQueue[0][0]
	// is the paper's "queue at switch 1" and TrunkQueue[0][1] the "queue
	// at switch 2".
	TrunkQueue [][2]*trace.Series
	// TrunkUtil[i][dir] is the trunk utilization over the measurement
	// window.
	TrunkUtil [][2]float64
	// TrunkDeps[i][dir] is the departure log of the trunk port.
	TrunkDeps [][2][]trace.Departure

	// Cwnd[k] is connection k's congestion-window series.
	Cwnd []*trace.Series
	// Drops collects every drop-tail discard in the network.
	Drops []trace.DropEvent
	// AckArrivals[k] lists the times ACKs reached connection k's sender.
	AckArrivals [][]time.Duration
	// RTT[k] is connection k's measured round-trip-time series (one
	// point per Karn-accepted sample) — the raw material of the §4.3.1
	// effective-pipe analysis.
	RTT []*trace.Series
	// Collapses[k] lists connection k's window collapses.
	Collapses [][]CollapseEvent

	// SenderStats and ReceiverStats are the final per-connection
	// counters.
	SenderStats   []tcp.SenderStats
	ReceiverStats []tcp.ReceiverStats
	// Delivered[k] is the final cumulative in-order sequence at
	// connection k's receiver.
	Delivered []int
	// Goodput[k] is the number of packets delivered in order to
	// connection k's receiver within the measurement window — the basis
	// for fairness comparisons.
	Goodput []int

	// MeasureFrom/MeasureTo bound the measurement window (warmup end to
	// run end).
	MeasureFrom, MeasureTo time.Duration

	// Events is the number of simulator events processed (for benches).
	Events uint64
}

// Q1 returns the dumbbell's switch-1 bottleneck queue series.
func (r *Result) Q1() *trace.Series { return r.TrunkQueue[0][0] }

// Q2 returns the dumbbell's switch-2 bottleneck queue series.
func (r *Result) Q2() *trace.Series { return r.TrunkQueue[0][1] }

// UtilForward returns the dumbbell bottleneck utilization carrying data
// of connections sending rightward (host 0 → host 1).
func (r *Result) UtilForward() float64 { return r.TrunkUtil[0][0] }

// UtilReverse returns the opposite direction's utilization.
func (r *Result) UtilReverse() float64 { return r.TrunkUtil[0][1] }

// Run builds the scenario and executes it to completion.
func Run(cfg Config) *Result {
	return Build(cfg).Finish()
}

// Sim is a built, runnable scenario: the network is wired, the
// connection starts are scheduled, and the clock is at zero. Run is
// Build + Finish; the split exists so callers (steady-state benchmarks,
// future live dashboards) can advance the simulation in increments.
type Sim struct {
	cfg  Config
	eng  *sim.Engine
	pool *packet.Pool
	res  *Result

	trunks    [][2]*link.Port
	senders   []*tcp.Sender
	receivers []*tcp.Receiver

	// Warmup-boundary snapshots: measurement baselines taken exactly at
	// cfg.Warmup, regardless of the RunUntil step pattern.
	warmSnapped   bool
	busyAt        [][2]time.Duration
	deliveredWarm []int

	finished bool
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration { return s.eng.Now() }

// Events returns the number of engine events processed so far.
func (s *Sim) Events() uint64 { return s.eng.Processed() }

// Pool returns the run's packet pool (nil when cfg.NoPool).
func (s *Sim) Pool() *packet.Pool { return s.pool }

// RunUntil advances the simulation to time t. Crossing cfg.Warmup takes
// the measurement-baseline snapshot at exactly the warmup boundary, so
// any step pattern yields the same measurements as one straight run.
func (s *Sim) RunUntil(t time.Duration) {
	if !s.warmSnapped && t >= s.cfg.Warmup {
		s.eng.RunUntil(s.cfg.Warmup)
		s.snapshotWarmup()
	}
	s.eng.RunUntil(t)
}

// snapshotWarmup records the trunk busy time and receiver progress at
// the warmup boundary; measurements are deltas from here.
func (s *Sim) snapshotWarmup() {
	s.warmSnapped = true
	s.busyAt = make([][2]time.Duration, len(s.trunks))
	for i := range s.trunks {
		s.busyAt[i][0] = s.trunks[i][0].Stats().Busy
		s.busyAt[i][1] = s.trunks[i][1].Stats().Busy
	}
	s.deliveredWarm = make([]int, len(s.receivers))
	for k := range s.receivers {
		s.deliveredWarm[k] = s.receivers[k].RcvNxt()
	}
}

// Finish runs the scenario to cfg.Duration and computes the final
// statistics. It is idempotent; the first call finalizes the Result.
func (s *Sim) Finish() *Result {
	if s.finished {
		return s.res
	}
	s.finished = true
	s.RunUntil(s.cfg.Warmup)
	s.RunUntil(s.cfg.Duration)

	res, cfg := s.res, s.cfg
	nc := len(cfg.Conns)
	window := cfg.Duration - cfg.Warmup
	for i := range s.trunks {
		for dir := range s.trunks[i] {
			res.TrunkUtil[i][dir] = float64(s.trunks[i][dir].Stats().Busy-s.busyAt[i][dir]) / float64(window)
		}
	}
	res.SenderStats = make([]tcp.SenderStats, nc)
	res.ReceiverStats = make([]tcp.ReceiverStats, nc)
	res.Delivered = make([]int, nc)
	res.Goodput = make([]int, nc)
	for k := range s.senders {
		res.SenderStats[k] = s.senders[k].Stats()
		res.ReceiverStats[k] = s.receivers[k].Stats()
		res.Delivered[k] = s.receivers[k].RcvNxt()
		res.Goodput[k] = res.Delivered[k] - s.deliveredWarm[k]
	}
	res.Events = s.eng.Processed()
	return res
}

// Build assembles the scenario: topology, instrumentation, connections,
// and scheduled start times. The returned Sim has not executed any
// events yet.
func Build(cfg Config) *Sim {
	cfg.Normalize()
	topo, err := cfg.CompileTopology()
	if err != nil {
		panic("core: " + err.Error())
	}
	eng := sim.New()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ids := &tcp.IDGen{}
	// One packet free list per run: at steady state the whole simulation
	// recycles rather than allocates. NoPool keeps the old allocate-and-
	// discard behavior (the determinism tests compare the two).
	var pool *packet.Pool
	if !cfg.NoPool {
		pool = packet.NewPool()
	}

	res := &Result{
		Cfg:         cfg,
		Topo:        topo,
		MeasureFrom: cfg.Warmup,
		MeasureTo:   cfg.Duration,
	}

	// Build the switches and the hosts at their attachment points. Host
	// h gets ID h+1, the identifier packets carry in Src/Dst.
	nSw := topo.Switches
	nh := topo.NumHosts()
	switches := make([]*node.Switch, nSw)
	for i := 0; i < nSw; i++ {
		switches[i] = node.NewSwitch(i)
	}
	hosts := make([]*node.Host, nh)
	for h := 0; h < nh; h++ {
		hosts[h] = node.NewHost(eng, h+1, cfg.HostProcessing)
	}

	// Host <-> switch access links. The host's own interface buffer is
	// unbounded (a source may always burst into its own NIC); the
	// switch's port toward the host uses the switch buffer, per §2.2.
	// portRand derives an independent, reproducible RNG per switch port
	// for the RandomDrop policy. Port creation order — host access ports
	// in host order, then trunk ports in link order, forward direction
	// first — is part of the determinism contract: it fixes the RNG
	// draw sequence.
	portRand := func() *rand.Rand {
		if cfg.Discard != RandomDrop {
			return nil
		}
		return rand.New(rand.NewSource(rng.Int63()))
	}

	for h := 0; h < nh; h++ {
		sw := topo.HostSwitch(h)
		up := link.NewPort(eng, link.Config{
			Name:      fmt.Sprintf("h%d->sw%d", h+1, sw),
			Bandwidth: cfg.AccessBandwidth,
			Delay:     cfg.AccessDelay,
			Buffer:    queueUnbounded,
			Pool:      pool,
		}, switches[sw])
		hosts[h].SetOutput(up)
		down := link.NewPort(eng, link.Config{
			Name:       fmt.Sprintf("sw%d->h%d", sw, h+1),
			Bandwidth:  cfg.AccessBandwidth,
			Delay:      cfg.AccessDelay,
			Buffer:     cfg.Buffer,
			Discard:    cfg.Discard,
			Rand:       portRand(),
			Discipline: cfg.Discipline,
			Pool:       pool,
		}, hosts[h])
		switches[sw].AddRoute(h+1, down)
		instrumentDrops(eng, down, res)
	}

	// Trunk ports, one pair per topology link, instrumented. Trace
	// containers are presized from the run length so the measurement
	// path appends without reallocating mid-run.
	estPkts := estTrunkPackets(cfg)
	nl := len(topo.Links)
	trunks := make([][2]*link.Port, nl)
	res.TrunkQueue = make([][2]*trace.Series, nl)
	res.TrunkDeps = make([][2][]trace.Departure, nl)
	res.TrunkUtil = make([][2]float64, nl)
	for li, l := range topo.Links {
		fwd := link.NewPort(eng, link.Config{
			Name:       fmt.Sprintf("sw%d->sw%d", l.A, l.B),
			Bandwidth:  l.Bandwidth,
			Delay:      l.Delay,
			Buffer:     l.Buffer,
			Discard:    cfg.Discard,
			Rand:       portRand(),
			Discipline: cfg.Discipline,
			Pool:       pool,
		}, switches[l.B])
		rev := link.NewPort(eng, link.Config{
			Name:       fmt.Sprintf("sw%d->sw%d", l.B, l.A),
			Bandwidth:  l.Bandwidth,
			Delay:      l.Delay,
			Buffer:     l.Buffer,
			Discard:    cfg.Discard,
			Rand:       portRand(),
			Discipline: cfg.Discipline,
			Pool:       pool,
		}, switches[l.A])
		trunks[li] = [2]*link.Port{fwd, rev}
		for dir, pt := range trunks[li] {
			li, dir, pt := li, dir, pt
			// One queue-length point per accepted arrival and per
			// departure; the trunk carries roughly one direction's data
			// plus the other's ACKs.
			s := trace.NewSeriesCap(pt.Name(), clampReserve(4*estPkts))
			s.Append(0, 0)
			res.TrunkQueue[li][dir] = s
			pt.OnQueueLen = func(qlen int) { s.Append(eng.Now(), float64(qlen)) }
			res.TrunkDeps[li][dir] = make([]trace.Departure, 0, clampReserve(2*estPkts))
			pt.OnDepart = func(p *packet.Packet) {
				res.TrunkDeps[li][dir] = append(res.TrunkDeps[li][dir], trace.Departure{
					T: eng.Now(), Conn: p.Conn, Kind: p.Kind, Seq: p.Seq,
				})
			}
			instrumentDrops(eng, pt, res)
		}
	}

	// Forwarding tables from the compiled shortest-path routes: at each
	// switch, traffic for a non-local host leaves on the computed
	// next-hop link direction (local hosts' access routes were added
	// above).
	for s := 0; s < nSw; s++ {
		for h := 0; h < nh; h++ {
			hop, isLocal := topo.NextHop(s, h)
			if isLocal {
				continue
			}
			switches[s].AddRoute(h+1, trunks[hop.Link][hop.Dir])
		}
	}

	// Connections.
	nc := len(cfg.Conns)
	res.Cwnd = make([]*trace.Series, nc)
	res.AckArrivals = make([][]time.Duration, nc)
	res.RTT = make([]*trace.Series, nc)
	res.Collapses = make([][]CollapseEvent, nc)
	senders := make([]*tcp.Sender, nc)
	receivers := make([]*tcp.Receiver, nc)
	perConn := 0
	if nc > 0 {
		perConn = clampReserve(estPkts / nc)
	}
	for k, spec := range cfg.Conns {
		k, spec := k, spec
		connID := k + 1
		src, dst := hosts[spec.SrcHost], hosts[spec.DstHost]
		var srcNet tcp.Network = src
		if spec.ExtraDelay > 0 {
			srcNet = &delayedNet{eng: eng, dst: src, d: spec.ExtraDelay}
		}
		s := tcp.NewSender(eng, srcNet, ids, tcp.SenderConfig{
			Conn:             connID,
			SrcHost:          src.ID(),
			DstHost:          dst.ID(),
			MaxWnd:           spec.MaxWnd,
			DataSize:         cfg.DataSize,
			FixedWnd:         spec.FixedWnd,
			OriginalIncrease: spec.OriginalIncrease,
			Reno:             spec.Reno,
			Pace:             spec.Pace,
			Pool:             pool,
		})
		r := tcp.NewReceiver(eng, dst, ids, tcp.ReceiverConfig{
			Conn:       connID,
			SrcHost:    dst.ID(),
			DstHost:    src.ID(),
			AckSize:    cfg.AckSize,
			DelayedAck: spec.DelayedAck,
			Pool:       pool,
		})
		src.Attach(connID, s)
		dst.Attach(connID, r)
		senders[k], receivers[k] = s, r

		// The window moves (and an ACK arrives) at most once per
		// delivered packet, so the per-connection share of the trunk
		// packet budget bounds both.
		cw := trace.NewSeriesCap(fmt.Sprintf("cwnd-%d", connID), perConn)
		cw.Append(0, 1)
		res.Cwnd[k] = cw
		s.OnCwnd = func(v float64) { cw.Append(eng.Now(), v) }
		res.AckArrivals[k] = make([]time.Duration, 0, perConn)
		s.OnAckArrival = func(*packet.Packet) {
			res.AckArrivals[k] = append(res.AckArrivals[k], eng.Now())
		}
		rttSeries := trace.NewSeries(fmt.Sprintf("rtt-%d", connID))
		res.RTT[k] = rttSeries
		s.OnRTTSample = func(m time.Duration) {
			rttSeries.Append(eng.Now(), m.Seconds())
		}
		s.OnCollapse = func(cause string) {
			res.Collapses[k] = append(res.Collapses[k], CollapseEvent{eng.Now(), cause})
		}

		start := spec.Start
		if start < 0 {
			start = time.Duration(rng.Int63n(int64(cfg.StartSpread)))
		}
		eng.ScheduleAt(start, s.Start)
	}

	return &Sim{
		cfg:       cfg,
		eng:       eng,
		pool:      pool,
		res:       res,
		trunks:    trunks,
		senders:   senders,
		receivers: receivers,
	}
}

// queueUnbounded names the unbounded-buffer sentinel for readability.
const queueUnbounded = 0

// estTrunkPackets estimates how many data packets one trunk direction
// can carry over the whole run — the sizing unit for trace containers.
func estTrunkPackets(cfg Config) int {
	tx := cfg.DataTxTime()
	if tx <= 0 || cfg.Duration <= 0 {
		return 0
	}
	return int(cfg.Duration / tx)
}

// clampReserve bounds a trace-capacity estimate so a pathological
// configuration (huge duration, tiny packets) cannot preallocate
// unbounded memory; beyond the clamp the containers just grow as before.
func clampReserve(n int) int {
	const maxReserve = 1 << 19
	if n > maxReserve {
		return maxReserve
	}
	if n < 0 {
		return 0
	}
	return n
}

// delayedNet adds a fixed delay in front of a host's output, modeling a
// longer private path for one connection (unequal RTTs, §5).
type delayedNet struct {
	eng *sim.Engine
	dst tcp.Network
	d   time.Duration
}

// Send implements tcp.Network. The delay element has unbounded storage,
// so acceptance is immediate; ordering is preserved because the delay is
// constant and the engine breaks timestamp ties in schedule order. The
// in-flight leg is a typed event bound to the element itself, so the
// per-packet path allocates nothing.
func (dn *delayedNet) Send(p *packet.Packet) bool {
	dn.eng.SchedulePacket(dn.d, dn, p)
	return true
}

// Deliver implements sim.PacketSink: the delay has elapsed, hand the
// packet to the host's output. A full buffer there drops (and releases)
// it like any other arrival.
func (dn *delayedNet) Deliver(p *packet.Packet) {
	dn.dst.Send(p)
}

// instrumentDrops wires a port's drop hook into the result's drop log.
func instrumentDrops(eng *sim.Engine, pt *link.Port, res *Result) {
	name := pt.Name()
	pt.OnDrop = func(p *packet.Packet) {
		res.Drops = append(res.Drops, trace.DropEvent{
			T: eng.Now(), Conn: p.Conn, Seq: p.Seq, Kind: p.Kind, Port: name,
		})
	}
}
