package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tahoedyn/internal/link"
	"tahoedyn/internal/node"
	"tahoedyn/internal/obs"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/shard"
	"tahoedyn/internal/sim"
	"tahoedyn/internal/tcp"
	"tahoedyn/internal/topology"
	"tahoedyn/internal/trace"
	"tahoedyn/internal/tstore"
)

// CollapseEvent records one congestion-window collapse of a sender.
type CollapseEvent struct {
	T     time.Duration
	Cause string // "dupack" or "timeout"
}

// Result carries everything a scenario run produced. Trunk index i is
// topology link i — for line topologies, the line between switch i and
// switch i+1 — and direction 0 transmits A→B (rightward on a line),
// direction 1 B→A (leftward).
type Result struct {
	Cfg Config
	// Topo is the compiled topology the run was built from: resolved
	// link parameters, host placement, and forwarding tables.
	Topo *topology.Compiled

	// TrunkQueue[i][dir] is the queue-length series of the port feeding
	// trunk i in the given direction. For the dumbbell, TrunkQueue[0][0]
	// is the paper's "queue at switch 1" and TrunkQueue[0][1] the "queue
	// at switch 2". Entries are nil for trunks excluded by
	// Config.MeasureTrunks (likewise TrunkDeps; and Cwnd/AckArrivals/
	// RTT/Collapses for connections excluded by Config.MeasureConns).
	TrunkQueue [][2]*trace.Series
	// TrunkUtil[i][dir] is the trunk utilization over the measurement
	// window.
	TrunkUtil [][2]float64
	// TrunkDeps[i][dir] is the departure log of the trunk port.
	TrunkDeps [][2][]trace.Departure

	// Cwnd[k] is connection k's congestion-window series.
	Cwnd []*trace.Series
	// Drops collects every drop-tail discard in the network.
	Drops []trace.DropEvent
	// AckArrivals[k] lists the times ACKs reached connection k's sender.
	AckArrivals [][]time.Duration
	// RTT[k] is connection k's measured round-trip-time series (one
	// point per Karn-accepted sample) — the raw material of the §4.3.1
	// effective-pipe analysis.
	RTT []*trace.Series
	// Collapses[k] lists connection k's window collapses.
	Collapses [][]CollapseEvent

	// SenderStats and ReceiverStats are the final per-connection
	// counters.
	SenderStats   []tcp.SenderStats
	ReceiverStats []tcp.ReceiverStats
	// Delivered[k] is the final cumulative in-order sequence at
	// connection k's receiver.
	Delivered []int
	// Goodput[k] is the number of packets delivered in order to
	// connection k's receiver within the measurement window — the basis
	// for fairness comparisons.
	Goodput []int

	// MeasureFrom/MeasureTo bound the measurement window (warmup end to
	// run end).
	MeasureFrom, MeasureTo time.Duration

	// Events is the number of simulator events processed (for benches).
	Events uint64

	// Metrics is the run's metrics registry (queue occupancy, per-conn
	// RTT, ACK inter-arrival, epoch lengths, final counters). Nil unless
	// Config.Obs.Metrics was set.
	Metrics *obs.Metrics
	// TraceErr is the first error the trace sink reported, if tracing
	// was enabled. A sink failure never interrupts the simulation; it
	// surfaces here.
	TraceErr error
	// Invariant is the first invariant violation the online checker
	// found, when Config.Invariants was set; nil means the checked
	// stream was clean. The same violation also surfaces through
	// TraceErr (the checker reports it as the sink error), but here it
	// keeps its type: rule, event index, location, offending event.
	Invariant *tstore.Violation
}

// Q1 returns the dumbbell's switch-1 bottleneck queue series (nil if
// trunk 0 was excluded by Config.MeasureTrunks).
func (r *Result) Q1() *trace.Series { return r.TrunkQueue[0][0] }

// Q2 returns the dumbbell's switch-2 bottleneck queue series.
func (r *Result) Q2() *trace.Series { return r.TrunkQueue[0][1] }

// UtilForward returns the dumbbell bottleneck utilization carrying data
// of connections sending rightward (host 0 → host 1).
func (r *Result) UtilForward() float64 { return r.TrunkUtil[0][0] }

// UtilReverse returns the opposite direction's utilization.
func (r *Result) UtilReverse() float64 { return r.TrunkUtil[0][1] }

// Run builds the scenario and executes it to completion, panicking on
// an invalid configuration. It is the MustRun-style convenience for
// trusted, programmatic configs; callers handling external input
// should use RunE or RunContext.
//
// Run (and RunE/RunContext) draw a warm Arena from a process-wide pool,
// so back-to-back runs reuse engine buckets, the event free list, and
// the packet free list instead of reallocating them. This is invisible
// to results — arena reuse is behavior-neutral by the same contract as
// packet pooling — but it does mean the pool/* diagnostic metrics count
// per-run pool misses, which a warm arena keeps near zero.
func Run(cfg Config) *Result {
	a := getArena()
	res := a.Run(cfg)
	putArena(a)
	return res
}

// RunE builds and executes the scenario, returning configuration and
// topology-compilation problems as errors instead of panicking.
func RunE(cfg Config) (*Result, error) {
	a := getArena()
	res, err := a.RunE(cfg)
	putArena(a)
	return res, err
}

// RunContext is RunE with cancellation: when ctx is canceled the run
// stops within one event batch (at most a few thousand events) and
// returns ctx's error. The partially executed Sim is discarded
// cleanly — per-run state (packet pool included) is never shared
// between live runs, and an arena rebuilding over a canceled run
// resets the engine first — so cancellation cannot corrupt other runs.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	a := getArena()
	res, err := a.RunContext(ctx, cfg)
	putArena(a)
	return res, err
}

// Sim is a built, runnable scenario: the network is wired, the
// connection starts are scheduled, and the clock is at zero. Run is
// Build + Finish; the split exists so callers (steady-state benchmarks,
// future live dashboards) can advance the simulation in increments.
type Sim struct {
	cfg  Config
	eng  *sim.Engine
	pool *packet.Pool
	res  *Result

	// Sharded-run state (cfg.Shards > 1): one engine/pool per region and
	// the conservative-PDES coordinator. Serial runs keep runner nil and
	// engs/pools hold the single eng/pool. eng and pool always alias
	// region 0.
	engs     []*sim.Engine
	pools    []*packet.Pool
	runner   *shard.Runner
	dropLogs [][]dropRec

	trunks    [][2]*link.Port
	senders   []*tcp.Sender
	receivers []*tcp.Receiver
	// sinks[k] is connection k's counting sink when ConnSpec.Source
	// replaces the TCP endpoints; senders[k]/receivers[k] are then nil.
	sinks []*node.Sink

	// Observability (all nil/zero when cfg.Obs is unset). The tracer and
	// metrics registry are created at build time so every instrument is
	// registered in deterministic order before the first event.
	tracer   *obs.Tracer
	metrics  *obs.Metrics
	progress *obs.Progress
	// tracers/merger are the sharded tracing path: one tracer per region
	// feeding a merged sink (obs.TraceMerger). Serial runs leave them
	// nil; tracer then is the single tracer.
	tracers []*obs.Tracer
	merger  *obs.TraceMerger
	// checker is the online invariant engine interposed before the trace
	// sink when cfg.Invariants is set.
	checker *tstore.Checker
	// nextProgressT/nextProgressE are the next progress-sample
	// thresholds on the time and event axes.
	nextProgressT time.Duration
	nextProgressE uint64
	// epochHist receives inter-collapse intervals at finish time.
	epochHist *obs.Histogram

	// Warmup-boundary snapshots: measurement baselines taken exactly at
	// cfg.Warmup, regardless of the RunUntil step pattern.
	warmSnapped   bool
	busyAt        [][2]time.Duration
	deliveredWarm []int

	finished bool
}

// Now returns the current simulated time: the engine clock, or — for a
// sharded run — the last completed synchronization barrier.
func (s *Sim) Now() time.Duration {
	if s.runner != nil {
		return s.runner.Now()
	}
	return s.eng.Now()
}

// Events returns the number of engine events processed so far, summed
// over all regions for a sharded run.
func (s *Sim) Events() uint64 {
	if s.runner != nil {
		return s.runner.Events()
	}
	return s.eng.Processed()
}

// Pool returns the run's packet pool (nil when cfg.NoPool).
func (s *Sim) Pool() *packet.Pool { return s.pool }

// RunUntil advances the simulation to time t. Crossing cfg.Warmup takes
// the measurement-baseline snapshot at exactly the warmup boundary, so
// any step pattern yields the same measurements as one straight run.
func (s *Sim) RunUntil(t time.Duration) {
	s.runUntil(nil, t)
}

// runUntil is RunUntil with optional cancellation (nil ctx never
// cancels).
func (s *Sim) runUntil(ctx context.Context, t time.Duration) error {
	if !s.warmSnapped && t >= s.cfg.Warmup {
		if err := s.span(ctx, s.cfg.Warmup); err != nil {
			return err
		}
		s.snapshotWarmup()
	}
	return s.span(ctx, t)
}

// span advances the engine to time t. With no cancellation and no
// progress observer it is a single uninterrupted RunUntil — the
// zero-overhead path. Otherwise the engine runs in bounded batches
// with checks between them; the batching never schedules events, so
// the event sequence (and hence the Result) is identical either way.
func (s *Sim) span(ctx context.Context, t time.Duration) error {
	if s.runner != nil {
		return s.runner.Span(ctx, t, s.barrier)
	}
	if ctx == nil && s.progress == nil {
		s.eng.RunUntil(t)
		return nil
	}
	const batch = 4096
	for {
		done := s.eng.RunUntilN(t, batch)
		s.observeProgress()
		if done {
			return nil
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
}

// barrier runs after every completed shard synchronization round: it
// samples progress and merges the regions' trace streams, which are
// complete (and final) up to the barrier time.
func (s *Sim) barrier(now time.Duration, events uint64) {
	s.observeProgressAt(now, events)
	if s.merger != nil {
		for _, tr := range s.tracers {
			tr.Flush()
		}
		s.merger.Merge()
	}
}

// observeProgress fires the progress callback if an axis threshold was
// crossed since the last batch (or on every batch when no axis is
// configured).
func (s *Sim) observeProgress() {
	s.observeProgressAt(s.eng.Now(), s.eng.Processed())
}

func (s *Sim) observeProgressAt(now time.Duration, events uint64) {
	p := s.progress
	if p == nil {
		return
	}
	fire := p.Every == 0 && p.EveryEvents == 0
	if p.Every > 0 && now >= s.nextProgressT {
		fire = true
		for now >= s.nextProgressT {
			s.nextProgressT += p.Every
		}
	}
	if p.EveryEvents > 0 && events >= s.nextProgressE {
		fire = true
		for events >= s.nextProgressE {
			s.nextProgressE += p.EveryEvents
		}
	}
	if fire && p.Fn != nil {
		p.Fn(obs.Snapshot{Now: now, End: s.cfg.Duration, Events: events})
	}
}

// snapshotWarmup records the trunk busy time and receiver progress at
// the warmup boundary; measurements are deltas from here.
func (s *Sim) snapshotWarmup() {
	s.warmSnapped = true
	s.busyAt = make([][2]time.Duration, len(s.trunks))
	for i := range s.trunks {
		s.busyAt[i][0] = s.trunks[i][0].Stats().Busy
		s.busyAt[i][1] = s.trunks[i][1].Stats().Busy
	}
	s.deliveredWarm = make([]int, len(s.receivers))
	for k := range s.receivers {
		switch {
		case s.receivers[k] != nil:
			s.deliveredWarm[k] = s.receivers[k].RcvNxt()
		case s.sinks[k] != nil:
			s.deliveredWarm[k] = s.sinks[k].Received()
		}
	}
}

// Finish runs the scenario to cfg.Duration and computes the final
// statistics. It is idempotent; the first call finalizes the Result.
func (s *Sim) Finish() *Result {
	res, _ := s.finish(nil) // nil ctx never cancels
	return res
}

// FinishContext is Finish with cancellation: when ctx is canceled the
// run stops within one event batch and returns ctx's error without
// finalizing. The Sim stays resumable — a later Finish/FinishContext
// call continues from exactly where the canceled one stopped, with
// pool and measurement state intact.
func (s *Sim) FinishContext(ctx context.Context) (*Result, error) {
	return s.finish(ctx)
}

func (s *Sim) finish(ctx context.Context) (*Result, error) {
	if s.finished {
		return s.res, nil
	}
	if err := s.runUntil(ctx, s.cfg.Warmup); err != nil {
		return nil, err
	}
	if err := s.runUntil(ctx, s.cfg.Duration); err != nil {
		return nil, err
	}
	s.finished = true

	res, cfg := s.res, s.cfg
	nc := len(cfg.Conns)
	window := cfg.Duration - cfg.Warmup
	for i := range s.trunks {
		for dir := range s.trunks[i] {
			res.TrunkUtil[i][dir] = float64(s.trunks[i][dir].Stats().Busy-s.busyAt[i][dir]) / float64(window)
		}
	}
	res.SenderStats = make([]tcp.SenderStats, nc)
	res.ReceiverStats = make([]tcp.ReceiverStats, nc)
	res.Delivered = make([]int, nc)
	res.Goodput = make([]int, nc)
	for k := range s.senders {
		if s.senders[k] == nil {
			// A source connection: its traffic is counted by the sink; the
			// TCP stats stay zero.
			if sk := s.sinks[k]; sk != nil {
				res.Delivered[k] = sk.Received()
				res.Goodput[k] = res.Delivered[k] - s.deliveredWarm[k]
			}
			continue
		}
		res.SenderStats[k] = s.senders[k].Stats()
		res.ReceiverStats[k] = s.receivers[k].Stats()
		res.Delivered[k] = s.receivers[k].RcvNxt()
		res.Goodput[k] = res.Delivered[k] - s.deliveredWarm[k]
	}
	res.Events = s.Events()
	s.mergeDrops()
	s.exportMetrics()
	if s.merger != nil {
		// Region tracers first (each Close flushes its remaining ring into
		// the merger's buffers), then the final merge, then the user sink.
		for _, tr := range s.tracers {
			tr.Close()
		}
		s.merger.Merge()
		res.TraceErr = s.merger.Close()
	} else if s.tracer != nil {
		res.TraceErr = s.tracer.Close()
	}
	if s.checker != nil {
		res.Invariant = s.checker.Violation()
	}
	return res, nil
}

// dropRec is one region's drop record plus the scheduling lineage of
// the event that executed the drop, the key that merges the per-region
// logs back into the serial order.
type dropRec struct {
	trace.DropEvent
	schedAt, schedAt2 sim.Time
}

// mergeDrops merges the per-region drop logs into res.Drops in a
// canonical, partition-independent order: by time, then by the
// executing event's scheduling lineage, then by the drop's own content.
// Within one region the log is already time-ordered (events execute in
// time order), but two regions can drop at the same instant with tied
// lineage — perfectly mirrored two-way traffic does exactly that — and
// no local information recovers the serial engine's same-instant
// interleaving. So every run, the serial one included, sorts by the
// same key: the multiset of records is identical for every shard count
// (injected cross-region events carry the serial lineage by
// construction), hence so is the sorted log.
func (s *Sim) mergeDrops() {
	n := 0
	for _, l := range s.dropLogs {
		n += len(l)
	}
	if n == 0 {
		return
	}
	recs := make([]dropRec, 0, n)
	for _, l := range s.dropLogs {
		recs = append(recs, l...)
	}
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := &recs[i], &recs[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.schedAt != b.schedAt {
			return a.schedAt < b.schedAt
		}
		if a.schedAt2 != b.schedAt2 {
			return a.schedAt2 < b.schedAt2
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		if a.Conn != b.Conn {
			return a.Conn < b.Conn
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Kind < b.Kind
	})
	s.res.Drops = make([]trace.DropEvent, n)
	for i := range recs {
		s.res.Drops[i] = recs[i].DropEvent
	}
}

// exportMetrics fills the finish-time counters, gauges, and the epoch
// histogram. Build-time histograms (queue occupancy, RTT, ACK
// inter-arrival) were fed during the run.
func (s *Sim) exportMetrics() {
	m := s.metrics
	if m == nil {
		return
	}
	res := s.res
	var drops, dataSent, rtx, timeouts, acks, collapses, delivered float64
	for k := range res.SenderStats {
		st := &res.SenderStats[k]
		dataSent += float64(st.DataSent)
		rtx += float64(st.Retransmits)
		timeouts += float64(st.Timeouts)
		acks += float64(st.AcksReceived)
		collapses += float64(st.Collapses)
		delivered += float64(res.Delivered[k])
	}
	drops = float64(len(res.Drops))
	m.NewCounter("core/events").Add(float64(res.Events))
	m.NewCounter("tcp/data-sent").Add(dataSent)
	m.NewCounter("tcp/retransmits").Add(rtx)
	m.NewCounter("tcp/timeouts").Add(timeouts)
	m.NewCounter("tcp/acks-received").Add(acks)
	m.NewCounter("tcp/collapses").Add(collapses)
	m.NewCounter("tcp/delivered").Add(delivered)
	m.NewCounter("link/drops").Add(drops)
	if s.pool != nil {
		var allocs, recycled float64
		for _, p := range s.pools {
			allocs += float64(p.Allocs())
			recycled += float64(p.Recycled())
		}
		m.NewCounter("pool/allocs").Add(allocs)
		m.NewCounter("pool/recycled").Add(recycled)
	}
	for i := range s.trunks {
		for dir := range s.trunks[i] {
			pt := s.trunks[i][dir]
			m.NewGauge("util/" + pt.Name()).Set(res.TrunkUtil[i][dir])
			if q := res.TrunkQueue[i][dir]; q != nil { // nil when the trunk is unmeasured
				m.NewGauge("queue-mean/" + pt.Name()).Set(
					q.TimeAverage(res.MeasureFrom, res.MeasureTo))
			}
		}
	}
	for k := range res.Cwnd {
		if res.Cwnd[k] == nil { // unmeasured connection
			continue
		}
		if last, ok := res.Cwnd[k].Last(); ok {
			m.NewGauge(fmt.Sprintf("cwnd-final/conn%d", k+1)).Set(last.V)
		}
	}
	// Epoch lengths: the interval between successive window collapses of
	// one connection — the paper's congestion-epoch period.
	for k := range res.Collapses {
		evs := res.Collapses[k]
		for i := 1; i < len(evs); i++ {
			s.epochHist.Observe((evs[i].T - evs[i-1].T).Seconds())
		}
	}
}

// Build assembles the scenario: topology, instrumentation, connections,
// and scheduled start times. The returned Sim has not executed any
// events yet. Build panics on an invalid configuration; BuildE returns
// the problem as an error.
func Build(cfg Config) *Sim {
	s, err := BuildE(cfg)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// eventRun is one interval of a switch's forwarding table as of a link
// event, captured at build time with the destination port resolved. The
// event callback installs the table with ResetRoutes + AddRouteRange in
// run order.
type eventRun struct {
	lo, hi int
	port   *link.Port
}

// BuildE is Build with error reporting: configuration validation and
// topology compilation problems come back as errors instead of panics.
func BuildE(cfg Config) (*Sim, error) {
	return buildE(cfg, nil)
}

// buildE assembles the Sim, drawing engine, packet pool, and trace ring
// from ar when non-nil (Arena reuse) and allocating fresh ones when nil.
func buildE(cfg Config, ar *Arena) (*Sim, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	topo, err := cfg.CompileTopology()
	if err != nil {
		return nil, err
	}
	// Measurement gating: nil means measure everything (the historical
	// default); a non-nil MeasureTrunks/MeasureConns restricts per-trunk
	// and per-connection instrumentation to the listed indices. Gating
	// only decides whether observation state is allocated and hooks
	// installed — it never touches forwarding, queueing, or the TCP state
	// machines — so a gated run's Delivered/SenderStats/TrunkUtil match
	// an ungated one exactly (asserted by measure_gate_test.go).
	var trunkMeasured, connMeasured []bool
	if cfg.MeasureTrunks != nil {
		trunkMeasured = make([]bool, len(topo.Links))
		for _, li := range cfg.MeasureTrunks {
			if li < 0 || li >= len(topo.Links) {
				return nil, fmt.Errorf("core: MeasureTrunks names link %d, out of range [0,%d)", li, len(topo.Links))
			}
			trunkMeasured[li] = true
		}
	}
	if cfg.MeasureConns != nil {
		connMeasured = make([]bool, len(cfg.Conns))
		for _, k := range cfg.MeasureConns {
			connMeasured[k] = true // indices validated by normalize
		}
	}
	// Region partition. K > 1 splits the switch graph into regions, each
	// simulated by its own engine (internal/shard); K == 1 is the serial
	// path, bit-identical to the pre-shard simulator.
	K := cfg.Shards
	var part *topology.Partition
	if K > 1 {
		if len(cfg.Regions) > 0 {
			part, err = topo.PartitionWith(cfg.Regions)
		} else {
			part, err = topo.Partition(K)
		}
		if err != nil {
			return nil, err
		}
		if K = part.K; K == 1 {
			part = nil
		}
	} else {
		K = 1
	}
	regionOf := func(sw int) int {
		if part == nil {
			return 0
		}
		return part.Region[sw]
	}

	// Streaming invariants: interpose an online checker between the
	// tracer(s) and the user's sink — or make the checker the sink when
	// no tracing was requested. The checker sees the merged, time-ordered
	// stream (after the TraceMerger for sharded runs), observes only, and
	// reports the first violation through Result.Invariant/TraceErr.
	var checker *tstore.Checker
	if cfg.Invariants != nil {
		o := *cfg.Invariants
		obsOpts := obs.Options{}
		if cfg.Obs != nil {
			obsOpts = *cfg.Obs
		}
		var to obs.TraceOptions
		if obsOpts.Trace != nil {
			if obsOpts.Trace.Sink == nil {
				return nil, fmt.Errorf("core: Obs.Trace set without a Sink")
			}
			to = *obsOpts.Trace
		}
		if to.Filter != (obs.Filter{}) && !o.NoConservation {
			return nil, fmt.Errorf("core: Invariants cannot check conservation over a filtered trace; drop Obs.Trace.Filter or set Invariants.NoConservation")
		}
		if o.MaxCwnd == nil && !o.NoCwndBounds {
			o.MaxCwnd = make(map[int]float64, len(cfg.Conns))
			for k := range cfg.Conns {
				w := cfg.Conns[k].MaxWnd
				if f := cfg.Conns[k].FixedWnd; f > w {
					w = f
				}
				o.MaxCwnd[k+1] = float64(w)
			}
		}
		checker = tstore.NewChecker(to.Sink, o)
		to.Sink = checker
		obsOpts.Trace = &to
		cfg.Obs = &obsOpts
	}

	// Observability instruments. All stay nil when cfg.Obs is unset; nil
	// instruments no-op at every call site.
	var (
		tracers  = make([]*obs.Tracer, K)
		merger   *obs.TraceMerger
		metrics  *obs.Metrics
		progress *obs.Progress
	)
	if cfg.Obs != nil {
		if cfg.Obs.Trace != nil {
			if cfg.Obs.Trace.Sink == nil {
				return nil, fmt.Errorf("core: Obs.Trace set without a Sink")
			}
			if K > 1 {
				// Every region traces into its own ring; the merger
				// reassembles one time-ordered stream for the user's sink
				// at each synchronization barrier.
				merger = obs.NewTraceMerger(cfg.Obs.Trace.Sink, K)
				for r := 0; r < K; r++ {
					o := *cfg.Obs.Trace
					o.Sink = merger.Buffer(r)
					tracers[r] = obs.NewTracerReusing(o, ar.shardRing(r))
				}
				ar.keepTracers(tracers)
			} else {
				tracers[0] = obs.NewTracerReusing(*cfg.Obs.Trace, ar.traceRing())
				ar.keepTracer(tracers[0])
			}
		}
		if cfg.Obs.Metrics {
			metrics = obs.NewMetrics()
		}
		if cfg.Obs.Progress != nil {
			progress = cfg.Obs.Progress
		}
	}
	tracer := tracers[0]
	engs := ar.engines(cfg.Sched, K)
	eng := engs[0]
	// Sharded engines hand out strided seqs so the coordinator can
	// interpolate cross-region arrivals between them; serial engines keep
	// the historical counter. Always set — an arena-reused engine retains
	// the previous run's stride.
	stride := uint64(1)
	if K > 1 {
		stride = shard.Stride
	}
	for _, e := range engs {
		e.SetSeqStride(stride)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// One packet free list per run and per region — packet pointers never
	// cross region goroutines — so at steady state the whole simulation
	// recycles rather than allocates. NoPool keeps the old allocate-and-
	// discard behavior (the determinism tests compare the two).
	pools := make([]*packet.Pool, K)
	if !cfg.NoPool {
		pools = ar.packetPools(K)
	}
	pool := pools[0]

	res := &Result{
		Cfg:         cfg,
		Topo:        topo,
		MeasureFrom: cfg.Warmup,
		MeasureTo:   cfg.Duration,
	}

	// instrumentDrops wires a port's drop hook into the drop log: per
	// region, tagged with the executing event's scheduling lineage, and
	// canonically ordered at finish (Sim.mergeDrops). Serial runs use the
	// identical path with a single region, so every shard count produces
	// the same byte-identical res.Drops.
	dropLogs := make([][]dropRec, K)
	instrumentDrops := func(eng *sim.Engine, region int, pt *link.Port) {
		name := pt.Name()
		pt.OnDrop = func(p *packet.Packet) {
			sa, sa2 := eng.ExecLineage()
			dropLogs[region] = append(dropLogs[region], dropRec{
				DropEvent: trace.DropEvent{
					T: eng.Now(), Conn: p.Conn, Seq: p.Seq, Kind: p.Kind, Port: name,
				},
				schedAt:  sa,
				schedAt2: sa2,
			})
		}
	}

	// Build the switches and the hosts at their attachment points. Host
	// h gets ID h+1, the identifier packets carry in Src/Dst. A host
	// lives on its switch's region engine, so host-switch links never
	// cross a region boundary.
	nSw := topo.Switches
	nh := topo.NumHosts()
	nl := len(topo.Links)
	nc := len(cfg.Conns)
	switches, hosts, trunks, senders, receivers := ar.wiring(nSw, nh, nl, nc)
	for i := 0; i < nSw; i++ {
		switches[i] = node.NewSwitch(i)
	}
	for h := 0; h < nh; h++ {
		hosts[h] = node.NewHost(engs[regionOf(topo.HostSwitch(h))], h+1, cfg.HostProcessing)
	}

	// Host <-> switch access links. The host's own interface buffer is
	// unbounded (a source may always burst into its own NIC); the
	// switch's port toward the host uses the switch buffer, per §2.2.
	// portRand derives an independent, reproducible RNG per switch port
	// for the RandomDrop policy. Port creation order — host access ports
	// in host order, then trunk ports in link order, forward direction
	// first — is part of the determinism contract: it fixes the RNG
	// draw sequence.
	portRand := func() *rand.Rand {
		if cfg.Discard != RandomDrop {
			return nil
		}
		return rand.New(rand.NewSource(rng.Int63()))
	}
	// legacyDisc builds a discipline from the deprecated enum pair. The
	// portRand draw happens for every legacy port when Discard is
	// RandomDrop — even under FairQueue, which ignores the source —
	// because that shared-RNG draw sequence predates per-entity seeding
	// and is pinned by the byte-identity contract (it shifts the random
	// connection start times that follow).
	legacyDisc := func() link.Disc {
		rd := portRand()
		if cfg.Discipline == FairQueue {
			return link.NewFQ()
		}
		if cfg.Discard == RandomDrop {
			return link.NewRandomDrop(rd)
		}
		return nil // NewPort defaults to drop-tail
	}
	// queueSpecFor resolves a port's queue spec: the per-link override,
	// then the global Queue, then nil (the legacy enum path). li is the
	// topology link index, or -1 for switch→host access ports, which
	// take only the global spec.
	queueSpecFor := func(li int) *link.QueueSpec {
		if li >= 0 && cfg.LinkQueue != nil {
			if qs := cfg.LinkQueue[li]; qs != nil {
				return qs
			}
		}
		return cfg.Queue
	}
	// discFor builds the discipline for the port with stable entity
	// index ent (host down-ports in host order, then trunk ports as
	// nh + 2·link + dir). Spec-path stochastic policies get their own
	// entitySeed stream instead of a shared-RNG draw, which is what
	// keeps them deterministic across shard counts.
	discFor := func(li, ent int) (link.Disc, error) {
		qs := queueSpecFor(li)
		if qs == nil {
			return legacyDisc(), nil
		}
		var r *rand.Rand
		if qs.NeedsRand() {
			r = rand.New(rand.NewSource(entitySeed(cfg.Seed, seedKindQueue, ent)))
		}
		return qs.Build(r)
	}
	// behaviorFor builds the link behavior for trunk port 2·link + dir.
	// Each direction owns its Impairment (the loss/jitter state is
	// per-line); the RateTrace inside a spec is stateless and shared.
	behaviorFor := func(li, dir int) (link.Behavior, error) {
		bs := cfg.Behavior
		if cfg.LinkBehavior != nil {
			if o := cfg.LinkBehavior[li]; o != nil {
				bs = o
			}
		}
		if bs.IsZero() {
			return nil, nil
		}
		var r *rand.Rand
		if bs.NeedsRand() {
			r = rand.New(rand.NewSource(entitySeed(cfg.Seed, seedKindBehavior, 2*li+dir)))
		}
		return bs.Build(r)
	}

	// downPorts[h] is the switch→host access port, kept for forwarding-
	// table rebuilds when a link event reroutes a switch with local hosts.
	downPorts := make([]*link.Port, nh)
	for h := 0; h < nh; h++ {
		sw := topo.HostSwitch(h)
		rg := regionOf(sw)
		eng, pool, tracer := engs[rg], pools[rg], tracers[rg]
		up := link.NewPort(eng, link.Config{
			Name:      fmt.Sprintf("h%d->sw%d", h+1, sw),
			Bandwidth: cfg.AccessBandwidth,
			Delay:     cfg.AccessDelay,
			Buffer:    queueUnbounded,
			Pool:      pool,
			Obs:       tracer,
		}, switches[sw])
		hosts[h].SetOutput(up)
		disc, err := discFor(-1, h)
		if err != nil {
			return nil, err
		}
		down := link.NewPort(eng, link.Config{
			Name:      fmt.Sprintf("sw%d->h%d", sw, h+1),
			Bandwidth: cfg.AccessBandwidth,
			Delay:     cfg.AccessDelay,
			Buffer:    cfg.Buffer,
			Disc:      disc,
			Pool:      pool,
			Obs:       tracer,
		}, hosts[h])
		switches[sw].AddRoute(h+1, down)
		downPorts[h] = down
		instrumentDrops(eng, rg, down)
		if tracer != nil {
			hosts[h].SetObs(tracer, fmt.Sprintf("host%d", h+1))
		}
	}

	// Trunk ports, one pair per topology link, instrumented. Trace
	// containers are presized from the run length so the measurement
	// path appends without reallocating mid-run.
	estPkts := estTrunkPackets(cfg)
	res.TrunkQueue = make([][2]*trace.Series, nl)
	res.TrunkDeps = make([][2][]trace.Departure, nl)
	res.TrunkUtil = make([][2]float64, nl)
	var (
		edges    []*shard.Edge
		edgeFrom []int
	)
	for li, l := range topo.Links {
		// The forward port lives at switch A, the reverse at switch B; a
		// link whose endpoints fall in different regions is a cut link,
		// and its ports hand finished transmissions to a shard edge
		// (Config.Cross) instead of scheduling the propagation locally.
		rgs := [2]int{regionOf(l.A), regionOf(l.B)}
		var cross [2]sim.PacketSink
		if rgs[0] != rgs[1] {
			fe := &shard.Edge{Delay: l.Delay, To: rgs[1], Dst: switches[l.B]}
			re := &shard.Edge{Delay: l.Delay, To: rgs[0], Dst: switches[l.A]}
			edges = append(edges, fe, re)
			edgeFrom = append(edgeFrom, rgs[0], rgs[1])
			cross[0], cross[1] = fe, re
		}
		fwdDisc, err := discFor(li, nh+2*li)
		if err != nil {
			return nil, err
		}
		revDisc, err := discFor(li, nh+2*li+1)
		if err != nil {
			return nil, err
		}
		fwdBeh, err := behaviorFor(li, 0)
		if err != nil {
			return nil, err
		}
		revBeh, err := behaviorFor(li, 1)
		if err != nil {
			return nil, err
		}
		fwd := link.NewPort(engs[rgs[0]], link.Config{
			Name:      fmt.Sprintf("sw%d->sw%d", l.A, l.B),
			Bandwidth: l.Bandwidth,
			Delay:     l.Delay,
			Buffer:    l.Buffer,
			Disc:      fwdDisc,
			Behavior:  fwdBeh,
			Pool:      pools[rgs[0]],
			Obs:       tracers[rgs[0]],
			Cross:     cross[0],
		}, switches[l.B])
		rev := link.NewPort(engs[rgs[1]], link.Config{
			Name:      fmt.Sprintf("sw%d->sw%d", l.B, l.A),
			Bandwidth: l.Bandwidth,
			Delay:     l.Delay,
			Buffer:    l.Buffer,
			Disc:      revDisc,
			Behavior:  revBeh,
			Pool:      pools[rgs[1]],
			Obs:       tracers[rgs[1]],
			Cross:     cross[1],
		}, switches[l.A])
		trunks[li] = [2]*link.Port{fwd, rev}
		if trunkMeasured != nil && !trunkMeasured[li] {
			// Unmeasured trunk: forwarding, dropping, and utilization
			// only — no queue series, departure log, queue histogram, or
			// drop records. A measured trunk preallocates run-length trace
			// containers; an unmeasured one costs just its two ports.
			continue
		}
		for dir, pt := range trunks[li] {
			li, dir, pt := li, dir, pt
			eng := engs[rgs[dir]]
			// One queue-length point per accepted arrival and per
			// departure; the trunk carries roughly one direction's data
			// plus the other's ACKs.
			s := trace.NewSeriesCap(pt.Name(), clampReserve(4*estPkts))
			s.Append(0, 0)
			res.TrunkQueue[li][dir] = s
			qh := metrics.NewHistogram("queue/"+pt.Name(), queueBounds)
			pt.OnQueueLen = func(qlen int) {
				s.Append(eng.Now(), float64(qlen))
				qh.Observe(float64(qlen))
			}
			res.TrunkDeps[li][dir] = make([]trace.Departure, 0, clampReserve(2*estPkts))
			pt.OnDepart = func(p *packet.Packet) {
				res.TrunkDeps[li][dir] = append(res.TrunkDeps[li][dir], trace.Departure{
					T: eng.Now(), Conn: p.Conn, Kind: p.Kind, Seq: p.Seq,
				})
			}
			instrumentDrops(eng, rgs[dir], pt)
		}
	}

	// Forwarding tables from the compiled shortest-path routes: at each
	// switch, traffic for a non-local host leaves on the computed
	// next-hop link direction (local hosts' access routes were added
	// above). Installation walks the compiled forwarding intervals — one
	// AddRouteRange per run instead of one AddRoute per (switch, host) —
	// so wiring cost tracks the compressed route size, not
	// switches × hosts.
	for s := 0; s < nSw; s++ {
		sw := switches[s]
		topo.ForEachHostRun(s, func(h0, h1 int, hop topology.Hop, isLocal bool) {
			if isLocal {
				return
			}
			sw.AddRouteRange(h0+1, h1+1, trunks[hop.Link][hop.Dir])
		})
	}

	// Connections.
	res.Cwnd = make([]*trace.Series, nc)
	res.AckArrivals = make([][]time.Duration, nc)
	res.RTT = make([]*trace.Series, nc)
	res.Collapses = make([][]CollapseEvent, nc)
	perConn := 0
	if nc > 0 {
		perConn = clampReserve(estPkts / nc)
	}
	sinks := make([]*node.Sink, nc)
	for k, spec := range cfg.Conns {
		k, spec := k, spec
		connID := k + 1
		src, dst := hosts[spec.SrcHost], hosts[spec.DstHost]
		// The sender runs on its host's region engine, the receiver on
		// its own — a connection whose endpoints fall in different
		// regions converses purely through cut-link packets.
		sr := regionOf(topo.HostSwitch(spec.SrcHost))
		dr := regionOf(topo.HostSwitch(spec.DstHost))
		eng, pool, tracer := engs[sr], pools[sr], tracers[sr]
		var srcNet tcp.Network = src
		if spec.ExtraDelay > 0 {
			srcNet = &delayedNet{eng: eng, dst: src, d: spec.ExtraDelay}
		}
		if gen := spec.Source; gen.generates() {
			// A non-TCP source: a generator at the source host, a counting
			// sink at the destination. The TCP instrumentation below does
			// not apply; Delivered/Goodput come from the sink. The start
			// draw stays on the shared RNG (same order as a TCP conn) so a
			// mixed scenario's other start times are unperturbed.
			size := gen.Size
			if size == 0 {
				size = cfg.DataSize
			}
			sink := node.NewSink(pools[dr])
			dst.Attach(connID, sink)
			sinks[k] = sink
			scfg := node.SourceConfig{
				Conn: connID, Src: src.ID(), Dst: dst.ID(),
				Size: size, Rate: gen.Rate,
				IDFirst: uint64(2*k + 1), IDStride: uint64(2 * nc),
				Pool: pool,
			}
			var startFn func()
			if gen.Kind == SourceCBR {
				startFn = node.NewCBRSource(eng, srcNet, scfg).Start
			} else { // SourceOnOff; normalize rejected everything else
				srng := rand.New(rand.NewSource(entitySeed(cfg.Seed, seedKindSource, k)))
				startFn = node.NewOnOffSource(eng, srcNet, scfg, gen.OnMean, gen.OffMean, srng).Start
			}
			start := spec.Start
			if start < 0 {
				start = time.Duration(rng.Int63n(int64(cfg.StartSpread)))
			}
			eng.ScheduleAt(start, startFn)
			continue
		}
		// Per-endpoint packet-ID generators (sender k mints 2k+1,
		// 2k+1+2nc, …; receiver k mints 2k+2, …): the IDs an endpoint
		// assigns cannot depend on how the topology is partitioned, which
		// a counter shared in global schedule order would.
		s := tcp.NewSender(eng, srcNet, tcp.NewIDGen(uint64(2*k+1), uint64(2*nc)), tcp.SenderConfig{
			Conn:             connID,
			SrcHost:          src.ID(),
			DstHost:          dst.ID(),
			MaxWnd:           spec.MaxWnd,
			DataSize:         cfg.DataSize,
			FixedWnd:         spec.FixedWnd,
			OriginalIncrease: spec.OriginalIncrease,
			Reno:             spec.Reno,
			Pace:             spec.Pace,
			Pool:             pool,
		})
		r := tcp.NewReceiver(engs[dr], dst, tcp.NewIDGen(uint64(2*k+2), uint64(2*nc)), tcp.ReceiverConfig{
			Conn:       connID,
			SrcHost:    dst.ID(),
			DstHost:    src.ID(),
			AckSize:    cfg.AckSize,
			DelayedAck: spec.DelayedAck,
			Pool:       pools[dr],
		})
		src.Attach(connID, s)
		dst.Attach(connID, r)
		senders[k], receivers[k] = s, r
		s.Obs = tracer
		s.ObsLoc = tracer.Loc(fmt.Sprintf("conn%d", connID))

		if connMeasured == nil || connMeasured[k] {
			// The window moves (and an ACK arrives) at most once per
			// delivered packet, so the per-connection share of the trunk
			// packet budget bounds both.
			cw := trace.NewSeriesCap(fmt.Sprintf("cwnd-%d", connID), perConn)
			cw.Append(0, 1)
			res.Cwnd[k] = cw
			s.OnCwnd = func(v float64) { cw.Append(eng.Now(), v) }
			res.AckArrivals[k] = make([]time.Duration, 0, perConn)
			ackGapHist := metrics.NewHistogram(fmt.Sprintf("ack-gap-seconds/conn%d", connID), ackGapBounds)
			lastAck := time.Duration(-1)
			s.OnAckArrival = func(*packet.Packet) {
				now := eng.Now()
				res.AckArrivals[k] = append(res.AckArrivals[k], now)
				if lastAck >= 0 {
					ackGapHist.Observe((now - lastAck).Seconds())
				}
				lastAck = now
			}
			rttSeries := trace.NewSeries(fmt.Sprintf("rtt-%d", connID))
			res.RTT[k] = rttSeries
			rttHist := metrics.NewHistogram(fmt.Sprintf("rtt-seconds/conn%d", connID), rttBounds)
			s.OnRTTSample = func(m time.Duration) {
				rttSeries.Append(eng.Now(), m.Seconds())
				rttHist.Observe(m.Seconds())
			}
			s.OnCollapse = func(cause string) {
				res.Collapses[k] = append(res.Collapses[k], CollapseEvent{eng.Now(), cause})
			}
		}

		start := spec.Start
		if start < 0 {
			start = time.Duration(rng.Int63n(int64(cfg.StartSpread)))
		}
		eng.ScheduleAt(start, s.Start)
	}

	// Mid-run link events. Each event's routing consequences are computed
	// here, at build time, on a private clone of the compiled topology:
	// ApplyLinkChange returns exactly the switches whose forwarding rows
	// move, and their new tables are captured as port-resolved runs. At
	// simulation time the pre-scheduled callbacks just swap tables in
	// (and, for bandwidth events, re-rate the trunk ports). One callback
	// is scheduled per changed switch and per re-rated port direction,
	// each on its own region's engine — so the total engine event count
	// is the same at every shard count — and scheduling happens during
	// build, so every callback's engine seq precedes every same-time
	// packet event in serial and sharded runs alike. That, plus
	// deterministic table rebuilds (ResetRoutes + in-order
	// AddRouteRange), is what keeps runs with events byte-identical at
	// every shard count. A down link only changes routing: packets
	// already queued on, or in flight over, the line still drain and
	// deliver. Propagation delays never change, so the sharded runner's
	// MinCutDelay lookahead stays valid.
	if len(cfg.Events) > 0 {
		order := make([]int, len(cfg.Events))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return cfg.Events[order[a]].T < cfg.Events[order[b]].T })
		work := topo.Clone()
		curBW := make(map[int]int64, len(cfg.Events))
		for _, ei := range order {
			ev := cfg.Events[ei]
			li := ev.Link
			l := topo.Links[li]
			if _, ok := curBW[li]; !ok {
				curBW[li] = l.Bandwidth
			}
			w := topology.LinkDown
			if !ev.Down {
				w = l.Delay + link.TxTime(cfg.DataSize, ev.Bandwidth)
			}
			changed, err := work.ApplyLinkChange(li, w)
			if err != nil {
				return nil, fmt.Errorf("core: event %d (link %d at %v): %w", ei, li, ev.T, err)
			}
			if !ev.Down && ev.Bandwidth != curBW[li] {
				curBW[li] = ev.Bandwidth
				bw := ev.Bandwidth
				fwd, rev := trunks[li][0], trunks[li][1]
				engs[regionOf(l.A)].ScheduleAt(ev.T, func() { fwd.SetBandwidth(bw) })
				engs[regionOf(l.B)].ScheduleAt(ev.T, func() { rev.SetBandwidth(bw) })
			}
			for _, s := range changed {
				var runs []eventRun
				work.ForEachHostRun(s, func(h0, h1 int, hop topology.Hop, isLocal bool) {
					if isLocal {
						for h := h0; h < h1; h++ {
							runs = append(runs, eventRun{h + 1, h + 2, downPorts[h]})
						}
						return
					}
					runs = append(runs, eventRun{h0 + 1, h1 + 1, trunks[hop.Link][hop.Dir]})
				})
				sw := switches[s]
				engs[regionOf(s)].ScheduleAt(ev.T, func() {
					sw.ResetRoutes()
					for _, rn := range runs {
						sw.AddRouteRange(rn.lo, rn.hi, rn.port)
					}
				})
			}
		}
	}

	var runner *shard.Runner
	if K > 1 {
		regions := make([]*shard.Region, K)
		for r := 0; r < K; r++ {
			regions[r] = &shard.Region{Eng: engs[r], Pool: pools[r]}
		}
		runner = shard.NewRunner(regions, edges, edgeFrom, part.MinCutDelay)
	}

	sm := &Sim{
		cfg:       cfg,
		eng:       eng,
		pool:      pool,
		engs:      engs,
		pools:     pools,
		runner:    runner,
		dropLogs:  dropLogs,
		res:       res,
		trunks:    trunks,
		senders:   senders,
		receivers: receivers,
		sinks:     sinks,
		tracer:    tracer,
		tracers:   tracers,
		merger:    merger,
		checker:   checker,
		metrics:   metrics,
		progress:  progress,
		epochHist: metrics.NewHistogram("epoch-seconds", epochBounds),
	}
	res.Metrics = metrics
	if progress != nil {
		sm.nextProgressT = progress.Every
		sm.nextProgressE = progress.EveryEvents
	}
	return sm, nil
}

// Histogram bucket bounds for the built-in metrics. Chosen to bracket
// the paper's operating ranges: queues up to a few hundred packets,
// RTTs from milliseconds to the multi-second compressed regime, ACK
// gaps from sub-millisecond compression bursts to idle-period scale,
// and congestion epochs of seconds to minutes.
var (
	queueBounds  = []float64{0, 1, 2, 5, 10, 20, 40, 80, 160, 320}
	rttBounds    = []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 30}
	ackGapBounds = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 5}
	epochBounds  = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500}
)

// queueUnbounded names the unbounded-buffer sentinel for readability.
const queueUnbounded = 0

// estTrunkPackets estimates how many data packets one trunk direction
// can carry over the whole run — the sizing unit for trace containers.
func estTrunkPackets(cfg Config) int {
	tx := cfg.DataTxTime()
	if tx <= 0 || cfg.Duration <= 0 {
		return 0
	}
	return int(cfg.Duration / tx)
}

// clampReserve bounds a trace-capacity estimate so a pathological
// configuration (huge duration, tiny packets) cannot preallocate
// unbounded memory; beyond the clamp the containers just grow as before.
func clampReserve(n int) int {
	const maxReserve = 1 << 19
	if n > maxReserve {
		return maxReserve
	}
	if n < 0 {
		return 0
	}
	return n
}

// delayedNet adds a fixed delay in front of a host's output, modeling a
// longer private path for one connection (unequal RTTs, §5).
type delayedNet struct {
	eng *sim.Engine
	dst tcp.Network
	d   time.Duration
}

// Send implements tcp.Network. The delay element has unbounded storage,
// so acceptance is immediate; ordering is preserved because the delay is
// constant and the engine breaks timestamp ties in schedule order. The
// in-flight leg is a typed event bound to the element itself, so the
// per-packet path allocates nothing.
func (dn *delayedNet) Send(p *packet.Packet) bool {
	dn.eng.SchedulePacket(dn.d, dn, p)
	return true
}

// Deliver implements sim.PacketSink: the delay has elapsed, hand the
// packet to the host's output. A full buffer there drops (and releases)
// it like any other arrival.
func (dn *delayedNet) Deliver(p *packet.Packet) {
	dn.dst.Send(p)
}
