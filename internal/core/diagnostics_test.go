package core

// Diagnostics: run the paper's headline configurations and log
// the measured observables. These tests always pass; they exist to show
// the dynamics at a glance under `go test -v -run Probe`.

import (
	"testing"
	"time"

	"tahoedyn/internal/analysis"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/trace"
)

func dropsAfter(drops []trace.DropEvent, from time.Duration) []trace.DropEvent {
	var out []trace.DropEvent
	for _, d := range drops {
		if d.T >= from {
			out = append(out, d)
		}
	}
	return out
}

func depsAfter(deps []trace.Departure, from time.Duration) []trace.Departure {
	var out []trace.Departure
	for _, d := range deps {
		if d.T >= from {
			out = append(out, d)
		}
	}
	return out
}

func probeTwoWay(t *testing.T, tau time.Duration, buffer int) *Result {
	t.Helper()
	cfg := DumbbellConfig(tau, buffer)
	cfg.Conns = []ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 200 * time.Second
	cfg.Duration = 800 * time.Second
	res := Run(cfg)

	epochs := analysis.Epochs(dropsAfter(res.Drops, cfg.Warmup), 10*time.Second)
	pat := analysis.ClassifyTwoConnDrops(epochs, 1, 2)
	qmode, qr := analysis.Phase(res.Q1(), res.Q2(), cfg.Warmup, cfg.Duration, time.Second)
	wmode, wr := analysis.Phase(res.Cwnd[0], res.Cwnd[1], cfg.Warmup, cfg.Duration, time.Second)
	comp := analysis.AckCompression(res.AckArrivals[0], cfg.DataTxTime(), cfg.Warmup)
	clus := analysis.Clustering(analysis.FilterDepartures(depsAfter(res.TrunkDeps[0][0], cfg.Warmup), packet.Data))
	t.Logf("tau=%v B=%d: utilF=%.3f utilR=%.3f", tau, buffer, res.UtilForward(), res.UtilReverse())
	t.Logf("  epochs=%d singleEach=%d oneSided=%d altRate=%.2f dataFrac=%.4f",
		pat.Epochs, pat.SingleEach, pat.OneSided, pat.AlternationRate(), pat.DataDropFraction())
	t.Logf("  queue phase=%v (r=%.2f) cwnd phase=%v (r=%.2f)", qmode, qr, wmode, wr)
	t.Logf("  ack compression frac=%.3f minGap=%v clustering=%.3f",
		comp.CompressedFraction(), comp.MinGap, clus)
	t.Logf("  Q1 max=%v Q2 max=%v", res.Q1().Max(cfg.Warmup, cfg.Duration), res.Q2().Max(cfg.Warmup, cfg.Duration))
	for i, e := range epochs {
		if i >= 8 {
			break
		}
		t.Logf("  epoch at %v: %v", e.Start.Round(time.Second), e.LossByConn())
	}
	for k, evs := range res.Collapses {
		var dup, to int
		for _, ev := range evs {
			if ev.Cause == "dupack" {
				dup++
			} else {
				to++
			}
		}
		t.Logf("  conn %d collapses: dupack=%d timeout=%d", k+1, dup, to)
	}
	return res
}

func TestProbeTwoWaySmallPipe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	probeTwoWay(t, 10*time.Millisecond, 20)
}

func TestProbeTwoWayLargePipe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	probeTwoWay(t, time.Second, 20)
}

func TestProbeFixedWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	for _, tau := range []time.Duration{10 * time.Millisecond, time.Second} {
		cfg := DumbbellConfig(tau, 0) // infinite buffers
		cfg.Conns = []ConnSpec{
			{SrcHost: 0, DstHost: 1, FixedWnd: 30, Start: -1},
			{SrcHost: 1, DstHost: 0, FixedWnd: 25, Start: -1},
		}
		cfg.Warmup = 200 * time.Second
		cfg.Duration = 800 * time.Second
		res := Run(cfg)
		t.Logf("fixed wnd 30/25 tau=%v: utilF=%.3f utilR=%.3f Q1max=%v Q2max=%v",
			tau, res.UtilForward(), res.UtilReverse(),
			res.Q1().Max(cfg.Warmup, cfg.Duration), res.Q2().Max(cfg.Warmup, cfg.Duration))
		comp := analysis.AckCompression(res.AckArrivals[0], cfg.DataTxTime(), cfg.Warmup)
		t.Logf("  ack compression frac=%.3f minGap=%v", comp.CompressedFraction(), comp.MinGap)
		if len(res.Drops) != 0 {
			t.Errorf("drops with infinite buffers: %d", len(res.Drops))
		}
	}
}

func TestProbeOneWayLargePipe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	cfg := oneWayConfig(time.Second, 3)
	cfg.Warmup = 200 * time.Second
	cfg.Duration = 800 * time.Second
	res := Run(cfg)
	epochs := analysis.Epochs(dropsAfter(res.Drops, cfg.Warmup), 10*time.Second)
	t.Logf("one-way tau=1s: utilF=%.3f epochs=%d", res.UtilForward(), len(epochs))
	for i, e := range epochs {
		if i >= 5 {
			break
		}
		t.Logf("  epoch %d at %v: drops=%v", i, e.Start.Round(time.Second), e.LossByConn())
	}
	if len(epochs) >= 2 {
		period := (epochs[len(epochs)-1].Start - epochs[0].Start) / time.Duration(len(epochs)-1)
		t.Logf("  mean epoch period=%v", period.Round(time.Second))
	}
	clus := analysis.Clustering(analysis.FilterDepartures(depsAfter(res.TrunkDeps[0][0], cfg.Warmup), packet.Data))
	t.Logf("  clustering=%.3f", clus)
}
