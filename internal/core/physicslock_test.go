package core

// Physics-lock regression tests: exact fingerprints of two canonical
// runs. The simulator is fully deterministic, so any change to these
// numbers means the *dynamics* changed — which must be a deliberate,
// reviewed decision, since the figure reproductions depend on them.

import (
	"testing"
	"time"
)

func TestPhysicsLockTwoWayAdaptive(t *testing.T) {
	cfg := DumbbellConfig(10*time.Millisecond, 20)
	cfg.Conns = []ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 100 * time.Second
	cfg.Duration = 400 * time.Second
	res := Run(cfg)
	if res.Events != 89869 {
		t.Errorf("events = %d, want 89869", res.Events)
	}
	if len(res.Drops) != 130 {
		t.Errorf("drops = %d, want 130", len(res.Drops))
	}
	if res.Goodput[0] != 2260 || res.Goodput[1] != 2336 {
		t.Errorf("goodput = %v, want [2260 2336]", res.Goodput)
	}
	if len(res.AckArrivals[0]) != 3134 {
		t.Errorf("acks at conn 1 = %d, want 3134", len(res.AckArrivals[0]))
	}
}

func TestPhysicsLockFixedWindow(t *testing.T) {
	cfg := DumbbellConfig(time.Second, 0)
	cfg.Conns = []ConnSpec{
		{SrcHost: 0, DstHost: 1, FixedWnd: 30, Start: -1},
		{SrcHost: 1, DstHost: 0, FixedWnd: 25, Start: -1},
	}
	cfg.Warmup = 100 * time.Second
	cfg.Duration = 400 * time.Second
	res := Run(cfg)
	if res.Events != 95679 {
		t.Errorf("events = %d, want 95679", res.Events)
	}
	if res.Goodput[0] != 2800 || res.Goodput[1] != 2332 {
		t.Errorf("goodput = %v, want [2800 2332]", res.Goodput)
	}
	if res.Q1().Len() != 13262 {
		t.Errorf("Q1 trace points = %d, want 13262", res.Q1().Len())
	}
}
