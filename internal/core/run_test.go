package core

import (
	"testing"
	"time"

	"tahoedyn/internal/packet"
)

// oneWayConfig is the §3.1 configuration: three connections, all with
// sources on Host-1, τ = 1 s, buffer 20.
func oneWayConfig(tau time.Duration, nConns int) Config {
	cfg := DumbbellConfig(tau, DefaultBuffer)
	for i := 0; i < nConns; i++ {
		cfg.Conns = append(cfg.Conns, ConnSpec{SrcHost: 0, DstHost: 1, Start: -1})
	}
	return cfg
}

func TestNormalizeDefaults(t *testing.T) {
	cfg := Config{Conns: []ConnSpec{{SrcHost: 0, DstHost: 1}}, Warmup: 1}
	cfg.Normalize()
	if cfg.Switches != 2 || cfg.DataSize != 500 || cfg.AckSize != 0 {
		t.Fatalf("normalized = %+v", cfg)
	}
	if cfg.Conns[0].MaxWnd != DefaultMaxWnd {
		t.Fatalf("MaxWnd = %d", cfg.Conns[0].MaxWnd)
	}
}

func TestNormalizeRejectsBadConns(t *testing.T) {
	for _, bad := range []ConnSpec{
		{SrcHost: 0, DstHost: 0},
		{SrcHost: 0, DstHost: 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", bad)
				}
			}()
			cfg := DumbbellConfig(time.Second, 20)
			cfg.Conns = []ConnSpec{bad}
			cfg.Normalize()
		}()
	}
}

func TestPipeSize(t *testing.T) {
	cfg := DumbbellConfig(time.Second, 20)
	if got := cfg.PipeSize(); got != 12.5 {
		t.Fatalf("P(τ=1s) = %v, want 12.5", got)
	}
	cfg = DumbbellConfig(10*time.Millisecond, 20)
	if got := cfg.PipeSize(); got != 0.125 {
		t.Fatalf("P(τ=0.01s) = %v, want 0.125", got)
	}
	if got := cfg.DataTxTime(); got != 80*time.Millisecond {
		t.Fatalf("data tx = %v, want 80ms", got)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := oneWayConfig(10*time.Millisecond, 2)
	cfg.Warmup = 20 * time.Second
	cfg.Duration = 60 * time.Second
	a := Run(cfg)
	b := Run(cfg)
	if a.Events != b.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Events, b.Events)
	}
	if a.UtilForward() != b.UtilForward() {
		t.Fatalf("utilization differs: %v vs %v", a.UtilForward(), b.UtilForward())
	}
	if len(a.Drops) != len(b.Drops) {
		t.Fatalf("drop counts differ: %d vs %d", len(a.Drops), len(b.Drops))
	}
}

func TestRunSeedChangesStartTimes(t *testing.T) {
	cfg := oneWayConfig(10*time.Millisecond, 2)
	cfg.Warmup = 10 * time.Second
	cfg.Duration = 30 * time.Second
	a := Run(cfg)
	cfg.Seed = 2
	b := Run(cfg)
	if a.Events == b.Events {
		t.Log("seeds produced identical event counts (possible but unlikely); checking traces")
		if len(a.AckArrivals[0]) == len(b.AckArrivals[0]) &&
			a.AckArrivals[0][0] == b.AckArrivals[0][0] {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

// Packet conservation: every data packet sent is delivered, dropped, or
// still in flight at the end of the run.
func TestPacketConservation(t *testing.T) {
	cfg := oneWayConfig(10*time.Millisecond, 3)
	cfg.Warmup = 10 * time.Second
	cfg.Duration = 120 * time.Second
	res := Run(cfg)
	var sent, retrans uint64
	for _, st := range res.SenderStats {
		sent += st.DataSent
		retrans += st.Retransmits
	}
	var accepted uint64
	for k, st := range res.ReceiverStats {
		accepted += st.DataReceived + st.DupData
		if res.Delivered[k] == 0 {
			t.Fatalf("conn %d delivered nothing", k+1)
		}
	}
	dataDrops := 0
	for _, d := range res.Drops {
		if d.Kind == packet.Data {
			dataDrops++
		}
	}
	// In flight at the end is bounded by the sum of windows; allow a
	// loose bound of 100 packets.
	diff := int64(sent) - int64(accepted) - int64(dataDrops)
	if diff < 0 || diff > 100 {
		t.Fatalf("conservation: sent=%d accepted=%d dropped=%d diff=%d",
			sent, accepted, dataDrops, diff)
	}
}

// The §3.1 one-way sanity check, small pipe: utilization should be near
// 100 % and losses synchronized across connections.
func TestOneWaySmallPipeBasics(t *testing.T) {
	cfg := oneWayConfig(10*time.Millisecond, 3)
	cfg.Warmup = 50 * time.Second
	cfg.Duration = 300 * time.Second
	res := Run(cfg)
	if res.UtilForward() < 0.95 {
		t.Fatalf("one-way small-pipe utilization = %v, want ≈1", res.UtilForward())
	}
	// Reverse direction carries only ACKs: tiny utilization.
	if res.UtilReverse() > 0.3 {
		t.Fatalf("reverse (ACK) utilization = %v, suspiciously high", res.UtilReverse())
	}
	// No ACKs are ever dropped in these configurations (§4.2).
	for _, d := range res.Drops {
		if d.Kind == packet.Ack {
			t.Fatalf("ACK dropped at %v on %s", d.T, d.Port)
		}
	}
	// All drops happen at the bottleneck port.
	for _, d := range res.Drops {
		if d.Port != "sw0->sw1" {
			t.Fatalf("drop at unexpected port %s", d.Port)
		}
	}
}
