package core

import (
	"reflect"
	"testing"
	"time"

	"tahoedyn/internal/obs"
	"tahoedyn/internal/sim"
)

// Arena reuse must be invisible to the physics: runs drawn from a warm
// arena are identical to cold runs, back to back, across configuration
// changes, and under both schedulers. This is the behavioral half of
// the DESIGN.md §11 ownership contract (the allocation half — a warm
// arena run is 0 allocs/op in steady state — is asserted by the root
// TestSteadyStateAllocs).
func TestArenaRunsAreByteIdentical(t *testing.T) {
	for _, kind := range []sim.SchedKind{sim.SchedWheel, sim.SchedHeap} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := twoWay(10 * time.Millisecond)
			cfg.Sched = kind
			cold := Run(cfg)

			a := NewArena()
			first := a.Run(cfg)
			second := a.Run(cfg) // fully warm: engine, pool, and ring all reused
			assertRunsIdentical(t, cold, first)
			assertRunsIdentical(t, cold, second)
		})
	}
}

// A warm arena must also serve a different configuration correctly —
// sweep workers run a new grid point on every job.
func TestArenaReuseAcrossConfigs(t *testing.T) {
	a := NewArena()
	small := twoWay(10 * time.Millisecond)
	large := twoWay(time.Second)

	wantSmall := Run(small)
	wantLarge := Run(large)
	assertRunsIdentical(t, wantSmall, a.Run(small))
	assertRunsIdentical(t, wantLarge, a.Run(large))
	assertRunsIdentical(t, wantSmall, a.Run(small))
}

// Switching Config.Sched mid-arena swaps the kept engine for one of the
// right kind without contaminating results.
func TestArenaSchedSwitch(t *testing.T) {
	a := NewArena()
	cfg := twoWay(10 * time.Millisecond)
	cfg.Sched = sim.SchedWheel
	wheel := a.Run(cfg)
	cfg.Sched = sim.SchedHeap
	heap := a.Run(cfg)
	cfg.Sched = sim.SchedWheel
	again := a.Run(cfg)
	assertRunsIdentical(t, wheel, heap)
	assertRunsIdentical(t, wheel, again)
}

// An arena-backed traced run must reuse the previous run's ring without
// leaking events between runs, and stay identical to a cold traced run.
func TestArenaTraceRingReuse(t *testing.T) {
	cfg := twoWay(10 * time.Millisecond)
	traced := func(c Config) (Config, *obs.MemorySink) {
		sink := obs.NewMemorySink()
		c.Obs = &obs.Options{Trace: &obs.TraceOptions{Sink: sink, RingSize: 512}}
		return c, sink
	}

	a := NewArena()
	firstCfg, firstSink := traced(cfg)
	secondCfg, secondSink := traced(cfg)
	coldCfg, coldSink := traced(cfg)
	first := a.Run(firstCfg)
	second := a.Run(secondCfg)
	cold := Run(coldCfg)

	assertRunsIdentical(t, cold, first)
	assertRunsIdentical(t, cold, second)
	wantLocs, wantEvents := coldSink.Snapshot()
	if len(wantEvents) == 0 {
		t.Fatal("cold traced run produced no events")
	}
	for i, sink := range []*obs.MemorySink{firstSink, secondSink} {
		locs, events := sink.Snapshot()
		if !reflect.DeepEqual(locs, wantLocs) {
			t.Fatalf("run %d: location tables differ", i)
		}
		if !reflect.DeepEqual(events, wantEvents) {
			t.Fatalf("run %d: trace streams differ (%d vs %d events)", i, len(events), len(wantEvents))
		}
	}
}
