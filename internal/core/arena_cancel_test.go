package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"tahoedyn/internal/obs"
)

// cancelMidRun builds cfg on the arena and cancels it partway through,
// returning the abandoned Sim. The arena is then reused without
// resuming — the next Build must reset the engine over the canceled
// run's leftover events.
func cancelMidRun(t *testing.T, a *Arena, cfg Config, at time.Duration) *Sim {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Obs = &obs.Options{Progress: &obs.Progress{
		Every: time.Second,
		Fn: func(s obs.Snapshot) {
			if s.Now >= at {
				cancel()
			}
		},
	}}
	s, err := a.BuildE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FinishContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("FinishContext error = %v, want context.Canceled", err)
	}
	if s.Now() >= cfg.Duration {
		t.Fatalf("cancel landed at %v, past the end", s.Now())
	}
	return s
}

// TestArenaReuseAfterCancel abandons a canceled run mid-batch and
// builds fresh runs on the same arena: the recycled engine, pool, and
// trace ring must not leak the canceled run's pending events or packets
// into the next run, serial or sharded.
func TestArenaReuseAfterCancel(t *testing.T) {
	cfg := twoWay(10 * time.Millisecond)
	cold := Run(cfg)

	a := NewArena()
	cancelMidRun(t, a, cfg, 30*time.Second)
	assertRunsIdentical(t, cold, a.Run(cfg))

	// Same arena, sharded run canceled mid-round, then a serial rebuild
	// and a sharded rebuild.
	shardCfg := cfg
	shardCfg.Shards = 2
	cancelMidRun(t, a, shardCfg, 30*time.Second)
	assertRunsIdentical(t, cold, a.Run(cfg))
	cancelMidRun(t, a, shardCfg, 30*time.Second)
	assertRunsIdentical(t, cold, a.Run(shardCfg))
}
