// Package core assembles the paper's network configurations and runs
// them: it is the reproduction's scenario engine. A scenario is a
// network topology — by default a line of switches (two for the
// Figure-1 dumbbell, four for the §5 topology from [19]) with one host
// per switch, or any graph described by Config.Topology — plus a set of
// TCP connections between hosts and a measurement window. Running a
// scenario yields the traces and statistics the paper's figures are
// drawn from.
package core

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tahoedyn/internal/link"
	"tahoedyn/internal/obs"
	"tahoedyn/internal/sim"
	"tahoedyn/internal/topology"
	"tahoedyn/internal/tstore"
)

// defaultShards is the shard count used when Config.Shards is zero. It
// starts from the TAHOEDYN_SHARDS environment variable (like
// TAHOEDYN_SCHED for the scheduler) and can be overridden by
// SetDefaultShards; both exist so CLIs and CI can switch whole runs to
// sharded execution without threading a parameter through every config.
var defaultShards = func() int {
	if v := os.Getenv("TAHOEDYN_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 1
}()

// SetDefaultShards sets the shard count applied to configs that leave
// Shards zero. Values below 1 reset to 1 (serial). Like the scheduler
// default, set it at process start, not concurrently with runs.
func SetDefaultShards(n int) {
	if n < 1 {
		n = 1
	}
	defaultShards = n
}

// Discard selects the switch overflow policy of the legacy enum
// surface. New configurations should prefer Config.Queue, which
// subsumes both Discard and Discipline; the enums remain because the
// byte-identity contract pins their construction path (including its
// shared-RNG draw order) exactly.
type Discard uint8

// Discard policies for Config.Discard.
const (
	// DropTail discards arrivals at a full buffer (the paper's switches).
	DropTail Discard = iota
	// RandomDrop evicts a uniformly chosen buffered packet instead — the
	// gateway discipline of the studies the paper cites in §1.
	RandomDrop
)

// Discipline selects the switch service order of the legacy enum
// surface; prefer Config.Queue.
type Discipline uint8

// Service disciplines for Config.Discipline.
const (
	// FIFO is first-in-first-out service (the paper's switches).
	FIFO Discipline = iota
	// FairQueue is per-connection self-clocked fair queueing — the
	// discipline of the Fair Queueing studies the paper cites in §1.
	FairQueue
)

// Paper parameter defaults (§2.2).
const (
	// DefaultTrunkBandwidth is the bottleneck line rate: 50 Kbps.
	DefaultTrunkBandwidth int64 = 50_000
	// DefaultAccessBandwidth is the host-switch line rate: 10 Mbps.
	DefaultAccessBandwidth int64 = 10_000_000
	// DefaultAccessDelay is the host-switch propagation delay: 0.1 ms.
	DefaultAccessDelay = 100 * time.Microsecond
	// DefaultHostProcessing is the per-packet host processing time: 0.1 ms.
	DefaultHostProcessing = 100 * time.Microsecond
	// DefaultDataSize is the data packet size: 500 bytes.
	DefaultDataSize = 500
	// DefaultAckSize is the ACK packet size: 50 bytes.
	DefaultAckSize = 50
	// DefaultMaxWnd is the receiver-advertised window: 1000 packets
	// (never binding in the paper's runs, where cwnd stays below 50).
	DefaultMaxWnd = 1000
	// DefaultBuffer is the switch buffer used in most configurations.
	DefaultBuffer = 20
)

// Source kinds for SourceSpec.Kind.
const (
	// SourceTCP is the default TCP Tahoe endpoint pair (equivalent to a
	// nil SourceSpec).
	SourceTCP = "tcp"
	// SourceCBR is a constant-bit-rate unresponsive source (UDP-like
	// cross-traffic) feeding a counting sink.
	SourceCBR = "cbr"
	// SourceOnOff is an exponential on/off source (telnet-like
	// intermittent traffic) feeding a counting sink.
	SourceOnOff = "onoff"
)

// SourceSpec replaces a connection's TCP endpoints with a non-TCP
// traffic generator (internal/node sources). The connection then has
// no congestion control: Result.Delivered/Goodput come from the sink's
// packet count, and the TCP-only series (Cwnd, RTT, AckArrivals,
// Collapses) and stats stay empty.
type SourceSpec struct {
	// Kind selects the generator: SourceCBR or SourceOnOff (SourceTCP
	// and "" mean an ordinary TCP connection).
	Kind string
	// Rate is the offered bit rate while the source is active (> 0).
	Rate int64
	// Size is the packet size in bytes; 0 means Config.DataSize.
	Size int
	// OnMean/OffMean are the exponential period means of SourceOnOff.
	OnMean, OffMean time.Duration
}

// generates reports whether the spec replaces the TCP endpoints.
func (s *SourceSpec) generates() bool {
	return s != nil && s.Kind != "" && s.Kind != SourceTCP
}

// Validate reports the first problem with the spec. Callers wrap the
// error with the connection's identity.
func (s *SourceSpec) Validate() error {
	if s == nil {
		return nil
	}
	switch s.Kind {
	case "", SourceTCP:
		if *s != (SourceSpec{Kind: s.Kind}) {
			return fmt.Errorf("a tcp source takes no generator parameters")
		}
		return nil
	case SourceCBR:
		if s.OnMean != 0 || s.OffMean != 0 {
			return fmt.Errorf("cbr source takes no on/off period means")
		}
	case SourceOnOff:
		if s.OnMean <= 0 || s.OffMean <= 0 {
			return fmt.Errorf("onoff source needs positive on_mean and off_mean")
		}
	default:
		return fmt.Errorf("unknown source kind %q (want %s, %s, or %s)",
			s.Kind, SourceTCP, SourceCBR, SourceOnOff)
	}
	if s.Rate <= 0 {
		return fmt.Errorf("%s source needs a positive rate, got %d", s.Kind, s.Rate)
	}
	if s.Size < 0 {
		return fmt.Errorf("negative source packet size %d", s.Size)
	}
	return nil
}

// LinkEvent changes one trunk link while the run is in progress: at
// time T the link either goes down (routing steers around it; packets
// already queued or in flight still drain and deliver) or changes
// bandwidth (the new rate applies from the next serialization on each
// direction's port, and routing re-weighs the link). Affected switch
// forwarding tables are recomputed incrementally at build time
// (topology.ApplyLinkChange) and swapped in as simulation events, so
// runs with events stay byte-identical at every shard count. A down
// link that would disconnect any host pair is a build error.
type LinkEvent struct {
	// T is the simulation time the change takes effect.
	T time.Duration
	// Link is the topology link index (Compiled.Links order; for the
	// default chain, link i joins switches i and i+1).
	Link int
	// Bandwidth, when positive, is the link's new rate in bits/s.
	Bandwidth int64
	// Down, when true, removes the link from routing. Exactly one of
	// Bandwidth/Down must be set.
	Down bool
}

// Validate reports the first problem with the event given the number of
// links in the effective topology.
func (e *LinkEvent) Validate(links int) error {
	if e.T < 0 {
		return fmt.Errorf("negative event time %v", e.T)
	}
	if e.Link < 0 || e.Link >= links {
		return fmt.Errorf("link %d out of range [0,%d)", e.Link, links)
	}
	if e.Down && e.Bandwidth != 0 {
		return fmt.Errorf("link %d event sets both down and bandwidth", e.Link)
	}
	if !e.Down && e.Bandwidth <= 0 {
		return fmt.Errorf("link %d event needs a positive bandwidth or down", e.Link)
	}
	return nil
}

// ParseLinkEvent parses the -event flag syntax: comma-separated
// key=value tokens — "link=<index>" and "t=<duration>" (both
// required), plus either "bw=<bits/s>" (alias "bandwidth=") or the
// bare token "down". Examples:
//
//	link=1,t=120s,bw=25000
//	link=3,t=2m,down
func ParseLinkEvent(text string) (LinkEvent, error) {
	var ev LinkEvent
	var haveLink, haveT bool
	for _, tok := range strings.Split(text, ",") {
		k, v, hasVal := strings.Cut(strings.TrimSpace(tok), "=")
		var err error
		switch k {
		case "link":
			haveLink = true
			if ev.Link, err = strconv.Atoi(v); err != nil {
				return ev, fmt.Errorf("core: event link %q: %v", v, err)
			}
		case "t":
			haveT = true
			if ev.T, err = time.ParseDuration(v); err != nil {
				return ev, fmt.Errorf("core: event time %q: %v", v, err)
			}
		case "bw", "bandwidth":
			if ev.Bandwidth, err = strconv.ParseInt(v, 10, 64); err != nil {
				return ev, fmt.Errorf("core: event bandwidth %q: %v", v, err)
			}
		case "down":
			if hasVal {
				return ev, fmt.Errorf("core: event token \"down\" takes no value")
			}
			ev.Down = true
		default:
			return ev, fmt.Errorf("core: unknown event token %q (want link=, t=, bw=, or down)", tok)
		}
	}
	if !haveLink || !haveT {
		return ev, fmt.Errorf("core: an event needs link= and t=")
	}
	if ev.Down && ev.Bandwidth != 0 {
		return ev, fmt.Errorf("core: event sets both down and bandwidth")
	}
	if !ev.Down && ev.Bandwidth <= 0 {
		return ev, fmt.Errorf("core: event needs a positive bw= or down")
	}
	return ev, nil
}

// ConnSpec describes one TCP connection in a scenario.
type ConnSpec struct {
	// SrcHost and DstHost are 0-based host indices along the line.
	SrcHost, DstHost int
	// MaxWnd is the advertised window; 0 means DefaultMaxWnd.
	MaxWnd int
	// FixedWnd, when positive, disables congestion control and uses this
	// constant window.
	FixedWnd int
	// DelayedAck enables the receiver's delayed-ACK option.
	DelayedAck bool
	// Pace, when positive, paces data transmissions at least this far
	// apart (the pacing ablation).
	Pace time.Duration
	// OriginalIncrease selects the unmodified 1/cwnd avoidance rule.
	OriginalIncrease bool
	// Reno enables 4.3-Reno fast recovery for this connection (an
	// extension; the paper studies Tahoe).
	Reno bool
	// ExtraDelay adds a fixed one-way delay to this connection's data
	// path, giving connections unequal round-trip times (§5: unequal
	// RTTs break complete clustering).
	ExtraDelay time.Duration
	// Start is the connection start time. Negative means "pick a random
	// start in [0, StartSpread) from the scenario RNG".
	Start time.Duration
	// Source, when set to a generating kind, replaces the TCP endpoints
	// with a non-TCP traffic source and a counting sink. The TCP-only
	// fields above are ignored for such connections.
	Source *SourceSpec
}

// Config describes a complete scenario. The zero value is not runnable;
// use the With* helpers or fill the fields and call Normalize.
type Config struct {
	// Switches is the number of switches on the line (>= 2). Host i
	// hangs off switch i. Ignored (and overwritten by Normalize) when
	// Topology is set.
	Switches int
	// Topology, when non-nil, replaces the default switch line with an
	// arbitrary graph: duplex links with per-link bandwidth/delay/buffer
	// overrides, explicit host placement, and static shortest-path
	// routing (see internal/topology). Zero-valued link parameters
	// inherit the Trunk*/Buffer defaults below. Connection host indices
	// refer to the topology's host list.
	Topology *topology.Graph
	// TrunkBandwidth and TrunkDelay describe every switch-switch line;
	// TrunkDelay is the paper's propagation delay τ.
	TrunkBandwidth int64
	TrunkDelay     time.Duration
	// Buffer is the per-output-port switch buffer in packets; <= 0 means
	// infinite (the fixed-window configurations).
	Buffer int
	// AccessBandwidth/AccessDelay describe the host-switch lines.
	AccessBandwidth int64
	AccessDelay     time.Duration
	// HostProcessing is the per-packet host processing time.
	HostProcessing time.Duration
	// Discard is the switch overflow policy (DropTail by default).
	// Deprecated surface: prefer Queue, which subsumes it.
	Discard Discard
	// Discipline is the switch service order (FIFO by default).
	// Deprecated surface: prefer Queue, which subsumes it.
	Discipline Discipline
	// Queue, when non-nil, selects the queue discipline of every switch
	// output port (trunk ports and switch→host access ports), superseding
	// the Discard/Discipline pair. Stochastic policies (random-drop, red)
	// draw from per-port RNG streams derived from Seed, so results are
	// identical at every shard count.
	Queue *link.QueueSpec
	// LinkQueue overrides Queue per topology link index (both directions
	// of that trunk).
	LinkQueue map[int]*link.QueueSpec
	// Behavior, when non-nil, applies a link behavior — stochastic loss
	// (Bernoulli or Gilbert-Elliott), bounded jitter, optional
	// reordering, trace-driven rate replay — to every trunk port.
	// Behaviors also draw from per-port seeded streams.
	Behavior *link.BehaviorSpec
	// LinkBehavior overrides Behavior per topology link index.
	LinkBehavior map[int]*link.BehaviorSpec
	// DataSize and AckSize are packet sizes in bytes. AckSize may be 0
	// for the zero-length-ACK conjecture experiments; DataSize must be
	// positive.
	DataSize int
	AckSize  int

	// Conns lists the connections.
	Conns []ConnSpec

	// Events lists mid-run link changes (bandwidth steps, link-down),
	// applied in order of T with ties broken by list position. See
	// LinkEvent for semantics and the byte-identity contract.
	Events []LinkEvent

	// NoPool disables the per-run packet free list, allocating every
	// packet on the heap as the pre-pool simulator did. Pooling is
	// behavior-neutral — the determinism tests assert byte-identical
	// output both ways — so this exists only for those tests and for
	// memory-debugging sessions where distinct packet addresses help.
	NoPool bool

	// Sched selects the event-scheduler implementation backing the run's
	// engine: sim.SchedWheel (the default — hierarchical timing wheel),
	// sim.SchedHeap (the 4-ary heap A/B reference), or sim.SchedDefault.
	// The two schedulers fire events in exactly the same order, so this
	// never changes results — only the wall-clock cost of a run.
	Sched sim.SchedKind

	// Shards is the number of topology regions the run is partitioned
	// into, each simulated by its own engine on its own goroutine with
	// conservative lookahead synchronization (internal/shard). Zero means
	// the process default (SetDefaultShards / TAHOEDYN_SHARDS, normally
	// 1); 1 is the serial engine. Sharded runs produce byte-identical
	// Results — the shard identity tests assert it — so this, like Sched,
	// only changes the wall-clock cost of a run. The count is clamped to
	// the number of switches.
	Shards int
	// Regions, when non-empty, overrides the automatic partitioner with
	// an explicit assignment: Regions[r] lists the switch indices of
	// region r, and every switch must appear exactly once. Shards must be
	// zero or equal to len(Regions).
	Regions [][]int

	// MeasureTrunks limits per-trunk measurement — queue-length series,
	// departure logs, drop records, and queue histograms — to the listed
	// topology link indices. nil measures every trunk (the historical
	// behavior); an empty non-nil slice measures none. Unmeasured trunks
	// still forward, drop, and report utilization (Result.TrunkUtil is
	// always complete); only their logs are skipped, which is what makes
	// 10⁵-link networks affordable: a measured trunk preallocates trace
	// series sized for the whole run, an unmeasured one costs two ports.
	// Result entries for unmeasured trunks are nil/empty.
	MeasureTrunks []int
	// MeasureConns limits per-connection measurement — cwnd/RTT series,
	// ACK-arrival logs, collapse logs, per-conn histograms — to the
	// listed connection indices. nil measures every connection.
	// Unmeasured connections still run normally and report final
	// SenderStats/ReceiverStats/Delivered/Goodput; their Result series
	// entries are nil/empty. This is what lets 10⁵ concurrent flows fit:
	// per-flow measurement state dwarfs the flow itself.
	MeasureConns []int

	// Seed drives all scenario randomness (random start times).
	Seed int64
	// StartSpread bounds random connection start times.
	StartSpread time.Duration

	// Warmup is discarded before measurement; Duration ends the run.
	Warmup, Duration time.Duration

	// Obs, when non-nil, enables the observability layer for this run:
	// structured event tracing, the per-run metrics registry
	// (Result.Metrics), and progress sampling. Nil — the zero value —
	// disables all of it at zero cost, and enabling it never changes the
	// run's Result (see internal/obs).
	Obs *obs.Options

	// Invariants, when non-nil, runs the streaming invariant engine
	// (internal/tstore) online over the run's event stream: per-port
	// packet conservation and causality, event-time monotonicity, cwnd
	// bounds, and timeout monotonicity. The checker wraps the trace sink
	// (or becomes the sink when Obs.Trace is unset), so it composes with
	// tracing to disk and with sharded runs, whose merged stream it sees.
	// A checker only observes — the run's physics and Result metrics are
	// untouched — and the first violation stops checking, surfacing as
	// Result.Invariant (and Result.TraceErr). When MaxCwnd is nil and
	// cwnd bounds are enabled, each connection's bound defaults to
	// max(MaxWnd, FixedWnd). Conservation needs the full event stream,
	// so combining it with Obs.Trace.Filter is a build error unless
	// NoConservation is set.
	Invariants *tstore.CheckOptions
}

// DumbbellConfig returns the paper's Figure-1 configuration: two
// switches, 50 Kbps bottleneck with propagation delay tau, buffer
// packets of buffering per port, and paper-standard access links and
// packet sizes. Add connections before running.
func DumbbellConfig(tau time.Duration, buffer int) Config {
	return Config{
		Switches:        2,
		TrunkBandwidth:  DefaultTrunkBandwidth,
		TrunkDelay:      tau,
		Buffer:          buffer,
		AccessBandwidth: DefaultAccessBandwidth,
		AccessDelay:     DefaultAccessDelay,
		HostProcessing:  DefaultHostProcessing,
		DataSize:        DefaultDataSize,
		AckSize:         DefaultAckSize,
		Seed:            1,
		StartSpread:     time.Second,
		Warmup:          100 * time.Second,
		Duration:        600 * time.Second,
	}
}

// Normalize fills zero fields with paper defaults and validates the
// configuration, panicking on nonsense (this is construction-time
// programmer error, not runtime input). Callers handling untrusted
// input should go through BuildE/RunE, which surface the same problems
// as errors.
func (c *Config) Normalize() {
	if err := c.normalize(); err != nil {
		panic(err.Error())
	}
}

// normalize fills zero fields with paper defaults and validates,
// returning the first problem found.
func (c *Config) normalize() error {
	if c.Topology != nil {
		if c.Topology.Switches < 1 {
			return fmt.Errorf("core: topology has no switches")
		}
		c.Switches = c.Topology.Switches
	} else {
		if c.Switches == 0 {
			c.Switches = 2
		}
		if c.Switches < 2 {
			return fmt.Errorf("core: a scenario needs at least 2 switches")
		}
	}
	if c.TrunkBandwidth == 0 {
		c.TrunkBandwidth = DefaultTrunkBandwidth
	}
	if c.TrunkBandwidth < 0 {
		return fmt.Errorf("core: negative TrunkBandwidth %d", c.TrunkBandwidth)
	}
	if c.AccessBandwidth == 0 {
		c.AccessBandwidth = DefaultAccessBandwidth
	}
	if c.AccessBandwidth < 0 {
		return fmt.Errorf("core: negative AccessBandwidth %d", c.AccessBandwidth)
	}
	if c.AccessDelay == 0 {
		c.AccessDelay = DefaultAccessDelay
	}
	if c.HostProcessing == 0 {
		c.HostProcessing = DefaultHostProcessing
	}
	if c.DataSize == 0 {
		c.DataSize = DefaultDataSize
	}
	if c.DataSize < 0 {
		return fmt.Errorf("core: negative DataSize")
	}
	if c.AckSize < 0 {
		return fmt.Errorf("core: negative AckSize")
	}
	if c.Queue != nil {
		if c.Discard != DropTail || c.Discipline != FIFO {
			return fmt.Errorf("core: Queue and the legacy Discard/Discipline enums are both set; pick one surface")
		}
		if err := c.Queue.Validate(); err != nil {
			return fmt.Errorf("core: queue: %w", err)
		}
	}
	for li, qs := range c.LinkQueue {
		if li < 0 {
			return fmt.Errorf("core: LinkQueue names negative link %d", li)
		}
		if qs == nil {
			continue
		}
		if err := qs.Validate(); err != nil {
			return fmt.Errorf("core: link %d queue: %w", li, err)
		}
	}
	if c.Behavior != nil {
		if err := c.Behavior.Validate(); err != nil {
			return fmt.Errorf("core: behavior: %w", err)
		}
	}
	for li, bs := range c.LinkBehavior {
		if li < 0 {
			return fmt.Errorf("core: LinkBehavior names negative link %d", li)
		}
		if bs == nil {
			continue
		}
		if err := bs.Validate(); err != nil {
			return fmt.Errorf("core: link %d behavior: %w", li, err)
		}
	}
	if len(c.Regions) > 0 {
		if c.Shards != 0 && c.Shards != len(c.Regions) {
			return fmt.Errorf("core: Shards %d disagrees with %d explicit Regions", c.Shards, len(c.Regions))
		}
		c.Shards = len(c.Regions)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: negative Shards %d", c.Shards)
	}
	if c.Shards == 0 {
		c.Shards = defaultShards
	}
	// More regions than switches cannot all be non-empty; silently run
	// with one region per switch (explicit Regions still validate
	// strictly in the partitioner).
	if len(c.Regions) == 0 && c.Shards > c.Switches {
		c.Shards = c.Switches
	}
	if c.StartSpread == 0 {
		c.StartSpread = time.Second
	}
	if c.Duration == 0 {
		c.Duration = 600 * time.Second
	}
	if c.Warmup >= c.Duration {
		return fmt.Errorf("core: warmup %v must precede the end of the run at %v", c.Warmup, c.Duration)
	}
	if len(c.Conns) == 0 {
		return fmt.Errorf("core: no connections configured")
	}
	for _, k := range c.MeasureConns {
		if k < 0 || k >= len(c.Conns) {
			return fmt.Errorf("core: MeasureConns names connection %d, out of range [0,%d)", k, len(c.Conns))
		}
	}
	if len(c.Events) > 0 {
		links := len(c.Graph().Links)
		for i := range c.Events {
			if err := c.Events[i].Validate(links); err != nil {
				return fmt.Errorf("core: event %d: %w", i, err)
			}
		}
	}
	hosts := c.HostCount()
	for i := range c.Conns {
		s := &c.Conns[i]
		if s.MaxWnd == 0 {
			s.MaxWnd = DefaultMaxWnd
		}
		if s.SrcHost == s.DstHost {
			return fmt.Errorf("core: connection %d src == dst (host %d)", i, s.SrcHost)
		}
		if s.SrcHost < 0 || s.SrcHost >= hosts || s.DstHost < 0 || s.DstHost >= hosts {
			return fmt.Errorf("core: connection %d host index out of range (src %d, dst %d, %d hosts)",
				i, s.SrcHost, s.DstHost, hosts)
		}
		if err := s.Source.Validate(); err != nil {
			return fmt.Errorf("core: connection %d: %w", i, err)
		}
	}
	return nil
}

// Seed-stream kinds for entitySeed: each (kind, index) pair names one
// stochastic entity with its own independent RNG stream.
const (
	seedKindQueue uint64 = iota + 1
	seedKindBehavior
	seedKindSource
)

// entitySeed derives an independent, reproducible RNG seed for entity
// idx of the given kind from the scenario seed, via a splitmix64-style
// mix. Unlike draws from the shared scenario RNG, the derived seed
// depends only on (Seed, kind, idx) — never on construction order or
// the topology partition — which is what makes seeded queue policies,
// link behaviors, and sources byte-identical at every shard count.
func entitySeed(seed int64, kind uint64, idx int) int64 {
	z := uint64(seed) ^ (kind * 0x9E3779B97F4A7C15) ^ (uint64(idx+1) * 0xD1B54A32D192ED03)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// HostCount returns the number of hosts the scenario will build: the
// topology's host list, or one host per switch when no explicit
// topology (or no host list) is given.
func (c *Config) HostCount() int {
	if c.Topology != nil && len(c.Topology.Hosts) > 0 {
		return len(c.Topology.Hosts)
	}
	if c.Topology != nil {
		return c.Topology.Switches
	}
	if c.Switches == 0 {
		return 2
	}
	return c.Switches
}

// Graph returns the effective topology graph: the explicit Topology,
// or the default line of Switches switches with one host each.
func (c *Config) Graph() topology.Graph {
	if c.Topology != nil {
		return *c.Topology
	}
	n := c.Switches
	if n == 0 {
		n = 2
	}
	return topology.Chain(n)
}

// CompileTopology resolves the effective graph against this
// configuration's trunk defaults and computes the forwarding tables.
// Build calls it (panicking on error, as for any construction-time
// programmer error); tahoe-sim -validate calls it directly to surface
// topology problems as ordinary errors.
func (c *Config) CompileTopology() (*topology.Compiled, error) {
	bw := c.TrunkBandwidth
	if bw == 0 {
		bw = DefaultTrunkBandwidth
	}
	size := c.DataSize
	if size == 0 {
		size = DefaultDataSize
	}
	return c.Graph().Compile(topology.Defaults{
		Bandwidth: bw,
		Delay:     c.TrunkDelay,
		Buffer:    c.Buffer,
		DataSize:  size,
	})
}

// PipeSize returns the paper's pipe size P = μτ/M: the number of data
// packets in flight on one trunk hop.
func (c *Config) PipeSize() float64 {
	if c.DataSize == 0 {
		return 0
	}
	bits := float64(c.TrunkBandwidth) * c.TrunkDelay.Seconds()
	return bits / float64(8*c.DataSize)
}

// DataTxTime returns the bottleneck transmission time of one data packet.
func (c *Config) DataTxTime() time.Duration {
	bits := int64(c.DataSize) * 8
	return time.Duration(bits * int64(time.Second) / c.TrunkBandwidth)
}
