package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"tahoedyn/internal/packet"
)

// The binary trace format: a fixed header ("TOBS" magic + uint16
// version, little-endian), then a stream of tagged records. Tag 0
// defines a location (index, name); tag 1 is one 40-byte event record.
// Location definitions are emitted lazily, just before the first event
// that references them, so the format streams without a preamble pass.
const (
	binaryMagic   = "TOBS"
	binaryVersion = 1

	recLocDef byte = 0
	recEvent  byte = 1

	// eventRecSize is the fixed payload size of a tag-1 record:
	// T(8) Val(8) ID(8) Conn(4) Seq(4) Size(4) Loc(2) Type(1) Kind(1).
	eventRecSize = 40
)

// BinarySink writes the compact binary trace format. Unlike JSONLSink
// it keeps per-run lazy location state, so one BinarySink serves one
// run at a time; the mutex only makes misuse safe, not meaningful.
// Close flushes but leaves the underlying writer open.
type BinarySink struct {
	mu      sync.Mutex
	w       *bufio.Writer
	defined int
	err     error
}

// NewBinarySink returns a sink writing the binary format to w.
func NewBinarySink(w io.Writer) *BinarySink {
	return &BinarySink{w: bufio.NewWriter(w)}
}

// Begin writes the magic and version header.
func (s *BinarySink) Begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.WriteString(binaryMagic); err != nil {
		return err
	}
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], binaryVersion)
	_, err := s.w.Write(v[:])
	return err
}

// Events writes location definitions for any newly seen locations,
// then one fixed-size record per event.
func (s *BinarySink) Events(locs []string, events []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.defined < len(locs) {
		if err := writeLocDef(s.w, uint16(s.defined), locs[s.defined]); err != nil {
			return err
		}
		s.defined++
	}
	var rec [1 + eventRecSize]byte
	for i := range events {
		marshalEvent(rec[:], &events[i])
		if _, err := s.w.Write(rec[:]); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes. The caller owns the underlying writer.
func (s *BinarySink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

func writeLocDef(w *bufio.Writer, index uint16, name string) error {
	if len(name) > math.MaxUint16 {
		return fmt.Errorf("obs: location name %q too long for binary format", name[:32]+"...")
	}
	var hdr [5]byte
	hdr[0] = recLocDef
	binary.LittleEndian.PutUint16(hdr[1:3], index)
	binary.LittleEndian.PutUint16(hdr[3:5], uint16(len(name)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.WriteString(name)
	return err
}

// marshalEvent fills rec (1+eventRecSize bytes) with a tag-1 record.
func marshalEvent(rec []byte, ev *Event) {
	rec[0] = recEvent
	b := rec[1:]
	binary.LittleEndian.PutUint64(b[0:], uint64(ev.T))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(ev.Val))
	binary.LittleEndian.PutUint64(b[16:], ev.ID)
	binary.LittleEndian.PutUint32(b[24:], uint32(ev.Conn))
	binary.LittleEndian.PutUint32(b[28:], uint32(ev.Seq))
	binary.LittleEndian.PutUint32(b[32:], uint32(ev.Size))
	binary.LittleEndian.PutUint16(b[36:], uint16(ev.Loc))
	b[38] = byte(ev.Type)
	b[39] = byte(ev.Kind)
}

func unmarshalEvent(b []byte) Event {
	return Event{
		T:    time.Duration(binary.LittleEndian.Uint64(b[0:])),
		Val:  math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		ID:   binary.LittleEndian.Uint64(b[16:]),
		Conn: int32(binary.LittleEndian.Uint32(b[24:])),
		Seq:  int32(binary.LittleEndian.Uint32(b[28:])),
		Size: int32(binary.LittleEndian.Uint32(b[32:])),
		Loc:  Loc(binary.LittleEndian.Uint16(b[36:])),
		Type: Type(b[38]),
		Kind: packet.Kind(b[39]),
	}
}

// EncodeBinary writes a complete single-run binary stream: header,
// all location definitions, then every event. Used by the golden
// fixed-point tests as the pure twin of BinarySink.
func EncodeBinary(w io.Writer, locs []string, events []Event) error {
	s := NewBinarySink(w)
	if err := s.Begin(); err != nil {
		return err
	}
	if err := s.Events(locs, events); err != nil {
		return err
	}
	return s.Close()
}

// DecodeBinary parses a binary trace stream. It rejects bad magic and
// any version newer than this build writes.
func DecodeBinary(r io.Reader) (locs []string, events []Event, err error) {
	br := bufio.NewReader(r)
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("obs: short binary header: %w", err)
	}
	if string(hdr[:4]) != binaryMagic {
		return nil, nil, fmt.Errorf("obs: bad binary magic %q (want %q)", hdr[:4], binaryMagic)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v > binaryVersion {
		return nil, nil, fmt.Errorf("obs: binary trace version %d is newer than supported version %d", v, binaryVersion)
	}
	for {
		tag, err := br.ReadByte()
		if err == io.EOF {
			return locs, events, nil
		}
		if err != nil {
			return nil, nil, err
		}
		switch tag {
		case recLocDef:
			var lh [4]byte
			if _, err := io.ReadFull(br, lh[:]); err != nil {
				return nil, nil, fmt.Errorf("obs: short location record: %w", err)
			}
			index := binary.LittleEndian.Uint16(lh[0:2])
			name := make([]byte, binary.LittleEndian.Uint16(lh[2:4]))
			if _, err := io.ReadFull(br, name); err != nil {
				return nil, nil, fmt.Errorf("obs: short location name: %w", err)
			}
			if int(index) != len(locs) {
				return nil, nil, fmt.Errorf("obs: location %q defined out of order (index %d, have %d)", name, index, len(locs))
			}
			locs = append(locs, string(name))
		case recEvent:
			var rec [eventRecSize]byte
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, nil, fmt.Errorf("obs: short event record: %w", err)
			}
			ev := unmarshalEvent(rec[:])
			if ev.Type >= numTypes {
				return nil, nil, fmt.Errorf("obs: unknown event type %d in binary stream", ev.Type)
			}
			events = append(events, ev)
		default:
			return nil, nil, fmt.Errorf("obs: unknown record tag %d in binary stream", tag)
		}
	}
}
