package obs

import "time"

// Progress samples a run as it executes. The engine loop checks
// between event batches — never by scheduling events — so enabling
// progress cannot change a run's event sequence or its Result.
//
// The zero value of Every/EveryEvents means "not on that axis"; with
// both zero the observer fires once per internal batch (~4096 events).
type Progress struct {
	// Every fires the callback each time simulated time advances by
	// this much (e.g. 10*time.Second fires at sim-time 10s, 20s, ...).
	Every time.Duration
	// EveryEvents fires the callback each time this many engine events
	// have been processed.
	EveryEvents uint64
	// Fn receives the samples. Required. It runs on the simulating
	// goroutine: keep it fast, and do not touch the running Sim from it.
	Fn func(Snapshot)
}

// Snapshot is one progress sample.
type Snapshot struct {
	// Now is the current simulated time; End is the run's configured
	// end time (warmup + duration).
	Now, End time.Duration
	// Events is the cumulative count of processed engine events.
	Events uint64
}

// Frac returns completion as a fraction of simulated time, clamped to
// [0, 1]; 0 when End is unknown.
func (s Snapshot) Frac() float64 {
	if s.End <= 0 {
		return 0
	}
	f := float64(s.Now) / float64(s.End)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
