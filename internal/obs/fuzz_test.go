package obs

import (
	"bytes"
	"testing"
	"time"

	"tahoedyn/internal/packet"
)

// FuzzDecodeBinary feeds arbitrary bytes to the TOBS binary decoder.
// Malformed input — bad magic, future versions, truncated records,
// out-of-order location definitions, unknown tags or event types —
// must come back as an error, never a panic or a hang. Well-formed
// input must survive a decode∘encode round trip byte-identically.
func FuzzDecodeBinary(f *testing.F) {
	// Seed with a valid stream...
	valid := &bytes.Buffer{}
	events := []Event{
		{T: time.Second, Type: Enqueue, Loc: 0, Conn: 1, ID: 7, Seq: 3, Size: 500, Val: 2, Kind: packet.Data},
		{T: 2 * time.Second, Type: Drop, Loc: 1, Conn: 2, ID: 8, Val: 20, Kind: packet.Ack},
		{T: 3 * time.Second, Type: CwndChange, Conn: 1, Val: 5.5},
	}
	if err := EncodeBinary(valid, []string{"sw0->sw1", "host1"}, events); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// ...and structured corruptions of it.
	b := valid.Bytes()
	for _, cut := range []int{0, 3, 5, 6, 10, len(b) - 1} {
		f.Add(b[:cut])
	}
	mut := append([]byte(nil), b...)
	mut[0] = 'X' // bad magic
	f.Add(mut)
	mut = append([]byte(nil), b...)
	mut[4] = 0xff // future version
	f.Add(mut)
	f.Add([]byte("TOBS\x01\x00\x00\xff\xff\xff\xff")) // tag 0, garbage loc header
	f.Add([]byte("TOBS\x01\x00\x02"))                 // unknown tag

	f.Fuzz(func(t *testing.T, data []byte) {
		locs, evs, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded OK: re-encoding must reproduce the accepted stream's
		// canonical form, and decoding that again must be a fixed point.
		var out bytes.Buffer
		if err := EncodeBinary(&out, locs, evs); err != nil {
			t.Fatalf("re-encode of accepted stream failed: %v", err)
		}
		locs2, evs2, err := DecodeBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded stream failed: %v", err)
		}
		if len(locs2) != len(locs) || len(evs2) != len(evs) {
			t.Fatalf("round trip changed shape: %d/%d locs, %d/%d events",
				len(locs2), len(locs), len(evs2), len(evs))
		}
		// Compare marshaled bytes: Val can be NaN (any bit pattern decodes),
		// so struct equality would false-positive on NaN != NaN.
		var a, b [1 + eventRecSize]byte
		for i := range evs2 {
			marshalEvent(a[:], &evs[i])
			marshalEvent(b[:], &evs2[i])
			if a != b {
				t.Fatalf("round trip changed event %d: %+v vs %+v", i, evs[i], evs2[i])
			}
		}
	})
}
