package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"tahoedyn/internal/packet"
)

// jsonlVersion is the schema version stamped on the JSONL header line.
// Bump it when the line format changes incompatibly.
const jsonlVersion = 1

// Sink receives a tracer's event stream. The tracer drives the
// lifecycle: Begin once before the first batch, Events zero or more
// times, Close once at the end of the run.
//
// Sinks must be safe for concurrent use when shared across runs (the
// runner fans runs over a worker pool); the shipped sinks lock around
// each batch. Each Events call receives the emitting run's full
// location table so batches from different runs stay self-describing —
// a Loc index is only meaningful against the table it arrived with.
type Sink interface {
	Begin() error
	Events(locs []string, events []Event) error
	Close() error
}

// JSONLSink writes one JSON object per line: a header line
// {"v":1} on Begin, then one self-contained object per event with the
// location spelled as a name. The encoding is canonical — fixed key
// order, strconv-formatted numbers — so DecodeJSONL∘EncodeJSONL is a
// fixed point and golden tests can pin the schema byte-for-byte.
//
// A JSONLSink may be shared by concurrent runs; lines from different
// runs interleave but each line stays intact and self-contained.
// Close flushes buffered lines but does not close the underlying
// writer, so several runs can take turns on one file.
type JSONLSink struct {
	mu sync.Mutex
	w  *bufio.Writer
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Begin writes the version header line. When the sink is shared, only
// the first run's Begin writes it.
func (s *JSONLSink) Begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return fmt.Errorf("obs: JSONLSink used before NewJSONLSink")
	}
	_, err := fmt.Fprintf(s.w, "{\"v\":%d}\n", jsonlVersion)
	return err
}

// Events writes one line per event and flushes, so a follower reading
// the stream sees each batch as soon as the ring drains.
func (s *JSONLSink) Events(locs []string, events []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf []byte
	for i := range events {
		buf = appendEventJSON(buf[:0], locs, &events[i])
		if _, err := s.w.Write(buf); err != nil {
			return err
		}
	}
	return s.w.Flush()
}

// Close flushes. The caller owns the underlying writer.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// appendEventJSON appends the canonical JSONL encoding of ev, newline
// included. Packet events carry identity fields; value events stop at
// "val". Location names pass through strconv.Quote, everything else is
// formatted directly, so the output is valid JSON for any loc name.
func appendEventJSON(b []byte, locs []string, ev *Event) []byte {
	b = append(b, `{"t_ns":`...)
	b = strconv.AppendInt(b, int64(ev.T), 10)
	b = append(b, `,"type":"`...)
	b = append(b, ev.Type.String()...)
	b = append(b, `","loc":`...)
	b = strconv.AppendQuote(b, locName(locs, ev.Loc))
	b = append(b, `,"conn":`...)
	b = strconv.AppendInt(b, int64(ev.Conn), 10)
	b = append(b, `,"val":`...)
	b = strconv.AppendFloat(b, ev.Val, 'g', -1, 64)
	if ev.Type.PacketEvent() {
		b = append(b, `,"kind":"`...)
		b = append(b, ev.Kind.String()...)
		b = append(b, `","seq":`...)
		b = strconv.AppendInt(b, int64(ev.Seq), 10)
		b = append(b, `,"size":`...)
		b = strconv.AppendInt(b, int64(ev.Size), 10)
		b = append(b, `,"id":`...)
		b = strconv.AppendUint(b, ev.ID, 10)
	}
	b = append(b, '}', '\n')
	return b
}

func locName(locs []string, l Loc) string {
	if int(l) < len(locs) {
		return locs[int(l)]
	}
	return "?"
}

// EncodeJSONL writes the stream (header plus events) produced by a
// single run. It is the pure-function twin of JSONLSink, used by the
// golden fixed-point tests.
func EncodeJSONL(w io.Writer, locs []string, events []Event) error {
	s := NewJSONLSink(w)
	if err := s.Begin(); err != nil {
		return err
	}
	if err := s.Events(locs, events); err != nil {
		return err
	}
	return s.Close()
}

// DecodeJSONL parses a JSONL stream back into a location table and
// events. It rejects streams whose header declares a version newer
// than this build understands.
func DecodeJSONL(r io.Reader) (locs []string, events []Event, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("obs: empty JSONL stream (missing header)")
	}
	var hdr struct {
		V int `json:"v"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.V == 0 {
		return nil, nil, fmt.Errorf("obs: bad JSONL header %q", sc.Text())
	}
	if hdr.V > jsonlVersion {
		return nil, nil, fmt.Errorf("obs: JSONL stream version %d is newer than supported version %d", hdr.V, jsonlVersion)
	}
	index := map[string]Loc{}
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec jsonlEvent
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, nil, fmt.Errorf("obs: bad JSONL event %q: %w", sc.Text(), err)
		}
		ev, locName, err := rec.event()
		if err != nil {
			return nil, nil, fmt.Errorf("obs: bad JSONL event %q: %w", sc.Text(), err)
		}
		loc, ok := index[locName]
		if !ok {
			loc = Loc(len(locs))
			index[locName] = loc
			locs = append(locs, locName)
		}
		ev.Loc = loc
		events = append(events, ev)
	}
	return locs, events, sc.Err()
}

// jsonlEvent mirrors one event line for decoding.
type jsonlEvent struct {
	T    int64   `json:"t_ns"`
	Type string  `json:"type"`
	Loc  string  `json:"loc"`
	Conn int32   `json:"conn"`
	Val  float64 `json:"val"`
	Kind string  `json:"kind"`
	Seq  int32   `json:"seq"`
	Size int32   `json:"size"`
	ID   uint64  `json:"id"`
}

func (r *jsonlEvent) event() (Event, string, error) {
	typ, err := ParseType(r.Type)
	if err != nil {
		return Event{}, "", err
	}
	ev := Event{
		T: time.Duration(r.T), Val: r.Val,
		Conn: r.Conn, Type: typ,
	}
	if typ.PacketEvent() {
		ev.Seq, ev.Size, ev.ID = r.Seq, r.Size, r.ID
		switch r.Kind {
		case "DATA":
			ev.Kind = packet.Data
		case "ACK":
			ev.Kind = packet.Ack
		default:
			return Event{}, "", fmt.Errorf("unknown packet kind %q", r.Kind)
		}
	}
	return ev, r.Loc, nil
}

// MemorySink accumulates events in memory for tests. It interns
// location names itself, so it can absorb batches from several runs
// and keep every event resolvable through its own table.
type MemorySink struct {
	mu     sync.Mutex
	locs   []string
	index  map[string]Loc
	events []Event
	begun  int
	closed int
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink {
	return &MemorySink{index: map[string]Loc{}}
}

// Begin counts lifecycle calls so tests can assert the contract.
func (s *MemorySink) Begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.begun++
	return nil
}

// Events re-interns each batch against the sink's own location table.
func (s *MemorySink) Events(locs []string, events []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ev := range events {
		name := locName(locs, ev.Loc)
		loc, ok := s.index[name]
		if !ok {
			loc = Loc(len(s.locs))
			s.index[name] = loc
			s.locs = append(s.locs, name)
		}
		ev.Loc = loc
		s.events = append(s.events, ev)
	}
	return nil
}

// Close counts lifecycle calls.
func (s *MemorySink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed++
	return nil
}

// Snapshot returns copies of the accumulated location table and events.
func (s *MemorySink) Snapshot() (locs []string, events []Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.locs...), append([]Event(nil), s.events...)
}

// Len returns the number of events absorbed so far.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Lifecycle returns how many times Begin and Close have been called.
func (s *MemorySink) Lifecycle() (begun, closed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.begun, s.closed
}
