package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"tahoedyn/internal/packet"
)

// fixtureEvents is a small mixed stream: packet events on two locations
// and value events on a third, covering both JSONL line shapes.
func fixtureEvents() ([]string, []Event) {
	locs := []string{"sw0->sw1", "sw1->sw0", "conn2"}
	events := []Event{
		{T: 1500 * time.Millisecond, Val: 3, ID: 42, Conn: 1, Seq: 7, Size: 500, Loc: 0, Type: Enqueue, Kind: packet.Data},
		{T: 1580 * time.Millisecond, Val: 2, ID: 42, Conn: 1, Seq: 7, Size: 500, Loc: 0, Type: Transmit, Kind: packet.Data},
		{T: 1600 * time.Millisecond, Val: 4, ID: 43, Conn: 2, Seq: 9, Size: 50, Loc: 1, Type: Drop, Kind: packet.Ack},
		{T: 2 * time.Second, Val: 5.5, Conn: 2, Loc: 2, Type: CwndChange},
		{T: 2500 * time.Millisecond, Val: 1, Conn: 2, Loc: 2, Type: Timeout},
	}
	return locs, events
}

func TestTypeNamesRoundTrip(t *testing.T) {
	for typ := Type(0); typ < numTypes; typ++ {
		got, err := ParseType(typ.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", typ.String(), err)
		}
		if got != typ {
			t.Fatalf("ParseType(%q) = %v, want %v", typ.String(), got, typ)
		}
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Fatal("ParseType accepted an unknown name")
	}
	if !Drop.PacketEvent() || !Deliver.PacketEvent() {
		t.Fatal("Drop/Deliver should be packet events")
	}
	if Timeout.PacketEvent() || CwndChange.PacketEvent() {
		t.Fatal("Timeout/CwndChange should be value events")
	}
}

func TestParseFilter(t *testing.T) {
	f, err := ParseFilter("conn=2,type=drop|timeout")
	if err != nil {
		t.Fatal(err)
	}
	if f.Conn != 2 || f.Types != 1<<Drop|1<<Timeout {
		t.Fatalf("filter = %+v", f)
	}
	if !f.Match(Drop, 2) || f.Match(Drop, 1) || f.Match(Enqueue, 2) {
		t.Fatal("Match disagrees with the parsed filter")
	}
	if zero, err := ParseFilter(""); err != nil || zero != (Filter{}) {
		t.Fatalf("empty filter = %+v, %v", zero, err)
	}
	if !(Filter{}).Match(Enqueue, 7) {
		t.Fatal("zero filter must match everything")
	}
	for _, bad := range []string{"conn=0", "conn=x", "type=bogus", "weird=1", "justakey"} {
		if _, err := ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%q) did not error", bad)
		}
	}
}

// TestTracerRingAndLifecycle pins the ring semantics: batches reach the
// sink only when the ring fills or on Flush/Close, Begin happens once
// lazily, and the location table arrives with every batch.
func TestTracerRingAndLifecycle(t *testing.T) {
	sink := NewMemorySink()
	tr := NewTracer(TraceOptions{Sink: sink, RingSize: 4})
	loc := tr.Loc("portA")
	if again := tr.Loc("portA"); again != loc {
		t.Fatalf("re-interning the same name gave %d, then %d", loc, again)
	}
	p := &packet.Packet{ID: 1, Conn: 1, Seq: 1, Size: 500, Kind: packet.Data}
	for i := 0; i < 3; i++ {
		tr.Packet(Enqueue, time.Duration(i)*time.Second, loc, p, float64(i))
	}
	if begun, _ := sink.Lifecycle(); begun != 0 || sink.Len() != 0 {
		t.Fatalf("sink touched before the ring filled: begun=%d len=%d", begun, sink.Len())
	}
	tr.Value(CwndChange, 3*time.Second, tr.Loc("conn1"), 1, 2) // fills the ring
	if begun, _ := sink.Lifecycle(); begun != 1 || sink.Len() != 4 {
		t.Fatalf("after ring fill: begun=%d len=%d, want 1, 4", begun, sink.Len())
	}
	tr.Packet(Deliver, 4*time.Second, loc, p, 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	begun, closed := sink.Lifecycle()
	if begun != 1 || closed != 1 || sink.Len() != 5 {
		t.Fatalf("after Close: begun=%d closed=%d len=%d", begun, closed, sink.Len())
	}
	locs, events := sink.Snapshot()
	if len(locs) != 2 || locs[0] != "portA" || locs[1] != "conn1" {
		t.Fatalf("locs = %v", locs)
	}
	if events[3].Type != CwndChange || events[3].Loc != 1 {
		t.Fatalf("event 3 = %+v", events[3])
	}
}

func TestTracerFilterDropsEvents(t *testing.T) {
	sink := NewMemorySink()
	tr := NewTracer(TraceOptions{Sink: sink, Filter: Filter{Conn: 2}, RingSize: 2})
	loc := tr.Loc("port")
	p1 := &packet.Packet{ID: 1, Conn: 1, Kind: packet.Data}
	p2 := &packet.Packet{ID: 2, Conn: 2, Kind: packet.Data}
	tr.Packet(Enqueue, time.Second, loc, p1, 0)
	tr.Packet(Enqueue, time.Second, loc, p2, 0)
	tr.Value(CwndChange, time.Second, loc, 1, 3)
	tr.Value(CwndChange, time.Second, loc, 2, 3)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	_, events := sink.Snapshot()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for _, ev := range events {
		if ev.Conn != 2 {
			t.Fatalf("filtered stream leaked conn %d", ev.Conn)
		}
	}
}

// TestNilInstrumentsNoOp pins the disabled path: every method on every
// nil instrument is a safe no-op.
func TestNilInstrumentsNoOp(t *testing.T) {
	var tr *Tracer
	p := &packet.Packet{Conn: 1}
	tr.Packet(Enqueue, 0, tr.Loc("x"), p, 0)
	tr.Value(CwndChange, 0, 0, 1, 0)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	var m *Metrics
	c := m.NewCounter("c")
	g := m.NewGauge("g")
	h := m.NewHistogram("h", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned live instruments")
	}
	c.Inc()
	c.Add(2)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.N() != 0 || h.Mean() != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	if b, n := h.Buckets(); b != nil || n != nil {
		t.Fatal("nil histogram returned buckets")
	}
	if err := m.WriteText(new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "{}\n" {
		t.Fatalf("nil registry JSON = %q", buf.String())
	}
}

// TestJSONLGolden pins the JSONL schema byte-for-byte: the header line
// and one line of each shape (packet event, value event).
func TestJSONLGolden(t *testing.T) {
	locs, events := fixtureEvents()
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, locs, events); err != nil {
		t.Fatal(err)
	}
	want := `{"v":1}
{"t_ns":1500000000,"type":"enqueue","loc":"sw0->sw1","conn":1,"val":3,"kind":"DATA","seq":7,"size":500,"id":42}
{"t_ns":1580000000,"type":"transmit","loc":"sw0->sw1","conn":1,"val":2,"kind":"DATA","seq":7,"size":500,"id":42}
{"t_ns":1600000000,"type":"drop","loc":"sw1->sw0","conn":2,"val":4,"kind":"ACK","seq":9,"size":50,"id":43}
{"t_ns":2000000000,"type":"cwnd","loc":"conn2","conn":2,"val":5.5}
{"t_ns":2500000000,"type":"timeout","loc":"conn2","conn":2,"val":1}
`
	if got := buf.String(); got != want {
		t.Fatalf("JSONL stream changed:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestJSONLFixedPoint pins Decode∘Encode as a fixed point: decoding the
// canonical stream and re-encoding it reproduces the bytes exactly.
func TestJSONLFixedPoint(t *testing.T) {
	locs, events := fixtureEvents()
	var first bytes.Buffer
	if err := EncodeJSONL(&first, locs, events); err != nil {
		t.Fatal(err)
	}
	gotLocs, gotEvents, err := DecodeJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotLocs, locs) {
		t.Fatalf("decoded locs = %v, want %v", gotLocs, locs)
	}
	if !reflect.DeepEqual(gotEvents, events) {
		t.Fatalf("decoded events differ:\ngot  %+v\nwant %+v", gotEvents, events)
	}
	var second bytes.Buffer
	if err := EncodeJSONL(&second, gotLocs, gotEvents); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("decode∘encode is not a fixed point")
	}
}

func TestJSONLRejectsBadStreams(t *testing.T) {
	cases := map[string]string{
		"future version": "{\"v\":2}\n",
		"missing header": "",
		"bad header":     "not json\n",
		"bad event":      "{\"v\":1}\n{\"t_ns\":1,\"type\":\"bogus\",\"loc\":\"x\",\"conn\":1,\"val\":0}\n",
		"bad kind":       "{\"v\":1}\n{\"t_ns\":1,\"type\":\"drop\",\"loc\":\"x\",\"conn\":1,\"val\":0,\"kind\":\"NOPE\",\"seq\":1,\"size\":1,\"id\":1}\n",
	}
	for name, in := range cases {
		if _, _, err := DecodeJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode did not error", name)
		}
	}
}

// TestBinaryFixedPoint pins the binary format: encode → decode →
// encode reproduces the bytes, and the decoded stream equals the input.
func TestBinaryFixedPoint(t *testing.T) {
	locs, events := fixtureEvents()
	var first bytes.Buffer
	if err := EncodeBinary(&first, locs, events); err != nil {
		t.Fatal(err)
	}
	gotLocs, gotEvents, err := DecodeBinary(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotLocs, locs) || !reflect.DeepEqual(gotEvents, events) {
		t.Fatal("binary round trip lost data")
	}
	var second bytes.Buffer
	if err := EncodeBinary(&second, gotLocs, gotEvents); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("binary decode∘encode is not a fixed point")
	}
}

// TestBinaryHeaderGolden pins the on-disk header so the format cannot
// drift silently: magic "TOBS", version 1 little-endian.
func TestBinaryHeaderGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	want := []byte{'T', 'O', 'B', 'S', 1, 0}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("empty binary stream = %v, want %v", buf.Bytes(), want)
	}
}

func TestBinaryRejectsBadStreams(t *testing.T) {
	locs, events := fixtureEvents()
	var good bytes.Buffer
	if err := EncodeBinary(&good, locs, events); err != nil {
		t.Fatal(err)
	}
	futureVersion := append([]byte("TOBS"), 2, 0)
	badMagic := append([]byte("XOBS"), 1, 0)
	truncated := good.Bytes()[:good.Len()-5]
	badTag := append(append([]byte{}, good.Bytes()...), 99)
	cases := map[string][]byte{
		"future version": futureVersion,
		"bad magic":      badMagic,
		"short header":   []byte("TOB"),
		"truncated":      truncated,
		"unknown tag":    badTag,
	}
	for name, in := range cases {
		if _, _, err := DecodeBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: decode did not error", name)
		}
	}
}

// TestMetricsRenderGolden pins both renderers byte-for-byte in
// registration order.
func TestMetricsRenderGolden(t *testing.T) {
	m := NewMetrics()
	c := m.NewCounter("events")
	c.Add(41)
	c.Inc()
	g := m.NewGauge("util/fwd")
	g.Set(0.5)
	h := m.NewHistogram("queue", []float64{1, 2, 5})
	for _, v := range []float64{0, 1, 3, 10} {
		h.Observe(v)
	}
	if h.N() != 4 || h.Sum() != 14 || h.Mean() != 3.5 || h.Min() != 0 || h.Max() != 10 {
		t.Fatalf("histogram stats: n=%d sum=%v mean=%v min=%v max=%v",
			h.N(), h.Sum(), h.Mean(), h.Min(), h.Max())
	}
	bounds, counts := h.Buckets()
	if !reflect.DeepEqual(bounds, []float64{1, 2, 5}) || !reflect.DeepEqual(counts, []uint64{2, 0, 1, 1}) {
		t.Fatalf("buckets: bounds=%v counts=%v", bounds, counts)
	}

	var text bytes.Buffer
	if err := m.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	wantText := "counter events                           42\n" +
		"gauge   util/fwd                         0.5\n" +
		"hist    queue                            n=4 mean=3.5 min=0 max=10\n" +
		"          le 1            2\n" +
		"          le 5            1\n" +
		"          le +inf        1\n"
	if text.String() != wantText {
		t.Fatalf("text render changed:\ngot:\n%q\nwant:\n%q", text.String(), wantText)
	}

	var js bytes.Buffer
	if err := m.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{"counters":[{"name":"events","value":42}],` +
		`"gauges":[{"name":"util/fwd","value":0.5}],` +
		`"histograms":[{"name":"queue","n":4,"sum":14,"min":0,"max":10,` +
		`"bounds":[1,2,5],"buckets":[2,0,1,1]}]}` + "\n"
	if js.String() != wantJSON {
		t.Fatalf("JSON render changed:\ngot:\n%s\nwant:\n%s", js.String(), wantJSON)
	}
}

func TestProgressFrac(t *testing.T) {
	cases := []struct {
		s    Snapshot
		want float64
	}{
		{Snapshot{Now: 5 * time.Second, End: 10 * time.Second}, 0.5},
		{Snapshot{Now: 0, End: 10 * time.Second}, 0},
		{Snapshot{Now: 15 * time.Second, End: 10 * time.Second}, 1},
		{Snapshot{Now: 5 * time.Second, End: 0}, 0},
		{Snapshot{Now: -time.Second, End: 10 * time.Second}, 0},
	}
	for _, tc := range cases {
		if got := tc.s.Frac(); got != tc.want {
			t.Errorf("Frac(%+v) = %v, want %v", tc.s, got, tc.want)
		}
	}
}
