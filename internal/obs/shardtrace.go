package obs

// Sharded-run trace support: each region's Tracer writes into a private
// in-memory buffer, and at every synchronization barrier the merger
// k-way-merges the buffered events by timestamp into the user's single
// Sink. Within one timestamp, lower region indices emit first; within
// one region, the tracer's order (the region's event order) is
// preserved. The merged stream is deterministic for a given shard
// count, but it is NOT the serial tracer's exact interleaving —
// same-instant events from different regions may order differently
// than a serial run's single event queue would have emitted them.
//
// Batches stay valid under the Sink contract because every Events call
// the merger makes passes the owning region's own location table —
// batches are self-describing, so no location remapping is needed.

// shardBuffer is the Sink one region's Tracer flushes into. It is
// confined to the coordinator: tracers only flush between rounds (the
// trace ring fills during a round, but flushBatch runs on the
// coordinator at barriers and at Finish).
type shardBuffer struct {
	m    *TraceMerger
	locs []string
	evs  []Event
}

func (b *shardBuffer) Begin() error { return nil }

func (b *shardBuffer) Events(locs []string, events []Event) error {
	// After a sink failure the merger's error is sticky; reporting it
	// here makes the region tracers quiesce exactly like a serial tracer
	// whose sink failed.
	if b.m.err != nil {
		return b.m.err
	}
	b.locs = locs
	b.evs = append(b.evs, events...)
	return nil
}

func (b *shardBuffer) Close() error { return b.m.err }

// TraceMerger owns the user sink on behalf of K region tracers. Core
// drives it: Merge at every barrier (after flushing the tracers), Close
// at Finish.
type TraceMerger struct {
	sink  Sink
	bufs  []*shardBuffer
	began bool
	err   error
}

// NewTraceMerger wraps sink for k regions.
func NewTraceMerger(sink Sink, k int) *TraceMerger {
	m := &TraceMerger{sink: sink, bufs: make([]*shardBuffer, k)}
	for i := range m.bufs {
		m.bufs[i] = &shardBuffer{m: m}
	}
	return m
}

// Buffer returns region r's Sink; wire it as that region tracer's
// TraceOptions.Sink.
func (m *TraceMerger) Buffer(r int) Sink { return m.bufs[r] }

// Err returns the first error the user sink reported.
func (m *TraceMerger) Err() error { return m.err }

// Merge drains every region buffer into the user sink in merged
// (timestamp, region) order, emitting maximal single-region runs so
// each Events batch carries a consistent location table. The caller has
// flushed every region tracer first, so the buffers hold each region's
// complete stream up to the barrier.
func (m *TraceMerger) Merge() error {
	n := 0
	for _, b := range m.bufs {
		n += len(b.evs)
	}
	if n == 0 {
		return m.err
	}
	if m.err != nil {
		// Sink already failed: drop the buffered events (a serial
		// tracer's flush does the same once its sink errors).
		m.clear()
		return m.err
	}
	if !m.began {
		m.began = true
		if err := m.sink.Begin(); err != nil {
			m.err = err
			m.clear()
			return err
		}
	}
	idx := make([]int, len(m.bufs))
	for {
		// Pick the region whose head event has the smallest timestamp,
		// lowest region index first among ties.
		r := -1
		for i, b := range m.bufs {
			if idx[i] >= len(b.evs) {
				continue
			}
			if r < 0 || b.evs[idx[i]].T < m.bufs[r].evs[idx[r]].T {
				r = i
			}
		}
		if r < 0 {
			break
		}
		// Extend the run while region r's next event still precedes (or,
		// for lower-indexed r, ties) every other region's head.
		b := m.bufs[r]
		j := idx[r]
	extend:
		for j < len(b.evs) {
			t := b.evs[j].T
			for i, ob := range m.bufs {
				if i == r || idx[i] >= len(ob.evs) {
					continue
				}
				ht := ob.evs[idx[i]].T
				if ht < t || (ht == t && i < r) {
					break extend
				}
			}
			j++
		}
		if err := m.sink.Events(b.locs, b.evs[idx[r]:j]); err != nil {
			m.err = err
			m.clear()
			return err
		}
		idx[r] = j
	}
	m.clear()
	return nil
}

// clear empties every buffer, keeping capacity.
func (m *TraceMerger) clear() {
	for _, b := range m.bufs {
		for i := range b.evs {
			b.evs[i] = Event{}
		}
		b.evs = b.evs[:0]
	}
}

// Close begins the sink if nothing was ever emitted (matching the
// serial tracer, whose Close always begins its sink) and closes it,
// returning the first error the sink reported at any point.
func (m *TraceMerger) Close() error {
	if !m.began {
		m.began = true
		if err := m.sink.Begin(); err != nil && m.err == nil {
			m.err = err
		}
	}
	if err := m.sink.Close(); err != nil && m.err == nil {
		m.err = err
	}
	return m.err
}
