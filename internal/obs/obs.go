// Package obs is the simulator's observability layer: structured packet
// tracing, per-run metrics, and progress sampling. It exists so the
// packet-level dynamics the paper was discovered from — ACK trains
// compressing, queues locking in and out of phase — can be watched while
// a run executes instead of reconstructed from post-hoc aggregates.
//
// The layer is strictly passive and strictly pay-for-what-you-use:
//
//   - A nil *Tracer, nil *Histogram, or nil *Progress is a valid,
//     disabled instrument; every emit method no-ops on a nil receiver.
//     With observability disabled the hot path pays one nil check per
//     site and allocates nothing (TestSteadyStateAllocs pins this).
//   - Observation never perturbs the physics. Tracing and metrics hang
//     off hooks that already fire; progress sampling batches the engine
//     loop without scheduling events. A run with observability on is
//     byte-identical to the same run with it off (the identity tests in
//     core pin this).
//
// Event streams leave the process through pluggable Sinks: JSONL for
// humans and jq, a compact versioned binary format for volume, and an
// in-memory sink for tests. See DESIGN.md §10 for the event taxonomy
// and the sink contract.
package obs

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"tahoedyn/internal/packet"
)

// Type classifies one packet-lifecycle event.
type Type uint8

// The event taxonomy. Enqueue through Deliver are packet events and
// carry the packet's identity; Timeout and CwndChange are value events
// keyed by connection only.
const (
	// Enqueue: a port accepted an arriving packet into its buffer.
	// Val is the queue length after the arrival.
	Enqueue Type = iota
	// Dequeue: a packet reached the head of a port's queue and began
	// serializing onto the line. Val is the queue length at that moment.
	Dequeue
	// Transmit: a packet's last bit left a port (propagation begins).
	// Val is the queue length after the departure.
	Transmit
	// Drop: a port discarded a packet (drop-tail, Random Drop eviction,
	// or fair-queueing longest-flow drop). Val is the queue length.
	Drop
	// Deliver: a packet arrived at its terminal host.
	Deliver
	// Timeout: a sender's retransmission timer fired with data
	// outstanding. Val is the cumulative timeout count.
	Timeout
	// CwndChange: a sender's congestion window changed. Val is the new
	// window in packets.
	CwndChange

	numTypes
)

// NumTypes is the number of event types — the exclusive upper bound of
// the Type space, exported for format validators (a decoded type byte
// must be < NumTypes).
const NumTypes = int(numTypes)

// typeNames are the wire spellings of the event taxonomy, in Type order.
var typeNames = [numTypes]string{
	"enqueue", "dequeue", "transmit", "drop", "deliver", "timeout", "cwnd",
}

// String returns the wire spelling ("enqueue", "drop", "cwnd", ...).
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType resolves a wire spelling back to a Type.
func ParseType(s string) (Type, error) {
	for i, n := range typeNames {
		if n == s {
			return Type(i), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event type %q", s)
}

// PacketEvent reports whether events of this type carry packet identity
// (kind, seq, size, id) rather than just a connection and a value.
func (t Type) PacketEvent() bool { return t <= Deliver }

// Loc identifies a network location (a port, a host, a connection
// endpoint) in the trace. Locations are interned per run by Tracer.Loc;
// sinks resolve them back to names.
type Loc uint16

// Event is one structured trace record. The layout is fixed-size and
// pointer-free so a run's ring buffer is a single allocation.
type Event struct {
	// T is the simulated time of the event.
	T time.Duration
	// Val is the type-dependent measurement: queue length for port
	// events, the new window for CwndChange, the cumulative timeout
	// count for Timeout, 0 for Deliver.
	Val float64
	// ID is the packet's unique identifier; 0 for value events.
	ID uint64
	// Conn is the 1-based connection the event belongs to.
	Conn int32
	// Seq and Size are the packet's sequence number and byte size;
	// 0 for value events.
	Seq, Size int32
	// Loc is the interned location the event happened at.
	Loc Loc
	// Type classifies the event.
	Type Type
	// Kind is the packet kind (data or ACK); meaningful only when
	// Type.PacketEvent() is true.
	Kind packet.Kind
}

// Filter selects the subset of events a tracer records. The zero Filter
// matches everything.
type Filter struct {
	// Conn, when nonzero, matches only that 1-based connection.
	Conn int
	// Types, when nonzero, is a bitmask of 1<<Type to match.
	Types uint32
}

// Match reports whether an event of the given type and connection
// passes the filter.
func (f Filter) Match(typ Type, conn int) bool {
	return (f.Types == 0 || f.Types&(1<<typ) != 0) &&
		(f.Conn == 0 || conn == f.Conn)
}

// ParseFilter parses the CLI filter syntax: comma-separated key=value
// pairs, where key is "conn" (a 1-based connection number) or "type"
// (one or more event-type names joined with "|"). Repeated keys union
// for type and overwrite for conn. Example: "conn=2,type=drop|timeout".
func ParseFilter(s string) (Filter, error) {
	var f Filter
	if s == "" {
		return f, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return f, fmt.Errorf("obs: bad filter term %q (want key=value)", part)
		}
		switch key {
		case "conn":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return f, fmt.Errorf("obs: bad filter conn %q (want a positive integer)", val)
			}
			f.Conn = n
		case "type":
			for _, name := range strings.Split(val, "|") {
				t, err := ParseType(strings.TrimSpace(name))
				if err != nil {
					return f, err
				}
				f.Types |= 1 << t
			}
		default:
			return f, fmt.Errorf("obs: unknown filter key %q (want conn or type)", key)
		}
	}
	return f, nil
}

// TraceOptions configures one run's event tracer.
type TraceOptions struct {
	// Sink receives the event batches. Required.
	Sink Sink
	// Filter restricts which events are recorded; the zero value keeps
	// everything.
	Filter Filter
	// RingSize is the number of events buffered before a flush to the
	// sink; 0 means 4096. Smaller rings flush more often, which is what
	// `tahoe-trace -follow` uses to stream a run live.
	RingSize int
}

// Options enables observability for one run. A nil *Options (the
// default everywhere) disables the whole layer.
type Options struct {
	// Trace, when non-nil, records packet-lifecycle events to its sink.
	Trace *TraceOptions
	// Metrics, when true, registers per-run counters, gauges, and
	// histograms and exports them on Result.Metrics.
	Metrics bool
	// Progress, when non-nil, samples the run as it executes.
	Progress *Progress
}

// Tracer records structured events into a preallocated ring buffer and
// flushes them to its sink in batches. A nil *Tracer is disabled: every
// emit no-ops. Tracers are single-run, single-goroutine objects, like
// the engine they observe; only the Sink may be shared across runs.
type Tracer struct {
	filter Filter
	buf    []Event
	n      int
	sink   Sink
	locs   []string
	began  bool
	err    error
}

// NewTracer returns a tracer writing to the options' sink.
func NewTracer(o TraceOptions) *Tracer {
	return NewTracerReusing(o, nil)
}

// NewTracerReusing is NewTracer with a caller-supplied ring buffer: when
// cap(ring) covers the requested RingSize the buffer is adopted instead
// of allocated. It is the arena-reuse hook (core.Arena) — the caller
// must own the buffer exclusively, which in practice means it came from
// Ring() of a tracer whose run has finished.
func NewTracerReusing(o TraceOptions, ring []Event) *Tracer {
	if o.Sink == nil {
		panic("obs: TraceOptions.Sink is required")
	}
	n := o.RingSize
	if n <= 0 {
		n = 4096
	}
	if cap(ring) >= n {
		ring = ring[:n]
	} else {
		ring = make([]Event, n)
	}
	return &Tracer{filter: o.Filter, buf: ring, sink: o.Sink}
}

// Ring returns the tracer's backing ring buffer so an arena can hand it
// to the next run's tracer. Call it only after the run has finished and
// the tracer will see no further events.
func (t *Tracer) Ring() []Event {
	if t == nil {
		return nil
	}
	return t.buf
}

// Loc interns a location name, returning its stable id. Interning
// happens at build time (ports, hosts, and connections are created
// before the first event), so the emit path never touches strings.
func (t *Tracer) Loc(name string) Loc {
	if t == nil {
		return 0
	}
	for i, n := range t.locs {
		if n == name {
			return Loc(i)
		}
	}
	t.locs = append(t.locs, name)
	return Loc(len(t.locs) - 1)
}

// Packet records a packet-lifecycle event. Nil-receiver safe; callers
// on the hot path should still branch on the tracer pointer so argument
// evaluation is skipped when tracing is off.
func (t *Tracer) Packet(typ Type, now time.Duration, loc Loc, p *packet.Packet, val float64) {
	if t == nil || !t.filter.Match(typ, p.Conn) {
		return
	}
	t.push(Event{
		T: now, Val: val, ID: p.ID, Conn: int32(p.Conn),
		Seq: int32(p.Seq), Size: int32(p.Size),
		Loc: loc, Type: typ, Kind: p.Kind,
	})
}

// Value records a value event (Timeout, CwndChange) for a connection.
func (t *Tracer) Value(typ Type, now time.Duration, loc Loc, conn int, val float64) {
	if t == nil || !t.filter.Match(typ, conn) {
		return
	}
	t.push(Event{T: now, Val: val, Conn: int32(conn), Loc: loc, Type: typ})
}

// push appends to the ring, flushing when it fills. After a sink error
// the tracer goes quiet rather than failing the run; Err surfaces the
// first error.
func (t *Tracer) push(ev Event) {
	if t.err != nil {
		return
	}
	t.buf[t.n] = ev
	t.n++
	if t.n == len(t.buf) {
		t.flushBatch()
	}
}

func (t *Tracer) flushBatch() {
	if !t.began {
		t.began = true
		if err := t.sink.Begin(); err != nil {
			t.err = err
			t.n = 0
			return
		}
	}
	if t.n > 0 {
		if err := t.sink.Events(t.locs, t.buf[:t.n]); err != nil {
			t.err = err
		}
		t.n = 0
	}
}

// Flush drains the ring to the sink and returns the first error the
// sink ever reported.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	if t.err == nil {
		t.flushBatch()
	}
	return t.err
}

// Close flushes and closes the sink. The run owns the sink lifecycle:
// Begin, zero or more Events batches, Close.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	err := t.Flush()
	if cerr := t.sink.Close(); err == nil {
		err = cerr
	}
	if t.err == nil {
		t.err = err
	}
	return err
}

// Err returns the first sink error, if any. The tracer stops recording
// after an error; the simulation itself is never interrupted.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}
