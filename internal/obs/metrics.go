package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Metrics is a per-run registry of counters, gauges, and fixed-bucket
// histograms. A nil *Metrics is a valid disabled registry: NewCounter,
// NewGauge, and NewHistogram all return nil on it, and the returned nil
// instruments absorb every observation for free. Instruments render in
// registration order, which the build makes deterministic, so the text
// and JSON outputs are stable run to run.
//
// Metrics are single-run, single-goroutine objects like the engine;
// aggregate across runs by reading the finished registries.
type Metrics struct {
	counters   []*Counter
	gauges     []*Gauge
	histograms []*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Counter is a monotonically increasing count.
type Counter struct {
	name string
	n    float64
}

// NewCounter registers a counter; nil registry returns a nil (disabled)
// counter.
func (m *Metrics) NewCounter(name string) *Counter {
	if m == nil {
		return nil
	}
	c := &Counter{name: name}
	m.counters = append(m.counters, c)
	return c
}

// Add increments the counter. Nil-safe.
func (c *Counter) Add(delta float64) {
	if c != nil {
		c.n += delta
	}
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge is a point-in-time value; Set overwrites.
type Gauge struct {
	name string
	v    float64
	set  bool
}

// NewGauge registers a gauge; nil registry returns a nil (disabled)
// gauge.
func (m *Metrics) NewGauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	g := &Gauge{name: name}
	m.gauges = append(m.gauges, g)
	return g
}

// Set overwrites the gauge's value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v, g.set = v, true
	}
}

// Value returns the last value set (0 for nil or never-set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed upper-bound buckets plus an
// overflow bucket, and tracks count, sum, min, and max exactly.
type Histogram struct {
	name    string
	bounds  []float64 // ascending upper bounds
	buckets []uint64  // len(bounds)+1; last is overflow
	n       uint64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram registers a histogram with the given ascending bucket
// upper bounds (an observation v lands in the first bucket with
// v <= bound, or in the overflow bucket). Nil registry returns a nil
// (disabled) histogram.
func (m *Metrics) NewHistogram(name string, bounds []float64) *Histogram {
	if m == nil {
		return nil
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
	}
	h := &Histogram{
		name:    name,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]uint64, len(bounds)+1),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
	m.histograms = append(m.histograms, h)
	return h
}

// Observe records one value. Nil-safe and allocation-free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// N returns the observation count.
func (h *Histogram) N() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min and Max return the extreme observations (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.max
}

// Buckets returns copies of the bounds and counts (the last count is
// the overflow bucket).
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	return append([]float64(nil), h.bounds...), append([]uint64(nil), h.buckets...)
}

// fnum formats a metric value the way both renderers share: integers
// without a decimal point, everything else in shortest form.
func fnum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry in a human-readable layout, in
// registration order.
func (m *Metrics) WriteText(w io.Writer) error {
	if m == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, c := range m.counters {
		fmt.Fprintf(bw, "counter %-32s %s\n", c.name, fnum(c.n))
	}
	for _, g := range m.gauges {
		fmt.Fprintf(bw, "gauge   %-32s %s\n", g.name, fnum(g.v))
	}
	for _, h := range m.histograms {
		fmt.Fprintf(bw, "hist    %-32s n=%d mean=%s min=%s max=%s\n",
			h.name, h.n, fnum(h.Mean()), fnum(h.Min()), fnum(h.Max()))
		for i, b := range h.buckets {
			if b == 0 {
				continue
			}
			if i < len(h.bounds) {
				fmt.Fprintf(bw, "          le %-12s %d\n", fnum(h.bounds[i]), b)
			} else {
				fmt.Fprintf(bw, "          le +inf        %d\n", b)
			}
		}
	}
	return bw.Flush()
}

// WriteJSON renders the registry as one JSON object with "counters",
// "gauges", and "histograms" arrays in registration order. Arrays, not
// maps, so the output is deterministic without a sort pass.
func (m *Metrics) WriteJSON(w io.Writer) error {
	if m == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	var b []byte
	b = append(b, `{"counters":[`...)
	for i, c := range m.counters {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, c.name)
		b = append(b, `,"value":`...)
		b = append(b, fnum(c.n)...)
		b = append(b, '}')
	}
	b = append(b, `],"gauges":[`...)
	for i, g := range m.gauges {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, g.name)
		b = append(b, `,"value":`...)
		b = append(b, fnum(g.v)...)
		b = append(b, '}')
	}
	b = append(b, `],"histograms":[`...)
	for i, h := range m.histograms {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, h.name)
		b = append(b, `,"n":`...)
		b = strconv.AppendUint(b, h.n, 10)
		b = append(b, `,"sum":`...)
		b = append(b, fnum(h.sum)...)
		b = append(b, `,"min":`...)
		b = append(b, fnum(h.Min())...)
		b = append(b, `,"max":`...)
		b = append(b, fnum(h.Max())...)
		b = append(b, `,"bounds":[`...)
		for j, bound := range h.bounds {
			if j > 0 {
				b = append(b, ',')
			}
			b = append(b, fnum(bound)...)
		}
		b = append(b, `],"buckets":[`...)
		for j, n := range h.buckets {
			if j > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendUint(b, n, 10)
		}
		b = append(b, `]}`...)
	}
	b = append(b, `]}`...)
	b = append(b, '\n')
	_, err := w.Write(b)
	return err
}
