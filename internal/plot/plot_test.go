package plot

import (
	"strings"
	"testing"
	"time"

	"tahoedyn/internal/trace"
)

func sampleSeries(name string) *trace.Series {
	s := trace.NewSeries(name)
	for i := 0; i <= 100; i++ {
		v := float64(i % 20)
		s.Append(time.Duration(i)*time.Second, v)
	}
	return s
}

func TestASCIIBasicShape(t *testing.T) {
	var sb strings.Builder
	s := sampleSeries("queue")
	err := ASCII(&sb, Options{Width: 50, Height: 10, From: 0, To: 100 * time.Second}, s)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// legend + height rows + time axis
	if len(lines) != 12 {
		t.Fatalf("got %d lines, want 12:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "*=queue") {
		t.Fatalf("legend missing: %q", lines[0])
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no data glyphs rendered")
	}
	if !strings.Contains(lines[1], "19.0") {
		t.Fatalf("ymax label missing: %q", lines[1])
	}
}

func TestASCIIMultiSeriesGlyphs(t *testing.T) {
	var sb strings.Builder
	a, b := sampleSeries("a"), sampleSeries("b")
	if err := ASCII(&sb, Options{From: 0, To: 100 * time.Second}, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "+=b") {
		t.Fatalf("legend glyphs wrong:\n%s", out)
	}
}

func TestASCIIEmptyWindowErrors(t *testing.T) {
	var sb strings.Builder
	if err := ASCII(&sb, Options{From: time.Second, To: time.Second}, sampleSeries("x")); err == nil {
		t.Fatal("no error for empty window")
	}
	if err := ASCII(&sb, Options{From: 0, To: time.Second}); err == nil {
		t.Fatal("no error for zero series")
	}
}

func TestASCIIFlatZeroSeries(t *testing.T) {
	var sb strings.Builder
	s := trace.NewSeries("flat")
	s.Append(0, 0)
	if err := ASCII(&sb, Options{From: 0, To: 10 * time.Second}, s); err != nil {
		t.Fatal(err)
	}
}

func TestTSV(t *testing.T) {
	var sb strings.Builder
	s := trace.NewSeries("q")
	s.Append(0, 1)
	s.Append(2*time.Second, 3)
	if err := TSV(&sb, 0, 4*time.Second, time.Second, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	want := []string{
		"t_seconds\tq",
		"0.000000\t1",
		"1.000000\t1",
		"2.000000\t3",
		"3.000000\t3",
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestASCIIFixedYMax(t *testing.T) {
	var sb strings.Builder
	s := trace.NewSeries("q")
	s.Append(0, 5)
	err := ASCII(&sb, Options{Width: 20, Height: 5, From: 0, To: 10 * time.Second, YMax: 50}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "50.0") {
		t.Fatalf("fixed YMax label missing:\n%s", sb.String())
	}
}

func TestASCIITinyWidthAxis(t *testing.T) {
	// Width smaller than the axis labels still renders without panics.
	var sb strings.Builder
	if err := ASCII(&sb, Options{Width: 8, Height: 3, From: 0, To: time.Second}, sampleSeries("x")); err != nil {
		t.Fatal(err)
	}
}

func TestTSVErrors(t *testing.T) {
	var sb strings.Builder
	if err := TSV(&sb, 0, time.Second, 0, sampleSeries("x")); err == nil {
		t.Fatal("no error for zero step")
	}
	if err := TSV(&sb, 0, time.Second, time.Second); err == nil {
		t.Fatal("no error for no series")
	}
}
