// Package plot renders simulation traces as ASCII time-series plots and
// TSV tables, the terminal equivalents of the paper's figures.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"tahoedyn/internal/trace"
)

// Options controls ASCII rendering. The zero value is NOT usable on
// its own: From/To must describe a non-empty window (To > From), which
// ASCII reports as an error rather than guessing. Every other field
// has a documented zero-value default, so callers normally set just
// the window:
//
//	plot.ASCII(w, series, plot.Options{To: cfg.Duration})
type Options struct {
	// Width and Height are the plot area size in characters. Zero means
	// the defaults (100x20).
	Width, Height int
	// From and To bound the plotted time window. From's zero value
	// starts at the beginning of the run; To has no default — a window
	// with To <= From is rejected.
	From, To time.Duration
	// YMax fixes the top of the y axis; zero means autoscale to the
	// window's maximum across all series.
	YMax float64
}

func (o *Options) defaults() {
	if o.Width <= 0 {
		o.Width = 100
	}
	if o.Height <= 0 {
		o.Height = 20
	}
}

// seriesGlyphs marks successive series in a multi-series plot.
var seriesGlyphs = []byte{'*', '+', 'o', 'x', '#', '@'}

// ASCII renders one or more step-function series into w. Within each
// horizontal character cell the vertical extent of the series (min..max
// over the cell's time slice) is filled, so high-frequency oscillations
// show up as solid bars exactly as in the paper's darkened regions.
func ASCII(w io.Writer, opts Options, series ...*trace.Series) error {
	opts.defaults()
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	if opts.To <= opts.From {
		return fmt.Errorf("plot: empty time window [%v, %v]", opts.From, opts.To)
	}
	ymax := opts.YMax
	if ymax == 0 {
		for _, s := range series {
			if m := s.Max(opts.From, opts.To); m > ymax {
				ymax = m
			}
		}
	}
	if ymax == 0 {
		ymax = 1
	}

	grid := make([][]byte, opts.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opts.Width))
	}
	cell := (opts.To - opts.From) / time.Duration(opts.Width)
	if cell <= 0 {
		cell = 1
	}
	for si, s := range series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for x := 0; x < opts.Width; x++ {
			t0 := opts.From + time.Duration(x)*cell
			t1 := t0 + cell
			lo, hi := s.Min(t0, t1), s.Max(t0, t1)
			rowOf := func(v float64) int {
				r := int(math.Round(v / ymax * float64(opts.Height-1)))
				if r < 0 {
					r = 0
				}
				if r >= opts.Height {
					r = opts.Height - 1
				}
				return opts.Height - 1 - r // row 0 is the top
			}
			top, bot := rowOf(hi), rowOf(lo)
			for y := top; y <= bot; y++ {
				grid[y][x] = glyph
			}
		}
	}

	// Legend.
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", seriesGlyphs[si%len(seriesGlyphs)], s.Name))
	}
	if _, err := fmt.Fprintf(w, "  %s\n", strings.Join(legend, "  ")); err != nil {
		return err
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.1f ", ymax)
		case opts.Height - 1:
			label = fmt.Sprintf("%7.1f ", 0.0)
		}
		if _, err := fmt.Fprintf(w, "%s|%s|\n", label, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "        %8v%s%v\n", opts.From.Round(time.Second),
		strings.Repeat(" ", maxInt(1, opts.Width-14)), opts.To.Round(time.Second))
	return err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TSV writes the series resampled on a shared grid as tab-separated
// values with a header row, suitable for gnuplot or a spreadsheet.
func TSV(w io.Writer, from, to, step time.Duration, series ...*trace.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	if step <= 0 {
		return fmt.Errorf("plot: non-positive step")
	}
	cols := []string{"t_seconds"}
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, "\t")); err != nil {
		return err
	}
	// The grid is time-ordered, so walk each series with a cursor
	// instead of a binary search per cell.
	cursors := make([]trace.Cursor, len(series))
	for i, s := range series {
		cursors[i] = s.Cursor()
	}
	row := make([]string, 0, len(series)+1)
	for t := from; t < to; t += step {
		row = append(row[:0], fmt.Sprintf("%.6f", t.Seconds()))
		for i := range cursors {
			row = append(row, fmt.Sprintf("%g", cursors[i].At(t)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}
