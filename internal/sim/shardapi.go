package sim

// Shard-support API: the hooks internal/shard uses to run one engine per
// topology region and splice cross-region packets back into each
// region's event order so that a sharded run fires exactly the event
// sequence the serial engine would (see DESIGN.md §12).
//
// The scheme rests on three pieces:
//
//   - A seq *stride* (SetSeqStride): region engines hand out sequence
//     numbers raw*K + (K-1) for a stride K, leaving K-1 unused seqs
//     below every locally scheduled event. Serial engines keep stride 1
//     and are bit-identical to the historical counter.
//   - A *clock log* (RunUntilLoggedN): per synchronization round, the
//     raw counter value at the first executed event of each distinct
//     timestamp. The log lets the coordinator reconstruct where in the
//     receiver's seq order a cross-region packet would have been
//     scheduled: after everything executed at or before its send time,
//     before everything scheduled later.
//   - *Injection* (InjectPacketAt): scheduling with an explicit
//     interpolated seq c*K + m (m < K-1) that slots the arrival into
//     the gap, plus explicit schedAt/schedAt2 lineage copied from the
//     sending region so merged logs keep a scheduler-independent order.

import (
	"fmt"
	"sort"

	"tahoedyn/internal/packet"
)

// SetSeqStride makes the engine hand out sequence numbers
// raw*stride + (stride-1), stepping the raw counter by one per schedule.
// Stride 1 restores the exact serial numbering. It must only be called
// on an idle engine (freshly built or Reset): changing the stride with
// events queued would reorder them.
func (e *Engine) SetSeqStride(stride uint64) {
	if stride == 0 {
		panic("sim: zero seq stride")
	}
	if e.pending != 0 {
		panic("sim: SetSeqStride on an engine with pending events")
	}
	e.seqOff = stride - 1
	e.seqInc = stride
}

// SeqCounter returns the engine's schedule counter: it starts at 0 and
// advances by the stride per locally scheduled event, so at any point
// every already-scheduled event has seq < counter and every future
// local event has seq >= counter + stride - 1. The shard layer
// interpolates cross-region arrivals into the half-open gap
// [counter, counter+stride-1).
func (e *Engine) SeqCounter() uint64 { return e.seq }

// ExecLineage returns the scheduling lineage of the event currently (or
// most recently) executing: the clock when it was scheduled and the
// clock when its scheduling parent was scheduled. The shard layer
// captures it when a packet crosses a region boundary, so the merged
// drop/trace order can break exec-time ties the same way regardless of
// partitioning.
func (e *Engine) ExecLineage() (schedAt, schedAt2 Time) {
	return e.curSchedAt, e.curSchedAt2
}

// ClockLog records, for one synchronization round, the seq counter
// at the first executed event of each distinct timestamp — i.e. the
// counter *before* any event at that time scheduled children. Times
// are strictly increasing.
type ClockLog struct {
	Times []Time
	Seqs  []uint64
}

// Reset empties the log, keeping capacity.
func (l *ClockLog) Reset() {
	l.Times = l.Times[:0]
	l.Seqs = l.Seqs[:0]
}

// note appends (at, seq) when at opens a new timestamp.
func (l *ClockLog) note(at Time, seq uint64) {
	if n := len(l.Times); n == 0 || l.Times[n-1] != at {
		l.Times = append(l.Times, at)
		l.Seqs = append(l.Seqs, seq)
	}
}

// SeqAfter returns the counter value after every event executed at
// a time <= t this round: the logged counter of the first timestamp
// strictly greater than t, or end (the counter at the end of the round)
// when no later timestamp was executed.
func (l *ClockLog) SeqAfter(t Time, end uint64) uint64 {
	i := sort.Search(len(l.Times), func(i int) bool { return l.Times[i] > t })
	if i == len(l.Times) {
		return end
	}
	return l.Seqs[i]
}

// RunUntilLoggedN is RunUntilN with clock logging: before each executed
// event whose timestamp differs from the previous one, it appends
// (timestamp, counter) to log. The event sequence is identical to
// RunUntil(t); the budget and return value behave exactly like
// RunUntilN. A resumed round passes the same log to keep appending.
func (e *Engine) RunUntilLoggedN(t Time, max int, log *ClockLog) bool {
	if e.w != nil {
		for {
			ev := e.wheelNext()
			if ev == nil || ev.at > t {
				if t > e.now {
					e.now = t
				}
				return true
			}
			if max <= 0 {
				return false
			}
			log.note(ev.at, e.seq)
			e.wheelPop()
			e.exec(ev)
			max--
		}
	}
	for {
		if len(e.heap) == 0 || e.heap[0].at > t {
			if t > e.now {
				e.now = t
			}
			return true
		}
		if max <= 0 {
			return false
		}
		ev := e.heap[0]
		log.note(ev.at, e.seq)
		e.removeAt(0)
		e.exec(ev)
		max--
	}
}

// InjectPacketAt schedules sink.Deliver(p) at absolute time at with an
// explicit, caller-interpolated seq and explicit scheduling lineage,
// without touching the engine's own counter. The shard coordinator uses
// it between rounds to splice cross-region arrivals into the receiving
// region's event order; at must lie strictly in the engine's future
// (conservative lookahead guarantees this for every handed-off packet).
func (e *Engine) InjectPacketAt(at Time, seq uint64, schedAt, schedAt2 Time, sink PacketSink, p *packet.Packet) *Event {
	if at <= e.now {
		panic(fmt.Sprintf("sim: inject at %v not after now %v", at, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{eng: e}
	}
	ev.at = at
	ev.seq = seq
	ev.fn = nil
	ev.sink = sink
	ev.arg = p
	ev.canceled = false
	ev.schedAt = schedAt
	ev.schedAt2 = schedAt2
	e.pending++
	if e.w != nil {
		e.w.push(ev)
		return ev
	}
	ev.where = whereHeap
	i := len(e.heap)
	e.heap = append(e.heap, ev)
	ev.index = int32(i)
	e.siftUp(i)
	return ev
}
