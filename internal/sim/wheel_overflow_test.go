package sim

import (
	"testing"
	"time"
)

// horizonDur is the wheel horizon in simulated time: 2^32 ticks of
// 2^19 ns each, ~625 hours.
const horizonDur = time.Duration(horizon) << tickShift

// TestWheelOverflowRefile exercises the unsorted overflow list
// directly: events beyond the horizon are held unsorted, swap-removed
// on cancel, and re-filed into the wheels when their top-level rotation
// opens — and must still fire in exact (time, seq) order. The same
// program runs on a heap engine as the oracle.
func TestWheelOverflowRefile(t *testing.T) {
	he := NewSched(SchedHeap)
	we := NewSched(SchedWheel)
	var hLog, wLog []int

	type ev struct {
		d  time.Duration
		id int
	}
	// Deliberately scheduled out of time order so the overflow list's
	// storage order disagrees with the firing order, with a same-instant
	// tie (ids 3 then 4 at the same deadline must fire in scheduling
	// order) and one near event that stays inside the wheels.
	prog := []ev{
		{horizonDur + 200*time.Hour, 0},
		{horizonDur + 50*time.Hour, 1},
		{20 * time.Millisecond, 2},
		{horizonDur + 100*time.Hour, 3},
		{horizonDur + 100*time.Hour, 4},
		{horizonDur + 150*time.Hour, 5}, // canceled below
		{horizonDur + 25*time.Hour, 6},
		// In-horizon sentinel: keeps the wheels non-empty so the mid-run
		// check below observes the overflow list at rest (an empty wheel
		// pulls overflow in eagerly to find its next event).
		{10 * time.Second, 7},
	}
	var hCancel, wCancel *Event
	for _, e := range prog {
		id := e.id
		hev := he.Schedule(e.d, func() { hLog = append(hLog, id) })
		wev := we.Schedule(e.d, func() { wLog = append(wLog, id) })
		if id == 5 {
			hCancel, wCancel = hev, wev
		}
	}
	if got := len(we.w.overflow); got != 6 {
		t.Fatalf("overflow holds %d events, want the 6 far ones", got)
	}

	// Cancel id 5: swap-removed from the middle of the overflow list.
	hCancel.Cancel()
	wCancel.Cancel()
	if got := len(we.w.overflow); got != 5 {
		t.Fatalf("overflow holds %d events after cancel, want 5", got)
	}
	if he.Pending() != we.Pending() {
		t.Fatalf("pending diverged: heap %d, wheel %d", he.Pending(), we.Pending())
	}

	// Run past the near event but stay inside the first rotation: the
	// overflow list must be untouched.
	he.RunUntil(time.Second)
	we.RunUntil(time.Second)
	if got := len(we.w.overflow); got != 5 {
		t.Fatalf("overflow drained early: %d events left", got)
	}

	// Drain everything. The wheel crosses a top-level rotation with only
	// overflow events left, pulls them back in, and re-files; the firing
	// order must match the heap's (time, seq) order exactly.
	he.Run()
	we.Run()
	want := []int{2, 7, 6, 1, 3, 4, 0}
	if len(wLog) != len(want) {
		t.Fatalf("wheel fired %d events, want %d", len(wLog), len(want))
	}
	for i := range want {
		if hLog[i] != want[i] || wLog[i] != want[i] {
			t.Fatalf("firing order at %d: heap %d, wheel %d, want %d", i, hLog[i], wLog[i], want[i])
		}
	}
	if len(we.w.overflow) != 0 || we.Pending() != 0 {
		t.Fatalf("overflow=%d pending=%d after drain", len(we.w.overflow), we.Pending())
	}
	if he.Now() != we.Now() {
		t.Fatalf("clocks diverged: heap %v, wheel %v", he.Now(), we.Now())
	}
}

// TestWheelOverflowSuccessiveWindows schedules overflow events several
// rotations apart: each top-level wrap re-opens a new overflow window
// and must pull in only the events that now fit the horizon.
func TestWheelOverflowSuccessiveWindows(t *testing.T) {
	we := NewSched(SchedWheel)
	var log []int
	for i, d := range []time.Duration{
		horizonDur + time.Hour,   // window 1
		3*horizonDur + time.Hour, // window 3
		2 * horizonDur,           // window 2 (exact rotation boundary)
		5 * horizonDur / 2,       // window 2
	} {
		id := i
		we.Schedule(d, func() { log = append(log, id) })
	}
	we.Run()
	want := []int{0, 2, 3, 1}
	if len(log) != len(want) {
		t.Fatalf("fired %d events, want %d", len(log), len(want))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("order at %d: got %d, want %d", i, log[i], want[i])
		}
	}
}
