package sim

import (
	"fmt"
	"time"
)

// Timer is a single-shot, rearm-able timer built on engine events. Unlike
// a raw Event it can be stopped and restarted any number of times, which
// matches how protocol retransmission timers are used.
//
// The zero value is not usable; create timers with NewTimer.
type Timer struct {
	eng *Engine
	fn  func()
	ev  *Event
	// expireFn is the t.expire method value, bound once at construction:
	// a method value allocates, and retransmission timers rearm on every
	// ACK, so Reset must not create one per call.
	expireFn func()
}

// NewTimer returns a stopped timer that runs fn when it expires.
func NewTimer(eng *Engine, fn func()) *Timer {
	t := &Timer{eng: eng, fn: fn}
	t.expireFn = t.expire
	return t
}

// Reset (re)arms the timer to fire after d, canceling any pending
// expiration. Rearming an armed timer goes through Engine.rearm, which
// updates the pending event in place when the new deadline maps to the
// same wheel bucket — the result is indistinguishable from cancel +
// schedule (a fresh sequence number is consumed either way).
func (t *Timer) Reset(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	t.ResetAt(t.eng.Now() + d)
}

// ResetAt (re)arms the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	if t.ev != nil {
		t.ev = t.eng.rearm(t.ev, at, t.expireFn)
		return
	}
	t.ev = t.eng.ScheduleAt(at, t.expireFn)
}

// Stop cancels a pending expiration, if any.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}

// Armed reports whether the timer has a pending expiration. The timer
// clears its event reference on both Stop and expiry, so a non-nil event
// is always pending — the reference is never left pointing at a recycled
// engine event.
func (t *Timer) Armed() bool { return t.ev != nil }

// Deadline returns the pending expiration time; valid only when Armed.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return 0
	}
	return t.ev.At()
}

func (t *Timer) expire() {
	t.ev = nil
	t.fn()
}
