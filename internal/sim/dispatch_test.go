package sim

import (
	"testing"
	"time"

	"tahoedyn/internal/packet"
)

// collectSink records delivered packets and the times they arrived.
type collectSink struct {
	pkts  []*packet.Packet
	times []Time
	eng   *Engine
}

func (s *collectSink) Deliver(p *packet.Packet) {
	s.pkts = append(s.pkts, p)
	s.times = append(s.times, s.eng.Now())
}

func TestSchedulePacketDelivers(t *testing.T) {
	eng := New()
	s := &collectSink{eng: eng}
	a := &packet.Packet{ID: 1}
	b := &packet.Packet{ID: 2}
	eng.SchedulePacket(2*time.Second, s, a)
	eng.SchedulePacket(1*time.Second, s, b)
	eng.Run()
	if len(s.pkts) != 2 || s.pkts[0] != b || s.pkts[1] != a {
		t.Fatalf("delivery order wrong: %v", s.pkts)
	}
	if s.times[0] != 1*time.Second || s.times[1] != 2*time.Second {
		t.Fatalf("delivery times = %v", s.times)
	}
}

// Typed and plain events share one sequence counter, so simultaneous
// events of either kind fire in scheduling order.
func TestSchedulePacketInterleavesWithScheduleInOrder(t *testing.T) {
	eng := New()
	var order []int
	eng.Schedule(time.Second, func() { order = append(order, 0) })
	eng.SchedulePacket(time.Second, sinkFunc(func(*packet.Packet) { order = append(order, 1) }), nil)
	eng.Schedule(time.Second, func() { order = append(order, 2) })
	eng.SchedulePacket(time.Second, sinkFunc(func(*packet.Packet) { order = append(order, 3) }), nil)
	eng.Run()
	if len(order) != 4 {
		t.Fatalf("fired %d events, want 4", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order = %v", order)
		}
	}
}

// sinkFunc adapts a func to PacketSink for tests. (Production code binds
// long-lived objects instead; a sinkFunc value allocates like a closure.)
type sinkFunc func(p *packet.Packet)

func (f sinkFunc) Deliver(p *packet.Packet) { f(p) }

func TestSchedulePacketCancelReturnsOwnership(t *testing.T) {
	eng := New()
	s := &collectSink{eng: eng}
	p := &packet.Packet{ID: 9}
	ev := eng.SchedulePacket(time.Second, s, p)
	ev.Cancel()
	eng.Run()
	if len(s.pkts) != 0 {
		t.Fatal("canceled packet event delivered")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false")
	}
	// The recycled event must not leak the sink or packet into a later
	// plain event.
	fired := false
	eng.Schedule(time.Second, func() { fired = true })
	eng.Run()
	if !fired || len(s.pkts) != 0 {
		t.Fatal("recycled event carried stale sink state")
	}
}

func TestSchedulePacketNegativeDelayPanics(t *testing.T) {
	eng := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	eng.SchedulePacket(-time.Nanosecond, &collectSink{eng: eng}, nil)
}

// A warmed engine schedules and fires typed events without allocating:
// the event comes from the free list and the sink is pre-bound.
func TestSchedulePacketDoesNotAllocate(t *testing.T) {
	eng := New()
	s := &collectSink{eng: eng}
	s.pkts = make([]*packet.Packet, 0, 1024)
	s.times = make([]Time, 0, 1024)
	p := &packet.Packet{ID: 1}
	// Warm the free list.
	eng.SchedulePacket(time.Second, s, p)
	eng.Run()
	allocs := testing.AllocsPerRun(100, func() {
		eng.SchedulePacket(time.Second, s, p)
		eng.Step()
	})
	if allocs > 0 {
		t.Fatalf("SchedulePacket+Step allocates %.1f/op, want 0", allocs)
	}
}
