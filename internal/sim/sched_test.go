package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestSchedulersFireIdentically is the scheduler-identity property test:
// random programs of schedule / same-instant ties / cancel / rearm /
// partial-run operations, interpreted in lockstep on a heap engine and a
// wheel engine, must fire exactly the same events in exactly the same
// order, with clocks and pending counts agreeing at every step. Delays
// are drawn to cover every wheel regime — sub-tick ties, all four
// levels, and beyond-horizon (~625h) overflow events.
func TestSchedulersFireIdentically(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		he := NewSched(SchedHeap)
		we := NewSched(SchedWheel)

		var hLog, wLog []int
		type handle struct {
			he, we   *Event
			hfn, wfn func()
			state    int // 0 pending, 1 fired, 2 canceled
		}
		var handles []*handle
		nextID := 0

		delay := func() time.Duration {
			switch rng.Intn(6) {
			case 0:
				return 0 // fires at the current instant
			case 1:
				// Sub-tick: collides within one wheel slot.
				return time.Duration(rng.Intn(60)) * time.Microsecond
			case 2:
				// Level 0/1 territory, the TCP-workload sweet spot.
				return time.Duration(rng.Intn(50)) * time.Millisecond
			case 3:
				return time.Duration(rng.Intn(300)) * time.Second // level 2
			case 4:
				return time.Duration(rng.Intn(20)) * time.Hour // level 3
			default:
				// Beyond the 2^32-tick (~625h) horizon: overflow list.
				return 700*time.Hour + time.Duration(rng.Intn(500))*time.Hour
			}
		}
		schedule := func(d time.Duration) {
			id := nextID
			nextID++
			hd := &handle{}
			hd.hfn = func() { hLog = append(hLog, id); hd.state = 1 }
			hd.wfn = func() { wLog = append(wLog, id); hd.state = 1 }
			hd.he = he.Schedule(d, hd.hfn)
			hd.we = we.Schedule(d, hd.wfn)
			handles = append(handles, hd)
		}
		// pick returns a random still-pending handle, or nil.
		pick := func() *handle {
			if len(handles) == 0 {
				return nil
			}
			start := rng.Intn(len(handles))
			for i := 0; i < len(handles); i++ {
				if hd := handles[(start+i)%len(handles)]; hd.state == 0 {
					return hd
				}
			}
			return nil
		}

		for op := 0; op < 400; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				schedule(delay())
			case 4:
				// Same-instant tie batch: must fire in scheduling order.
				d := delay()
				for k := 0; k < 3; k++ {
					schedule(d)
				}
			case 5:
				if hd := pick(); hd != nil {
					hd.he.Cancel()
					hd.we.Cancel()
					hd.state = 2
				}
			case 6:
				// Rearm: in-place when the wheel bucket is unchanged,
				// cancel+reschedule otherwise — identical either way.
				if hd := pick(); hd != nil {
					at := he.Now() + delay()
					hd.he = he.rearm(hd.he, at, hd.hfn)
					hd.we = we.rearm(hd.we, at, hd.wfn)
				}
			case 7, 8:
				n := rng.Intn(8) + 1
				for i := 0; i < n; i++ {
					if !he.Step() {
						break
					}
				}
				for i := 0; i < n; i++ {
					if !we.Step() {
						break
					}
				}
			case 9:
				until := he.Now() + delay()
				he.RunUntil(until)
				we.RunUntil(until)
			}
			if he.Now() != we.Now() {
				t.Fatalf("trial %d op %d: clocks diverged: heap %v, wheel %v", trial, op, he.Now(), we.Now())
			}
			if he.Pending() != we.Pending() {
				t.Fatalf("trial %d op %d: pending diverged: heap %d, wheel %d", trial, op, he.Pending(), we.Pending())
			}
		}
		he.Run()
		we.Run()

		if len(hLog) != len(wLog) {
			t.Fatalf("trial %d: heap fired %d events, wheel fired %d", trial, len(hLog), len(wLog))
		}
		for i := range hLog {
			if hLog[i] != wLog[i] {
				t.Fatalf("trial %d: firing order diverged at %d: heap %d, wheel %d", trial, i, hLog[i], wLog[i])
			}
		}
		if he.Pending() != 0 || we.Pending() != 0 {
			t.Fatalf("trial %d: events left after drain: heap %d, wheel %d", trial, he.Pending(), we.Pending())
		}
	}
}
