package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	eng := New()
	var got []int
	eng.Schedule(3*time.Second, func() { got = append(got, 3) })
	eng.Schedule(1*time.Second, func() { got = append(got, 1) })
	eng.Schedule(2*time.Second, func() { got = append(got, 2) })
	eng.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if eng.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", eng.Now())
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	eng := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(time.Second, func() { got = append(got, i) })
	}
	eng.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order = %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	eng := New()
	fired := false
	ev := eng.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	eng.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelIsIdempotentAndNilSafe(t *testing.T) {
	eng := New()
	ev := eng.Schedule(time.Second, func() {})
	ev.Cancel()
	ev.Cancel()
	var nilEv *Event
	nilEv.Cancel() // must not panic
	eng.Run()
}

func TestRunUntilAdvancesClockExactly(t *testing.T) {
	eng := New()
	count := 0
	eng.Schedule(1*time.Second, func() { count++ })
	eng.Schedule(5*time.Second, func() { count++ })
	eng.RunUntil(2 * time.Second)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if eng.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", eng.Now())
	}
	eng.RunUntil(10 * time.Second)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if eng.Now() != 10*time.Second {
		t.Fatalf("Now = %v, want 10s", eng.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	eng := New()
	fired := false
	eng.Schedule(2*time.Second, func() { fired = true })
	eng.RunUntil(2 * time.Second)
	if !fired {
		t.Fatal("event at the RunUntil boundary did not fire")
	}
}

func TestEventsScheduledDuringRunExecute(t *testing.T) {
	eng := New()
	var order []string
	eng.Schedule(time.Second, func() {
		order = append(order, "outer")
		eng.Schedule(time.Second, func() { order = append(order, "inner") })
	})
	eng.Run()
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
	if eng.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", eng.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delay")
		}
	}()
	New().Schedule(-time.Second, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	eng := New()
	eng.Schedule(2*time.Second, func() {})
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling in the past")
		}
	}()
	eng.ScheduleAt(time.Second, func() {})
}

// Property: for any random multiset of delays, events fire in nondecreasing
// time order and the processed count matches the number scheduled.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) > 500 {
			raw = raw[:500]
		}
		eng := New()
		var fired []time.Duration
		for _, r := range raw {
			d := time.Duration(r%1000) * time.Millisecond
			eng.Schedule(d, func() { fired = append(fired, eng.Now()) })
		}
		eng.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset of events fires exactly the
// complement.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := New()
		fired := make(map[int]bool)
		events := make([]*Event, n)
		for i := 0; i < int(n); i++ {
			i := i
			events[i] = eng.Schedule(time.Duration(rng.Intn(100))*time.Millisecond,
				func() { fired[i] = true })
		}
		canceled := make(map[int]bool)
		for i := range events {
			if rng.Intn(2) == 0 {
				events[i].Cancel()
				canceled[i] = true
			}
		}
		eng.Run()
		for i := 0; i < int(n); i++ {
			if fired[i] == canceled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Regression for the event-memory-growth bug: Cancel used to leave the
// event in the heap (and Pending() counted it) until it was popped, so a
// schedule/cancel loop — exactly the retransmit-timer-per-ACK pattern —
// grew the queue without bound. Cancel now removes immediately.
func TestPendingBoundedUnderScheduleCancelLoop(t *testing.T) {
	eng := New()
	for i := 0; i < 100000; i++ {
		ev := eng.Schedule(time.Hour, func() {})
		if got := eng.Pending(); got != 1 {
			t.Fatalf("Pending = %d after schedule %d, want 1", got, i)
		}
		ev.Cancel()
		if got := eng.Pending(); got != 0 {
			t.Fatalf("Pending = %d after cancel %d, want 0", got, i)
		}
	}
	eng.Run()
	if eng.Processed() != 0 {
		t.Fatalf("Processed = %d, want 0", eng.Processed())
	}
}

// Canceling from the middle of a populated heap must preserve the heap
// order of everything else.
func TestCancelMiddleOfHeapPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		eng := New()
		var fired []time.Duration
		events := make([]*Event, 200)
		for i := range events {
			d := time.Duration(rng.Intn(1000)) * time.Millisecond
			events[i] = eng.Schedule(d, func() { fired = append(fired, eng.Now()) })
		}
		// Cancel every third event, scattered through the heap.
		canceled := 0
		for i := 0; i < len(events); i += 3 {
			events[i].Cancel()
			canceled++
		}
		if got, want := eng.Pending(), len(events)-canceled; got != want {
			t.Fatalf("Pending = %d, want %d", got, want)
		}
		eng.Run()
		if len(fired) != len(events)-canceled {
			t.Fatalf("fired %d, want %d", len(fired), len(events)-canceled)
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			t.Fatalf("fired out of order: %v", fired)
		}
	}
}

// Pooled events must be reusable: ordering and tie-breaking stay correct
// across many schedule→fire→reschedule generations of the same storage.
func TestEventPoolReuseKeepsDeterminism(t *testing.T) {
	run := func() []int {
		eng := New()
		var got []int
		n := 0
		var tick func()
		tick = func() {
			got = append(got, n)
			n++
			if n < 1000 {
				// Two same-time events per tick: one canceled, one live —
				// churning the pool while ties are in the heap.
				dead := eng.Schedule(time.Millisecond, func() { t.Fatal("canceled event fired") })
				eng.Schedule(time.Millisecond, tick)
				dead.Cancel()
			}
		}
		eng.Schedule(time.Millisecond, tick)
		eng.Run()
		return got
	}
	a, b := run(), run()
	if len(a) != 1000 || len(b) != 1000 {
		t.Fatalf("runs fired %d and %d events, want 1000", len(a), len(b))
	}
	for i := range a {
		if a[i] != i || b[i] != i {
			t.Fatalf("nondeterministic order at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimerResetStopAndRearm(t *testing.T) {
	eng := New()
	count := 0
	tm := NewTimer(eng, func() { count++ })
	if tm.Armed() {
		t.Fatal("new timer armed")
	}
	tm.Reset(time.Second)
	if !tm.Armed() {
		t.Fatal("timer not armed after Reset")
	}
	if tm.Deadline() != time.Second {
		t.Fatalf("Deadline = %v, want 1s", tm.Deadline())
	}
	tm.Stop()
	eng.RunUntil(2 * time.Second)
	if count != 0 {
		t.Fatal("stopped timer fired")
	}
	tm.Reset(time.Second)
	tm.Reset(3 * time.Second) // re-arm supersedes
	eng.RunUntil(10 * time.Second)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if eng.Now() != 10*time.Second {
		t.Fatalf("Now = %v", eng.Now())
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestTimerResetAt(t *testing.T) {
	eng := New()
	var at Time
	tm := NewTimer(eng, func() { at = eng.Now() })
	tm.ResetAt(1500 * time.Millisecond)
	eng.Run()
	if at != 1500*time.Millisecond {
		t.Fatalf("fired at %v, want 1.5s", at)
	}
}
