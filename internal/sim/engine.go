// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in the order they were
// scheduled, which makes every run bit-reproducible: there is no
// wall-clock time and no goroutine scheduling anywhere in the simulator.
//
// The event queue is an inlined 4-ary min-heap of *Event ordered by
// (time, sequence). A 4-ary layout halves the tree depth of a binary
// heap, trading a few extra comparisons per level for far fewer cache
// misses on the sift paths — the engine hot loop is pop/push dominated.
// Events are recycled through a per-engine free list, so steady-state
// scheduling does not allocate, and Cancel removes the event from the
// heap immediately by index: canceled retransmission timers (one per
// ACK in TCP workloads) never linger in the queue.
package sim

import (
	"fmt"
	"time"

	"tahoedyn/internal/packet"
)

// Time is a point in simulated time, measured as an offset from the start
// of the simulation. The zero value is the simulation epoch.
type Time = time.Duration

// Event is a scheduled callback. It is returned by the scheduling methods
// so the caller can cancel it before it fires.
//
// An Event handle is single-shot: once the callback has run or Cancel has
// returned, the engine recycles the Event for a later Schedule call, and
// the old handle must not be used again. (Calling Cancel twice in a row,
// or after the callback fired, is safe as long as no new event was
// scheduled in between; long-lived holders should clear their reference
// when the callback runs, as sim.Timer does.)
type Event struct {
	at  Time
	seq uint64
	fn  func()
	// sink/arg are the typed-dispatch alternative to fn: when sink is
	// non-nil the event fires as sink.Deliver(arg) instead of fn(). The
	// sink is a long-lived object bound once at wiring time, so the
	// per-packet hot path schedules without allocating a closure.
	sink     PacketSink
	arg      *packet.Packet
	eng      *Engine
	index    int32 // position in the heap; -1 once fired or canceled
	canceled bool
}

// PacketSink consumes a packet carried by a typed event. Network
// elements (ports' destinations, hosts, delay elements) implement it;
// binding the sink once at construction is what makes SchedulePacket
// allocation-free, where an equivalent closure would allocate per call.
type PacketSink interface {
	Deliver(p *packet.Packet)
}

// At reports the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing and removes it from the event
// queue immediately. Canceling an event that already fired or was already
// canceled is a no-op; a nil receiver is also a no-op.
func (e *Event) Cancel() {
	if e == nil || e.index < 0 {
		return
	}
	eng := e.eng
	eng.removeAt(int(e.index))
	e.canceled = true
	e.fn = nil
	e.sink = nil
	e.arg = nil
	eng.free = append(eng.free, e)
}

// Canceled reports whether Cancel has been called on the event (and the
// event has not been recycled since).
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a discrete-event scheduler. The zero value is not usable; use
// New.
type Engine struct {
	now       Time
	seq       uint64
	heap      []*Event
	free      []*Event
	processed uint64
}

// New returns an engine with an empty event queue and the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far. It is intended
// for benchmarks and engine diagnostics.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently queued. Canceled events
// are removed immediately, so they are never counted.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule queues fn to run after delay d. A negative delay panics: the
// simulated world cannot schedule work in its own past.
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.at(e.now+d, fn)
}

// ScheduleAt queues fn to run at absolute time t, which must not precede
// the current time.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	return e.at(t, fn)
}

// SchedulePacket queues sink.Deliver(p) to run after delay d. It is the
// typed, closure-free twin of Schedule for the per-packet hot path: the
// sink is pre-bound by the caller, so nothing is allocated per call.
// Ordering is identical to Schedule — typed and plain events share one
// clock and one sequence counter.
//
// The scheduled event owns p until it fires; a caller that Cancels a
// packet event takes ownership back (and is responsible for releasing
// the packet if it is pooled).
func (e *Engine) SchedulePacket(d time.Duration, sink PacketSink, p *packet.Packet) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	ev := e.at(e.now+d, nil)
	ev.sink = sink
	ev.arg = p
	return ev
}

func (e *Engine) at(t Time, fn func()) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{eng: e}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.canceled = false
	e.seq++
	i := len(e.heap)
	e.heap = append(e.heap, ev)
	ev.index = int32(i)
	e.siftUp(i)
	return ev
}

// Step executes the next event, if any, advancing the clock to its
// timestamp. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.heap[0]
	e.removeAt(0)
	e.now = ev.at
	e.processed++
	fn, sink, arg := ev.fn, ev.sink, ev.arg
	ev.fn = nil
	ev.sink = nil
	ev.arg = nil
	e.free = append(e.free, ev)
	if sink != nil {
		sink.Deliver(arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then advances the
// clock to exactly t. Events scheduled for later remain queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunUntilN is RunUntil with a step budget: it executes at most max
// events with timestamps <= t. It returns true when the horizon was
// reached (no events <= t remain; the clock then sits at exactly t) and
// false when the budget ran out first (the clock sits at the last
// executed event). Callers use it to regain control between batches —
// for progress sampling or cancellation checks — without scheduling
// any events of their own, so the event sequence is identical to one
// uninterrupted RunUntil(t).
func (e *Engine) RunUntilN(t Time, max int) bool {
	for max > 0 && len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
		max--
	}
	if len(e.heap) == 0 || e.heap[0].at > t {
		if t > e.now {
			e.now = t
		}
		return true
	}
	return false
}

// less orders events by (time, sequence) so simultaneous events fire in
// scheduling order.
func less(a, b *Event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// removeAt detaches the event at heap position i, restoring the heap
// property. The detached event's index is set to -1.
func (e *Engine) removeAt(i int) {
	h := e.heap
	n := len(h) - 1
	ev := h[i]
	if i != n {
		moved := h[n]
		h[i] = moved
		moved.index = int32(i)
		h[n] = nil
		e.heap = h[:n]
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	} else {
		h[n] = nil
		e.heap = h[:n]
	}
	ev.index = -1
}

// siftUp moves the event at position i toward the root until its parent
// is no larger. The moving event is held in a register and written once.
func (e *Engine) siftUp(i int) {
	h := e.heap
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = int32(i)
		i = p
	}
	h[i] = ev
	ev.index = int32(i)
}

// siftDown moves the event at position i toward the leaves until no child
// is smaller. It reports whether the event moved.
func (e *Engine) siftDown(i int) bool {
	h := e.heap
	n := len(h)
	if i >= n {
		return false
	}
	ev := h[i]
	start := i
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(h[j], h[best]) {
				best = j
			}
		}
		if !less(h[best], ev) {
			break
		}
		h[i] = h[best]
		h[i].index = int32(i)
		i = best
	}
	h[i] = ev
	ev.index = int32(i)
	return i != start
}
