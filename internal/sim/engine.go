// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in the order they were
// scheduled, which makes every run bit-reproducible: there is no
// wall-clock time and no goroutine scheduling anywhere in the simulator.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in simulated time, measured as an offset from the start
// of the simulation. The zero value is the simulation epoch.
type Time = time.Duration

// Event is a scheduled callback. It is returned by the scheduling methods
// so the caller can cancel it before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index; -1 once removed
	canceled bool
}

// At reports the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Canceling an event that already
// fired or was already canceled is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a discrete-event scheduler. The zero value is not usable; use
// New.
type Engine struct {
	now       Time
	seq       uint64
	events    eventHeap
	processed uint64
}

// New returns an engine with an empty event queue and the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far. It is intended
// for benchmarks and engine diagnostics.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently queued (including
// canceled events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.events) }

// Schedule queues fn to run after delay d. A negative delay panics: the
// simulated world cannot schedule work in its own past.
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.at(e.now+d, fn)
}

// ScheduleAt queues fn to run at absolute time t, which must not precede
// the current time.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	return e.at(t, fn)
}

func (e *Engine) at(t Time, fn func()) *Event {
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Step executes the next event, if any, advancing the clock to its
// timestamp. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then advances the
// clock to exactly t. Events scheduled for later remain queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// eventHeap orders events by (time, sequence) so simultaneous events fire
// in scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
