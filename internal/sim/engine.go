// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a queue of events. Events
// scheduled for the same instant fire in the order they were scheduled,
// which makes every run bit-reproducible: there is no wall-clock time and
// no goroutine scheduling anywhere in the simulator.
//
// Two interchangeable schedulers order the queue by (time, sequence):
//
//   - SchedWheel (the default): a hierarchical timing wheel (wheel.go)
//     with O(1) amortized schedule/cancel/pop for the bounded-horizon
//     events that dominate TCP workloads, plus an overflow list for
//     far-future events.
//   - SchedHeap: an inlined 4-ary min-heap with O(log n) sift on every
//     schedule/pop and O(log n) cancel-by-index. Kept as the A/B
//     reference; `-sched=heap` on the CLIs selects it.
//
// Both schedulers fire events in exactly the same order — the identity
// is enforced by property tests (sched_test.go) and by byte-identity
// tests over every shipped scenario. Events are recycled through a
// per-engine free list, so steady-state scheduling does not allocate
// under either scheduler, and canceled events never linger: the heap
// removes by index, the wheel swap-removes from its unsorted buckets
// (events already extracted into the sorted active run are cancel-marked
// and recycled at the drain).
package sim

import (
	"fmt"
	"os"
	"strings"
	"time"

	"tahoedyn/internal/packet"
)

// Time is a point in simulated time, measured as an offset from the start
// of the simulation. The zero value is the simulation epoch.
type Time = time.Duration

// SchedKind selects the event-queue implementation backing an Engine.
type SchedKind uint8

const (
	// SchedDefault resolves to the TAHOEDYN_SCHED environment variable
	// when it names a scheduler, and to SchedWheel otherwise.
	SchedDefault SchedKind = iota
	// SchedWheel is the hierarchical timing wheel (O(1) amortized).
	SchedWheel
	// SchedHeap is the 4-ary min-heap (O(log n)), kept for A/B runs.
	SchedHeap
)

// ParseSched maps a CLI/user string to a SchedKind. The empty string and
// "default" mean SchedDefault.
func ParseSched(s string) (SchedKind, error) {
	switch strings.ToLower(s) {
	case "", "default":
		return SchedDefault, nil
	case "wheel":
		return SchedWheel, nil
	case "heap":
		return SchedHeap, nil
	}
	return SchedDefault, fmt.Errorf("sim: unknown scheduler %q (want heap, wheel, or default)", s)
}

func (k SchedKind) String() string {
	switch k {
	case SchedWheel:
		return "wheel"
	case SchedHeap:
		return "heap"
	}
	return "default"
}

// defaultSched is resolved once at startup so every Engine in a process
// agrees on what SchedDefault means; TAHOEDYN_SCHED=heap|wheel overrides
// without touching call sites (used by the CI A/B legs).
var defaultSched = func() SchedKind {
	if k, err := ParseSched(os.Getenv("TAHOEDYN_SCHED")); err == nil && k != SchedDefault {
		return k
	}
	return SchedWheel
}()

// SetDefaultSched overrides what SchedDefault resolves to for engines
// created after the call, taking precedence over TAHOEDYN_SCHED.
// Passing SchedDefault is a no-op. It exists for the CLI -sched flags,
// which run before any engine is built; calling it concurrently with
// engine construction is a race — set it once, up front.
func SetDefaultSched(k SchedKind) {
	if k != SchedDefault {
		defaultSched = k
	}
}

// ResolveSched maps SchedDefault to the scheduler New would actually
// use (honoring TAHOEDYN_SCHED); concrete kinds pass through. Arena
// reuse calls it to decide whether a kept engine matches a config.
func ResolveSched(k SchedKind) SchedKind {
	if k == SchedDefault {
		return defaultSched
	}
	return k
}

// Event location states. An event is always in exactly one place: the
// heap, a wheel bucket (level encoded relative to whereLevel0), the
// wheel's sorted active run, the wheel's overflow list, or detached
// (fired, canceled, never scheduled, or sitting on the free list).
const (
	whereDetached int8 = iota // zero value: Cancel on a zero Event no-ops
	whereHeap
	whereRun
	whereOverflow
	whereLevel0 // wheel level l is whereLevel0 + l
)

// Event is a scheduled callback. It is returned by the scheduling methods
// so the caller can cancel it before it fires.
//
// An Event handle is single-shot: once the callback has run or Cancel has
// returned, the engine recycles the Event for a later Schedule call, and
// the old handle must not be used again. (Calling Cancel twice in a row,
// or after the callback fired, is safe as long as no new event was
// scheduled in between; long-lived holders should clear their reference
// when the callback runs, as sim.Timer does.)
type Event struct {
	at  Time
	seq uint64
	// schedAt/schedAt2 are the event's scheduling lineage: the clock when
	// it was scheduled, and the clock when its scheduling parent was
	// scheduled. They never influence firing order; sharded runs use them
	// as a scheduler-independent tiebreak when merging per-region logs
	// (see internal/shard and ExecLineage).
	schedAt  Time
	schedAt2 Time
	fn       func()
	// sink/arg are the typed-dispatch alternative to fn: when sink is
	// non-nil the event fires as sink.Deliver(arg) instead of fn(). The
	// sink is a long-lived object bound once at wiring time, so the
	// per-packet hot path schedules without allocating a closure.
	sink     PacketSink
	arg      *packet.Packet
	eng      *Engine
	index    int32 // position within the heap, a wheel bucket, or overflow
	where    int8
	slot     uint8 // wheel slot within the level named by where
	canceled bool
}

// PacketSink consumes a packet carried by a typed event. Network
// elements (ports' destinations, hosts, delay elements) implement it;
// binding the sink once at construction is what makes SchedulePacket
// allocation-free, where an equivalent closure would allocate per call.
type PacketSink interface {
	Deliver(p *packet.Packet)
}

// At reports the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing and detaches it from the event
// queue. Canceling an event that already fired or was already canceled is
// a no-op; a nil receiver is also a no-op.
//
// Heap events and wheel events still in an unsorted bucket or the
// overflow list are removed and recycled immediately; a wheel event that
// was already extracted into the sorted active run is cancel-marked and
// recycled when the drain reaches it — either way it will not fire and
// Pending drops right away.
func (e *Event) Cancel() {
	if e == nil || e.where == whereDetached {
		return
	}
	eng := e.eng
	eng.pending--
	where := e.where
	e.canceled = true
	e.fn = nil
	e.sink = nil
	e.arg = nil
	e.where = whereDetached
	switch {
	case where == whereRun:
		// Lazy cancel: the event keeps its place in the sorted run (its
		// timestamp stays valid for the neighbors' binary searches) and
		// joins the free list when the drain skips over it.
		return
	case where == whereHeap:
		eng.removeAt(int(e.index))
	case where == whereOverflow:
		eng.w.removeOverflow(e)
	default:
		eng.w.removeBucket(e, where)
	}
	eng.free = append(eng.free, e)
}

// Canceled reports whether Cancel has been called on the event (and the
// event has not been recycled since).
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a discrete-event scheduler. The zero value is not usable; use
// New or NewSched.
type Engine struct {
	now     Time
	seq     uint64
	pending int
	// seqOff/seqInc implement the sharded seq stride (SetSeqStride): a
	// locally scheduled event gets seq = seq+seqOff and the counter steps
	// by seqInc. Serial engines run with off 0, inc 1, which is exactly
	// the historical behavior.
	seqOff    uint64
	seqInc    uint64
	processed uint64
	kind      SchedKind
	heap      []*Event
	free      []*Event
	w         *wheel // nil when kind == SchedHeap
	// curSchedAt/curSchedAt2 mirror the firing event's schedAt/schedAt2
	// during exec, so children inherit their lineage (see Event).
	curSchedAt  Time
	curSchedAt2 Time
}

// New returns an engine with an empty event queue and the clock at zero,
// using the default scheduler (see SchedDefault).
func New() *Engine {
	return NewSched(SchedDefault)
}

// NewSched returns an engine backed by the given scheduler kind.
func NewSched(kind SchedKind) *Engine {
	e := &Engine{kind: ResolveSched(kind), seqInc: 1}
	if e.kind == SchedWheel {
		e.w = newWheel()
	}
	return e
}

// Kind reports which scheduler backs the engine (never SchedDefault).
func (e *Engine) Kind() SchedKind { return e.kind }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far. It is intended
// for benchmarks and engine diagnostics.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently queued. Canceled events
// stop counting the moment Cancel returns, whichever scheduler holds
// them.
func (e *Engine) Pending() int { return e.pending }

// Reset returns the engine to its initial state — clock at zero, empty
// queue, sequence and processed counters rewound — while keeping every
// piece of allocated storage (heap array, wheel buckets, run buffer,
// event free list) warm for the next run. A Reset engine behaves exactly
// like a fresh New: it is the arena-reuse hook, not a mid-run operation.
// Packet references held by still-queued events are dropped, not
// released; an arena owner resets the packet pool alongside the engine.
func (e *Engine) Reset() {
	if e.w != nil {
		e.w.drainInto(e)
	} else {
		for i, ev := range e.heap {
			e.heap[i] = nil
			e.recycle(ev)
		}
		e.heap = e.heap[:0]
	}
	e.now = 0
	e.seq = 0
	e.pending = 0
	e.processed = 0
	e.curSchedAt = 0
	e.curSchedAt2 = 0
}

// recycle detaches ev and puts it on the free list, clearing callback
// references so nothing is retained across reuse.
func (e *Engine) recycle(ev *Event) {
	ev.where = whereDetached
	ev.canceled = false
	ev.fn = nil
	ev.sink = nil
	ev.arg = nil
	e.free = append(e.free, ev)
}

// Schedule queues fn to run after delay d. A negative delay panics: the
// simulated world cannot schedule work in its own past.
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.at(e.now+d, fn)
}

// ScheduleAt queues fn to run at absolute time t, which must not precede
// the current time.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	return e.at(t, fn)
}

// SchedulePacket queues sink.Deliver(p) to run after delay d. It is the
// typed, closure-free twin of Schedule for the per-packet hot path: the
// sink is pre-bound by the caller, so nothing is allocated per call.
// Ordering is identical to Schedule — typed and plain events share one
// clock and one sequence counter.
//
// The scheduled event owns p until it fires; a caller that Cancels a
// packet event takes ownership back (and is responsible for releasing
// the packet if it is pooled).
func (e *Engine) SchedulePacket(d time.Duration, sink PacketSink, p *packet.Packet) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	ev := e.at(e.now+d, nil)
	ev.sink = sink
	ev.arg = p
	return ev
}

func (e *Engine) at(t Time, fn func()) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{eng: e}
	}
	ev.at = t
	ev.seq = e.seq + e.seqOff
	ev.fn = fn
	ev.canceled = false
	ev.schedAt = e.now
	ev.schedAt2 = e.curSchedAt
	e.seq += e.seqInc
	e.pending++
	if e.w != nil {
		e.w.push(ev)
		return ev
	}
	ev.where = whereHeap
	i := len(e.heap)
	e.heap = append(e.heap, ev)
	ev.index = int32(i)
	e.siftUp(i)
	return ev
}

// rearm moves a pending timer event to a new firing time, consuming a
// fresh sequence number so the outcome is indistinguishable from Cancel
// followed by ScheduleAt — same (time, seq) key, same free-list state —
// but when the event sits in an unsorted wheel bucket and the new time
// maps to the same bucket, it is updated in place with no queue surgery
// at all. Retransmission timers rearm once per ACK, often onto the same
// RTO grid point, so this is the hottest cancel+schedule pair in TCP
// workloads.
func (e *Engine) rearm(ev *Event, t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if ev.where >= whereLevel0 {
		if l, s, ok := e.w.locate(t); ok &&
			int8(l)+whereLevel0 == ev.where && uint8(s) == ev.slot {
			ev.at = t
			ev.seq = e.seq + e.seqOff
			ev.schedAt = e.now
			ev.schedAt2 = e.curSchedAt
			e.seq += e.seqInc
			return ev
		}
	}
	ev.Cancel()
	return e.ScheduleAt(t, fn)
}

// exec pops bookkeeping for a dequeued event and fires it. The event must
// already be detached from its queue structure.
func (e *Engine) exec(ev *Event) {
	e.pending--
	e.now = ev.at
	e.processed++
	e.curSchedAt = ev.schedAt
	e.curSchedAt2 = ev.schedAt2
	fn, sink, arg := ev.fn, ev.sink, ev.arg
	ev.fn = nil
	ev.sink = nil
	ev.arg = nil
	e.free = append(e.free, ev)
	if sink != nil {
		sink.Deliver(arg)
	} else {
		fn()
	}
}

// Step executes the next event, if any, advancing the clock to its
// timestamp. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	if e.w != nil {
		ev := e.wheelNext()
		if ev == nil {
			return false
		}
		e.wheelPop()
		e.exec(ev)
		return true
	}
	if len(e.heap) == 0 {
		return false
	}
	ev := e.heap[0]
	e.removeAt(0)
	e.exec(ev)
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then advances the
// clock to exactly t. Events scheduled for later remain queued.
func (e *Engine) RunUntil(t Time) {
	if e.w != nil {
		for {
			ev := e.wheelNext()
			if ev == nil || ev.at > t {
				break
			}
			e.wheelPop()
			e.exec(ev)
		}
	} else {
		for len(e.heap) > 0 && e.heap[0].at <= t {
			ev := e.heap[0]
			e.removeAt(0)
			e.exec(ev)
		}
	}
	if t > e.now {
		e.now = t
	}
}

// RunUntilN is RunUntil with a step budget: it executes at most max
// events with timestamps <= t. It returns true when the horizon was
// reached (no events <= t remain; the clock then sits at exactly t) and
// false when the budget ran out first (the clock sits at the last
// executed event). Callers use it to regain control between batches —
// for progress sampling or cancellation checks — without scheduling
// any events of their own, so the event sequence is identical to one
// uninterrupted RunUntil(t).
func (e *Engine) RunUntilN(t Time, max int) bool {
	if e.w != nil {
		for {
			ev := e.wheelNext()
			if ev == nil || ev.at > t {
				if t > e.now {
					e.now = t
				}
				return true
			}
			if max <= 0 {
				return false
			}
			e.wheelPop()
			e.exec(ev)
			max--
		}
	}
	for max > 0 && len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
		max--
	}
	if len(e.heap) == 0 || e.heap[0].at > t {
		if t > e.now {
			e.now = t
		}
		return true
	}
	return false
}

// less orders events by (time, sequence) so simultaneous events fire in
// scheduling order.
func less(a, b *Event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// removeAt detaches the event at heap position i, restoring the heap
// property.
func (e *Engine) removeAt(i int) {
	h := e.heap
	n := len(h) - 1
	ev := h[i]
	if i != n {
		moved := h[n]
		h[i] = moved
		moved.index = int32(i)
		h[n] = nil
		e.heap = h[:n]
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	} else {
		h[n] = nil
		e.heap = h[:n]
	}
	ev.index = -1
	ev.where = whereDetached
}

// siftUp moves the event at position i toward the root until its parent
// is no larger. The moving event is held in a register and written once.
func (e *Engine) siftUp(i int) {
	h := e.heap
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = int32(i)
		i = p
	}
	h[i] = ev
	ev.index = int32(i)
}

// siftDown moves the event at position i toward the leaves until no child
// is smaller. It reports whether the event moved.
func (e *Engine) siftDown(i int) bool {
	h := e.heap
	n := len(h)
	if i >= n {
		return false
	}
	ev := h[i]
	start := i
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(h[j], h[best]) {
				best = j
			}
		}
		if !less(h[best], ev) {
			break
		}
		h[i] = h[best]
		h[i].index = int32(i)
		i = best
	}
	h[i] = ev
	ev.index = int32(i)
	return i != start
}
