package sim

import (
	"math/bits"
	"slices"
)

// Hierarchical timing wheel (calendar queue).
//
// Simulated time is quantized into ticks of 2^tickShift nanoseconds
// (524.288µs). Four levels of 256 slots each cover a horizon of 2^32
// ticks (~625 simulated hours): level 0 resolves single ticks (~134ms
// per rotation), and each higher level widens the slot by 8 bits
// (level-1 slots span ~134ms, level-2 ~34.4s, level-3 ~2.44h). The
// tick is deliberately coarse: the paper's workloads — 100µs host
// processing, 400µs-8ms access drains, 80ms/packet trunk transmission,
// 10ms-1s two-way delays, RTO deadlines on a 500ms grid — then land
// almost entirely within the *current* level-0 occupancy word, so the
// batched word activation below drains whole bursts per bitmap probe
// and same-tick collisions resolve in the sorted run, not by cursor
// crawling. Coarser (2^20) starts aliasing distinct transmissions into
// one slot's sort; finer (2^16-2^18) measurably loses throughput to
// cursor advancement (see DESIGN.md §11). Events beyond the 2^32-tick
// horizon go to an unsorted overflow list that is pulled back in when
// its top-level rotation opens.
//
// Determinism contract (see DESIGN.md §11): the cursor visits slots in
// strictly increasing tick order and a slot's bucket is sorted by
// (time, seq) — every seq is unique, so the sort is a total order and
// bucket insertion order is irrelevant. Events that land at or behind
// the cursor (same-instant schedules, or schedules behind a cursor that
// peeked ahead) are binary-search inserted into the sorted active run
// by the full (time, seq) key; locally scheduled events carry the
// largest seq so far and land after all equal timestamps, while
// injected cross-region events (Engine.InjectPacketAt) carry
// interpolated seqs and may land earlier among equals. The result is
// exactly the (time, seq) firing order the heap produces.
//
// Cancel policy: events in unsorted buckets or overflow are
// swap-removed and recycled immediately (O(1)); events already in the
// sorted active run are cancel-marked in place (removal would shift the
// positions a concurrent binary search relies on) and recycled when the
// drain skips them. Retransmission timers — the dominant cancel source
// — rearm in place without any of this when the new deadline maps to
// the same bucket (Engine.rearm).
const (
	tickShift = 19 // one tick = 2^19 ns = 524.288µs of simulated time
	slotBits  = 8
	numSlots  = 1 << slotBits
	slotMask  = numSlots - 1
	numLevels = 4
	wordCount = numSlots / 64
	horizon   = 1 << (numLevels * slotBits) // ticks covered by the wheels
)

type wheel struct {
	// curTick is the wheel cursor: the tick of the most recently
	// activated level-0 slot. Buckets only ever hold events with ticks
	// strictly greater than curTick; everything at or behind it is in
	// the active run.
	curTick uint64
	// run is the sorted (time, seq) drain buffer: the contents of the
	// last activated slot, plus any events scheduled at or behind the
	// cursor since. run[runHead:] are still pending.
	run     []*Event
	runHead int
	// overflow holds events beyond the wheel horizon, unsorted.
	overflow []*Event
	lvlCount [numLevels]int                // live events per level
	occ      [numLevels][wordCount]uint64  // occupancy bitmap per level
	slots    [numLevels][numSlots][]*Event // unsorted buckets
}

// bucketSeedCap is the initial capacity of every slot bucket. The
// buckets are carved from one backing array so a fresh engine pays a
// single allocation, and the advancing cursor never allocates just for
// touching a slot it has not visited before — only a bucket holding
// more than bucketSeedCap simultaneous events grows (and keeps) a
// larger one.
const bucketSeedCap = 4

func newWheel() *wheel {
	w := &wheel{}
	backing := make([]*Event, numLevels*numSlots*bucketSeedCap)
	i := 0
	for l := 0; l < numLevels; l++ {
		for s := 0; s < numSlots; s++ {
			w.slots[l][s] = backing[i : i : i+bucketSeedCap]
			i += bucketSeedCap
		}
	}
	return w
}

func tickOf(t Time) uint64 { return uint64(t) >> tickShift }

// levelFor returns the wheel level for an event dt ticks ahead of the
// cursor, or -1 when it is beyond the horizon.
func levelFor(dt uint64) int {
	switch {
	case dt < 1<<slotBits:
		return 0
	case dt < 1<<(2*slotBits):
		return 1
	case dt < 1<<(3*slotBits):
		return 2
	case dt < horizon:
		return 3
	}
	return -1
}

// locate returns the bucket an event firing at t would be placed in
// right now; ok is false when t maps to the active run or overflow.
func (w *wheel) locate(t Time) (l, s int, ok bool) {
	tk := tickOf(t)
	if tk <= w.curTick {
		return 0, 0, false
	}
	l = levelFor(tk - w.curTick)
	if l < 0 {
		return 0, 0, false
	}
	return l, int(tk>>(uint(l)*slotBits)) & slotMask, true
}

// push files a freshly scheduled event: into the sorted run when it
// fires at or behind the cursor, into a level bucket inside the
// horizon, or into overflow beyond it.
func (w *wheel) push(ev *Event) {
	tk := tickOf(ev.at)
	if tk <= w.curTick {
		w.insertRun(ev)
		return
	}
	l := levelFor(tk - w.curTick)
	if l < 0 {
		ev.where = whereOverflow
		ev.index = int32(len(w.overflow))
		w.overflow = append(w.overflow, ev)
		return
	}
	w.place(ev, l, int(tk>>(uint(l)*slotBits))&slotMask)
}

// place appends ev to bucket (l, s) and maintains the occupancy bits.
func (w *wheel) place(ev *Event, l, s int) {
	ev.where = whereLevel0 + int8(l)
	ev.slot = uint8(s)
	b := w.slots[l][s]
	ev.index = int32(len(b))
	w.slots[l][s] = append(b, ev)
	w.lvlCount[l]++
	if len(b) == 0 {
		w.occ[l][s>>6] |= 1 << (uint(s) & 63)
	}
}

// replace re-files an event relative to the current cursor after a
// cascade or an overflow pull. The caller guarantees tick >= curTick.
func (w *wheel) replace(ev *Event) {
	tk := tickOf(ev.at)
	l := levelFor(tk - w.curTick)
	w.place(ev, l, int(tk>>(uint(l)*slotBits))&slotMask)
}

// insertRun binary-search inserts ev into the sorted active run by the
// full (time, seq) key. An engine-scheduled event's seq exceeds every
// queued seq, so it lands after all equal timestamps exactly as the old
// time-only search placed it; injected events (Engine.InjectPacketAt)
// carry interpolated seqs that may order before queued same-instant
// events, which the full key honors.
func (w *wheel) insertRun(ev *Event) {
	ev.where = whereRun
	lo, hi := w.runHead, len(w.run)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(w.run[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.run = append(w.run, nil)
	copy(w.run[lo+1:], w.run[lo:])
	w.run[lo] = ev
}

// removeBucket swap-removes ev from its bucket; where names the level.
func (w *wheel) removeBucket(ev *Event, where int8) {
	l := int(where - whereLevel0)
	s := int(ev.slot)
	b := w.slots[l][s]
	n := len(b) - 1
	i := int(ev.index)
	if i != n {
		moved := b[n]
		b[i] = moved
		moved.index = int32(i)
	}
	b[n] = nil
	w.slots[l][s] = b[:n]
	w.lvlCount[l]--
	if n == 0 {
		w.occ[l][s>>6] &^= 1 << (uint(s) & 63)
	}
}

// removeOverflow swap-removes ev from the overflow list.
func (w *wheel) removeOverflow(ev *Event) {
	o := w.overflow
	n := len(o) - 1
	i := int(ev.index)
	if i != n {
		moved := o[n]
		o[i] = moved
		moved.index = int32(i)
	}
	o[n] = nil
	w.overflow = o[:n]
}

// nextSlot returns the lowest occupied slot >= from at level l, or -1.
func (w *wheel) nextSlot(l, from int) int {
	if from >= numSlots {
		return -1
	}
	wi := from >> 6
	word := w.occ[l][wi] &^ (1<<(uint(from)&63) - 1)
	for {
		if word != 0 {
			return wi<<6 + bits.TrailingZeros64(word)
		}
		wi++
		if wi >= wordCount {
			return -1
		}
		word = w.occ[l][wi]
	}
}

// cascade empties bucket (l, s) — whose span the cursor just entered —
// re-filing every event one or more levels down.
func (w *wheel) cascade(l, s int) {
	b := w.slots[l][s]
	if len(b) == 0 {
		return
	}
	w.slots[l][s] = b[:0]
	w.occ[l][s>>6] &^= 1 << (uint(s) & 63)
	w.lvlCount[l] -= len(b)
	for i, ev := range b {
		b[i] = nil
		w.replace(ev)
	}
}

// activateWord extracts every occupied level-0 slot named by word (a
// pre-masked occupancy word of bitmap index wi, holding only bits at or
// ahead of the cursor) into the run, advances the cursor to the last
// slot taken, and sorts the run by (time, seq).
//
// Batching a whole 64-slot word amortizes the advance/activate overhead
// across every event in its span — for the sparse event streams TCP
// scenarios produce, that is several events per scan instead of one.
// Peeking the cursor ahead is safe: events that later schedule at or
// behind it binary-search into the run, so the global (time, seq) order
// is untouched. The span is one word (~34ms) on purpose — RTO-scale
// timers stay in their buckets where rearm can update them in place.
//
// The copy, the bucket clear, and the whereRun relabel are one fused
// pass. Small runs insertion-sort: slots are taken in ascending tick
// order, so the concatenation is usually nearly sorted and the common
// few-event run costs a handful of compares. Large runs — ACK
// compression packs dozens of sub-tick-spaced arrivals into one bucket
// in arbitrary time order, the insertion sort's quadratic worst case —
// fall back to pdqsort.
func (w *wheel) activateWord(wi int, word uint64) {
	w.occ[0][wi] &^= word
	r := w.run[:0]
	last := 0
	for word != 0 {
		s := wi<<6 + bits.TrailingZeros64(word)
		word &= word - 1
		last = s
		b := w.slots[0][s]
		w.lvlCount[0] -= len(b)
		for i, ev := range b {
			b[i] = nil
			ev.where = whereRun
			r = append(r, ev)
		}
		w.slots[0][s] = b[:0]
	}
	w.curTick = w.curTick&^uint64(slotMask) | uint64(last)
	if len(r) > 24 {
		slices.SortFunc(r, func(a, b *Event) int {
			if less(a, b) {
				return -1
			}
			return 1
		})
	} else {
		for i := 1; i < len(r); i++ {
			ev := r[i]
			j := i - 1
			for j >= 0 && less(ev, r[j]) {
				r[j+1] = r[j]
				j--
			}
			r[j+1] = ev
		}
	}
	w.run = r
	w.runHead = 0
}

// minOverflowTick scans the overflow list for the earliest tick. Only
// called when every wheel level is empty, which is rare.
func (w *wheel) minOverflowTick() uint64 {
	min := tickOf(w.overflow[0].at)
	for _, ev := range w.overflow[1:] {
		if tk := tickOf(ev.at); tk < min {
			min = tk
		}
	}
	return min
}

// pullInto advances the cursor to rot (a top-level rotation start) and
// files every overflow event that now fits the horizon into the wheels.
func (w *wheel) pullInto(rot uint64) {
	w.curTick = rot
	kept := w.overflow[:0]
	for _, ev := range w.overflow {
		if tickOf(ev.at)-rot < horizon {
			w.replace(ev)
		} else {
			ev.index = int32(len(kept))
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(w.overflow); i++ {
		w.overflow[i] = nil
	}
	w.overflow = kept
}

// stepTo moves the cursor to t — the start of a level-0 rotation the
// caller has proven empty of events in between — cascading each
// upper-level slot whose span it enters (top level first, so lower
// cascades see the refiled events). A top-level wrap opens a new
// overflow window.
func (w *wheel) stepTo(t uint64) {
	w.curTick = t
	if t&(1<<(2*slotBits)-1) == 0 {
		if t&(1<<(3*slotBits)-1) == 0 {
			if t&(horizon-1) == 0 {
				w.pullInto(t)
			}
			w.cascade(3, int(t>>(3*slotBits))&slotMask)
		}
		w.cascade(2, int(t>>(2*slotBits))&slotMask)
	}
	w.cascade(1, int(t>>slotBits)&slotMask)
}

// step crawls the cursor to the start of the next level-0 rotation.
func (w *wheel) step() {
	w.stepTo((w.curTick | slotMask) + 1)
}

// advance moves the cursor to the next slot holding events and
// activates it into the run. The caller guarantees the run is drained
// and at least one live event is in the wheel structure.
func (w *wheel) advance() {
	for {
		// Fast path: the first occupied word of this level-0 rotation, at
		// or ahead of the cursor, activated wholesale. Bits behind the
		// cursor within its own word are next-rotation stragglers and are
		// masked off.
		cur := int(w.curTick) & slotMask
		for wi := cur >> 6; wi < wordCount; wi++ {
			word := w.occ[0][wi]
			if wi == cur>>6 {
				word &^= 1<<(uint(cur)&63) - 1
			}
			if word != 0 {
				w.activateWord(wi, word)
				return
			}
		}
		// This level-0 rotation is spent. Jump straight to the next
		// occupied slot of the first non-empty upper level and cascade
		// it. A level that holds only stragglers — events already filed
		// into its next rotation's slots, which sit at or behind the
		// cursor and must not be skipped — has nothing ahead of the
		// cursor either, so the span up to its rotation boundary is
		// provably empty: jump to the boundary, where the next rotation
		// opens and the stragglers come back into view. Only a level-0
		// straggler forces a single-rotation crawl with step().
		if w.lvlCount[0] == 0 {
			if s := w.nextSlot(1, (int(w.curTick>>slotBits)&slotMask)+1); s >= 0 {
				w.curTick = w.curTick&^uint64(1<<(2*slotBits)-1) | uint64(s)<<slotBits
				w.cascade(1, s)
				continue
			}
			if w.lvlCount[1] != 0 {
				w.stepTo((w.curTick>>(2*slotBits) + 1) << (2 * slotBits))
				continue
			}
			if s := w.nextSlot(2, (int(w.curTick>>(2*slotBits))&slotMask)+1); s >= 0 {
				w.curTick = w.curTick&^uint64(1<<(3*slotBits)-1) | uint64(s)<<(2*slotBits)
				w.cascade(2, s)
				continue
			}
			if w.lvlCount[2] != 0 {
				w.stepTo((w.curTick>>(3*slotBits) + 1) << (3 * slotBits))
				continue
			}
			if s := w.nextSlot(3, (int(w.curTick>>(3*slotBits))&slotMask)+1); s >= 0 {
				w.curTick = w.curTick&^uint64(horizon-1) | uint64(s)<<(3*slotBits)
				w.cascade(3, s)
				continue
			}
			if w.lvlCount[3] != 0 {
				w.stepTo((w.curTick>>(4*slotBits) + 1) << (4 * slotBits))
				continue
			}
			// Only overflow holds events: open the rotation containing
			// the earliest one.
			w.pullInto(w.minOverflowTick() &^ uint64(horizon-1))
			continue
		}
		w.step()
	}
}

// drainInto recycles every queued event into the engine free list and
// rewinds the wheel to its initial state, keeping bucket storage warm.
func (w *wheel) drainInto(e *Engine) {
	for w.runHead < len(w.run) {
		ev := w.run[w.runHead]
		w.run[w.runHead] = nil
		w.runHead++
		e.recycle(ev)
	}
	w.run = w.run[:0]
	w.runHead = 0
	for l := 0; l < numLevels; l++ {
		for wi := range w.occ[l] {
			word := w.occ[l][wi]
			if word == 0 {
				continue
			}
			w.occ[l][wi] = 0
			for word != 0 {
				s := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				b := w.slots[l][s]
				for i, ev := range b {
					b[i] = nil
					e.recycle(ev)
				}
				w.slots[l][s] = b[:0]
			}
		}
		w.lvlCount[l] = 0
	}
	for i, ev := range w.overflow {
		w.overflow[i] = nil
		e.recycle(ev)
	}
	w.overflow = w.overflow[:0]
	w.curTick = 0
}

// wheelNext returns the next live event without dequeuing it, recycling
// cancel-marked run entries as it goes; nil when the queue is empty.
func (e *Engine) wheelNext() *Event {
	w := e.w
	for {
		for w.runHead < len(w.run) {
			ev := w.run[w.runHead]
			if !ev.canceled {
				return ev
			}
			w.run[w.runHead] = nil
			w.runHead++
			e.recycle(ev)
		}
		if e.pending == 0 {
			return nil
		}
		w.advance()
	}
}

// wheelPop dequeues the run head previously returned by wheelNext.
func (e *Engine) wheelPop() {
	w := e.w
	ev := w.run[w.runHead]
	w.run[w.runHead] = nil
	w.runHead++
	ev.where = whereDetached
}
