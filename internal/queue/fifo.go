// Package queue implements the FIFO drop-tail packet buffer used at every
// output port of the simulated switches and hosts.
//
// The paper's switches (§2.2) have one buffer per outgoing line, FIFO
// service, and the drop-tail discard policy: when the buffer is full an
// arriving packet is dropped. There is no buffer sharing between lines.
// Queue length is measured in packets (not bytes), which is why an ACK
// occupies the same slot as a data packet — an asymmetry central to the
// ACK-compression phenomenon.
package queue

import "tahoedyn/internal/packet"

// FIFO is a first-in-first-out packet buffer with an optional capacity.
// A capacity of Unbounded (or any non-positive value) means infinite
// buffering, as used in the fixed-window experiments (Figs. 8, 9).
//
// The zero value is an unbounded empty queue ready for use.
type FIFO struct {
	capacity int
	items    []*packet.Packet
	head     int
	bytes    int
}

// Unbounded is the capacity value for an infinite buffer.
const Unbounded = 0

// New returns an empty FIFO holding at most capacity packets;
// capacity <= 0 means unbounded.
func New(capacity int) *FIFO {
	return &FIFO{capacity: capacity}
}

// Cap returns the configured capacity (<= 0 meaning unbounded).
func (q *FIFO) Cap() int { return q.capacity }

// Len returns the number of packets currently buffered.
func (q *FIFO) Len() int { return len(q.items) - q.head }

// Bytes returns the total size in bytes of the buffered packets.
func (q *FIFO) Bytes() int { return q.bytes }

// Full reports whether an arriving packet would be dropped.
func (q *FIFO) Full() bool {
	return q.capacity > 0 && q.Len() >= q.capacity
}

// Push appends p to the tail. It returns false — dropping the packet —
// when the queue is full.
func (q *FIFO) Push(p *packet.Packet) bool {
	if q.Full() {
		return false
	}
	q.items = append(q.items, p)
	q.bytes += p.Size
	return true
}

// Peek returns the head packet without removing it, or nil if empty.
func (q *FIFO) Peek() *packet.Packet {
	if q.Len() == 0 {
		return nil
	}
	return q.items[q.head]
}

// Pop removes and returns the head packet, or nil if empty.
func (q *FIFO) Pop() *packet.Packet {
	if q.Len() == 0 {
		return nil
	}
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	q.bytes -= p.Size
	// Compact once the dead prefix dominates, keeping Pop amortized O(1)
	// without unbounded growth.
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items = q.items[:n]
		q.head = 0
	}
	return p
}

// RemoveAt removes and returns the packet at position i (0 = head). It
// exists for the Random-Drop discard policy, which evicts a uniformly
// chosen buffered packet when the queue overflows. It returns nil if i
// is out of range.
func (q *FIFO) RemoveAt(i int) *packet.Packet {
	if i < 0 || i >= q.Len() {
		return nil
	}
	if i == 0 {
		return q.Pop()
	}
	idx := q.head + i
	p := q.items[idx]
	copy(q.items[idx:], q.items[idx+1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	q.bytes -= p.Size
	return p
}

// Snapshot returns the queued packets in order, head first. It is meant
// for tests and analysis, not the data path.
func (q *FIFO) Snapshot() []*packet.Packet {
	out := make([]*packet.Packet, q.Len())
	copy(out, q.items[q.head:])
	return out
}
