package queue

import (
	"testing"
	"testing/quick"

	"tahoedyn/internal/packet"
)

func pkt(id uint64, size int) *packet.Packet {
	return &packet.Packet{ID: id, Size: size}
}

func TestFIFOOrder(t *testing.T) {
	q := New(Unbounded)
	for i := uint64(0); i < 5; i++ {
		if !q.Push(pkt(i, 100)) {
			t.Fatalf("push %d failed on unbounded queue", i)
		}
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	for i := uint64(0); i < 5; i++ {
		p := q.Pop()
		if p == nil || p.ID != i {
			t.Fatalf("pop %d returned %v", i, p)
		}
	}
	if q.Pop() != nil {
		t.Fatal("pop of empty queue returned a packet")
	}
}

func TestDropTail(t *testing.T) {
	q := New(2)
	if !q.Push(pkt(1, 100)) || !q.Push(pkt(2, 100)) {
		t.Fatal("pushes below capacity failed")
	}
	if q.Push(pkt(3, 100)) {
		t.Fatal("push above capacity accepted")
	}
	if !q.Full() {
		t.Fatal("Full = false at capacity")
	}
	q.Pop()
	if q.Full() {
		t.Fatal("Full = true below capacity")
	}
	if !q.Push(pkt(4, 100)) {
		t.Fatal("push after pop failed")
	}
	if got := q.Pop().ID; got != 2 {
		t.Fatalf("head = %d, want 2", got)
	}
	if got := q.Pop().ID; got != 4 {
		t.Fatalf("head = %d, want 4", got)
	}
}

func TestBytesAccounting(t *testing.T) {
	q := New(Unbounded)
	q.Push(pkt(1, 500))
	q.Push(pkt(2, 50))
	if q.Bytes() != 550 {
		t.Fatalf("Bytes = %d, want 550", q.Bytes())
	}
	q.Pop()
	if q.Bytes() != 50 {
		t.Fatalf("Bytes = %d, want 50", q.Bytes())
	}
	q.Pop()
	if q.Bytes() != 0 {
		t.Fatalf("Bytes = %d, want 0", q.Bytes())
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := New(Unbounded)
	if q.Peek() != nil {
		t.Fatal("peek of empty queue returned a packet")
	}
	q.Push(pkt(7, 100))
	if q.Peek().ID != 7 || q.Len() != 1 {
		t.Fatal("peek removed the packet")
	}
}

func TestSnapshotOrder(t *testing.T) {
	q := New(Unbounded)
	for i := uint64(0); i < 100; i++ {
		q.Push(pkt(i, 1))
	}
	for i := 0; i < 70; i++ { // force compaction path
		q.Pop()
	}
	snap := q.Snapshot()
	if len(snap) != 30 {
		t.Fatalf("snapshot len = %d, want 30", len(snap))
	}
	for i, p := range snap {
		if p.ID != uint64(70+i) {
			t.Fatalf("snapshot[%d].ID = %d, want %d", i, p.ID, 70+i)
		}
	}
}

func TestRemoveAt(t *testing.T) {
	q := New(Unbounded)
	for i := uint64(0); i < 5; i++ {
		q.Push(pkt(i, int(i+1)*10))
	}
	// Remove the middle packet (ID 2, size 30).
	p := q.RemoveAt(2)
	if p == nil || p.ID != 2 {
		t.Fatalf("RemoveAt(2) = %v", p)
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	if q.Bytes() != 10+20+40+50 {
		t.Fatalf("Bytes = %d", q.Bytes())
	}
	want := []uint64{0, 1, 3, 4}
	for _, id := range want {
		if got := q.Pop().ID; got != id {
			t.Fatalf("pop = %d, want %d", got, id)
		}
	}
}

func TestRemoveAtHeadAndBounds(t *testing.T) {
	q := New(Unbounded)
	q.Push(pkt(1, 10))
	q.Push(pkt(2, 10))
	if p := q.RemoveAt(0); p == nil || p.ID != 1 {
		t.Fatalf("RemoveAt(0) = %v", p)
	}
	if q.RemoveAt(5) != nil || q.RemoveAt(-1) != nil {
		t.Fatal("out-of-range RemoveAt returned a packet")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestRemoveAtAfterCompaction(t *testing.T) {
	q := New(Unbounded)
	for i := uint64(0); i < 200; i++ {
		q.Push(pkt(i, 1))
	}
	for i := 0; i < 150; i++ { // force the compaction path
		q.Pop()
	}
	if p := q.RemoveAt(10); p == nil || p.ID != 160 {
		t.Fatalf("RemoveAt(10) = %v, want ID 160", p)
	}
	if got := q.Pop().ID; got != 150 {
		t.Fatalf("head = %d, want 150", got)
	}
}

// Property: under any sequence of pushes and pops, length never exceeds
// capacity, FIFO order is preserved, and byte accounting matches the
// contents.
func TestFIFOInvariantsProperty(t *testing.T) {
	f := func(ops []bool, capRaw uint8) bool {
		capacity := int(capRaw % 16)
		q := New(capacity)
		var model []*packet.Packet
		id := uint64(0)
		for _, push := range ops {
			if push {
				p := pkt(id, int(id%700)+1)
				id++
				ok := q.Push(p)
				wantOK := capacity <= 0 || len(model) < capacity
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, p)
				}
			} else {
				got := q.Pop()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					if got != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
			if capacity > 0 && q.Len() > capacity {
				return false
			}
			wantBytes := 0
			for _, p := range model {
				wantBytes += p.Size
			}
			if q.Bytes() != wantBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
