package shard

import (
	"context"
	"reflect"
	"testing"
	"time"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

// arrival is one recorded cross-region delivery.
type arrival struct {
	At  sim.Time
	Seq int
}

// recorder is a destination sink: it logs each arrival and, when wired
// with a reply edge, bounces the packet back (like a cut port with zero
// transmission time) until the limit.
type recorder struct {
	eng   *sim.Engine
	pool  *packet.Pool
	log   []arrival
	reply *Edge
	limit sim.Time
}

func (r *recorder) Deliver(p *packet.Packet) {
	r.log = append(r.log, arrival{At: r.eng.Now(), Seq: p.Seq})
	if r.reply != nil && r.eng.Now() < r.limit {
		q := r.pool.Get()
		*q = *p
		q.Seq++
		r.reply.Deliver(q)
	}
	r.pool.Put(p)
}

// pingPong builds a two-region harness joined by one duplex cut link of
// the given delay, seeds one packet from region 0 at 5 ms, and returns
// the runner and both recorders. Each arrival bounces straight back
// until the limit, so the packet crosses the cut once per delay.
func pingPong(delay time.Duration, limit sim.Time) (*Runner, *recorder, *recorder) {
	regions := []*Region{
		{Eng: sim.New(), Pool: packet.NewPool()},
		{Eng: sim.New(), Pool: packet.NewPool()},
	}
	for _, reg := range regions {
		reg.Eng.SetSeqStride(Stride)
	}
	e01 := &Edge{Delay: delay, To: 1}
	e10 := &Edge{Delay: delay, To: 0}
	rec0 := &recorder{eng: regions[0].Eng, pool: regions[0].Pool, reply: e01, limit: limit}
	rec1 := &recorder{eng: regions[1].Eng, pool: regions[1].Pool, reply: e10, limit: limit}
	e01.Dst = rec1
	e10.Dst = rec0
	r := NewRunner(regions, []*Edge{e01, e10}, []int{0, 1}, delay)

	p := regions[0].Pool.Get()
	p.Seq = 0
	regions[0].Eng.SchedulePacket(5*time.Millisecond, e01, p)
	return r, rec0, rec1
}

// TestPingPongAcrossRegions drives a packet back and forth across a cut
// link: every arrival must land exactly one propagation delay after its
// send, rounds must be bounded by the lookahead, and Events must count
// both regions.
func TestPingPongAcrossRegions(t *testing.T) {
	const d = 10 * time.Millisecond
	r, rec0, rec1 := pingPong(d, 90*time.Millisecond)
	barriers := 0
	if err := r.Span(nil, 100*time.Millisecond, func(now time.Duration, events uint64) {
		barriers++
		if now > 100*time.Millisecond {
			t.Fatalf("barrier past the span end: %v", now)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if r.Now() != 100*time.Millisecond {
		t.Fatalf("Now = %v", r.Now())
	}
	if barriers != 10 {
		t.Fatalf("barriers = %d, want 10 rounds of lookahead %v", barriers, d)
	}
	// Seeded at 5 ms, the packet reaches region 1 at 15, 35, 55, 75, 95
	// ms and region 0 at 25, 45, 65, 85 ms, incrementing Seq per bounce.
	want1 := []arrival{{15 * time.Millisecond, 0}, {35 * time.Millisecond, 2},
		{55 * time.Millisecond, 4}, {75 * time.Millisecond, 6}, {95 * time.Millisecond, 8}}
	want0 := []arrival{{25 * time.Millisecond, 1}, {45 * time.Millisecond, 3},
		{65 * time.Millisecond, 5}, {85 * time.Millisecond, 7}}
	if !reflect.DeepEqual(rec1.log, want1) {
		t.Fatalf("region 1 arrivals = %v, want %v", rec1.log, want1)
	}
	if !reflect.DeepEqual(rec0.log, want0) {
		t.Fatalf("region 0 arrivals = %v, want %v", rec0.log, want0)
	}
	// 1 seed transmission + 9 deliveries.
	if got := r.Events(); got != 10 {
		t.Fatalf("Events = %d, want 10", got)
	}
}

// TestPingPongDeterministic runs the same harness twice and compares
// the arrival logs byte for byte.
func TestPingPongDeterministic(t *testing.T) {
	run := func() ([]arrival, []arrival) {
		r, rec0, rec1 := pingPong(10*time.Millisecond, 90*time.Millisecond)
		if err := r.Span(nil, 100*time.Millisecond, nil); err != nil {
			t.Fatal(err)
		}
		return rec0.log, rec1.log
	}
	a0, a1 := run()
	b0, b1 := run()
	if !reflect.DeepEqual(a0, b0) || !reflect.DeepEqual(a1, b1) {
		t.Fatalf("reruns diverge:\n%v %v\n%v %v", a0, a1, b0, b1)
	}
}

// TestAbsorbOrdering pins the barrier's partition-independent tiebreak:
// same-instant arrivals from two source regions are ordered by source
// region index, and two captures from one region keep capture order.
func TestAbsorbOrdering(t *testing.T) {
	regions := []*Region{
		{Eng: sim.New(), Pool: packet.NewPool()},
		{Eng: sim.New(), Pool: packet.NewPool()},
		{Eng: sim.New(), Pool: packet.NewPool()},
	}
	for _, reg := range regions {
		reg.Eng.SetSeqStride(Stride)
	}
	const d = 10 * time.Millisecond
	e02 := &Edge{Delay: d, To: 2}
	e12 := &Edge{Delay: d, To: 2}
	rec := &recorder{eng: regions[2].Eng, pool: regions[2].Pool}
	e02.Dst = rec
	e12.Dst = rec
	r := NewRunner(regions, []*Edge{e02, e12}, []int{0, 1}, d)

	// Region 1 schedules before region 0 in wall-clock program order,
	// and region 0 sends two packets back to back — the arrival order
	// must still be region 0's pair (capture order) then region 1's.
	send := func(reg *Region, e *Edge, seq int) {
		p := reg.Pool.Get()
		p.Seq = seq
		reg.Eng.SchedulePacket(5*time.Millisecond, e, p)
	}
	send(regions[1], e12, 300)
	send(regions[0], e02, 100)
	send(regions[0], e02, 200)

	if err := r.Span(nil, 20*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	want := []arrival{{15 * time.Millisecond, 100}, {15 * time.Millisecond, 200}, {15 * time.Millisecond, 300}}
	if !reflect.DeepEqual(rec.log, want) {
		t.Fatalf("arrivals = %v, want %v", rec.log, want)
	}
}

// TestZeroLookaheadSingleRound: with no cut links the lookahead is 0
// (unbounded) and the whole span is one round.
func TestZeroLookaheadSingleRound(t *testing.T) {
	regions := []*Region{
		{Eng: sim.New(), Pool: packet.NewPool()},
		{Eng: sim.New(), Pool: packet.NewPool()},
	}
	for _, reg := range regions {
		reg.Eng.SetSeqStride(Stride)
	}
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		regions[0].Eng.Schedule(10*time.Millisecond, tick)
	}
	regions[0].Eng.Schedule(10*time.Millisecond, tick)
	r := NewRunner(regions, nil, nil, 0)
	barriers := 0
	if err := r.Span(nil, time.Second, func(time.Duration, uint64) { barriers++ }); err != nil {
		t.Fatal(err)
	}
	if barriers != 1 {
		t.Fatalf("barriers = %d, want 1 unbounded round", barriers)
	}
	if ticks != 100 {
		t.Fatalf("ticks = %d", ticks)
	}
}

// TestSpanCancelResume: a canceled context stops Span mid-round with
// all state intact, and a later Span finishes the run with the same
// arrivals as an uninterrupted one.
func TestSpanCancelResume(t *testing.T) {
	plainR, plain0, plain1 := pingPong(10*time.Millisecond, 90*time.Millisecond)
	if err := plainR.Span(nil, 100*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}

	r, rec0, rec1 := pingPong(10*time.Millisecond, 90*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.Span(ctx, 100*time.Millisecond, nil); err != context.Canceled {
		t.Fatalf("Span on canceled ctx = %v, want context.Canceled", err)
	}
	if r.Now() >= 100*time.Millisecond {
		t.Fatalf("canceled run reached the end: %v", r.Now())
	}
	if err := r.Span(nil, 100*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec0.log, plain0.log) || !reflect.DeepEqual(rec1.log, plain1.log) {
		t.Fatalf("resumed run diverges:\n%v %v\n%v %v", rec0.log, rec1.log, plain0.log, plain1.log)
	}
}
