// Package shard runs one simulation across several engines — one per
// topology region — with conservative time-window synchronization, and
// reproduces the serial event order exactly (DESIGN.md §12).
//
// # Scheme
//
// The topology partitioner (internal/topology.Partition) splits the
// switch graph into K regions; hosts follow their switches, so only
// switch-switch links are cut. Let L be the minimum propagation delay
// over the cut links. Execution proceeds in rounds of length at most L:
// round r runs every region independently over (t_{r-1}, t_r], then a
// barrier absorbs the packets that crossed a region boundary during the
// round. Conservatism is exactly the classic lookahead argument: a
// packet leaving region A at time s > t_{r-1} arrives at s + d >
// t_{r-1} + L >= t_r, i.e. strictly after the window every region just
// finished — no region ever receives an event in its past.
//
// # Determinism
//
// Running identically to the serial engine takes more than safety: the
// serial engine orders same-instant events by a single global sequence
// counter, which sharding removes. Three mechanisms restore it:
//
//   - Every region engine numbers local events with a stride
//     (sim.SetSeqStride): seq = raw*stride + (stride-1), leaving
//     stride-1 free slots below each locally scheduled event.
//   - During a round each engine keeps a clock log (sim.ClockLog): the
//     raw counter at the first executed event of each timestamp.
//   - At the barrier, cross-region packets are injected into the
//     destination engine with an interpolated seq c + m, where c is the
//     destination's counter after everything it executed at or before
//     the packet's send time (looked up in the clock log; the counter
//     steps by the stride per schedule, so [c, c+stride-1) is free) and
//     m counts messages interpolated into the same gap. Arrivals
//     destined for the same gap keep the order of a global sort by
//     (send time, sender lineage, sender region, capture order), which
//     is partition-independent.
//
// The net effect: every cross-region propagation event fires in the
// destination region at the same clock time and in the same relative
// order as its serial counterpart, so the whole run is event-for-event
// identical. Identity is pinned by the shard identity tests (both §4
// phase modes, every shipped scenario) and a randomized property test.
//
// Mid-run link events (core.Config.Events) need no shard machinery at
// all: their routing consequences are precomputed at build time
// (topology.ApplyLinkChange on a clone) and scheduled as one callback
// per affected switch on that switch's own region engine. Build-time
// scheduling gives each callback a seq below every same-time packet
// event — in serial and per-region engines alike — and propagation
// delays never change, so the cut-delay lookahead L stays valid for the
// whole run.
//
// # Ownership transfer
//
// Packet pointers never cross a region boundary. When a cut port's
// packet finishes transmission, the edge captures it by value, releases
// the pointer to the source region's pool, and at the barrier the
// destination region materializes it from its own pool. Steady state
// allocates nothing: edge buffers and the per-region pools retain their
// capacity.
package shard

import (
	"context"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

// Stride is the per-region seq stride: the number of seq slots per
// locally scheduled event, stride-1 of which are available for
// interpolating cross-region arrivals into one gap. 2^21 slots per gap
// is far beyond any physical burst (every absorbed arrival that
// executes schedules follow-up work, closing its gap), and leaves 2^43
// schedulable events per region per run before the counter wraps.
const Stride = 1 << 21

// batch is the event budget between cancellation checks inside a round,
// matching internal/core's progress batching.
const batch = 4096

// Region is one shard: an engine plus the synchronization state the
// coordinator keeps for it.
type Region struct {
	Eng *sim.Engine
	// Pool is the region's packet pool; nil under core's NoPool debug
	// mode (absorb then allocates).
	Pool *packet.Pool

	clock  sim.ClockLog
	endSeq uint64 // raw counter at the end of the current round
	outCtr uint64 // capture order across all of this region's out-edges
	// lastC/lastM continue seq interpolation across barriers: several
	// messages absorbed at the same destination counter c — possibly in
	// different rounds — take m = 0, 1, 2, ….
	lastC    uint64
	lastM    uint64
	haveLast bool
}

// Edge is the handoff for one direction of one cut link. It implements
// sim.PacketSink so a cut port's Config.Cross can point straight at it:
// Deliver captures the departing packet by value (with its send time,
// the sending engine's scheduling lineage, and a per-source-region
// capture counter), returns the pointer to the source pool, and leaves
// the copy buffered until the barrier.
type Edge struct {
	// Delay is the cut line's propagation delay.
	Delay time.Duration
	// To is the destination region index.
	To int
	// Dst is the receiver on the far side (the destination switch).
	Dst sim.PacketSink

	src  *Region // source region (set by NewRunner)
	from int
	buf  []msg
}

// msg is one captured packet plus its ordering key.
type msg struct {
	p        packet.Packet
	send     sim.Time // departure time (sending engine's clock at capture)
	schedAt  sim.Time // sending event's lineage, for partition-free ties
	schedAt2 sim.Time
	ctr      uint64 // capture order within the source region
}

// Deliver implements sim.PacketSink on the sending region's goroutine.
func (e *Edge) Deliver(p *packet.Packet) {
	r := e.src
	sa, sa2 := r.Eng.ExecLineage()
	e.buf = append(e.buf, msg{
		p: *p, send: r.Eng.Now(), schedAt: sa, schedAt2: sa2, ctr: r.outCtr,
	})
	r.outCtr++
	r.Pool.Put(p)
}

// inRef points at one buffered message during the barrier sort.
type inRef struct {
	e *Edge
	i int32
}

// Runner coordinates the regions: rounds, barriers, absorption.
type Runner struct {
	Regions []*Region
	Edges   []*Edge
	// Lookahead is the round length bound (min cut delay); 0 means the
	// regions never interact and rounds span the whole horizon.
	Lookahead time.Duration

	now    time.Duration
	cancel atomic.Bool
	// roundActive/roundEnd survive a mid-round cancellation so Span can
	// resume the same round without resetting the clock logs.
	roundActive bool
	roundEnd    time.Duration

	// workers holds one pre-built round closure per region and wg the
	// round barrier; both live on the Runner so launching a round
	// allocates nothing (`go f()` on an existing zero-argument func
	// value does not heap-allocate).
	workers []func()
	wg      sync.WaitGroup

	inbox []inRef
}

// NewRunner wires regions and edges. edges[i].To must index regions;
// from names each edge's source region.
func NewRunner(regions []*Region, edges []*Edge, from []int, lookahead time.Duration) *Runner {
	for i, e := range edges {
		e.src = regions[from[i]]
		e.from = from[i]
	}
	r := &Runner{Regions: regions, Edges: edges, Lookahead: lookahead}
	r.workers = make([]func(), len(regions))
	for i, reg := range regions {
		reg := reg
		r.workers[i] = func() {
			defer r.wg.Done()
			for !reg.Eng.RunUntilLoggedN(r.roundEnd, batch, &reg.clock) {
				if r.cancel.Load() {
					return
				}
			}
		}
	}
	return r
}

// Now returns the last barrier time.
func (r *Runner) Now() time.Duration { return r.now }

// Events returns the total number of events executed across all
// regions. At a barrier it equals the serial engine's Processed count.
func (r *Runner) Events() uint64 {
	var n uint64
	for _, reg := range r.Regions {
		n += reg.Eng.Processed()
	}
	return n
}

// Span advances every region to time t in lookahead-bounded rounds,
// calling atBarrier (if non-nil) after each completed barrier. A nil
// ctx never cancels; a canceled ctx makes Span return ctx.Err() at the
// next batch boundary, mid-round, with all state intact — a later Span
// resumes the interrupted round exactly where it stopped.
func (r *Runner) Span(ctx context.Context, t time.Duration, atBarrier func(now time.Duration, events uint64)) error {
	if ctx != nil {
		r.cancel.Store(false)
		stop := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				r.cancel.Store(true)
			case <-stop:
			}
		}()
		defer close(stop)
	}
	for r.now < t || r.roundActive {
		if !r.roundActive {
			end := t
			if r.Lookahead > 0 && r.now+r.Lookahead < t {
				end = r.now + r.Lookahead
			}
			r.roundEnd = end
			r.roundActive = true
			for _, reg := range r.Regions {
				reg.clock.Reset()
			}
		}
		r.runRound()
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		for _, reg := range r.Regions {
			reg.endSeq = reg.Eng.SeqCounter()
		}
		r.absorb()
		r.now = r.roundEnd
		r.roundActive = false
		if atBarrier != nil {
			atBarrier(r.now, r.Events())
		}
	}
	return nil
}

// runRound runs every region to r.roundEnd on its own goroutine and
// waits for all of them. The WaitGroup is the barrier: its Wait orders
// every region's writes (edge buffers, clock logs) before the
// coordinator's reads, and the launching go statements order the
// coordinator's roundEnd write before every worker's read.
func (r *Runner) runRound() {
	r.wg.Add(len(r.workers))
	for _, w := range r.workers {
		go w()
	}
	r.wg.Wait()
}

// absorb injects every packet captured this round into its destination
// region, in the partition-independent order described in the package
// comment, then clears the edge buffers.
func (r *Runner) absorb() {
	for dstIdx, dst := range r.Regions {
		r.inbox = r.inbox[:0]
		for _, e := range r.Edges {
			if e.To != dstIdx {
				continue
			}
			for i := range e.buf {
				r.inbox = append(r.inbox, inRef{e: e, i: int32(i)})
			}
		}
		if len(r.inbox) == 0 {
			continue
		}
		slices.SortFunc(r.inbox, func(a, b inRef) int {
			ma, mb := &a.e.buf[a.i], &b.e.buf[b.i]
			switch {
			case ma.send != mb.send:
				if ma.send < mb.send {
					return -1
				}
				return 1
			case ma.schedAt != mb.schedAt:
				if ma.schedAt < mb.schedAt {
					return -1
				}
				return 1
			case ma.schedAt2 != mb.schedAt2:
				if ma.schedAt2 < mb.schedAt2 {
					return -1
				}
				return 1
			case a.e.from != b.e.from:
				return a.e.from - b.e.from
			case ma.ctr != mb.ctr:
				if ma.ctr < mb.ctr {
					return -1
				}
				return 1
			}
			return 0
		})
		for _, ref := range r.inbox {
			m := &ref.e.buf[ref.i]
			// c is the destination's seq counter after everything it
			// executed at or before the send time: locally scheduled
			// events around the gap have seqs <= c-1 and >= c+Stride-1,
			// so the arrival slots in at c+m exactly where the serial
			// engine's shared counter would have put its propagation
			// event.
			c := dst.clock.SeqAfter(m.send, dst.endSeq)
			if dst.haveLast && c == dst.lastC {
				dst.lastM++
			} else {
				dst.lastC, dst.lastM, dst.haveLast = c, 0, true
			}
			if dst.lastM >= Stride-1 {
				panic("shard: seq interpolation gap exhausted")
			}
			q := dst.Pool.Get()
			*q = m.p
			// The serial propagation event was scheduled at the send
			// time by an exec whose own schedAt is the sender's lineage.
			dst.Eng.InjectPacketAt(m.send+ref.e.Delay, c+dst.lastM, m.send, m.schedAt, ref.e.Dst, q)
		}
	}
	for _, e := range r.Edges {
		e.buf = e.buf[:0]
	}
}
