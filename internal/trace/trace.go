// Package trace provides the time-series and event-log containers the
// instrumentation writes and the analysis reads: queue lengths, window
// sizes, drops, and packet departures.
//
// Series are step functions: a point (t, v) means the quantity took value
// v at time t and held it until the next point. That matches how queue
// lengths and congestion windows actually evolve, and lets the analysis
// resample them onto uniform grids without interpolation artifacts.
package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tahoedyn/internal/packet"
)

// Point is one sample of a step-function time series.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only step-function time series.
type Series struct {
	// Name labels the series in plots and TSV exports.
	Name   string
	Points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// NewSeriesCap returns an empty named series with room for capacity
// points before the first append reallocates. Instrumentation that knows
// roughly how many samples a run will produce (one per queue change, one
// per ACK, ...) reserves up front so the measurement path never grows the
// backing array mid-run.
func NewSeriesCap(name string, capacity int) *Series {
	if capacity < 0 {
		capacity = 0
	}
	return &Series{Name: name, Points: make([]Point, 0, capacity)}
}

// Append records that the series took value v at time t. Appends must be
// in nondecreasing time order; equal-time appends overwrite so the series
// stores the final value at each instant.
func (s *Series) Append(t time.Duration, v float64) {
	if n := len(s.Points); n > 0 {
		if last := s.Points[n-1]; t < last.T {
			panic(fmt.Sprintf("trace: series %q append at %v before last point %v", s.Name, t, last.T))
		} else if t == last.T {
			s.Points[n-1].V = v
			return
		}
	}
	s.Points = append(s.Points, Point{t, v})
}

// Len returns the number of stored points.
func (s *Series) Len() int { return len(s.Points) }

// Last returns the final point of the series, and false when it is
// empty. It is the O(1) "where did this trace end up" accessor the
// metrics export uses.
func (s *Series) Last() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// At returns the series value at time t: the value of the last point at
// or before t, or 0 before the first point.
func (s *Series) At(t time.Duration) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.Points[i-1].V
}

// Max returns the maximum value in [from, to], accounting for the value
// held entering the window. It returns 0 for an empty series.
func (s *Series) Max(from, to time.Duration) float64 {
	max := s.At(from)
	for _, p := range s.window(from, to) {
		if p.V > max {
			max = p.V
		}
	}
	return max
}

// Min returns the minimum value in [from, to], like Max.
func (s *Series) Min(from, to time.Duration) float64 {
	min := s.At(from)
	for _, p := range s.window(from, to) {
		if p.V < min {
			min = p.V
		}
	}
	return min
}

// window returns the points with from < T <= to.
func (s *Series) window(from, to time.Duration) []Point {
	lo := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > from })
	hi := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > to })
	return s.Points[lo:hi]
}

// Cursor walks a series at nondecreasing query times in amortized O(1)
// per query, where At would pay a binary search each call. Analysis
// loops that scan a series in time order (resampling, TSV export,
// correlation grids) should take a cursor once and advance it.
//
// The zero Cursor is not usable; obtain one from Series.Cursor. The
// series must not be appended to while a cursor is in use.
type Cursor struct {
	pts []Point
	i   int // number of points consumed: pts[:i] have T <= last query
}

// Cursor returns a cursor positioned before the first point.
func (s *Series) Cursor() Cursor { return Cursor{pts: s.Points} }

// At returns the series value at time t, like Series.At, but t must be
// >= every earlier query on this cursor. The cursor only moves forward,
// so a full time-ordered scan costs O(points + queries) in total.
func (c *Cursor) At(t time.Duration) float64 {
	for c.i < len(c.pts) && c.pts[c.i].T <= t {
		c.i++
	}
	if c.i == 0 {
		return 0
	}
	return c.pts[c.i-1].V
}

// Sample resamples the step function onto a uniform grid of the given
// step over [from, to), returning one value per grid cell. The grid is
// walked with a cursor, so the cost is linear in points + cells rather
// than cells × log(points).
func (s *Series) Sample(from, to time.Duration, step time.Duration) []float64 {
	if step <= 0 {
		panic("trace: non-positive sample step")
	}
	n := int((to - from) / step)
	if n < 0 {
		n = 0
	}
	out := make([]float64, n)
	cur := s.Cursor()
	for i := range out {
		out[i] = cur.At(from + time.Duration(i)*step)
	}
	return out
}

// TimeAverage integrates the step function over [from, to] and divides by
// the window length, giving the time-weighted mean (e.g. mean queue
// length).
func (s *Series) TimeAverage(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	var sum float64
	cur := s.At(from)
	last := from
	for _, p := range s.window(from, to) {
		sum += cur * float64(p.T-last)
		cur = p.V
		last = p.T
	}
	sum += cur * float64(to-last)
	return sum / float64(to-from)
}

// Correlate computes the Pearson correlation of two series resampled on a
// shared grid. It returns 0 when either series is constant over the
// window (correlation undefined).
func Correlate(a, b *Series, from, to, step time.Duration) float64 {
	x := a.Sample(from, to, step)
	y := b.Sample(from, to, step)
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += x[i]
		my += y[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// DropEvent records one packet discarded by a drop-tail queue.
type DropEvent struct {
	T    time.Duration
	Conn int
	Seq  int
	Kind packet.Kind
	// Port names the output port that dropped the packet.
	Port string
}

// Departure records one packet's last bit leaving a traced port, in
// departure order — the raw material of the clustering analysis.
type Departure struct {
	T    time.Duration
	Conn int
	Kind packet.Kind
	Seq  int
}
