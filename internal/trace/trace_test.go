package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestAppendAndAt(t *testing.T) {
	s := NewSeries("q")
	s.Append(sec(1), 5)
	s.Append(sec(3), 7)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0}, {sec(0.5), 0}, {sec(1), 5}, {sec(2), 5}, {sec(3), 7}, {sec(10), 7},
	}
	for _, c := range cases {
		if got := s.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestAppendEqualTimeOverwrites(t *testing.T) {
	s := NewSeries("q")
	s.Append(sec(1), 5)
	s.Append(sec(1), 9)
	if s.Len() != 1 || s.At(sec(1)) != 9 {
		t.Fatalf("equal-time append: len=%d at=%v", s.Len(), s.At(sec(1)))
	}
}

func TestAppendBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-order append")
		}
	}()
	s := NewSeries("q")
	s.Append(sec(2), 1)
	s.Append(sec(1), 1)
}

func TestMaxMinIncludeValueEnteringWindow(t *testing.T) {
	s := NewSeries("q")
	s.Append(sec(0), 10)
	s.Append(sec(5), 2)
	// Window [2,4]: no points inside, value entering is 10.
	if got := s.Max(sec(2), sec(4)); got != 10 {
		t.Fatalf("Max = %v, want 10", got)
	}
	if got := s.Min(sec(2), sec(4)); got != 10 {
		t.Fatalf("Min = %v, want 10", got)
	}
	if got := s.Min(sec(2), sec(6)); got != 2 {
		t.Fatalf("Min over drop = %v, want 2", got)
	}
}

func TestSample(t *testing.T) {
	s := NewSeries("q")
	s.Append(sec(0), 1)
	s.Append(sec(2), 3)
	got := s.Sample(sec(0), sec(4), sec(1))
	want := []float64{1, 1, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sample = %v, want %v", got, want)
		}
	}
}

// Property: a cursor advanced over any nondecreasing query sequence
// agrees exactly with the binary-search At.
func TestCursorMatchesAt(t *testing.T) {
	f := func(raw []uint16, queries []uint16) bool {
		s := NewSeries("q")
		last := time.Duration(-1)
		for i, r := range raw {
			tm := time.Duration(r) * time.Millisecond
			if tm <= last {
				tm = last + time.Millisecond
			}
			last = tm
			s.Append(tm, float64(i))
		}
		// Sort the queries to make them nondecreasing.
		qs := make([]time.Duration, len(queries))
		for i, q := range queries {
			qs[i] = time.Duration(q) * time.Millisecond
		}
		for i := 1; i < len(qs); i++ {
			for j := i; j > 0 && qs[j] < qs[j-1]; j-- {
				qs[j], qs[j-1] = qs[j-1], qs[j]
			}
		}
		cur := s.Cursor()
		for _, q := range qs {
			if cur.At(q) != s.At(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCursorRepeatedQueries(t *testing.T) {
	s := NewSeries("q")
	s.Append(sec(1), 5)
	s.Append(sec(3), 7)
	cur := s.Cursor()
	for _, c := range []struct {
		at   time.Duration
		want float64
	}{{0, 0}, {0, 0}, {sec(1), 5}, {sec(1), 5}, {sec(2), 5}, {sec(3), 7}, {sec(3), 7}, {sec(9), 7}} {
		if got := cur.At(c.at); got != c.want {
			t.Fatalf("cursor At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestNewSeriesCapReservesWithoutGrowth(t *testing.T) {
	s := NewSeriesCap("q", 100)
	if s.Len() != 0 {
		t.Fatalf("new series has %d points", s.Len())
	}
	if got := cap(s.Points); got < 100 {
		t.Fatalf("cap = %d, want >= 100", got)
	}
	base := &s.Points[:1][0]
	for i := 0; i < 100; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i))
	}
	if &s.Points[0] != base {
		t.Fatal("backing array reallocated within reserved capacity")
	}
	if got := cap(NewSeriesCap("q", -5).Points); got != 0 {
		t.Fatalf("negative capacity reserved %d points", got)
	}
}

func TestTimeAverage(t *testing.T) {
	s := NewSeries("q")
	s.Append(sec(0), 0)
	s.Append(sec(1), 10)
	s.Append(sec(3), 0)
	// [0,4]: 1s at 0, 2s at 10, 1s at 0 → mean 5.
	if got := s.TimeAverage(sec(0), sec(4)); got != 5 {
		t.Fatalf("TimeAverage = %v, want 5", got)
	}
	if got := s.TimeAverage(sec(4), sec(4)); got != 0 {
		t.Fatalf("empty window TimeAverage = %v, want 0", got)
	}
}

func TestCorrelateInPhaseAndOutOfPhase(t *testing.T) {
	a := NewSeries("a")
	b := NewSeries("b")
	c := NewSeries("c")
	for i := 0; i < 100; i++ {
		v := math.Sin(float64(i) / 5)
		a.Append(sec(float64(i)), v)
		b.Append(sec(float64(i)), 2*v+1) // same phase, different scale
		c.Append(sec(float64(i)), -v)    // opposite phase
	}
	if got := Correlate(a, b, 0, sec(100), sec(1)); got < 0.99 {
		t.Fatalf("in-phase correlation = %v, want ≈1", got)
	}
	if got := Correlate(a, c, 0, sec(100), sec(1)); got > -0.99 {
		t.Fatalf("out-of-phase correlation = %v, want ≈-1", got)
	}
}

func TestCorrelateConstantSeriesIsZero(t *testing.T) {
	a := NewSeries("a")
	b := NewSeries("b")
	for i := 0; i < 10; i++ {
		a.Append(sec(float64(i)), 1)
		b.Append(sec(float64(i)), float64(i))
	}
	if got := Correlate(a, b, 0, sec(10), sec(1)); got != 0 {
		t.Fatalf("correlation with constant = %v, want 0", got)
	}
}

// Property: TimeAverage always lies within [Min, Max] of the window.
func TestTimeAverageBoundedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		s := NewSeries("p")
		for i, r := range raw {
			s.Append(sec(float64(i)), float64(r))
		}
		from, to := sec(0), sec(float64(len(raw)))
		avg := s.TimeAverage(from, to)
		return avg >= s.Min(from, to)-1e-9 && avg <= s.Max(from, to)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: At is idempotent with Sample — sampling at exact point times
// returns the stored values.
func TestSampleMatchesAtProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		s := NewSeries("p")
		for i, r := range raw {
			s.Append(sec(float64(i)), float64(r))
		}
		for i := range raw {
			if s.At(sec(float64(i))) != float64(raw[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
