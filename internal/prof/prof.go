// Package prof wires the standard Go profilers into the command-line
// tools. It exists so every command exposes the same three flags —
// -cpuprofile, -memprofile, -http — with the same semantics, and so the
// commands' main functions stay structured as run() + os.Exit (profiles
// are flushed by the returned stop function, which a bare os.Exit would
// skip).
package prof

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// Config names the profiling outputs a command wants. The zero value
// disables everything, so commands can pass their flag values through
// unconditionally.
type Config struct {
	// CPUFile receives a CPU profile covering Start..stop.
	CPUFile string
	// MemFile receives a heap profile taken at stop, after a GC, so it
	// shows live steady-state memory rather than garbage.
	MemFile string
	// HTTPAddr, when non-empty, serves net/http/pprof on this address
	// (e.g. "localhost:6060") for live inspection of long runs.
	HTTPAddr string
}

// Start begins the requested profilers. The returned stop function
// flushes and closes them; callers must run it on every exit path that
// should produce profiles (deferring it inside run() before os.Exit is
// the intended pattern). Start never returns a nil stop.
func Start(cfg Config) (stop func() error, err error) {
	var cpuFile *os.File
	if cfg.CPUFile != "" {
		cpuFile, err = os.Create(cfg.CPUFile)
		if err != nil {
			return noop, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return noop, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if cfg.HTTPAddr != "" {
		go func() {
			// The server runs for the life of the process; an unusable
			// address should be loud but not fatal to the simulation.
			if err := http.ListenAndServe(cfg.HTTPAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "prof: pprof server:", err)
			}
		}()
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if cfg.MemFile != "" {
			f, err := os.Create(cfg.MemFile)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			runtime.GC() // profile live objects, not collectible garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("memprofile: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}

func noop() error { return nil }

// Flags is the conventional flag trio. Commands register it with
// AddFlags and pass the result to Start after flag.Parse.
type Flags struct {
	CPU, Mem, HTTP *string
}

// AddFlags registers -cpuprofile, -memprofile, and -http on the default
// flag set via the provided registrar (usually flag.String).
func AddFlags(str func(name, value, usage string) *string) Flags {
	return Flags{
		CPU:  str("cpuprofile", "", "write a CPU profile of the run to `file`"),
		Mem:  str("memprofile", "", "write a heap profile to `file` on exit"),
		HTTP: str("http", "", "serve net/http/pprof on `addr` (e.g. localhost:6060)"),
	}
}

// Config converts parsed flag values into a Start configuration.
func (f Flags) Config() Config {
	return Config{CPUFile: *f.CPU, MemFile: *f.Mem, HTTPAddr: *f.HTTP}
}
