package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tahoedyn/internal/core"
	"tahoedyn/internal/link"
)

// The canonical form of a scenario exercising every new object: a
// scenario-wide queue, a per-link behavior override, and a non-TCP
// source. Decode∘Encode must reproduce it byte for byte.
const extensionsGolden = `{
  "topology": {
    "switches": 2,
    "links": [
      {
        "a": 0,
        "b": 1,
        "queue": {
          "policy": "fair-queue"
        },
        "behavior": {
          "good_to_bad": 0.01,
          "bad_to_good": 0.3,
          "bad_loss": 0.5
        }
      }
    ],
    "hosts": [
      {
        "switch": 0
      },
      {
        "switch": 1
      }
    ]
  },
  "trunk_delay": "50ms",
  "buffer": 20,
  "queue": {
    "policy": "red",
    "min_th": 5,
    "max_th": 15,
    "max_p": 0.02,
    "wq": 0.002
  },
  "behavior": {
    "loss": 0.01,
    "jitter": "2ms"
  },
  "conns": [
    {
      "src": 0,
      "dst": 1,
      "start": "0s"
    },
    {
      "src": 1,
      "dst": 0,
      "start": "0s",
      "source": {
        "kind": "onoff",
        "rate": 500000,
        "size": 1000,
        "on_mean": "500ms",
        "off_mean": "500ms"
      }
    }
  ]
}
`

// TestExtensionsGoldenFixedPoint pins the canonical encoding of the
// queue/behavior/source objects: Decode then Encode is the identity on
// the golden document, and Canonical is idempotent on it.
func TestExtensionsGoldenFixedPoint(t *testing.T) {
	f, err := Decode(strings.NewReader(extensionsGolden))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != extensionsGolden {
		t.Errorf("Decode∘Encode is not the identity on the golden form:\n--- got ---\n%s--- want ---\n%s",
			buf.String(), extensionsGolden)
	}
	canon, err := Canonical([]byte(extensionsGolden))
	if err != nil {
		t.Fatal(err)
	}
	if string(canon) != extensionsGolden {
		t.Error("Canonical changed an already-canonical document")
	}
}

// TestExtensionsConfigConversion checks the parsed golden document
// lands in the right core.Config fields.
func TestExtensionsConfigConversion(t *testing.T) {
	cfg, err := Parse(strings.NewReader(extensionsGolden))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Queue == nil || cfg.Queue.Policy != link.PolicyRED || cfg.Queue.MinTh != 5 || cfg.Queue.MaxTh != 15 {
		t.Fatalf("Queue = %+v, want red min=5 max=15", cfg.Queue)
	}
	if cfg.Behavior == nil || cfg.Behavior.Loss != 0.01 || cfg.Behavior.Jitter != 2*time.Millisecond {
		t.Fatalf("Behavior = %+v, want loss=0.01 jitter=2ms", cfg.Behavior)
	}
	if qs := cfg.LinkQueue[0]; qs == nil || qs.Policy != link.PolicyFairQueue {
		t.Fatalf("LinkQueue[0] = %+v, want fair-queue", qs)
	}
	if bs := cfg.LinkBehavior[0]; bs == nil || bs.GoodToBad != 0.01 || bs.BadToGood != 0.3 || bs.BadLoss != 0.5 {
		t.Fatalf("LinkBehavior[0] = %+v, want ge=0.01/0.3/0.5", bs)
	}
	if cfg.Conns[0].Source != nil {
		t.Fatalf("conns[0].Source = %+v, want nil (TCP)", cfg.Conns[0].Source)
	}
	src := cfg.Conns[1].Source
	if src == nil || src.Kind != core.SourceOnOff || src.Rate != 500_000 || src.Size != 1000 ||
		src.OnMean != 500*time.Millisecond || src.OffMean != 500*time.Millisecond {
		t.Fatalf("conns[1].Source = %+v, want onoff 500kb/s 1000B 500ms/500ms", src)
	}
}

// TestExtensionsUnknownFieldPaths pins the dotted-path unknown-field
// reporting inside the new nested objects.
func TestExtensionsUnknownFieldPaths(t *testing.T) {
	in := `{
  "trunk_delay": "10ms",
  "queue": {"policy": "red", "min_thh": 5},
  "behavior": {"loss": 0.01, "jittre": "2ms"},
  "topology": {
    "switches": 2,
    "links": [{"a": 0, "b": 1, "queue": {"polucy": "red"}}],
    "hosts": [{"switch": 0}, {"switch": 1}]
  },
  "conns": [{"src": 0, "dst": 1, "source": {"kind": "cbr", "rte": 1000}}]
}`
	_, err := Decode(strings.NewReader(in))
	if err == nil {
		t.Fatal("strict decode accepted unknown fields in nested objects")
	}
	for _, path := range []string{
		`"queue.min_thh"`, `"behavior.jittre"`,
		`"topology.links[0].queue.polucy"`, `"conns[0].source.rte"`,
	} {
		if !strings.Contains(err.Error(), path) {
			t.Errorf("error does not name %s:\n%v", path, err)
		}
	}
}

// TestExtensionsParseErrors covers the validation added with the new
// objects: surface conflicts, bad parameters, and bad source kinds.
func TestExtensionsParseErrors(t *testing.T) {
	cases := map[string]string{
		"queue plus legacy discard": `{"trunk_delay":"1s","buffer":20,"discard":"random-drop",
			"queue":{"policy":"red"},"conns":[{"src":0,"dst":1}]}`,
		"queue plus legacy discipline": `{"trunk_delay":"1s","buffer":20,"discipline":"fair-queue",
			"queue":{"policy":"drop-tail"},"conns":[{"src":0,"dst":1}]}`,
		"unknown queue policy": `{"trunk_delay":"1s","buffer":20,
			"queue":{"policy":"lifo"},"conns":[{"src":0,"dst":1}]}`,
		"red thresholds on drop-tail": `{"trunk_delay":"1s","buffer":20,
			"queue":{"policy":"drop-tail","min_th":5},"conns":[{"src":0,"dst":1}]}`,
		"inverted red thresholds": `{"trunk_delay":"1s","buffer":20,
			"queue":{"policy":"red","min_th":15,"max_th":5},"conns":[{"src":0,"dst":1}]}`,
		"both loss models": `{"trunk_delay":"1s","buffer":20,
			"behavior":{"loss":0.1,"good_to_bad":0.1,"bad_to_good":0.1,"bad_loss":0.5},
			"conns":[{"src":0,"dst":1}]}`,
		"reorder without jitter": `{"trunk_delay":"1s","buffer":20,
			"behavior":{"reorder":true},"conns":[{"src":0,"dst":1}]}`,
		"bad jitter duration": `{"trunk_delay":"1s","buffer":20,
			"behavior":{"jitter":"fast"},"conns":[{"src":0,"dst":1}]}`,
		"missing trace file": `{"trunk_delay":"1s","buffer":20,
			"behavior":{"rate_trace":"no/such/file.rt"},"conns":[{"src":0,"dst":1}]}`,
		"source without kind": `{"trunk_delay":"1s","buffer":20,
			"conns":[{"src":0,"dst":1,"source":{"rate":1000}}]}`,
		"unknown source kind": `{"trunk_delay":"1s","buffer":20,
			"conns":[{"src":0,"dst":1,"source":{"kind":"poisson","rate":1000}}]}`,
		"cbr without rate": `{"trunk_delay":"1s","buffer":20,
			"conns":[{"src":0,"dst":1,"source":{"kind":"cbr"}}]}`,
		"cbr with onoff means": `{"trunk_delay":"1s","buffer":20,
			"conns":[{"src":0,"dst":1,"source":{"kind":"cbr","rate":1000,"on_mean":"1s"}}]}`,
		"onoff without means": `{"trunk_delay":"1s","buffer":20,
			"conns":[{"src":0,"dst":1,"source":{"kind":"onoff","rate":1000}}]}`,
	}
	for name, j := range cases {
		if _, err := Parse(strings.NewReader(j)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestLegacyStringsStillParse pins the deprecated discard/discipline
// sugar: old spellings keep working and land in the legacy enums, not
// the structured Queue surface.
func TestLegacyStringsStillParse(t *testing.T) {
	j := `{"trunk_delay":"1s","buffer":20,"discard":"random-drop","discipline":"fair-queue",
	       "conns":[{"src":0,"dst":1}]}`
	cfg, err := Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Discard != core.RandomDrop || cfg.Discipline != core.FairQueue {
		t.Fatalf("legacy enums = %v/%v, want RandomDrop/FairQueue", cfg.Discard, cfg.Discipline)
	}
	if cfg.Queue != nil {
		t.Fatalf("legacy strings populated Queue = %+v; they must stay on the enum surface", cfg.Queue)
	}
}
