// Package scenario reads and writes simulation configurations as JSON,
// with human-readable durations ("10ms", "1s") and named policies
// ("drop-tail", "random-drop", "fifo", "fair-queue"). It exists so
// downstream users can keep scenarios in files instead of Go code:
//
//	tahoe-sim -config two-way.json
//
// Encoding is canonical: Encode always produces the same bytes for the
// same File, and Decode∘Encode is a fixed point on canonical files. The
// golden tests pin the shipped scenarios to this form.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
	"time"

	"tahoedyn/internal/core"
	"tahoedyn/internal/link"
	"tahoedyn/internal/topology"
)

// File is the JSON representation of a core.Config.
type File struct {
	// Switches on the line; 0 means 2 (the dumbbell). Ignored when
	// Topology is set.
	Switches int `json:"switches,omitempty"`
	// Topology replaces the default switch line with an arbitrary graph.
	Topology *Topology `json:"topology,omitempty"`
	// TrunkBandwidth in bits/s; 0 means the paper's 50000.
	TrunkBandwidth int64 `json:"trunk_bandwidth,omitempty"`
	// TrunkDelay is the propagation delay τ, e.g. "10ms".
	TrunkDelay string `json:"trunk_delay"`
	// Buffer in packets; 0 or "infinite" semantics: <= 0 is unbounded.
	Buffer int `json:"buffer"`
	// AccessBandwidth/AccessDelay/HostProcessing default to the paper's
	// values when omitted.
	AccessBandwidth int64  `json:"access_bandwidth,omitempty"`
	AccessDelay     string `json:"access_delay,omitempty"`
	HostProcessing  string `json:"host_processing,omitempty"`
	// Discard is "drop-tail" (default) or "random-drop". Deprecated
	// sugar for the structured Queue object; kept for old files.
	Discard string `json:"discard,omitempty"`
	// Discipline is "fifo" (default) or "fair-queue". Deprecated sugar
	// for Queue, like Discard.
	Discipline string `json:"discipline,omitempty"`
	// Queue selects the queue discipline of every switch output port:
	// the structured successor of Discard/Discipline. Setting it
	// alongside a non-default Discard/Discipline is an error.
	Queue *Queue `json:"queue,omitempty"`
	// Behavior applies a link behavior (stochastic loss, jitter,
	// trace-driven rate replay) to every trunk port.
	Behavior *Behavior `json:"behavior,omitempty"`
	// DataSize/AckSize in bytes; zero DataSize means 500. AckSize is a
	// pointer so that an explicit 0 (the zero-length-ACK conjecture
	// experiments) is distinguishable from "omitted, use the paper's 50".
	// (The pre-pointer spelling "ack_size_zero" is gone: the strict
	// parser rejects it with a migration hint, the lenient parser still
	// maps it to "ack_size": 0.)
	DataSize int  `json:"data_size,omitempty"`
	AckSize  *int `json:"ack_size,omitempty"`

	Conns []Conn `json:"conns"`

	// Events lists mid-run link changes — bandwidth steps and link-down
	// events — applied in time order. Runs with events remain
	// byte-identical at every shard count.
	Events []Event `json:"events,omitempty"`

	// Shards partitions the run into this many regions executed in
	// parallel (0 = the process default, normally serial). Like the
	// scheduler choice it is a wall-clock knob only: results are
	// byte-identical at any shard count.
	Shards int `json:"shards,omitempty"`
	// Regions explicitly assigns switches to regions (regions[r] lists
	// the switches of region r, covering every switch exactly once),
	// overriding the automatic partitioner; its length fixes the shard
	// count.
	Regions [][]int `json:"regions,omitempty"`

	Seed        int64  `json:"seed,omitempty"`
	StartSpread string `json:"start_spread,omitempty"`
	Warmup      string `json:"warmup,omitempty"`
	Duration    string `json:"duration,omitempty"`
}

// Topology is the JSON representation of a topology.Graph: either a
// named generator or an explicit switch/link list, optionally with
// explicit host placement and route overrides.
type Topology struct {
	// Generator names a built-in graph: "dumbbell", "chain",
	// "parking-lot", "ba" (Barabási–Albert scale-free), or "waxman"
	// (random geometric). Mutually exclusive with Switches/Links.
	Generator string `json:"generator,omitempty"`
	// Size parameterizes the generator: switches for "chain", "ba", and
	// "waxman", bottleneck hops for "parking-lot". Rejected for
	// "dumbbell".
	Size int `json:"size,omitempty"`
	// M is the "ba" generator's attachment count (links added per
	// joining switch); Seed drives the "ba" and "waxman" generators'
	// randomness. Each is rejected on generators that do not use it, so
	// a misplaced field fails loudly instead of silently changing the
	// graph.
	M    int   `json:"m,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// Switches/Links describe an explicit graph.
	Switches int        `json:"switches,omitempty"`
	Links    []TopoLink `json:"links,omitempty"`
	// Hosts places hosts on switches; empty means one host per switch.
	Hosts []TopoHost `json:"hosts,omitempty"`
	// Routes override the shortest-path next hop for (at, dst) pairs.
	Routes []TopoRoute `json:"routes,omitempty"`
}

// TopoLink is one duplex link. Zero Bandwidth/Delay/Buffer inherit the
// scenario's trunk defaults; Buffer -1 means unbounded. Queue and
// Behavior override the scenario-wide objects for this link (both
// directions).
type TopoLink struct {
	A         int       `json:"a"`
	B         int       `json:"b"`
	Bandwidth int64     `json:"bandwidth,omitempty"`
	Delay     string    `json:"delay,omitempty"`
	Buffer    int       `json:"buffer,omitempty"`
	Queue     *Queue    `json:"queue,omitempty"`
	Behavior  *Behavior `json:"behavior,omitempty"`
}

// Queue is the JSON representation of a link.QueueSpec: a queue
// discipline by name plus the RED thresholds when policy is "red".
type Queue struct {
	// Policy is "drop-tail", "random-drop", "fair-queue", or "red".
	Policy string `json:"policy"`
	// MinTh/MaxTh/MaxP/Wq parameterize "red" (zero takes the RED
	// defaults); they are rejected under any other policy.
	MinTh float64 `json:"min_th,omitempty"`
	MaxTh float64 `json:"max_th,omitempty"`
	MaxP  float64 `json:"max_p,omitempty"`
	Wq    float64 `json:"wq,omitempty"`
}

// Behavior is the JSON representation of a link.BehaviorSpec.
type Behavior struct {
	// Loss is a Bernoulli per-packet loss probability.
	Loss float64 `json:"loss,omitempty"`
	// GoodToBad/BadToGood/BadLoss select the Gilbert-Elliott bursty loss
	// channel (mutually exclusive with Loss).
	GoodToBad float64 `json:"good_to_bad,omitempty"`
	BadToGood float64 `json:"bad_to_good,omitempty"`
	BadLoss   float64 `json:"bad_loss,omitempty"`
	// Jitter bounds the uniform extra delay, e.g. "5ms".
	Jitter string `json:"jitter,omitempty"`
	// Reorder lets jittered packets overtake each other.
	Reorder bool `json:"reorder,omitempty"`
	// RateTrace is the path of a bandwidth-replay schedule file (one
	// "<duration> <bits/s>" step per line; the schedule loops). Loaded
	// when the scenario is converted to a Config.
	RateTrace string `json:"rate_trace,omitempty"`
}

// TopoHost places one host on a switch.
type TopoHost struct {
	Switch int `json:"switch"`
}

// TopoRoute forces packets for host dst arriving at switch at to leave
// toward neighbor switch via.
type TopoRoute struct {
	At  int `json:"at"`
	Dst int `json:"dst"`
	Via int `json:"via"`
}

// Event is the JSON representation of a core.LinkEvent: a mid-run
// change to one trunk link. Exactly one of Bandwidth/Down is set.
type Event struct {
	// T is the simulation time the change takes effect, e.g. "120s".
	T string `json:"t"`
	// Link is the topology link index (for the default chain, link i
	// joins switches i and i+1).
	Link int `json:"link"`
	// Bandwidth is the link's new rate in bits/s.
	Bandwidth int64 `json:"bandwidth,omitempty"`
	// Down removes the link from routing; packets already queued on or
	// flying over it still deliver.
	Down bool `json:"down,omitempty"`
}

// Conn is the JSON representation of a core.ConnSpec.
type Conn struct {
	Src              int    `json:"src"`
	Dst              int    `json:"dst"`
	MaxWnd           int    `json:"max_wnd,omitempty"`
	FixedWnd         int    `json:"fixed_wnd,omitempty"`
	DelayedAck       bool   `json:"delayed_ack,omitempty"`
	Reno             bool   `json:"reno,omitempty"`
	OriginalIncrease bool   `json:"original_increase,omitempty"`
	Pace             string `json:"pace,omitempty"`
	ExtraDelay       string `json:"extra_delay,omitempty"`
	// Start is a duration, or "random" (the default) for a random start.
	Start string `json:"start,omitempty"`
	// Source replaces the TCP endpoints with a non-TCP generator.
	Source *Source `json:"source,omitempty"`
}

// Source is the JSON representation of a core.SourceSpec: a non-TCP
// traffic generator in place of the connection's TCP endpoints.
type Source struct {
	// Kind is "cbr" or "onoff" ("tcp" keeps the default endpoints).
	Kind string `json:"kind"`
	// Rate is the offered bit rate while active.
	Rate int64 `json:"rate,omitempty"`
	// Size is the packet size in bytes; 0 means data_size.
	Size int `json:"size,omitempty"`
	// OnMean/OffMean are the exponential period means of "onoff",
	// e.g. "500ms".
	OnMean  string `json:"on_mean,omitempty"`
	OffMean string `json:"off_mean,omitempty"`
}

// Decode reads a JSON scenario file without converting it: the result
// re-encodes to the same bytes when the input is canonical.
//
// Decode is strict about field names: every key in the document that no
// File field declares is an error, and — unlike encoding/json's
// DisallowUnknownFields, which stops at the first offender — the
// returned error is the errors.Join of one error per unknown field,
// each naming its full path (e.g. "topology.links[0].bandwith"). Use
// DecodeLenient to load a file from a newer or foreign producer anyway.
func Decode(r io.Reader) (*File, error) {
	f, unknown, err := decode(r)
	if err != nil {
		return nil, err
	}
	if len(unknown) > 0 {
		errs := make([]error, len(unknown))
		for i, path := range unknown {
			if path == "ack_size_zero" {
				errs[i] = fmt.Errorf("scenario: field \"ack_size_zero\" was removed; write \"ack_size\": 0 instead")
				continue
			}
			errs[i] = fmt.Errorf("scenario: unknown field %q", path)
		}
		return nil, errors.Join(errs...)
	}
	return f, nil
}

// DecodeLenient reads a JSON scenario file, ignoring unknown fields
// instead of rejecting them. The paths of the ignored fields are
// returned so callers can warn (tahoe-sim -lenient prints them to
// stderr). Syntax and type errors are still errors.
func DecodeLenient(r io.Reader) (*File, []string, error) {
	return decode(r)
}

// decode is the shared strict/lenient reader: unmarshal leniently, then
// diff the document's keys against the File schema.
func decode(r io.Reader) (*File, []string, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	var unknown []string
	unknownFields(reflect.TypeOf(File{}), doc, "", &unknown)
	// Legacy mapping for the lenient path: the removed "ack_size_zero"
	// boolean still loads as "ack_size": 0. It stays in the unknown list,
	// so strict decoding rejects it (with a migration hint) and lenient
	// callers see it among the ignored paths they warn about.
	if m, ok := doc.(map[string]any); ok {
		if v, ok := m["ack_size_zero"].(bool); ok && v && f.AckSize == nil {
			zero := 0
			f.AckSize = &zero
		}
	}
	return &f, unknown, nil
}

// unknownFields walks the decoded JSON document alongside the target Go
// type and appends the path of every object key the type has no field
// for. Paths use dotted/indexed notation rooted at the document
// ("topology.links[0].bandwith"). Keys within one object are reported
// in sorted order (JSON object keys are unordered after decoding).
func unknownFields(t reflect.Type, doc any, path string, out *[]string) {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	switch t.Kind() {
	case reflect.Struct:
		obj, ok := doc.(map[string]any)
		if !ok {
			return
		}
		fields := jsonFields(t)
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			child := path + "." + k
			if path == "" {
				child = k
			}
			ft, ok := fields[k]
			if !ok {
				*out = append(*out, child)
				continue
			}
			unknownFields(ft, obj[k], child, out)
		}
	case reflect.Slice, reflect.Array:
		arr, ok := doc.([]any)
		if !ok {
			return
		}
		for i, el := range arr {
			unknownFields(t.Elem(), el, fmt.Sprintf("%s[%d]", path, i), out)
		}
	}
}

// jsonFields maps a struct's JSON key names to their field types,
// honoring `json:"name,opts"` tags the way encoding/json does for the
// flat, tag-complete structs this package declares.
func jsonFields(t reflect.Type) map[string]reflect.Type {
	fields := make(map[string]reflect.Type, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		if !sf.IsExported() {
			continue
		}
		name := sf.Name
		if tag := sf.Tag.Get("json"); tag != "" {
			tagName, _, _ := strings.Cut(tag, ",")
			if tagName == "-" {
				continue
			}
			if tagName != "" {
				name = tagName
			}
		}
		fields[name] = sf.Type
	}
	return fields
}

// Encode writes the canonical JSON form: two-space indent, fixed field
// order, trailing newline. Encoding the result of Decode reproduces a
// canonical input byte for byte.
func (f *File) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Parse reads a JSON scenario and converts it to a runnable Config.
// Unknown fields are errors, all of them reported at once; see Decode.
func Parse(r io.Reader) (core.Config, error) {
	f, err := Decode(r)
	if err != nil {
		return core.Config{}, err
	}
	return f.Config()
}

// ParseLenient is Parse with unknown fields ignored rather than
// rejected; the ignored paths are returned alongside the Config.
func ParseLenient(r io.Reader) (core.Config, []string, error) {
	f, unknown, err := DecodeLenient(r)
	if err != nil {
		return core.Config{}, nil, err
	}
	cfg, err := f.Config()
	return cfg, unknown, err
}

// Config converts the file form to a core.Config, applying defaults and
// validating the topology and connection endpoints, so that file errors
// surface as errors rather than core's construction-time panics.
func (f *File) Config() (core.Config, error) {
	cfg := core.Config{
		Switches:        f.Switches,
		TrunkBandwidth:  f.TrunkBandwidth,
		Buffer:          f.Buffer,
		AccessBandwidth: f.AccessBandwidth,
		DataSize:        f.DataSize,
		Shards:          f.Shards,
		Regions:         f.Regions,
		Seed:            f.Seed,
	}
	if f.AckSize != nil {
		cfg.AckSize = *f.AckSize
	} else {
		cfg.AckSize = core.DefaultAckSize
	}
	if cfg.AckSize < 0 {
		return cfg, fmt.Errorf("scenario: negative ack_size")
	}
	var err error
	if cfg.TrunkDelay, err = parseDur("trunk_delay", f.TrunkDelay, 0); err != nil {
		return cfg, err
	}
	if f.TrunkDelay == "" {
		return cfg, fmt.Errorf("scenario: trunk_delay is required")
	}
	if cfg.AccessDelay, err = parseDur("access_delay", f.AccessDelay, core.DefaultAccessDelay); err != nil {
		return cfg, err
	}
	if cfg.HostProcessing, err = parseDur("host_processing", f.HostProcessing, core.DefaultHostProcessing); err != nil {
		return cfg, err
	}
	if cfg.StartSpread, err = parseDur("start_spread", f.StartSpread, 0); err != nil {
		return cfg, err
	}
	if cfg.Warmup, err = parseDur("warmup", f.Warmup, 100*time.Second); err != nil {
		return cfg, err
	}
	if cfg.Duration, err = parseDur("duration", f.Duration, 600*time.Second); err != nil {
		return cfg, err
	}
	switch f.Discard {
	case "", "drop-tail":
		cfg.Discard = core.DropTail
	case "random-drop":
		cfg.Discard = core.RandomDrop
	default:
		return cfg, fmt.Errorf("scenario: unknown discard %q", f.Discard)
	}
	switch f.Discipline {
	case "", "fifo":
		cfg.Discipline = core.FIFO
	case "fair-queue":
		cfg.Discipline = core.FairQueue
	default:
		return cfg, fmt.Errorf("scenario: unknown discipline %q", f.Discipline)
	}
	if f.Queue != nil {
		if f.Discard != "" || f.Discipline != "" {
			return cfg, fmt.Errorf("scenario: queue and the legacy discard/discipline strings are both set; pick one surface")
		}
		if cfg.Queue, err = f.Queue.spec("queue"); err != nil {
			return cfg, err
		}
	}
	if cfg.Behavior, err = f.Behavior.spec("behavior"); err != nil {
		return cfg, err
	}
	if f.Topology != nil {
		g, err := f.Topology.graph()
		if err != nil {
			return cfg, err
		}
		cfg.Topology = &g
		for li, l := range f.Topology.Links {
			if l.Queue != nil {
				qs, err := l.Queue.spec(fmt.Sprintf("topology.links[%d].queue", li))
				if err != nil {
					return cfg, err
				}
				if cfg.LinkQueue == nil {
					cfg.LinkQueue = make(map[int]*link.QueueSpec)
				}
				cfg.LinkQueue[li] = qs
			}
			if l.Behavior != nil {
				bs, err := l.Behavior.spec(fmt.Sprintf("topology.links[%d].behavior", li))
				if err != nil {
					return cfg, err
				}
				if cfg.LinkBehavior == nil {
					cfg.LinkBehavior = make(map[int]*link.BehaviorSpec)
				}
				cfg.LinkBehavior[li] = bs
			}
		}
	}
	if len(f.Conns) == 0 {
		return cfg, fmt.Errorf("scenario: at least one connection is required")
	}
	for i, c := range f.Conns {
		spec := core.ConnSpec{
			SrcHost:          c.Src,
			DstHost:          c.Dst,
			MaxWnd:           c.MaxWnd,
			FixedWnd:         c.FixedWnd,
			DelayedAck:       c.DelayedAck,
			Reno:             c.Reno,
			OriginalIncrease: c.OriginalIncrease,
		}
		if spec.Pace, err = parseDur(fmt.Sprintf("conns[%d].pace", i), c.Pace, 0); err != nil {
			return cfg, err
		}
		if spec.ExtraDelay, err = parseDur(fmt.Sprintf("conns[%d].extra_delay", i), c.ExtraDelay, 0); err != nil {
			return cfg, err
		}
		switch c.Start {
		case "", "random":
			spec.Start = -1
		default:
			if spec.Start, err = parseDur(fmt.Sprintf("conns[%d].start", i), c.Start, 0); err != nil {
				return cfg, err
			}
		}
		if c.Source != nil {
			ss := &core.SourceSpec{
				Kind: c.Source.Kind,
				Rate: c.Source.Rate,
				Size: c.Source.Size,
			}
			field := fmt.Sprintf("conns[%d].source", i)
			switch ss.Kind {
			case core.SourceTCP, core.SourceCBR, core.SourceOnOff:
			case "":
				return cfg, fmt.Errorf("scenario: %s: kind is required", field)
			default:
				return cfg, fmt.Errorf("scenario: %s: unknown kind %q (want tcp, cbr, or onoff)", field, ss.Kind)
			}
			if ss.OnMean, err = parseDur(field+".on_mean", c.Source.OnMean, 0); err != nil {
				return cfg, err
			}
			if ss.OffMean, err = parseDur(field+".off_mean", c.Source.OffMean, 0); err != nil {
				return cfg, err
			}
			spec.Source = ss
		}
		cfg.Conns = append(cfg.Conns, spec)
	}
	for i, e := range f.Events {
		ev := core.LinkEvent{Link: e.Link, Bandwidth: e.Bandwidth, Down: e.Down}
		if e.T == "" {
			return cfg, fmt.Errorf("scenario: events[%d]: t is required", i)
		}
		if ev.T, err = parseDur(fmt.Sprintf("events[%d].t", i), e.T, 0); err != nil {
			return cfg, err
		}
		cfg.Events = append(cfg.Events, ev)
	}
	if err := validate(&cfg); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// spec converts the JSON queue object to a validated link.QueueSpec.
func (q *Queue) spec(field string) (*link.QueueSpec, error) {
	if q == nil {
		return nil, nil
	}
	s := &link.QueueSpec{Policy: q.Policy, MinTh: q.MinTh, MaxTh: q.MaxTh, MaxP: q.MaxP, Wq: q.Wq}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", field, err)
	}
	return s, nil
}

// spec converts the JSON behavior object to a validated
// link.BehaviorSpec, loading the rate-trace file if one is named.
func (b *Behavior) spec(field string) (*link.BehaviorSpec, error) {
	if b == nil {
		return nil, nil
	}
	s := &link.BehaviorSpec{
		Loss:      b.Loss,
		GoodToBad: b.GoodToBad,
		BadToGood: b.BadToGood,
		BadLoss:   b.BadLoss,
		Reorder:   b.Reorder,
	}
	var err error
	if s.Jitter, err = parseDur(field+".jitter", b.Jitter, 0); err != nil {
		return nil, err
	}
	if b.RateTrace != "" {
		if s.Trace, err = link.LoadRateTrace(b.RateTrace); err != nil {
			return nil, fmt.Errorf("scenario: %s.rate_trace: %w", field, err)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", field, err)
	}
	return s, nil
}

// validate surfaces the errors core.Build would panic on: an
// uncompilable topology (disconnected graph, bad link endpoints, bad
// route overrides) or a connection naming a host that doesn't exist.
func validate(cfg *core.Config) error {
	compiled, err := cfg.CompileTopology()
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if len(cfg.Regions) > 0 {
		if cfg.Shards != 0 && cfg.Shards != len(cfg.Regions) {
			return fmt.Errorf("scenario: shards (%d) disagrees with the region count (%d)", cfg.Shards, len(cfg.Regions))
		}
		if _, err := compiled.PartitionWith(cfg.Regions); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("scenario: negative shards")
	}
	for i := range cfg.Events {
		if err := cfg.Events[i].Validate(len(compiled.Links)); err != nil {
			return fmt.Errorf("scenario: events[%d]: %w", i, err)
		}
	}
	hosts := cfg.HostCount()
	for i, c := range cfg.Conns {
		if c.SrcHost == c.DstHost {
			return fmt.Errorf("scenario: conns[%d]: src == dst", i)
		}
		if c.SrcHost < 0 || c.SrcHost >= hosts || c.DstHost < 0 || c.DstHost >= hosts {
			return fmt.Errorf("scenario: conns[%d]: host index out of range (have %d hosts)", i, hosts)
		}
		if err := c.Source.Validate(); err != nil {
			return fmt.Errorf("scenario: conns[%d].source: %w", i, err)
		}
	}
	return nil
}

// graph converts the JSON topology to a topology.Graph.
func (t *Topology) graph() (topology.Graph, error) {
	var g topology.Graph
	explicit := t.Switches != 0 || len(t.Links) > 0
	switch t.Generator {
	case "":
		if !explicit {
			return g, fmt.Errorf("scenario: topology needs a generator or explicit switches/links")
		}
		g = topology.Graph{Switches: t.Switches}
		for i, l := range t.Links {
			d, err := parseDur(fmt.Sprintf("topology.links[%d].delay", i), l.Delay, 0)
			if err != nil {
				return g, err
			}
			g.Links = append(g.Links, topology.LinkSpec{
				A: l.A, B: l.B,
				Bandwidth: l.Bandwidth,
				Delay:     d,
				Buffer:    l.Buffer,
			})
		}
	case "dumbbell":
		if t.Size != 0 {
			return g, fmt.Errorf("scenario: dumbbell topology takes no size")
		}
		g = topology.Dumbbell()
	case "chain":
		if t.Size < 2 {
			return g, fmt.Errorf("scenario: chain topology needs size >= 2")
		}
		g = topology.Chain(t.Size)
	case "parking-lot":
		if t.Size < 1 {
			return g, fmt.Errorf("scenario: parking-lot topology needs size >= 1")
		}
		g = topology.ParkingLot(t.Size)
	case "ba":
		if t.Size < 2 {
			return g, fmt.Errorf("scenario: ba topology needs size >= 2")
		}
		if t.M < 1 || t.M >= t.Size {
			return g, fmt.Errorf("scenario: ba topology needs 1 <= m < size, got m=%d", t.M)
		}
		g = topology.BarabasiAlbert(t.Size, t.M, t.Seed)
	case "waxman":
		if t.Size < 2 {
			return g, fmt.Errorf("scenario: waxman topology needs size >= 2")
		}
		g = topology.Waxman(t.Size, t.Seed)
	default:
		return g, fmt.Errorf("scenario: unknown topology generator %q (want dumbbell, chain, parking-lot, ba, or waxman)", t.Generator)
	}
	if t.M != 0 && t.Generator != "ba" {
		return g, fmt.Errorf("scenario: topology m is only valid for the ba generator (got generator %q)", t.Generator)
	}
	if t.Seed != 0 && t.Generator != "ba" && t.Generator != "waxman" {
		return g, fmt.Errorf("scenario: topology seed is only valid for the ba and waxman generators (got generator %q)", t.Generator)
	}
	if t.Generator != "" && explicit {
		return g, fmt.Errorf("scenario: topology generator %q excludes explicit switches/links", t.Generator)
	}
	for _, h := range t.Hosts {
		g.Hosts = append(g.Hosts, topology.HostSpec{Switch: h.Switch})
	}
	for _, r := range t.Routes {
		g.Routes = append(g.Routes, topology.RouteSpec{At: r.At, Dst: r.Dst, Via: r.Via})
	}
	return g, nil
}

// Canonical re-encodes raw scenario bytes into canonical form. It is
// what `tahoe-sim -validate` prints and what the golden tests assert
// shipped files already are.
func Canonical(raw []byte) ([]byte, error) {
	f, err := Decode(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func parseDur(field, s string, def time.Duration) (time.Duration, error) {
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("scenario: bad %s %q: %v", field, s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("scenario: negative %s", field)
	}
	return d, nil
}
