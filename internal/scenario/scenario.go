// Package scenario reads and writes simulation configurations as JSON,
// with human-readable durations ("10ms", "1s") and named policies
// ("drop-tail", "random-drop", "fifo", "fair-queue"). It exists so
// downstream users can keep scenarios in files instead of Go code:
//
//	tahoe-sim -config two-way.json
//
// Encoding is canonical: Encode always produces the same bytes for the
// same File, and Decode∘Encode is a fixed point on canonical files. The
// golden tests pin the shipped scenarios to this form.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
	"time"

	"tahoedyn/internal/core"
	"tahoedyn/internal/topology"
)

// File is the JSON representation of a core.Config.
type File struct {
	// Switches on the line; 0 means 2 (the dumbbell). Ignored when
	// Topology is set.
	Switches int `json:"switches,omitempty"`
	// Topology replaces the default switch line with an arbitrary graph.
	Topology *Topology `json:"topology,omitempty"`
	// TrunkBandwidth in bits/s; 0 means the paper's 50000.
	TrunkBandwidth int64 `json:"trunk_bandwidth,omitempty"`
	// TrunkDelay is the propagation delay τ, e.g. "10ms".
	TrunkDelay string `json:"trunk_delay"`
	// Buffer in packets; 0 or "infinite" semantics: <= 0 is unbounded.
	Buffer int `json:"buffer"`
	// AccessBandwidth/AccessDelay/HostProcessing default to the paper's
	// values when omitted.
	AccessBandwidth int64  `json:"access_bandwidth,omitempty"`
	AccessDelay     string `json:"access_delay,omitempty"`
	HostProcessing  string `json:"host_processing,omitempty"`
	// Discard is "drop-tail" (default) or "random-drop".
	Discard string `json:"discard,omitempty"`
	// Discipline is "fifo" (default) or "fair-queue".
	Discipline string `json:"discipline,omitempty"`
	// DataSize/AckSize in bytes; zero DataSize means 500. AckSize is a
	// pointer so that an explicit 0 (the zero-length-ACK conjecture
	// experiments) is distinguishable from "omitted, use the paper's 50".
	DataSize int  `json:"data_size,omitempty"`
	AckSize  *int `json:"ack_size,omitempty"`
	// AckSizeZero is the deprecated spelling of "ack_size": 0 from before
	// AckSize was a pointer. Old files still load; new files should write
	// "ack_size": 0 instead.
	AckSizeZero bool `json:"ack_size_zero,omitempty"`

	Conns []Conn `json:"conns"`

	// Shards partitions the run into this many regions executed in
	// parallel (0 = the process default, normally serial). Like the
	// scheduler choice it is a wall-clock knob only: results are
	// byte-identical at any shard count.
	Shards int `json:"shards,omitempty"`
	// Regions explicitly assigns switches to regions (regions[r] lists
	// the switches of region r, covering every switch exactly once),
	// overriding the automatic partitioner; its length fixes the shard
	// count.
	Regions [][]int `json:"regions,omitempty"`

	Seed        int64  `json:"seed,omitempty"`
	StartSpread string `json:"start_spread,omitempty"`
	Warmup      string `json:"warmup,omitempty"`
	Duration    string `json:"duration,omitempty"`
}

// Topology is the JSON representation of a topology.Graph: either a
// named generator or an explicit switch/link list, optionally with
// explicit host placement and route overrides.
type Topology struct {
	// Generator names a built-in graph: "dumbbell", "chain",
	// "parking-lot", "ba" (Barabási–Albert scale-free), or "waxman"
	// (random geometric). Mutually exclusive with Switches/Links.
	Generator string `json:"generator,omitempty"`
	// Size parameterizes the generator: switches for "chain", "ba", and
	// "waxman", bottleneck hops for "parking-lot". Rejected for
	// "dumbbell".
	Size int `json:"size,omitempty"`
	// M is the "ba" generator's attachment count (links added per
	// joining switch); Seed drives the "ba" and "waxman" generators'
	// randomness. Each is rejected on generators that do not use it, so
	// a misplaced field fails loudly instead of silently changing the
	// graph.
	M    int   `json:"m,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// Switches/Links describe an explicit graph.
	Switches int        `json:"switches,omitempty"`
	Links    []TopoLink `json:"links,omitempty"`
	// Hosts places hosts on switches; empty means one host per switch.
	Hosts []TopoHost `json:"hosts,omitempty"`
	// Routes override the shortest-path next hop for (at, dst) pairs.
	Routes []TopoRoute `json:"routes,omitempty"`
}

// TopoLink is one duplex link. Zero Bandwidth/Delay/Buffer inherit the
// scenario's trunk defaults; Buffer -1 means unbounded.
type TopoLink struct {
	A         int    `json:"a"`
	B         int    `json:"b"`
	Bandwidth int64  `json:"bandwidth,omitempty"`
	Delay     string `json:"delay,omitempty"`
	Buffer    int    `json:"buffer,omitempty"`
}

// TopoHost places one host on a switch.
type TopoHost struct {
	Switch int `json:"switch"`
}

// TopoRoute forces packets for host dst arriving at switch at to leave
// toward neighbor switch via.
type TopoRoute struct {
	At  int `json:"at"`
	Dst int `json:"dst"`
	Via int `json:"via"`
}

// Conn is the JSON representation of a core.ConnSpec.
type Conn struct {
	Src              int    `json:"src"`
	Dst              int    `json:"dst"`
	MaxWnd           int    `json:"max_wnd,omitempty"`
	FixedWnd         int    `json:"fixed_wnd,omitempty"`
	DelayedAck       bool   `json:"delayed_ack,omitempty"`
	Reno             bool   `json:"reno,omitempty"`
	OriginalIncrease bool   `json:"original_increase,omitempty"`
	Pace             string `json:"pace,omitempty"`
	ExtraDelay       string `json:"extra_delay,omitempty"`
	// Start is a duration, or "random" (the default) for a random start.
	Start string `json:"start,omitempty"`
}

// Decode reads a JSON scenario file without converting it: the result
// re-encodes to the same bytes when the input is canonical.
//
// Decode is strict about field names: every key in the document that no
// File field declares is an error, and — unlike encoding/json's
// DisallowUnknownFields, which stops at the first offender — the
// returned error is the errors.Join of one error per unknown field,
// each naming its full path (e.g. "topology.links[0].bandwith"). Use
// DecodeLenient to load a file from a newer or foreign producer anyway.
func Decode(r io.Reader) (*File, error) {
	f, unknown, err := decode(r)
	if err != nil {
		return nil, err
	}
	if len(unknown) > 0 {
		errs := make([]error, len(unknown))
		for i, path := range unknown {
			errs[i] = fmt.Errorf("scenario: unknown field %q", path)
		}
		return nil, errors.Join(errs...)
	}
	return f, nil
}

// DecodeLenient reads a JSON scenario file, ignoring unknown fields
// instead of rejecting them. The paths of the ignored fields are
// returned so callers can warn (tahoe-sim -lenient prints them to
// stderr). Syntax and type errors are still errors.
func DecodeLenient(r io.Reader) (*File, []string, error) {
	return decode(r)
}

// decode is the shared strict/lenient reader: unmarshal leniently, then
// diff the document's keys against the File schema.
func decode(r io.Reader) (*File, []string, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	var unknown []string
	unknownFields(reflect.TypeOf(File{}), doc, "", &unknown)
	return &f, unknown, nil
}

// unknownFields walks the decoded JSON document alongside the target Go
// type and appends the path of every object key the type has no field
// for. Paths use dotted/indexed notation rooted at the document
// ("topology.links[0].bandwith"). Keys within one object are reported
// in sorted order (JSON object keys are unordered after decoding).
func unknownFields(t reflect.Type, doc any, path string, out *[]string) {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	switch t.Kind() {
	case reflect.Struct:
		obj, ok := doc.(map[string]any)
		if !ok {
			return
		}
		fields := jsonFields(t)
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			child := path + "." + k
			if path == "" {
				child = k
			}
			ft, ok := fields[k]
			if !ok {
				*out = append(*out, child)
				continue
			}
			unknownFields(ft, obj[k], child, out)
		}
	case reflect.Slice, reflect.Array:
		arr, ok := doc.([]any)
		if !ok {
			return
		}
		for i, el := range arr {
			unknownFields(t.Elem(), el, fmt.Sprintf("%s[%d]", path, i), out)
		}
	}
}

// jsonFields maps a struct's JSON key names to their field types,
// honoring `json:"name,opts"` tags the way encoding/json does for the
// flat, tag-complete structs this package declares.
func jsonFields(t reflect.Type) map[string]reflect.Type {
	fields := make(map[string]reflect.Type, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		if !sf.IsExported() {
			continue
		}
		name := sf.Name
		if tag := sf.Tag.Get("json"); tag != "" {
			tagName, _, _ := strings.Cut(tag, ",")
			if tagName == "-" {
				continue
			}
			if tagName != "" {
				name = tagName
			}
		}
		fields[name] = sf.Type
	}
	return fields
}

// Encode writes the canonical JSON form: two-space indent, fixed field
// order, trailing newline. Encoding the result of Decode reproduces a
// canonical input byte for byte.
func (f *File) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Parse reads a JSON scenario and converts it to a runnable Config.
// Unknown fields are errors, all of them reported at once; see Decode.
func Parse(r io.Reader) (core.Config, error) {
	f, err := Decode(r)
	if err != nil {
		return core.Config{}, err
	}
	return f.Config()
}

// ParseLenient is Parse with unknown fields ignored rather than
// rejected; the ignored paths are returned alongside the Config.
func ParseLenient(r io.Reader) (core.Config, []string, error) {
	f, unknown, err := DecodeLenient(r)
	if err != nil {
		return core.Config{}, nil, err
	}
	cfg, err := f.Config()
	return cfg, unknown, err
}

// Config converts the file form to a core.Config, applying defaults and
// validating the topology and connection endpoints, so that file errors
// surface as errors rather than core's construction-time panics.
func (f *File) Config() (core.Config, error) {
	cfg := core.Config{
		Switches:        f.Switches,
		TrunkBandwidth:  f.TrunkBandwidth,
		Buffer:          f.Buffer,
		AccessBandwidth: f.AccessBandwidth,
		DataSize:        f.DataSize,
		Shards:          f.Shards,
		Regions:         f.Regions,
		Seed:            f.Seed,
	}
	switch {
	case f.AckSize != nil:
		cfg.AckSize = *f.AckSize
	case f.AckSizeZero:
		cfg.AckSize = 0
	default:
		cfg.AckSize = core.DefaultAckSize
	}
	if cfg.AckSize < 0 {
		return cfg, fmt.Errorf("scenario: negative ack_size")
	}
	var err error
	if cfg.TrunkDelay, err = parseDur("trunk_delay", f.TrunkDelay, 0); err != nil {
		return cfg, err
	}
	if f.TrunkDelay == "" {
		return cfg, fmt.Errorf("scenario: trunk_delay is required")
	}
	if cfg.AccessDelay, err = parseDur("access_delay", f.AccessDelay, core.DefaultAccessDelay); err != nil {
		return cfg, err
	}
	if cfg.HostProcessing, err = parseDur("host_processing", f.HostProcessing, core.DefaultHostProcessing); err != nil {
		return cfg, err
	}
	if cfg.StartSpread, err = parseDur("start_spread", f.StartSpread, 0); err != nil {
		return cfg, err
	}
	if cfg.Warmup, err = parseDur("warmup", f.Warmup, 100*time.Second); err != nil {
		return cfg, err
	}
	if cfg.Duration, err = parseDur("duration", f.Duration, 600*time.Second); err != nil {
		return cfg, err
	}
	switch f.Discard {
	case "", "drop-tail":
		cfg.Discard = core.DropTail
	case "random-drop":
		cfg.Discard = core.RandomDrop
	default:
		return cfg, fmt.Errorf("scenario: unknown discard %q", f.Discard)
	}
	switch f.Discipline {
	case "", "fifo":
		cfg.Discipline = core.FIFO
	case "fair-queue":
		cfg.Discipline = core.FairQueue
	default:
		return cfg, fmt.Errorf("scenario: unknown discipline %q", f.Discipline)
	}
	if f.Topology != nil {
		g, err := f.Topology.graph()
		if err != nil {
			return cfg, err
		}
		cfg.Topology = &g
	}
	if len(f.Conns) == 0 {
		return cfg, fmt.Errorf("scenario: at least one connection is required")
	}
	for i, c := range f.Conns {
		spec := core.ConnSpec{
			SrcHost:          c.Src,
			DstHost:          c.Dst,
			MaxWnd:           c.MaxWnd,
			FixedWnd:         c.FixedWnd,
			DelayedAck:       c.DelayedAck,
			Reno:             c.Reno,
			OriginalIncrease: c.OriginalIncrease,
		}
		if spec.Pace, err = parseDur(fmt.Sprintf("conns[%d].pace", i), c.Pace, 0); err != nil {
			return cfg, err
		}
		if spec.ExtraDelay, err = parseDur(fmt.Sprintf("conns[%d].extra_delay", i), c.ExtraDelay, 0); err != nil {
			return cfg, err
		}
		switch c.Start {
		case "", "random":
			spec.Start = -1
		default:
			if spec.Start, err = parseDur(fmt.Sprintf("conns[%d].start", i), c.Start, 0); err != nil {
				return cfg, err
			}
		}
		cfg.Conns = append(cfg.Conns, spec)
	}
	if err := validate(&cfg); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// validate surfaces the errors core.Build would panic on: an
// uncompilable topology (disconnected graph, bad link endpoints, bad
// route overrides) or a connection naming a host that doesn't exist.
func validate(cfg *core.Config) error {
	compiled, err := cfg.CompileTopology()
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if len(cfg.Regions) > 0 {
		if cfg.Shards != 0 && cfg.Shards != len(cfg.Regions) {
			return fmt.Errorf("scenario: shards (%d) disagrees with the region count (%d)", cfg.Shards, len(cfg.Regions))
		}
		if _, err := compiled.PartitionWith(cfg.Regions); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("scenario: negative shards")
	}
	hosts := cfg.HostCount()
	for i, c := range cfg.Conns {
		if c.SrcHost == c.DstHost {
			return fmt.Errorf("scenario: conns[%d]: src == dst", i)
		}
		if c.SrcHost < 0 || c.SrcHost >= hosts || c.DstHost < 0 || c.DstHost >= hosts {
			return fmt.Errorf("scenario: conns[%d]: host index out of range (have %d hosts)", i, hosts)
		}
	}
	return nil
}

// graph converts the JSON topology to a topology.Graph.
func (t *Topology) graph() (topology.Graph, error) {
	var g topology.Graph
	explicit := t.Switches != 0 || len(t.Links) > 0
	switch t.Generator {
	case "":
		if !explicit {
			return g, fmt.Errorf("scenario: topology needs a generator or explicit switches/links")
		}
		g = topology.Graph{Switches: t.Switches}
		for i, l := range t.Links {
			d, err := parseDur(fmt.Sprintf("topology.links[%d].delay", i), l.Delay, 0)
			if err != nil {
				return g, err
			}
			g.Links = append(g.Links, topology.LinkSpec{
				A: l.A, B: l.B,
				Bandwidth: l.Bandwidth,
				Delay:     d,
				Buffer:    l.Buffer,
			})
		}
	case "dumbbell":
		if t.Size != 0 {
			return g, fmt.Errorf("scenario: dumbbell topology takes no size")
		}
		g = topology.Dumbbell()
	case "chain":
		if t.Size < 2 {
			return g, fmt.Errorf("scenario: chain topology needs size >= 2")
		}
		g = topology.Chain(t.Size)
	case "parking-lot":
		if t.Size < 1 {
			return g, fmt.Errorf("scenario: parking-lot topology needs size >= 1")
		}
		g = topology.ParkingLot(t.Size)
	case "ba":
		if t.Size < 2 {
			return g, fmt.Errorf("scenario: ba topology needs size >= 2")
		}
		if t.M < 1 || t.M >= t.Size {
			return g, fmt.Errorf("scenario: ba topology needs 1 <= m < size, got m=%d", t.M)
		}
		g = topology.BarabasiAlbert(t.Size, t.M, t.Seed)
	case "waxman":
		if t.Size < 2 {
			return g, fmt.Errorf("scenario: waxman topology needs size >= 2")
		}
		g = topology.Waxman(t.Size, t.Seed)
	default:
		return g, fmt.Errorf("scenario: unknown topology generator %q (want dumbbell, chain, parking-lot, ba, or waxman)", t.Generator)
	}
	if t.M != 0 && t.Generator != "ba" {
		return g, fmt.Errorf("scenario: topology m is only valid for the ba generator (got generator %q)", t.Generator)
	}
	if t.Seed != 0 && t.Generator != "ba" && t.Generator != "waxman" {
		return g, fmt.Errorf("scenario: topology seed is only valid for the ba and waxman generators (got generator %q)", t.Generator)
	}
	if t.Generator != "" && explicit {
		return g, fmt.Errorf("scenario: topology generator %q excludes explicit switches/links", t.Generator)
	}
	for _, h := range t.Hosts {
		g.Hosts = append(g.Hosts, topology.HostSpec{Switch: h.Switch})
	}
	for _, r := range t.Routes {
		g.Routes = append(g.Routes, topology.RouteSpec{At: r.At, Dst: r.Dst, Via: r.Via})
	}
	return g, nil
}

// Canonical re-encodes raw scenario bytes into canonical form. It is
// what `tahoe-sim -validate` prints and what the golden tests assert
// shipped files already are.
func Canonical(raw []byte) ([]byte, error) {
	f, err := Decode(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func parseDur(field, s string, def time.Duration) (time.Duration, error) {
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("scenario: bad %s %q: %v", field, s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("scenario: negative %s", field)
	}
	return d, nil
}
