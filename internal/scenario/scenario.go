// Package scenario reads and writes simulation configurations as JSON,
// with human-readable durations ("10ms", "1s") and named policies
// ("drop-tail", "random-drop", "fifo", "fair-queue"). It exists so
// downstream users can keep scenarios in files instead of Go code:
//
//	tahoe-sim -config two-way.json
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"tahoedyn/internal/core"
)

// File is the JSON representation of a core.Config.
type File struct {
	// Switches on the line; 0 means 2 (the dumbbell).
	Switches int `json:"switches,omitempty"`
	// TrunkBandwidth in bits/s; 0 means the paper's 50000.
	TrunkBandwidth int64 `json:"trunk_bandwidth,omitempty"`
	// TrunkDelay is the propagation delay τ, e.g. "10ms".
	TrunkDelay string `json:"trunk_delay"`
	// Buffer in packets; 0 or "infinite" semantics: <= 0 is unbounded.
	Buffer int `json:"buffer"`
	// AccessBandwidth/AccessDelay/HostProcessing default to the paper's
	// values when omitted.
	AccessBandwidth int64  `json:"access_bandwidth,omitempty"`
	AccessDelay     string `json:"access_delay,omitempty"`
	HostProcessing  string `json:"host_processing,omitempty"`
	// Discard is "drop-tail" (default) or "random-drop".
	Discard string `json:"discard,omitempty"`
	// Discipline is "fifo" (default) or "fair-queue".
	Discipline string `json:"discipline,omitempty"`
	// DataSize/AckSize in bytes; zero DataSize means 500. AckSize zero
	// is honored as written only when AckSizeZero is set, because the
	// JSON zero value must still default to 50.
	DataSize    int  `json:"data_size,omitempty"`
	AckSize     int  `json:"ack_size,omitempty"`
	AckSizeZero bool `json:"ack_size_zero,omitempty"`

	Conns []Conn `json:"conns"`

	Seed        int64  `json:"seed,omitempty"`
	StartSpread string `json:"start_spread,omitempty"`
	Warmup      string `json:"warmup,omitempty"`
	Duration    string `json:"duration,omitempty"`
}

// Conn is the JSON representation of a core.ConnSpec.
type Conn struct {
	Src              int    `json:"src"`
	Dst              int    `json:"dst"`
	MaxWnd           int    `json:"max_wnd,omitempty"`
	FixedWnd         int    `json:"fixed_wnd,omitempty"`
	DelayedAck       bool   `json:"delayed_ack,omitempty"`
	Reno             bool   `json:"reno,omitempty"`
	OriginalIncrease bool   `json:"original_increase,omitempty"`
	Pace             string `json:"pace,omitempty"`
	ExtraDelay       string `json:"extra_delay,omitempty"`
	// Start is a duration, or "random" (the default) for a random start.
	Start string `json:"start,omitempty"`
}

// Parse reads a JSON scenario and converts it to a runnable Config.
func Parse(r io.Reader) (core.Config, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return core.Config{}, fmt.Errorf("scenario: %w", err)
	}
	return f.Config()
}

// Config converts the file form to a core.Config, applying defaults.
func (f *File) Config() (core.Config, error) {
	cfg := core.Config{
		Switches:        f.Switches,
		TrunkBandwidth:  f.TrunkBandwidth,
		Buffer:          f.Buffer,
		AccessBandwidth: f.AccessBandwidth,
		DataSize:        f.DataSize,
		AckSize:         f.AckSize,
		Seed:            f.Seed,
	}
	if f.AckSize == 0 && !f.AckSizeZero {
		cfg.AckSize = core.DefaultAckSize
	}
	var err error
	if cfg.TrunkDelay, err = parseDur("trunk_delay", f.TrunkDelay, 0); err != nil {
		return cfg, err
	}
	if f.TrunkDelay == "" {
		return cfg, fmt.Errorf("scenario: trunk_delay is required")
	}
	if cfg.AccessDelay, err = parseDur("access_delay", f.AccessDelay, core.DefaultAccessDelay); err != nil {
		return cfg, err
	}
	if cfg.HostProcessing, err = parseDur("host_processing", f.HostProcessing, core.DefaultHostProcessing); err != nil {
		return cfg, err
	}
	if cfg.StartSpread, err = parseDur("start_spread", f.StartSpread, 0); err != nil {
		return cfg, err
	}
	if cfg.Warmup, err = parseDur("warmup", f.Warmup, 100*time.Second); err != nil {
		return cfg, err
	}
	if cfg.Duration, err = parseDur("duration", f.Duration, 600*time.Second); err != nil {
		return cfg, err
	}
	switch f.Discard {
	case "", "drop-tail":
		cfg.Discard = core.DropTail
	case "random-drop":
		cfg.Discard = core.RandomDrop
	default:
		return cfg, fmt.Errorf("scenario: unknown discard %q", f.Discard)
	}
	switch f.Discipline {
	case "", "fifo":
		cfg.Discipline = core.FIFO
	case "fair-queue":
		cfg.Discipline = core.FairQueue
	default:
		return cfg, fmt.Errorf("scenario: unknown discipline %q", f.Discipline)
	}
	if len(f.Conns) == 0 {
		return cfg, fmt.Errorf("scenario: at least one connection is required")
	}
	for i, c := range f.Conns {
		spec := core.ConnSpec{
			SrcHost:          c.Src,
			DstHost:          c.Dst,
			MaxWnd:           c.MaxWnd,
			FixedWnd:         c.FixedWnd,
			DelayedAck:       c.DelayedAck,
			Reno:             c.Reno,
			OriginalIncrease: c.OriginalIncrease,
		}
		if spec.Pace, err = parseDur(fmt.Sprintf("conns[%d].pace", i), c.Pace, 0); err != nil {
			return cfg, err
		}
		if spec.ExtraDelay, err = parseDur(fmt.Sprintf("conns[%d].extra_delay", i), c.ExtraDelay, 0); err != nil {
			return cfg, err
		}
		switch c.Start {
		case "", "random":
			spec.Start = -1
		default:
			if spec.Start, err = parseDur(fmt.Sprintf("conns[%d].start", i), c.Start, 0); err != nil {
				return cfg, err
			}
		}
		cfg.Conns = append(cfg.Conns, spec)
	}
	return cfg, nil
}

func parseDur(field, s string, def time.Duration) (time.Duration, error) {
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("scenario: bad %s %q: %v", field, s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("scenario: negative %s", field)
	}
	return d, nil
}
