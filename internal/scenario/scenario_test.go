package scenario

import (
	"strings"
	"testing"
	"time"

	"tahoedyn/internal/core"
)

const twoWayJSON = `{
  "trunk_delay": "10ms",
  "buffer": 20,
  "conns": [
    {"src": 0, "dst": 1},
    {"src": 1, "dst": 0, "start": "500ms"}
  ],
  "seed": 7,
  "warmup": "50s",
  "duration": "200s"
}`

func TestParseTwoWay(t *testing.T) {
	cfg, err := Parse(strings.NewReader(twoWayJSON))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TrunkDelay != 10*time.Millisecond || cfg.Buffer != 20 || cfg.Seed != 7 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.AckSize != core.DefaultAckSize {
		t.Fatalf("AckSize = %d, want default", cfg.AckSize)
	}
	if len(cfg.Conns) != 2 {
		t.Fatalf("conns = %d", len(cfg.Conns))
	}
	if cfg.Conns[0].Start != -1 {
		t.Fatalf("conn 0 start = %v, want random (-1)", cfg.Conns[0].Start)
	}
	if cfg.Conns[1].Start != 500*time.Millisecond {
		t.Fatalf("conn 1 start = %v", cfg.Conns[1].Start)
	}
	// And it must actually run.
	res := core.Run(cfg)
	if res.UtilForward() <= 0 {
		t.Fatal("parsed scenario did not run")
	}
}

func TestParsePolicies(t *testing.T) {
	j := `{"trunk_delay":"1s","buffer":30,"discard":"random-drop","discipline":"fair-queue",
	       "conns":[{"src":0,"dst":1}]}`
	cfg, err := Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Discard != core.RandomDrop || cfg.Discipline != core.FairQueue {
		t.Fatalf("policies = %v/%v", cfg.Discard, cfg.Discipline)
	}
}

func TestParseZeroAck(t *testing.T) {
	j := `{"trunk_delay":"1s","buffer":0,"ack_size_zero":true,
	       "conns":[{"src":0,"dst":1,"fixed_wnd":30}]}`
	cfg, err := Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.AckSize != 0 {
		t.Fatalf("AckSize = %d, want 0", cfg.AckSize)
	}
}

func TestParseConnOptions(t *testing.T) {
	j := `{"trunk_delay":"10ms","buffer":20,
	       "conns":[{"src":0,"dst":1,"reno":true,"delayed_ack":true,
	                 "pace":"80ms","extra_delay":"100ms","max_wnd":8}]}`
	cfg, err := Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	c := cfg.Conns[0]
	if !c.Reno || !c.DelayedAck || c.Pace != 80*time.Millisecond ||
		c.ExtraDelay != 100*time.Millisecond || c.MaxWnd != 8 {
		t.Fatalf("conn = %+v", c)
	}
}

func TestParseDefaults(t *testing.T) {
	j := `{"trunk_delay":"1s","buffer":20,"conns":[{"src":0,"dst":1}]}`
	cfg, err := Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Warmup != 100*time.Second || cfg.Duration != 600*time.Second {
		t.Fatalf("default warmup/duration = %v/%v", cfg.Warmup, cfg.Duration)
	}
	if cfg.AccessDelay != core.DefaultAccessDelay {
		t.Fatalf("access delay = %v", cfg.AccessDelay)
	}
	if cfg.HostProcessing != core.DefaultHostProcessing {
		t.Fatalf("host processing = %v", cfg.HostProcessing)
	}
}

func TestParseBadConnDurations(t *testing.T) {
	for name, j := range map[string]string{
		"bad pace":        `{"trunk_delay":"1s","buffer":20,"conns":[{"src":0,"dst":1,"pace":"x"}]}`,
		"bad extra delay": `{"trunk_delay":"1s","buffer":20,"conns":[{"src":0,"dst":1,"extra_delay":"x"}]}`,
		"bad start":       `{"trunk_delay":"1s","buffer":20,"conns":[{"src":0,"dst":1,"start":"x"}]}`,
	} {
		if _, err := Parse(strings.NewReader(j)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing trunk_delay": `{"buffer":20,"conns":[{"src":0,"dst":1}]}`,
		"bad duration":        `{"trunk_delay":"fast","buffer":20,"conns":[{"src":0,"dst":1}]}`,
		"negative duration":   `{"trunk_delay":"-1s","buffer":20,"conns":[{"src":0,"dst":1}]}`,
		"no conns":            `{"trunk_delay":"1s","buffer":20,"conns":[]}`,
		"bad discard":         `{"trunk_delay":"1s","buffer":20,"discard":"coin-flip","conns":[{"src":0,"dst":1}]}`,
		"bad discipline":      `{"trunk_delay":"1s","buffer":20,"discipline":"lifo","conns":[{"src":0,"dst":1}]}`,
		"unknown field":       `{"trunk_delay":"1s","buffer":20,"bufers":3,"conns":[{"src":0,"dst":1}]}`,
		"not json":            `trunk_delay: 1s`,
	}
	for name, j := range cases {
		if _, err := Parse(strings.NewReader(j)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}
