package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tahoedyn/internal/core"
)

const twoWayJSON = `{
  "trunk_delay": "10ms",
  "buffer": 20,
  "conns": [
    {"src": 0, "dst": 1},
    {"src": 1, "dst": 0, "start": "500ms"}
  ],
  "seed": 7,
  "warmup": "50s",
  "duration": "200s"
}`

func TestParseTwoWay(t *testing.T) {
	cfg, err := Parse(strings.NewReader(twoWayJSON))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TrunkDelay != 10*time.Millisecond || cfg.Buffer != 20 || cfg.Seed != 7 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.AckSize != core.DefaultAckSize {
		t.Fatalf("AckSize = %d, want default", cfg.AckSize)
	}
	if len(cfg.Conns) != 2 {
		t.Fatalf("conns = %d", len(cfg.Conns))
	}
	if cfg.Conns[0].Start != -1 {
		t.Fatalf("conn 0 start = %v, want random (-1)", cfg.Conns[0].Start)
	}
	if cfg.Conns[1].Start != 500*time.Millisecond {
		t.Fatalf("conn 1 start = %v", cfg.Conns[1].Start)
	}
	// And it must actually run.
	res := core.Run(cfg)
	if res.UtilForward() <= 0 {
		t.Fatal("parsed scenario did not run")
	}
}

func TestParseEvents(t *testing.T) {
	j := `{"trunk_delay":"10ms","buffer":20,"switches":4,
	       "conns":[{"src":0,"dst":3}],
	       "events":[{"t":"120s","link":1,"bandwidth":25000},
	                 {"t":"2m30s","link":1,"bandwidth":50000}]}`
	cfg, err := Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	want := []core.LinkEvent{
		{T: 120 * time.Second, Link: 1, Bandwidth: 25000},
		{T: 150 * time.Second, Link: 1, Bandwidth: 50000},
	}
	if len(cfg.Events) != len(want) {
		t.Fatalf("events = %+v", cfg.Events)
	}
	for i := range want {
		if cfg.Events[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, cfg.Events[i], want[i])
		}
	}

	for name, bad := range map[string]string{
		"missing-t": `{"trunk_delay":"10ms","buffer":20,"conns":[{"src":0,"dst":1}],
		               "events":[{"link":0,"bandwidth":1000}]}`,
		"bad-link": `{"trunk_delay":"10ms","buffer":20,"conns":[{"src":0,"dst":1}],
		               "events":[{"t":"1s","link":4,"down":true}]}`,
		"down-and-bw": `{"trunk_delay":"10ms","buffer":20,"conns":[{"src":0,"dst":1}],
		               "events":[{"t":"1s","link":0,"bandwidth":1000,"down":true}]}`,
		"no-kind": `{"trunk_delay":"10ms","buffer":20,"conns":[{"src":0,"dst":1}],
		               "events":[{"t":"1s","link":0}]}`,
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: parsed", name)
		}
	}

	// Round trip: events survive Decode∘Encode canonically.
	canon, err := Canonical([]byte(`{
  "trunk_delay": "10ms",
  "buffer": 20,
  "conns": [
    {
      "src": 0,
      "dst": 1
    }
  ],
  "events": [
    {
      "t": "120s",
      "link": 0,
      "bandwidth": 25000
    }
  ]
}
`))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Canonical(canon)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon, again) {
		t.Fatalf("canonical form not a fixed point:\n%s\nvs\n%s", canon, again)
	}
	if !strings.Contains(string(canon), `"events"`) {
		t.Fatalf("events dropped from canonical form:\n%s", canon)
	}
}

func TestParsePolicies(t *testing.T) {
	j := `{"trunk_delay":"1s","buffer":30,"discard":"random-drop","discipline":"fair-queue",
	       "conns":[{"src":0,"dst":1}]}`
	cfg, err := Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Discard != core.RandomDrop || cfg.Discipline != core.FairQueue {
		t.Fatalf("policies = %v/%v", cfg.Discard, cfg.Discipline)
	}
}

func TestParseZeroAck(t *testing.T) {
	// The modern spelling: an explicit "ack_size": 0 is honored as
	// written, distinguishable from omission thanks to the pointer field.
	j := `{"trunk_delay":"1s","buffer":0,"ack_size":0,
	       "conns":[{"src":0,"dst":1,"fixed_wnd":30}]}`
	cfg, err := Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.AckSize != 0 {
		t.Fatalf("AckSize = %d, want 0", cfg.AckSize)
	}
	// The removed pre-pointer spelling is rejected by the strict parser
	// with a migration hint, but the lenient parser still maps it.
	j = `{"trunk_delay":"1s","buffer":0,"ack_size_zero":true,
	       "conns":[{"src":0,"dst":1,"fixed_wnd":30}]}`
	if _, err = Parse(strings.NewReader(j)); err == nil {
		t.Fatal("strict Parse accepted removed field ack_size_zero")
	} else if !strings.Contains(err.Error(), `"ack_size": 0`) {
		t.Fatalf("ack_size_zero rejection lacks migration hint: %v", err)
	}
	if cfg, _, err = ParseLenient(strings.NewReader(j)); err != nil {
		t.Fatal(err)
	}
	if cfg.AckSize != 0 {
		t.Fatalf("legacy AckSize = %d, want 0", cfg.AckSize)
	}
	// An explicit nonzero ack_size wins over everything.
	j = `{"trunk_delay":"1s","buffer":0,"ack_size":40,
	       "conns":[{"src":0,"dst":1}]}`
	if cfg, err = Parse(strings.NewReader(j)); err != nil {
		t.Fatal(err)
	}
	if cfg.AckSize != 40 {
		t.Fatalf("AckSize = %d, want 40", cfg.AckSize)
	}
}

func TestParseTopologyGenerator(t *testing.T) {
	j := `{"trunk_delay":"10ms","buffer":20,
	       "topology":{"generator":"parking-lot","size":3},
	       "conns":[{"src":0,"dst":3},{"src":1,"dst":2}]}`
	cfg, err := Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology == nil || cfg.Topology.Switches != 4 || len(cfg.Topology.Links) != 3 {
		t.Fatalf("topology = %+v", cfg.Topology)
	}
	if cfg.HostCount() != 4 {
		t.Fatalf("hosts = %d", cfg.HostCount())
	}
}

func TestParseTopologyRandomGenerators(t *testing.T) {
	j := `{"trunk_delay":"10ms","buffer":20,
	       "topology":{"generator":"ba","size":32,"m":2,"seed":7},
	       "conns":[{"src":0,"dst":31}]}`
	cfg, err := Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology == nil || cfg.Topology.Switches != 32 {
		t.Fatalf("ba topology = %+v", cfg.Topology)
	}
	// Same seed → same graph: the scenario is as reproducible as an
	// explicit link list.
	cfg2, err := Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Topology.Links) != len(cfg2.Topology.Links) {
		t.Fatalf("ba reparse changed the graph")
	}
	j = `{"trunk_delay":"10ms","buffer":20,
	       "topology":{"generator":"waxman","size":40,"seed":3},
	       "conns":[{"src":0,"dst":39}]}`
	cfg, err = Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology == nil || cfg.Topology.Switches != 40 {
		t.Fatalf("waxman topology = %+v", cfg.Topology)
	}
	if _, err := cfg.CompileTopology(); err != nil {
		t.Fatalf("waxman compile: %v", err)
	}
}

func TestParseTopologyExplicit(t *testing.T) {
	j := `{"trunk_delay":"10ms","buffer":20,
	       "topology":{
	         "switches":3,
	         "links":[{"a":0,"b":1,"bandwidth":500000},
	                  {"a":1,"b":2,"delay":"50ms","buffer":-1}],
	         "hosts":[{"switch":0},{"switch":2},{"switch":2}],
	         "routes":[{"at":1,"dst":1,"via":2}]},
	       "conns":[{"src":0,"dst":1},{"src":0,"dst":2}]}`
	cfg, err := Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Topology
	if g == nil || g.Switches != 3 || len(g.Hosts) != 3 || len(g.Routes) != 1 {
		t.Fatalf("topology = %+v", g)
	}
	if g.Links[0].Bandwidth != 500000 || g.Links[1].Delay != 50*time.Millisecond || g.Links[1].Buffer != -1 {
		t.Fatalf("links = %+v", g.Links)
	}
	compiled, err := cfg.CompileTopology()
	if err != nil {
		t.Fatal(err)
	}
	if compiled.NumHosts() != 3 {
		t.Fatalf("compiled hosts = %d", compiled.NumHosts())
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := map[string]string{
		"empty topology":      `{"trunk_delay":"1s","buffer":20,"topology":{},"conns":[{"src":0,"dst":1}]}`,
		"unknown generator":   `{"trunk_delay":"1s","buffer":20,"topology":{"generator":"torus","size":3},"conns":[{"src":0,"dst":1}]}`,
		"chain too small":     `{"trunk_delay":"1s","buffer":20,"topology":{"generator":"chain","size":1},"conns":[{"src":0,"dst":1}]}`,
		"parking lot size":    `{"trunk_delay":"1s","buffer":20,"topology":{"generator":"parking-lot"},"conns":[{"src":0,"dst":1}]}`,
		"generator and links": `{"trunk_delay":"1s","buffer":20,"topology":{"generator":"chain","size":3,"switches":3},"conns":[{"src":0,"dst":1}]}`,
		"bad link delay":      `{"trunk_delay":"1s","buffer":20,"topology":{"switches":2,"links":[{"a":0,"b":1,"delay":"x"}]},"conns":[{"src":0,"dst":1}]}`,
		"disconnected":        `{"trunk_delay":"1s","buffer":20,"topology":{"switches":3,"links":[{"a":0,"b":1}]},"conns":[{"src":0,"dst":1}]}`,
		"self loop":           `{"trunk_delay":"1s","buffer":20,"topology":{"switches":2,"links":[{"a":0,"b":0},{"a":0,"b":1}]},"conns":[{"src":0,"dst":1}]}`,
		"bad route override":  `{"trunk_delay":"1s","buffer":20,"topology":{"generator":"chain","size":3,"routes":[{"at":0,"dst":2,"via":2}]},"conns":[{"src":0,"dst":1}]}`,
		"ba too small":        `{"trunk_delay":"1s","buffer":20,"topology":{"generator":"ba","size":1,"m":1},"conns":[{"src":0,"dst":1}]}`,
		"ba missing m":        `{"trunk_delay":"1s","buffer":20,"topology":{"generator":"ba","size":8},"conns":[{"src":0,"dst":1}]}`,
		"ba m too large":      `{"trunk_delay":"1s","buffer":20,"topology":{"generator":"ba","size":8,"m":8},"conns":[{"src":0,"dst":1}]}`,
		"waxman too small":    `{"trunk_delay":"1s","buffer":20,"topology":{"generator":"waxman","size":1},"conns":[{"src":0,"dst":1}]}`,
		"m on chain":          `{"trunk_delay":"1s","buffer":20,"topology":{"generator":"chain","size":4,"m":2},"conns":[{"src":0,"dst":1}]}`,
		"seed on parking-lot": `{"trunk_delay":"1s","buffer":20,"topology":{"generator":"parking-lot","size":3,"seed":4},"conns":[{"src":0,"dst":1}]}`,
		"dumbbell with size":  `{"trunk_delay":"1s","buffer":20,"topology":{"generator":"dumbbell","size":2},"conns":[{"src":0,"dst":1}]}`,
		"host out of range":   `{"trunk_delay":"1s","buffer":20,"conns":[{"src":0,"dst":5}]}`,
		"src equals dst":      `{"trunk_delay":"1s","buffer":20,"conns":[{"src":1,"dst":1}]}`,
		"negative ack size":   `{"trunk_delay":"1s","buffer":20,"ack_size":-1,"conns":[{"src":0,"dst":1}]}`,
	}
	for name, j := range cases {
		if _, err := Parse(strings.NewReader(j)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestGoldenScenarioFiles pins every shipped scenario to the canonical
// encoding: Decode∘Encode must reproduce the file byte for byte, and
// each file must parse into a compilable configuration.
func TestGoldenScenarioFiles(t *testing.T) {
	files, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("expected at least 5 shipped scenarios, found %d", len(files))
	}
	for _, p := range files {
		t.Run(filepath.Base(p), func(t *testing.T) {
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			canon, err := Canonical(raw)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(raw, canon) {
				t.Errorf("%s is not in canonical form; run it through scenario.Canonical", p)
			}
			// Canonicalizing twice must be a fixed point.
			again, err := Canonical(canon)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(canon, again) {
				t.Error("Canonical is not idempotent")
			}
			cfg, err := Parse(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cfg.CompileTopology(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEncodeStable asserts the canonical encoder's output is
// deterministic across calls.
func TestEncodeStable(t *testing.T) {
	f, err := Decode(strings.NewReader(twoWayJSON))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := f.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := f.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Encode is not deterministic")
	}
	if a.Len() == 0 || a.Bytes()[a.Len()-1] != '\n' {
		t.Fatal("Encode must end with a newline")
	}
}

func TestParseConnOptions(t *testing.T) {
	j := `{"trunk_delay":"10ms","buffer":20,
	       "conns":[{"src":0,"dst":1,"reno":true,"delayed_ack":true,
	                 "pace":"80ms","extra_delay":"100ms","max_wnd":8}]}`
	cfg, err := Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	c := cfg.Conns[0]
	if !c.Reno || !c.DelayedAck || c.Pace != 80*time.Millisecond ||
		c.ExtraDelay != 100*time.Millisecond || c.MaxWnd != 8 {
		t.Fatalf("conn = %+v", c)
	}
}

func TestParseDefaults(t *testing.T) {
	j := `{"trunk_delay":"1s","buffer":20,"conns":[{"src":0,"dst":1}]}`
	cfg, err := Parse(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Warmup != 100*time.Second || cfg.Duration != 600*time.Second {
		t.Fatalf("default warmup/duration = %v/%v", cfg.Warmup, cfg.Duration)
	}
	if cfg.AccessDelay != core.DefaultAccessDelay {
		t.Fatalf("access delay = %v", cfg.AccessDelay)
	}
	if cfg.HostProcessing != core.DefaultHostProcessing {
		t.Fatalf("host processing = %v", cfg.HostProcessing)
	}
}

func TestParseBadConnDurations(t *testing.T) {
	for name, j := range map[string]string{
		"bad pace":        `{"trunk_delay":"1s","buffer":20,"conns":[{"src":0,"dst":1,"pace":"x"}]}`,
		"bad extra delay": `{"trunk_delay":"1s","buffer":20,"conns":[{"src":0,"dst":1,"extra_delay":"x"}]}`,
		"bad start":       `{"trunk_delay":"1s","buffer":20,"conns":[{"src":0,"dst":1,"start":"x"}]}`,
	} {
		if _, err := Parse(strings.NewReader(j)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing trunk_delay": `{"buffer":20,"conns":[{"src":0,"dst":1}]}`,
		"bad duration":        `{"trunk_delay":"fast","buffer":20,"conns":[{"src":0,"dst":1}]}`,
		"negative duration":   `{"trunk_delay":"-1s","buffer":20,"conns":[{"src":0,"dst":1}]}`,
		"no conns":            `{"trunk_delay":"1s","buffer":20,"conns":[]}`,
		"bad discard":         `{"trunk_delay":"1s","buffer":20,"discard":"coin-flip","conns":[{"src":0,"dst":1}]}`,
		"bad discipline":      `{"trunk_delay":"1s","buffer":20,"discipline":"lifo","conns":[{"src":0,"dst":1}]}`,
		"unknown field":       `{"trunk_delay":"1s","buffer":20,"bufers":3,"conns":[{"src":0,"dst":1}]}`,
		"not json":            `trunk_delay: 1s`,
	}
	for name, j := range cases {
		if _, err := Parse(strings.NewReader(j)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestDecodeRejectsAllUnknownFields pins the strict-decode contract:
// every unknown key in the document is reported at once, each with its
// full path, not just the first one encoding/json would stop at.
func TestDecodeRejectsAllUnknownFields(t *testing.T) {
	in := `{
  "trunk_delay": "10ms",
  "bufer": 20,
  "topology": {
    "generator": "chain",
    "size": 3,
    "colour": "red"
  },
  "conns": [
    {"src": 0, "dst": 1},
    {"src": 1, "dst": 0, "typo_field": true}
  ],
  "extra_top": 1
}`
	_, err := Decode(strings.NewReader(in))
	if err == nil {
		t.Fatal("strict decode accepted unknown fields")
	}
	for _, path := range []string{
		`"bufer"`, `"extra_top"`, `"topology.colour"`, `"conns[1].typo_field"`,
	} {
		if !strings.Contains(err.Error(), path) {
			t.Errorf("error does not name %s:\n%v", path, err)
		}
	}
	if strings.Contains(err.Error(), `"trunk_delay"`) {
		t.Errorf("error names a known field:\n%v", err)
	}
}

// TestDecodeUnknownFieldsInNestedLists covers deep paths through the
// explicit-topology lists.
func TestDecodeUnknownFieldsInNestedLists(t *testing.T) {
	in := `{
  "trunk_delay": "10ms",
  "topology": {
    "switches": 2,
    "links": [{"a": 0, "b": 1, "bandwith": 50000}],
    "routes": [{"at": 0, "dst": 1, "vai": 1}]
  },
  "conns": [{"src": 0, "dst": 1}]
}`
	_, err := Decode(strings.NewReader(in))
	if err == nil {
		t.Fatal("strict decode accepted unknown fields")
	}
	for _, path := range []string{`"topology.links[0].bandwith"`, `"topology.routes[0].vai"`} {
		if !strings.Contains(err.Error(), path) {
			t.Errorf("error does not name %s:\n%v", path, err)
		}
	}
}

// TestDecodeLenient accepts the same document, returns the ignored
// paths in sorted order, and still parses to a runnable config.
func TestDecodeLenient(t *testing.T) {
	in := `{
  "trunk_delay": "10ms",
  "bufer": 20,
  "conns": [{"src": 0, "dst": 1, "typo_field": true}]
}`
	f, unknown, err := DecodeLenient(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"bufer", "conns[0].typo_field"}
	if len(unknown) != len(want) || unknown[0] != want[0] || unknown[1] != want[1] {
		t.Fatalf("unknown = %v, want %v", unknown, want)
	}
	if f.TrunkDelay != "10ms" {
		t.Fatalf("lenient decode lost known fields: %+v", f)
	}
	cfg, unknown2, err := ParseLenient(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(unknown2) != 2 {
		t.Fatalf("ParseLenient unknown = %v", unknown2)
	}
	if cfg.TrunkDelay != 10*time.Millisecond || len(cfg.Conns) != 1 {
		t.Fatalf("ParseLenient cfg = %+v", cfg)
	}
	// Strict Parse must reject the same bytes.
	if _, err := Parse(strings.NewReader(in)); err == nil {
		t.Fatal("strict Parse accepted unknown fields")
	}
}

func TestParseShards(t *testing.T) {
	cfg, err := Parse(strings.NewReader(`{
		"trunk_delay": "10ms", "buffer": 20, "shards": 2,
		"conns": [{"src": 0, "dst": 1}, {"src": 1, "dst": 0}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shards != 2 {
		t.Fatalf("Shards = %d", cfg.Shards)
	}

	cfg, err = Parse(strings.NewReader(`{
		"trunk_delay": "10ms", "buffer": 20,
		"topology": {"generator": "chain", "size": 4},
		"regions": [[0, 1], [2, 3]],
		"conns": [{"src": 0, "dst": 3}, {"src": 3, "dst": 0}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Regions) != 2 {
		t.Fatalf("Regions = %v", cfg.Regions)
	}
	// A sharded scenario file runs and matches its serial self.
	serial := cfg
	serial.Regions = nil
	if got, want := core.Run(cfg).Events, core.Run(serial).Events; got != want {
		t.Fatalf("sharded scenario ran %d events, serial %d", got, want)
	}
}

func TestParseShardsErrors(t *testing.T) {
	for name, body := range map[string]string{
		"negative-shards": `{"trunk_delay": "10ms", "buffer": 20, "shards": -1,
			"conns": [{"src": 0, "dst": 1}]}`,
		"shards-regions-conflict": `{"trunk_delay": "10ms", "buffer": 20, "shards": 3,
			"regions": [[0], [1]],
			"conns": [{"src": 0, "dst": 1}]}`,
		"regions-uncovered": `{"trunk_delay": "10ms", "buffer": 20,
			"topology": {"generator": "chain", "size": 4},
			"regions": [[0, 1], [2]],
			"conns": [{"src": 0, "dst": 3}]}`,
	} {
		if _, err := Parse(strings.NewReader(body)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestEncodeShardsRoundTrip(t *testing.T) {
	in := `{
  "trunk_delay": "10ms",
  "buffer": 20,
  "conns": [
    {
      "src": 0,
      "dst": 1
    }
  ],
  "shards": 2,
  "regions": [
    [
      0
    ],
    [
      1
    ]
  ]
}
`
	f, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != in {
		t.Fatalf("round trip changed bytes:\n%s", buf.String())
	}
}
