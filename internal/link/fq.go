package link

import (
	"math"

	"tahoedyn/internal/packet"
)

// FQ is self-clocked fair queueing over per-connection flows — the
// gateway discipline of the Fair Queueing studies the paper cites in
// §1 ([2], [3]). Arriving packets are tagged with a virtual finish
// time F = max(v, lastF(flow)) + bits, where v is the finish tag of
// the packet in service, and the flow whose head has the smallest tag
// is served next. On overflow, the last packet of the longest flow
// queue is discarded (the heaviest flow pays), which may be the
// arrival itself.
type FQ struct {
	h     DiscHost
	sched *fqSched
}

// NewFQ returns a fair-queueing discipline.
func NewFQ() *FQ { return &FQ{sched: newFQSched()} }

// Bind implements Disc.
func (d *FQ) Bind(h DiscHost) { d.h = h }

// Len implements Disc.
func (d *FQ) Len() int { return d.sched.Len() }

// Admit implements Disc: tag and store the arrival, then on overflow
// evict the tail of the longest flow (possibly the arrival itself).
func (d *FQ) Admit(p *packet.Packet) bool {
	d.sched.Enqueue(p)
	if c := d.h.Capacity(); c > 0 && d.sched.Len()+d.h.InService() > c {
		victim := d.sched.DropFromLongest()
		d.h.Drop(victim)
		if victim == p {
			return false
		}
	}
	return true
}

// Dequeue implements Disc.
func (d *FQ) Dequeue() *packet.Packet { return d.sched.Dequeue() }

// fqPacket is a queued packet with its finish tag.
type fqPacket struct {
	p   *packet.Packet
	tag float64
}

// fqFlow is one per-connection backlog.
type fqFlow struct {
	conn  int
	pkts  []fqPacket
	lastF float64
}

// fqSched is a self-clocked fair queueing scheduler (Golestani's SCFQ
// approximation of bit-by-bit round robin).
type fqSched struct {
	flows map[int]*fqFlow
	order []*fqFlow // stable iteration order for determinism
	v     float64   // virtual time: finish tag of the packet in service
	total int
}

func newFQSched() *fqSched {
	return &fqSched{flows: make(map[int]*fqFlow)}
}

// Len returns the number of waiting packets across all flows.
func (s *fqSched) Len() int { return s.total }

// Enqueue tags and stores p.
func (s *fqSched) Enqueue(p *packet.Packet) {
	f := s.flows[p.Conn]
	if f == nil {
		f = &fqFlow{conn: p.Conn}
		s.flows[p.Conn] = f
		s.order = append(s.order, f)
	}
	start := math.Max(s.v, f.lastF)
	// +1 keeps zero-size ACKs strictly ordered within their flow.
	tag := start + float64(p.Size*8+1)
	f.lastF = tag
	f.pkts = append(f.pkts, fqPacket{p: p, tag: tag})
	s.total++
}

// Dequeue removes and returns the packet with the smallest finish tag
// (ties broken by flow creation order), advancing virtual time to its
// tag. It returns nil when empty.
func (s *fqSched) Dequeue() *packet.Packet {
	var best *fqFlow
	for _, f := range s.order {
		if len(f.pkts) == 0 {
			continue
		}
		if best == nil || f.pkts[0].tag < best.pkts[0].tag {
			best = f
		}
	}
	if best == nil {
		return nil
	}
	head := best.pkts[0]
	best.pkts = best.pkts[1:]
	s.total--
	s.v = head.tag
	return head.p
}

// DropFromLongest removes and returns the tail packet of the flow with
// the largest backlog (ties broken by flow creation order), or nil when
// empty. This is the buffer-stealing policy of the Fair Queueing papers:
// the heaviest flow pays for the overflow.
func (s *fqSched) DropFromLongest() *packet.Packet {
	var worst *fqFlow
	for _, f := range s.order {
		if len(f.pkts) == 0 {
			continue
		}
		if worst == nil || len(f.pkts) > len(worst.pkts) {
			worst = f
		}
	}
	if worst == nil {
		return nil
	}
	last := worst.pkts[len(worst.pkts)-1]
	worst.pkts = worst.pkts[:len(worst.pkts)-1]
	s.total--
	// Roll the flow's finish tag back so its next packet is not charged
	// for the evicted one.
	if len(worst.pkts) > 0 {
		worst.lastF = worst.pkts[len(worst.pkts)-1].tag
	} else {
		worst.lastF = s.v
	}
	return last.p
}
