package link

import (
	"math/rand"

	"tahoedyn/internal/packet"
)

// Lossy is a Receiver wrapper that drops each arriving packet with a
// fixed probability before forwarding the rest. The paper's links are
// error-free; Lossy exists for failure-injection tests and for exploring
// how the Tahoe retransmission machinery behaves under random loss.
type Lossy struct {
	dst  Receiver
	prob float64
	rng  *rand.Rand

	// Dropped counts packets discarded by the error model.
	Dropped uint64
	// OnDrop, if set, is called for every randomly dropped packet.
	OnDrop func(p *packet.Packet)
	// Pool, when non-nil, receives dropped packets: the error model is
	// the drop site and therefore the terminal owner (see packet.Pool).
	Pool *packet.Pool
}

// NewLossy wraps dst with a Bernoulli loss model of probability prob,
// using the given seeded source for reproducibility.
func NewLossy(dst Receiver, prob float64, rng *rand.Rand) *Lossy {
	return &Lossy{dst: dst, prob: prob, rng: rng}
}

// Deliver implements Receiver.
func (l *Lossy) Deliver(p *packet.Packet) {
	if l.rng.Float64() < l.prob {
		l.Dropped++
		if l.OnDrop != nil {
			l.OnDrop(p)
		}
		l.Pool.Put(p)
		return
	}
	l.dst.Deliver(p)
}
