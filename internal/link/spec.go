package link

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Queue policy names accepted by QueueSpec.Policy, scenario JSON
// "queue" objects, and the -queue CLI flag.
const (
	PolicyDropTail   = "drop-tail"
	PolicyRandomDrop = "random-drop"
	PolicyFairQueue  = "fair-queue"
	PolicyRED        = "red"
)

// QueueSpec is a declarative queue-discipline description: the bridge
// between configuration surfaces (scenario JSON, CLI flags, the
// facade) and a Disc instance. The zero Policy means drop-tail.
type QueueSpec struct {
	// Policy is one of the Policy* constants.
	Policy string
	// MinTh/MaxTh/MaxP/Wq parameterize the "red" policy (zero fields
	// take the RED defaults); they must be unset for other policies.
	MinTh, MaxTh, MaxP, Wq float64
}

// Validate reports the first problem with the spec.
func (s *QueueSpec) Validate() error {
	switch s.Policy {
	case "", PolicyDropTail, PolicyRandomDrop, PolicyFairQueue:
		if s.MinTh != 0 || s.MaxTh != 0 || s.MaxP != 0 || s.Wq != 0 {
			return fmt.Errorf("link: queue policy %q takes no RED thresholds", s.policy())
		}
		return nil
	case PolicyRED:
		c := s.redConfig()
		c.fillDefaults()
		return c.validate()
	default:
		return fmt.Errorf("link: unknown queue policy %q (want %s, %s, %s, or %s)",
			s.Policy, PolicyDropTail, PolicyRandomDrop, PolicyFairQueue, PolicyRED)
	}
}

func (s *QueueSpec) policy() string {
	if s.Policy == "" {
		return PolicyDropTail
	}
	return s.Policy
}

func (s *QueueSpec) redConfig() REDConfig {
	return REDConfig{MinTh: s.MinTh, MaxTh: s.MaxTh, MaxP: s.MaxP, Wq: s.Wq}
}

// NeedsRand reports whether Build requires a seeded source.
func (s *QueueSpec) NeedsRand() bool {
	return s.Policy == PolicyRandomDrop || s.Policy == PolicyRED
}

// Build materializes the discipline. rng is required iff NeedsRand.
func (s *QueueSpec) Build(rng *rand.Rand) (Disc, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.NeedsRand() && rng == nil {
		return nil, fmt.Errorf("link: queue policy %q needs a Rand source", s.Policy)
	}
	switch s.policy() {
	case PolicyDropTail:
		return NewDropTail(), nil
	case PolicyRandomDrop:
		return NewRandomDrop(rng), nil
	case PolicyFairQueue:
		return NewFQ(), nil
	default: // PolicyRED; Validate rejected everything else
		return NewRED(s.redConfig(), rng), nil
	}
}

// ParseQueueSpec parses the -queue flag syntax: a policy name,
// optionally followed by ":" and comma-separated key=value parameters.
// Examples: "drop-tail", "fair-queue", "red",
// "red:min=5,max=15,p=0.02,wq=0.002".
func ParseQueueSpec(text string) (*QueueSpec, error) {
	policy, params, _ := strings.Cut(text, ":")
	s := &QueueSpec{Policy: strings.TrimSpace(policy)}
	if params != "" {
		if s.Policy != PolicyRED {
			return nil, fmt.Errorf("link: queue policy %q takes no parameters", s.Policy)
		}
		for _, kv := range strings.Split(params, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("link: queue parameter %q is not key=value", kv)
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return nil, fmt.Errorf("link: queue parameter %q: %v", kv, err)
			}
			switch strings.TrimSpace(k) {
			case "min", "min_th":
				s.MinTh = f
			case "max", "max_th":
				s.MaxTh = f
			case "p", "max_p":
				s.MaxP = f
			case "wq":
				s.Wq = f
			default:
				return nil, fmt.Errorf("link: unknown queue parameter %q (want min, max, p, wq)", k)
			}
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// BehaviorSpec is a declarative link-behavior description. The zero
// value means "no behavior" (an ideal line).
type BehaviorSpec struct {
	// Loss is the Bernoulli loss probability.
	Loss float64
	// GoodToBad/BadToGood/BadLoss select the Gilbert-Elliott channel
	// when any is non-zero, replacing Loss.
	GoodToBad, BadToGood, BadLoss float64
	// Jitter bounds the uniform extra propagation delay.
	Jitter time.Duration
	// Reorder lets jittered packets overtake each other.
	Reorder bool
	// Trace, when non-nil, replays a time-varying line rate.
	Trace *RateTrace
}

// IsZero reports whether the spec describes an ideal line.
func (s *BehaviorSpec) IsZero() bool {
	return s == nil || *s == BehaviorSpec{}
}

func (s *BehaviorSpec) ge() *GEConfig {
	if s.GoodToBad == 0 && s.BadToGood == 0 && s.BadLoss == 0 {
		return nil
	}
	return &GEConfig{GoodToBad: s.GoodToBad, BadToGood: s.BadToGood, BadLoss: s.BadLoss}
}

func (s *BehaviorSpec) impairment() ImpairmentConfig {
	return ImpairmentConfig{
		Loss:    s.Loss,
		GE:      s.ge(),
		Jitter:  s.Jitter,
		Reorder: s.Reorder,
		Trace:   s.Trace,
	}
}

// Validate reports the first problem with the spec.
func (s *BehaviorSpec) Validate() error {
	if s.ge() != nil && s.Loss != 0 {
		return fmt.Errorf("link: behavior sets both Bernoulli loss and Gilbert-Elliott parameters; pick one loss model")
	}
	if s.Reorder && s.Jitter == 0 {
		return fmt.Errorf("link: behavior sets reorder without jitter; reordering needs a jitter bound")
	}
	c := s.impairment()
	return c.validate()
}

// NeedsRand reports whether Build requires a seeded source.
func (s *BehaviorSpec) NeedsRand() bool {
	return s.Loss > 0 || s.ge() != nil || s.Jitter > 0
}

// Build materializes the behavior, or returns nil for a zero spec.
// rng is required iff NeedsRand.
func (s *BehaviorSpec) Build(rng *rand.Rand) (Behavior, error) {
	if s.IsZero() {
		return nil, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	im, err := NewImpairment(s.impairment(), rng)
	if err != nil {
		return nil, err
	}
	return im, nil
}

// ParseBehaviorSpec parses the -behavior flag syntax: comma-separated
// terms. Examples: "loss=0.01", "ge=0.01/0.3/0.5" (good→bad,
// bad→good, bad-state loss), "jitter=5ms", "jitter=5ms,reorder",
// "trace=path/to/rates.rt", and combinations ("loss=0.01,jitter=2ms").
// trace= loads the schedule file immediately.
func ParseBehaviorSpec(text string) (*BehaviorSpec, error) {
	s := &BehaviorSpec{}
	for _, term := range strings.Split(text, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		if term == "reorder" {
			s.Reorder = true
			continue
		}
		k, v, ok := strings.Cut(term, "=")
		if !ok {
			return nil, fmt.Errorf("link: behavior term %q is not key=value", term)
		}
		switch k {
		case "loss":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("link: behavior loss %q: %v", v, err)
			}
			s.Loss = f
		case "ge":
			parts := strings.Split(v, "/")
			if len(parts) != 3 {
				return nil, fmt.Errorf("link: behavior ge %q: want good_to_bad/bad_to_good/bad_loss", v)
			}
			vals := make([]float64, 3)
			for i, p := range parts {
				f, err := strconv.ParseFloat(p, 64)
				if err != nil {
					return nil, fmt.Errorf("link: behavior ge %q: %v", v, err)
				}
				vals[i] = f
			}
			s.GoodToBad, s.BadToGood, s.BadLoss = vals[0], vals[1], vals[2]
		case "jitter":
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, fmt.Errorf("link: behavior jitter %q: %v", v, err)
			}
			s.Jitter = d
		case "trace":
			rt, err := LoadRateTrace(v)
			if err != nil {
				return nil, err
			}
			s.Trace = rt
		default:
			return nil, fmt.Errorf("link: unknown behavior term %q (want loss, ge, jitter, reorder, trace)", k)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
