package link

import (
	"math/rand"
	"time"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/queue"
)

// Disc is a queue discipline: the policy deciding which arriving
// packets enter a port's buffer, which buffered packet is served next,
// and which packet pays for an overflow. It subsumes what used to be
// the Discard enum plus the FIFO/FairQueue special-casing inside Port.
//
// A discipline owns only the *waiting* packets. The packet currently
// being serialized onto the line is held by the port itself and is
// visible to the discipline through DiscHost.InService; Port.QueueLen
// (and every traced queue length) counts it, preserving the paper's
// convention that the in-service packet occupies its buffer slot until
// the last bit is sent.
//
// Ownership: a packet offered to Admit either enters the discipline
// (accepted) or is dropped via DiscHost.Drop — by the discipline, at
// the exact moment of discard, so eviction drops and arrival drops
// trace in their true order. Admit reports whether the arrival itself
// survived. Dequeue transfers ownership of one waiting packet back to
// the port.
type Disc interface {
	// Bind attaches the discipline to its port. It is called exactly
	// once, before any traffic.
	Bind(h DiscHost)
	// Len returns the number of waiting packets (excluding the
	// in-service packet).
	Len() int
	// Admit offers an arriving packet. The discipline either stores it
	// (return true), possibly after evicting a victim via DiscHost.Drop,
	// or discards it via DiscHost.Drop (return false).
	Admit(p *packet.Packet) bool
	// Dequeue removes and returns the next packet to transmit, or nil
	// when no packet is waiting.
	Dequeue() *packet.Packet
}

// DiscHost is the view of the owning port a discipline sees: the
// clock, the configured capacity, whether the transmitter is busy, the
// drop sink, and the nominal serialization time of the line (for
// disciplines, like RED, that age state across idle periods).
type DiscHost interface {
	// Now returns the current simulation time.
	Now() time.Duration
	// Capacity returns the configured buffer capacity in packets,
	// counting the in-service packet; <= 0 means unbounded.
	Capacity() int
	// InService returns 1 while a packet is being serialized, else 0.
	InService() int
	// Drop records and releases a discarded packet (stats, trace event,
	// drop hook, pool return). The discipline must have removed the
	// packet from its own structures first.
	Drop(p *packet.Packet)
	// NominalTx returns the serialization time of sizeBytes at the
	// port's configured bandwidth (ignoring any time-varying behavior).
	NominalTx(sizeBytes int) time.Duration
}

// fifoBacked is implemented by disciplines whose waiting packets live
// in a single FIFO, exposing it for analysis (Port.Queue).
type fifoBacked interface {
	fifo() *queue.FIFO
}

// DropTail is the paper's discipline: FIFO service, arrivals at a full
// buffer are discarded.
type DropTail struct {
	h DiscHost
	q *queue.FIFO
}

// NewDropTail returns the default drop-tail FIFO discipline.
func NewDropTail() *DropTail { return &DropTail{} }

// Bind implements Disc.
func (d *DropTail) Bind(h DiscHost) {
	d.h = h
	d.q = queue.New(capFor(h))
}

// Len implements Disc.
func (d *DropTail) Len() int { return d.q.Len() }

// Admit implements Disc: reject the arrival iff the buffer (waiting
// plus in-service) is at capacity.
func (d *DropTail) Admit(p *packet.Packet) bool {
	if c := d.h.Capacity(); c > 0 && d.q.Len()+d.h.InService() >= c {
		d.h.Drop(p)
		return false
	}
	d.q.Push(p)
	return true
}

// Dequeue implements Disc.
func (d *DropTail) Dequeue() *packet.Packet { return d.q.Pop() }

func (d *DropTail) fifo() *queue.FIFO { return d.q }

// RandomDropDisc is the Random Drop gateway discipline of the studies
// the paper cites in §1: on overflow a uniform choice among the
// waiting packets and the arrival is discarded. The in-service packet
// is never evicted. Service stays FIFO.
type RandomDropDisc struct {
	h   DiscHost
	q   *queue.FIFO
	rng *rand.Rand
}

// NewRandomDrop returns a Random Drop discipline driven by the given
// seeded source (required, for reproducible runs).
func NewRandomDrop(rng *rand.Rand) *RandomDropDisc {
	if rng == nil {
		panic("link: RandomDrop needs a Rand source")
	}
	return &RandomDropDisc{rng: rng}
}

// Bind implements Disc.
func (d *RandomDropDisc) Bind(h DiscHost) {
	d.h = h
	d.q = queue.New(capFor(h))
}

// Len implements Disc.
func (d *RandomDropDisc) Len() int { return d.q.Len() }

// Admit implements Disc. The draw is Intn(waiting+1): index `waiting`
// means the arrival itself is the victim.
func (d *RandomDropDisc) Admit(p *packet.Packet) bool {
	if c := d.h.Capacity(); c > 0 && d.q.Len()+d.h.InService() >= c {
		evictable := d.q.Len()
		pick := d.rng.Intn(evictable + 1)
		if pick >= evictable {
			d.h.Drop(p)
			return false
		}
		victim := d.q.RemoveAt(pick)
		d.h.Drop(victim)
		// The arrival now fits.
	}
	d.q.Push(p)
	return true
}

// Dequeue implements Disc.
func (d *RandomDropDisc) Dequeue() *packet.Packet { return d.q.Pop() }

func (d *RandomDropDisc) fifo() *queue.FIFO { return d.q }

// capFor sizes a discipline's waiting-packet FIFO: the in-service
// packet lives outside the discipline, so `capacity` waiting slots
// always suffice (and 0 stays unbounded).
func capFor(h DiscHost) int {
	c := h.Capacity()
	if c < 0 {
		return 0
	}
	return c
}
