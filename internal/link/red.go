package link

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/queue"
)

// REDConfig parameterizes Random Early Detection (Floyd & Jacobson,
// 1993). Thresholds are in packets, against the EWMA queue average.
// Zero fields take the defaults below, chosen for the paper's 20-packet
// bottleneck buffers.
type REDConfig struct {
	// MinTh is the average queue length below which no packet is
	// dropped. Default 5.
	MinTh float64
	// MaxTh is the average queue length at and above which every
	// arrival is dropped. Default 15.
	MaxTh float64
	// MaxP is the drop probability as the average reaches MaxTh.
	// Default 0.02.
	MaxP float64
	// Wq is the EWMA weight: avg += Wq * (q - avg) per arrival.
	// Default 0.002.
	Wq float64
}

func (c *REDConfig) fillDefaults() {
	if c.MinTh == 0 {
		c.MinTh = 5
	}
	if c.MaxTh == 0 {
		c.MaxTh = 15
	}
	if c.MaxP == 0 {
		c.MaxP = 0.02
	}
	if c.Wq == 0 {
		c.Wq = 0.002
	}
}

func (c *REDConfig) validate() error {
	if c.MinTh < 0 || c.MaxTh <= c.MinTh {
		return fmt.Errorf("link: RED thresholds need 0 <= min_th < max_th, got %g/%g", c.MinTh, c.MaxTh)
	}
	if c.MaxP <= 0 || c.MaxP > 1 {
		return fmt.Errorf("link: RED max_p %g outside (0,1]", c.MaxP)
	}
	if c.Wq <= 0 || c.Wq > 1 {
		return fmt.Errorf("link: RED wq %g outside (0,1]", c.Wq)
	}
	return nil
}

// RED is the Random Early Detection AQM discipline: FIFO service, with
// arrivals dropped probabilistically as the exponentially weighted
// average queue length moves between MinTh and MaxTh, and always at or
// above MaxTh. The count-based correction of the RED paper spreads the
// early drops out: pa = pb / (1 - count*pb), where count is the number
// of arrivals accepted since the last drop.
//
// All randomness comes from the discipline's own seeded source — in a
// scenario run, a per-entity stream derived from Config.Seed and the
// port's stable index (DESIGN.md §15) — so sharded runs reproduce the
// serial drop sequence exactly.
type RED struct {
	h   DiscHost
	q   *queue.FIFO
	cfg REDConfig
	rng *rand.Rand

	avg   float64
	count int // arrivals since the last drop; -1 below MinTh

	// Idle aging: when an arrival finds the link idle, the average
	// decays by (1-Wq)^m where m estimates how many typical packets
	// could have been sent while idle. busyEnd is the nominal finish
	// time of the last transmission started; typTx its serialization
	// time.
	busyEnd time.Duration
	typTx   time.Duration
}

// NewRED returns a RED discipline with the given thresholds, driven by
// the given seeded source (required).
func NewRED(cfg REDConfig, rng *rand.Rand) *RED {
	if rng == nil {
		panic("link: RED needs a Rand source")
	}
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		panic(err.Error())
	}
	return &RED{cfg: cfg, rng: rng, count: -1}
}

// Bind implements Disc.
func (d *RED) Bind(h DiscHost) {
	d.h = h
	d.q = queue.New(capFor(h))
}

// Len implements Disc.
func (d *RED) Len() int { return d.q.Len() }

// Admit implements Disc.
func (d *RED) Admit(p *packet.Packet) bool {
	total := d.q.Len() + d.h.InService()
	now := d.h.Now()
	if total == 0 {
		// Arrival to an idle link: decay the average across the idle
		// period, measured in typical packet times.
		if idle := now - d.busyEnd; idle > 0 && d.typTx > 0 {
			m := float64(idle) / float64(d.typTx)
			d.avg *= math.Pow(1-d.cfg.Wq, m)
		}
	} else {
		d.avg += d.cfg.Wq * (float64(total) - d.avg)
	}

	drop := false
	switch {
	case d.avg >= d.cfg.MaxTh:
		drop = true
	case d.avg >= d.cfg.MinTh:
		d.count++
		pb := d.cfg.MaxP * (d.avg - d.cfg.MinTh) / (d.cfg.MaxTh - d.cfg.MinTh)
		pa := pb
		if f := 1 - float64(d.count)*pb; f > 0 {
			pa = pb / f
		} else {
			pa = 1
		}
		drop = d.rng.Float64() < pa
	default:
		d.count = -1
	}
	// The physical buffer still binds: a full queue forces the drop
	// whatever the average says.
	if c := d.h.Capacity(); c > 0 && total >= c {
		drop = true
	}
	if drop {
		d.count = 0
		d.h.Drop(p)
		return false
	}
	d.q.Push(p)
	return true
}

// Dequeue implements Disc.
func (d *RED) Dequeue() *packet.Packet {
	p := d.q.Pop()
	if p != nil {
		d.typTx = d.h.NominalTx(p.Size)
		d.busyEnd = d.h.Now() + d.typTx
	}
	return p
}

func (d *RED) fifo() *queue.FIFO { return d.q }
