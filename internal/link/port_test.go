package link

import (
	"math/rand"
	"testing"
	"time"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

// sink records delivered packets with their arrival times.
type sink struct {
	eng  *sim.Engine
	pkts []*packet.Packet
	at   []time.Duration
}

func (s *sink) Deliver(p *packet.Packet) {
	s.pkts = append(s.pkts, p)
	s.at = append(s.at, s.eng.Now())
}

func newTestPort(eng *sim.Engine, buffer int) (*Port, *sink) {
	s := &sink{eng: eng}
	// 50 Kbps bottleneck, 10 ms propagation: a 500 B packet takes 80 ms
	// to serialize, exactly as in the paper.
	pt := NewPort(eng, Config{
		Name:      "test",
		Bandwidth: 50_000,
		Delay:     10 * time.Millisecond,
		Buffer:    buffer,
	}, s)
	return pt, s
}

func TestTxTimeMatchesPaperParameters(t *testing.T) {
	if got := TxTime(500, 50_000); got != 80*time.Millisecond {
		t.Fatalf("data tx time = %v, want 80ms", got)
	}
	if got := TxTime(50, 50_000); got != 8*time.Millisecond {
		t.Fatalf("ack tx time = %v, want 8ms", got)
	}
	if got := TxTime(500, 10_000_000); got != 400*time.Microsecond {
		t.Fatalf("access data tx time = %v, want 400µs", got)
	}
	if got := TxTime(0, 50_000); got != 0 {
		t.Fatalf("zero-size tx time = %v, want 0", got)
	}
}

func TestSinglePacketDeliveryTiming(t *testing.T) {
	eng := sim.New()
	pt, s := newTestPort(eng, 0)
	pt.Send(&packet.Packet{ID: 1, Size: 500})
	eng.Run()
	if len(s.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(s.pkts))
	}
	want := 80*time.Millisecond + 10*time.Millisecond
	if s.at[0] != want {
		t.Fatalf("delivered at %v, want %v", s.at[0], want)
	}
}

func TestSerializationBackToBack(t *testing.T) {
	eng := sim.New()
	pt, s := newTestPort(eng, 0)
	for i := uint64(0); i < 3; i++ {
		pt.Send(&packet.Packet{ID: i, Size: 500})
	}
	eng.Run()
	if len(s.pkts) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(s.pkts))
	}
	for i, want := range []time.Duration{
		90 * time.Millisecond,
		170 * time.Millisecond,
		250 * time.Millisecond,
	} {
		if s.at[i] != want {
			t.Fatalf("packet %d delivered at %v, want %v", i, s.at[i], want)
		}
		if s.pkts[i].ID != uint64(i) {
			t.Fatalf("packet %d has ID %d (FIFO violated)", i, s.pkts[i].ID)
		}
	}
}

func TestDropTailAtPort(t *testing.T) {
	eng := sim.New()
	pt, s := newTestPort(eng, 2)
	var dropped []*packet.Packet
	pt.OnDrop = func(p *packet.Packet) { dropped = append(dropped, p) }
	for i := uint64(0); i < 4; i++ {
		pt.Send(&packet.Packet{ID: i, Size: 500})
	}
	eng.Run()
	// Buffer of 2 counts the in-service packet, so packets 2 and 3 drop.
	if len(s.pkts) != 2 || len(dropped) != 2 {
		t.Fatalf("delivered %d dropped %d, want 2/2", len(s.pkts), len(dropped))
	}
	if dropped[0].ID != 2 || dropped[1].ID != 3 {
		t.Fatalf("dropped IDs %d,%d, want 2,3", dropped[0].ID, dropped[1].ID)
	}
	if pt.Stats().Dropped != 2 {
		t.Fatalf("stats.Dropped = %d, want 2", pt.Stats().Dropped)
	}
}

func TestQueueDrainsWhileTransmitting(t *testing.T) {
	eng := sim.New()
	pt, s := newTestPort(eng, 2)
	pt.Send(&packet.Packet{ID: 0, Size: 500})
	pt.Send(&packet.Packet{ID: 1, Size: 500})
	// After the first packet departs (80 ms), there is room again.
	eng.ScheduleAt(81*time.Millisecond, func() {
		if !pt.Send(&packet.Packet{ID: 2, Size: 500}) {
			t.Error("send after drain was dropped")
		}
	})
	eng.Run()
	if len(s.pkts) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(s.pkts))
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	eng := sim.New()
	pt, _ := newTestPort(eng, 0)
	pt.Send(&packet.Packet{ID: 0, Size: 500})
	pt.Send(&packet.Packet{ID: 1, Size: 50})
	eng.Run()
	want := 80*time.Millisecond + 8*time.Millisecond
	if pt.Stats().Busy != want {
		t.Fatalf("Busy = %v, want %v", pt.Stats().Busy, want)
	}
	if pt.Stats().Transmitted != 2 || pt.Stats().TxBytes != 550 {
		t.Fatalf("stats = %+v", pt.Stats())
	}
}

func TestOnQueueLenCallback(t *testing.T) {
	eng := sim.New()
	pt, _ := newTestPort(eng, 0)
	var lens []int
	pt.OnQueueLen = func(n int) { lens = append(lens, n) }
	pt.Send(&packet.Packet{ID: 0, Size: 500})
	pt.Send(&packet.Packet{ID: 1, Size: 500})
	eng.Run()
	want := []int{1, 2, 1, 0}
	if len(lens) != len(want) {
		t.Fatalf("lens = %v, want %v", lens, want)
	}
	for i := range want {
		if lens[i] != want[i] {
			t.Fatalf("lens = %v, want %v", lens, want)
		}
	}
}

func TestZeroSizePacketsTransmitInstantly(t *testing.T) {
	eng := sim.New()
	pt, s := newTestPort(eng, 0)
	for i := uint64(0); i < 10; i++ {
		pt.Send(&packet.Packet{ID: i, Size: 0})
	}
	eng.Run()
	if len(s.pkts) != 10 {
		t.Fatalf("delivered %d, want 10", len(s.pkts))
	}
	for _, at := range s.at {
		if at != 10*time.Millisecond {
			t.Fatalf("zero-size packet delivered at %v, want pure propagation 10ms", at)
		}
	}
}

func TestRandomDropEvictsFromBuffer(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	pt := NewPort(eng, Config{
		Name:      "rd",
		Bandwidth: 50_000,
		Delay:     time.Millisecond,
		Buffer:    3,
		Discard:   RandomDrop,
		Rand:      rand.New(rand.NewSource(7)),
	}, s)
	var dropped []*packet.Packet
	pt.OnDrop = func(p *packet.Packet) { dropped = append(dropped, p) }
	for i := uint64(0); i < 10; i++ {
		pt.Send(&packet.Packet{ID: i, Size: 500})
	}
	eng.Run()
	if len(s.pkts)+len(dropped) != 10 {
		t.Fatalf("conservation: %d delivered + %d dropped != 10", len(s.pkts), len(dropped))
	}
	if len(dropped) != 7 {
		t.Fatalf("dropped %d, want 7 (buffer 3)", len(dropped))
	}
	// The in-service packet (ID 0) must never be evicted.
	for _, p := range dropped {
		if p.ID == 0 {
			t.Fatal("random drop evicted the in-service packet")
		}
	}
	// Unlike drop-tail, some eviction should hit the buffer, not only
	// arrivals: with seed 7 at least one delivered packet has a high ID.
	lastDelivered := s.pkts[len(s.pkts)-1].ID
	if lastDelivered <= 2 {
		t.Fatalf("random drop behaved like drop-tail (last delivered ID %d)", lastDelivered)
	}
	// Delivered packets stay in FIFO order.
	for i := 1; i < len(s.pkts); i++ {
		if s.pkts[i].ID < s.pkts[i-1].ID {
			t.Fatal("random drop broke FIFO order of survivors")
		}
	}
}

func TestRandomDropNeedsRand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for RandomDrop without Rand")
		}
	}()
	eng := sim.New()
	NewPort(eng, Config{Name: "x", Bandwidth: 1, Discard: RandomDrop}, &sink{eng: eng})
}

func TestLossyDropsDeterministically(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	lossy := NewLossy(s, 0.5, rand.New(rand.NewSource(42)))
	n := 1000
	for i := 0; i < n; i++ {
		lossy.Deliver(&packet.Packet{ID: uint64(i), Size: 500})
	}
	if int(lossy.Dropped)+len(s.pkts) != n {
		t.Fatalf("conservation violated: %d dropped + %d delivered != %d",
			lossy.Dropped, len(s.pkts), n)
	}
	if lossy.Dropped < 400 || lossy.Dropped > 600 {
		t.Fatalf("dropped %d of %d at p=0.5", lossy.Dropped, n)
	}
	// Re-run with same seed: identical outcome.
	s2 := &sink{eng: eng}
	lossy2 := NewLossy(s2, 0.5, rand.New(rand.NewSource(42)))
	for i := 0; i < n; i++ {
		lossy2.Deliver(&packet.Packet{ID: uint64(i), Size: 500})
	}
	if lossy2.Dropped != lossy.Dropped {
		t.Fatalf("non-deterministic loss: %d vs %d", lossy2.Dropped, lossy.Dropped)
	}
}

func TestLossyZeroAndOne(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	none := NewLossy(s, 0, rand.New(rand.NewSource(1)))
	for i := 0; i < 100; i++ {
		none.Deliver(&packet.Packet{ID: uint64(i)})
	}
	if none.Dropped != 0 || len(s.pkts) != 100 {
		t.Fatalf("p=0 dropped %d", none.Dropped)
	}
	all := NewLossy(s, 1, rand.New(rand.NewSource(1)))
	for i := 0; i < 100; i++ {
		all.Deliver(&packet.Packet{ID: uint64(i)})
	}
	if all.Dropped != 100 {
		t.Fatalf("p=1 dropped %d, want 100", all.Dropped)
	}
}
