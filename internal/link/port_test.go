package link

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

// sink records delivered packets with their arrival times.
type sink struct {
	eng  *sim.Engine
	pkts []*packet.Packet
	at   []time.Duration
}

func (s *sink) Deliver(p *packet.Packet) {
	s.pkts = append(s.pkts, p)
	s.at = append(s.at, s.eng.Now())
}

func newTestPort(eng *sim.Engine, buffer int) (*Port, *sink) {
	s := &sink{eng: eng}
	// 50 Kbps bottleneck, 10 ms propagation: a 500 B packet takes 80 ms
	// to serialize, exactly as in the paper.
	pt := NewPort(eng, Config{
		Name:      "test",
		Bandwidth: 50_000,
		Delay:     10 * time.Millisecond,
		Buffer:    buffer,
	}, s)
	return pt, s
}

func TestTxTimeMatchesPaperParameters(t *testing.T) {
	if got := TxTime(500, 50_000); got != 80*time.Millisecond {
		t.Fatalf("data tx time = %v, want 80ms", got)
	}
	if got := TxTime(50, 50_000); got != 8*time.Millisecond {
		t.Fatalf("ack tx time = %v, want 8ms", got)
	}
	if got := TxTime(500, 10_000_000); got != 400*time.Microsecond {
		t.Fatalf("access data tx time = %v, want 400µs", got)
	}
	if got := TxTime(0, 50_000); got != 0 {
		t.Fatalf("zero-size tx time = %v, want 0", got)
	}
}

func TestSinglePacketDeliveryTiming(t *testing.T) {
	eng := sim.New()
	pt, s := newTestPort(eng, 0)
	pt.Send(&packet.Packet{ID: 1, Size: 500})
	eng.Run()
	if len(s.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(s.pkts))
	}
	want := 80*time.Millisecond + 10*time.Millisecond
	if s.at[0] != want {
		t.Fatalf("delivered at %v, want %v", s.at[0], want)
	}
}

func TestSerializationBackToBack(t *testing.T) {
	eng := sim.New()
	pt, s := newTestPort(eng, 0)
	for i := uint64(0); i < 3; i++ {
		pt.Send(&packet.Packet{ID: i, Size: 500})
	}
	eng.Run()
	if len(s.pkts) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(s.pkts))
	}
	for i, want := range []time.Duration{
		90 * time.Millisecond,
		170 * time.Millisecond,
		250 * time.Millisecond,
	} {
		if s.at[i] != want {
			t.Fatalf("packet %d delivered at %v, want %v", i, s.at[i], want)
		}
		if s.pkts[i].ID != uint64(i) {
			t.Fatalf("packet %d has ID %d (FIFO violated)", i, s.pkts[i].ID)
		}
	}
}

func TestDropTailAtPort(t *testing.T) {
	eng := sim.New()
	pt, s := newTestPort(eng, 2)
	var dropped []*packet.Packet
	pt.OnDrop = func(p *packet.Packet) { dropped = append(dropped, p) }
	for i := uint64(0); i < 4; i++ {
		pt.Send(&packet.Packet{ID: i, Size: 500})
	}
	eng.Run()
	// Buffer of 2 counts the in-service packet, so packets 2 and 3 drop.
	if len(s.pkts) != 2 || len(dropped) != 2 {
		t.Fatalf("delivered %d dropped %d, want 2/2", len(s.pkts), len(dropped))
	}
	if dropped[0].ID != 2 || dropped[1].ID != 3 {
		t.Fatalf("dropped IDs %d,%d, want 2,3", dropped[0].ID, dropped[1].ID)
	}
	if pt.Stats().Dropped != 2 {
		t.Fatalf("stats.Dropped = %d, want 2", pt.Stats().Dropped)
	}
}

func TestQueueDrainsWhileTransmitting(t *testing.T) {
	eng := sim.New()
	pt, s := newTestPort(eng, 2)
	pt.Send(&packet.Packet{ID: 0, Size: 500})
	pt.Send(&packet.Packet{ID: 1, Size: 500})
	// After the first packet departs (80 ms), there is room again.
	eng.ScheduleAt(81*time.Millisecond, func() {
		if !pt.Send(&packet.Packet{ID: 2, Size: 500}) {
			t.Error("send after drain was dropped")
		}
	})
	eng.Run()
	if len(s.pkts) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(s.pkts))
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	eng := sim.New()
	pt, _ := newTestPort(eng, 0)
	pt.Send(&packet.Packet{ID: 0, Size: 500})
	pt.Send(&packet.Packet{ID: 1, Size: 50})
	eng.Run()
	want := 80*time.Millisecond + 8*time.Millisecond
	if pt.Stats().Busy != want {
		t.Fatalf("Busy = %v, want %v", pt.Stats().Busy, want)
	}
	if pt.Stats().Transmitted != 2 || pt.Stats().TxBytes != 550 {
		t.Fatalf("stats = %+v", pt.Stats())
	}
}

func TestOnQueueLenCallback(t *testing.T) {
	eng := sim.New()
	pt, _ := newTestPort(eng, 0)
	var lens []int
	pt.OnQueueLen = func(n int) { lens = append(lens, n) }
	pt.Send(&packet.Packet{ID: 0, Size: 500})
	pt.Send(&packet.Packet{ID: 1, Size: 500})
	eng.Run()
	want := []int{1, 2, 1, 0}
	if len(lens) != len(want) {
		t.Fatalf("lens = %v, want %v", lens, want)
	}
	for i := range want {
		if lens[i] != want[i] {
			t.Fatalf("lens = %v, want %v", lens, want)
		}
	}
}

func TestZeroSizePacketsTransmitInstantly(t *testing.T) {
	eng := sim.New()
	pt, s := newTestPort(eng, 0)
	for i := uint64(0); i < 10; i++ {
		pt.Send(&packet.Packet{ID: i, Size: 0})
	}
	eng.Run()
	if len(s.pkts) != 10 {
		t.Fatalf("delivered %d, want 10", len(s.pkts))
	}
	for _, at := range s.at {
		if at != 10*time.Millisecond {
			t.Fatalf("zero-size packet delivered at %v, want pure propagation 10ms", at)
		}
	}
}

func TestRandomDropEvictsFromBuffer(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	pt := NewPort(eng, Config{
		Name:      "rd",
		Bandwidth: 50_000,
		Delay:     time.Millisecond,
		Buffer:    3,
		Disc:      NewRandomDrop(rand.New(rand.NewSource(7))),
	}, s)
	var dropped []*packet.Packet
	pt.OnDrop = func(p *packet.Packet) { dropped = append(dropped, p) }
	for i := uint64(0); i < 10; i++ {
		pt.Send(&packet.Packet{ID: i, Size: 500})
	}
	eng.Run()
	if len(s.pkts)+len(dropped) != 10 {
		t.Fatalf("conservation: %d delivered + %d dropped != 10", len(s.pkts), len(dropped))
	}
	if len(dropped) != 7 {
		t.Fatalf("dropped %d, want 7 (buffer 3)", len(dropped))
	}
	// The in-service packet (ID 0) must never be evicted.
	for _, p := range dropped {
		if p.ID == 0 {
			t.Fatal("random drop evicted the in-service packet")
		}
	}
	// Unlike drop-tail, some eviction should hit the buffer, not only
	// arrivals: with seed 7 at least one delivered packet has a high ID.
	lastDelivered := s.pkts[len(s.pkts)-1].ID
	if lastDelivered <= 2 {
		t.Fatalf("random drop behaved like drop-tail (last delivered ID %d)", lastDelivered)
	}
	// Delivered packets stay in FIFO order.
	for i := 1; i < len(s.pkts); i++ {
		if s.pkts[i].ID < s.pkts[i-1].ID {
			t.Fatal("random drop broke FIFO order of survivors")
		}
	}
}

func TestRandomDropNeedsRand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for RandomDrop without Rand")
		}
	}()
	NewRandomDrop(nil)
}

// lossPort builds a port whose line drops with the given Bernoulli
// probability — the behavior-interface successor of the old Lossy
// receiver wrapper.
func lossPort(eng *sim.Engine, prob float64, seed int64) (*Port, *sink) {
	s := &sink{eng: eng}
	im, err := NewImpairment(ImpairmentConfig{Loss: prob}, rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err)
	}
	pt := NewPort(eng, Config{
		Name:      "lossy",
		Bandwidth: 10_000_000,
		Delay:     time.Millisecond,
		Behavior:  im,
	}, s)
	return pt, s
}

func TestBehaviorLossDropsDeterministically(t *testing.T) {
	run := func() (uint64, int) {
		eng := sim.New()
		pt, s := lossPort(eng, 0.5, 42)
		n := 1000
		for i := 0; i < n; i++ {
			eng.ScheduleAt(time.Duration(i)*time.Millisecond, func() {
				pt.Send(&packet.Packet{ID: uint64(i), Size: 500})
			})
		}
		eng.Run()
		if int(pt.Stats().Lost)+len(s.pkts) != n {
			t.Fatalf("conservation violated: %d lost + %d delivered != %d",
				pt.Stats().Lost, len(s.pkts), n)
		}
		return pt.Stats().Lost, len(s.pkts)
	}
	lost, delivered := run()
	if lost < 400 || lost > 600 {
		t.Fatalf("lost %d of 1000 at p=0.5", lost)
	}
	// Re-run with the same seed: identical outcome.
	lost2, delivered2 := run()
	if lost2 != lost || delivered2 != delivered {
		t.Fatalf("non-deterministic loss: %d/%d vs %d/%d", lost2, delivered2, lost, delivered)
	}
}

func TestBehaviorLossZeroAndOne(t *testing.T) {
	eng := sim.New()
	pt, s := lossPort(eng, 0, 1)
	for i := 0; i < 100; i++ {
		pt.Send(&packet.Packet{ID: uint64(i), Size: 50})
	}
	eng.Run()
	if pt.Stats().Lost != 0 || len(s.pkts) != 100 {
		t.Fatalf("p=0 lost %d, delivered %d", pt.Stats().Lost, len(s.pkts))
	}
	eng2 := sim.New()
	pt2, s2 := lossPort(eng2, 1, 1)
	for i := 0; i < 100; i++ {
		pt2.Send(&packet.Packet{ID: uint64(i), Size: 50})
	}
	eng2.Run()
	if pt2.Stats().Lost != 100 || len(s2.pkts) != 0 {
		t.Fatalf("p=1 lost %d, want 100", pt2.Stats().Lost)
	}
	// Line losses are not queue drops.
	if pt2.Stats().Dropped != 0 {
		t.Fatalf("line losses counted as queue drops: %d", pt2.Stats().Dropped)
	}
}

func TestBehaviorJitterPreservesOrderByDefault(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	im, err := NewImpairment(ImpairmentConfig{Jitter: 40 * time.Millisecond}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPort(eng, Config{
		Name:      "jit",
		Bandwidth: 10_000_000,
		Delay:     time.Millisecond,
		Behavior:  im,
	}, s)
	for i := 0; i < 200; i++ {
		pt.Send(&packet.Packet{ID: uint64(i), Size: 500})
	}
	eng.Run()
	if len(s.pkts) != 200 {
		t.Fatalf("delivered %d, want 200", len(s.pkts))
	}
	for i := 1; i < len(s.pkts); i++ {
		if s.pkts[i].ID < s.pkts[i-1].ID {
			t.Fatalf("jitter without reorder delivered %d before %d", s.pkts[i].ID, s.pkts[i-1].ID)
		}
		if s.at[i] < s.at[i-1] {
			t.Fatalf("arrival times went backwards: %v after %v", s.at[i], s.at[i-1])
		}
	}
	// Jitter must actually delay something beyond pure propagation.
	last := s.at[len(s.at)-1]
	baseline := 200*TxTime(500, 10_000_000) + time.Millisecond
	if last <= baseline {
		t.Fatalf("jitter added nothing: last arrival %v <= baseline %v", last, baseline)
	}
}

func TestBehaviorJitterReorders(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	im, err := NewImpairment(ImpairmentConfig{Jitter: 40 * time.Millisecond, Reorder: true}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPort(eng, Config{
		Name:      "reorder",
		Bandwidth: 10_000_000,
		Delay:     time.Millisecond,
		Behavior:  im,
	}, s)
	for i := 0; i < 200; i++ {
		pt.Send(&packet.Packet{ID: uint64(i), Size: 500})
	}
	eng.Run()
	if len(s.pkts) != 200 {
		t.Fatalf("delivered %d, want 200", len(s.pkts))
	}
	swaps := 0
	for i := 1; i < len(s.pkts); i++ {
		if s.pkts[i].ID < s.pkts[i-1].ID {
			swaps++
		}
	}
	if swaps == 0 {
		t.Fatal("reorder=true never reordered back-to-back packets under 40ms jitter")
	}
}

func TestGilbertElliottBurstsLoss(t *testing.T) {
	im, err := NewImpairment(ImpairmentConfig{
		GE: &GEConfig{GoodToBad: 0.01, BadToGood: 0.2, BadLoss: 1},
	}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	n, lost, bursts := 100_000, 0, 0
	inBurst := false
	for i := 0; i < n; i++ {
		_, drop := im.Impair(&packet.Packet{ID: uint64(i)}, time.Duration(i))
		if drop {
			lost++
			if !inBurst {
				bursts++
			}
		}
		inBurst = drop
	}
	// Stationary bad-state fraction ≈ 0.01/(0.01+0.2) ≈ 4.8%.
	if lost < n/50 || lost > n/10 {
		t.Fatalf("GE lost %d of %d; want a few percent", lost, n)
	}
	// Losses must cluster: mean burst length 1/BadToGood = 5 >> 1, so
	// the number of distinct bursts is far below the loss count.
	if bursts*2 > lost {
		t.Fatalf("GE losses did not burst: %d losses in %d bursts", lost, bursts)
	}
}

func TestRateTraceReplay(t *testing.T) {
	rt, err := ParseRateTrace(strings.NewReader(`
# cellular-ish schedule
100ms 50000
50ms  10000
`))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Cycle() != 150*time.Millisecond {
		t.Fatalf("cycle = %v, want 150ms", rt.Cycle())
	}
	cases := []struct {
		at   time.Duration
		want int64
	}{
		{0, 50000}, {99 * time.Millisecond, 50000},
		{100 * time.Millisecond, 10000}, {149 * time.Millisecond, 10000},
		{150 * time.Millisecond, 50000}, // loops
		{260 * time.Millisecond, 10000},
	}
	for _, c := range cases {
		if got := rt.RateAt(c.at); got != c.want {
			t.Fatalf("RateAt(%v) = %d, want %d", c.at, got, c.want)
		}
	}
}

func TestTraceDrivenPortSlowsDown(t *testing.T) {
	// 80ms of 50 Kbps then 800ms of 5 Kbps: the first 500 B packet
	// serializes in 80 ms, the second (starting at 80ms) in 800 ms.
	rt, err := NewRateTrace([]RateStep{
		{Hold: 80 * time.Millisecond, Rate: 50_000},
		{Hold: 800 * time.Millisecond, Rate: 5_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	im, err := NewImpairment(ImpairmentConfig{Trace: rt}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	s := &sink{eng: eng}
	pt := NewPort(eng, Config{
		Name:      "trace",
		Bandwidth: 50_000,
		Delay:     10 * time.Millisecond,
		Behavior:  im,
	}, s)
	pt.Send(&packet.Packet{ID: 0, Size: 500})
	pt.Send(&packet.Packet{ID: 1, Size: 500})
	eng.Run()
	if len(s.pkts) != 2 {
		t.Fatalf("delivered %d, want 2", len(s.pkts))
	}
	if want := 90 * time.Millisecond; s.at[0] != want {
		t.Fatalf("first arrival %v, want %v", s.at[0], want)
	}
	if want := 890 * time.Millisecond; s.at[1] != want {
		t.Fatalf("second arrival %v, want %v (4000 bits at 5 Kbps)", s.at[1], want)
	}
}

func TestREDKeepsAverageBetweenThresholds(t *testing.T) {
	// Saturate a RED port far beyond its drain rate: drops must start
	// early (well before the physical buffer fills) and the queue must
	// hover near the thresholds instead of pinning at capacity.
	eng := sim.New()
	s := &sink{eng: eng}
	pt := NewPort(eng, Config{
		Name:      "red",
		Bandwidth: 50_000,
		Delay:     time.Millisecond,
		Buffer:    40,
		Disc:      NewRED(REDConfig{MinTh: 5, MaxTh: 15, MaxP: 0.1, Wq: 0.02}, rand.New(rand.NewSource(5))),
	}, s)
	maxQ, sumQ, nQ := 0, 0, 0
	pt.OnQueueLen = func(n int) {
		if n > maxQ {
			maxQ = n
		}
		sumQ += n
		nQ++
	}
	// Offer 2x the line rate for 60 seconds.
	interval := TxTime(500, 100_000)
	for i := 0; i < 1500; i++ {
		pt.Send(&packet.Packet{ID: uint64(i), Size: 500})
		eng.RunUntil(time.Duration(i+1) * interval)
	}
	eng.Run()
	if pt.Stats().Dropped == 0 {
		t.Fatal("RED dropped nothing under 2x overload")
	}
	// Drop-tail under 2x overload pins the queue at the physical buffer
	// (40) for the whole run. RED must keep it off the ceiling — a brief
	// EWMA-lag overshoot past max_th is genuine RED behavior — and hold
	// the average near the thresholds.
	if maxQ >= 40 {
		t.Fatalf("queue reached the physical buffer (%d); RED never relieved it", maxQ)
	}
	if avg := float64(sumQ) / float64(nQ); avg > 20 {
		t.Fatalf("mean observed queue %.1f; RED should hold it near max_th=15", avg)
	}
	if len(s.pkts)+int(pt.Stats().Dropped) != 1500 {
		t.Fatalf("conservation: %d delivered + %d dropped != 1500", len(s.pkts), pt.Stats().Dropped)
	}
}

func TestREDIdleBelowMinThDropsNothing(t *testing.T) {
	// Arrivals spaced wider than the service time keep the queue (and
	// its average) at ~1: RED must behave exactly like drop-tail.
	eng := sim.New()
	s := &sink{eng: eng}
	pt := NewPort(eng, Config{
		Name:      "red-idle",
		Bandwidth: 50_000,
		Delay:     time.Millisecond,
		Buffer:    20,
		Disc:      NewRED(REDConfig{}, rand.New(rand.NewSource(9))),
	}, s)
	for i := 0; i < 200; i++ {
		eng.ScheduleAt(time.Duration(i)*100*time.Millisecond, func() {
			pt.Send(&packet.Packet{ID: uint64(i), Size: 500})
		})
	}
	eng.Run()
	if pt.Stats().Dropped != 0 {
		t.Fatalf("RED dropped %d packets at an idle queue", pt.Stats().Dropped)
	}
	if len(s.pkts) != 200 {
		t.Fatalf("delivered %d, want 200", len(s.pkts))
	}
}

func TestREDDeterministicWithSeed(t *testing.T) {
	run := func() (uint64, uint64) {
		eng := sim.New()
		s := &sink{eng: eng}
		pt := NewPort(eng, Config{
			Name:      "red-det",
			Bandwidth: 50_000,
			Delay:     time.Millisecond,
			Buffer:    30,
			Disc:      NewRED(REDConfig{MaxP: 0.1, Wq: 0.02}, rand.New(rand.NewSource(77))),
		}, s)
		interval := TxTime(500, 90_000)
		for i := 0; i < 800; i++ {
			pt.Send(&packet.Packet{ID: uint64(i), Size: 500})
			eng.RunUntil(time.Duration(i+1) * interval)
		}
		eng.Run()
		return pt.Stats().Dropped, pt.Stats().Transmitted
	}
	d1, t1 := run()
	d2, t2 := run()
	if d1 != d2 || t1 != t2 {
		t.Fatalf("RED with fixed seed diverged: %d/%d vs %d/%d", d1, t1, d2, t2)
	}
	if d1 == 0 {
		t.Fatal("RED dropped nothing under overload")
	}
}
