package link

import (
	"testing"
	"time"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

func newPooledFQPort(eng *sim.Engine, buffer int, pl *packet.Pool) (*Port, *sink) {
	s := &sink{eng: eng}
	pt := NewPort(eng, Config{
		Name:      "fq-pooled",
		Bandwidth: 50_000,
		Buffer:    buffer,
		Disc:      NewFQ(),
		Pool:      pl,
	}, s)
	return pt, s
}

// The drop-of-arrival edge in sendFQ: when the arriving packet's own flow
// is the longest, DropFromLongest evicts the arrival itself. Send must
// report rejection, skip the Enqueued counter and the OnQueueLen hook
// (the accepted queue length did not change), and release the arrival to
// the pool at the drop site.
func TestSendFQDropOfArrivalEdge(t *testing.T) {
	eng := sim.New()
	pl := packet.NewPool()
	pt, _ := newPooledFQPort(eng, 2, pl)
	var lens []int
	pt.OnQueueLen = func(n int) { lens = append(lens, n) }
	var dropped []*packet.Packet
	pt.OnDrop = func(p *packet.Packet) {
		if p.Released() {
			t.Fatal("OnDrop saw an already-released packet")
		}
		dropped = append(dropped, p)
	}

	mk := func(id uint64, conn int) *packet.Packet {
		p := pl.Get()
		p.ID, p.Conn, p.Size = id, conn, 500
		return p
	}
	// p0 enters service immediately; p1 waits. QueueLen is now 2 == Buffer.
	if !pt.Send(mk(0, 1)) || !pt.Send(mk(1, 1)) {
		t.Fatal("setup packets rejected")
	}
	// p2 joins flow 1, the only (hence longest) flow: it is its own victim.
	p2 := mk(2, 1)
	if pt.Send(p2) {
		t.Fatal("overflow arrival from the longest flow was accepted")
	}
	if len(dropped) != 1 || dropped[0] != p2 {
		t.Fatalf("dropped = %v, want exactly the arrival", dropped)
	}
	if !p2.Released() {
		t.Fatal("dropped arrival was not released to the pool")
	}
	if got := pt.Stats(); got.Dropped != 1 || got.Enqueued != 2 {
		t.Fatalf("stats = %+v, want Dropped=1 Enqueued=2", got)
	}
	// Two accepted arrivals reported lengths 1 and 2; the rejected one
	// must not have fired the hook at all.
	if len(lens) != 2 || lens[0] != 1 || lens[1] != 2 {
		t.Fatalf("OnQueueLen calls = %v, want [1 2]", lens)
	}
	if pt.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d after rejected arrival, want 2", pt.QueueLen())
	}
}

// When a light flow's arrival overflows the buffer, the heavy flow pays:
// the arrival is accepted and a queued packet is released instead.
func TestSendFQDropOfQueuedVictim(t *testing.T) {
	eng := sim.New()
	pl := packet.NewPool()
	pt, _ := newPooledFQPort(eng, 3, pl)
	mk := func(id uint64, conn int) *packet.Packet {
		p := pl.Get()
		p.ID, p.Conn, p.Size = id, conn, 500
		return p
	}
	pt.Send(mk(0, 1)) // enters service
	pt.Send(mk(1, 1))
	p2 := mk(2, 1) // tail of the heavy flow: the victim
	pt.Send(p2)
	if !pt.Send(mk(3, 2)) {
		t.Fatal("light-flow arrival rejected; the heavy flow should pay")
	}
	if !p2.Released() {
		t.Fatal("heavy flow's queued tail was not released on eviction")
	}
	if pt.QueueLen() != 3 {
		t.Fatalf("QueueLen = %d, want 3", pt.QueueLen())
	}
}

// QueueLen counts the in-service packet exactly once through a full
// transmission lifecycle under FairQueue, matching the FIFO convention
// where the head stays queued until its last bit is sent.
func TestFQQueueLenCountsInServiceOnceThroughLifecycle(t *testing.T) {
	eng := sim.New()
	pt, s := newFQPort(eng, 0)
	pt.Send(&packet.Packet{ID: 0, Conn: 1, Size: 500})
	pt.Send(&packet.Packet{ID: 1, Conn: 1, Size: 500})
	pt.Send(&packet.Packet{ID: 2, Conn: 2, Size: 500})
	// 500 B at 50 Kbps = 80 ms per packet.
	if pt.QueueLen() != 3 {
		t.Fatalf("QueueLen = %d at t=0, want 3 (1 in service + 2 waiting)", pt.QueueLen())
	}
	eng.RunUntil(40 * time.Millisecond) // mid-transmission
	if pt.QueueLen() != 3 {
		t.Fatalf("QueueLen = %d mid-transmission, want 3", pt.QueueLen())
	}
	eng.RunUntil(100 * time.Millisecond) // first done, second in service
	if pt.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d after first departure, want 2", pt.QueueLen())
	}
	eng.RunUntil(180 * time.Millisecond)
	if pt.QueueLen() != 1 {
		t.Fatalf("QueueLen = %d after second departure, want 1", pt.QueueLen())
	}
	eng.Run()
	if pt.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d after drain, want 0", pt.QueueLen())
	}
	if len(s.pkts) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(s.pkts))
	}
}

// A FIFO drop-tail port with a pool releases exactly the packets it
// drops; delivered packets stay owned by the receiver.
func TestFIFODropReleasesToPool(t *testing.T) {
	eng := sim.New()
	pl := packet.NewPool()
	s := &sink{eng: eng}
	pt := NewPort(eng, Config{
		Name:      "pooled",
		Bandwidth: 50_000,
		Buffer:    2,
		Pool:      pl,
	}, s)
	// Draw all four up front: a dropped packet goes straight back to the
	// free list, and drawing after the drop would hand the same memory out
	// again.
	var pkts []*packet.Packet
	for i := 0; i < 4; i++ {
		p := pl.Get()
		p.ID, p.Size = uint64(i), 500
		pkts = append(pkts, p)
	}
	for _, p := range pkts {
		pt.Send(p)
	}
	// Buffer 2: packets 2 and 3 are tail-dropped and released immediately.
	for i, p := range pkts {
		wantReleased := i >= 2
		if p.Released() != wantReleased {
			t.Fatalf("packet %d released = %v, want %v", i, p.Released(), wantReleased)
		}
	}
	eng.Run()
	if len(s.pkts) != 2 {
		t.Fatalf("delivered %d, want 2", len(s.pkts))
	}
	for _, p := range s.pkts {
		if p.Released() {
			t.Fatal("delivered packet was released by the port")
		}
	}
	if pl.Free() != 2 {
		t.Fatalf("pool free list = %d, want the 2 dropped packets", pl.Free())
	}
}
