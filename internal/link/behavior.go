package link

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"tahoedyn/internal/packet"
)

// Behavior is a link behavior: per-packet impairment plus a
// time-varying line rate. The paper's lines are ideal — error-free,
// constant-rate — and a nil behavior reproduces them exactly. A
// behavior replaces the old link.Lossy receiver wrapper and extends it
// with jitter, bursty (Gilbert-Elliott) loss, and trace-driven
// bandwidth replay.
type Behavior interface {
	// Rate returns the line rate in bits per second at time now, or a
	// value <= 0 to keep the port's configured bandwidth. It is sampled
	// once per packet, when serialization starts.
	Rate(now time.Duration) int64
	// Impair is consulted once per departing packet, after its last bit
	// leaves the port: extra is added to the propagation delay, and
	// drop discards the packet instead (a line loss). Impair must not
	// retain p.
	Impair(p *packet.Packet, now time.Duration) (extra time.Duration, drop bool)
}

// GEConfig parameterizes a two-state Gilbert-Elliott loss channel: per
// packet the state transitions with the given probabilities, and the
// packet is lost with BadLoss in the bad state (the good state is
// loss-free).
type GEConfig struct {
	// GoodToBad and BadToGood are the per-packet transition
	// probabilities.
	GoodToBad, BadToGood float64
	// BadLoss is the loss probability while in the bad state.
	BadLoss float64
}

func (c *GEConfig) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"good_to_bad", c.GoodToBad}, {"bad_to_good", c.BadToGood}, {"bad_loss", c.BadLoss}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("link: Gilbert-Elliott %s %g outside [0,1]", p.name, p.v)
		}
	}
	return nil
}

// ImpairmentConfig describes a stochastic link impairment. The zero
// value impairs nothing.
type ImpairmentConfig struct {
	// Loss is a Bernoulli per-packet loss probability. Ignored when GE
	// is set.
	Loss float64
	// GE, when non-nil, selects the bursty Gilbert-Elliott loss channel
	// instead of Bernoulli loss.
	GE *GEConfig
	// Jitter adds a uniform extra delay in [0, Jitter] to each
	// surviving packet.
	Jitter time.Duration
	// Reorder permits jittered packets to overtake each other. When
	// false (the default), each packet's departure is clamped to stay
	// behind the previous one's, so jitter never reorders the line.
	Reorder bool
	// Trace, when non-nil, replays a time-varying line rate.
	Trace *RateTrace
}

func (c *ImpairmentConfig) validate() error {
	if c.Loss < 0 || c.Loss > 1 {
		return fmt.Errorf("link: loss probability %g outside [0,1]", c.Loss)
	}
	if c.GE != nil {
		if err := c.GE.validate(); err != nil {
			return err
		}
	}
	if c.Jitter < 0 {
		return fmt.Errorf("link: negative jitter %v", c.Jitter)
	}
	return nil
}

// Impairment is the standard Behavior implementation: Bernoulli or
// Gilbert-Elliott loss, bounded uniform jitter with optional
// reordering, and trace-driven rate replay. Draw order per packet is
// fixed — loss first, then jitter for survivors — so a seeded stream
// reproduces exactly.
type Impairment struct {
	cfg ImpairmentConfig
	rng *rand.Rand

	bad     bool          // Gilbert-Elliott channel state
	lastOut time.Duration // latest departure handed to the line (no-reorder clamp)
}

// NewImpairment builds an impairment from cfg, driven by the given
// seeded source (required unless the config draws nothing).
func NewImpairment(cfg ImpairmentConfig, rng *rand.Rand) (*Impairment, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	draws := cfg.Loss > 0 || cfg.GE != nil || cfg.Jitter > 0
	if draws && rng == nil {
		return nil, fmt.Errorf("link: impairment with stochastic terms needs a Rand source")
	}
	return &Impairment{cfg: cfg, rng: rng}, nil
}

// Rate implements Behavior.
func (im *Impairment) Rate(now time.Duration) int64 {
	if im.cfg.Trace == nil {
		return 0
	}
	return im.cfg.Trace.RateAt(now)
}

// Impair implements Behavior.
func (im *Impairment) Impair(p *packet.Packet, now time.Duration) (time.Duration, bool) {
	if ge := im.cfg.GE; ge != nil {
		if im.bad {
			if im.rng.Float64() < ge.BadToGood {
				im.bad = false
			}
		} else if im.rng.Float64() < ge.GoodToBad {
			im.bad = true
		}
		if im.bad && im.rng.Float64() < ge.BadLoss {
			return 0, true
		}
	} else if im.cfg.Loss > 0 && im.rng.Float64() < im.cfg.Loss {
		return 0, true
	}
	var extra time.Duration
	if im.cfg.Jitter > 0 {
		extra = time.Duration(im.rng.Int63n(int64(im.cfg.Jitter) + 1))
		if !im.cfg.Reorder {
			// Clamp so this packet leaves the jitter stage no earlier
			// than its predecessor: constant propagation then preserves
			// order on the line.
			if now+extra < im.lastOut {
				extra = im.lastOut - now
			}
			im.lastOut = now + extra
		}
	}
	return extra, false
}

// RateStep is one segment of a rate trace: hold the rate for the given
// duration.
type RateStep struct {
	Hold time.Duration
	Rate int64 // bits per second
}

// RateTrace is a timestamped bandwidth schedule, cellular-trace
// shaped: a sequence of (hold, rate) steps that repeats with period
// equal to the total hold time. RateAt is O(log steps).
type RateTrace struct {
	steps []RateStep
	offs  []time.Duration // cumulative start offset of each step
	cycle time.Duration
}

// NewRateTrace builds a trace from explicit steps.
func NewRateTrace(steps []RateStep) (*RateTrace, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("link: rate trace has no steps")
	}
	rt := &RateTrace{steps: steps, offs: make([]time.Duration, len(steps))}
	for i, s := range steps {
		if s.Hold <= 0 {
			return nil, fmt.Errorf("link: rate trace step %d holds for %v; durations must be positive", i, s.Hold)
		}
		if s.Rate <= 0 {
			return nil, fmt.Errorf("link: rate trace step %d has non-positive rate %d", i, s.Rate)
		}
		rt.offs[i] = rt.cycle
		rt.cycle += s.Hold
	}
	return rt, nil
}

// ParseRateTrace reads the trace file format: one step per line,
// "<hold-duration> <rate-bits-per-second>" (e.g. "250ms 32000"),
// with blank lines and #-comments ignored. The schedule loops.
func ParseRateTrace(r io.Reader) (*RateTrace, error) {
	var steps []RateStep
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("link: rate trace line %d: want \"<duration> <bits/s>\", got %q", lineNo, line)
		}
		hold, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("link: rate trace line %d: bad duration %q: %v", lineNo, fields[0], err)
		}
		rate, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("link: rate trace line %d: bad rate %q: %v", lineNo, fields[1], err)
		}
		steps = append(steps, RateStep{Hold: hold, Rate: rate})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewRateTrace(steps)
}

// LoadRateTrace reads a trace file from disk (see ParseRateTrace).
func LoadRateTrace(path string) (*RateTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rt, err := ParseRateTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rt, nil
}

// Cycle returns the trace period.
func (rt *RateTrace) Cycle() time.Duration { return rt.cycle }

// Steps returns the trace's step sequence.
func (rt *RateTrace) Steps() []RateStep { return rt.steps }

// RateAt returns the scheduled rate at time now, looping past the end.
func (rt *RateTrace) RateAt(now time.Duration) int64 {
	if now < 0 {
		now = 0
	}
	t := now % rt.cycle
	// Binary search for the last step starting at or before t.
	lo, hi := 0, len(rt.offs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rt.offs[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return rt.steps[lo-1].Rate
}
