// Package link models simplex transmission lines and the output ports
// that feed them.
//
// A Port bundles a queue discipline (Disc: drop-tail FIFO by default,
// Random Drop, fair queueing, RED) with a transmitter and an optional
// link behavior (Behavior: stochastic loss, jitter, trace-driven
// rates): packets are serialized onto the line at the configured — or
// behavior-scheduled — bandwidth and arrive at the far end one
// propagation delay (plus any jitter) after their last bit leaves. A
// duplex link, as in the paper's Figure 1 topology, is simply a pair
// of ports pointing in opposite directions.
//
// The packet currently being serialized occupies its buffer slot until
// its last bit is sent: the port holds it as the in-service packet and
// every traced queue length counts it — the same convention the
// paper's queue-length figures use.
package link

import (
	"fmt"
	"time"

	"tahoedyn/internal/obs"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/queue"
	"tahoedyn/internal/sim"
)

// Receiver consumes packets delivered by a line. Hosts and switches
// implement it. It is the engine's PacketSink: a port propagates a
// packet by scheduling a typed event bound to its destination, so the
// per-packet path schedules without allocating a closure.
type Receiver = sim.PacketSink

// Stats accumulates per-port counters. Busy time divided by elapsed time
// is the line utilization.
type Stats struct {
	// Busy is the cumulative time the transmitter spent sending bits.
	Busy time.Duration
	// Transmitted counts packets fully serialized onto the line.
	Transmitted uint64
	// TxBytes counts bytes serialized onto the line.
	TxBytes uint64
	// Dropped counts packets discarded by the queue discipline
	// (overflow, eviction, or an early AQM drop).
	Dropped uint64
	// Lost counts packets discarded by the link behavior after
	// transmission — line losses, as opposed to queue drops.
	Lost uint64
	// Enqueued counts packets accepted into the buffer.
	Enqueued uint64
}

// Config describes a port and its attached line.
type Config struct {
	// Name identifies the port in traces, e.g. "sw1->sw2".
	Name string
	// Bandwidth is the nominal line rate in bits per second. It must be
	// positive. A Behavior with a rate schedule overrides it per packet.
	Bandwidth int64
	// Delay is the propagation delay of the line.
	Delay time.Duration
	// Buffer is the queue capacity in packets, counting the packet in
	// service; <= 0 means unbounded.
	Buffer int
	// Disc is the queue discipline; nil means drop-tail FIFO (the
	// paper's switches). The port binds the discipline at construction;
	// a Disc instance must not be shared between ports.
	Disc Disc
	// Behavior, when non-nil, impairs the line: per-packet loss and
	// jitter at departure, and a time-varying rate sampled at the start
	// of each serialization. Nil is the paper's ideal line.
	Behavior Behavior
	// Pool, when non-nil, receives packets the port discards: a drop is
	// the end of a packet's life, so the drop site releases it (after the
	// OnDrop hook has observed it). See packet.Pool for the ownership
	// protocol.
	Pool *packet.Pool
	// Obs, when non-nil, receives structured trace events (enqueue,
	// dequeue, transmit, drop) at this port, tagged with its Name. A nil
	// tracer costs one pointer check per event site.
	Obs *obs.Tracer
	// Cross, when non-nil, replaces the propagation event: a packet whose
	// last bit has left the port is handed to Cross.Deliver immediately
	// (at its departure time, after any behavior jitter) instead of being
	// scheduled dst-ward Delay later. Sharded runs set it on ports whose
	// line crosses a region boundary; the shard layer owns the delay and
	// re-schedules the arrival on the destination region's engine
	// (internal/shard).
	Cross sim.PacketSink
}

// Port is an output port: a buffered queue discipline draining into a
// simplex transmission line.
type Port struct {
	eng       *sim.Engine
	cfg       Config
	disc      Disc
	inService *packet.Packet
	dst       Receiver
	busy      bool

	// curTx is the serialization time of the transmission in progress;
	// finishFn is the completion callback bound once at construction so
	// starting a transmission schedules no closure.
	curTx    time.Duration
	finishFn func()

	// obsLoc is the port's interned trace location (0 when cfg.Obs is
	// nil, in which case it is never read).
	obsLoc obs.Loc

	stats Stats

	// OnQueueLen, if set, is called with the new queue length after every
	// change (accepted arrival or transmission completion).
	OnQueueLen func(n int)
	// OnDrop, if set, is called for every packet the port discards —
	// queue-discipline drops and behavior line losses alike.
	OnDrop func(p *packet.Packet)
	// OnDepart, if set, is called when a packet's last bit leaves the
	// port (before the propagation delay).
	OnDepart func(p *packet.Packet)
}

// NewPort creates a port transmitting toward dst.
func NewPort(eng *sim.Engine, cfg Config, dst Receiver) *Port {
	if cfg.Bandwidth <= 0 {
		panic(fmt.Sprintf("link: non-positive bandwidth %d on %q", cfg.Bandwidth, cfg.Name))
	}
	if dst == nil {
		panic("link: nil destination on " + cfg.Name)
	}
	pt := &Port{eng: eng, cfg: cfg, dst: dst}
	pt.finishFn = pt.finishTx
	pt.disc = cfg.Disc
	if pt.disc == nil {
		pt.disc = NewDropTail()
	}
	pt.disc.Bind((*discHost)(pt))
	// Intern the trace location at build time so the emit path never
	// touches the name string.
	pt.obsLoc = cfg.Obs.Loc(cfg.Name)
	return pt
}

// Name returns the port's trace name.
func (pt *Port) Name() string { return pt.cfg.Name }

// QueueLen returns the current queue length in packets: the
// discipline's waiting packets plus the packet being transmitted —
// which occupies its buffer slot until its last bit is sent, the
// paper's convention.
func (pt *Port) QueueLen() int {
	n := pt.disc.Len()
	if pt.inService != nil {
		n++
	}
	return n
}

// Queue exposes the waiting-packet FIFO for analysis (clustering
// inspection). It is nil for disciplines without a single FIFO (fair
// queueing). The in-service packet is held by the port, not the FIFO.
func (pt *Port) Queue() *queue.FIFO {
	if fb, ok := pt.disc.(fifoBacked); ok {
		return fb.fifo()
	}
	return nil
}

// Stats returns a copy of the port counters.
func (pt *Port) Stats() Stats { return pt.stats }

// TxTime returns the serialization time of a packet of the given size on
// this port's line at its nominal bandwidth.
func (pt *Port) TxTime(sizeBytes int) time.Duration {
	return TxTime(sizeBytes, pt.cfg.Bandwidth)
}

// TxTime returns the time to serialize sizeBytes onto a line of the given
// bandwidth in bits per second.
func TxTime(sizeBytes int, bandwidth int64) time.Duration {
	bits := int64(sizeBytes) * 8
	return time.Duration(bits * int64(time.Second) / bandwidth)
}

// SetBandwidth changes the line's nominal rate. The transmission in
// progress (if any) finishes at its already-scheduled time; the new
// rate applies from the next serialization, which reads cfg.Bandwidth
// when it starts. A Behavior rate schedule still overrides per packet.
func (pt *Port) SetBandwidth(bw int64) {
	if bw <= 0 {
		panic(fmt.Sprintf("link: non-positive bandwidth %d on %q", bw, pt.cfg.Name))
	}
	pt.cfg.Bandwidth = bw
}

// Send enqueues p for transmission, applying the discipline's
// admission and overflow policy. It reports whether the arriving
// packet was accepted.
func (pt *Port) Send(p *packet.Packet) bool {
	accepted := pt.disc.Admit(p)
	if accepted {
		pt.stats.Enqueued++
		if pt.cfg.Obs != nil {
			pt.cfg.Obs.Packet(obs.Enqueue, pt.eng.Now(), pt.obsLoc, p, float64(pt.QueueLen()))
		}
		if pt.OnQueueLen != nil {
			pt.OnQueueLen(pt.QueueLen())
		}
	}
	if !pt.busy && pt.disc.Len() > 0 {
		pt.startTx()
	}
	return accepted
}

// drop records a discarded packet and, as the packet's terminal owner,
// releases it back to the pool once the drop hook has seen it.
func (pt *Port) drop(p *packet.Packet) {
	pt.stats.Dropped++
	if pt.cfg.Obs != nil {
		pt.cfg.Obs.Packet(obs.Drop, pt.eng.Now(), pt.obsLoc, p, float64(pt.QueueLen()))
	}
	if pt.OnDrop != nil {
		pt.OnDrop(p)
	}
	pt.cfg.Pool.Put(p)
}

// lose records a line loss — a packet the behavior discarded after its
// last bit left the port — and releases it. The trace event is a Drop
// at this port, emitted after the packet's Transmit event; the
// invariant checker classifies it like an arrival drop (the packet is
// no longer in the buffer), so conservation still holds.
func (pt *Port) lose(p *packet.Packet) {
	pt.stats.Lost++
	if pt.cfg.Obs != nil {
		pt.cfg.Obs.Packet(obs.Drop, pt.eng.Now(), pt.obsLoc, p, float64(pt.QueueLen()))
	}
	if pt.OnDrop != nil {
		pt.OnDrop(p)
	}
	pt.cfg.Pool.Put(p)
}

// startTx begins serializing the packet the discipline serves next,
// holding it as the in-service packet (still counted by QueueLen).
func (pt *Port) startTx() {
	head := pt.disc.Dequeue()
	if head == nil {
		return
	}
	pt.inService = head
	pt.busy = true
	bw := pt.cfg.Bandwidth
	if pt.cfg.Behavior != nil {
		if r := pt.cfg.Behavior.Rate(pt.eng.Now()); r > 0 {
			bw = r
		}
	}
	pt.curTx = TxTime(head.Size, bw)
	if pt.cfg.Obs != nil {
		pt.cfg.Obs.Packet(obs.Dequeue, pt.eng.Now(), pt.obsLoc, head, float64(pt.QueueLen()))
	}
	pt.eng.Schedule(pt.curTx, pt.finishFn)
}

// finishTx completes the in-progress transmission: the packet leaves
// the port, the behavior (if any) impairs it, propagation begins (a
// typed event bound to the destination, so nothing allocates), and the
// next packet (if any) starts.
func (pt *Port) finishTx() {
	p := pt.inService
	pt.inService = nil
	pt.busy = false
	pt.stats.Busy += pt.curTx
	pt.stats.Transmitted++
	pt.stats.TxBytes += uint64(p.Size)
	if pt.cfg.Obs != nil {
		pt.cfg.Obs.Packet(obs.Transmit, pt.eng.Now(), pt.obsLoc, p, float64(pt.QueueLen()))
	}
	if pt.OnDepart != nil {
		pt.OnDepart(p)
	}
	if pt.OnQueueLen != nil {
		pt.OnQueueLen(pt.QueueLen())
	}
	if pt.cfg.Behavior != nil {
		extra, lost := pt.cfg.Behavior.Impair(p, pt.eng.Now())
		switch {
		case lost:
			pt.lose(p)
		case extra > 0:
			// Jitter is its own local event leg, then the constant
			// propagation delay — in serial and sharded runs alike, so
			// the event lineage (and hence byte identity across shard
			// counts) is preserved: a cut port's edge capture happens at
			// the jittered departure time either way.
			pt.eng.SchedulePacket(extra, (*jitterHop)(pt), p)
		default:
			pt.forward(p)
		}
	} else {
		pt.forward(p)
	}
	if pt.disc.Len() > 0 {
		pt.startTx()
	}
}

// forward hands a departed packet to the propagation stage: the shard
// edge for cut links, otherwise a typed arrival event Delay later.
func (pt *Port) forward(p *packet.Packet) {
	if pt.cfg.Cross != nil {
		pt.cfg.Cross.Deliver(p)
	} else {
		pt.eng.SchedulePacket(pt.cfg.Delay, pt.dst, p)
	}
}

// jitterHop is the Port's second sim.PacketSink identity: the moment a
// packet's behavior jitter has elapsed and normal propagation begins.
// The pointer conversion is free, so the jitter leg allocates nothing.
type jitterHop Port

// Deliver implements sim.PacketSink.
func (jh *jitterHop) Deliver(p *packet.Packet) {
	(*Port)(jh).forward(p)
}

// discHost is the Port's DiscHost identity: the restricted view a
// queue discipline gets of its port.
type discHost Port

// Now implements DiscHost.
func (dh *discHost) Now() time.Duration { return (*Port)(dh).eng.Now() }

// Capacity implements DiscHost.
func (dh *discHost) Capacity() int { return (*Port)(dh).cfg.Buffer }

// InService implements DiscHost.
func (dh *discHost) InService() int {
	if (*Port)(dh).inService != nil {
		return 1
	}
	return 0
}

// Drop implements DiscHost.
func (dh *discHost) Drop(p *packet.Packet) { (*Port)(dh).drop(p) }

// NominalTx implements DiscHost.
func (dh *discHost) NominalTx(sizeBytes int) time.Duration {
	return (*Port)(dh).TxTime(sizeBytes)
}
