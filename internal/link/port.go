// Package link models simplex transmission lines and the output ports
// that feed them.
//
// A Port bundles a drop-tail FIFO with a transmitter: packets are
// serialized onto the line at the configured bandwidth and arrive at the
// far end one propagation delay after their last bit leaves. A duplex
// link, as in the paper's Figure 1 topology, is simply a pair of ports
// pointing in opposite directions.
//
// The port keeps the packet currently being transmitted inside the queue
// until its last bit is sent, so the traced queue length counts it — the
// same convention the paper's queue-length figures use.
package link

import (
	"fmt"
	"math/rand"
	"time"

	"tahoedyn/internal/obs"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/queue"
	"tahoedyn/internal/sim"
)

// Discard selects the policy applied when a packet arrives at a full
// buffer.
type Discard uint8

const (
	// DropTail discards the arriving packet (the paper's switches).
	DropTail Discard = iota
	// RandomDrop discards a uniformly chosen packet from the buffer or
	// the arrival itself — the gateway discipline of the Random Drop
	// studies the paper cites ([4], [5], [10], [18]). The packet
	// currently being transmitted is never evicted.
	RandomDrop
)

// Receiver consumes packets delivered by a line. Hosts and switches
// implement it. It is the engine's PacketSink: a port propagates a
// packet by scheduling a typed event bound to its destination, so the
// per-packet path schedules without allocating a closure.
type Receiver = sim.PacketSink

// Stats accumulates per-port counters. Busy time divided by elapsed time
// is the line utilization.
type Stats struct {
	// Busy is the cumulative time the transmitter spent sending bits.
	Busy time.Duration
	// Transmitted counts packets fully serialized onto the line.
	Transmitted uint64
	// TxBytes counts bytes serialized onto the line.
	TxBytes uint64
	// Dropped counts packets discarded by the drop-tail policy.
	Dropped uint64
	// Enqueued counts packets accepted into the buffer.
	Enqueued uint64
}

// Config describes a port and its attached line.
type Config struct {
	// Name identifies the port in traces, e.g. "sw1->sw2".
	Name string
	// Bandwidth is the line rate in bits per second. It must be positive.
	Bandwidth int64
	// Delay is the propagation delay of the line.
	Delay time.Duration
	// Buffer is the queue capacity in packets; <= 0 means unbounded.
	Buffer int
	// Discard is the overflow policy; the zero value is DropTail. It is
	// ignored under the FairQueue discipline, which has its own
	// drop-from-longest-flow policy.
	Discard Discard
	// Rand drives the RandomDrop policy. Required iff Discard is
	// RandomDrop; pass a seeded source for reproducible runs.
	Rand *rand.Rand
	// Discipline is the service order; the zero value is FIFO.
	Discipline Discipline
	// Pool, when non-nil, receives packets the port discards: a drop is
	// the end of a packet's life, so the drop site releases it (after the
	// OnDrop hook has observed it). See packet.Pool for the ownership
	// protocol.
	Pool *packet.Pool
	// Obs, when non-nil, receives structured trace events (enqueue,
	// dequeue, transmit, drop) at this port, tagged with its Name. A nil
	// tracer costs one pointer check per event site.
	Obs *obs.Tracer
	// Cross, when non-nil, replaces the propagation event: a packet whose
	// last bit has left the port is handed to Cross.Deliver immediately
	// (at its departure time) instead of being scheduled dst-ward Delay
	// later. Sharded runs set it on ports whose line crosses a region
	// boundary; the shard layer owns the delay and re-schedules the
	// arrival on the destination region's engine (internal/shard).
	Cross sim.PacketSink
}

// Port is an output port: a FIFO drop-tail buffer draining into a simplex
// transmission line.
type Port struct {
	eng       *sim.Engine
	cfg       Config
	q         *queue.FIFO // FIFO discipline
	fq        *fqSched    // FairQueue discipline
	inService *packet.Packet
	dst       Receiver
	busy      bool

	// curTx is the serialization time of the transmission in progress;
	// finishFn is the completion callback bound once at construction so
	// starting a transmission schedules no closure.
	curTx    time.Duration
	finishFn func()

	// obsLoc is the port's interned trace location (0 when cfg.Obs is
	// nil, in which case it is never read).
	obsLoc obs.Loc

	stats Stats

	// OnQueueLen, if set, is called with the new queue length after every
	// change (accepted arrival or transmission completion).
	OnQueueLen func(n int)
	// OnDrop, if set, is called for every packet discarded by drop-tail.
	OnDrop func(p *packet.Packet)
	// OnDepart, if set, is called when a packet's last bit leaves the
	// port (before the propagation delay).
	OnDepart func(p *packet.Packet)
}

// NewPort creates a port transmitting toward dst.
func NewPort(eng *sim.Engine, cfg Config, dst Receiver) *Port {
	if cfg.Bandwidth <= 0 {
		panic(fmt.Sprintf("link: non-positive bandwidth %d on %q", cfg.Bandwidth, cfg.Name))
	}
	if dst == nil {
		panic("link: nil destination on " + cfg.Name)
	}
	if cfg.Discard == RandomDrop && cfg.Rand == nil {
		panic("link: RandomDrop needs a Rand source on " + cfg.Name)
	}
	pt := &Port{eng: eng, cfg: cfg, q: queue.New(cfg.Buffer), dst: dst}
	pt.finishFn = pt.finishTx
	if cfg.Discipline == FairQueue {
		pt.fq = newFQSched()
	}
	// Intern the trace location at build time so the emit path never
	// touches the name string.
	pt.obsLoc = cfg.Obs.Loc(cfg.Name)
	return pt
}

// Name returns the port's trace name.
func (pt *Port) Name() string { return pt.cfg.Name }

// QueueLen returns the current queue length in packets, counting the
// packet being transmitted exactly once — the FIFO convention, where the
// in-service packet stays at the head of the queue until its last bit is
// sent. Under FairQueue the in-service packet is held outside the
// scheduler, so it is added back here. Both branches are O(1): the FIFO
// tracks its length directly and the fair-queueing scheduler keeps a
// running total across flows.
func (pt *Port) QueueLen() int {
	if pt.fq != nil {
		n := pt.fq.Len()
		if pt.inService != nil {
			n++
		}
		return n
	}
	return pt.q.Len()
}

// Queue exposes the underlying FIFO for analysis (clustering
// inspection). It is nil under the FairQueue discipline.
func (pt *Port) Queue() *queue.FIFO {
	if pt.fq != nil {
		return nil
	}
	return pt.q
}

// Stats returns a copy of the port counters.
func (pt *Port) Stats() Stats { return pt.stats }

// TxTime returns the serialization time of a packet of the given size on
// this port's line.
func (pt *Port) TxTime(sizeBytes int) time.Duration {
	return TxTime(sizeBytes, pt.cfg.Bandwidth)
}

// TxTime returns the time to serialize sizeBytes onto a line of the given
// bandwidth in bits per second.
func TxTime(sizeBytes int, bandwidth int64) time.Duration {
	bits := int64(sizeBytes) * 8
	return time.Duration(bits * int64(time.Second) / bandwidth)
}

// Send enqueues p for transmission, applying the discard policy if the
// buffer is full. It reports whether the arriving packet was accepted.
func (pt *Port) Send(p *packet.Packet) bool {
	if pt.fq != nil {
		return pt.sendFQ(p)
	}
	if pt.q.Full() && pt.cfg.Discard == RandomDrop {
		// Evict a uniform choice among the evictable buffered packets
		// (everything but the one in transmission) and the arrival.
		evictable := pt.q.Len()
		lo := 0
		if pt.busy {
			evictable--
			lo = 1
		}
		pick := pt.cfg.Rand.Intn(evictable + 1)
		if pick < evictable {
			victim := pt.q.RemoveAt(lo + pick)
			pt.drop(victim)
			// Fall through: the arrival now fits.
		}
	}
	if !pt.q.Push(p) {
		pt.drop(p)
		return false
	}
	pt.stats.Enqueued++
	if pt.cfg.Obs != nil {
		pt.cfg.Obs.Packet(obs.Enqueue, pt.eng.Now(), pt.obsLoc, p, float64(pt.q.Len()))
	}
	if pt.OnQueueLen != nil {
		pt.OnQueueLen(pt.q.Len())
	}
	if !pt.busy {
		pt.startTx()
	}
	return true
}

// drop records a discarded packet and, as the packet's terminal owner,
// releases it back to the pool once the drop hook has seen it.
func (pt *Port) drop(p *packet.Packet) {
	pt.stats.Dropped++
	if pt.cfg.Obs != nil {
		pt.cfg.Obs.Packet(obs.Drop, pt.eng.Now(), pt.obsLoc, p, float64(pt.QueueLen()))
	}
	if pt.OnDrop != nil {
		pt.OnDrop(p)
	}
	pt.cfg.Pool.Put(p)
}

// sendFQ is the FairQueue enqueue path: tag and store the arrival, then
// on overflow evict the tail of the longest flow (possibly the arrival
// itself).
func (pt *Port) sendFQ(p *packet.Packet) bool {
	pt.fq.Enqueue(p)
	accepted := true
	if pt.cfg.Buffer > 0 && pt.QueueLen() > pt.cfg.Buffer {
		victim := pt.fq.DropFromLongest()
		pt.drop(victim)
		if victim == p {
			accepted = false
		}
	}
	if accepted {
		pt.stats.Enqueued++
		if pt.cfg.Obs != nil {
			pt.cfg.Obs.Packet(obs.Enqueue, pt.eng.Now(), pt.obsLoc, p, float64(pt.QueueLen()))
		}
		if pt.OnQueueLen != nil {
			pt.OnQueueLen(pt.QueueLen())
		}
	}
	if !pt.busy && pt.fq.Len() > 0 {
		pt.startTx()
	}
	return accepted
}

// startTx begins serializing the next packet. Under FIFO the packet
// stays in the queue until its last bit is sent; under FairQueue it is
// chosen by finish tag and held as the in-service packet (still counted
// by QueueLen).
func (pt *Port) startTx() {
	var head *packet.Packet
	if pt.fq != nil {
		head = pt.fq.Dequeue()
		pt.inService = head
	} else {
		head = pt.q.Peek()
	}
	if head == nil {
		return
	}
	pt.busy = true
	pt.curTx = pt.TxTime(head.Size)
	if pt.cfg.Obs != nil {
		pt.cfg.Obs.Packet(obs.Dequeue, pt.eng.Now(), pt.obsLoc, head, float64(pt.QueueLen()))
	}
	pt.eng.Schedule(pt.curTx, pt.finishFn)
}

// finishTx completes the in-progress transmission: the packet leaves the
// port, propagation begins (a typed event bound to the destination, so
// nothing allocates), and the next packet (if any) starts.
func (pt *Port) finishTx() {
	var p *packet.Packet
	if pt.fq != nil {
		p = pt.inService
		pt.inService = nil
	} else {
		p = pt.q.Pop()
	}
	pt.busy = false
	pt.stats.Busy += pt.curTx
	pt.stats.Transmitted++
	pt.stats.TxBytes += uint64(p.Size)
	if pt.cfg.Obs != nil {
		pt.cfg.Obs.Packet(obs.Transmit, pt.eng.Now(), pt.obsLoc, p, float64(pt.QueueLen()))
	}
	if pt.OnDepart != nil {
		pt.OnDepart(p)
	}
	if pt.OnQueueLen != nil {
		pt.OnQueueLen(pt.QueueLen())
	}
	if pt.cfg.Cross != nil {
		pt.cfg.Cross.Deliver(p)
	} else {
		pt.eng.SchedulePacket(pt.cfg.Delay, pt.dst, p)
	}
	if pt.QueueLen() > 0 {
		pt.startTx()
	}
}
