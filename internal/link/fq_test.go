package link

import (
	"testing"
	"time"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/sim"
)

func newFQPort(eng *sim.Engine, buffer int) (*Port, *sink) {
	s := &sink{eng: eng}
	pt := NewPort(eng, Config{
		Name:      "fq",
		Bandwidth: 50_000,
		Delay:     0,
		Buffer:    buffer,
		Disc:      NewFQ(),
	}, s)
	return pt, s
}

func TestFQSchedulerTagOrder(t *testing.T) {
	s := newFQSched()
	// Flow 1 queues three big packets; flow 2 then queues one small one.
	for i := 0; i < 3; i++ {
		s.Enqueue(&packet.Packet{ID: uint64(i), Conn: 1, Size: 500})
	}
	s.Enqueue(&packet.Packet{ID: 10, Conn: 2, Size: 50})
	// With virtual time still 0, flow 2's small packet gets tag 401,
	// beating even flow 1's first packet (tag 4001): f2, f1[0], f1[1],
	// f1[2].
	wantIDs := []uint64{10, 0, 1, 2}
	for _, want := range wantIDs {
		got := s.Dequeue()
		if got == nil || got.ID != want {
			t.Fatalf("dequeue = %v, want ID %d", got, want)
		}
	}
	if s.Dequeue() != nil {
		t.Fatal("dequeue from empty scheduler")
	}
}

func TestFQInterleavesEqualFlows(t *testing.T) {
	s := newFQSched()
	// Two flows, same packet sizes: service must alternate.
	for i := 0; i < 4; i++ {
		s.Enqueue(&packet.Packet{ID: uint64(i), Conn: 1, Size: 500})
	}
	for i := 0; i < 4; i++ {
		s.Enqueue(&packet.Packet{ID: uint64(10 + i), Conn: 2, Size: 500})
	}
	var conns []int
	for {
		p := s.Dequeue()
		if p == nil {
			break
		}
		conns = append(conns, p.Conn)
	}
	if len(conns) != 8 {
		t.Fatalf("dequeued %d packets", len(conns))
	}
	// After the initial run of flow 1 or 2, service alternates; count
	// adjacent same-flow pairs — must be well below a FIFO's 6.
	same := 0
	for i := 1; i < len(conns); i++ {
		if conns[i] == conns[i-1] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("FQ barely interleaved: order %v", conns)
	}
}

func TestFQSmallPacketsNotStarved(t *testing.T) {
	s := newFQSched()
	// A flow of tiny ACKs vs a flow of big data packets: by bit-fairness
	// many ACKs should precede the second data packet.
	for i := 0; i < 10; i++ {
		s.Enqueue(&packet.Packet{ID: uint64(i), Conn: 1, Size: 500, Kind: packet.Data})
	}
	for i := 0; i < 10; i++ {
		s.Enqueue(&packet.Packet{ID: uint64(100 + i), Conn: 2, Size: 50, Kind: packet.Ack})
	}
	acksBeforeSecondData := 0
	dataSeen := 0
	for {
		p := s.Dequeue()
		if p == nil {
			break
		}
		if p.Kind == packet.Data {
			dataSeen++
			if dataSeen == 2 {
				break
			}
		} else {
			acksBeforeSecondData++
		}
	}
	// 10 ACKs total 4010 bit-rounds; the second data packet finishes at
	// 8002 — by bit-fairness every ACK beats it.
	if acksBeforeSecondData < 9 {
		t.Fatalf("only %d ACKs served before the second data packet; want bit-fair share", acksBeforeSecondData)
	}
}

func TestFQDropFromLongest(t *testing.T) {
	s := newFQSched()
	for i := 0; i < 5; i++ {
		s.Enqueue(&packet.Packet{ID: uint64(i), Conn: 1, Size: 500})
	}
	s.Enqueue(&packet.Packet{ID: 100, Conn: 2, Size: 500})
	victim := s.DropFromLongest()
	if victim == nil || victim.Conn != 1 {
		t.Fatalf("victim = %v, want from flow 1", victim)
	}
	if victim.ID != 4 {
		t.Fatalf("victim ID = %d, want the tail packet 4", victim.ID)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if newFQSched().DropFromLongest() != nil {
		t.Fatal("drop from empty scheduler returned a packet")
	}
}

func TestFQPortSharesLineBetweenFlows(t *testing.T) {
	eng := sim.New()
	pt, s := newFQPort(eng, 0)
	// Flow 1 floods 10 packets at t=0; flow 2 sends one at t=1ms.
	for i := 0; i < 10; i++ {
		pt.Send(&packet.Packet{ID: uint64(i), Conn: 1, Size: 500})
	}
	eng.ScheduleAt(time.Millisecond, func() {
		pt.Send(&packet.Packet{ID: 99, Conn: 2, Size: 500})
	})
	eng.Run()
	if len(s.pkts) != 11 {
		t.Fatalf("delivered %d", len(s.pkts))
	}
	// Flow 2's packet must NOT wait behind all of flow 1: it should be
	// delivered second or third, not eleventh.
	pos := -1
	for i, p := range s.pkts {
		if p.ID == 99 {
			pos = i
		}
	}
	if pos > 2 {
		t.Fatalf("flow-2 packet delivered at position %d; FQ should protect it", pos)
	}
}

func TestFQPortOverflowDropsFromHeavyFlow(t *testing.T) {
	eng := sim.New()
	pt, s := newFQPort(eng, 4)
	var dropped []*packet.Packet
	pt.OnDrop = func(p *packet.Packet) { dropped = append(dropped, p) }
	for i := 0; i < 8; i++ {
		pt.Send(&packet.Packet{ID: uint64(i), Conn: 1, Size: 500})
	}
	pt.Send(&packet.Packet{ID: 50, Conn: 2, Size: 500})
	eng.Run()
	if len(dropped) != 5 {
		t.Fatalf("dropped %d, want 5", len(dropped))
	}
	for _, p := range dropped {
		if p.Conn != 1 {
			t.Fatalf("victim from flow %d; the heavy flow must pay", p.Conn)
		}
	}
	// The light flow's packet survives and is delivered.
	found := false
	for _, p := range s.pkts {
		if p.ID == 50 {
			found = true
		}
	}
	if !found {
		t.Fatal("light flow's packet was lost")
	}
	if pt.Queue() != nil {
		t.Fatal("Queue() should be nil under FairQueue")
	}
}

func TestFQPortQueueLenCountsInService(t *testing.T) {
	eng := sim.New()
	pt, _ := newFQPort(eng, 0)
	pt.Send(&packet.Packet{ID: 0, Conn: 1, Size: 500})
	pt.Send(&packet.Packet{ID: 1, Conn: 1, Size: 500})
	if pt.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2 (1 in service + 1 waiting)", pt.QueueLen())
	}
	eng.Run()
	if pt.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d after drain", pt.QueueLen())
	}
}
