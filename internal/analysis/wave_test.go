package analysis

import (
	"testing"
	"time"

	"tahoedyn/internal/trace"
)

func waveSeries() *trace.Series {
	s := trace.NewSeries("q")
	for i, v := range []float64{1, 1, 2, 5, 9, 7, 3, 1} {
		s.Append(time.Duration(i)*time.Second, v)
	}
	return s
}

func TestFirstAbove(t *testing.T) {
	s := waveSeries()
	got, ok := FirstAbove(s, 0, 10*time.Second, 5)
	if !ok || got != 3*time.Second {
		t.Fatalf("FirstAbove(5) = %v, %v", got, ok)
	}
	// Window start excludes earlier crossings.
	got, ok = FirstAbove(s, 4*time.Second, 10*time.Second, 5)
	if !ok || got != 4*time.Second {
		t.Fatalf("FirstAbove(5) from 4s = %v, %v", got, ok)
	}
	if _, ok = FirstAbove(s, 0, 10*time.Second, 100); ok {
		t.Fatal("threshold above the series should not be found")
	}
	if _, ok = FirstAbove(s, 6*time.Second, 7*time.Second, 5); ok {
		t.Fatal("crossing outside the window should not be found")
	}
}

func TestArgMax(t *testing.T) {
	s := waveSeries()
	at, v := ArgMax(s, 0, 10*time.Second)
	if at != 4*time.Second || v != 9 {
		t.Fatalf("ArgMax = %v, %v", at, v)
	}
	at, v = ArgMax(s, 5*time.Second, 10*time.Second)
	if at != 5*time.Second || v != 7 {
		t.Fatalf("windowed ArgMax = %v, %v", at, v)
	}
	if at, v = ArgMax(s, 20*time.Second, 30*time.Second); at != 0 || v != 0 {
		t.Fatalf("empty-window ArgMax = %v, %v", at, v)
	}
}
