package analysis

import (
	"testing"
	"testing/quick"
	"time"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/trace"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func drop(t float64, conn int, kind packet.Kind) trace.DropEvent {
	return trace.DropEvent{T: sec(t), Conn: conn, Kind: kind}
}

func TestEpochsGrouping(t *testing.T) {
	drops := []trace.DropEvent{
		drop(10.0, 1, packet.Data),
		drop(10.2, 2, packet.Data),
		drop(44.0, 1, packet.Data),
		drop(44.1, 2, packet.Data),
		drop(80.0, 1, packet.Data),
	}
	eps := Epochs(drops, sec(5))
	if len(eps) != 3 {
		t.Fatalf("epochs = %d, want 3", len(eps))
	}
	if len(eps[0].Drops) != 2 || len(eps[1].Drops) != 2 || len(eps[2].Drops) != 1 {
		t.Fatalf("epoch sizes = %d,%d,%d", len(eps[0].Drops), len(eps[1].Drops), len(eps[2].Drops))
	}
	if eps[0].Start != sec(10) || eps[0].End != sec(10.2) {
		t.Fatalf("epoch 0 span = [%v,%v]", eps[0].Start, eps[0].End)
	}
}

func TestEpochsUnsortedInput(t *testing.T) {
	drops := []trace.DropEvent{drop(44, 1, packet.Data), drop(10, 2, packet.Data)}
	eps := Epochs(drops, sec(5))
	if len(eps) != 2 || eps[0].Start != sec(10) {
		t.Fatalf("unsorted input mishandled: %+v", eps)
	}
}

func TestEpochsEmpty(t *testing.T) {
	if Epochs(nil, sec(1)) != nil {
		t.Fatal("empty drops should give nil epochs")
	}
}

// Property: every drop lands in exactly one epoch and epochs are
// separated by more than the gap.
func TestEpochsPartitionProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var drops []trace.DropEvent
		for _, r := range raw {
			drops = append(drops, drop(float64(r%600), int(r%3), packet.Data))
		}
		gap := sec(5)
		eps := Epochs(drops, gap)
		total := 0
		for i, e := range eps {
			total += len(e.Drops)
			if i > 0 && e.Start-eps[i-1].End <= gap {
				return false
			}
			for j := 1; j < len(e.Drops); j++ {
				if e.Drops[j].T-e.Drops[j-1].T > gap {
					return false
				}
			}
		}
		return total == len(drops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseClassification(t *testing.T) {
	a := trace.NewSeries("a")
	b := trace.NewSeries("b")
	for i := 0; i < 200; i++ {
		// Triangle waves, period 40.
		v := float64(i % 40)
		if v > 20 {
			v = 40 - v
		}
		a.Append(sec(float64(i)), v)
		b.Append(sec(float64(i)), 20-v)
	}
	mode, r := Phase(a, b, 0, sec(200), sec(1))
	if mode != PhaseOut {
		t.Fatalf("mode = %v (r=%v), want out-of-phase", mode, r)
	}
	mode, _ = Phase(a, a, 0, sec(200), sec(1))
	if mode != PhaseIn {
		t.Fatalf("self-phase = %v, want in-phase", mode)
	}
	flat := trace.NewSeries("flat")
	flat.Append(0, 1)
	mode, r = Phase(a, flat, 0, sec(200), sec(1))
	if mode != PhaseMixed || r != 0 {
		t.Fatalf("flat phase = %v r=%v, want mixed 0", mode, r)
	}
	if PhaseIn.String() != "in-phase" || PhaseOut.String() != "out-of-phase" || PhaseMixed.String() != "mixed" {
		t.Fatal("PhaseMode strings wrong")
	}
}

func TestUtilization(t *testing.T) {
	if got := Utilization(sec(9), sec(10)); got != 0.9 {
		t.Fatalf("util = %v, want 0.9", got)
	}
	if got := Utilization(sec(1), 0); got != 0 {
		t.Fatalf("util with zero elapsed = %v, want 0", got)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]int{100, 100, 100}); got != 1 {
		t.Fatalf("equal shares = %v, want 1", got)
	}
	if got := JainIndex([]int{300, 0, 0}); got < 0.333 || got > 0.334 {
		t.Fatalf("monopoly = %v, want 1/3", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
	if got := JainIndex([]int{0, 0}); got != 0 {
		t.Fatalf("all-zero = %v, want 0", got)
	}
	mid := JainIndex([]int{100, 50})
	if mid <= 0.5 || mid >= 1 {
		t.Fatalf("skewed = %v, want in (1/2, 1)", mid)
	}
}

// Property: the Jain index always lies in [1/n, 1] for non-degenerate
// inputs.
func TestJainIndexBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		goodput := make([]int, len(raw))
		nonzero := false
		for i, r := range raw {
			goodput[i] = int(r)
			if r != 0 {
				nonzero = true
			}
		}
		j := JainIndex(goodput)
		if !nonzero {
			return j == 0
		}
		n := float64(len(goodput))
		return j >= 1/n-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func deps(conns ...int) []trace.Departure {
	out := make([]trace.Departure, len(conns))
	for i, c := range conns {
		out[i] = trace.Departure{T: sec(float64(i)), Conn: c, Kind: packet.Data}
	}
	return out
}

func TestClustering(t *testing.T) {
	if got := Clustering(deps(1, 1, 1, 2, 2, 2)); got != 0.8 {
		t.Fatalf("clustered = %v, want 0.8", got)
	}
	if got := Clustering(deps(1, 2, 1, 2, 1, 2)); got != 0 {
		t.Fatalf("interleaved = %v, want 0", got)
	}
	if got := Clustering(deps(1)); got != 1 {
		t.Fatalf("single departure = %v, want 1", got)
	}
}

func TestMeanRunLength(t *testing.T) {
	if got := MeanRunLength(deps(1, 1, 1, 2, 2, 2)); got != 3 {
		t.Fatalf("run length = %v, want 3", got)
	}
	if got := MeanRunLength(deps(1, 2, 1, 2)); got != 1 {
		t.Fatalf("run length = %v, want 1", got)
	}
	if got := MeanRunLength(nil); got != 0 {
		t.Fatalf("empty run length = %v, want 0", got)
	}
}

func TestFilterDepartures(t *testing.T) {
	all := []trace.Departure{
		{Conn: 1, Kind: packet.Data},
		{Conn: 1, Kind: packet.Ack},
		{Conn: 2, Kind: packet.Data},
	}
	data := FilterDepartures(all, packet.Data)
	if len(data) != 2 {
		t.Fatalf("filtered %d, want 2", len(data))
	}
}

func TestAckCompression(t *testing.T) {
	dataTx := 80 * time.Millisecond
	// Clocked arrivals at the data rate, then a compressed cluster at
	// the ACK rate (8 ms).
	arrivals := []time.Duration{
		sec(1), sec(1) + 80*time.Millisecond, sec(1) + 160*time.Millisecond,
		sec(2), sec(2) + 8*time.Millisecond, sec(2) + 16*time.Millisecond,
	}
	st := AckCompression(arrivals, dataTx, 0)
	if st.Gaps != 5 {
		t.Fatalf("gaps = %d, want 5", st.Gaps)
	}
	if st.Compressed != 2 {
		t.Fatalf("compressed = %d, want 2", st.Compressed)
	}
	if st.MinGap != 8*time.Millisecond {
		t.Fatalf("min gap = %v, want 8ms", st.MinGap)
	}
	if got := st.CompressedFraction(); got != 0.4 {
		t.Fatalf("fraction = %v, want 0.4", got)
	}
	// Warm-up exclusion drops the first cluster entirely.
	st = AckCompression(arrivals, dataTx, sec(1.5))
	if st.Gaps != 2 || st.Compressed != 2 {
		t.Fatalf("after warmup: %+v", st)
	}
	if (CompressionStats{}).CompressedFraction() != 0 {
		t.Fatal("empty stats fraction should be 0")
	}
}

func TestRapidRises(t *testing.T) {
	q := trace.NewSeries("q")
	// Slow rise: 5 packets over 5 s — not rapid.
	for i := 0; i <= 5; i++ {
		q.Append(sec(float64(i)), float64(i))
	}
	// Fast rise: 5 packets in 40 ms.
	base := sec(10)
	for i := 0; i <= 5; i++ {
		q.Append(base+time.Duration(i)*8*time.Millisecond, float64(i))
	}
	got := RapidRises(q, 0, sec(20), 80*time.Millisecond, 4)
	if got != 1 {
		t.Fatalf("rapid rises = %d, want 1", got)
	}
}

func TestCoupledSwings(t *testing.T) {
	a := trace.NewSeries("a")
	b := trace.NewSeries("b")
	// Three coupled events: a jumps up while b drops, at t=10, 20, 30.
	a.Append(0, 5)
	b.Append(0, 20)
	for _, base := range []float64{10, 20, 30} {
		t0 := sec(base)
		for i := 0; i <= 5; i++ {
			dt := time.Duration(i) * 8 * time.Millisecond
			a.Append(t0+dt, 5+float64(i))
			b.Append(t0+dt, 20-float64(i))
		}
		a.Append(t0+sec(1), 5)
		b.Append(t0+sec(1), 20)
	}
	got := CoupledSwings(a, b, 0, sec(40), 80*time.Millisecond, 200*time.Millisecond, 4)
	if got != 1 {
		t.Fatalf("coupled fraction = %v, want 1", got)
	}
	// Against an unrelated flat series: no coupling.
	flat := trace.NewSeries("flat")
	flat.Append(0, 7)
	if got := CoupledSwings(a, flat, 0, sec(40), 80*time.Millisecond, 200*time.Millisecond, 4); got != 0 {
		t.Fatalf("coupling with flat = %v, want 0", got)
	}
	// No rises at all: 0, not NaN.
	if got := CoupledSwings(flat, a, 0, sec(40), 80*time.Millisecond, 200*time.Millisecond, 4); got != 0 {
		t.Fatalf("no-rise coupling = %v, want 0", got)
	}
}

func TestClassifyTwoConnDropsInPhase(t *testing.T) {
	var epochs []Epoch
	for i := 0; i < 10; i++ {
		t0 := float64(30 * i)
		epochs = append(epochs, Epochs([]trace.DropEvent{
			drop(t0, 1, packet.Data), drop(t0+0.1, 2, packet.Data),
		}, sec(5))...)
	}
	p := ClassifyTwoConnDrops(epochs, 1, 2)
	if p.Epochs != 10 || p.SingleEach != 10 || p.OneSided != 0 {
		t.Fatalf("pattern = %+v", p)
	}
	if p.DataDropFraction() != 1 {
		t.Fatalf("data fraction = %v, want 1", p.DataDropFraction())
	}
}

func TestClassifyTwoConnDropsOutOfPhaseAlternating(t *testing.T) {
	var epochs []Epoch
	for i := 0; i < 10; i++ {
		t0 := float64(30 * i)
		loser := 1 + i%2
		epochs = append(epochs, Epochs([]trace.DropEvent{
			drop(t0, loser, packet.Data), drop(t0+0.1, loser, packet.Data),
		}, sec(5))...)
	}
	p := ClassifyTwoConnDrops(epochs, 1, 2)
	if p.OneSided != 10 {
		t.Fatalf("one-sided = %d, want 10", p.OneSided)
	}
	if p.OneSidedPairs != 9 || p.Alternations != 9 {
		t.Fatalf("alternations = %d/%d, want 9/9", p.Alternations, p.OneSidedPairs)
	}
	if p.AlternationRate() != 1 {
		t.Fatalf("alternation rate = %v, want 1", p.AlternationRate())
	}
}

func TestAlternationRateEmptyIsZero(t *testing.T) {
	if (TwoConnDropPattern{}).AlternationRate() != 0 {
		t.Fatal("empty alternation rate should be 0")
	}
	if (TwoConnDropPattern{}).DataDropFraction() != 0 {
		t.Fatal("empty data fraction should be 0")
	}
}
