package analysis

// LinearFit returns the least-squares line y = slope·x + intercept over
// the paired samples, plus the coefficient of determination r². It is
// the fitting primitive behind the wave-speed study: arrival time vs
// hop depth, whose slope is the congestion wave's pace in seconds per
// hop. Fewer than two points (or zero x-variance) yield a degenerate
// fit: slope 0, intercept = mean y, and r² = 1 exactly when the flat
// line already explains the data (all ys equal).
func LinearFit(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	if len(xs) != len(ys) {
		panic("analysis: LinearFit length mismatch")
	}
	if len(xs) == 0 {
		return 0, 0, 1
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		if syy == 0 {
			return 0, my, 1
		}
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	// r² = 1 − SSres/SStot; for a simple least-squares line SSres =
	// SStot − slope·Sxy, so this never goes negative up to rounding.
	r2 = slope * sxy / syy
	if r2 < 0 {
		r2 = 0
	}
	if r2 > 1 {
		r2 = 1
	}
	return slope, intercept, r2
}
