package analysis

import (
	"testing"
	"time"

	"tahoedyn/internal/trace"
)

func squareWave(levels []float64, plateauLen time.Duration) *trace.Series {
	s := trace.NewSeries("sq")
	t := time.Duration(0)
	for _, l := range levels {
		s.Append(t, l)
		t += plateauLen
	}
	s.Append(t, 0)
	return s
}

func TestPlateausExtraction(t *testing.T) {
	s := squareWave([]float64{20, 2, 22, 2, 20}, 5*time.Second)
	ps := Plateaus(s, 0, 25*time.Second, 2*time.Second, 0.5)
	if len(ps) != 5 {
		t.Fatalf("plateaus = %d, want 5: %+v", len(ps), ps)
	}
	want := []float64{20, 2, 22, 2, 20}
	for i, p := range ps {
		if p.Level != want[i] {
			t.Fatalf("plateau %d level = %v, want %v", i, p.Level, want[i])
		}
		if p.Duration() != 5*time.Second {
			t.Fatalf("plateau %d duration = %v", i, p.Duration())
		}
	}
}

func TestPlateausMinDurationFiltersSpikes(t *testing.T) {
	s := trace.NewSeries("spiky")
	s.Append(0, 10)
	s.Append(5*time.Second, 30)                      // spike
	s.Append(5*time.Second+100*time.Millisecond, 10) // back after 100ms
	s.Append(20*time.Second, 0)
	ps := Plateaus(s, 0, 20*time.Second, time.Second, 0.5)
	for _, p := range ps {
		if p.Level == 30 {
			t.Fatalf("100ms spike survived the 1s minimum: %+v", ps)
		}
	}
}

func TestPlateausToleranceMergesJitter(t *testing.T) {
	s := trace.NewSeries("jitter")
	// Queue alternates 10/11 rapidly (the paper's darkened regions).
	for i := 0; i < 100; i++ {
		v := 10.0
		if i%2 == 1 {
			v = 11
		}
		s.Append(time.Duration(i)*100*time.Millisecond, v)
	}
	ps := Plateaus(s, 0, 10*time.Second, time.Second, 1.0)
	if len(ps) != 1 {
		t.Fatalf("jittering level split into %d plateaus", len(ps))
	}
}

func TestTopPlateausAndAlternation(t *testing.T) {
	s := squareWave([]float64{23, 2, 21, 2, 23, 2, 21}, 5*time.Second)
	ps := Plateaus(s, 0, 35*time.Second, 2*time.Second, 0.5)
	tops := TopPlateaus(ps, 15)
	if len(tops) != 4 {
		t.Fatalf("tops = %d, want 4", len(tops))
	}
	if got := AlternationFraction(tops, 0.5); got != 1 {
		t.Fatalf("alternation = %v, want 1 (23/21/23/21)", got)
	}
	same := TopPlateaus(Plateaus(squareWave([]float64{23, 2, 23, 2, 23}, 5*time.Second),
		0, 25*time.Second, 2*time.Second, 0.5), 15)
	if got := AlternationFraction(same, 0.5); got != 0 {
		t.Fatalf("constant tops alternation = %v, want 0", got)
	}
	if AlternationFraction(nil, 0.5) != 0 {
		t.Fatal("empty alternation should be 0")
	}
}
