package analysis

import (
	"time"

	"tahoedyn/internal/trace"
)

// FirstAbove returns the first time in [from, to] at which the series
// reaches or exceeds the threshold, and whether such a crossing exists.
// It is the wavefront detector of the congestion-wave experiments: with
// threshold = pre-pulse baseline + margin, the returned time is when a
// hop's queue first feels the pulse.
func FirstAbove(s *trace.Series, from, to time.Duration, threshold float64) (time.Duration, bool) {
	for _, p := range s.Points {
		if p.T < from {
			continue
		}
		if p.T > to {
			break
		}
		if p.V >= threshold {
			return p.T, true
		}
	}
	return 0, false
}

// ArgMax returns the time and value of the series' maximum over
// [from, to]. Ties go to the earliest sample; a window with no samples
// returns (0, 0).
func ArgMax(s *trace.Series, from, to time.Duration) (time.Duration, float64) {
	var (
		bestT time.Duration
		bestV float64
		found bool
	)
	for _, p := range s.Points {
		if p.T < from {
			continue
		}
		if p.T > to {
			break
		}
		if !found || p.V > bestV {
			bestT, bestV, found = p.T, p.V, true
		}
	}
	return bestT, bestV
}
