// Package analysis computes the paper's observables from raw traces:
// congestion epochs and per-epoch loss patterns, window/queue
// synchronization modes, packet clustering, ACK-compression statistics,
// rapid-queue-fluctuation counts, and utilization.
package analysis

import (
	"sort"
	"time"

	"tahoedyn/internal/packet"
	"tahoedyn/internal/trace"
)

// Epoch is one congestion epoch: a burst of packet drops close together
// in time (§2.1 defines congestion epochs as the window epochs in which
// losses occur; operationally we group drops separated by less than the
// grouping gap).
type Epoch struct {
	Start, End time.Duration
	Drops      []trace.DropEvent
}

// LossByConn tallies the epoch's drops per connection.
func (e Epoch) LossByConn() map[int]int {
	m := make(map[int]int)
	for _, d := range e.Drops {
		m[d.Conn]++
	}
	return m
}

// Epochs groups drop events into congestion epochs: consecutive drops
// separated by at most gap belong to the same epoch. Drops need not be
// sorted.
func Epochs(drops []trace.DropEvent, gap time.Duration) []Epoch {
	if len(drops) == 0 {
		return nil
	}
	sorted := make([]trace.DropEvent, len(drops))
	copy(sorted, drops)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].T < sorted[j].T })
	var out []Epoch
	cur := Epoch{Start: sorted[0].T, End: sorted[0].T, Drops: sorted[:1:1]}
	for _, d := range sorted[1:] {
		if d.T-cur.End <= gap {
			cur.Drops = append(cur.Drops, d)
			cur.End = d.T
		} else {
			out = append(out, cur)
			cur = Epoch{Start: d.T, End: d.T, Drops: []trace.DropEvent{d}}
		}
	}
	return append(out, cur)
}

// PhaseMode classifies the relative synchronization of two oscillating
// series (§4.3).
type PhaseMode int

const (
	// PhaseMixed means the correlation is too weak to call either way.
	PhaseMixed PhaseMode = iota
	// PhaseIn means the series rise and fall together (Figs. 6, 7).
	PhaseIn
	// PhaseOut means one rises while the other falls (Figs. 4, 5).
	PhaseOut
)

// String returns "in-phase", "out-of-phase" or "mixed".
func (m PhaseMode) String() string {
	switch m {
	case PhaseIn:
		return "in-phase"
	case PhaseOut:
		return "out-of-phase"
	default:
		return "mixed"
	}
}

// phaseThreshold is the minimum |correlation| to declare a mode.
const phaseThreshold = 0.2

// Phase classifies the synchronization of two series over [from, to] by
// the sign of their Pearson correlation on a grid of the given step.
func Phase(a, b *trace.Series, from, to, step time.Duration) (PhaseMode, float64) {
	r := trace.Correlate(a, b, from, to, step)
	switch {
	case r >= phaseThreshold:
		return PhaseIn, r
	case r <= -phaseThreshold:
		return PhaseOut, r
	default:
		return PhaseMixed, r
	}
}

// Utilization is busy time over elapsed time, in [0, 1].
func Utilization(busy, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(busy) / float64(elapsed)
}

// JainIndex computes Jain's fairness index (Σx)²/(n·Σx²) over
// per-connection goodputs: 1 when all shares are equal, 1/n when one
// connection takes everything. It returns 0 for an empty or all-zero
// input.
func JainIndex(goodput []int) float64 {
	if len(goodput) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, g := range goodput {
		x := float64(g)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(goodput)) * sumSq)
}

// Clustering measures how clustered a departure sequence is: the
// fraction of adjacent departure pairs that belong to the same
// connection. With k connections perfectly clustered into one run each
// per cycle this approaches 1; perfectly interleaved traffic of k
// connections gives 0. Departures should already be filtered to one
// port and, typically, to data packets.
func Clustering(deps []trace.Departure) float64 {
	if len(deps) < 2 {
		return 1
	}
	same := 0
	for i := 1; i < len(deps); i++ {
		if deps[i].Conn == deps[i-1].Conn {
			same++
		}
	}
	return float64(same) / float64(len(deps)-1)
}

// FilterDepartures returns the departures of the given kind.
func FilterDepartures(deps []trace.Departure, kind packet.Kind) []trace.Departure {
	var out []trace.Departure
	for _, d := range deps {
		if d.Kind == kind {
			out = append(out, d)
		}
	}
	return out
}

// MeanRunLength returns the average length of maximal same-connection
// runs in a departure sequence — the paper's "cluster" size.
func MeanRunLength(deps []trace.Departure) float64 {
	if len(deps) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(deps); i++ {
		if deps[i].Conn != deps[i-1].Conn {
			runs++
		}
	}
	return float64(len(deps)) / float64(runs)
}

// CompressionStats summarizes ACK inter-arrival spacing at a data
// source. With one-way traffic every gap is at least one data
// transmission time (the ACK clock); ACK-compression shows up as a large
// fraction of gaps near the much smaller ACK transmission time.
type CompressionStats struct {
	// Gaps is the number of inter-arrival gaps measured.
	Gaps int
	// Compressed counts gaps smaller than half a data transmission time.
	Compressed int
	// MinGap is the smallest gap observed.
	MinGap time.Duration
}

// CompressedFraction is Compressed/Gaps, or 0 with no gaps.
func (c CompressionStats) CompressedFraction() float64 {
	if c.Gaps == 0 {
		return 0
	}
	return float64(c.Compressed) / float64(c.Gaps)
}

// AckCompression computes compression statistics from the arrival times
// of ACKs at a source, given the bottleneck data transmission time.
// Arrivals before from are ignored (warm-up).
func AckCompression(arrivals []time.Duration, dataTx time.Duration, from time.Duration) CompressionStats {
	var stats CompressionStats
	var prev time.Duration
	seen := false
	for _, t := range arrivals {
		if t < from {
			continue
		}
		if seen {
			gap := t - prev
			stats.Gaps++
			if gap < dataTx/2 {
				stats.Compressed++
			}
			if stats.MinGap == 0 || gap < stats.MinGap {
				stats.MinGap = gap
			}
		}
		prev = t
		seen = true
	}
	return stats
}

// rapidSwings returns the start times of monotone rises (sign=+1) or
// falls (sign=-1) that achieve at least minMag packets of change within
// at most window. A monotone run may begin with a slow (even flat)
// stretch; the swing counts if any window-bounded subsegment of the run
// reaches the magnitude. Each run contributes at most one swing.
func rapidSwings(q *trace.Series, from, to, window time.Duration, minMag float64, sign int) []time.Duration {
	pts := q.Points
	var out []time.Duration
	i := 0
	for i < len(pts) {
		p := pts[i]
		if p.T < from {
			i++
			continue
		}
		if p.T > to {
			break
		}
		// Extend the monotone run [i, j].
		j := i
		for j+1 < len(pts) && pts[j+1].T <= to &&
			float64(sign)*(pts[j+1].V-pts[j].V) >= 0 {
			j++
		}
		if j > i {
			// Two-pointer scan for a fast subsegment.
			lo := i
			for hi := i + 1; hi <= j; hi++ {
				for pts[hi].T-pts[lo].T > window {
					lo++
				}
				if float64(sign)*(pts[hi].V-pts[lo].V) >= minMag {
					out = append(out, pts[lo].T)
					break
				}
			}
		}
		if j == i {
			i++
		} else {
			i = j
		}
	}
	return out
}

// CoupledSwings measures the §4.2 chronology signature: the fraction of
// rapid rises in series a that coincide (within the coupling window)
// with a rapid fall in series b. In the fixed-window two-way system a
// cluster of compressed ACKs leaving one queue is exactly the burst of
// data hitting the other, so the coupling is near-perfect.
func CoupledSwings(a, b *trace.Series, from, to, swingWindow, couple time.Duration, minMag float64) float64 {
	rises := rapidSwings(a, from, to, swingWindow, minMag, +1)
	falls := rapidSwings(b, from, to, swingWindow, minMag, -1)
	if len(rises) == 0 {
		return 0
	}
	matched := 0
	fi := 0
	for _, r := range rises {
		for fi < len(falls) && falls[fi] < r-couple {
			fi++
		}
		if fi < len(falls) && falls[fi] <= r+couple {
			matched++
		}
	}
	return float64(matched) / float64(len(rises))
}

// RapidRises counts queue-length increases of at least minRise packets
// completing within at most window — the paper's "fluctuations … on a
// time scale smaller than that of a single data packet transmission
// time" (§3.2). Each monotone rise is counted once.
func RapidRises(q *trace.Series, from, to, window time.Duration, minRise float64) int {
	return len(rapidSwings(q, from, to, window, minRise, +1))
}
