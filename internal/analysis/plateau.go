package analysis

import (
	"time"

	"tahoedyn/internal/trace"
)

// Plateau is a maximal interval during which a step series holds one
// value for at least a minimum duration — the flat tops (and floors) of
// the paper's square-wave queue traces.
type Plateau struct {
	Start, End time.Duration
	Level      float64
}

// Duration returns the plateau length.
func (p Plateau) Duration() time.Duration { return p.End - p.Start }

// Plateaus extracts the plateaus of s within [from, to] lasting at least
// minDur. Values within tolerance of each other are treated as the same
// level (queue traces jitter by one packet as packets arrive/depart).
func Plateaus(s *trace.Series, from, to, minDur time.Duration, tolerance float64) []Plateau {
	var out []Plateau
	var cur Plateau
	started := false
	flush := func(end time.Duration) {
		if started && end-cur.Start >= minDur {
			cur.End = end
			out = append(out, cur)
		}
		started = false
	}
	level := s.At(from)
	cur = Plateau{Start: from, Level: level}
	started = true
	for _, pt := range s.Points {
		if pt.T < from {
			continue
		}
		if pt.T > to {
			break
		}
		if !started {
			cur = Plateau{Start: pt.T, Level: pt.V}
			started = true
			continue
		}
		if pt.V > cur.Level+tolerance || pt.V < cur.Level-tolerance {
			flush(pt.T)
			cur = Plateau{Start: pt.T, Level: pt.V}
			started = true
		}
	}
	flush(to)
	return out
}

// TopPlateaus filters plateaus whose level is at least threshold — the
// square-wave crests.
func TopPlateaus(ps []Plateau, threshold float64) []Plateau {
	var out []Plateau
	for _, p := range ps {
		if p.Level >= threshold {
			out = append(out, p)
		}
	}
	return out
}

// AlternationFraction reports how often consecutive plateau levels
// differ — 1 for a strict high/low alternation pattern, 0 for constant
// heights. Levels within tolerance count as equal.
func AlternationFraction(ps []Plateau, tolerance float64) float64 {
	if len(ps) < 2 {
		return 0
	}
	diff := 0
	for i := 1; i < len(ps); i++ {
		d := ps[i].Level - ps[i-1].Level
		if d > tolerance || d < -tolerance {
			diff++
		}
	}
	return float64(diff) / float64(len(ps)-1)
}
