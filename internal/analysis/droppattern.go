package analysis

import "tahoedyn/internal/packet"

// TwoConnDropPattern summarizes how packet losses are distributed between
// the two connections of a two-way configuration, epoch by epoch. The
// paper reports two characteristic patterns:
//
//   - in-phase (Fig. 6): each connection loses exactly one packet in
//     every congestion epoch;
//   - out-of-phase (Fig. 4): one connection loses two packets while the
//     other loses none, with the loser alternating between epochs.
type TwoConnDropPattern struct {
	// Epochs is the number of congestion epochs examined.
	Epochs int
	// SingleEach counts epochs where both connections lost exactly one
	// data packet.
	SingleEach int
	// OneSided counts epochs where one connection lost everything and
	// the other lost nothing.
	OneSided int
	// Alternations counts consecutive one-sided epoch pairs whose loser
	// switched sides; OneSidedPairs is the number of such pairs.
	Alternations, OneSidedPairs int
	// DataDrops and AckDrops split total drops by packet kind. The paper
	// observes that ACKs are essentially never dropped (99.8 % of drops
	// were data in the Fig. 3 configuration; §4.2 argues the fraction is
	// exactly 100 % with complete clustering).
	DataDrops, AckDrops int
}

// AlternationRate is Alternations/OneSidedPairs, or 0 with no pairs.
func (p TwoConnDropPattern) AlternationRate() float64 {
	if p.OneSidedPairs == 0 {
		return 0
	}
	return float64(p.Alternations) / float64(p.OneSidedPairs)
}

// DataDropFraction is the fraction of all drops that were data packets.
func (p TwoConnDropPattern) DataDropFraction() float64 {
	total := p.DataDrops + p.AckDrops
	if total == 0 {
		return 0
	}
	return float64(p.DataDrops) / float64(total)
}

// ClassifyTwoConnDrops computes the drop pattern for connections a and b
// across the given epochs.
func ClassifyTwoConnDrops(epochs []Epoch, a, b int) TwoConnDropPattern {
	var out TwoConnDropPattern
	out.Epochs = len(epochs)
	prevLoser := -1
	for _, e := range epochs {
		for _, d := range e.Drops {
			if d.Kind == packet.Data {
				out.DataDrops++
			} else {
				out.AckDrops++
			}
		}
		byConn := e.LossByConn()
		la, lb := byConn[a], byConn[b]
		switch {
		case la == 1 && lb == 1:
			out.SingleEach++
			prevLoser = -1
		case la > 0 && lb == 0, lb > 0 && la == 0:
			out.OneSided++
			loser := a
			if lb > 0 {
				loser = b
			}
			if prevLoser != -1 {
				out.OneSidedPairs++
				if loser != prevLoser {
					out.Alternations++
				}
			}
			prevLoser = loser
		default:
			prevLoser = -1
		}
	}
	return out
}
