package analysis

import (
	"math"
	"testing"
)

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	slope, intercept, r2 := LinearFit(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit = %.6f·x + %.6f, want 2x+1", slope, intercept)
	}
	if r2 != 1 {
		t.Fatalf("r² = %v on exact line", r2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0.1, 0.9, 2.2, 2.8, 4.1, 4.9} // ≈ y = x
	slope, _, r2 := LinearFit(xs, ys)
	if slope < 0.9 || slope > 1.1 {
		t.Fatalf("slope = %v, want ≈1", slope)
	}
	if r2 < 0.98 {
		t.Fatalf("r² = %v, want near 1 for mild noise", r2)
	}
}

func TestLinearFitUncorrelated(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, -1, 1, -1}
	_, _, r2 := LinearFit(xs, ys)
	if r2 > 0.5 {
		t.Fatalf("r² = %v on alternating data", r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	// All x equal: flat fallback, r² reflects whether ys are constant.
	if s, i, r2 := LinearFit([]float64{2, 2}, []float64{5, 5}); s != 0 || i != 5 || r2 != 1 {
		t.Fatalf("constant fit = (%v,%v,%v)", s, i, r2)
	}
	if _, _, r2 := LinearFit([]float64{2, 2}, []float64{1, 9}); r2 != 0 {
		t.Fatalf("zero-x-variance r² = %v, want 0", r2)
	}
	if s, i, r2 := LinearFit(nil, nil); s != 0 || i != 0 || r2 != 1 {
		t.Fatalf("empty fit = (%v,%v,%v)", s, i, r2)
	}
}
