package runner

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"tahoedyn/internal/core"
)

func TestEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 100
		var counts [100]atomic.Int32
		Each(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestEachZeroJobs(t *testing.T) {
	Each(4, 0, func(int) { t.Fatal("fn called with no jobs") })
}

func TestMapPreservesIndexOrder(t *testing.T) {
	got := Map(8, 50, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestEachPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate")
		}
	}()
	Each(4, 8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

// sweepConfigs is a small but real parameter grid: two-way dumbbells
// across buffer sizes and seeds, long enough to produce drops, epochs,
// and phase dynamics.
func sweepConfigs() []core.Config {
	var cfgs []core.Config
	for _, buffer := range []int{10, 20} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := core.DumbbellConfig(10*time.Millisecond, buffer)
			cfg.Seed = seed
			cfg.Warmup = 10 * time.Second
			cfg.Duration = 60 * time.Second
			cfg.Conns = []core.ConnSpec{
				{SrcHost: 0, DstHost: 1, Start: -1},
				{SrcHost: 1, DstHost: 0, Start: -1},
			}
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// TestRunConfigsDeterministicAcrossWorkerCounts is the core guarantee of
// the parallel layer: fanning real simulation runs across a pool produces
// results deep-equal to the serial path, in the same order. Run with
// -race (scripts/check.sh does) this also proves the runs share no state.
func TestRunConfigsDeterministicAcrossWorkerCounts(t *testing.T) {
	cfgs := sweepConfigs()
	serial := RunConfigs(1, cfgs)
	parallel := RunConfigs(8, cfgs)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("run %d differs between serial and 8-worker execution", i)
		}
	}
}
