// Package runner fans independent simulation runs across OS threads.
//
// Every simulation run (core.Run) is single-threaded and fully
// deterministic in its Config, so a parameter sweep is embarrassingly
// parallel: the runner executes jobs on a small worker pool and delivers
// results indexed by job, which keeps the output ordering — and therefore
// every byte a CLI prints — identical no matter how many workers ran.
//
// Workers pull job indices from a shared counter, so heterogeneous run
// lengths load-balance without any coordination beyond one atomic add.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tahoedyn/internal/core"
)

// DefaultWorkers returns the worker count used when a caller passes 0:
// GOMAXPROCS, the number of OS threads the runtime will actually run.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Each runs fn(i) for every i in [0, n), using at most workers concurrent
// goroutines. workers == 0 means DefaultWorkers; workers <= 1 (or n <= 1)
// runs inline on the caller's goroutine with no synchronization at all,
// so the serial path is bit-for-bit the pre-runner behavior.
//
// A panic in any fn is re-raised on the caller's goroutine after all
// workers have drained.
func Each(workers, n int, fn func(i int)) {
	if workers == 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		panicked atomic.Value
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, fmt.Sprintf("runner: job %d panicked: %v", i, r))
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
}

// Map runs fn(i) for every i in [0, n) on the worker pool and returns the
// results in index order, regardless of completion order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	Each(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// RunConfigs executes every configuration with core.Run on the worker
// pool and returns the results in configuration order. Each run is
// deterministic in its Config (including Seed), so the returned slice is
// identical for any worker count.
func RunConfigs(workers int, cfgs []core.Config) []*core.Result {
	return Map(workers, len(cfgs), func(i int) *core.Result { return core.Run(cfgs[i]) })
}
