// Package runner fans independent simulation runs across OS threads.
//
// Every simulation run (core.Run) is single-threaded and fully
// deterministic in its Config, so a parameter sweep is embarrassingly
// parallel: the runner executes jobs on a small worker pool and delivers
// results indexed by job, which keeps the output ordering — and therefore
// every byte a CLI prints — identical no matter how many workers ran.
//
// Workers pull job indices from a shared counter, so heterogeneous run
// lengths load-balance without any coordination beyond one atomic add.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tahoedyn/internal/core"
)

// DefaultWorkers returns the worker count used when a caller passes 0:
// GOMAXPROCS, the number of OS threads the runtime will actually run.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clampWorkers resolves a caller-supplied worker count against the job
// count: 0 means DefaultWorkers, and there is never a point in more
// workers than jobs. Both Each/EachWorker and the arena sizing in the
// RunConfigs family use it, so worker indices and arena slots agree.
func clampWorkers(workers, n int) int {
	if workers == 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Each runs fn(i) for every i in [0, n), using at most workers concurrent
// goroutines. workers == 0 means DefaultWorkers; workers <= 1 (or n <= 1)
// runs inline on the caller's goroutine with no synchronization at all,
// so the serial path is bit-for-bit the pre-runner behavior.
//
// A panic in any fn is re-raised on the caller's goroutine after all
// workers have drained.
func Each(workers, n int, fn func(i int)) {
	EachWorker(workers, n, func(_, i int) { fn(i) })
}

// EachWorker is Each with worker identity: fn(worker, i) runs job i on
// worker `worker`, a stable index in [0, clamped worker count). A given
// worker runs its jobs sequentially on one goroutine, which is what lets
// callers keep per-worker state — arenas, scratch buffers — without any
// locking. On the serial path every job runs as worker 0.
func EachWorker(workers, n int, fn func(worker, i int)) {
	workers = clampWorkers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next     atomic.Int64
		panicked atomic.Value
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, fmt.Sprintf("runner: job %d panicked: %v", i, r))
						}
					}()
					fn(worker, i)
				}()
			}
		}(w)
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
}

// Map runs fn(i) for every i in [0, n) on the worker pool and returns the
// results in index order, regardless of completion order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	Each(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// EachDone is Each with a completion callback: after every job
// finishes, done(completed, n) reports how many of the n jobs are done
// so far. The callback may run on any worker goroutine (serially never
// concurrently with itself is NOT guaranteed on the parallel path), so
// it must be safe for concurrent use; sweep CLIs use it to print
// liveness to stderr without touching the result ordering.
func EachDone(workers, n int, fn func(i int), done func(completed, total int)) {
	if done == nil {
		Each(workers, n, fn)
		return
	}
	var completed atomic.Int64
	Each(workers, n, func(i int) {
		fn(i)
		done(int(completed.Add(1)), n)
	})
}

// RunConfigs executes every configuration with core.Run on the worker
// pool and returns the results in configuration order. Each run is
// deterministic in its Config (including Seed), so the returned slice is
// identical for any worker count.
func RunConfigs(workers int, cfgs []core.Config) []*core.Result {
	return RunConfigsLive(workers, cfgs, nil)
}

// RunConfigsLive is RunConfigs with per-worker arena reuse and an
// optional completion callback. Every worker owns one core.Arena for
// the whole sweep, so an N-point sweep allocates engine and packet-pool
// storage once per worker instead of once per point; arena reuse is
// behavior-neutral, so results stay identical to cold runs for any
// worker count. done(completed, total), when non-nil, fires after every
// job under the EachDone contract (any worker goroutine, must be
// concurrency-safe).
func RunConfigsLive(workers int, cfgs []core.Config, done func(completed, total int)) []*core.Result {
	n := len(cfgs)
	results := make([]*core.Result, n)
	arenas := make([]*core.Arena, clampWorkers(workers, n))
	var completed atomic.Int64
	EachWorker(workers, n, func(w, i int) {
		a := arenas[w]
		if a == nil {
			a = core.NewArena()
			arenas[w] = a
		}
		results[i] = a.Run(cfgs[i])
		if done != nil {
			done(int(completed.Add(1)), n)
		}
	})
	return results
}

// RunConfigsE executes every configuration with core.RunContext on the
// worker pool. Invalid configurations come back as errors rather than
// panics: the returned slice always has len(cfgs) entries, failed or
// canceled runs are nil, and the error is the errors.Join of every
// per-config failure (tagged with its index). Canceling ctx stops each
// in-flight run within one event batch and skips runs not yet started;
// result ordering is still configuration order, so a partial sweep is
// byte-stable too.
func RunConfigsE(ctx context.Context, workers int, cfgs []core.Config) ([]*core.Result, error) {
	results := make([]*core.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	arenas := make([]*core.Arena, clampWorkers(workers, len(cfgs)))
	EachWorker(workers, len(cfgs), func(w, i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = fmt.Errorf("config %d: %w", i, err)
			return
		}
		a := arenas[w]
		if a == nil {
			a = core.NewArena()
			arenas[w] = a
		}
		res, err := a.RunContext(ctx, cfgs[i])
		if err != nil {
			errs[i] = fmt.Errorf("config %d: %w", i, err)
			return
		}
		results[i] = res
	})
	return results, errors.Join(errs...)
}
