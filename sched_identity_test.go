package tahoedyn

// Scheduler-identity tests at the facade level: the timing wheel must be
// byte-identical to the reference heap on every scenario the repository
// ships and on both §4 phase modes. The -sched flag (Config.Sched) is a
// wall-clock knob, never a physics knob.

import (
	"path/filepath"
	"testing"
	"time"
)

// phaseModeConfig is the §4 two-way dumbbell in the requested phase
// regime: τ=10ms sits in the out-of-phase region (Figs. 4–5), τ=1s in
// the in-phase region (Figs. 6–7).
func phaseModeConfig(tau time.Duration) Config {
	cfg := Dumbbell(tau, 20)
	cfg.Conns = []ConnSpec{
		{SrcHost: 0, DstHost: 1, Start: -1},
		{SrcHost: 1, DstHost: 0, Start: -1},
	}
	cfg.Warmup = 20 * time.Second
	cfg.Duration = 80 * time.Second
	return cfg
}

// runSched runs cfg under one explicit scheduler.
func runSched(cfg Config, k SchedKind) *Result {
	cfg.Sched = k
	return Run(cfg)
}

// TestSchedIdentityPhaseModes pins heap-vs-wheel identity on the paper's
// two §4 synchronization modes.
func TestSchedIdentityPhaseModes(t *testing.T) {
	for _, tc := range []struct {
		name string
		tau  time.Duration
	}{
		{"fig4-5-out-of-phase", 10 * time.Millisecond},
		{"fig6-7-in-phase", time.Second},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := phaseModeConfig(tc.tau)
			assertSameRun(t, runSched(cfg, SchedHeap), runSched(cfg, SchedWheel))
		})
	}
}

// TestSchedIdentityAcrossShippedScenarios runs every scenario file the
// repository ships — including parking-lot.json and chain-wave.json —
// under both schedulers and asserts identical physics.
func TestSchedIdentityAcrossShippedScenarios(t *testing.T) {
	files, err := filepath.Glob("scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("found %d shipped scenarios, want at least 5", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			cfg := loadShippedScenario(t, path)
			assertSameRun(t, runSched(cfg, SchedHeap), runSched(cfg, SchedWheel))
		})
	}
}
