package tahoedyn

// Shard-identity tests at the facade level: a sharded run (Config.Shards
// > 1, one engine per topology region with conservative-lookahead
// synchronization) must be byte-identical to the serial engine on every
// scenario the repository ships and on both §4 phase modes. Like -sched,
// -shards is a wall-clock knob, never a physics knob (DESIGN.md §12).

import (
	"path/filepath"
	"testing"
	"time"
)

// runShards runs cfg with an explicit shard count.
func runShards(cfg Config, k int) *Result {
	cfg.Shards = k
	return Run(cfg)
}

// TestShardIdentityPhaseModes pins serial-vs-sharded identity on the
// paper's two §4 synchronization modes. The dumbbell has two switches,
// so two regions with the trunk as the cut link.
func TestShardIdentityPhaseModes(t *testing.T) {
	for _, tc := range []struct {
		name string
		tau  time.Duration
	}{
		{"fig4-5-out-of-phase", 10 * time.Millisecond},
		{"fig6-7-in-phase", time.Second},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := phaseModeConfig(tc.tau)
			assertSameRun(t, runShards(cfg, 1), runShards(cfg, 2))
		})
	}
}

// TestShardIdentityAcrossShippedScenarios runs every scenario file the
// repository ships at 2, 3, and 4 shards (clamped to the topology's
// switch count) against the serial run.
func TestShardIdentityAcrossShippedScenarios(t *testing.T) {
	files, err := filepath.Glob("scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("found %d shipped scenarios, want at least 5", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			cfg := loadShippedScenario(t, path)
			serial := runShards(cfg, 1)
			for _, k := range []int{2, 3, 4} {
				assertSameRun(t, serial, runShards(cfg, k))
			}
		})
	}
}
