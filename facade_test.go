package tahoedyn

import (
	"strings"
	"testing"
	"time"

	"tahoedyn/internal/trace"
)

func TestFacadePlotters(t *testing.T) {
	cfg := Dumbbell(10*time.Millisecond, 20)
	cfg.Conns = []ConnSpec{{SrcHost: 0, DstHost: 1, Start: 0}}
	cfg.Warmup = 10 * time.Second
	cfg.Duration = 60 * time.Second
	res := Run(cfg)

	var ascii strings.Builder
	err := PlotASCII(&ascii, PlotOptions{Width: 40, Height: 8, From: cfg.Warmup, To: cfg.Duration}, res.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii.String(), "sw0->sw1") {
		t.Fatalf("plot missing series name:\n%s", ascii.String())
	}

	var tsv strings.Builder
	if err := PlotTSV(&tsv, cfg.Warmup, cfg.Duration, time.Second, res.Q1(), res.Q2()); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(tsv.String(), "\n"); lines != 51 {
		t.Fatalf("TSV lines = %d, want 51 (header + 50 samples)", lines)
	}
}

func TestFacadeParseScenario(t *testing.T) {
	js := `{"trunk_delay":"10ms","buffer":20,"conns":[{"src":0,"dst":1}],
	        "warmup":"5s","duration":"20s"}`
	cfg, err := ParseScenario(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(cfg)
	if res.Goodput[0] == 0 {
		t.Fatal("parsed scenario produced no goodput")
	}
	if _, err := ParseScenario(strings.NewReader("{}")); err == nil {
		t.Fatal("no error for empty scenario")
	}
}

func TestFacadeAnalysisHelpers(t *testing.T) {
	deps := []trace.Departure{{Conn: 1}, {Conn: 1}, {Conn: 2}, {Conn: 2}}
	if got := Clustering(deps); got != 2.0/3 {
		t.Fatalf("Clustering = %v, want 2/3", got)
	}
	arr := []time.Duration{0, 8 * time.Millisecond, 88 * time.Millisecond}
	st := AckCompression(arr, 80*time.Millisecond, 0)
	if st.Gaps != 2 || st.Compressed != 1 {
		t.Fatalf("compression = %+v", st)
	}
	if got := len(Epochs(nil, time.Second)); got != 0 {
		t.Fatalf("empty epochs = %d", got)
	}
	// Discipline/discard constants are wired to core.
	cfg := Dumbbell(10*time.Millisecond, 20)
	cfg.Discipline = FairQueueDiscipline
	cfg.Discard = DropTailDiscard
	cfg.Conns = []ConnSpec{{SrcHost: 0, DstHost: 1, Start: 0}}
	cfg.Warmup = 5 * time.Second
	cfg.Duration = 20 * time.Second
	if res := Run(cfg); res.Goodput[0] == 0 {
		t.Fatal("FQ facade run produced no goodput")
	}
}

func TestFacadeMustExperimentPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustExperiment did not panic")
		}
	}()
	MustExperiment("no-such-experiment", ExpOptions{})
}

// ParseTopoSpec is the one-flag topology helper both CLIs build on.
func TestParseTopoSpec(t *testing.T) {
	g, conns, err := ParseTopoSpec("")
	if err != nil || g != nil || len(conns) != 2 {
		t.Fatalf("default: %v, %d conns, %v", g, len(conns), err)
	}
	if _, conns, err = ParseTopoSpec("dumbbell"); err != nil || len(conns) != 2 {
		t.Fatalf("dumbbell: %d conns, %v", len(conns), err)
	}
	g, conns, err = ParseTopoSpec("chain:4")
	if err != nil || g == nil || g.Switches != 4 || len(conns) != 2 {
		t.Fatalf("chain:4 = %+v, %d conns, %v", g, len(conns), err)
	}
	if conns[0].DstHost != 3 || conns[1].SrcHost != 3 {
		t.Fatalf("chain pair = %+v", conns)
	}
	g, conns, err = ParseTopoSpec("parking-lot:3")
	if err != nil || g == nil || g.Switches != 4 || len(conns) != 5 {
		t.Fatalf("parking-lot:3 = %+v, %d conns, %v", g, len(conns), err)
	}
	g, conns, err = ParseTopoSpec("ba:64:2:7")
	if err != nil || g == nil || g.Switches != 64 || len(conns) != 2 {
		t.Fatalf("ba:64:2:7 = %+v, %d conns, %v", g, len(conns), err)
	}
	if conns[0].DstHost != 63 || conns[1].SrcHost != 63 {
		t.Fatalf("ba pair = %+v", conns)
	}
	g, conns, err = ParseTopoSpec("waxman:32:5")
	if err != nil || g == nil || g.Switches != 32 || len(conns) != 2 {
		t.Fatalf("waxman:32:5 = %+v, %d conns, %v", g, len(conns), err)
	}
	for _, bad := range []string{
		"torus", "chain:1", "chain:x", "parking-lot:0", "dumbbell:2",
		"ba", "ba:64", "ba:64:2", "ba:64:2:1:9", "ba:1:1:1", "ba:64:0:1", "ba:64:64:1",
		"waxman", "waxman:1:1", "waxman:64:1:2",
	} {
		if _, _, err := ParseTopoSpec(bad); err == nil {
			t.Errorf("%q: no error", bad)
		}
	}
	// Parse errors are self-correcting: a bad token is named and the
	// accepted forms are listed.
	_, _, err = ParseTopoSpec("ba:64:x:1")
	if err == nil || !strings.Contains(err.Error(), `"x"`) || !strings.Contains(err.Error(), "ba:<n>:<m>:<seed>") {
		t.Errorf("ba:64:x:1 error = %v, want offending token and accepted form", err)
	}
	_, _, err = ParseTopoSpec("torus")
	if err == nil || !strings.Contains(err.Error(), "waxman:<n>:<seed>") {
		t.Errorf("torus error = %v, want accepted forms listed", err)
	}
}
