// Command tahoe-sweep maps the synchronization-mode boundary of §4.3.3:
// for a grid of buffer sizes and propagation delays it runs the two-way
// 1+1 configuration and reports the utilization and the measured
// window-synchronization mode, showing the paper's rule that larger
// buffers push the system out-of-phase while larger pipes pull it
// in-phase.
//
// Grid points are independent simulations, so the sweep fans them across
// a worker pool (-parallel). Results are printed in grid order and are
// byte-identical for every worker count.
//
// Usage:
//
//	tahoe-sweep
//	tahoe-sweep -buffers 10,20,40,80 -taus 10ms,100ms,1s -duration 600s
//	tahoe-sweep -parallel 8
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tahoedyn"
	"tahoedyn/internal/prof"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code so the deferred profile flush always
// executes; sweeps are the longest-running tool and the primary
// profiling target.
func run() int {
	var (
		buffersFlag = flag.String("buffers", "10,20,40,80", "comma-separated buffer sizes in packets")
		tausFlag    = flag.String("taus", "10ms,100ms,300ms,1s", "comma-separated propagation delays")
		duration    = flag.Duration("duration", 800*time.Second, "simulated run length")
		warmup      = flag.Duration("warmup", 200*time.Second, "discarded warm-up period")
		seed        = flag.Int64("seed", 1, "scenario random seed")
		parallel    = flag.Int("parallel", 0, "worker count for the grid (0 = GOMAXPROCS, 1 = serial)")
		profFl      = prof.AddFlags(flag.String)
	)
	flag.Parse()

	buffers, err := parseInts(*buffersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
		return 2
	}
	taus, err := parseDurations(*tausFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
		return 2
	}
	if *warmup >= *duration {
		fmt.Fprintf(os.Stderr, "tahoe-sweep: -warmup %v must be shorter than -duration %v\n", *warmup, *duration)
		return 2
	}

	stopProf, err := prof.Start(profFl.Config())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
		}
	}()

	w := bufio.NewWriter(os.Stdout)
	sweep(w, sweepOptions{
		Taus: taus, Buffers: buffers,
		Duration: *duration, Warmup: *warmup,
		Seed: *seed, Parallel: *parallel,
	})
	w.Flush()
	return 0
}

// sweepOptions parameterizes one grid sweep.
type sweepOptions struct {
	Taus     []time.Duration
	Buffers  []int
	Duration time.Duration
	Warmup   time.Duration
	Seed     int64
	Parallel int
}

// sweep runs the (tau, buffer) grid on a worker pool and writes the
// report. All output goes through w so tests can assert byte-identical
// results across worker counts.
func sweep(w io.Writer, opts sweepOptions) {
	var cfgs []tahoedyn.Config
	for _, tau := range opts.Taus {
		for _, b := range opts.Buffers {
			cfg := tahoedyn.Dumbbell(tau, b)
			cfg.Seed = opts.Seed
			cfg.Warmup = opts.Warmup
			cfg.Duration = opts.Duration
			cfg.Conns = []tahoedyn.ConnSpec{
				{SrcHost: 0, DstHost: 1, Start: -1},
				{SrcHost: 1, DstHost: 0, Start: -1},
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results := tahoedyn.RunMany(opts.Parallel, cfgs)

	fmt.Fprintf(w, "%-8s %-8s %-8s %-10s %-22s %s\n",
		"tau", "buffer", "pipe P", "util", "window sync (corr)", "queue sync (corr)")
	for i, res := range results {
		cfg := res.Cfg
		tau := opts.Taus[i/len(opts.Buffers)]
		b := opts.Buffers[i%len(opts.Buffers)]
		wMode, wr := tahoedyn.Phase(res.Cwnd[0], res.Cwnd[1], cfg.Warmup, cfg.Duration, time.Second)
		qMode, qr := tahoedyn.Phase(res.Q1(), res.Q2(), cfg.Warmup, cfg.Duration, time.Second)
		fmt.Fprintf(w, "%-8v %-8d %-8.3f %-10.1f %-22s %s\n",
			tau, b, cfg.PipeSize(), res.UtilForward()*100,
			fmt.Sprintf("%v (%.2f)", wMode, wr),
			fmt.Sprintf("%v (%.2f)", qMode, qr))
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseDurations(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad duration %q: %v", part, err)
		}
		out = append(out, d)
	}
	return out, nil
}
