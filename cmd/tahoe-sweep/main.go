// Command tahoe-sweep maps the synchronization-mode boundary of §4.3.3:
// for a grid of buffer sizes and propagation delays it runs the two-way
// 1+1 configuration and reports the utilization and the measured
// window-synchronization mode, showing the paper's rule that larger
// buffers push the system out-of-phase while larger pipes pull it
// in-phase.
//
// Grid points are independent simulations, so the sweep fans them across
// a worker pool (-parallel). Results are printed in grid order and are
// byte-identical for every worker count.
//
// The -topology flag generalizes the swept network beyond the dumbbell:
// "chain:N" runs the two-way pair end to end over a line of N switches,
// "parking-lot:H" adds one single-hop cross connection per trunk, so
// the grid maps the mode boundary under multi-bottleneck conditions,
// and "ba:N:M:SEED" / "waxman:N:SEED" sweep the seeded random graphs
// (scale-free and geometric) with the two-way pair across the diameter.
//
// Usage:
//
//	tahoe-sweep
//	tahoe-sweep -buffers 10,20,40,80 -taus 10ms,100ms,1s -duration 600s
//	tahoe-sweep -topology parking-lot:3 -parallel 8
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"tahoedyn"
	"tahoedyn/internal/prof"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code so the deferred profile flush always
// executes; sweeps are the longest-running tool and the primary
// profiling target.
func run() int {
	var (
		buffersFlag = flag.String("buffers", "10,20,40,80", "comma-separated buffer sizes in packets")
		tausFlag    = flag.String("taus", "10ms,100ms,300ms,1s", "comma-separated propagation delays")
		duration    = flag.Duration("duration", 800*time.Second, "simulated run length")
		warmup      = flag.Duration("warmup", 200*time.Second, "discarded warm-up period")
		seed        = flag.Int64("seed", 1, "scenario random seed")
		parallel    = flag.Int("parallel", 0, "worker count for the grid (0 = GOMAXPROCS, 1 = serial)")
		topoFlag    = flag.String("topology", "dumbbell", "swept network: dumbbell, chain:N, parking-lot:H, ba:N:M:SEED, or waxman:N:SEED")
		schedFlag   = flag.String("sched", "default", "event scheduler: wheel, heap, or default (A/B knob; never changes results)")
		shardsFlag  = flag.Int("shards", 0, "regions per run for sharded execution (0 = serial; A/B knob; never changes results)")
		progress    = flag.Bool("progress", false, "print grid-point completion liveness to stderr")
		queueFlag   = flag.String("queue", "", "queue discipline for every grid point, e.g. fair-queue or red:min=5,max=15")
		behavFlag   = flag.String("behavior", "", "trunk link behavior for every grid point, e.g. loss=0.01,jitter=2ms")
		profFl      = prof.AddFlags(flag.String)
		eventFlag   = flag.String("event", "", "mid-run link event for every grid point, e.g. link=1,t=120s,bw=25000 or link=1,t=120s,down")
	)
	flag.Parse()

	if _, _, err := tahoedyn.ParseTopoSpec(*topoFlag); err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
		return 2
	}
	sched, err := tahoedyn.ParseSched(*schedFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
		return 2
	}
	if *shardsFlag < 0 {
		fmt.Fprintln(os.Stderr, "tahoe-sweep: -shards must be >= 0")
		return 2
	}
	if *shardsFlag > 0 {
		tahoedyn.SetDefaultShards(*shardsFlag)
	}

	buffers, err := parseInts(*buffersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
		return 2
	}
	taus, err := parseDurations(*tausFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
		return 2
	}
	if *warmup >= *duration {
		fmt.Fprintf(os.Stderr, "tahoe-sweep: -warmup %v must be shorter than -duration %v\n", *warmup, *duration)
		return 2
	}
	var queueSpec *tahoedyn.QueueSpec
	if *queueFlag != "" {
		if queueSpec, err = tahoedyn.ParseQueueSpec(*queueFlag); err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
			return 2
		}
	}
	var behavSpec *tahoedyn.BehaviorSpec
	if *behavFlag != "" {
		if behavSpec, err = tahoedyn.ParseBehaviorSpec(*behavFlag); err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
			return 2
		}
	}

	var events []tahoedyn.LinkEvent
	if *eventFlag != "" {
		ev, err := tahoedyn.ParseLinkEvent(*eventFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
			return 2
		}
		events = append(events, ev)
	}

	stopProf, err := prof.Start(profFl.Config())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
		}
	}()

	w := bufio.NewWriter(os.Stdout)
	sweep(w, sweepOptions{
		Taus: taus, Buffers: buffers,
		Duration: *duration, Warmup: *warmup,
		Seed: *seed, Parallel: *parallel,
		Topology: *topoFlag, Sched: sched, Progress: *progress,
		Queue: queueSpec, Behavior: behavSpec, Events: events,
	})
	w.Flush()
	return 0
}

// sweepOptions parameterizes one grid sweep.
type sweepOptions struct {
	Taus     []time.Duration
	Buffers  []int
	Duration time.Duration
	Warmup   time.Duration
	Seed     int64
	Parallel int
	// Topology selects the swept network: "" or "dumbbell" for the
	// classic two-switch line, "chain:N", "parking-lot:H", "ba:N:M:SEED",
	// or "waxman:N:SEED".
	Topology string
	// Sched selects the event scheduler for every grid point. It is a
	// wall-clock A/B knob only: results are byte-identical either way.
	Sched tahoedyn.SchedKind
	// Progress prints per-grid-point completion liveness to stderr.
	// Stdout — the report itself — is unaffected.
	Progress bool
	// Queue/Behavior, when non-nil, apply to every grid point: the
	// -queue and -behavior flags.
	Queue    *tahoedyn.QueueSpec
	Behavior *tahoedyn.BehaviorSpec
	Events   []tahoedyn.LinkEvent
}

// sweep runs the (tau, buffer) grid on a worker pool and writes the
// report. All output goes through w so tests can assert byte-identical
// results across worker counts.
func sweep(w io.Writer, opts sweepOptions) {
	graph, conns, err := tahoedyn.ParseTopoSpec(opts.Topology)
	if err != nil {
		fmt.Fprintln(w, "tahoe-sweep:", err)
		return
	}
	var cfgs []tahoedyn.Config
	var labels []string
	for _, tau := range opts.Taus {
		for _, b := range opts.Buffers {
			cfg := tahoedyn.Dumbbell(tau, b)
			cfg.Topology = graph
			cfg.Seed = opts.Seed
			cfg.Warmup = opts.Warmup
			cfg.Duration = opts.Duration
			cfg.Sched = opts.Sched
			cfg.Queue = opts.Queue
			cfg.Behavior = opts.Behavior
			cfg.Events = append([]tahoedyn.LinkEvent(nil), opts.Events...)
			cfg.Conns = append([]tahoedyn.ConnSpec(nil), conns...)
			cfgs = append(cfgs, cfg)
			labels = append(labels, fmt.Sprintf("tau=%v,buffer=%d", tau, b))
		}
	}
	var done func(completed, total int)
	if opts.Progress {
		// Completion counts go to stderr so the stdout report stays
		// byte-identical with and without -progress. The callback may run
		// on any worker; Fprintf writes each line in one call.
		done = func(completed, total int) {
			fmt.Fprintf(os.Stderr, "tahoe-sweep: %d/%d grid points done\n", completed, total)
		}
	}
	// Each worker owns one Arena for the whole grid, so engine and
	// packet-pool storage is allocated once per worker, not once per
	// point. The arenas slice is sized by job count — an over-estimate
	// of the clamped worker count, so every worker index fits.
	//
	// CPU profiles are process-wide (prof.Start runs in main before the
	// pool spawns), and pprof labels applied here are inherited by the
	// sampled stacks, so `go tool pprof -tags` attributes samples to
	// sweep workers and grid points for the entire sweep.
	results := make([]*tahoedyn.Result, len(cfgs))
	arenas := make([]*tahoedyn.Arena, len(cfgs))
	var completed atomic.Int64
	tahoedyn.ParallelDoWorkers(opts.Parallel, len(cfgs), func(worker, i int) {
		a := arenas[worker]
		if a == nil {
			a = tahoedyn.NewArena()
			arenas[worker] = a
		}
		pprof.Do(context.Background(), pprof.Labels(
			"sweep-worker", strconv.Itoa(worker),
			"grid-point", labels[i],
		), func(context.Context) {
			results[i] = a.Run(cfgs[i])
		})
		if done != nil {
			done(int(completed.Add(1)), len(cfgs))
		}
	})

	fmt.Fprintf(w, "%-8s %-8s %-8s %-10s %-22s %s\n",
		"tau", "buffer", "pipe P", "util", "window sync (corr)", "queue sync (corr)")
	for i, res := range results {
		cfg := res.Cfg
		tau := opts.Taus[i/len(opts.Buffers)]
		b := opts.Buffers[i%len(opts.Buffers)]
		wMode, wr := tahoedyn.Phase(res.Cwnd[0], res.Cwnd[1], cfg.Warmup, cfg.Duration, time.Second)
		qMode, qr := tahoedyn.Phase(res.Q1(), res.Q2(), cfg.Warmup, cfg.Duration, time.Second)
		fmt.Fprintf(w, "%-8v %-8d %-8.3f %-10.1f %-22s %s\n",
			tau, b, cfg.PipeSize(), res.UtilForward()*100,
			fmt.Sprintf("%v (%.2f)", wMode, wr),
			fmt.Sprintf("%v (%.2f)", qMode, qr))
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseDurations(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad duration %q: %v", part, err)
		}
		out = append(out, d)
	}
	return out, nil
}
