// Command tahoe-sweep maps the synchronization-mode boundary of §4.3.3:
// for a grid of buffer sizes and propagation delays it runs the two-way
// 1+1 configuration and reports the utilization and the measured
// window-synchronization mode, showing the paper's rule that larger
// buffers push the system out-of-phase while larger pipes pull it
// in-phase.
//
// Usage:
//
//	tahoe-sweep
//	tahoe-sweep -buffers 10,20,40,80 -taus 10ms,100ms,1s -duration 600s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tahoedyn"
)

func main() {
	var (
		buffersFlag = flag.String("buffers", "10,20,40,80", "comma-separated buffer sizes in packets")
		tausFlag    = flag.String("taus", "10ms,100ms,300ms,1s", "comma-separated propagation delays")
		duration    = flag.Duration("duration", 800*time.Second, "simulated run length")
		warmup      = flag.Duration("warmup", 200*time.Second, "discarded warm-up period")
		seed        = flag.Int64("seed", 1, "scenario random seed")
	)
	flag.Parse()

	buffers, err := parseInts(*buffersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
		os.Exit(2)
	}
	taus, err := parseDurations(*tausFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tahoe-sweep:", err)
		os.Exit(2)
	}

	fmt.Printf("%-8s %-8s %-8s %-10s %-22s %s\n",
		"tau", "buffer", "pipe P", "util", "window sync (corr)", "queue sync (corr)")
	for _, tau := range taus {
		for _, b := range buffers {
			cfg := tahoedyn.Dumbbell(tau, b)
			cfg.Seed = *seed
			cfg.Warmup = *warmup
			cfg.Duration = *duration
			cfg.Conns = []tahoedyn.ConnSpec{
				{SrcHost: 0, DstHost: 1, Start: -1},
				{SrcHost: 1, DstHost: 0, Start: -1},
			}
			res := tahoedyn.Run(cfg)
			wMode, wr := tahoedyn.Phase(res.Cwnd[0], res.Cwnd[1], cfg.Warmup, cfg.Duration, time.Second)
			qMode, qr := tahoedyn.Phase(res.Q1(), res.Q2(), cfg.Warmup, cfg.Duration, time.Second)
			fmt.Printf("%-8v %-8d %-8.3f %-10.1f %-22s %s\n",
				tau, b, cfg.PipeSize(), res.UtilForward()*100,
				fmt.Sprintf("%v (%.2f)", wMode, wr),
				fmt.Sprintf("%v (%.2f)", qMode, qr))
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseDurations(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad duration %q: %v", part, err)
		}
		out = append(out, d)
	}
	return out, nil
}
