package main

import (
	"bytes"
	"testing"
	"time"
)

// The determinism contract of the parallel sweep: for a fixed grid and
// seed, the report must be byte-identical no matter how many workers ran.
func TestSweepOutputByteIdenticalAcrossWorkerCounts(t *testing.T) {
	opts := sweepOptions{
		Taus:     []time.Duration{10 * time.Millisecond, 300 * time.Millisecond},
		Buffers:  []int{10, 40},
		Duration: 80 * time.Second,
		Warmup:   20 * time.Second,
		Seed:     1,
	}
	var serial, parallel bytes.Buffer
	opts.Parallel = 1
	sweep(&serial, opts)
	opts.Parallel = 8
	sweep(&parallel, opts)
	if serial.Len() == 0 {
		t.Fatal("sweep produced no output")
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("outputs differ between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

// A multi-bottleneck sweep must hold the same contract: byte-identical
// output for any worker count.
func TestSweepParkingLotByteIdentical(t *testing.T) {
	opts := sweepOptions{
		Taus:     []time.Duration{10 * time.Millisecond},
		Buffers:  []int{10, 30},
		Duration: 80 * time.Second,
		Warmup:   20 * time.Second,
		Seed:     1,
		Topology: "parking-lot:3",
	}
	var serial, parallel bytes.Buffer
	opts.Parallel = 1
	sweep(&serial, opts)
	opts.Parallel = 8
	sweep(&parallel, opts)
	if serial.Len() == 0 {
		t.Fatal("sweep produced no output")
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatal("parking-lot sweep differs between worker counts")
	}
}

func TestTopoWorkload(t *testing.T) {
	g, conns, err := topoWorkload("")
	if err != nil || g != nil || len(conns) != 2 {
		t.Fatalf("default: %v, %d conns, %v", g, len(conns), err)
	}
	if _, conns, err = topoWorkload("dumbbell"); err != nil || len(conns) != 2 {
		t.Fatalf("dumbbell: %d conns, %v", len(conns), err)
	}
	g, conns, err = topoWorkload("chain:4")
	if err != nil || g == nil || g.Switches != 4 || len(conns) != 2 {
		t.Fatalf("chain:4 = %+v, %d conns, %v", g, len(conns), err)
	}
	if conns[0].DstHost != 3 || conns[1].SrcHost != 3 {
		t.Fatalf("chain pair = %+v", conns)
	}
	g, conns, err = topoWorkload("parking-lot:3")
	if err != nil || g == nil || g.Switches != 4 || len(conns) != 5 {
		t.Fatalf("parking-lot:3 = %+v, %d conns, %v", g, len(conns), err)
	}
	for _, bad := range []string{"torus", "chain:1", "chain:x", "parking-lot:0", "dumbbell:2"} {
		if _, _, err := topoWorkload(bad); err == nil {
			t.Errorf("%q: no error", bad)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("10, 20,40")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 20, 40}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := parseInts("10,abc"); err == nil {
		t.Fatal("no error for bad integer")
	}
}

func TestParseDurations(t *testing.T) {
	got, err := parseDurations("10ms, 1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 10*time.Millisecond || got[1] != time.Second {
		t.Fatalf("got %v", got)
	}
	if _, err := parseDurations("10ms,soon"); err == nil {
		t.Fatal("no error for bad duration")
	}
}
