package main

import (
	"testing"
	"time"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("10, 20,40")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 20, 40}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := parseInts("10,abc"); err == nil {
		t.Fatal("no error for bad integer")
	}
}

func TestParseDurations(t *testing.T) {
	got, err := parseDurations("10ms, 1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 10*time.Millisecond || got[1] != time.Second {
		t.Fatalf("got %v", got)
	}
	if _, err := parseDurations("10ms,soon"); err == nil {
		t.Fatal("no error for bad duration")
	}
}
