package main

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"testing"
	"time"

	"tahoedyn"
)

// The determinism contract of the parallel sweep: for a fixed grid and
// seed, the report must be byte-identical no matter how many workers ran.
func TestSweepOutputByteIdenticalAcrossWorkerCounts(t *testing.T) {
	opts := sweepOptions{
		Taus:     []time.Duration{10 * time.Millisecond, 300 * time.Millisecond},
		Buffers:  []int{10, 40},
		Duration: 80 * time.Second,
		Warmup:   20 * time.Second,
		Seed:     1,
	}
	var serial, parallel bytes.Buffer
	opts.Parallel = 1
	sweep(&serial, opts)
	opts.Parallel = 8
	sweep(&parallel, opts)
	if serial.Len() == 0 {
		t.Fatal("sweep produced no output")
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("outputs differ between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

// A multi-bottleneck sweep must hold the same contract: byte-identical
// output for any worker count.
func TestSweepParkingLotByteIdentical(t *testing.T) {
	opts := sweepOptions{
		Taus:     []time.Duration{10 * time.Millisecond},
		Buffers:  []int{10, 30},
		Duration: 80 * time.Second,
		Warmup:   20 * time.Second,
		Seed:     1,
		Topology: "parking-lot:3",
	}
	var serial, parallel bytes.Buffer
	opts.Parallel = 1
	sweep(&serial, opts)
	opts.Parallel = 8
	sweep(&parallel, opts)
	if serial.Len() == 0 {
		t.Fatal("sweep produced no output")
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatal("parking-lot sweep differs between worker counts")
	}
}

// -sched is a wall-clock knob only: the heap and wheel schedulers must
// produce byte-identical reports, in serial and parallel (the parallel
// legs also exercise per-worker arena reuse across the grid).
func TestSweepSchedByteIdentical(t *testing.T) {
	base := sweepOptions{
		Taus:     []time.Duration{10 * time.Millisecond, 300 * time.Millisecond},
		Buffers:  []int{10, 40},
		Duration: 80 * time.Second,
		Warmup:   20 * time.Second,
		Seed:     1,
	}
	var reports []*bytes.Buffer
	for _, sched := range []tahoedyn.SchedKind{tahoedyn.SchedHeap, tahoedyn.SchedWheel} {
		for _, workers := range []int{1, 8} {
			opts := base
			opts.Sched = sched
			opts.Parallel = workers
			buf := &bytes.Buffer{}
			sweep(buf, opts)
			reports = append(reports, buf)
		}
	}
	if reports[0].Len() == 0 {
		t.Fatal("sweep produced no output")
	}
	for i, r := range reports[1:] {
		if !bytes.Equal(reports[0].Bytes(), r.Bytes()) {
			t.Fatalf("report %d differs from heap/serial:\n--- heap/serial ---\n%s\n--- variant ---\n%s",
				i+1, reports[0].String(), r.String())
		}
	}
}

// The CPU profile must cover the sweep's worker goroutines: prof.Start
// runs process-wide before the pool spawns, and each grid point runs
// under pprof labels, so the profile's string table has to contain the
// label keys. The label strings only appear when labeled samples were
// collected — i.e. when workers were actually profiled.
func TestSweepProfileCoversWorkers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		t.Fatal(err)
	}
	// Enough simulated work for the 100 Hz profiler to catch worker
	// samples; both grid points run under the sweep's pprof labels.
	sweep(io.Discard, sweepOptions{
		Taus:     []time.Duration{10 * time.Millisecond},
		Buffers:  []int{20, 40},
		Duration: 400 * time.Second,
		Warmup:   100 * time.Second,
		Seed:     1,
		Parallel: 2,
	})
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	zr, err := gzip.NewReader(raw)
	if err != nil {
		t.Fatalf("profile is not gzip-compressed protobuf: %v", err)
	}
	pb, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if len(pb) == 0 {
		t.Fatal("empty CPU profile")
	}
	// Label keys land in the profile string table only when samples were
	// taken while the labels were active on a worker goroutine.
	for _, want := range []string{"sweep-worker", "grid-point"} {
		if !bytes.Contains(pb, []byte(want)) {
			t.Errorf("profile has no samples labeled %q: worker goroutines were not covered", want)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("10, 20,40")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 20, 40}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := parseInts("10,abc"); err == nil {
		t.Fatal("no error for bad integer")
	}
}

func TestParseDurations(t *testing.T) {
	got, err := parseDurations("10ms, 1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 10*time.Millisecond || got[1] != time.Second {
		t.Fatalf("got %v", got)
	}
	if _, err := parseDurations("10ms,soon"); err == nil {
		t.Fatal("no error for bad duration")
	}
}
