// Command tahoe-trace prints a packet-level departure timeline of the
// fixed-window two-way system — the raw form of the paper's §4.2
// five-step ACK-compression chronology. Each line is one packet's last
// bit leaving a bottleneck port, annotated with both queue lengths, so
// the compressed ACK trains and the resulting data bursts are visible
// directly:
//
//	tahoe-trace
//	tahoe-trace -tau 1s -w1 30 -w2 25 -at 300s -span 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"tahoedyn"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/trace"
)

func main() {
	var (
		tau  = flag.Duration("tau", 10*time.Millisecond, "bottleneck propagation delay τ")
		w1   = flag.Int("w1", 30, "fixed window of connection 1 (host 1 → 2)")
		w2   = flag.Int("w2", 25, "fixed window of connection 2 (host 2 → 1)")
		at   = flag.Duration("at", 300*time.Second, "start of the displayed window")
		span = flag.Duration("span", 5*time.Second, "length of the displayed window")
		seed = flag.Int64("seed", 1, "scenario random seed")
	)
	flag.Parse()

	cfg := tahoedyn.Dumbbell(*tau, 0) // infinite buffers, as in Fig. 8
	cfg.Seed = *seed
	cfg.Conns = []tahoedyn.ConnSpec{
		{SrcHost: 0, DstHost: 1, FixedWnd: *w1, Start: -1},
		{SrcHost: 1, DstHost: 0, FixedWnd: *w2, Start: -1},
	}
	cfg.Warmup = 100 * time.Second
	cfg.Duration = *at + *span + time.Second
	if cfg.Duration < 200*time.Second {
		cfg.Duration = 200 * time.Second
	}
	res := tahoedyn.Run(cfg)

	type event struct {
		t    time.Duration
		dir  string
		conn int
		kind packet.Kind
		seq  int
	}
	var events []event
	collect := func(deps []trace.Departure, dir string) {
		for _, d := range deps {
			if d.T >= *at && d.T < *at+*span {
				events = append(events, event{d.T, dir, d.Conn, d.Kind, d.Seq})
			}
		}
	}
	collect(res.TrunkDeps[0][0], "sw0->sw1")
	collect(res.TrunkDeps[0][1], "sw1->sw0")
	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })

	fmt.Printf("fixed windows %d/%d, τ=%v — departures in [%v, %v)\n",
		*w1, *w2, *tau, *at, *at+*span)
	fmt.Printf("%-14s %-10s %-5s %-5s %-7s %-5s %s\n",
		"time", "port", "conn", "kind", "seq", "Q1", "Q2")
	if len(events) == 0 {
		fmt.Fprintln(os.Stderr, "tahoe-trace: no departures in the window (is -at before the end of the run?)")
		os.Exit(1)
	}
	var prev time.Duration
	for i, e := range events {
		gap := ""
		if i > 0 {
			gap = fmt.Sprintf("(+%v)", (e.t - prev).Round(100*time.Microsecond))
		}
		fmt.Printf("%-14v %-10s %-5d %-5v %-7d %-5.0f %-5.0f %s\n",
			e.t.Round(100*time.Microsecond), e.dir, e.conn, e.kind, e.seq,
			res.Q1().At(e.t), res.Q2().At(e.t), gap)
		prev = e.t
	}
}
