// Command tahoe-trace prints a packet-level departure timeline of the
// fixed-window two-way system — the raw form of the paper's §4.2
// five-step ACK-compression chronology. Each line is one packet's last
// bit leaving a bottleneck port, annotated with both queue lengths, so
// the compressed ACK trains and the resulting data bursts are visible
// directly:
//
//	tahoe-trace
//	tahoe-trace -tau 1s -w1 30 -w2 25 -at 300s -span 10s
//
// With -follow the same run is instead observed through the structured
// tracing layer: every packet lifecycle event inside the window streams
// to stdout as JSONL (one self-contained object per event, after a
// {"v":N} header), optionally restricted with -filter:
//
//	tahoe-trace -follow
//	tahoe-trace -follow -filter conn=2,type=drop
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"tahoedyn"
	"tahoedyn/internal/packet"
	"tahoedyn/internal/trace"
)

// windowSink forwards only the events inside [from, to) to the wrapped
// sink, so -follow streams the same window the departure table shows.
type windowSink struct {
	sink     tahoedyn.TraceSink
	from, to time.Duration
	scratch  []tahoedyn.TraceEvent
}

func (s *windowSink) Begin() error { return s.sink.Begin() }

func (s *windowSink) Events(locs []string, events []tahoedyn.TraceEvent) error {
	s.scratch = s.scratch[:0]
	for _, e := range events {
		if e.T >= s.from && e.T < s.to {
			s.scratch = append(s.scratch, e)
		}
	}
	if len(s.scratch) == 0 {
		return nil
	}
	return s.sink.Events(locs, s.scratch)
}

func (s *windowSink) Close() error { return s.sink.Close() }

func main() {
	var (
		tau    = flag.Duration("tau", 10*time.Millisecond, "bottleneck propagation delay τ")
		w1     = flag.Int("w1", 30, "fixed window of connection 1 (host 1 → 2)")
		w2     = flag.Int("w2", 25, "fixed window of connection 2 (host 2 → 1)")
		at     = flag.Duration("at", 300*time.Second, "start of the displayed window")
		span   = flag.Duration("span", 5*time.Second, "length of the displayed window")
		seed   = flag.Int64("seed", 1, "scenario random seed")
		follow = flag.Bool("follow", false, "stream lifecycle events in the window as JSONL instead of the departure table")
		filter = flag.String("filter", "", `with -follow: event filter, e.g. "conn=2,type=drop|timeout"`)
		store  = flag.String("store", "", "with -follow: write the window's events to this chunked store file (query with tahoe-query) instead of JSONL on stdout")
	)
	flag.Parse()

	cfg := tahoedyn.Dumbbell(*tau, 0) // infinite buffers, as in Fig. 8
	cfg.Seed = *seed
	cfg.Conns = []tahoedyn.ConnSpec{
		{SrcHost: 0, DstHost: 1, FixedWnd: *w1, Start: -1},
		{SrcHost: 1, DstHost: 0, FixedWnd: *w2, Start: -1},
	}
	cfg.Warmup = 100 * time.Second
	cfg.Duration = *at + *span + time.Second
	if cfg.Duration < 200*time.Second {
		cfg.Duration = 200 * time.Second
	}

	if *follow {
		flt, err := tahoedyn.ParseTraceFilter(*filter)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-trace:", err)
			os.Exit(2)
		}
		w := bufio.NewWriter(os.Stdout)
		var sink tahoedyn.TraceSink = tahoedyn.NewJSONLSink(w)
		var storeW *tahoedyn.TraceStoreWriter
		var storeF *os.File
		if *store != "" {
			storeF, err = os.Create(*store)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tahoe-trace:", err)
				os.Exit(1)
			}
			storeW = tahoedyn.NewTraceStoreSink(storeF, tahoedyn.TraceStoreOptions{})
			sink = storeW
		}
		cfg.Obs = &tahoedyn.ObsOptions{Trace: &tahoedyn.TraceOptions{
			Sink:   &windowSink{sink: sink, from: *at, to: *at + *span},
			Filter: flt,
			// A small ring keeps the stream live: each 256-event batch is
			// written (and flushed) as soon as the simulation produces it.
			RingSize: 256,
		}}
		res := tahoedyn.Run(cfg)
		if res.TraceErr != nil {
			fmt.Fprintln(os.Stderr, "tahoe-trace:", res.TraceErr)
			os.Exit(1)
		}
		if storeW != nil {
			if err := storeF.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tahoe-trace:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d events to %s\n", storeW.TotalEvents(), *store)
			return
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "tahoe-trace:", err)
			os.Exit(1)
		}
		return
	}
	if *filter != "" {
		fmt.Fprintln(os.Stderr, "tahoe-trace: -filter requires -follow")
		os.Exit(2)
	}
	if *store != "" {
		fmt.Fprintln(os.Stderr, "tahoe-trace: -store requires -follow")
		os.Exit(2)
	}
	res := tahoedyn.Run(cfg)

	type event struct {
		t    time.Duration
		dir  string
		conn int
		kind packet.Kind
		seq  int
	}
	var events []event
	collect := func(deps []trace.Departure, dir string) {
		for _, d := range deps {
			if d.T >= *at && d.T < *at+*span {
				events = append(events, event{d.T, dir, d.Conn, d.Kind, d.Seq})
			}
		}
	}
	collect(res.TrunkDeps[0][0], "sw0->sw1")
	collect(res.TrunkDeps[0][1], "sw1->sw0")
	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })

	fmt.Printf("fixed windows %d/%d, τ=%v — departures in [%v, %v)\n",
		*w1, *w2, *tau, *at, *at+*span)
	fmt.Printf("%-14s %-10s %-5s %-5s %-7s %-5s %s\n",
		"time", "port", "conn", "kind", "seq", "Q1", "Q2")
	if len(events) == 0 {
		fmt.Fprintln(os.Stderr, "tahoe-trace: no departures in the window (is -at before the end of the run?)")
		os.Exit(1)
	}
	var prev time.Duration
	for i, e := range events {
		gap := ""
		if i > 0 {
			gap = fmt.Sprintf("(+%v)", (e.t - prev).Round(100*time.Microsecond))
		}
		fmt.Printf("%-14v %-10s %-5d %-5v %-7d %-5.0f %-5.0f %s\n",
			e.t.Round(100*time.Microsecond), e.dir, e.conn, e.kind, e.seq,
			res.Q1().At(e.t), res.Q2().At(e.t), gap)
		prev = e.t
	}
}
